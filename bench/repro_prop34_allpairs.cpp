// Propositions 3 & 4 reproduction: all-pairs stretch.
//
//   Prop 3 — str_{avg,M}(π) >= (1/3d)(n+1)/(n^{1/d}-1) and
//            str_{avg,E}(π) >= (1/3√d)(n+1)/(n^{1/d}-1) for any SFC,
//   Prop 4 — str_{avg,M}(S) <= n^{1-1/d}, str_{avg,E}(S) <= √2 n^{1-1/d}.
//
// Exact O(n²) evaluation for small universes, sampled (with standard
// errors) above.
#include <iostream>

#include "bench_common.h"
#include "sfc/core/all_pairs.h"
#include "sfc/core/bounds.h"
#include "sfc/curves/curve_factory.h"
#include "sfc/io/table.h"

int main() {
  using namespace sfc;
  const auto scale = bench::scale_from_env();
  bench::print_header(
      "Propositions 3 & 4 — all-pairs stretch bounds",
      "Lower bounds for any SFC; upper bounds for the simple curve.");

  const index_t exact_limit = index_t{1} << 12;
  const std::uint64_t samples =
      scale == bench::Scale::kSmall ? 50000 : 400000;

  std::cout << "\nManhattan metric (LB = Prop-3 bound; simple-UB = Prop-4 "
               "bound, applies to the simple curve only):\n";
  Table table({"curve", "d", "n", "str_M", "mode", "LB", "str_M/LB",
               "simple-UB", "holds"});
  for (const auto& [d, k] : std::vector<std::pair<int, int>>{
           {2, 3}, {2, 5}, {2, 7}, {3, 2}, {3, 4}, {4, 3}}) {
    const Universe u = Universe::pow2(d, k);
    const double lb = bounds::allpairs_manhattan_lower_bound(u);
    const double simple_ub = bounds::allpairs_simple_manhattan_upper_bound(u);
    for (CurveFamily family : analytic_curve_families()) {
      const CurvePtr curve = make_curve(family, u);
      AllPairsResult r;
      if (u.cell_count() <= exact_limit) {
        r = compute_all_pairs_exact(*curve);
      } else {
        r = estimate_all_pairs(*curve, samples, 42);
      }
      const bool lb_holds = r.avg_stretch_manhattan >=
                            lb - 4 * r.stderr_manhattan - 1e-12;
      const bool ub_holds = family != CurveFamily::kSimple ||
                            r.avg_stretch_manhattan <=
                                simple_ub + 4 * r.stderr_manhattan + 1e-12;
      table.add_row({curve->name(), std::to_string(d),
                     Table::fmt_int(u.cell_count()),
                     Table::fmt(r.avg_stretch_manhattan),
                     r.exact ? "exact" : "sampled", Table::fmt(lb),
                     Table::fmt(r.avg_stretch_manhattan / lb, 4),
                     family == CurveFamily::kSimple ? Table::fmt(simple_ub) : "-",
                     lb_holds && ub_holds ? "yes" : "VIOLATION"});
    }
  }
  table.print(std::cout);

  std::cout << "\nEuclidean metric:\n";
  Table etable({"curve", "d", "n", "str_E", "mode", "LB", "str_E/LB",
                "simple-UB", "holds"});
  for (const auto& [d, k] : std::vector<std::pair<int, int>>{{2, 5}, {3, 3}}) {
    const Universe u = Universe::pow2(d, k);
    const double lb = bounds::allpairs_euclidean_lower_bound(u);
    const double simple_ub = bounds::allpairs_simple_euclidean_upper_bound(u);
    for (CurveFamily family : analytic_curve_families()) {
      const CurvePtr curve = make_curve(family, u);
      AllPairsResult r;
      if (u.cell_count() <= exact_limit) {
        r = compute_all_pairs_exact(*curve);
      } else {
        r = estimate_all_pairs(*curve, samples, 43);
      }
      const bool lb_holds =
          r.avg_stretch_euclidean >= lb - 4 * r.stderr_euclidean - 1e-12;
      const bool ub_holds = family != CurveFamily::kSimple ||
                            r.avg_stretch_euclidean <=
                                simple_ub + 4 * r.stderr_euclidean + 1e-12;
      etable.add_row({curve->name(), std::to_string(d),
                      Table::fmt_int(u.cell_count()),
                      Table::fmt(r.avg_stretch_euclidean),
                      r.exact ? "exact" : "sampled", Table::fmt(lb),
                      Table::fmt(r.avg_stretch_euclidean / lb, 4),
                      family == CurveFamily::kSimple ? Table::fmt(simple_ub) : "-",
                      lb_holds && ub_holds ? "yes" : "VIOLATION"});
    }
  }
  etable.print(std::cout);

  std::cout << "\nExpected shape: every curve respects the Prop-3 lower "
               "bounds (ratio >= 1); the simple curve additionally sits "
               "below its Prop-4 ceiling.  The gap between LB and the "
               "simple curve's value is the 3d-ish factor the paper lists "
               "as an open question.\n";
  return 0;
}
