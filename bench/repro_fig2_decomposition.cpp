// Figure 2 reproduction: the nearest-neighbor decomposition paths p(α,β) and
// p(β,α) for α=(1,1), β=(3,5) on a 6x6 grid, showing p(α,β) != p(β,α).
#include <iostream>

#include "bench_common.h"
#include "sfc/core/nn_decomposition.h"

int main() {
  using namespace sfc;
  bench::print_header(
      "Figure 2 — nearest-neighbor decomposition p(α,β)",
      "Staircase paths correcting dimension 1 first; forward and reverse "
      "paths differ.");

  const Point alpha{1, 1};
  const Point beta{3, 5};

  auto print_path = [](const std::string& label, const Point& from,
                       const Point& to) {
    std::cout << "\n" << label << " = p(" << from.to_string() << ", "
              << to.to_string() << "):\n  edges: ";
    const auto edges = nn_decomposition(from, to);
    for (std::size_t i = 0; i < edges.size(); ++i) {
      std::cout << (i ? ", " : "") << "(" << edges[i].first.to_string() << ","
                << edges[i].second.to_string() << ")";
    }
    std::cout << "\n  vertex walk: ";
    const auto vertices = nn_decomposition_vertices(from, to);
    for (std::size_t i = 0; i < vertices.size(); ++i) {
      std::cout << (i ? " -> " : "") << vertices[i].to_string();
    }
    std::cout << "\n  |p| = " << edges.size()
              << " (Manhattan distance = " << manhattan_distance(from, to)
              << ")\n";
  };

  print_path("dashed path", alpha, beta);
  print_path("solid path", beta, alpha);

  const Universe u(2, 6);
  std::cout << "\nLemma 4 multiplicities on the 6x6 grid (edge from ζ along "
               "dimension 1):\n";
  std::cout << "  bound n^{(d+1)/d}/2 = "
            << to_string(decomposition_multiplicity_bound(u)) << "\n";
  for (coord_t x = 0; x + 1 < u.side(); ++x) {
    const Point zeta{x, 2};
    std::cout << "  mult((" << x << ",2)-(" << x + 1 << ",2)) = "
              << to_string(decomposition_multiplicity(u, zeta, 0)) << "\n";
  }
  return 0;
}
