// Microbenchmarks: the slab-streamed neighbor-metrics engine (sfc/metrics)
// against the seed scalar-fallback path it replaces, plus thread scaling,
// key-table build, and the slab edge-cut path.
//
// CI gate (tools/check_bench_speedup.py): the slab engine must be >= 3x the
// scalar fallback on the 1M-cell Hilbert universe.  The scalar runs pin
// max_cache_cells below the universe size, which is exactly the seed
// behavior on universes above the cache ceiling: every neighbor key becomes
// a fresh virtual index_of call, 2d+1 encodes per cell.  The slab engine
// batch-encodes each cell once into O(slab) buffers instead.
//
// SFC_SCALE=large (the nightly job) additionally runs the 64M+-cell
// configurations (k = 13, 8192^2 cells).
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "sfc/apps/partition.h"
#include "sfc/core/nn_stretch.h"
#include "sfc/core/stretch_distribution.h"
#include "sfc/curves/curve_factory.h"
#include "sfc/curves/key_cache.h"
#include "sfc/parallel/thread_pool.h"

namespace {

using namespace sfc;

/// Universe sizes: the 1M-cell smoke/gate size always, the 64M+-cell stress
/// size only at SFC_SCALE=large (nightly).
void ScaleArgs(benchmark::internal::Benchmark* b) {
  b->Arg(10);  // 1024^2 = 1,048,576 cells
  if (sfc::bench::scale_from_env() == sfc::bench::Scale::kLarge) {
    b->Arg(13);  // 8192^2 = 67,108,864 cells
  }
}

void BM_NNStretchScalarFallback(benchmark::State& state, CurveFamily family) {
  const Universe u = Universe::pow2(2, static_cast<int>(state.range(0)));
  const CurvePtr curve = make_curve(family, u);
  NNStretchOptions options;
  options.engine = NNStretchEngine::kScalar;
  // Seed behavior above the key-cache ceiling: the universe (2^20+ cells)
  // exceeds max_cache_cells, so no table is built and every neighbor key is
  // re-encoded through the scalar virtuals.
  options.max_cache_cells = index_t{1} << 18;
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_nn_stretch(*curve, options));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(u.cell_count()));
}

void BM_NNStretchSlabEngine(benchmark::State& state, CurveFamily family) {
  const Universe u = Universe::pow2(2, static_cast<int>(state.range(0)));
  const CurvePtr curve = make_curve(family, u);
  const NNStretchOptions options;  // slab engine is the default
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_nn_stretch(*curve, options));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(u.cell_count()));
}

void BM_NNStretchThreadScaling(benchmark::State& state) {
  const Universe u = Universe::pow2(2, 10);
  const CurvePtr z = make_curve(CurveFamily::kZ, u);
  ThreadPool pool(static_cast<unsigned>(state.range(0)));
  NNStretchOptions options;
  options.pool = &pool;
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_nn_stretch(*z, options));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(u.cell_count()));
}

void BM_KeyTableBuild(benchmark::State& state) {
  const Universe u = Universe::pow2(2, static_cast<int>(state.range(0)));
  const CurvePtr z = make_curve(CurveFamily::kZ, u);
  for (auto _ : state) {
    KeyCache cache(*z, ThreadPool::shared());
    benchmark::DoNotOptimize(cache.key_of_id(0));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(u.cell_count()));
}

void BM_PartitionEdgeCutSlab(benchmark::State& state) {
  const Universe u = Universe::pow2(2, static_cast<int>(state.range(0)));
  const CurvePtr h = make_curve(CurveFamily::kHilbert, u);
  PartitionOptions options;
  options.count_fragments = false;  // O(slab) edge-cut-only mode
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluate_partition(*h, 64, options));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(u.cell_count()));
}

void BM_StretchDistributionSlab(benchmark::State& state) {
  const Universe u = Universe::pow2(2, static_cast<int>(state.range(0)));
  const CurvePtr h = make_curve(CurveFamily::kHilbert, u);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_stretch_distribution(*h));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(u.cell_count()));
}

}  // namespace

BENCHMARK_CAPTURE(BM_NNStretchScalarFallback, hilbert, CurveFamily::kHilbert)
    ->Apply(ScaleArgs)
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_NNStretchSlabEngine, hilbert, CurveFamily::kHilbert)
    ->Apply(ScaleArgs)
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_NNStretchScalarFallback, z, CurveFamily::kZ)
    ->Arg(10)
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_NNStretchSlabEngine, z, CurveFamily::kZ)
    ->Arg(10)
    ->UseRealTime();
BENCHMARK(BM_NNStretchThreadScaling)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();
BENCHMARK(BM_KeyTableBuild)->Arg(7)->Arg(9)->UseRealTime();
BENCHMARK(BM_PartitionEdgeCutSlab)->Arg(10)->UseRealTime();
BENCHMARK(BM_StretchDistributionSlab)->Arg(9)->UseRealTime();

BENCHMARK_MAIN();
