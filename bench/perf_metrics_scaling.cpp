// Microbenchmarks: the NN-stretch metric engine — thread scaling and the
// key-cache ablation called out in DESIGN.md.
#include <benchmark/benchmark.h>

#include "sfc/core/nn_stretch.h"
#include "sfc/curves/key_cache.h"
#include "sfc/curves/zcurve.h"
#include "sfc/parallel/thread_pool.h"

namespace {

using namespace sfc;

void BM_NNStretchThreads(benchmark::State& state) {
  const Universe u = Universe::pow2(2, 9);  // 512x512 = 262144 cells
  const ZCurve z(u);
  ThreadPool pool(static_cast<unsigned>(state.range(0)));
  NNStretchOptions options;
  options.pool = &pool;
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_nn_stretch(z, options));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(u.cell_count()));
}

void BM_NNStretchKeyCache(benchmark::State& state) {
  const Universe u = Universe::pow2(2, 9);
  const ZCurve z(u);
  NNStretchOptions options;
  options.use_key_cache = state.range(0) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_nn_stretch(z, options));
  }
  state.SetLabel(options.use_key_cache ? "cache" : "on-the-fly");
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(u.cell_count()));
}

void BM_KeyCacheBuild(benchmark::State& state) {
  const Universe u = Universe::pow2(2, static_cast<int>(state.range(0)));
  const ZCurve z(u);
  for (auto _ : state) {
    KeyCache cache(z, ThreadPool::shared());
    benchmark::DoNotOptimize(cache.key_of_id(0));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(u.cell_count()));
}

}  // namespace

BENCHMARK(BM_NNStretchThreads)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();
BENCHMARK(BM_NNStretchKeyCache)->Arg(0)->Arg(1)->UseRealTime();
BENCHMARK(BM_KeyCacheBuild)->Arg(7)->Arg(9)->UseRealTime();

BENCHMARK_MAIN();
