// Related-work reproduction (§II): the *inverse-direction* locality
// measures, which ask how far apart in space curve-adjacent cells can be —
// the opposite question from the paper's stretch.
//
//   * Gotsman & Lindenbaum (1996): max ∆E²/∆π; 2-d Hilbert tends to [6, 6.5].
//   * Niedermeier, Reinhardt & Sanders (2002): the Manhattan variant
//     (their bound: ∆ <= 3 sqrt(∆π), i.e. squared ratio <= 9 for 2-d Hilbert).
//   * Dai & Su (2003/04): average variants.
//
// Together with the stretch tables this completes the paper's §II story:
// stretch (high-dim -> 1-d) and locality (1-d -> high-dim) are different
// metrics with different winners.
#include <iostream>

#include "bench_common.h"
#include "sfc/core/locality_measures.h"
#include "sfc/core/nn_stretch.h"
#include "sfc/curves/curve_factory.h"
#include "sfc/curves/peano_curve.h"
#include "sfc/io/table.h"

int main() {
  using namespace sfc;
  const auto scale = bench::scale_from_env();
  bench::print_header(
      "Related work — inverse-direction locality (GL / NRS / Dai-Su)",
      "max and mean of dE^2/key-distance; 2-d Hilbert must land in [6, 6.5].");

  const int k = scale == bench::Scale::kSmall ? 4 : 6;
  const Universe u = Universe::pow2(2, k);
  LocalityOptions options;
  options.max_exact_cells = index_t{1} << 13;

  std::cout << "\n2-d grid, side " << u.side() << ":\n";
  Table table({"curve", "GL max dE^2/dk", "NRS max dM^2/dk", "mean dE^2/dk",
               "pairs", "mode"});
  for (CurveFamily family : all_curve_families()) {
    const CurvePtr curve = make_curve(family, u, 1);
    const LocalityMeasures r = compute_locality_measures(*curve, options);
    table.add_row({curve->name(), Table::fmt(r.gl_max_euclidean_sq, 5),
                   Table::fmt(r.nrs_max_manhattan_sq, 5),
                   Table::fmt(r.mean_euclidean_sq, 5),
                   Table::fmt_int(r.pair_count), r.exact ? "exact" : "window"});
  }
  // Peano on the nearest 3^k grid for comparison.
  {
    const Universe u3(2, 27);
    const PeanoCurve peano(u3);
    const LocalityMeasures r = compute_locality_measures(peano, options);
    table.add_row({"peano (27x27)", Table::fmt(r.gl_max_euclidean_sq, 5),
                   Table::fmt(r.nrs_max_manhattan_sq, 5),
                   Table::fmt(r.mean_euclidean_sq, 5),
                   Table::fmt_int(r.pair_count), r.exact ? "exact" : "window"});
  }
  table.print(std::cout);

  std::cout << "\nCross-metric comparison (who wins depends on the "
               "direction!):\n";
  Table cross({"curve", "Davg (paper's stretch)", "GL locality"});
  for (CurveFamily family :
       {CurveFamily::kZ, CurveFamily::kHilbert, CurveFamily::kSimple}) {
    const CurvePtr curve = make_curve(family, u);
    cross.add_row({curve->name(),
                   Table::fmt(compute_nn_stretch(*curve).average_average),
                   Table::fmt(compute_locality_measures(*curve, options)
                                  .gl_max_euclidean_sq, 5)});
  }
  cross.print(std::cout);

  std::cout << "\nExpected shape: hilbert's GL value sits in the proven "
               "[6, 6.5] window and beats z-curve/simple by orders of "
               "magnitude, while the paper's Davg favors z-curve/simple "
               "slightly — exactly why §II stresses these are different "
               "metrics.\n";
  return 0;
}
