// Overhead gate for the observability layer: the full serving hot path —
// admission, batch formation, shard fan-out, engine execution — replayed
// with instrumentation enabled vs disabled (the runtime switch, the same
// thing an operator would flip).
//
// The comparison is PAIRED: every iteration runs one obs-off replay and one
// obs-on replay back-to-back, alternating which goes first, and accumulates
// both sides' accepted-query p99.  Machine drift (CPU frequency, noisy CI
// neighbors) hits both sides of a pair equally and cancels in the ratio;
// two separately-timed benchmarks would fold minutes of drift into what is
// supposed to be a few-percent effect.  The reported ratio is the MEDIAN of
// the per-pair ratios — a single scheduler hiccup spikes one pair, not the
// whole run, where a sum-based ratio would be owned by its largest outlier.
// It is exported as the `p99_ratio` counter and gated by
// tools/check_obs_overhead.py (<= 5%).
//
// Per-query span volume is what the gate prices: every accepted query
// records a queue-wait span, an engine-fact span, two histogram samples,
// and a handful of sharded counter bumps.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "sfc/curves/curve_factory.h"
#include "sfc/index/point_index.h"
#include "sfc/obs/histogram.h"
#include "sfc/obs/metrics.h"
#include "sfc/obs/span_trace.h"
#include "sfc/rng/sampling.h"
#include "sfc/serve/server.h"
#include "sfc/serve/trace.h"

namespace {

using namespace sfc;

struct ServeFixture {
  CurvePtr curve;
  std::vector<Point> points;
  PointIndex index;
  QueryTrace trace;

  static const ServeFixture& shared() {
    static const ServeFixture* fixture = new ServeFixture(make());
    return *fixture;
  }

  static ServeFixture make() {
    CurveDescriptor descriptor;
    descriptor.family = "hilbert";
    descriptor.dim = 2;
    descriptor.side = 1024;
    CurvePtr curve = make_curve(descriptor);
    const Universe& u = curve->universe();
    Xoshiro256 rng(7);
    std::vector<Point> points;
    points.reserve(50000);
    for (int i = 0; i < 50000; ++i) points.push_back(random_cell(u, rng));
    PointIndex index = PointIndex::build(*curve, points);
    TraceGenOptions options;
    options.count = 500;
    options.box_extent = 32;
    options.knn_k = 8;
    options.seed = 7;
    QueryTrace trace = generate_trace(u, options);
    return ServeFixture{std::move(curve), std::move(points), std::move(index),
                        std::move(trace)};
  }
};

double replay_p99_us(const ServeFixture& f) {
  TraceRing::global().clear();
  IndexServer server(f.index.view(), ServerOptions{});
  ReplayOptions replay_options;
  replay_options.clients = 8;
  const ReplayReport report = replay_trace(server, f.trace, replay_options);
  benchmark::DoNotOptimize(report.accepted);
  return report.p99_us;
}

void BM_ServeObsOverheadPaired(benchmark::State& state) {
  const ServeFixture& f = ServeFixture::shared();
  std::vector<double> offs;
  std::vector<double> ons;
  std::vector<double> ratios;
  bool off_first = true;
  for (auto _ : state) {
    double off = 0.0;
    double on = 0.0;
    if (off_first) {
      set_obs_enabled(false);
      off = replay_p99_us(f);
      set_obs_enabled(true);
      on = replay_p99_us(f);
    } else {
      set_obs_enabled(true);
      on = replay_p99_us(f);
      set_obs_enabled(false);
      off = replay_p99_us(f);
      set_obs_enabled(true);
    }
    off_first = !off_first;
    offs.push_back(off);
    ons.push_back(on);
    ratios.push_back(off > 0.0 ? on / off : 1.0);
    // Manual time is the instrumented side's p99 — the number an operator
    // would see in production, tracked by the perf trajectory.
    state.SetIterationTime(on * 1e-6);
  }
  set_obs_enabled(true);
  state.SetItemsProcessed(static_cast<std::int64_t>(ons.size()) *
                          static_cast<std::int64_t>(f.trace.size()));
  state.counters["p99_off_us"] =
      benchmark::Counter(nearest_rank_percentile(offs, 0.5));
  state.counters["p99_on_us"] =
      benchmark::Counter(nearest_rank_percentile(ons, 0.5));
  state.counters["p99_ratio"] =
      benchmark::Counter(nearest_rank_percentile(ratios, 0.5));
}

BENCHMARK(BM_ServeObsOverheadPaired)
    ->UseManualTime()
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
