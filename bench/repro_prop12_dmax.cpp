// Propositions 1 & 2 reproduction: the average-maximum NN stretch.
//
//   Prop 1 — Dmax(π) obeys the same lower bound as Davg (since Dmax >= Davg),
//   Prop 2 — Dmax(S) = n^{1-1/d} EXACTLY (every cell has a dimension-d
//            neighbor exactly side^{d-1} away in row-major order),
// plus the paper's observation that the gap between the Dmax bound and the
// simple curve's Dmax is a factor d (larger than the 1.5 gap for Davg).
#include <iostream>

#include "bench_common.h"
#include "sfc/core/bounds.h"
#include "sfc/core/nn_stretch.h"
#include "sfc/curves/curve_factory.h"
#include "sfc/io/table.h"

int main() {
  using namespace sfc;
  const auto scale = bench::scale_from_env();
  bench::print_header(
      "Propositions 1 & 2 — average-maximum NN stretch",
      "Dmax bound = Davg bound; Dmax(simple) = n^{1-1/d} exactly; gap ~ d.");

  const index_t budget = bench::cell_budget(scale);

  std::cout << "\nProposition 2 (exact equality for the simple curve):\n";
  Table exact_table({"d", "k", "n", "measured Dmax(S)", "n^{1-1/d}", "match"});
  for (int d = 1; d <= 5; ++d) {
    for (int k : {1, 2, 3}) {
      const auto n = checked_ipow(2, k * d);
      if (!n.has_value() || *n > budget) continue;
      const Universe u = Universe::pow2(d, k);
      const CurvePtr s = make_curve(CurveFamily::kSimple, u);
      const NNStretchResult r = compute_nn_stretch(*s);
      const auto expected = static_cast<double>(bounds::dmax_simple_exact(u));
      exact_table.add_row({std::to_string(d), std::to_string(k),
                           Table::fmt_int(u.cell_count()),
                           Table::fmt(r.average_maximum),
                           Table::fmt(expected),
                           r.average_maximum == expected ? "exact" : "MISMATCH"});
    }
  }
  exact_table.print(std::cout);

  std::cout << "\nProposition 1 (lower bound) across curves, with the "
               "Dmax/bound gap (for the simple curve the paper predicts the "
               "gap approaches 3d/2):\n";
  Table bound_table({"curve", "d", "k", "Dmax", "bound", "Dmax/bound", "holds"});
  for (CurveFamily family : analytic_curve_families()) {
    for (int d = 2; d <= 4; ++d) {
      int k = 1;
      while (checked_ipow(2, (k + 1) * d).has_value() &&
             ipow(2, (k + 1) * d) <= budget) {
        ++k;
      }
      const Universe u = Universe::pow2(d, k);
      const CurvePtr curve = make_curve(family, u);
      const NNStretchResult r = compute_nn_stretch(*curve);
      const double bound = bounds::dmax_lower_bound(u);
      bound_table.add_row({curve->name(), std::to_string(d), std::to_string(k),
                           Table::fmt(r.average_maximum), Table::fmt(bound),
                           Table::fmt(r.average_maximum / bound, 4),
                           r.average_maximum >= bound ? "yes" : "VIOLATION"});
    }
  }
  bound_table.print(std::cout);

  std::cout << "\nExpected shape: simple-curve rows show Dmax/bound ~ 3d/2 "
               "(factor-d gap, the open question of §VI), while Davg/bound "
               "stays near 1.5 regardless of d.\n";
  return 0;
}
