// Lemma 2 reproduction: S_A'(π) = (n-1)n(n+1)/3 for every bijection —
// measured exactly (128-bit integers) for all named curves and adversarial
// random bijections.
#include <iostream>

#include "bench_common.h"
#include "sfc/common/math.h"
#include "sfc/core/all_pairs.h"
#include "sfc/curves/curve_factory.h"
#include "sfc/io/table.h"

int main() {
  using namespace sfc;
  bench::print_header(
      "Lemma 2 — total ordered-pair curve distance is curve-independent",
      "S_A'(pi) = (n-1)n(n+1)/3 exactly, for every bijection pi.");

  Table table({"curve", "d", "n", "measured S_A'", "(n-1)n(n+1)/3", "match"});
  for (const auto& [d, k] : std::vector<std::pair<int, int>>{{1, 6}, {2, 3}, {3, 2}}) {
    const Universe u = Universe::pow2(d, k);
    const u128 expected = lemma2_total(u.cell_count());
    for (CurveFamily family : all_curve_families()) {
      const CurvePtr curve = make_curve(family, u, 7);
      const AllPairsResult r = compute_all_pairs_exact(*curve);
      table.add_row({curve->name(), std::to_string(d),
                     Table::fmt_int(u.cell_count()),
                     to_string(r.total_curve_distance_ordered),
                     to_string(expected),
                     r.total_curve_distance_ordered == expected ? "exact"
                                                                : "MISMATCH"});
    }
  }
  table.print(std::cout);

  std::cout << "\nThe identity is what lets Theorem 1 price the all-pairs "
               "distance budget independently of the curve: any bijection "
               "spends exactly (n-1)n(n+1)/3 total key distance.\n";
  return 0;
}
