// Microbenchmarks: the persistent index store (sfc/store) — crash-safe
// writes and validated mmap opens.
//
// The write path streams to a temp file, fsyncs, and renames; the open path
// runs the full verification pass (header digest, column checksums, key
// order, directory consistency, and the key<->point re-encoding that ties
// the persisted curve identity to the data).  Serving restarts pay the open
// cost and rebuilds pay the write cost, so both are tracked: verification is
// a streaming pass and must stay linear in file size, and the unverified
// open (used when reopening a file the process just validated) must stay
// essentially free next to it.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "sfc/curves/curve_factory.h"
#include "sfc/index/point_index.h"
#include "sfc/rng/sampling.h"
#include "sfc/store/index_store.h"

namespace {

using namespace sfc;

std::string bench_path(const char* name) {
  const char* tmpdir = std::getenv("TMPDIR");
  return std::string(tmpdir != nullptr ? tmpdir : "/tmp") +
         "/sfc_bench_store_" + name + ".sfcidx";
}

/// One point per cell on average: bits k -> 4^k points in a 2^k-side 2D
/// Hilbert universe (bits 9 = 256K points, bits 10 = 1M points).
struct StoreFixture {
  CurveDescriptor descriptor;
  CurvePtr curve;
  PointIndex index;

  static StoreFixture make(int bits) {
    CurveDescriptor descriptor;
    descriptor.family = "hilbert";
    descriptor.dim = 2;
    descriptor.side = static_cast<coord_t>(1u << bits);
    CurvePtr curve = make_curve(descriptor);
    const Universe& u = curve->universe();
    Xoshiro256 rng(7);
    std::vector<Point> points;
    points.reserve(u.cell_count());
    for (index_t i = 0; i < u.cell_count(); ++i) {
      points.push_back(random_cell(u, rng));
    }
    PointIndex index = PointIndex::build(*curve, points);
    return StoreFixture{std::move(descriptor), std::move(curve),
                        std::move(index)};
  }
};

void BM_StoreWrite(benchmark::State& state) {
  const StoreFixture f = StoreFixture::make(static_cast<int>(state.range(0)));
  const std::string path = bench_path("write");
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    write_index_file(path, f.index, f.descriptor);
    bytes = MappedIndex::open(path, {.verify = false}).file_bytes();
  }
  std::remove(path.c_str());
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_StoreWrite)->Arg(9)->Arg(10)->Unit(benchmark::kMillisecond);

void BM_StoreOpenVerified(benchmark::State& state) {
  const StoreFixture f = StoreFixture::make(static_cast<int>(state.range(0)));
  const std::string path = bench_path("open_verified");
  write_index_file(path, f.index, f.descriptor);
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    const MappedIndex mapped = MappedIndex::open(path, {.verify = true});
    benchmark::DoNotOptimize(mapped.row_count());
    bytes = mapped.file_bytes();
  }
  std::remove(path.c_str());
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_StoreOpenVerified)->Arg(9)->Arg(10)->Unit(benchmark::kMillisecond);

void BM_StoreOpenUnverified(benchmark::State& state) {
  const StoreFixture f = StoreFixture::make(static_cast<int>(state.range(0)));
  const std::string path = bench_path("open_unverified");
  write_index_file(path, f.index, f.descriptor);
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    const MappedIndex mapped = MappedIndex::open(path, {.verify = false});
    benchmark::DoNotOptimize(mapped.row_count());
    bytes = mapped.file_bytes();
  }
  std::remove(path.c_str());
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_StoreOpenUnverified)
    ->Arg(9)
    ->Arg(10)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
