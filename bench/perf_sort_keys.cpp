// Sort-pipeline microbenchmarks: the deterministic parallel radix sorts
// (sfc/sort) against the comparator baselines they replaced.  The CI gate
// checks radix keys-only sort is >= 2x std::sort on 1M uniformly random
// 64-bit keys (tools/check_bench_speedup.py parses the --benchmark_out
// JSON); the u128 hybrid-vs-LSD gate lives in perf_kernels.cpp.  Every
// timed iteration includes an identical copy from a master buffer, so the
// ratio slightly understates the sorter's true advantage.
//
// The *PerPass benches surface SortStats: per-digit wall-clock of the
// engines' top-level passes, reported as per-iteration counters
// (skip-scan/partition/tail split for the hybrid, scattered vs skipped pass
// totals for the LSD engine), so BENCH_sort_keys.json shows where sort time
// goes, not just how much there is.  The u128/4D-Hilbert case sorts the
// composite (curve key << 64) | sequence records the kNN pipeline builds,
// exercising the hybrid on realistically skewed high digits.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "bench_common.h"
#include "sfc/curves/curve_factory.h"
#include "sfc/rng/xoshiro256.h"
#include "sfc/sort/radix_sort.h"

namespace {

using namespace sfc;

std::vector<index_t> make_keys(std::size_t count, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<index_t> keys(count);
  for (auto& key : keys) key = rng.next();
  return keys;
}

std::vector<Point> make_cells(const Universe& u, std::size_t count) {
  Xoshiro256 rng(17);
  std::vector<Point> cells(count, Point::zero(u.dim()));
  for (auto& cell : cells) {
    for (int i = 0; i < u.dim(); ++i) {
      cell[i] = static_cast<coord_t>(rng.next_below(u.side()));
    }
  }
  return cells;
}

void BM_StdSortKeys(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  const auto master = make_keys(count, 21);
  std::vector<index_t> keys(count);
  for (auto _ : state) {
    std::copy(master.begin(), master.end(), keys.begin());
    std::sort(keys.begin(), keys.end());
    benchmark::DoNotOptimize(keys.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(count));
}

void BM_RadixSortKeys(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  const auto master = make_keys(count, 21);
  std::vector<index_t> keys(count);
  for (auto _ : state) {
    std::copy(master.begin(), master.end(), keys.begin());
    radix_sort_keys(keys);
    benchmark::DoNotOptimize(keys.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(count));
}

void BM_StdStableSortPairs(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  const auto keys = make_keys(count, 23);
  std::vector<KeyIndex> master(count);
  for (std::size_t i = 0; i < count; ++i) {
    master[i] = {keys[i], static_cast<std::uint32_t>(i)};
  }
  std::vector<KeyIndex> items(count);
  for (auto _ : state) {
    std::copy(master.begin(), master.end(), items.begin());
    std::stable_sort(items.begin(), items.end(),
                     [](const KeyIndex& a, const KeyIndex& b) {
                       return a.key < b.key;
                     });
    benchmark::DoNotOptimize(items.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(count));
}

void BM_RadixSortPairs(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  const auto keys = make_keys(count, 23);
  std::vector<KeyIndex> master(count);
  for (std::size_t i = 0; i < count; ++i) {
    master[i] = {keys[i], static_cast<std::uint32_t>(i)};
  }
  std::vector<KeyIndex> items(count);
  for (auto _ : state) {
    std::copy(master.begin(), master.end(), items.begin());
    radix_sort_pairs(items);
    benchmark::DoNotOptimize(items.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(count));
}

void BM_StdSortKeysU128(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng(27);
  std::vector<u128> master(count);
  for (auto& key : master) {
    key = (static_cast<u128>(rng.next()) << 64) | rng.next();
  }
  std::vector<u128> keys(count);
  for (auto _ : state) {
    std::copy(master.begin(), master.end(), keys.begin());
    std::sort(keys.begin(), keys.end());
    benchmark::DoNotOptimize(keys.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(count));
}

void BM_RadixSortKeysU128(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng(27);
  std::vector<u128> master(count);
  for (auto& key : master) {
    key = (static_cast<u128>(rng.next()) << 64) | rng.next();
  }
  std::vector<u128> keys(count);
  for (auto _ : state) {
    std::copy(master.begin(), master.end(), keys.begin());
    radix_sort_keys(keys);
    benchmark::DoNotOptimize(keys.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(count));
}

/// Splits SortStats across counters.  For the hybrid: constant-digit MSD
/// scans, the one MSD partition, and the aggregate per-bucket tail phase.
/// For the LSD engine: scattered passes vs skipped (constant-digit) passes.
void report_pass_counters(benchmark::State& state, const SortStats& stats,
                          double iterations) {
  double skip_scan = 0.0;
  double partition = 0.0;
  double tails = 0.0;
  double scattered = 0.0;
  double skipped = 0.0;
  for (const SortPassTiming& pass : stats.passes) {
    if (pass.digit < 0) {
      tails += pass.seconds;
    } else if (pass.msd) {
      (pass.scattered ? partition : skip_scan) += pass.seconds;
    } else {
      (pass.scattered ? scattered : skipped) += pass.seconds;
    }
  }
  // The stats hold the final iteration's passes; counts are per sort call.
  state.counters["passes"] = static_cast<double>(stats.passes.size());
  if (partition > 0 || skip_scan > 0 || tails > 0) {
    state.counters["skip_scan_sec"] = skip_scan;
    state.counters["partition_sec"] = partition;
    state.counters["tail_sec"] = tails;
  }
  if (scattered > 0 || skipped > 0) {
    state.counters["scatter_sec"] = scattered;
    state.counters["skipped_sec"] = skipped;
  }
  (void)iterations;
}

void BM_RadixSortKeysPerPass(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  const auto master = make_keys(count, 21);
  std::vector<index_t> keys(count);
  SortStats stats;
  SortOptions options;
  options.stats = &stats;
  for (auto _ : state) {
    std::copy(master.begin(), master.end(), keys.begin());
    radix_sort_keys(keys, options);
    benchmark::DoNotOptimize(keys.data());
    benchmark::ClobberMemory();
  }
  report_pass_counters(state, stats, static_cast<double>(state.iterations()));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(count));
}

void BM_RadixSortKeysU128PerPass(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng(27);
  std::vector<u128> master(count);
  for (auto& key : master) {
    key = (static_cast<u128>(rng.next()) << 64) | rng.next();
  }
  std::vector<u128> keys(count);
  SortStats stats;
  SortOptions options;
  options.stats = &stats;
  for (auto _ : state) {
    std::copy(master.begin(), master.end(), keys.begin());
    radix_sort_keys(keys, options);
    benchmark::DoNotOptimize(keys.data());
    benchmark::ClobberMemory();
  }
  report_pass_counters(state, stats, static_cast<double>(state.iterations()));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(count));
}

/// The kNN pipeline's composite records: high half a 4D Hilbert curve key,
/// low half the sequence number, sorted as (key, payload) pairs.  Twelve of
/// the sixteen digits are constant (the curve key fills 32 bits), so the
/// hybrid's skip-then-partition behavior is on full display.
void BM_RadixSortPairsU128Hilbert4D(benchmark::State& state) {
  const Universe u = Universe::pow2(4, 8);  // 4D, side 256
  const CurvePtr curve = make_curve(CurveFamily::kHilbert, u, 1);
  const auto count = static_cast<std::size_t>(state.range(0));
  const auto cells = make_cells(u, count);
  std::vector<index_t> keys(count);
  curve->index_of_batch(cells, keys);
  std::vector<KeyIndex128> master(count);
  for (std::size_t i = 0; i < count; ++i) {
    master[i] = {(static_cast<u128>(keys[i]) << 64) |
                     static_cast<std::uint32_t>(i),
                 static_cast<std::uint32_t>(i)};
  }
  std::vector<KeyIndex128> items(count);
  for (auto _ : state) {
    std::copy(master.begin(), master.end(), items.begin());
    radix_sort_pairs(items);
    benchmark::DoNotOptimize(items.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(count));
}

// The full app pipeline: encode cells to curve keys, sort indices by key.
// Baseline is what the apps did before sfc/sort (batch encode, then a
// comparator stable sort); candidate is the fused sort_by_curve_key.

void BM_EncodeThenStableSort(benchmark::State& state) {
  const Universe u = Universe::pow2(2, 10);
  const CurvePtr curve = make_curve(CurveFamily::kZ, u, 1);
  const auto count = static_cast<std::size_t>(state.range(0));
  const auto cells = make_cells(u, count);
  std::vector<index_t> keys(count);
  std::vector<KeyIndex> items(count);
  for (auto _ : state) {
    curve->index_of_batch(cells, keys);
    for (std::size_t i = 0; i < count; ++i) {
      items[i] = {keys[i], static_cast<std::uint32_t>(i)};
    }
    std::stable_sort(items.begin(), items.end(),
                     [](const KeyIndex& a, const KeyIndex& b) {
                       return a.key < b.key;
                     });
    benchmark::DoNotOptimize(items.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(count));
}

void BM_SortByCurveKey(benchmark::State& state) {
  const Universe u = Universe::pow2(2, 10);
  const CurvePtr curve = make_curve(CurveFamily::kZ, u, 1);
  const auto count = static_cast<std::size_t>(state.range(0));
  const auto cells = make_cells(u, count);
  for (auto _ : state) {
    const std::vector<KeyIndex> items = sort_by_curve_key(*curve, cells);
    benchmark::DoNotOptimize(items.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(count));
}

/// 1M is the CI smoke/gate size; 4M and 16M chart scaling locally; the
/// 64M+-key run is added only at SFC_SCALE=large (the nightly job).
void KeyScaleArgs(benchmark::internal::Benchmark* b) {
  b->Arg(1 << 20)->Arg(1 << 22)->Arg(1 << 24);
  if (sfc::bench::scale_from_env() == sfc::bench::Scale::kLarge) {
    b->Arg(std::int64_t{1} << 26);
  }
}

}  // namespace

BENCHMARK(BM_StdSortKeys)->Apply(KeyScaleArgs);
BENCHMARK(BM_RadixSortKeys)->Apply(KeyScaleArgs);
BENCHMARK(BM_StdStableSortPairs)->Arg(1 << 20);
BENCHMARK(BM_RadixSortPairs)->Arg(1 << 20);
BENCHMARK(BM_StdSortKeysU128)->Arg(1 << 20);
BENCHMARK(BM_RadixSortKeysU128)->Arg(1 << 20);
BENCHMARK(BM_RadixSortKeysPerPass)->Arg(1 << 20);
BENCHMARK(BM_RadixSortKeysU128PerPass)->Arg(1 << 20);
BENCHMARK(BM_RadixSortPairsU128Hilbert4D)->Arg(1 << 20);
BENCHMARK(BM_EncodeThenStableSort)->Arg(1 << 20);
BENCHMARK(BM_SortByCurveKey)->Arg(1 << 20);

BENCHMARK_MAIN();
