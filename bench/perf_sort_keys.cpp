// Sort-pipeline microbenchmarks: the deterministic parallel LSD radix sort
// (sfc/sort) against the comparator baselines it replaced.  The CI gate
// checks radix keys-only sort is >= 2x std::sort on 1M uniformly random
// 64-bit keys (tools/check_bench_speedup.py parses the --benchmark_out
// JSON).  Every timed iteration includes an identical copy from a master
// buffer, so the ratio slightly understates the sorter's true advantage.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "bench_common.h"
#include "sfc/curves/curve_factory.h"
#include "sfc/rng/xoshiro256.h"
#include "sfc/sort/radix_sort.h"

namespace {

using namespace sfc;

std::vector<index_t> make_keys(std::size_t count, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<index_t> keys(count);
  for (auto& key : keys) key = rng.next();
  return keys;
}

std::vector<Point> make_cells(const Universe& u, std::size_t count) {
  Xoshiro256 rng(17);
  std::vector<Point> cells(count, Point::zero(u.dim()));
  for (auto& cell : cells) {
    for (int i = 0; i < u.dim(); ++i) {
      cell[i] = static_cast<coord_t>(rng.next_below(u.side()));
    }
  }
  return cells;
}

void BM_StdSortKeys(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  const auto master = make_keys(count, 21);
  std::vector<index_t> keys(count);
  for (auto _ : state) {
    std::copy(master.begin(), master.end(), keys.begin());
    std::sort(keys.begin(), keys.end());
    benchmark::DoNotOptimize(keys.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(count));
}

void BM_RadixSortKeys(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  const auto master = make_keys(count, 21);
  std::vector<index_t> keys(count);
  for (auto _ : state) {
    std::copy(master.begin(), master.end(), keys.begin());
    radix_sort_keys(keys);
    benchmark::DoNotOptimize(keys.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(count));
}

void BM_StdStableSortPairs(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  const auto keys = make_keys(count, 23);
  std::vector<KeyIndex> master(count);
  for (std::size_t i = 0; i < count; ++i) {
    master[i] = {keys[i], static_cast<std::uint32_t>(i)};
  }
  std::vector<KeyIndex> items(count);
  for (auto _ : state) {
    std::copy(master.begin(), master.end(), items.begin());
    std::stable_sort(items.begin(), items.end(),
                     [](const KeyIndex& a, const KeyIndex& b) {
                       return a.key < b.key;
                     });
    benchmark::DoNotOptimize(items.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(count));
}

void BM_RadixSortPairs(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  const auto keys = make_keys(count, 23);
  std::vector<KeyIndex> master(count);
  for (std::size_t i = 0; i < count; ++i) {
    master[i] = {keys[i], static_cast<std::uint32_t>(i)};
  }
  std::vector<KeyIndex> items(count);
  for (auto _ : state) {
    std::copy(master.begin(), master.end(), items.begin());
    radix_sort_pairs(items);
    benchmark::DoNotOptimize(items.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(count));
}

void BM_StdSortKeysU128(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng(27);
  std::vector<u128> master(count);
  for (auto& key : master) {
    key = (static_cast<u128>(rng.next()) << 64) | rng.next();
  }
  std::vector<u128> keys(count);
  for (auto _ : state) {
    std::copy(master.begin(), master.end(), keys.begin());
    std::sort(keys.begin(), keys.end());
    benchmark::DoNotOptimize(keys.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(count));
}

void BM_RadixSortKeysU128(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng(27);
  std::vector<u128> master(count);
  for (auto& key : master) {
    key = (static_cast<u128>(rng.next()) << 64) | rng.next();
  }
  std::vector<u128> keys(count);
  for (auto _ : state) {
    std::copy(master.begin(), master.end(), keys.begin());
    radix_sort_keys(keys);
    benchmark::DoNotOptimize(keys.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(count));
}

// The full app pipeline: encode cells to curve keys, sort indices by key.
// Baseline is what the apps did before sfc/sort (batch encode, then a
// comparator stable sort); candidate is the fused sort_by_curve_key.

void BM_EncodeThenStableSort(benchmark::State& state) {
  const Universe u = Universe::pow2(2, 10);
  const CurvePtr curve = make_curve(CurveFamily::kZ, u, 1);
  const auto count = static_cast<std::size_t>(state.range(0));
  const auto cells = make_cells(u, count);
  std::vector<index_t> keys(count);
  std::vector<KeyIndex> items(count);
  for (auto _ : state) {
    curve->index_of_batch(cells, keys);
    for (std::size_t i = 0; i < count; ++i) {
      items[i] = {keys[i], static_cast<std::uint32_t>(i)};
    }
    std::stable_sort(items.begin(), items.end(),
                     [](const KeyIndex& a, const KeyIndex& b) {
                       return a.key < b.key;
                     });
    benchmark::DoNotOptimize(items.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(count));
}

void BM_SortByCurveKey(benchmark::State& state) {
  const Universe u = Universe::pow2(2, 10);
  const CurvePtr curve = make_curve(CurveFamily::kZ, u, 1);
  const auto count = static_cast<std::size_t>(state.range(0));
  const auto cells = make_cells(u, count);
  for (auto _ : state) {
    const std::vector<KeyIndex> items = sort_by_curve_key(*curve, cells);
    benchmark::DoNotOptimize(items.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(count));
}

/// 1M is the CI smoke/gate size; 4M and 16M chart scaling locally; the
/// 64M+-key run is added only at SFC_SCALE=large (the nightly job).
void KeyScaleArgs(benchmark::internal::Benchmark* b) {
  b->Arg(1 << 20)->Arg(1 << 22)->Arg(1 << 24);
  if (sfc::bench::scale_from_env() == sfc::bench::Scale::kLarge) {
    b->Arg(std::int64_t{1} << 26);
  }
}

}  // namespace

BENCHMARK(BM_StdSortKeys)->Apply(KeyScaleArgs);
BENCHMARK(BM_RadixSortKeys)->Apply(KeyScaleArgs);
BENCHMARK(BM_StdStableSortPairs)->Arg(1 << 20);
BENCHMARK(BM_RadixSortPairs)->Arg(1 << 20);
BENCHMARK(BM_StdSortKeysU128)->Arg(1 << 20);
BENCHMARK(BM_RadixSortKeysU128)->Arg(1 << 20);
BENCHMARK(BM_EncodeThenStableSort)->Arg(1 << 20);
BENCHMARK(BM_SortByCurveKey)->Arg(1 << 20);

BENCHMARK_MAIN();
