// Application bench: SFC-based domain decomposition (intro refs [3,22,23]).
//
// Contiguous key-range partitions for P processors: edge cut (communication
// volume), imbalance, and fragmented blocks, per curve.  The ranking should
// track the stretch metrics: lower Davg -> lower cut.
#include <iostream>

#include "bench_common.h"
#include "sfc/apps/partition.h"
#include "sfc/curves/curve_factory.h"
#include "sfc/io/table.h"

int main() {
  using namespace sfc;
  const auto scale = bench::scale_from_env();
  bench::print_header(
      "Application — parallel domain decomposition quality",
      "Cut edges = NN pairs split across processors; SFC order decides both.");

  const int k = scale == bench::Scale::kSmall ? 4 : 6;

  for (int d : {2, 3}) {
    const Universe u = Universe::pow2(d, d == 3 ? (k + 1) / 2 + 1 : k);
    std::cout << "\nd = " << d << ", side = " << u.side()
              << ", n = " << u.cell_count() << ":\n";
    Table table({"curve", "P", "edge cut", "cut fraction", "imbalance",
                 "fragmented blocks"});
    for (CurveFamily family : all_curve_families()) {
      const CurvePtr curve = make_curve(family, u, 1);
      for (int parts : {4, 16, 64}) {
        const PartitionQuality q = evaluate_partition(*curve, parts);
        table.add_row({curve->name(), std::to_string(parts),
                       Table::fmt_int(q.edge_cut), Table::fmt(q.cut_fraction, 4),
                       Table::fmt(q.imbalance, 4),
                       std::to_string(q.fragmented_blocks)});
      }
    }
    table.print(std::cout);
  }

  std::cout << "\nExpected shape: hilbert < z-curve ~ gray < snake ~ simple "
               "<< random on edge cut; continuous curves keep blocks "
               "connected (0 fragments) while random fragments almost every "
               "block.  This is the stretch metric made operational: the "
               "same ordering the paper proves for Davg.\n";
  return 0;
}
