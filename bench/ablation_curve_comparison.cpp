// Ablation: full cross-curve comparison at a fixed budget, backing the
// paper's observation 3 ("a different SFC can yield only a constant factor
// improvement over the Z curve or the simple curve").
//
// For each curve: Davg, Dmax, Dmin (window-to-first-neighbor), ratio to the
// Theorem-1 bound, and per-dimension Λ_i shares.
#include <iostream>

#include "bench_common.h"
#include "sfc/core/bounds.h"
#include "sfc/core/nn_stretch.h"
#include "sfc/curves/curve_factory.h"
#include "sfc/io/table.h"

int main() {
  using namespace sfc;
  const auto scale = bench::scale_from_env();
  bench::print_header(
      "Ablation — cross-curve comparison at a fixed grid",
      "All metrics side by side; no curve can beat the bound by more than a "
      "constant.");

  for (int d : {2, 3}) {
    int k = 1;
    while (checked_ipow(2, (k + 1) * d).has_value() &&
           ipow(2, (k + 1) * d) <= bench::cell_budget(scale)) {
      ++k;
    }
    // Random curves materialize an O(n) table; cap their size.
    const Universe u = Universe::pow2(d, k);
    std::cout << "\nd = " << d << ", k = " << k << ", n = " << u.cell_count()
              << ", Theorem-1 bound = " << bounds::davg_lower_bound(u) << ":\n";
    Table table({"curve", "Davg", "Davg/LB", "Dmax", "Dmin", "continuous"});
    for (CurveFamily family : all_curve_families()) {
      const index_t max_random_cells = index_t{1} << 20;
      CurvePtr curve;
      if (family == CurveFamily::kRandom && u.cell_count() > max_random_cells) {
        continue;
      }
      curve = make_curve(family, u, 1);
      const NNStretchResult r = compute_nn_stretch(*curve);
      table.add_row({curve->name(), Table::fmt(r.average_average),
                     Table::fmt(r.average_average / bounds::davg_lower_bound(u), 4),
                     Table::fmt(r.average_maximum),
                     Table::fmt(r.average_minimum),
                     curve->is_continuous() ? "yes" : "no"});
    }
    table.print(std::cout);

    // Λ_i decomposition for the structured curves.
    std::cout << "\nPer-dimension share of the total NN stretch "
                 "(Lambda_i / Sigma Lambda; Lemma-5 limits for Z are "
              << [&] {
                   std::string limits;
                   for (int i = 1; i <= d; ++i) {
                     limits += (i > 1 ? ", " : "") +
                               Table::fmt(bounds::lambda_z_limit(d, i), 3);
                   }
                   return limits;
                 }()
              << "):\n";
    Table lambda_table({"curve", "dim", "share"});
    for (CurveFamily family : analytic_curve_families()) {
      const CurvePtr curve = make_curve(family, u);
      const NNStretchResult r = compute_nn_stretch(*curve);
      const long double total = to_long_double(r.nn_distance_total);
      for (int i = 0; i < d; ++i) {
        lambda_table.add_row(
            {curve->name(), std::to_string(i + 1),
             Table::fmt(static_cast<double>(
                            to_long_double(r.lambda[static_cast<std::size_t>(i)]) / total),
                        4)});
      }
    }
    lambda_table.print(std::cout);
  }
  return 0;
}
