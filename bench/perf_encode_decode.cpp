// Microbenchmarks: curve key encode/decode throughput per family, plus the
// generic-vs-magic-mask Morton ablation.
#include <benchmark/benchmark.h>

#include "sfc/curves/bitops.h"
#include "sfc/curves/curve_factory.h"
#include "sfc/rng/xoshiro256.h"

namespace {

using namespace sfc;

// Pre-generated random cells so the benchmark measures encoding, not RNG.
std::vector<Point> make_cells(const Universe& u, std::size_t count) {
  Xoshiro256 rng(7);
  std::vector<Point> cells(count, Point::zero(u.dim()));
  for (auto& cell : cells) {
    for (int i = 0; i < u.dim(); ++i) {
      cell[i] = static_cast<coord_t>(rng.next_below(u.side()));
    }
  }
  return cells;
}

void BM_Encode(benchmark::State& state, CurveFamily family, int d, int k) {
  const Universe u = Universe::pow2(d, k);
  const CurvePtr curve = make_curve(family, u, 1);
  const auto cells = make_cells(u, 1024);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve->index_of(cells[i]));
    i = (i + 1) & 1023;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Decode(benchmark::State& state, CurveFamily family, int d, int k) {
  const Universe u = Universe::pow2(d, k);
  const CurvePtr curve = make_curve(family, u, 1);
  Xoshiro256 rng(9);
  std::vector<index_t> keys(1024);
  for (auto& key : keys) key = rng.next_below(u.cell_count());
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve->point_at(keys[i]));
    i = (i + 1) & 1023;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_MortonGenericSpread(benchmark::State& state) {
  Xoshiro256 rng(1);
  std::vector<std::uint32_t> values(1024);
  for (auto& v : values) v = static_cast<std::uint32_t>(rng.next() & 0xffff);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(spread_bits(values[i], 2, 16));
    i = (i + 1) & 1023;
  }
}

void BM_MortonMagicSpread(benchmark::State& state) {
  Xoshiro256 rng(1);
  std::vector<std::uint32_t> values(1024);
  for (auto& v : values) v = static_cast<std::uint32_t>(rng.next() & 0xffff);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(spread_bits_2(values[i]));
    i = (i + 1) & 1023;
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_Encode, z_d2_k10, CurveFamily::kZ, 2, 10);
BENCHMARK_CAPTURE(BM_Encode, z_d3_k7, CurveFamily::kZ, 3, 7);
BENCHMARK_CAPTURE(BM_Encode, simple_d2_k10, CurveFamily::kSimple, 2, 10);
BENCHMARK_CAPTURE(BM_Encode, snake_d2_k10, CurveFamily::kSnake, 2, 10);
BENCHMARK_CAPTURE(BM_Encode, gray_d2_k10, CurveFamily::kGray, 2, 10);
BENCHMARK_CAPTURE(BM_Encode, hilbert_d2_k10, CurveFamily::kHilbert, 2, 10);
BENCHMARK_CAPTURE(BM_Encode, hilbert_d3_k7, CurveFamily::kHilbert, 3, 7);

BENCHMARK_CAPTURE(BM_Decode, z_d2_k10, CurveFamily::kZ, 2, 10);
BENCHMARK_CAPTURE(BM_Decode, hilbert_d2_k10, CurveFamily::kHilbert, 2, 10);
BENCHMARK_CAPTURE(BM_Decode, simple_d2_k10, CurveFamily::kSimple, 2, 10);

BENCHMARK(BM_MortonGenericSpread);
BENCHMARK(BM_MortonMagicSpread);

BENCHMARK_MAIN();
