// Microbenchmarks: curve key encode/decode throughput per family, the
// generic-vs-magic-mask Morton ablation, and the batched-vs-scalar codec
// comparison (the PR-1 acceptance gate checks batched Z encode is >= 2x the
// scalar-virtual loop at 1M points; tools/check_bench_speedup.py parses the
// --benchmark_out JSON).
#include <benchmark/benchmark.h>

#include <numeric>
#include <span>
#include <vector>

#include "sfc/curves/bitops.h"
#include "sfc/curves/curve_factory.h"
#include "sfc/rng/xoshiro256.h"

namespace {

using namespace sfc;

// Pre-generated random cells so the benchmark measures encoding, not RNG.
std::vector<Point> make_cells(const Universe& u, std::size_t count) {
  Xoshiro256 rng(7);
  std::vector<Point> cells(count, Point::zero(u.dim()));
  for (auto& cell : cells) {
    for (int i = 0; i < u.dim(); ++i) {
      cell[i] = static_cast<coord_t>(rng.next_below(u.side()));
    }
  }
  return cells;
}

void BM_Encode(benchmark::State& state, CurveFamily family, int d, int k) {
  const Universe u = Universe::pow2(d, k);
  const CurvePtr curve = make_curve(family, u, 1);
  const auto cells = make_cells(u, 1024);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve->index_of(cells[i]));
    i = (i + 1) & 1023;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Decode(benchmark::State& state, CurveFamily family, int d, int k) {
  const Universe u = Universe::pow2(d, k);
  const CurvePtr curve = make_curve(family, u, 1);
  Xoshiro256 rng(9);
  std::vector<index_t> keys(1024);
  for (auto& key : keys) key = rng.next_below(u.cell_count());
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve->point_at(keys[i]));
    i = (i + 1) & 1023;
  }
  state.SetItemsProcessed(state.iterations());
}

// --- Batched vs scalar codec, bulk buffers ---------------------------------
// The scalar loop is the pre-batch baseline: one virtual dispatch per point.
// The batch call dispatches once and runs the branch-free kernel.

void BM_EncodeScalarLoop(benchmark::State& state, CurveFamily family, int d,
                         int k) {
  const Universe u = Universe::pow2(d, k);
  const CurvePtr curve = make_curve(family, u, 1);
  const auto count = static_cast<std::size_t>(state.range(0));
  const auto cells = make_cells(u, count);
  std::vector<index_t> keys(count);
  for (auto _ : state) {
    for (std::size_t i = 0; i < count; ++i) {
      keys[i] = curve->index_of(cells[i]);
    }
    benchmark::DoNotOptimize(keys.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(count));
}

void BM_EncodeBatch(benchmark::State& state, CurveFamily family, int d, int k) {
  const Universe u = Universe::pow2(d, k);
  const CurvePtr curve = make_curve(family, u, 1);
  const auto count = static_cast<std::size_t>(state.range(0));
  const auto cells = make_cells(u, count);
  std::vector<index_t> keys(count);
  for (auto _ : state) {
    curve->index_of_batch(cells, keys);
    benchmark::DoNotOptimize(keys.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(count));
}

void BM_DecodeScalarLoop(benchmark::State& state, CurveFamily family, int d,
                         int k) {
  const Universe u = Universe::pow2(d, k);
  const CurvePtr curve = make_curve(family, u, 1);
  const auto count = static_cast<std::size_t>(state.range(0));
  std::vector<index_t> keys(count);
  Xoshiro256 rng(11);
  for (auto& key : keys) key = rng.next_below(u.cell_count());
  std::vector<Point> cells(count, Point::zero(d));
  for (auto _ : state) {
    for (std::size_t i = 0; i < count; ++i) {
      cells[i] = curve->point_at(keys[i]);
    }
    benchmark::DoNotOptimize(cells.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(count));
}

void BM_DecodeBatch(benchmark::State& state, CurveFamily family, int d, int k) {
  const Universe u = Universe::pow2(d, k);
  const CurvePtr curve = make_curve(family, u, 1);
  const auto count = static_cast<std::size_t>(state.range(0));
  std::vector<index_t> keys(count);
  Xoshiro256 rng(11);
  for (auto& key : keys) key = rng.next_below(u.cell_count());
  std::vector<Point> cells(count, Point::zero(d));
  for (auto _ : state) {
    curve->point_at_batch(keys, cells);
    benchmark::DoNotOptimize(cells.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(count));
}

void BM_MortonGenericSpread(benchmark::State& state) {
  Xoshiro256 rng(1);
  std::vector<std::uint32_t> values(1024);
  for (auto& v : values) v = static_cast<std::uint32_t>(rng.next() & 0xffff);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(spread_bits(values[i], 2, 16));
    i = (i + 1) & 1023;
  }
}

void BM_MortonMagicSpread(benchmark::State& state) {
  Xoshiro256 rng(1);
  std::vector<std::uint32_t> values(1024);
  for (auto& v : values) v = static_cast<std::uint32_t>(rng.next() & 0xffff);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(spread_bits_2(values[i]));
    i = (i + 1) & 1023;
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_Encode, z_d2_k10, CurveFamily::kZ, 2, 10);
BENCHMARK_CAPTURE(BM_Encode, z_d3_k7, CurveFamily::kZ, 3, 7);
BENCHMARK_CAPTURE(BM_Encode, simple_d2_k10, CurveFamily::kSimple, 2, 10);
BENCHMARK_CAPTURE(BM_Encode, snake_d2_k10, CurveFamily::kSnake, 2, 10);
BENCHMARK_CAPTURE(BM_Encode, gray_d2_k10, CurveFamily::kGray, 2, 10);
BENCHMARK_CAPTURE(BM_Encode, hilbert_d2_k10, CurveFamily::kHilbert, 2, 10);
BENCHMARK_CAPTURE(BM_Encode, hilbert_d3_k7, CurveFamily::kHilbert, 3, 7);

BENCHMARK_CAPTURE(BM_Decode, z_d2_k10, CurveFamily::kZ, 2, 10);
BENCHMARK_CAPTURE(BM_Decode, hilbert_d2_k10, CurveFamily::kHilbert, 2, 10);
BENCHMARK_CAPTURE(BM_Decode, simple_d2_k10, CurveFamily::kSimple, 2, 10);

BENCHMARK(BM_MortonGenericSpread);
BENCHMARK(BM_MortonMagicSpread);

// Batched vs scalar, at a CI-smoke size (16K) and the acceptance size (1M).
#define SFC_BATCH_SIZES Arg(1 << 14)->Arg(1 << 20)
BENCHMARK_CAPTURE(BM_EncodeScalarLoop, z_d2_k10, CurveFamily::kZ, 2, 10)
    ->SFC_BATCH_SIZES;
BENCHMARK_CAPTURE(BM_EncodeBatch, z_d2_k10, CurveFamily::kZ, 2, 10)
    ->SFC_BATCH_SIZES;
BENCHMARK_CAPTURE(BM_EncodeScalarLoop, z_d3_k7, CurveFamily::kZ, 3, 7)
    ->SFC_BATCH_SIZES;
BENCHMARK_CAPTURE(BM_EncodeBatch, z_d3_k7, CurveFamily::kZ, 3, 7)
    ->SFC_BATCH_SIZES;
BENCHMARK_CAPTURE(BM_EncodeScalarLoop, gray_d2_k10, CurveFamily::kGray, 2, 10)
    ->SFC_BATCH_SIZES;
BENCHMARK_CAPTURE(BM_EncodeBatch, gray_d2_k10, CurveFamily::kGray, 2, 10)
    ->SFC_BATCH_SIZES;
BENCHMARK_CAPTURE(BM_EncodeScalarLoop, hilbert_d2_k10, CurveFamily::kHilbert, 2,
                  10)
    ->SFC_BATCH_SIZES;
BENCHMARK_CAPTURE(BM_EncodeBatch, hilbert_d2_k10, CurveFamily::kHilbert, 2, 10)
    ->SFC_BATCH_SIZES;
BENCHMARK_CAPTURE(BM_DecodeScalarLoop, z_d2_k10, CurveFamily::kZ, 2, 10)
    ->SFC_BATCH_SIZES;
BENCHMARK_CAPTURE(BM_DecodeBatch, z_d2_k10, CurveFamily::kZ, 2, 10)
    ->SFC_BATCH_SIZES;
BENCHMARK_CAPTURE(BM_DecodeScalarLoop, gray_d2_k10, CurveFamily::kGray, 2, 10)
    ->SFC_BATCH_SIZES;
BENCHMARK_CAPTURE(BM_DecodeBatch, gray_d2_k10, CurveFamily::kGray, 2, 10)
    ->SFC_BATCH_SIZES;
#undef SFC_BATCH_SIZES

BENCHMARK_MAIN();
