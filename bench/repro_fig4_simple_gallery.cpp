// Figure 4 reproduction: the simple curve S on an 8x8 grid (row-major order,
// dimension 1 fastest), the curve Theorem 3 proves is asymptotically as good
// as the Z curve for average NN-stretch.
#include <iostream>

#include "bench_common.h"
#include "sfc/core/bounds.h"
#include "sfc/core/nn_stretch.h"
#include "sfc/curves/simple_curve.h"
#include "sfc/io/ascii_grid.h"

int main() {
  using namespace sfc;
  bench::print_header(
      "Figure 4 — the simple curve S on an 8x8 grid",
      "S(α) = Σ x_i side^{i-1} (Eq. 8): plain row-major order.");

  const Universe u = Universe::pow2(2, 3);
  const SimpleCurve s(u);

  std::cout << "\nDecimal keys (rows top-down are x2 = 7..0):\n";
  std::cout << render_key_grid(s);

  std::cout << "\nVisit order (S = start, E = end, * = discontinuous jump):\n";
  std::cout << render_curve_path(s);

  const NNStretchResult r = compute_nn_stretch(s);
  std::cout << "\nMetrics on this grid (n=64, d=2):\n";
  std::cout << "  Davg(S)              = " << r.average_average << "\n";
  std::cout << "  Dmax(S)              = " << r.average_maximum
            << "   (Prop. 2 exact value n^{1-1/d} = "
            << bounds::dmax_simple_exact(u) << ")\n";
  std::cout << "  Theorem-1 bound      = " << bounds::davg_lower_bound(u) << "\n";
  std::cout << "  Davg / bound         = "
            << r.average_average / bounds::davg_lower_bound(u) << "\n";
  return 0;
}
