// Ablation: the paper's §IV-B remark that Z curves built with different
// dimension interleave orders "are all equivalent ... at least for the
// metrics that we consider".
//
// We verify it exactly: for every permutation of dimensions in d=2 and d=3,
// Davg and Dmax agree to the last bit, while the per-dimension Λ_i vectors
// permute along with the order (showing *what* the reordering actually
// changes).
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "sfc/core/nn_stretch.h"
#include "sfc/curves/zcurve.h"
#include "sfc/io/table.h"

int main() {
  using namespace sfc;
  bench::print_header(
      "Ablation — Z-curve dimension-interleave order",
      "All d! orders share Davg/Dmax exactly; the Lambda_i decomposition "
      "permutes.");

  for (int d : {2, 3}) {
    const int k = d == 2 ? 5 : 3;
    const Universe u = Universe::pow2(d, k);
    std::cout << "\nd = " << d << ", k = " << k << " (n = " << u.cell_count()
              << "):\n";
    Table table({"order", "Davg", "Dmax", "Lambda vector"});
    std::vector<int> order(static_cast<std::size_t>(d));
    for (int i = 0; i < d; ++i) order[static_cast<std::size_t>(i)] = i;
    double davg_reference = -1;
    bool all_equal = true;
    do {
      const PermutedZCurve curve(u, order);
      const NNStretchResult r = compute_nn_stretch(curve);
      std::string lambdas;
      for (int i = 0; i < d; ++i) {
        lambdas += (i ? ", " : "") + to_string(r.lambda[static_cast<std::size_t>(i)]);
      }
      table.add_row({curve.name(), Table::fmt(r.average_average, 10),
                     Table::fmt(r.average_maximum, 10), lambdas});
      if (davg_reference < 0) {
        davg_reference = r.average_average;
      } else if (r.average_average != davg_reference) {
        all_equal = false;
      }
    } while (std::next_permutation(order.begin(), order.end()));
    table.print(std::cout);
    std::cout << (all_equal ? "Davg identical across all orders: CONFIRMED"
                            : "Davg differs across orders: VIOLATION")
              << "\n";
  }
  return 0;
}
