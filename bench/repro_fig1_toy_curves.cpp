// Figure 1 reproduction: the two 2x2 toy curves π1 (order C,A,B,D) and π2
// (order A,B,C,D), with the paper's worked metric values
//   Davg(π1)=1.5  Dmax(π1)=2  Davg(π2)=2  Dmax(π2)=2.5.
#include <iostream>

#include "bench_common.h"
#include "sfc/core/nn_stretch.h"
#include "sfc/curves/toy_curves.h"
#include "sfc/io/table.h"

int main() {
  using namespace sfc;
  bench::print_header(
      "Figure 1 — toy curves on the 2x2 grid",
      "Worked example of Definitions 1-4; paper values must match exactly.");

  const CurvePtr pi1 = make_figure1_pi1();
  const CurvePtr pi2 = make_figure1_pi2();

  for (const auto* curve : {pi1.get(), pi2.get()}) {
    std::cout << "\n" << curve->name() << " visit order: ";
    for (index_t key = 0; key < 4; ++key) {
      std::cout << (key ? ", " : "") << figure1_label(curve->point_at(key));
    }
    std::cout << "\n";
  }

  const NNStretchResult r1 = compute_nn_stretch(*pi1);
  const NNStretchResult r2 = compute_nn_stretch(*pi2);

  Table table({"curve", "metric", "measured", "paper", "match"});
  auto row = [&](const std::string& name, const std::string& metric,
                 double measured, double paper) {
    table.add_row({name, metric, Table::fmt(measured), Table::fmt(paper),
                   measured == paper ? "exact" : "MISMATCH"});
  };
  row("pi1", "Davg", r1.average_average, 1.5);
  row("pi1", "Dmax", r1.average_maximum, 2.0);
  row("pi2", "Davg", r2.average_average, 2.0);
  row("pi2", "Dmax", r2.average_maximum, 2.5);
  std::cout << "\n";
  table.print(std::cout);

  std::cout << "\nPer-cell average stretch of pi1 (all cells equal 1.5):\n";
  const Universe& u = pi1->universe();
  for (index_t id = 0; id < u.cell_count(); ++id) {
    const Point cell = u.from_row_major(id);
    std::cout << "  delta_avg(" << figure1_label(cell)
              << ") = " << cell_average_stretch(*pi1, cell) << "\n";
  }
  return 0;
}
