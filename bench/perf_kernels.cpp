// Paired old-vs-new microbenchmarks for the three rewritten inner-loop
// kernels, each gated in CI by tools/check_bench_speedup.py on the
// items_per_second ratio (see .github/workflows/ci.yml, BENCH_kernels.json):
//
//  - Λ slab pass: the seed produced Λ only as a rider on the full fused
//    neighbor-stats pass (per-neighbor u128 accumulation buried in the
//    per-cell statistic loop — what repro_lemma5_lambda paid for), so the
//    gated pair is that pass vs the dedicated cell-tiled two-phase Λ kernel,
//    >= 2x at 1M cells.  BM_LambdaScalarRuns charts the intermediate step
//    (scalar Λ-only runs) so the JSON separates the two sources of the win:
//    dropping the per-cell statistics, and vectorizing the diff+reduction;
//  - u128 radix sort: MSD/LSD hybrid vs the retained 16-pass LSD engine,
//    >= 1.5x at 1M keys;
//  - Peano and PermutedZ box covers: direct descent kernels vs the generic
//    batched-decoder descent (via GenericDescentCurve), >= 3x at extent-1024
//    boxes.
//
// Every pair processes identical inputs, and each new path is bit-identical
// to its baseline (tests/metrics/test_lambda_kernel.cpp,
// tests/sort/test_hybrid_radix.cpp, tests/ranges/test_descent_kernels.cpp),
// so the ratios measure pure speed, never changed answers.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "bench_common.h"
#include "sfc/curves/curve_factory.h"
#include "sfc/curves/generic_descent.h"
#include "sfc/curves/peano_curve.h"
#include "sfc/curves/zcurve.h"
#include "sfc/grid/box.h"
#include "sfc/metrics/neighbor_stats.h"
#include "sfc/metrics/slab_walker.h"
#include "sfc/parallel/thread_pool.h"
#include "sfc/ranges/range_cover.h"
#include "sfc/rng/sampling.h"
#include "sfc/rng/xoshiro256.h"
#include "sfc/sort/radix_sort.h"

namespace {

using namespace sfc;

// ---- Λ / neighbor-stats slab pass --------------------------------------

/// One whole-universe slab over a prebuilt Hilbert key table: the bench
/// times only the statistic passes, never the encode.
struct LambdaFixture {
  Universe u;
  std::vector<index_t> table;
  KeySlab slab;

  explicit LambdaFixture(int k) : u(Universe::pow2(2, k)) {
    const CurvePtr curve = make_curve(CurveFamily::kHilbert, u);
    table.resize(u.cell_count());
    ThreadPool pool(4);
    build_key_table(*curve, pool, table);
    slab.begin = 0;
    slab.end = u.cell_count();
    slab.buffer_begin = 0;
    slab.buffer_end = u.cell_count();
    slab.keys = table.data();
  }
};

template <void (*Kernel)(const Universe&, const KeySlab&,
                         std::array<u128, kMaxDim>&)>
void BM_LambdaPass(benchmark::State& state) {
  const LambdaFixture fixture(/*k=*/10);  // 2^20 cells
  std::array<u128, kMaxDim> lambda{};
  for (auto _ : state) {
    lambda.fill(0);
    Kernel(fixture.u, fixture.slab, lambda);
    benchmark::DoNotOptimize(lambda.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(fixture.u.cell_count()));
}

/// The seed's Λ path: the full fused neighbor-stats pass (Λ was only
/// available as a by-product of the per-cell statistics sweep).
void BM_LambdaPassReference(benchmark::State& state) {
  const LambdaFixture fixture(/*k=*/10);
  SlabNeighborStats stats;
  for (auto _ : state) {
    accumulate_neighbor_stats_reference(fixture.u, fixture.slab, stats);
    benchmark::DoNotOptimize(stats.lambda.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(fixture.u.cell_count()));
}

/// Intermediate step, charted not gated: scalar Λ-only run passes (work
/// reduction without the SIMD two-phase rewrite).
void BM_LambdaScalarRuns(benchmark::State& state) {
  BM_LambdaPass<accumulate_lambda_reference>(state);
}

void BM_LambdaPassTwoPhase(benchmark::State& state) {
  BM_LambdaPass<accumulate_lambda>(state);
}

/// The full per-cell neighbor-stats kernel pair (sum/max/min/degree + Λ):
/// the two-phase rewrite is bit-identical and moderately faster, but its
/// speedup is bounded by the per-cell statistic traffic, so it is charted
/// rather than gated.
template <void (*Kernel)(const Universe&, const KeySlab&, SlabNeighborStats&)>
void BM_NeighborStatsPass(benchmark::State& state) {
  const LambdaFixture fixture(/*k=*/10);
  SlabNeighborStats stats;
  for (auto _ : state) {
    Kernel(fixture.u, fixture.slab, stats);
    benchmark::DoNotOptimize(stats.lambda.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(fixture.u.cell_count()));
}

void BM_NeighborStatsReference(benchmark::State& state) {
  BM_NeighborStatsPass<accumulate_neighbor_stats_reference>(state);
}

void BM_NeighborStatsTwoPhase(benchmark::State& state) {
  BM_NeighborStatsPass<accumulate_neighbor_stats>(state);
}

// ---- u128 radix sort ----------------------------------------------------

std::vector<u128> random_u128(std::size_t count, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<u128> keys(count);
  for (auto& key : keys) {
    key = (static_cast<u128>(rng.next()) << 64) | rng.next();
  }
  return keys;
}

void BM_SortU128Lsd(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  const std::vector<u128> master = random_u128(count, 27);
  std::vector<u128> keys(count);
  for (auto _ : state) {
    std::copy(master.begin(), master.end(), keys.begin());
    lsd_radix_sort_keys(keys);
    benchmark::DoNotOptimize(keys.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(count));
}

void BM_SortU128Hybrid(benchmark::State& state) {
  const auto count = static_cast<std::size_t>(state.range(0));
  const std::vector<u128> master = random_u128(count, 27);
  std::vector<u128> keys(count);
  for (auto _ : state) {
    std::copy(master.begin(), master.end(), keys.begin());
    radix_sort_keys(keys);
    benchmark::DoNotOptimize(keys.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(count));
}

// ---- Peano / PermutedZ descent ------------------------------------------

std::vector<Box> query_boxes(const Universe& u, coord_t extent, int count,
                             std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Box> boxes;
  boxes.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) boxes.push_back(random_box(u, extent, rng));
  return boxes;
}

void run_cover_bench(benchmark::State& state, const SpaceFillingCurve& curve,
                     coord_t extent) {
  const RangeCoverEngine engine(curve);
  const std::vector<Box> boxes = query_boxes(curve.universe(), extent, 4, 99);
  CoverWorkspace ws;
  std::size_t at = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.cover(boxes[at], ws).data());
    at = (at + 1) % boxes.size();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(boxes[0].cell_count()));
}

void BM_PeanoCoverGenericDescent(benchmark::State& state) {
  const PeanoCurve curve(Universe(2, 2187));  // 3^7: ~4.8M cells
  const GenericDescentCurve generic(curve);
  run_cover_bench(state, generic, static_cast<coord_t>(state.range(0)));
}

void BM_PeanoCoverDirectKernel(benchmark::State& state) {
  const PeanoCurve curve(Universe(2, 2187));
  run_cover_bench(state, curve, static_cast<coord_t>(state.range(0)));
}

void BM_PermutedZCoverGenericDescent(benchmark::State& state) {
  // 2^40-cell universe: descent covers never materialize keys, so depth is
  // free for the direct kernel while the generic baseline pays its per-level
  // decode cost in full.
  const PermutedZCurve curve(Universe::pow2(2, 20), {1, 0});
  const GenericDescentCurve generic(curve);
  run_cover_bench(state, generic, static_cast<coord_t>(state.range(0)));
}

void BM_PermutedZCoverDirectKernel(benchmark::State& state) {
  const PermutedZCurve curve(Universe::pow2(2, 20), {1, 0});
  run_cover_bench(state, curve, static_cast<coord_t>(state.range(0)));
}

// ---- Parallel huge-box cover --------------------------------------------

/// Serial vs pooled descent on one large unaligned box (every face off any
/// subcube grid, so the frontier reaches single-cell nodes).  Not CI-gated —
/// the win depends on core count — but charted by the trajectory tooling.
void BM_CoverSingleBox(benchmark::State& state, bool parallel) {
  const Universe u = Universe::pow2(2, 14);
  const CurvePtr curve = make_curve(CurveFamily::kHilbert, u);
  const coord_t extent = 4096;
  const Box box(Point{1001, 2003},
                Point{1001 + extent - 1, 2003 + extent - 1});
  ThreadPool pool(4);
  const RangeCoverEngine engine(*curve, parallel ? &pool : nullptr);
  CoverWorkspace ws;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.cover(box, ws).data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(box.cell_count()));
}

void BM_CoverSingleBoxSerial(benchmark::State& state) {
  BM_CoverSingleBox(state, false);
}

void BM_CoverSingleBoxParallel(benchmark::State& state) {
  BM_CoverSingleBox(state, true);
}

}  // namespace

BENCHMARK(BM_LambdaPassReference)->Arg(1 << 20);
BENCHMARK(BM_LambdaScalarRuns)->Arg(1 << 20);
BENCHMARK(BM_LambdaPassTwoPhase)->Arg(1 << 20);
BENCHMARK(BM_NeighborStatsReference)->Arg(1 << 20);
BENCHMARK(BM_NeighborStatsTwoPhase)->Arg(1 << 20);
BENCHMARK(BM_SortU128Lsd)->Arg(1 << 20);
BENCHMARK(BM_SortU128Hybrid)->Arg(1 << 20);
BENCHMARK(BM_PeanoCoverGenericDescent)->Arg(1024);
BENCHMARK(BM_PeanoCoverDirectKernel)->Arg(1024);
BENCHMARK(BM_PermutedZCoverGenericDescent)->Arg(1024);
BENCHMARK(BM_PermutedZCoverDirectKernel)->Arg(1024);
BENCHMARK(BM_CoverSingleBoxSerial)->UseRealTime();
BENCHMARK(BM_CoverSingleBoxParallel)->UseRealTime();

BENCHMARK_MAIN();
