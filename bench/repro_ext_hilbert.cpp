// §VI extension: the paper lists "an analysis of the average NN-stretch of
// the Hilbert SFC" as an open question.  This bench measures it empirically:
// normalized Davg (d*Davg/n^{1-1/d}) for the Hilbert curve versus the
// Z curve, Gray curve, and the Theorem-1 bound, in 2..4 dimensions.
#include <iostream>

#include "bench_common.h"
#include "sfc/core/bounds.h"
#include "sfc/core/convergence.h"
#include "sfc/io/table.h"

int main() {
  using namespace sfc;
  const auto scale = bench::scale_from_env();
  bench::print_header(
      "Extension (§VI open question) — average NN-stretch of the Hilbert curve",
      "Empirical Davg(Hilbert) vs Z / Gray / bound; normalized to n^{1-1/d}/d.");

  SweepOptions options;
  options.max_cells = bench::cell_budget(scale);

  for (int d = 2; d <= 4; ++d) {
    const auto hilbert = davg_sweep(CurveFamily::kHilbert, d, 1, 30, options);
    const auto z = davg_sweep(CurveFamily::kZ, d, 1, 30, options);
    const auto gray = davg_sweep(CurveFamily::kGray, d, 1, 30, options);
    std::cout << "\nd = " << d << " (columns show d*Davg/n^{1-1/d}; bound row "
              << "would be 2/3):\n";
    Table table({"k", "n", "hilbert", "z-curve", "gray", "hilbert/z",
                 "hilbert/LB"});
    for (std::size_t i = 0; i < hilbert.size(); ++i) {
      table.add_row({std::to_string(hilbert[i].level_bits),
                     Table::fmt_int(hilbert[i].n),
                     Table::fmt(hilbert[i].normalized_davg, 5),
                     Table::fmt(z[i].normalized_davg, 5),
                     Table::fmt(gray[i].normalized_davg, 5),
                     Table::fmt(hilbert[i].davg / z[i].davg, 4),
                     Table::fmt(hilbert[i].ratio_to_bound, 4)});
    }
    table.print(std::cout);
  }

  std::cout << "\nReading: if the hilbert column converges to a constant c, "
               "then Davg(Hilbert) ~ (c/d) n^{1-1/d}; c/(2/3) is its "
               "optimality gap (the Z curve's is exactly 1.5).  The measured "
               "constant answers the paper's open question empirically: "
               "Hilbert is in the same near-optimal class, slightly ahead "
               "of or behind Z depending on dimension.\n";
  return 0;
}
