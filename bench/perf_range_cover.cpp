// Microbenchmarks: the hierarchical box→key-range cover engine (sfc/ranges)
// against the slab-streamed enumeration path it supersedes.
//
// CI gate (tools/check_bench_speedup.py): the cover engine must be >= 10x
// the enumeration path on 2D Hilbert boxes, at extent 64 (4096 cells) and at
// extent 1024 (1M cells).  Enumeration is O(volume · log volume) with an
// O(volume) key buffer; the cover descent is O(runs · log side) with O(runs)
// memory, so the gap widens without bound as boxes grow.
//
// SFC_SCALE=large (the nightly job) additionally runs the cover engine on a
// 2^28-side universe with extent-2^20 boxes — 2^40 cells per box, *far*
// above enumeration's memory ceiling (the 8-TiB key buffer alone is
// unbuildable), demonstrating the output-sensitive path is the only one
// that scales.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "bench_common.h"
#include "sfc/apps/range_query.h"
#include "sfc/curves/curve_factory.h"
#include "sfc/grid/box.h"
#include "sfc/ranges/range_cover.h"
#include "sfc/rng/sampling.h"

namespace {

using namespace sfc;

/// Deterministic batch of query boxes of the given extent, shared by both
/// engines so they process identical inputs.
std::vector<Box> query_boxes(const Universe& u, coord_t extent, int count,
                             std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Box> boxes;
  boxes.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) boxes.push_back(random_box(u, extent, rng));
  return boxes;
}

void BM_RunCountEnumeration(benchmark::State& state, CurveFamily family) {
  const Universe u = Universe::pow2(2, 12);  // 4096^2 universe
  const CurvePtr curve = make_curve(family, u);
  const coord_t extent = static_cast<coord_t>(state.range(0));
  const std::vector<Box> boxes = query_boxes(u, extent, 4, 99);
  std::size_t at = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        count_key_runs(*curve, boxes[at], RunCountEngine::kEnumeration));
    at = (at + 1) % boxes.size();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(boxes[0].cell_count()));
}

void BM_RunCountCover(benchmark::State& state, CurveFamily family) {
  const Universe u = Universe::pow2(2, 12);
  const CurvePtr curve = make_curve(family, u);
  const coord_t extent = static_cast<coord_t>(state.range(0));
  const std::vector<Box> boxes = query_boxes(u, extent, 4, 99);
  std::size_t at = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        count_key_runs(*curve, boxes[at], RunCountEngine::kCover));
    at = (at + 1) % boxes.size();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(boxes[0].cell_count()));
}

/// Interval-table materialization (what sfctool cover / an index scan uses),
/// not just the run count.
void BM_CoverIntervals(benchmark::State& state, CurveFamily family) {
  const Universe u = Universe::pow2(2, 12);
  const CurvePtr curve = make_curve(family, u);
  const RangeCoverEngine engine(*curve);
  const coord_t extent = static_cast<coord_t>(state.range(0));
  const std::vector<Box> boxes = query_boxes(u, extent, 4, 99);
  std::size_t at = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.cover(boxes[at]));
    at = (at + 1) % boxes.size();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(boxes[0].cell_count()));
}

/// Nightly-scale: universes where a box holds 2^40 cells and enumeration is
/// impossible (its key buffer alone would be 8 TiB).  items == cells covered,
/// so throughput shows the output-sensitive engine "processing" trillions of
/// cells per second.
void BM_CoverHugeUniverse(benchmark::State& state) {
  const Universe u = Universe::pow2(2, static_cast<int>(state.range(0)));
  const CurvePtr h = make_curve(CurveFamily::kHilbert, u);
  const RangeCoverEngine engine(*h);
  const coord_t extent = u.side() >> 8;  // extent 2^20 at side 2^28
  const std::vector<Box> boxes = query_boxes(u, extent, 4, 99);
  std::size_t at = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.cover(boxes[at]));
    at = (at + 1) % boxes.size();
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(boxes[0].cell_count()));
}

void HugeScaleArgs(benchmark::internal::Benchmark* b) {
  b->Arg(20);  // side 2^20: extent-4096 boxes, 16M cells each
  if (sfc::bench::scale_from_env() == sfc::bench::Scale::kLarge) {
    b->Arg(28);  // side 2^28: extent-2^20 boxes, 2^40 cells each
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_RunCountEnumeration, hilbert, CurveFamily::kHilbert)
    ->Arg(64)
    ->Arg(1024)
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_RunCountCover, hilbert, CurveFamily::kHilbert)
    ->Arg(64)
    ->Arg(1024)
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_RunCountEnumeration, z, CurveFamily::kZ)
    ->Arg(64)
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_RunCountCover, z, CurveFamily::kZ)
    ->Arg(64)
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_CoverIntervals, hilbert, CurveFamily::kHilbert)
    ->Arg(64)
    ->Arg(1024)
    ->UseRealTime();
BENCHMARK(BM_CoverHugeUniverse)->Apply(HugeScaleArgs)->UseRealTime();

BENCHMARK_MAIN();
