// Ablation: is continuity enough?  All continuous curves (snake, spiral,
// Hilbert, Peano) obey the same Theorem-1 bound, and their average
// NN-stretch constants differ only by the constant factor the paper's
// observation 3 predicts.  The diagonal (JPEG zigzag) curve joins as a
// classic discontinuous baseline.
#include <iostream>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "sfc/core/bounds.h"
#include "sfc/core/nn_stretch.h"
#include "sfc/curves/curve_factory.h"
#include "sfc/curves/diagonal_curve.h"
#include "sfc/curves/peano_curve.h"
#include "sfc/curves/spiral_curve.h"
#include "sfc/io/table.h"

int main() {
  using namespace sfc;
  const auto scale = bench::scale_from_env();
  bench::print_header(
      "Ablation — continuous curves (snake / spiral / hilbert / peano)",
      "Continuity bounds Dmin at 1 but cannot beat the Theorem-1 Davg bound.");

  const int k = scale == bench::Scale::kSmall ? 6 : 8;
  const coord_t pow2_side = coord_t{1} << k;
  // Peano needs a power-of-three side; use the closest one.
  coord_t pow3_side = 3;
  while (pow3_side * 3 <= pow2_side) pow3_side *= 3;

  std::cout << "\n2-d comparison (power-of-two grids side " << pow2_side
            << ", peano on side " << pow3_side << "):\n";
  Table table({"curve", "side", "Davg", "Davg/LB", "Dmax", "Dmin",
               "continuous"});

  auto add_row = [&](const SpaceFillingCurve& curve) {
    const NNStretchResult r = compute_nn_stretch(curve);
    const double lb = bounds::davg_lower_bound(curve.universe());
    table.add_row({curve.name(), std::to_string(curve.universe().side()),
                   Table::fmt(r.average_average),
                   Table::fmt(r.average_average / lb, 4),
                   Table::fmt(r.average_maximum),
                   Table::fmt(r.average_minimum, 4),
                   curve.is_continuous() ? "yes" : "no"});
  };

  const Universe u2 = Universe(2, pow2_side);
  for (CurveFamily family :
       {CurveFamily::kSnake, CurveFamily::kHilbert, CurveFamily::kZ,
        CurveFamily::kSimple}) {
    if (family_requires_pow2(family) && !u2.power_of_two_side()) continue;
    add_row(*make_curve(family, u2));
  }
  add_row(SpiralCurve(u2));
  add_row(DiagonalCurve(u2));
  add_row(PeanoCurve(Universe(2, pow3_side)));
  table.print(std::cout);

  std::cout << "\nExpected shape: every continuous curve has Dmin = 1 "
               "exactly (a curve-adjacent cell is always a grid neighbor), "
               "but continuity fixes nothing about Davg: snake sits at the "
               "simple curve's 1.52, hilbert/peano near 1.8, while the "
               "spiral pays ~3.9 (its rings put radial neighbors half a "
               "perimeter apart).  The diagonal (JPEG zigzag) curve lands "
               "at exactly 2x the bound.  All are Theta(n^{1/2}) — "
               "Theorem 1 spares no bijection, continuous or not.\n";
  return 0;
}
