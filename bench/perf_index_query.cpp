// Microbenchmarks: the SFC point index (sfc/index) serving range and kNN
// queries against the full-scan paths it supersedes.
//
// CI gate (tools/check_bench_speedup.py): cover-driven index range scans
// must be >= 5x the full scan at 1M points (2D Hilbert, extent-32 boxes).
// The full scan touches every row per query; the index touches
// O(runs · log n + output) rows, so the gap widens with dataset size.
//
// SFC_SCALE=large (the nightly job) additionally runs a 64M-point
// build+query pass (side-8192 universe, one point per cell on average) —
// index construction at data-center dataset sizes plus the same query pair.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "bench_common.h"
#include "sfc/curves/curve_factory.h"
#include "sfc/grid/box.h"
#include "sfc/index/executor.h"
#include "sfc/index/knn.h"
#include "sfc/index/point_index.h"
#include "sfc/index/range_scan.h"
#include "sfc/rng/sampling.h"

namespace {

using namespace sfc;

std::vector<Point> uniform_points(const Universe& u, std::uint64_t count,
                                  std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Point> points;
  points.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) points.push_back(random_cell(u, rng));
  return points;
}

std::vector<Box> query_boxes(const Universe& u, coord_t extent, int count,
                             std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Box> boxes;
  boxes.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) boxes.push_back(random_box(u, extent, rng));
  return boxes;
}

/// One point per cell on average: bits k -> 4^k points in a 2^k-side 2D
/// Hilbert universe (bits 10 = 1M points, bits 13 = 64M points).
void BM_IndexBuild(benchmark::State& state) {
  const Universe u = Universe::pow2(2, static_cast<int>(state.range(0)));
  const CurvePtr h = make_curve(CurveFamily::kHilbert, u);
  const std::vector<Point> points = uniform_points(u, u.cell_count(), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PointIndex::build(*h, points));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(points.size()));
}

void BM_RangeQueryFullScan(benchmark::State& state) {
  const Universe u = Universe::pow2(2, static_cast<int>(state.range(0)));
  const CurvePtr h = make_curve(CurveFamily::kHilbert, u);
  const PointIndex index =
      PointIndex::build(*h, uniform_points(u, u.cell_count(), 7));
  const std::vector<Box> boxes =
      query_boxes(u, static_cast<coord_t>(state.range(1)), 4, 99);
  std::size_t at = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(range_scan_full(index, boxes[at]));
    at = (at + 1) % boxes.size();
  }
  state.SetItemsProcessed(state.iterations());  // queries served
}

void BM_RangeQueryIndexScan(benchmark::State& state) {
  const Universe u = Universe::pow2(2, static_cast<int>(state.range(0)));
  const CurvePtr h = make_curve(CurveFamily::kHilbert, u);
  const PointIndex index =
      PointIndex::build(*h, uniform_points(u, u.cell_count(), 7));
  const std::vector<Box> boxes =
      query_boxes(u, static_cast<coord_t>(state.range(1)), 4, 99);
  RangeScanEngine engine(index);
  std::vector<std::uint32_t> ids;
  std::size_t at = 0;
  for (auto _ : state) {
    engine.scan(boxes[at], &ids);
    benchmark::DoNotOptimize(ids.data());
    at = (at + 1) % boxes.size();
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_KnnFullScan(benchmark::State& state) {
  const Universe u = Universe::pow2(2, static_cast<int>(state.range(0)));
  const CurvePtr h = make_curve(CurveFamily::kHilbert, u);
  const PointIndex index =
      PointIndex::build(*h, uniform_points(u, u.cell_count(), 7));
  Xoshiro256 rng(55);
  std::vector<Point> queries;
  for (int i = 0; i < 16; ++i) queries.push_back(random_cell(u, rng));
  std::size_t at = 0;
  for (auto _ : state) {
    // Reference cost: rank every row (what serving kNN without the subtree
    // descent would pay).
    const Point& q = queries[at];
    std::uint64_t best = ~std::uint64_t{0};
    for (std::uint64_t row = 0; row < index.row_count(); ++row) {
      const std::uint64_t d =
          squared_euclidean_distance(q, index.point_of_row(row));
      if (d < best) best = d;
    }
    benchmark::DoNotOptimize(best);
    at = (at + 1) % queries.size();
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_KnnIndexScan(benchmark::State& state) {
  const Universe u = Universe::pow2(2, static_cast<int>(state.range(0)));
  const CurvePtr h = make_curve(CurveFamily::kHilbert, u);
  const PointIndex index =
      PointIndex::build(*h, uniform_points(u, u.cell_count(), 7));
  KnnEngine engine(index);
  Xoshiro256 rng(55);
  std::vector<Point> queries;
  for (int i = 0; i < 16; ++i) queries.push_back(random_cell(u, rng));
  std::size_t at = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.query(queries[at], 10));
    at = (at + 1) % queries.size();
  }
  state.SetItemsProcessed(state.iterations());
}

/// Batched serving throughput: the multi-query executor on the shared pool.
void BM_ExecutorRangeBatch(benchmark::State& state) {
  const Universe u = Universe::pow2(2, static_cast<int>(state.range(0)));
  const CurvePtr h = make_curve(CurveFamily::kHilbert, u);
  const PointIndex index =
      PointIndex::build(*h, uniform_points(u, u.cell_count(), 7));
  const std::vector<Box> boxes =
      query_boxes(u, static_cast<coord_t>(state.range(1)), 256, 99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_range_queries(index, boxes));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(boxes.size()));
}

void DefaultScaleArgs(benchmark::internal::Benchmark* b) {
  b->Args({10, 32});  // 1M points, extent-32 boxes (the CI gate pair)
  if (sfc::bench::scale_from_env() == sfc::bench::Scale::kLarge) {
    b->Args({13, 256});  // 64M points
  }
}

void BuildScaleArgs(benchmark::internal::Benchmark* b) {
  b->Arg(10);
  if (sfc::bench::scale_from_env() == sfc::bench::Scale::kLarge) {
    b->Arg(13);
  }
}

}  // namespace

BENCHMARK(BM_IndexBuild)->Apply(BuildScaleArgs)->UseRealTime();
BENCHMARK(BM_RangeQueryFullScan)->Apply(DefaultScaleArgs)->UseRealTime();
BENCHMARK(BM_RangeQueryIndexScan)->Apply(DefaultScaleArgs)->UseRealTime();
BENCHMARK(BM_KnnFullScan)->Apply(BuildScaleArgs)->UseRealTime();
BENCHMARK(BM_KnnIndexScan)->Apply(BuildScaleArgs)->UseRealTime();
BENCHMARK(BM_ExecutorRangeBatch)->Apply(DefaultScaleArgs)->UseRealTime();

BENCHMARK_MAIN();
