// Application bench: adaptive mesh refinement partitioning (intro refs
// [22, 23] — Parashar–Browne and Pilkington–Baden dynamic grids).
//
// A quadtree mesh refined around hot spots is partitioned by cutting the
// leaf sequence (ordered by each curve) into cost-balanced contiguous
// ranges; edge cut is measured on the finest grid.  The SFC choice decides
// the communication volume of the dynamic mesh exactly as it does for the
// uniform grid.
#include <iostream>

#include "bench_common.h"
#include "sfc/apps/amr.h"
#include "sfc/curves/curve_factory.h"
#include "sfc/io/table.h"

int main() {
  using namespace sfc;
  const auto scale = bench::scale_from_env();
  bench::print_header(
      "Application — adaptive mesh refinement partitioning",
      "Cost-balanced SFC splits of a hotspot-refined quadtree mesh.");

  const int bits = scale == bench::Scale::kSmall ? 5 : 6;
  const auto density = make_hotspot_density(2, bits, 4, 2024);
  // Threshold 4 produces a genuinely adaptive mesh (hundreds of leaves at
  // bits=6); coarser meshes make partition comparisons mostly noise.
  const AmrMesh mesh = build_amr_mesh(2, bits, density, 4.0);
  const Universe finest = mesh.finest_universe();

  std::cout << "\nmesh: " << finest.side() << "x" << finest.side()
            << " finest grid, " << mesh.leaves.size()
            << " leaves (adaptive), total cells " << mesh.covered_cells()
            << "\n\n";

  Table table({"curve", "P", "edge cut", "cut fraction", "cost imbalance"});
  for (CurveFamily family : all_curve_families()) {
    const CurvePtr curve = make_curve(family, finest, 1);
    for (int parts : {4, 16}) {
      const AmrPartitionQuality q = evaluate_amr_partition(mesh, *curve, parts);
      table.add_row({curve->name(), std::to_string(parts),
                     Table::fmt_int(q.edge_cut), Table::fmt(q.cut_fraction, 4),
                     Table::fmt(q.cost_imbalance, 4)});
    }
  }
  table.print(std::cout);

  std::cout << "\nExpected shape: the curve ranking from the uniform-grid "
               "partition bench carries over to the adaptive mesh — "
               "hilbert/z/gray cut least, random cuts nearly everything — "
               "while the cost-balanced split keeps imbalance close to 1 "
               "for every ordering.\n";
  return 0;
}
