// Application bench: Barnes-Hut N-body on Morton-ordered particles (intro
// ref [26]).
//
// Demonstrates why N-body codes use SFC orderings: (1) tree accelerations
// match direct summation, (2) Morton-sorting the particle array speeds up
// the force loop through cache locality, (3) energy stays stable over a
// short leapfrog run.
#include <chrono>
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "sfc/apps/nbody.h"
#include "sfc/io/table.h"
#include "sfc/rng/sampling.h"

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  using namespace sfc;
  const auto scale = bench::scale_from_env();
  bench::print_header(
      "Application — Barnes-Hut N-body with Morton ordering",
      "Tree accuracy vs direct summation; locality benefit of SFC sorting.");

  const std::size_t count = scale == bench::Scale::kSmall ? 1000 : 4000;
  NBodyParams params;
  params.dim = 3;
  params.theta = 0.5;
  params.softening = 5e-3;

  // --- Accuracy. ---
  {
    BarnesHut sim(make_clustered_particles(count, 3, 4, 2024), params);
    sim.sort_by_morton();
    const auto tree = sim.compute_accelerations();
    const auto direct = sim.direct_accelerations();
    double err_num = 0, err_den = 0;
    for (std::size_t i = 0; i < tree.size(); ++i) {
      for (int c = 0; c < 3; ++c) {
        const double diff = tree[i][static_cast<std::size_t>(c)] -
                            direct[i][static_cast<std::size_t>(c)];
        err_num += diff * diff;
        err_den += direct[i][static_cast<std::size_t>(c)] *
                   direct[i][static_cast<std::size_t>(c)];
      }
    }
    std::cout << "\n[accuracy] n = " << count << ", theta = " << params.theta
              << ": relative L2 acceleration error = "
              << std::sqrt(err_num / err_den) << " (tree nodes: "
              << sim.last_tree_nodes() << ")\n";
  }

  // --- Locality: force evaluation with Morton-sorted vs shuffled order. ---
  {
    auto particles = make_clustered_particles(count, 3, 4, 7);
    // Shuffled copy.
    auto shuffled = particles;
    Xoshiro256 rng(3);
    for (std::size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[rng.next_below(i)]);
    }

    BarnesHut sorted_sim(particles, params);
    sorted_sim.sort_by_morton();
    BarnesHut shuffled_sim(shuffled, params);

    const int reps = scale == bench::Scale::kSmall ? 3 : 5;
    auto time_accels = [&](BarnesHut& sim) {
      const auto start = std::chrono::steady_clock::now();
      for (int rep = 0; rep < reps; ++rep) sim.compute_accelerations();
      return seconds_since(start) / reps;
    };
    const double sorted_time = time_accels(sorted_sim);
    const double shuffled_time = time_accels(shuffled_sim);
    std::cout << "\n[locality] mean force-evaluation time over " << reps
              << " reps:\n";
    std::cout << "  morton-sorted particle array: " << sorted_time * 1e3 << " ms\n";
    std::cout << "  shuffled particle array:      " << shuffled_time * 1e3
              << " ms\n";
    std::cout << "  speedup from SFC ordering:    "
              << shuffled_time / sorted_time << "x\n";
  }

  // --- Stability. ---
  {
    BarnesHut sim(make_clustered_particles(count / 4, 3, 2, 99), params);
    sim.sort_by_morton();
    const double e0 = sim.total_energy();
    for (int step = 0; step < 10; ++step) sim.step(5e-4);
    const double e1 = sim.total_energy();
    std::cout << "\n[stability] 10 leapfrog steps, n = " << count / 4
              << ": energy " << e0 << " -> " << e1 << " (relative drift "
              << std::abs(e1 - e0) / std::abs(e0) << ")\n";
  }

  std::cout << "\nExpected shape: sub-5% force error at theta=0.5; the "
               "morton-sorted array evaluates forces faster than the "
               "shuffled one (same tree, better cache behaviour); energy "
               "drift stays small.\n";
  return 0;
}
