// Application bench: nearest-neighbor queries via curve windows (intro
// ref [5]).
//
// How wide a window of curve keys around a query must be scanned before the
// query's spatial nearest neighbors appear — the per-cell NN stretch made
// operational.  Quantiles over sampled query cells.
#include <iostream>

#include "bench_common.h"
#include "sfc/apps/nn_query.h"
#include "sfc/core/bounds.h"
#include "sfc/curves/curve_factory.h"
#include "sfc/io/table.h"

int main() {
  using namespace sfc;
  const auto scale = bench::scale_from_env();
  bench::print_header(
      "Application — kNN search through a one-dimensional curve window",
      "Window to FIRST spatial neighbor (Dmin) and to ALL neighbors (Dmax).");

  const std::uint64_t samples = scale == bench::Scale::kSmall ? 2000 : 20000;

  for (int d : {2, 3}) {
    const int k = d == 2 ? 7 : 5;
    const Universe u = Universe::pow2(d, k);
    std::cout << "\nd = " << d << ", side = " << u.side()
              << ", n = " << u.cell_count() << " (n^{1-1/d} = "
              << bounds::n_pow_1m1d(u) << "), " << samples << " queries:\n";
    Table table({"curve", "window", "mean", "p50", "p95", "p99", "max"});
    for (CurveFamily family : all_curve_families()) {
      const CurvePtr curve = make_curve(family, u, 1);
      const NNWindowStats stats = measure_nn_window(*curve, samples, 99);
      auto add = [&](const std::string& which, const WindowQuantiles& q) {
        table.add_row({curve->name(), which, Table::fmt(q.mean, 5),
                       Table::fmt(q.p50), Table::fmt(q.p95),
                       Table::fmt(q.p99), Table::fmt(q.max)});
      };
      add("first-NN", stats.first_neighbor);
      add("all-NN", stats.all_neighbors);
    }
    table.print(std::cout);
  }

  std::cout << "\nExpected shape: continuous curves (hilbert, snake) reach a "
               "first neighbor at window 1 by construction (p50 = 1); the "
               "all-NN window is governed by Dmax and is ~n^{1-1/d} for the "
               "simple curve (Prop. 2); random curves need ~n/3 either way.\n";
  return 0;
}
