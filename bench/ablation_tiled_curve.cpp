// Ablation: how much recursive blocking does low stretch need?
//
// The tiled curve interpolates between the simple curve (tile = 1 or side)
// and Z-style blocking (recursive halving).  Sweeping the tile side shows
// Davg is asymptotically insensitive (Theorem 3 says even no blocking is
// fine) while Dmax and the application metrics respond strongly.
#include <iostream>

#include "bench_common.h"
#include "sfc/apps/range_query.h"
#include "sfc/core/bounds.h"
#include "sfc/core/nn_stretch.h"
#include "sfc/curves/tiled_curve.h"
#include "sfc/curves/zcurve.h"
#include "sfc/io/table.h"

int main() {
  using namespace sfc;
  const auto scale = bench::scale_from_env();
  bench::print_header(
      "Ablation — tile size sweep (simple curve -> blocked layouts)",
      "Davg barely moves (Theorem 3's message); Dmax and clustering do.");

  const int k = scale == bench::Scale::kSmall ? 5 : 7;
  const Universe u = Universe::pow2(2, k);
  std::cout << "\n2-d grid, side " << u.side() << " (n = " << u.cell_count()
            << "), Theorem-1 bound " << bounds::davg_lower_bound(u) << ":\n";

  Table table({"curve", "tile", "Davg", "Davg/LB", "Dmax",
               "mean runs (4x4 boxes)"});
  for (coord_t tile = 1; tile <= u.side(); tile *= 2) {
    const TiledCurve curve(u, tile);
    const NNStretchResult r = compute_nn_stretch(curve);
    const ClusteringStats cluster = random_box_clustering(curve, 4, 200, 7);
    table.add_row({curve.name(), std::to_string(tile),
                   Table::fmt(r.average_average),
                   Table::fmt(r.average_average / bounds::davg_lower_bound(u), 4),
                   Table::fmt(r.average_maximum),
                   Table::fmt(cluster.mean_runs, 4)});
  }
  // Z curve reference row (the "fully recursive" limit).
  {
    const ZCurve z(u);
    const NNStretchResult r = compute_nn_stretch(z);
    const ClusteringStats cluster = random_box_clustering(z, 4, 200, 7);
    table.add_row({"z-curve", "rec.", Table::fmt(r.average_average),
                   Table::fmt(r.average_average / bounds::davg_lower_bound(u), 4),
                   Table::fmt(r.average_maximum),
                   Table::fmt(cluster.mean_runs, 4)});
  }
  table.print(std::cout);

  std::cout << "\nExpected shape: the Davg column varies only within a "
               "constant band (every tile size is near-optimal, echoing "
               "Theorem 3), while Dmax improves from n^{1/2} toward the "
               "Z curve's as tiles shrink the long jumps, and clustering "
               "is best at intermediate tiles matching the query size.\n";
  return 0;
}
