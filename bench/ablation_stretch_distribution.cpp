// Ablation: the per-cell stretch *distribution* behind the paper's Davg /
// Dmax contrast (§V-A: "for a vast majority of cells ... the distance to
// two of the nearest neighbors is large, while the other 2d-2 are much
// closer").
//
// Prints quantiles of δavg and δmax per curve, plus the δavg histogram of
// the simple curve, making the paper's intuition visible.  Also prints the
// exact finite-n closed forms we derived for Davg(Z) and Davg(S) — the
// sharpened versions of Theorems 2 and 3 — against the measured means.
#include <iostream>

#include "bench_common.h"
#include "sfc/core/bounds.h"
#include "sfc/core/stretch_distribution.h"
#include "sfc/curves/curve_factory.h"
#include "sfc/io/table.h"

int main() {
  using namespace sfc;
  const auto scale = bench::scale_from_env();
  bench::print_header(
      "Ablation — per-cell stretch distributions (and exact closed forms)",
      "Quantiles of delta_avg / delta_max per curve; exact Davg(Z), Davg(S).");

  const int k = scale == bench::Scale::kSmall ? 5 : 7;
  const Universe u = Universe::pow2(2, k);
  std::cout << "\n2-d grid, side " << u.side() << " (n = " << u.cell_count()
            << "):\n";

  Table table({"curve", "stat", "mean", "p10", "p50", "p90", "p99", "max"});
  for (CurveFamily family : all_curve_families()) {
    const CurvePtr curve = make_curve(family, u, 1);
    const StretchDistribution dist = compute_stretch_distribution(*curve);
    auto add = [&](const std::string& stat, const DistributionSummary& s) {
      table.add_row({curve->name(), stat, Table::fmt(s.mean), Table::fmt(s.p10),
                     Table::fmt(s.p50), Table::fmt(s.p90), Table::fmt(s.p99),
                     Table::fmt(s.max)});
    };
    add("delta_avg", dist.cell_average);
    add("delta_max", dist.cell_maximum);
  }
  table.print(std::cout);

  std::cout << "\nExact finite-n closed forms vs measured means (our "
               "sharpening of Theorems 2/3 — the paper gives only the "
               "asymptote):\n";
  Table exact({"curve", "measured Davg", "closed form", "abs diff"});
  {
    const CurvePtr z = make_curve(CurveFamily::kZ, u);
    const double measured = compute_stretch_distribution(*z).cell_average.mean;
    const double closed = bounds::davg_z_exact(u);
    exact.add_row({"z-curve", Table::fmt(measured, 10), Table::fmt(closed, 10),
                   Table::fmt(std::abs(measured - closed), 3)});
  }
  {
    const CurvePtr s = make_curve(CurveFamily::kSimple, u);
    const double measured = compute_stretch_distribution(*s).cell_average.mean;
    const double closed = bounds::davg_simple_exact(u);
    exact.add_row({"simple", Table::fmt(measured, 10), Table::fmt(closed, 10),
                   Table::fmt(std::abs(measured - closed), 3)});
  }
  exact.print(std::cout);

  std::cout << "\nSimple-curve delta_avg histogram (the §V-A intuition: a "
               "narrow spike — almost every cell has the same two far "
               "neighbors):\n";
  DistributionOptions options;
  options.histogram_bins = 12;
  const StretchDistribution dist = compute_stretch_distribution(
      *make_curve(CurveFamily::kSimple, u), options);
  for (std::size_t bucket = 0; bucket < dist.average_histogram.size(); ++bucket) {
    const double lo = static_cast<double>(bucket) * dist.histogram_bucket_width;
    std::cout << "  [" << Table::fmt(lo, 4) << ", "
              << Table::fmt(lo + dist.histogram_bucket_width, 4) << "): ";
    const auto count = dist.average_histogram[bucket];
    const auto bar_length = static_cast<std::size_t>(
        60.0 * static_cast<double>(count) / static_cast<double>(dist.n));
    std::cout << std::string(bar_length, '#') << " " << count << "\n";
  }

  std::cout << "\nWith the closed form, Theorem 2's ratio can be evaluated "
               "at astronomic sizes: at n = 2^40, Davg(Z)/LB = "
            << Table::fmt(bounds::davg_z_exact(Universe::pow2(2, 20)) /
                              bounds::davg_lower_bound(Universe::pow2(2, 20)),
                          8)
            << " (Theorem 2 says -> 1.5).\n";
  return 0;
}
