// Figure 3 reproduction: the two-dimensional Z curve on an 8x8 grid —
// binary key assignment (left panel) and visit order (right panel).
#include <iostream>

#include "bench_common.h"
#include "sfc/curves/zcurve.h"
#include "sfc/io/ascii_grid.h"

int main() {
  using namespace sfc;
  bench::print_header(
      "Figure 3 — two-dimensional Z curve on an 8x8 grid",
      "Keys interleave coordinate bits; dimension 1 most significant per level.");

  const Universe u = Universe::pow2(2, 3);
  const ZCurve z(u);

  std::cout << "\nBinary keys (rows top-down are x2 = 7..0, columns x1 = 0..7):\n";
  std::cout << render_key_grid_binary(z);

  std::cout << "\nDecimal keys:\n";
  std::cout << render_key_grid(z);

  std::cout << "\nVisit order (S = start, E = end, * = discontinuous jump):\n";
  std::cout << render_curve_path(z);

  std::cout << "\nWorked example from the paper (d=3, k=3): Z(101,010,011) = ";
  const Universe u3 = Universe::pow2(3, 3);
  const ZCurve z3(u3);
  const index_t key = z3.index_of(Point{0b101, 0b010, 0b011});
  for (int bit = 8; bit >= 0; --bit) std::cout << ((key >> bit) & 1);
  std::cout << " (= " << key << ", paper says 100011101)\n";
  return 0;
}
