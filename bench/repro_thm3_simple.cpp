// Theorem 3 reproduction: the "simple curve" (row-major order) matches the
// Z curve asymptotically: Davg(S) ~ (1/d) n^{1-1/d}.
//
// Also prints the side-by-side Z-vs-S comparison that supports the paper's
// observation 2 ("rather surprisingly, the simple curve has the same
// performance as the Z curve").
#include <iostream>

#include "bench_common.h"
#include "sfc/core/convergence.h"
#include "sfc/io/table.h"

int main() {
  using namespace sfc;
  const auto scale = bench::scale_from_env();
  bench::print_header(
      "Theorem 3 — the simple curve matches the Z curve",
      "d*Davg(S)/n^{1-1/d} -> 1; same asymptote as Theorem 2.");

  SweepOptions options;
  options.max_cells = bench::cell_budget(scale);

  for (int d = 1; d <= 5; ++d) {
    const auto simple_rows = davg_sweep(CurveFamily::kSimple, d, 1, 30, options);
    const auto z_rows = davg_sweep(CurveFamily::kZ, d, 1, 30, options);
    if (simple_rows.empty()) continue;
    std::cout << "\nd = " << d << ":\n";
    Table table({"k", "n", "Davg(S)", "d*Davg(S)/n^{1-1/d}", "Davg(Z)",
                 "S/Z ratio"});
    for (std::size_t i = 0; i < simple_rows.size() && i < z_rows.size(); ++i) {
      table.add_row({std::to_string(simple_rows[i].level_bits),
                     Table::fmt_int(simple_rows[i].n),
                     Table::fmt(simple_rows[i].davg),
                     Table::fmt(simple_rows[i].normalized_davg, 5),
                     Table::fmt(z_rows[i].davg),
                     Table::fmt(simple_rows[i].davg / z_rows[i].davg, 5)});
    }
    table.print(std::cout);
  }

  std::cout << "\nExpected shape: normalized column -> 1 and S/Z ratio -> 1 "
               "in every dimension (the two curves are asymptotically "
               "interchangeable for average NN-stretch).\n";
  return 0;
}
