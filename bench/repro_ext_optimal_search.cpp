// §VI extension: "close the gap between the lower bound and upper bound for
// the average-average NN-stretch" (open direction 1).
//
// Direct local search over the space of bijections on small grids: how far
// below the Z curve can ANY ordering get, and how close to the Theorem-1
// bound?  The measured optimum quantifies the true gap empirically.
#include <iostream>

#include "bench_common.h"
#include "sfc/core/bounds.h"
#include "sfc/core/nn_stretch.h"
#include "sfc/core/optimizer.h"
#include "sfc/curves/curve_factory.h"
#include "sfc/io/table.h"

int main() {
  using namespace sfc;
  const auto scale = bench::scale_from_env();
  bench::print_header(
      "Extension (§VI open direction 1) — searching for better curves",
      "Swap-based local search vs the Theorem-1 bound and the named curves.");

  const std::uint64_t iterations =
      scale == bench::Scale::kSmall ? 100000 : 600000;

  Table table({"grid", "bound", "best found", "found/bound", "z-curve",
               "hilbert", "simple"});
  for (const auto& [d, side] : std::vector<std::pair<int, coord_t>>{
           {2, 4}, {2, 8}, {3, 4}}) {
    const Universe u(d, side);
    OptimizeOptions options;
    options.iterations = iterations;
    // Multi-start: keep the best of three seeds.
    OptimizeResult best;
    best.best_davg = 1e18;
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      options.seed = seed;
      OptimizeResult result = optimize_davg(u, {}, options);
      if (result.best_davg < best.best_davg) best = std::move(result);
    }
    const double bound = bounds::davg_lower_bound(u);
    auto davg_of = [&](CurveFamily family) {
      return compute_nn_stretch(*make_curve(family, u)).average_average;
    };
    table.add_row({std::to_string(d) + "d side " + std::to_string(side),
                   Table::fmt(bound), Table::fmt(best.best_davg),
                   Table::fmt(best.best_davg / bound, 4),
                   Table::fmt(davg_of(CurveFamily::kZ)),
                   Table::fmt(davg_of(CurveFamily::kHilbert)),
                   Table::fmt(davg_of(CurveFamily::kSimple))});
  }
  table.print(std::cout);

  std::cout << "\nReading: 'found/bound' estimates the real optimality gap "
               "on each grid.  If it stays well above 1, the Theorem-1 "
               "bound is not tight at these sizes — evidence for the "
               "paper's conjecture that the gap-closing must come from a "
               "better lower bound as much as from better curves.  The "
               "search also confirms no ordering beats the bound "
               "(Theorem 1 is safe).\n";
  return 0;
}
