// Application bench: range-query clustering (intro refs [9,14,18]).
//
// Mean number of contiguous key runs ("disk seeks") per random cubic query
// box, per curve and box extent — the Moon-et-al clustering metric.
#include <iostream>

#include "bench_common.h"
#include "sfc/apps/range_query.h"
#include "sfc/curves/curve_factory.h"
#include "sfc/io/table.h"

int main() {
  using namespace sfc;
  const auto scale = bench::scale_from_env();
  bench::print_header(
      "Application — secondary-memory range queries (clustering metric)",
      "Runs per query box = disk seeks when records are stored in key order.");

  const std::uint64_t samples = scale == bench::Scale::kSmall ? 100 : 400;

  for (int d : {2, 3}) {
    const int k = d == 2 ? 6 : 4;
    const Universe u = Universe::pow2(d, k);
    std::cout << "\nd = " << d << ", side = " << u.side()
              << ", n = " << u.cell_count() << ", " << samples
              << " random boxes per row:\n";
    Table table({"curve", "box extent", "cells/box", "mean runs", "stderr",
                 "max runs"});
    for (CurveFamily family : all_curve_families()) {
      const CurvePtr curve = make_curve(family, u, 1);
      for (coord_t extent : {coord_t{2}, coord_t{4}, coord_t{8}}) {
        if (extent > u.side()) continue;
        const ClusteringStats stats =
            random_box_clustering(*curve, extent, samples, 1234);
        table.add_row({curve->name(), std::to_string(extent),
                       Table::fmt_int(stats.cells_per_box),
                       Table::fmt(stats.mean_runs, 4),
                       Table::fmt(stats.stderr_runs, 3),
                       Table::fmt(stats.max_runs, 3)});
      }
    }
    table.print(std::cout);
  }

  std::cout << "\nExpected shape: hilbert needs the fewest runs (Moon et "
               "al.'s finding), z-curve and gray are close behind, simple "
               "needs ~extent^{d-1} runs (one per row), random needs ~1 run "
               "per cell.\n";
  return 0;
}
