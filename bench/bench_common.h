// Shared helpers for the reproduction benches.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "sfc/common/types.h"

namespace sfc::bench {

/// Scale selected by the SFC_SCALE environment variable:
///   small  — quick smoke sizes (CI),
///   default — laptop-friendly (a few seconds per bench),
///   large  — stress sizes for tighter asymptotics.
enum class Scale { kSmall, kDefault, kLarge };

inline Scale scale_from_env() {
  const char* env = std::getenv("SFC_SCALE");
  if (env == nullptr) return Scale::kDefault;
  const std::string value(env);
  if (value == "small") return Scale::kSmall;
  if (value == "large") return Scale::kLarge;
  return Scale::kDefault;
}

/// Cell budget per configuration at the current scale.
inline index_t cell_budget(Scale scale) {
  switch (scale) {
    case Scale::kSmall: return index_t{1} << 14;
    case Scale::kDefault: return index_t{1} << 20;
    case Scale::kLarge: return index_t{1} << 24;
  }
  return index_t{1} << 20;
}

inline void print_header(const std::string& experiment, const std::string& claim) {
  std::cout << "==================================================================\n";
  std::cout << experiment << "\n";
  std::cout << claim << "\n";
  std::cout << "==================================================================\n";
}

}  // namespace sfc::bench
