// Theorem 1 reproduction: Davg(π) >= (2/3d)(n^{1-1/d} - n^{-1-1/d}) for any
// SFC π.
//
// Three levels of evidence:
//   1. exhaustive — all 24 bijections of the 2x2 universe,
//   2. adversarial — random bijections on medium universes,
//   3. structured — every named curve across dimensions 1..5.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "sfc/core/bounds.h"
#include "sfc/core/nn_stretch.h"
#include "sfc/curves/curve_factory.h"
#include "sfc/curves/permutation_curve.h"
#include "sfc/io/table.h"

int main() {
  using namespace sfc;
  const auto scale = bench::scale_from_env();
  bench::print_header(
      "Theorem 1 — universal lower bound on the average NN-stretch",
      "Davg(pi) >= (2/3d)(n^{1-1/d} - n^{-1-1/d}) for EVERY bijection pi.");

  // --- 1. Exhaustive over the 2x2 universe. ---
  {
    const Universe u(2, 2);
    const double bound = bounds::davg_lower_bound(u);
    std::vector<index_t> keys = {0, 1, 2, 3};
    double best = 1e18, worst = 0;
    int violations = 0;
    do {
      const PermutationCurve curve(u, keys);
      const double davg = compute_nn_stretch(curve).average_average;
      best = std::min(best, davg);
      worst = std::max(worst, davg);
      if (davg < bound) ++violations;
    } while (std::next_permutation(keys.begin(), keys.end()));
    std::cout << "\n[exhaustive] all 24 bijections of the 2x2 grid:\n";
    std::cout << "  bound = " << bound << ", best Davg = " << best
              << ", worst Davg = " << worst << ", violations = " << violations
              << "\n";
  }

  // --- 2. Adversarial random bijections. ---
  {
    std::cout << "\n[adversarial] random bijections (seeds 1..20):\n";
    Table table({"d", "k", "n", "bound", "min Davg over seeds", "ratio", "violations"});
    for (const auto& [d, k] : std::vector<std::pair<int, int>>{{2, 3}, {2, 4}, {3, 2}}) {
      const Universe u = Universe::pow2(d, k);
      const double bound = bounds::davg_lower_bound(u);
      double min_davg = 1e18;
      int violations = 0;
      for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        const CurvePtr curve = PermutationCurve::random(u, seed);
        const double davg = compute_nn_stretch(*curve).average_average;
        min_davg = std::min(min_davg, davg);
        if (davg < bound) ++violations;
      }
      table.add_row({std::to_string(d), std::to_string(k),
                     Table::fmt_int(u.cell_count()), Table::fmt(bound),
                     Table::fmt(min_davg), Table::fmt(min_davg / bound, 4),
                     std::to_string(violations)});
    }
    table.print(std::cout);
  }

  // --- 3. Every named curve across dimensions. ---
  {
    std::cout << "\n[structured] named curves (ratio = Davg/bound; the paper "
                 "predicts Z and simple approach 1.5):\n";
    Table table({"curve", "d", "k", "n", "Davg", "bound", "ratio", "holds"});
    const index_t budget = bench::cell_budget(scale);
    for (CurveFamily family : all_curve_families()) {
      for (int d = 1; d <= 5; ++d) {
        // Random curves need an O(n) table; keep them below 2^20 cells.
        const index_t family_budget =
            family == CurveFamily::kRandom
                ? std::min<index_t>(budget, index_t{1} << 20)
                : budget;
        int k = 1;
        while (checked_ipow(2, (k + 1) * d).has_value() &&
               ipow(2, (k + 1) * d) <= family_budget) {
          ++k;
        }
        const Universe u = Universe::pow2(d, k);
        const CurvePtr curve = make_curve(family, u, 1);
        const double davg = compute_nn_stretch(*curve).average_average;
        const double bound = bounds::davg_lower_bound(u);
        table.add_row({curve->name(), std::to_string(d), std::to_string(k),
                       Table::fmt_int(u.cell_count()), Table::fmt(davg),
                       Table::fmt(bound), Table::fmt(davg / bound, 4),
                       davg >= bound ? "yes" : "VIOLATION"});
      }
    }
    table.print(std::cout);
  }
  return 0;
}
