// Theorem 2 reproduction: Davg(Z) ~ (1/d) n^{1-1/d}, hence within a factor
// 1.5 of the Theorem-1 lower bound irrespective of d.
//
// The table reports the normalized ratio d*Davg/n^{1-1/d} (must -> 1) and
// Davg/bound (must -> 1.5) for growing k in each dimension.
#include <iostream>

#include "bench_common.h"
#include "sfc/core/convergence.h"
#include "sfc/io/table.h"

int main() {
  using namespace sfc;
  const auto scale = bench::scale_from_env();
  bench::print_header(
      "Theorem 2 — the Z curve is within 1.5x of optimal",
      "d*Davg(Z)/n^{1-1/d} -> 1 and Davg(Z)/bound -> 1.5 as n grows.");

  SweepOptions options;
  options.max_cells = bench::cell_budget(scale);

  for (int d = 1; d <= 5; ++d) {
    const auto rows = davg_sweep(CurveFamily::kZ, d, 1, 30, options);
    if (rows.empty()) continue;
    std::cout << "\nd = " << d << ":\n";
    Table table({"k", "n", "Davg(Z)", "LB (Thm 1)", "Davg/LB",
                 "d*Davg/n^{1-1/d}"});
    for (const SweepRow& row : rows) {
      table.add_row({std::to_string(row.level_bits), Table::fmt_int(row.n),
                     Table::fmt(row.davg), Table::fmt(row.lower_bound),
                     Table::fmt(row.ratio_to_bound, 5),
                     Table::fmt(row.normalized_davg, 5)});
    }
    table.print(std::cout);
  }

  std::cout << "\nExpected shape: both normalized columns converge "
               "monotonically (1.5 and 1.0); the paper's Theorem 2 claim is "
               "dimension-independent.\n";
  return 0;
}
