// §VI extension: "analysis of proximity preservation using a more general
// probabilistic model of input" (open direction 4, cf. Tirthapura, Seal &
// Aluru [25]).
//
// Empirical answer: query-weighted average NN stretch under non-uniform
// input models, per curve.  The headline: the curve ranking of Theorems 2/3
// is robust to input skew — Z and simple stay within a constant of each
// other and of Hilbert under hot-spot and correlated inputs.
#include <iostream>

#include "bench_common.h"
#include "sfc/core/nn_stretch.h"
#include "sfc/core/random_model.h"
#include "sfc/curves/curve_factory.h"
#include "sfc/io/table.h"

int main() {
  using namespace sfc;
  const auto scale = bench::scale_from_env();
  bench::print_header(
      "Extension (§VI open direction 4) — probabilistic input models",
      "Query-weighted NN stretch under uniform / hot-spot / correlated input.");

  const std::uint64_t samples = scale == bench::Scale::kSmall ? 5000 : 40000;
  const Universe u = Universe::pow2(2, 6);

  std::cout << "\n2-d grid, side " << u.side() << ", " << samples
            << " sampled queries per entry (exact uniform Davg shown for "
               "reference):\n";
  Table table({"curve", "uniform Davg (exact)", "uniform (sampled)",
               "gaussian-blob", "diagonal-band"});
  for (CurveFamily family : all_curve_families()) {
    const CurvePtr curve = make_curve(family, u, 1);
    const double exact = compute_nn_stretch(*curve).average_average;
    std::vector<std::string> row = {curve->name(), Table::fmt(exact)};
    for (InputModel model : {InputModel::kUniform, InputModel::kGaussianBlob,
                             InputModel::kDiagonalBand}) {
      const ModelStretch r = measure_model_stretch(*curve, model, samples, 31);
      row.push_back(Table::fmt(r.weighted_davg) + " +- " +
                    Table::fmt(r.stderr_davg, 2));
    }
    table.add_row(row);
  }
  table.print(std::cout);

  std::cout << "\nPairwise stretch under the same models (E[dpi/dManhattan] "
               "for model-sampled pairs):\n";
  Table pair_table({"curve", "uniform", "gaussian-blob", "diagonal-band"});
  for (CurveFamily family : analytic_curve_families()) {
    const CurvePtr curve = make_curve(family, u);
    std::vector<std::string> row = {curve->name()};
    for (InputModel model : {InputModel::kUniform, InputModel::kGaussianBlob,
                             InputModel::kDiagonalBand}) {
      const ModelStretch r = measure_model_stretch(*curve, model, samples, 37);
      row.push_back(Table::fmt(r.weighted_allpairs_manhattan, 5));
    }
    pair_table.add_row(row);
  }
  pair_table.print(std::cout);

  std::cout << "\nExpected shape: per-curve numbers move with the input "
               "model (hot-spot queries see locally denser key ranges), but "
               "the ranking and the constant-factor gaps between z-curve, "
               "simple, and hilbert persist — the paper's uniform-model "
               "conclusions extend to skewed inputs.\n";
  return 0;
}
