// Lemma 5 reproduction: per-dimension NN distance sums of the Z curve.
//
//   exact   — measured Λ_i(Z) equals the proof's pre-limit sum for every k,
//   limit   — Λ_i(Z)/n^{2-1/d} -> 2^{d-i}/(2^d - 1).
#include <iostream>

#include "bench_common.h"
#include "sfc/core/bounds.h"
#include "sfc/core/nn_stretch.h"
#include "sfc/curves/zcurve.h"
#include "sfc/io/table.h"

int main() {
  using namespace sfc;
  const auto scale = bench::scale_from_env();
  bench::print_header(
      "Lemma 5 — per-dimension stretch decomposition of the Z curve",
      "Lambda_i(Z)/n^{2-1/d} -> 2^{d-i}/(2^d-1); finite-n sums match exactly.");

  const index_t budget = bench::cell_budget(scale);

  for (int d = 2; d <= 4; ++d) {
    std::cout << "\nd = " << d << ":\n";
    Table table({"k", "n", "i", "measured Lambda_i", "closed form", "exact",
                 "normalized", "limit 2^{d-i}/(2^d-1)"});
    for (int k = 1; k <= 30; ++k) {
      const auto n = checked_ipow(2, k * d);
      if (!n.has_value() || *n > budget) break;
      const Universe u = Universe::pow2(d, k);
      const ZCurve z(u);
      // Λ-only fast path: this reproduction needs no per-cell stretch stats.
      const std::array<u128, kMaxDim> measured_lambda = compute_lambda(z);
      for (int i = 1; i <= d; ++i) {
        const u128 measured = measured_lambda[static_cast<std::size_t>(i - 1)];
        const u128 closed = bounds::lambda_z_exact(d, k, i);
        // n^{2-1/d} = side^{2d-1}.
        const long double norm_scale =
            static_cast<long double>(ipow(u.side(), 2 * d - 1));
        table.add_row(
            {std::to_string(k), Table::fmt_int(u.cell_count()),
             std::to_string(i), to_string(measured), to_string(closed),
             measured == closed ? "yes" : "MISMATCH",
             Table::fmt(static_cast<double>(to_long_double(measured) / norm_scale), 5),
             Table::fmt(bounds::lambda_z_limit(d, i), 5)});
      }
    }
    table.print(std::cout);
  }

  std::cout << "\nExpected shape: the 'exact' column is all-yes (the "
               "pre-limit identity holds for every finite n), and "
               "'normalized' converges to the limit column; dimension 1 "
               "(most significant in the interleave) carries twice the "
               "stretch of dimension 2, four times dimension 3, ...\n";
  return 0;
}
