// Domain decomposition for a parallel stencil code (the application in the
// paper's introduction, refs [3, 22, 23]).
//
// A 2-d heat-diffusion-style grid is distributed over P workers by cutting a
// space filling curve into contiguous ranges.  The example scores each curve
// by the communication it induces (halo edges crossing workers) and then
// runs a toy cost model: per-step time = compute(cells) + bandwidth * cut.
#include <iostream>

#include "sfc/apps/partition.h"
#include "sfc/core/nn_stretch.h"
#include "sfc/curves/curve_factory.h"
#include "sfc/io/table.h"

int main() {
  using namespace sfc;
  const Universe grid = Universe::pow2(2, 7);  // 128x128 cells
  const int workers = 16;

  std::cout << "Distributing a " << grid.side() << "x" << grid.side()
            << " stencil grid over " << workers
            << " workers by SFC range partitioning\n\n";

  Table table({"curve", "Davg", "edge cut", "cut fraction", "imbalance",
               "fragmented", "est. step time"});
  double best_time = 1e18;
  std::string best_curve;
  for (CurveFamily family : all_curve_families()) {
    const CurvePtr curve = make_curve(family, grid, 1);
    const PartitionQuality q = evaluate_partition(*curve, workers);
    const double davg = compute_nn_stretch(*curve).average_average;

    // Toy bulk-synchronous cost model: every worker updates its cells
    // (1 unit/cell), then exchanges halos (20 units per cut edge, paid by
    // the slowest worker; assume cut shared evenly for simplicity).
    const double compute = q.imbalance *
                           static_cast<double>(grid.cell_count()) / workers;
    const double communicate =
        20.0 * static_cast<double>(q.edge_cut) / workers;
    const double step_time = compute + communicate;
    if (step_time < best_time) {
      best_time = step_time;
      best_curve = curve->name();
    }
    table.add_row({curve->name(), Table::fmt(davg, 4),
                   Table::fmt_int(q.edge_cut), Table::fmt(q.cut_fraction, 3),
                   Table::fmt(q.imbalance, 4),
                   std::to_string(q.fragmented_blocks),
                   Table::fmt(step_time, 6)});
  }
  table.print(std::cout);

  std::cout << "\nBest curve under this cost model: " << best_curve << "\n";
  std::cout << "\nNote how the ranking tracks Davg — the stretch metric the "
               "paper analyzes is exactly the quantity that prices the halo "
               "exchange.  The random bijection (a legal 'SFC' under the "
               "paper's definition) shows what losing locality costs.\n";
  return 0;
}
