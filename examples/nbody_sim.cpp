// Gravitational N-body simulation on Morton-ordered particles — the
// Warren-Salmon-style application ([26]) that motivates the paper's
// nearest-neighbor stretch metric.
//
// Runs a short Barnes-Hut simulation of clustered particles, printing an
// energy trace and the accuracy/locality benefits of the SFC ordering.
#include <cmath>
#include <iostream>

#include "sfc/apps/nbody.h"
#include "sfc/io/table.h"

int main() {
  using namespace sfc;

  NBodyParams params;
  params.dim = 3;
  params.theta = 0.4;
  params.softening = 5e-3;

  const std::size_t n = 1500;
  std::cout << "Barnes-Hut N-body: " << n << " particles, 3-d, theta = "
            << params.theta << "\n\n";

  BarnesHut sim(make_clustered_particles(n, 3, 3, 12345), params);
  const std::uint64_t inversions = sim.sort_by_morton();
  std::cout << "Morton sort removed " << inversions
            << " key inversions (tree build and force sweeps now touch "
               "memory in spatial order).\n";

  // Accuracy check against direct summation.
  {
    const auto tree = sim.compute_accelerations();
    const auto direct = sim.direct_accelerations();
    double num = 0, den = 0;
    for (std::size_t i = 0; i < tree.size(); ++i) {
      for (int c = 0; c < 3; ++c) {
        const double diff = tree[i][static_cast<std::size_t>(c)] -
                            direct[i][static_cast<std::size_t>(c)];
        num += diff * diff;
        den += direct[i][static_cast<std::size_t>(c)] *
               direct[i][static_cast<std::size_t>(c)];
      }
    }
    std::cout << "Tree force error vs direct summation: "
              << std::sqrt(num / den) << " (relative L2)\n\n";
  }

  // Short leapfrog run with an energy trace.
  Table table({"step", "kinetic+potential energy", "drift vs t=0"});
  const double e0 = sim.total_energy();
  table.add_row({"0", Table::fmt(e0, 8), "-"});
  for (int step = 1; step <= 8; ++step) {
    sim.step(4e-4);
    if (step % 2 == 0) {
      const double e = sim.total_energy();
      table.add_row({std::to_string(step), Table::fmt(e, 8),
                     Table::fmt(std::abs(e - e0) / std::abs(e0), 3)});
    }
  }
  table.print(std::cout);

  std::cout << "\nTree statistics: " << sim.last_tree_nodes()
            << " nodes for " << n << " particles.\n";
  std::cout << "\nWhy this belongs to the paper: the force loop is dominated "
               "by near-neighbor interactions, so the curve's NN-stretch "
               "controls how far apart interacting particles sit in the "
               "sorted array — low stretch means cache-friendly sweeps and "
               "contiguous processor domains.\n";
  return 0;
}
