// Quickstart: measure how well a space filling curve preserves proximity.
//
//   $ ./quickstart
//
// Builds the Z curve on a 256x256 grid, computes every stretch metric from
// Xu & Tirthapura (IPDPS 2012), and compares against the paper's universal
// lower bound (Theorem 1).
#include <iostream>

#include "sfc/core/stretch_report.h"
#include "sfc/curves/curve_factory.h"

int main() {
  using namespace sfc;

  // 1. Pick a universe: a d-dimensional grid with side 2^k.
  const Universe universe = Universe::pow2(/*dim=*/2, /*level_bits=*/8);

  // 2. Pick a curve: Z (Morton), Hilbert, Gray, snake, simple, or random.
  const CurvePtr curve = make_curve(CurveFamily::kZ, universe);

  // 3. Encode/decode cells.
  const Point cell{200, 100};
  const index_t key = curve->index_of(cell);
  std::cout << "pi(" << cell.to_string() << ") = " << key << ", pi^-1(" << key
            << ") = " << curve->point_at(key).to_string() << "\n\n";

  // 4. One-call analysis: NN stretch, all-pairs stretch, bounds, ratios.
  const StretchReport report = analyze_curve(*curve);
  std::cout << to_string(report);

  // 5. The paper's headline: no bijection can do better than the Theorem-1
  //    bound, and the Z curve is within 1.5x of it.
  std::cout << "\nZ curve optimality gap: " << report.davg_ratio_to_bound
            << " (Theorem 2 proves this approaches 1.5, and Theorem 1 proves"
            << "\n no other curve can be more than 1.5x better than Z)\n";
  return 0;
}
