// Gallery: renders every curve family on a 16x16 grid — ASCII visit order on
// stdout plus an SVG file per curve in the working directory.
#include <iostream>
#include <memory>
#include <vector>

#include "sfc/curves/curve_factory.h"
#include "sfc/curves/diagonal_curve.h"
#include "sfc/curves/peano_curve.h"
#include "sfc/curves/spiral_curve.h"
#include "sfc/io/ascii_grid.h"
#include "sfc/io/svg.h"

int main() {
  using namespace sfc;
  const Universe small_grid = Universe::pow2(2, 3);   // ASCII
  const Universe svg_grid = Universe::pow2(2, 4);     // SVG

  // Factory families plus the standalone 2-d specialists.
  std::vector<std::pair<CurvePtr, CurvePtr>> curves;  // (ascii, svg)
  for (CurveFamily family : all_curve_families()) {
    curves.emplace_back(make_curve(family, small_grid, 5),
                        make_curve(family, svg_grid, 5));
  }
  curves.emplace_back(std::make_unique<SpiralCurve>(small_grid),
                      std::make_unique<SpiralCurve>(svg_grid));
  curves.emplace_back(std::make_unique<DiagonalCurve>(small_grid),
                      std::make_unique<DiagonalCurve>(svg_grid));
  curves.emplace_back(std::make_unique<PeanoCurve>(Universe(2, 9)),
                      std::make_unique<PeanoCurve>(Universe(2, 27)));

  for (const auto& [ascii_curve, svg_curve] : curves) {
    std::cout << "=== " << ascii_curve->name() << " ("
              << ascii_curve->universe().side() << "x"
              << ascii_curve->universe().side() << ") ===\n";
    std::cout << render_key_grid(*ascii_curve) << "\n";
    std::cout << render_curve_path(*ascii_curve) << "\n";

    const std::string filename = "curve_" + svg_curve->name() + ".svg";
    if (write_text_file(filename, render_curve_svg(*svg_curve))) {
      std::cout << "wrote " << filename << "\n\n";
    } else {
      std::cout << "could not write " << filename << " (read-only dir?)\n\n";
    }
  }
  std::cout << "Open the SVGs in a browser to compare the traversals; the "
               "jumps that the ASCII view marks with '*' appear as long "
               "chords.\n";
  return 0;
}
