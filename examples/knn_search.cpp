// k-nearest-neighbor search through a curve window (Chen & Chang [5]).
//
// Demonstrates the one-dimensional kNN trick: to find the k nearest cells of
// a query, scan a window of curve keys around the query's key, then verify
// soundness (no closer cell can hide outside the scanned range).  The window
// any curve needs is governed by its NN stretch — the paper's metric.
#include <iostream>

#include "sfc/apps/nn_query.h"
#include "sfc/curves/curve_factory.h"
#include "sfc/io/table.h"

int main() {
  using namespace sfc;
  const Universe grid = Universe::pow2(2, 6);  // 64x64
  const Point query{37, 22};
  const int k = 5;

  std::cout << "kNN search: k = " << k << ", query " << query.to_string()
            << " on a " << grid.side() << "x" << grid.side() << " grid.\n\n";

  Table table({"curve", "window tried", "sound?", "neighbors found"});
  for (CurveFamily family : analytic_curve_families()) {
    const CurvePtr curve = make_curve(family, grid);
    // Grow the window geometrically until the result is provably correct.
    index_t window = 8;
    std::vector<Point> neighbors;
    while (window <= grid.cell_count() &&
           !knn_via_window(*curve, query, k, window, &neighbors)) {
      window *= 4;
    }
    std::string found;
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      found += (i ? " " : "") + neighbors[i].to_string();
    }
    table.add_row({curve->name(), Table::fmt_int(window), "yes", found});
  }
  table.print(std::cout);

  std::cout << "\nWindow statistics over random queries (how far along the "
               "curve the FIRST spatial neighbor hides):\n";
  Table stats_table({"curve", "mean", "p95", "max"});
  for (CurveFamily family : analytic_curve_families()) {
    const CurvePtr curve = make_curve(family, grid);
    const NNWindowStats stats = measure_nn_window(*curve, 5000, 7);
    stats_table.add_row({curve->name(), Table::fmt(stats.first_neighbor.mean, 4),
                         Table::fmt(stats.first_neighbor.p95),
                         Table::fmt(stats.first_neighbor.max)});
  }
  stats_table.print(std::cout);

  std::cout << "\nContinuous curves (hilbert, snake) always have a spatial "
               "neighbor at window 1; the Z curve usually does (its average "
               "stretch is near-optimal) but pays more in the tail.\n";
  return 0;
}
