// A miniature multi-attribute store: records keyed by (x, y) are laid out on
// disk in space-filling-curve order, and rectangular range queries pay one
// "seek" per contiguous key run (the secondary-memory application of the
// paper's introduction, refs [9, 14, 18]).
#include <iostream>

#include "sfc/apps/range_query.h"
#include "sfc/curves/curve_factory.h"
#include "sfc/io/table.h"
#include "sfc/rng/sampling.h"

int main() {
  using namespace sfc;
  const Universe grid = Universe::pow2(2, 6);  // 64x64 key space

  std::cout << "Spatial store over a " << grid.side() << "x" << grid.side()
            << " key space; queries are random rectangles.\n\n";

  // A deterministic workload of mixed-size queries.
  struct Workload {
    coord_t extent;
    std::uint64_t count;
  };
  const std::vector<Workload> workloads = {{2, 300}, {6, 200}, {16, 100}};

  Table table({"curve", "query size", "queries", "mean seeks", "max seeks",
               "seeks/cell"});
  for (CurveFamily family : all_curve_families()) {
    const CurvePtr curve = make_curve(family, grid, 2);
    for (const Workload& w : workloads) {
      const ClusteringStats stats =
          random_box_clustering(*curve, w.extent, w.count, 4242);
      table.add_row(
          {curve->name(),
           std::to_string(w.extent) + "x" + std::to_string(w.extent),
           std::to_string(w.count), Table::fmt(stats.mean_runs, 4),
           Table::fmt(stats.max_runs, 4),
           Table::fmt(stats.mean_runs / static_cast<double>(stats.cells_per_box), 3)});
    }
  }
  table.print(std::cout);

  // Show one concrete query in detail.
  const CurvePtr hilbert = make_curve(CurveFamily::kHilbert, grid);
  const CurvePtr simple = make_curve(CurveFamily::kSimple, grid);
  const Box query(Point{10, 20}, Point{25, 35});
  std::cout << "\nConcrete query [10..25]x[20..35] (" << query.cell_count()
            << " cells): hilbert needs " << count_key_runs(*hilbert, query)
            << " seeks, simple (row-major) needs "
            << count_key_runs(*simple, query) << ".\n";
  std::cout << "\nThe clustering advantage is the flip side of the stretch "
               "bound: curves that keep neighbors close on the key line "
               "also keep rectangles in few runs.\n";
  return 0;
}
