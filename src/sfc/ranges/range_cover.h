// Hierarchical box → key-range cover engine.
//
// The clustering metric of Moon, Jagadish, Faloutsos & Saltz (paper intro
// refs [9, 14, 18]) asks how many maximal runs of consecutive curve keys a
// rectangular query touches — the number of disk seeks a B-tree range scan
// pays.  Enumerating the box answers that in O(volume · log volume) work and
// O(volume) memory; this engine answers it *output-sensitively* by descending
// the curve's recursive subtree structure (SpaceFillingCurve subtree
// traversal): subtrees fully inside the box emit their whole key interval,
// subtrees fully outside are pruned, and only boundary subtrees recurse.
// Work is O(runs · log side); memory is O(runs) for the result plus
// O(arity · log side) for the descent stack — universes far beyond any
// enumerable size stay in reach (the nightly bench covers boxes of 2^40
// cells in a 2^56-cell universe).
//
// Curves without subtree structure (simple, snake, spiral, diagonal, tiled,
// permutation/random, toy) fall back to exact slab-streamed enumeration, so
// *every* family keeps exact answers through one entry point.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sfc/common/error.h"
#include "sfc/common/types.h"
#include "sfc/curves/space_filling_curve.h"
#include "sfc/grid/box.h"
#include "sfc/parallel/thread_pool.h"

namespace sfc {

/// Thrown by RangeCoverEngine::cover when the query box does not lie inside
/// the curve's universe (wrong dimensionality or a corner coordinate beyond
/// the side); the message names the first offending coordinate.  Derives
/// from sfc::Error so drivers recover at the tool boundary instead of
/// aborting.
class RangeArgumentError : public Error {
 public:
  explicit RangeArgumentError(const std::string& what) : Error(what) {}
};

/// A maximal run of consecutive curve keys, inclusive on both ends.
struct KeyInterval {
  index_t lo = 0;
  index_t hi = 0;

  friend bool operator==(const KeyInterval& a, const KeyInterval& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
};

/// Optional instrumentation returned by RangeCoverEngine::cover.
struct CoverStats {
  /// Subtree nodes popped during the descent (0 on the enumeration path).
  std::uint64_t nodes_visited = 0;
  /// True when the subtree descent ran; false when the curve has no subtree
  /// structure and the slab-enumeration fallback produced the cover.
  bool used_subtree = false;
};

/// Reusable scratch buffers for RangeCoverEngine: the descent frontier, the
/// unmerged interval list, the merged cover, and the enumeration fallback's
/// key buffer.  Multi-query consumers (the point index's range scans, the
/// multi-query executor) keep one workspace per thread so that, after the
/// first query, covers are produced without allocating.
struct CoverWorkspace {
  std::vector<SubtreeNode> frontier;
  std::vector<SubtreeNode> children;
  std::vector<KeyInterval> raw;
  std::vector<KeyInterval> merged;
  std::vector<index_t> keys;
  /// Per-chunk scratch of the parallel frontier expansion (one slot per
  /// chunk in flight); untouched on the serial path.
  std::vector<std::vector<SubtreeNode>> chunk_frontier;
  std::vector<std::vector<KeyInterval>> chunk_raw;
};

/// Decomposes axis-aligned boxes into their exact, sorted, disjoint, maximal
/// curve-key intervals.  The box must lie inside the curve's universe.
class RangeCoverEngine {
 public:
  /// With a pool, a single huge box no longer runs on one core: once the
  /// level-synchronous frontier grows past a threshold, each level's
  /// expansion + classification is split over the pool on a fixed chunk
  /// grid and the per-chunk results are concatenated in chunk order — the
  /// frontier and the emitted intervals evolve exactly as in the serial
  /// descent, so the cover is identical for any pool size (verified at
  /// 2^40-cell boxes by tests/ranges/test_descent_kernels.cpp).  Multi-query
  /// consumers that already parallelize across boxes should keep pool ==
  /// nullptr (serial per-box descent).
  explicit RangeCoverEngine(const SpaceFillingCurve& curve,
                            ThreadPool* pool = nullptr)
      : curve_(curve), pool_(pool) {}

  /// The cover of `box`: sorted ascending, pairwise disjoint, maximal (no
  /// two intervals are adjacent), and Σ interval sizes == box.cell_count().
  /// The number of intervals is exactly the clustering number (key-run
  /// count) of the box.
  std::vector<KeyInterval> cover(const Box& box,
                                 CoverStats* stats = nullptr) const;

  /// Allocation-free variant for multi-query workloads: the cover lands in
  /// `ws.merged` (reusing its capacity) and the returned span views it — the
  /// span is valid until the workspace is next used or destroyed.
  std::span<const KeyInterval> cover(const Box& box, CoverWorkspace& ws,
                                     CoverStats* stats = nullptr) const;

  /// Interval-consumer form of the workspace overload: fn(interval) for each
  /// cover interval in ascending key order, without handing out the buffer.
  template <typename Fn>
  void for_each_interval(const Box& box, CoverWorkspace& ws, Fn&& fn,
                         CoverStats* stats = nullptr) const {
    for (const KeyInterval& interval : cover(box, ws, stats)) fn(interval);
  }

  const SpaceFillingCurve& curve() const { return curve_; }

 private:
  const SpaceFillingCurve& curve_;
  ThreadPool* pool_ = nullptr;
};

/// Exact cover by slab-streamed enumeration: batch-encode every cell of the
/// box in fixed-size slices, radix-sort the keys, merge adjacent keys into
/// intervals.  O(volume · log volume) work, O(volume) memory — the reference
/// implementation the subtree descent is verified against, and the fallback
/// for curves without subtree structure.
std::vector<KeyInterval> cover_by_enumeration(const SpaceFillingCurve& curve,
                                              const Box& box);

}  // namespace sfc
