#include "sfc/ranges/range_cover.h"

#include <algorithm>
#include <array>
#include <span>
#include <string>

#include "sfc/common/batch.h"
#include "sfc/common/math.h"
#include "sfc/obs/metrics.h"
#include "sfc/parallel/parallel_for.h"
#include "sfc/sort/radix_sort.h"

namespace sfc {

namespace {

struct CoverMetrics {
  MetricsRegistry::Counter covers;
  MetricsRegistry::Counter subtree_covers;
  MetricsRegistry::Counter intervals;
  MetricsRegistry::Counter nodes_visited;
};

CoverMetrics& cover_metrics() {
  static CoverMetrics metrics{
      MetricsRegistry::global().counter("ranges.covers"),
      MetricsRegistry::global().counter("ranges.subtree_covers"),
      MetricsRegistry::global().counter("ranges.intervals"),
      MetricsRegistry::global().counter("ranges.nodes_visited"),
  };
  return metrics;
}

/// node ∩ box classification for the descent.
enum class Overlap { kDisjoint, kInside, kPartial };

/// Frontier nodes per chunk of the parallel descent, and the frontier size
/// at which the parallel path engages.  Both are part of the deterministic
/// contract only through the chunk grid (count + grain), never the pool
/// size.
constexpr std::uint64_t kParallelCoverGrain = 256;
constexpr std::uint64_t kParallelCoverThreshold = 1024;

Overlap classify(const SubtreeNode& node, const Box& box) {
  bool inside = true;
  const int d = box.dim();
  for (int i = 0; i < d; ++i) {
    const coord_t node_lo = node.origin[i];
    const coord_t node_hi = node.origin[i] + (node.side - 1);
    if (node_lo > box.hi()[i] || node_hi < box.lo()[i]) {
      return Overlap::kDisjoint;
    }
    inside = inside && node_lo >= box.lo()[i] && node_hi <= box.hi()[i];
  }
  return inside ? Overlap::kInside : Overlap::kPartial;
}

/// Appends [lo, hi], fusing with the previous interval when adjacent.  The
/// descent emits intervals in ascending key order, so this single look-back
/// is all the merging maximality needs.
void emit(std::vector<KeyInterval>& out, index_t lo, index_t hi) {
  if (!out.empty() && out.back().hi + 1 == lo) {
    out.back().hi = hi;
  } else {
    out.push_back(KeyInterval{lo, hi});
  }
}

/// Shared streaming loop of the enumeration path: batch-encode every cell of
/// the box into `keys` (reusing its capacity), sort, merge adjacent keys.
void enumerate_cover_into(const SpaceFillingCurve& curve, const Box& box,
                          std::vector<index_t>& keys,
                          std::vector<KeyInterval>& out) {
  keys.clear();
  keys.reserve(box.cell_count());
  std::array<Point, kBoxSliceCells> cell_buf;
  std::size_t pending = 0;
  auto flush = [&] {
    const std::size_t at = keys.size();
    keys.resize(at + pending);
    curve.index_of_batch(std::span<const Point>(cell_buf.data(), pending),
                         std::span<index_t>(keys.data() + at, pending));
    pending = 0;
  };
  box.for_each_cell([&](const Point& cell) {
    cell_buf[pending++] = cell;
    if (pending == cell_buf.size()) flush();
  });
  if (pending > 0) flush();
  radix_sort_keys(keys);
  out.clear();
  for (const index_t key : keys) emit(out, key, key);
}

}  // namespace

std::vector<KeyInterval> RangeCoverEngine::cover(const Box& box,
                                                 CoverStats* stats) const {
  CoverWorkspace ws;
  const std::span<const KeyInterval> result = cover(box, ws, stats);
  return std::vector<KeyInterval>(result.begin(), result.end());
}

std::span<const KeyInterval> RangeCoverEngine::cover(const Box& box,
                                                     CoverWorkspace& ws,
                                                     CoverStats* stats) const {
  const Universe& u = curve_.universe();
  if (box.dim() != u.dim()) {
    throw RangeArgumentError(
        "range cover: box of dimension " + std::to_string(box.dim()) +
        " queried against a d=" + std::to_string(u.dim()) + " universe");
  }
  for (int i = 0; i < u.dim(); ++i) {
    for (const Point& corner : {box.lo(), box.hi()}) {
      if (corner[i] >= u.side()) {
        throw RangeArgumentError(
            "range cover: box corner " + corner.to_string() + " coordinate " +
            std::to_string(i + 1) + " = " + std::to_string(corner[i]) +
            " lies outside the side-" + std::to_string(u.side()) +
            " universe");
      }
    }
  }
  if (stats != nullptr) *stats = CoverStats{};
  if (!curve_.has_subtree_traversal()) {
    enumerate_cover_into(curve_, box, ws.keys, ws.merged);
    if (obs_enabled()) {
      cover_metrics().covers.add(1);
      cover_metrics().intervals.add(ws.merged.size());
    }
    return ws.merged;
  }
  if (stats != nullptr) stats->used_subtree = true;

  const index_t arity = ipow(curve_.subtree_radix(), u.dim());
  // Level-synchronous descent over boundary subtrees: the whole frontier of
  // partial nodes expands through one subtree_children_batch call per level,
  // so decode-based curves (Hilbert, Peano) amortize their batch kernel's
  // per-call setup across the frontier instead of paying it per node.
  // Emitted intervals are disjoint but arrive out of key order across
  // levels; a final sort + adjacent-merge restores the canonical maximal
  // cover.  Work stays O(runs · log side), plus the O(runs · log runs) sort.
  std::vector<KeyInterval>& out = ws.raw;
  std::vector<SubtreeNode>& frontier = ws.frontier;
  std::vector<SubtreeNode>& children = ws.children;
  out.clear();
  frontier.clear();
  const SubtreeNode root = curve_.subtree_root();
  if (stats != nullptr) ++stats->nodes_visited;
  switch (classify(root, box)) {
    case Overlap::kDisjoint:
      break;
    case Overlap::kInside:
      out.push_back(KeyInterval{root.key_lo, root.key_lo + (root.key_count - 1)});
      break;
    case Overlap::kPartial:
      frontier.push_back(root);
      break;
  }
  while (!frontier.empty()) {
    const std::uint64_t node_count = frontier.size();
    children.resize(node_count * arity);
    if (pool_ != nullptr && node_count >= kParallelCoverThreshold) {
      // Parallel level expansion: each chunk of the frontier expands and
      // classifies its own children into per-chunk buffers; concatenating
      // those buffers in chunk order reproduces the serial child order
      // exactly, so the next frontier — and every emitted interval — is
      // identical for any pool size.
      const std::uint64_t chunks = chunk_count(node_count, kParallelCoverGrain);
      ws.chunk_frontier.resize(chunks);
      ws.chunk_raw.resize(chunks);
      parallel_for_chunks(
          *pool_, node_count, kParallelCoverGrain,
          [&](const ChunkRange& range) {
            const std::span<const SubtreeNode> nodes(
                frontier.data() + range.begin, range.end - range.begin);
            const std::span<SubtreeNode> kids(
                children.data() + range.begin * arity, nodes.size() * arity);
            curve_.subtree_children_batch(nodes, kids);
            std::vector<SubtreeNode>& local_frontier =
                ws.chunk_frontier[range.chunk_index];
            std::vector<KeyInterval>& local_out = ws.chunk_raw[range.chunk_index];
            local_frontier.clear();
            local_out.clear();
            for (const SubtreeNode& child : kids) {
              switch (classify(child, box)) {
                case Overlap::kDisjoint:
                  break;
                case Overlap::kInside:
                  local_out.push_back(KeyInterval{
                      child.key_lo, child.key_lo + (child.key_count - 1)});
                  break;
                case Overlap::kPartial:
                  local_frontier.push_back(child);
                  break;
              }
            }
          });
      if (stats != nullptr) stats->nodes_visited += children.size();
      frontier.clear();
      for (std::uint64_t c = 0; c < chunks; ++c) {
        out.insert(out.end(), ws.chunk_raw[c].begin(), ws.chunk_raw[c].end());
        frontier.insert(frontier.end(), ws.chunk_frontier[c].begin(),
                        ws.chunk_frontier[c].end());
      }
      continue;
    }
    curve_.subtree_children_batch(frontier, children);
    if (stats != nullptr) stats->nodes_visited += children.size();
    frontier.clear();
    for (const SubtreeNode& child : children) {
      switch (classify(child, box)) {
        case Overlap::kDisjoint:
          break;
        case Overlap::kInside:
          out.push_back(
              KeyInterval{child.key_lo, child.key_lo + (child.key_count - 1)});
          break;
        case Overlap::kPartial:
          // A single cell either misses the box or is inside it, so a
          // partial node always has side > 1 and can descend further.
          frontier.push_back(child);
          break;
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const KeyInterval& a, const KeyInterval& b) { return a.lo < b.lo; });
  std::vector<KeyInterval>& merged = ws.merged;
  merged.clear();
  merged.reserve(out.size());
  for (const KeyInterval& interval : out) {
    emit(merged, interval.lo, interval.hi);
  }
  if (obs_enabled()) {
    CoverMetrics& metrics = cover_metrics();
    metrics.covers.add(1);
    metrics.subtree_covers.add(1);
    metrics.intervals.add(merged.size());
    if (stats != nullptr) metrics.nodes_visited.add(stats->nodes_visited);
  }
  return merged;
}

std::vector<KeyInterval> cover_by_enumeration(const SpaceFillingCurve& curve,
                                              const Box& box) {
  std::vector<index_t> keys;
  std::vector<KeyInterval> out;
  enumerate_cover_into(curve, box, keys, out);
  return out;
}

}  // namespace sfc
