#include "sfc/metrics/neighbor_stats.h"

#include <limits>

namespace sfc {

void accumulate_neighbor_stats(const Universe& u, const KeySlab& slab,
                               SlabNeighborStats& stats) {
  const std::size_t len = slab.end - slab.begin;
  stats.distance_sum.assign(len, 0);
  stats.distance_max.assign(len, 0);
  stats.distance_min.assign(len, std::numeric_limits<index_t>::max());
  stats.degree.assign(len, 0);
  stats.lambda.fill(0);

  std::uint64_t* const sum = stats.distance_sum.data();
  index_t* const dmax = stats.distance_max.data();
  index_t* const dmin = stats.distance_min.data();
  std::uint8_t* const degree = stats.degree.data();

  for (int i = 0; i < u.dim(); ++i) {
    const index_t stride = dim_stride(u, i);
    u128 lambda_i = 0;
    for_each_forward_run(
        u, slab.begin, slab.end, i, [&](index_t run_begin, index_t run_end) {
          const index_t* const lo = slab.keys + (run_begin - slab.buffer_begin);
          const index_t* const hi = lo + stride;
          const std::size_t offset = run_begin - slab.begin;
          const std::size_t count = run_end - run_begin;
          for (std::size_t j = 0; j < count; ++j) {
            const index_t a = lo[j];
            const index_t b = hi[j];
            const index_t dist = a > b ? a - b : b - a;
            sum[offset + j] += dist;
            if (dist > dmax[offset + j]) dmax[offset + j] = dist;
            if (dist < dmin[offset + j]) dmin[offset + j] = dist;
            ++degree[offset + j];
            lambda_i += dist;
          }
        });
    stats.lambda[static_cast<std::size_t>(i)] = lambda_i;

    for_each_backward_run(
        u, slab.begin, slab.end, i, [&](index_t run_begin, index_t run_end) {
          const index_t* const mid = slab.keys + (run_begin - slab.buffer_begin);
          const index_t* const lo = mid - stride;
          const std::size_t offset = run_begin - slab.begin;
          const std::size_t count = run_end - run_begin;
          for (std::size_t j = 0; j < count; ++j) {
            const index_t a = mid[j];
            const index_t b = lo[j];
            const index_t dist = a > b ? a - b : b - a;
            sum[offset + j] += dist;
            if (dist > dmax[offset + j]) dmax[offset + j] = dist;
            if (dist < dmin[offset + j]) dmin[offset + j] = dist;
            ++degree[offset + j];
          }
        });
  }
}

}  // namespace sfc
