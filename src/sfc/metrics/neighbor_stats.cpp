#include "sfc/metrics/neighbor_stats.h"

#include <algorithm>
#include <limits>

namespace sfc {

// The tile loops below are exact integer code, so the compiler may retarget
// them to any vector width without changing a single output bit.  On
// x86-64 Linux we ask for a runtime-dispatched AVX2 clone next to the
// baseline build (the default target is plain SSE2, which has no usable
// unsigned-64-bit lanes); the ifunc resolver picks the widest supported
// variant at load time, so one binary serves every machine.
#if defined(__x86_64__) && defined(__linux__) && defined(__clang__)
#define SFC_VEC_CLONES __attribute__((target_clones("default", "avx2")))
#elif defined(__x86_64__) && defined(__linux__) && defined(__GNUC__)
// GCC also accepts micro-architecture levels; x86-64-v4 brings native
// unsigned 64-bit min/max (vpminuq/vpmaxuq) and 512-bit lanes.
#define SFC_VEC_CLONES \
  __attribute__((target_clones("default", "avx2", "arch=x86-64-v4")))
#else
#define SFC_VEC_CLONES
#endif

namespace {

/// Tile length of the two-phase kernel's diff buffer: 4096 u64 diffs = 32 KiB,
/// L1-resident, so the per-statistic passes re-read it for free.
constexpr std::size_t kDiffTile = 4096;

/// Cell-tile length of the outer blocking loop: all 2d directional passes
/// run over one tile of cells before the kernel moves on, so the tile's
/// statistic arrays (25 B/cell -> 200 KiB) stay L2-resident across passes
/// instead of streaming from shared cache 2d times.  This is where the bulk
/// of the kernel's speedup comes from: the pass is bandwidth-bound, and
/// blocking cuts the statistic-array traffic by ~2d.
constexpr index_t kCellTile = 8192;

/// Phase-1 diff pass: absolute key differences of two parallel streams into
/// the tile.  Branch-free (max - min), one type, trivially lane-parallel.
SFC_VEC_CLONES
void compute_diff_tile(const index_t* lo, const index_t* hi, std::size_t count,
                       std::uint64_t* diff) {
  for (std::size_t j = 0; j < count; ++j) {
    const index_t a = lo[j];
    const index_t b = hi[j];
    diff[j] = std::max(a, b) - std::min(a, b);
  }
}

/// Widening reduction of one tile of diffs into a u128 total.  Each diff is
/// split into its low and high 32-bit halves; both partial sums stay far below
/// 2^64 for any tile length <= 2^32, so the two accumulations are plain u64
/// adds (no carry chain, vectorizable) and the recombination
/// (hi << 32) + lo is exact.  Integer addition is associative, so the result
/// is identical to per-element u128 accumulation in any order.
SFC_VEC_CLONES
u128 reduce_tile_widening(const std::uint64_t* diff, std::size_t count) {
  std::uint64_t lo_sum = 0;
  std::uint64_t hi_sum = 0;
  for (std::size_t j = 0; j < count; ++j) {
    lo_sum += diff[j] & 0xffffffffu;
    hi_sum += diff[j] >> 32;
  }
  return (static_cast<u128>(hi_sum) << 32) + lo_sum;
}

/// Phase-2 update loops: fold one tile of diffs into the per-cell statistic
/// arrays at `offset`.  One single-type loop per statistic so each
/// auto-vectorizes independently.
SFC_VEC_CLONES
void update_cell_stats(const std::uint64_t* diff, std::size_t count,
                       std::size_t offset, std::uint64_t* sum, index_t* dmax,
                       index_t* dmin, std::uint8_t* degree) {
  for (std::size_t j = 0; j < count; ++j) sum[offset + j] += diff[j];
  for (std::size_t j = 0; j < count; ++j) {
    dmax[offset + j] = std::max<index_t>(dmax[offset + j], diff[j]);
  }
  for (std::size_t j = 0; j < count; ++j) {
    dmin[offset + j] = std::min<index_t>(dmin[offset + j], diff[j]);
  }
  for (std::size_t j = 0; j < count; ++j) {
    degree[offset + j] = static_cast<std::uint8_t>(degree[offset + j] + 1);
  }
}

void reset_stats(const KeySlab& slab, SlabNeighborStats& stats) {
  const std::size_t len = slab.end - slab.begin;
  stats.distance_sum.assign(len, 0);
  stats.distance_max.assign(len, 0);
  stats.distance_min.assign(len, std::numeric_limits<index_t>::max());
  stats.degree.assign(len, 0);
  stats.lambda.fill(0);
}

}  // namespace

void accumulate_neighbor_stats(const Universe& u, const KeySlab& slab,
                               SlabNeighborStats& stats) {
  reset_stats(slab, stats);

  std::uint64_t* const sum = stats.distance_sum.data();
  index_t* const dmax = stats.distance_max.data();
  index_t* const dmin = stats.distance_min.data();
  std::uint8_t* const degree = stats.degree.data();
  std::uint64_t diff[kDiffTile];

  // Outer blocking over cells, all 2d directional passes per tile.  Every
  // per-cell update is an exact commutative integer op (+, max, min, ++) and
  // the Λ partials combine by exact addition, so this order produces outputs
  // bit-identical to the reference's dimension-major order.
  for (index_t tile_begin = slab.begin; tile_begin < slab.end;
       tile_begin += kCellTile) {
    const index_t tile_end = std::min(slab.end, tile_begin + kCellTile);
    for (int i = 0; i < u.dim(); ++i) {
      const index_t stride = dim_stride(u, i);
      u128 lambda_i = 0;
      for_each_forward_run(
          u, tile_begin, tile_end, i,
          [&](index_t run_begin, index_t run_end) {
            const index_t* const lo =
                slab.keys + (run_begin - slab.buffer_begin);
            const index_t* const hi = lo + stride;
            const std::size_t offset = run_begin - slab.begin;
            const std::size_t count = run_end - run_begin;
            for (std::size_t at = 0; at < count; at += kDiffTile) {
              const std::size_t tile = std::min(kDiffTile, count - at);
              compute_diff_tile(lo + at, hi + at, tile, diff);
              update_cell_stats(diff, tile, offset + at, sum, dmax, dmin,
                                degree);
              lambda_i += reduce_tile_widening(diff, tile);
            }
          });
      stats.lambda[static_cast<std::size_t>(i)] += lambda_i;

      for_each_backward_run(
          u, tile_begin, tile_end, i,
          [&](index_t run_begin, index_t run_end) {
            const index_t* const mid =
                slab.keys + (run_begin - slab.buffer_begin);
            const index_t* const lo = mid - stride;
            const std::size_t offset = run_begin - slab.begin;
            const std::size_t count = run_end - run_begin;
            for (std::size_t at = 0; at < count; at += kDiffTile) {
              const std::size_t tile = std::min(kDiffTile, count - at);
              compute_diff_tile(mid + at, lo + at, tile, diff);
              update_cell_stats(diff, tile, offset + at, sum, dmax, dmin,
                                degree);
            }
          });
    }
  }
}

void accumulate_lambda(const Universe& u, const KeySlab& slab,
                       std::array<u128, kMaxDim>& lambda) {
  std::uint64_t diff[kDiffTile];

  // Dimension loop inside the cell-tile loop: all d forward passes over one
  // tile of keys run back-to-back while the tile is cache-resident, so the
  // key table streams from memory once instead of once per dimension.
  for (index_t tile_begin = slab.begin; tile_begin < slab.end;
       tile_begin += kCellTile) {
    const index_t tile_end = std::min(slab.end, tile_begin + kCellTile);
    for (int i = 0; i < u.dim(); ++i) {
      const index_t stride = dim_stride(u, i);
      u128 lambda_i = 0;
      for_each_forward_run(
          u, tile_begin, tile_end, i,
          [&](index_t run_begin, index_t run_end) {
            const index_t* const lo =
                slab.keys + (run_begin - slab.buffer_begin);
            const index_t* const hi = lo + stride;
            const std::size_t count = run_end - run_begin;
            for (std::size_t at = 0; at < count; at += kDiffTile) {
              const std::size_t tile = std::min(kDiffTile, count - at);
              compute_diff_tile(lo + at, hi + at, tile, diff);
              lambda_i += reduce_tile_widening(diff, tile);
            }
          });
      lambda[static_cast<std::size_t>(i)] += lambda_i;
    }
  }
}

void accumulate_lambda_reference(const Universe& u, const KeySlab& slab,
                                 std::array<u128, kMaxDim>& lambda) {
  for (int i = 0; i < u.dim(); ++i) {
    const index_t stride = dim_stride(u, i);
    u128 lambda_i = 0;
    for_each_forward_run(
        u, slab.begin, slab.end, i, [&](index_t run_begin, index_t run_end) {
          const index_t* const lo = slab.keys + (run_begin - slab.buffer_begin);
          const index_t* const hi = lo + stride;
          const std::size_t count = run_end - run_begin;
          for (std::size_t j = 0; j < count; ++j) {
            const index_t a = lo[j];
            const index_t b = hi[j];
            lambda_i += a > b ? a - b : b - a;
          }
        });
    lambda[static_cast<std::size_t>(i)] += lambda_i;
  }
}

void accumulate_neighbor_stats_reference(const Universe& u, const KeySlab& slab,
                                         SlabNeighborStats& stats) {
  reset_stats(slab, stats);

  std::uint64_t* const sum = stats.distance_sum.data();
  index_t* const dmax = stats.distance_max.data();
  index_t* const dmin = stats.distance_min.data();
  std::uint8_t* const degree = stats.degree.data();

  for (int i = 0; i < u.dim(); ++i) {
    const index_t stride = dim_stride(u, i);
    u128 lambda_i = 0;
    for_each_forward_run(
        u, slab.begin, slab.end, i, [&](index_t run_begin, index_t run_end) {
          const index_t* const lo = slab.keys + (run_begin - slab.buffer_begin);
          const index_t* const hi = lo + stride;
          const std::size_t offset = run_begin - slab.begin;
          const std::size_t count = run_end - run_begin;
          for (std::size_t j = 0; j < count; ++j) {
            const index_t a = lo[j];
            const index_t b = hi[j];
            const index_t dist = a > b ? a - b : b - a;
            sum[offset + j] += dist;
            if (dist > dmax[offset + j]) dmax[offset + j] = dist;
            if (dist < dmin[offset + j]) dmin[offset + j] = dist;
            ++degree[offset + j];
            lambda_i += dist;
          }
        });
    stats.lambda[static_cast<std::size_t>(i)] = lambda_i;

    for_each_backward_run(
        u, slab.begin, slab.end, i, [&](index_t run_begin, index_t run_end) {
          const index_t* const mid = slab.keys + (run_begin - slab.buffer_begin);
          const index_t* const lo = mid - stride;
          const std::size_t offset = run_begin - slab.begin;
          const std::size_t count = run_end - run_begin;
          for (std::size_t j = 0; j < count; ++j) {
            const index_t a = mid[j];
            const index_t b = lo[j];
            const index_t dist = a > b ? a - b : b - a;
            sum[offset + j] += dist;
            if (dist > dmax[offset + j]) dmax[offset + j] = dist;
            if (dist < dmin[offset + j]) dmin[offset + j] = dist;
            ++degree[offset + j];
          }
        });
  }
}

}  // namespace sfc
