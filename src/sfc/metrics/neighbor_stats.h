// Per-cell neighbor statistics over one key slab.
//
// The NN-stretch engine and the per-cell stretch distributions both need, for
// every cell α: Σ_{β∈N(α)} ∆π, max ∆π, min ∆π, and |N(α)|, plus the per-
// dimension forward-pair sums Λ_i.  This kernel computes all of them for one
// slab as 2d strided passes over the materialized key buffer — one forward
// and one backward pass per dimension, each a flat |keys[j ± stride] -
// keys[j]| loop over the maximal valid runs — instead of 2d key lookups per
// cell.  All accumulators are exact integers, so pass order never perturbs
// results.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sfc/common/int128.h"
#include "sfc/common/types.h"
#include "sfc/grid/universe.h"
#include "sfc/metrics/slab_walker.h"

namespace sfc {

/// Per-cell accumulators for one slab body, indexed by id - slab.begin.
/// accumulate_neighbor_stats assign()s every vector, discarding prior
/// contents.
struct SlabNeighborStats {
  /// Σ over neighbors of ∆π(α,β); fits u64 because each cell has at most
  /// 2·kMaxDim neighbors at distance < n <= 2^63.
  std::vector<std::uint64_t> distance_sum;
  std::vector<index_t> distance_max;
  /// Min neighbor distance; all-ones when the cell has no neighbors.
  std::vector<index_t> distance_min;
  /// |N(α)| <= 2·kMaxDim, so one byte suffices.
  std::vector<std::uint8_t> degree;
  /// Λ_i: Σ of ∆π over the slab's forward pairs along each dimension (each
  /// unordered NN pair owned by its lower endpoint, exactly once).
  std::array<u128, kMaxDim> lambda{};
};

/// Fills `stats` for the body cells of `slab`.
void accumulate_neighbor_stats(const Universe& u, const KeySlab& slab,
                               SlabNeighborStats& stats);

}  // namespace sfc
