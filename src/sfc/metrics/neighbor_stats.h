// Per-cell neighbor statistics over one key slab.
//
// The NN-stretch engine and the per-cell stretch distributions both need, for
// every cell α: Σ_{β∈N(α)} ∆π, max ∆π, min ∆π, and |N(α)|, plus the per-
// dimension forward-pair sums Λ_i.  This kernel computes all of them for one
// slab as 2d strided passes over the materialized key buffer — one forward
// and one backward pass per dimension, each over the maximal valid runs —
// instead of 2d key lookups per cell.  All accumulators are exact integers,
// so pass order never perturbs results.
//
// Two implementations share the run/pass structure:
//
//  - accumulate_neighbor_stats: the production kernel.  Each run is tiled
//    through a small L1-resident diff buffer: a pure |keys[j+s] - keys[j]|
//    u64 diff pass, then per-statistic update loops over the buffer, then a
//    split lo32/hi32 widening reduction that folds the tile into the u128
//    Λ_i total.  Every phase is a branch-light single-type loop the
//    auto-vectorizer handles; the u128 accumulation — the loop-carried
//    dependency that kept the fused scalar loop from vectorizing — happens
//    once per tile instead of once per neighbor.
//  - accumulate_neighbor_stats_reference: the retained fused scalar loop
//    (one pass, per-neighbor u128 Λ accumulation).  All sums are exact
//    integers, so the two are bit-identical by construction; the test suite
//    (tests/metrics/test_lambda_kernel.cpp) verifies it across every curve
//    family, and bench/perf_kernels.cpp gates the speedup in CI.
//
// Workloads that need only Λ — the paper's headline metric — get a leaner
// pair, accumulate_lambda / accumulate_lambda_reference: forward runs only,
// no per-cell arrays.  The production version blocks over cell tiles with
// the dimension loop inside, so each tile of keys is read from memory once
// for all d directional passes, and runs the same diff-tile + widening
// reduction phases (compiled with runtime-dispatched AVX2 clones).  The
// reference keeps the seed idiom: one u128 add per neighbor pair.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sfc/common/int128.h"
#include "sfc/common/types.h"
#include "sfc/grid/universe.h"
#include "sfc/metrics/slab_walker.h"

namespace sfc {

/// Per-cell accumulators for one slab body, indexed by id - slab.begin.
/// accumulate_neighbor_stats assign()s every vector, discarding prior
/// contents.
struct SlabNeighborStats {
  /// Σ over neighbors of ∆π(α,β); fits u64 because each cell has at most
  /// 2·kMaxDim neighbors at distance < n <= 2^63.
  std::vector<std::uint64_t> distance_sum;
  std::vector<index_t> distance_max;
  /// Min neighbor distance; all-ones when the cell has no neighbors.
  std::vector<index_t> distance_min;
  /// |N(α)| <= 2·kMaxDim, so one byte suffices.
  std::vector<std::uint8_t> degree;
  /// Λ_i: Σ of ∆π over the slab's forward pairs along each dimension (each
  /// unordered NN pair owned by its lower endpoint, exactly once).
  std::array<u128, kMaxDim> lambda{};
};

/// Fills `stats` for the body cells of `slab` (two-phase diff-then-reduce
/// kernel; see the header comment).
void accumulate_neighbor_stats(const Universe& u, const KeySlab& slab,
                               SlabNeighborStats& stats);

/// Retained reference implementation: the fused scalar loop with per-neighbor
/// u128 Λ accumulation.  Bit-identical to accumulate_neighbor_stats; kept as
/// the bit-identity oracle and the CI bench baseline.
void accumulate_neighbor_stats_reference(const Universe& u, const KeySlab& slab,
                                         SlabNeighborStats& stats);

/// Λ-only pass: adds the slab's forward-pair distance sums Λ_i into
/// `lambda[i]` for every dimension.  Cell-tiled two-phase kernel (diff tile,
/// widening u128 reduction once per tile); bit-identical to the lambda field
/// accumulate_neighbor_stats produces, at a fraction of the memory traffic.
void accumulate_lambda(const Universe& u, const KeySlab& slab,
                       std::array<u128, kMaxDim>& lambda);

/// Retained Λ reference: dimension-major scalar runs with one u128 add per
/// forward neighbor pair (the seed's accumulation idiom).  Bit-identity
/// oracle and the CI bench baseline for the Λ-pass gate.
void accumulate_lambda_reference(const Universe& u, const KeySlab& slab,
                                 std::array<u128, kMaxDim>& lambda);

}  // namespace sfc
