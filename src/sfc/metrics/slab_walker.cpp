#include "sfc/metrics/slab_walker.h"

#include "sfc/common/batch.h"

namespace sfc {

void encode_row_major_range(const SpaceFillingCurve& curve, index_t begin,
                            std::span<index_t> keys) {
  const Universe& u = curve.universe();
  const int d = u.dim();
  const coord_t side = u.side();
  std::vector<Point> cells(std::min<std::size_t>(keys.size(), kEncodeSliceCells));
  Point cell = u.from_row_major(begin);
  std::size_t done = 0;
  while (done < keys.size()) {
    const std::size_t len =
        std::min<std::size_t>(kEncodeSliceCells, keys.size() - done);
    for (std::size_t j = 0; j < len; ++j) {
      cells[j] = cell;
      // Advance the coordinates in row-major order (dimension 1 fastest).
      int i = 0;
      while (i < d) {
        if (++cell[i] < side) break;
        cell[i] = 0;
        ++i;
      }
    }
    curve.index_of_batch(std::span<const Point>(cells.data(), len),
                         std::span<index_t>(keys.data() + done, len));
    done += len;
  }
}

void build_key_table(const SpaceFillingCurve& curve, ThreadPool& pool,
                     std::span<index_t> keys, std::uint64_t grain) {
  parallel_for_chunks(pool, keys.size(), grain, [&](const ChunkRange& range) {
    encode_row_major_range(
        curve, range.begin,
        std::span<index_t>(keys.data() + range.begin, range.end - range.begin));
  });
}

index_t dim_stride(const Universe& u, int dim) {
  index_t stride = 1;
  for (int i = 0; i < dim; ++i) stride *= static_cast<index_t>(u.side());
  return stride;
}

index_t slab_halo(const Universe& u) { return dim_stride(u, u.dim() - 1); }

std::uint64_t slab_grain(const Universe& u, std::uint64_t reduction_grain) {
  const std::uint64_t target = 8 * static_cast<std::uint64_t>(slab_halo(u));
  const std::uint64_t multiple =
      std::max<std::uint64_t>(1, (target + reduction_grain - 1) / reduction_grain);
  return reduction_grain * multiple;
}

std::uint64_t slab_count(const Universe& u, std::uint64_t reduction_grain) {
  return chunk_count(u.cell_count(), slab_grain(u, reduction_grain));
}

}  // namespace sfc
