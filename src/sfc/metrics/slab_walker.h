// Slab-streamed key materialization for the neighbor-metric engines.
//
// Every exact neighbor metric (NN stretch, partition edge cut, per-cell
// stretch distributions) evaluates π on each cell and on its 2d grid
// neighbors.  Walking the universe per cell re-encodes each cell up to 2d+1
// times; materializing a full key table costs 8n bytes.  The slab walker is
// the middle path: it traverses the canonical row-major order in contiguous
// *slabs*, batch-encodes each slab's keys exactly once through
// index_of_batch, and extends the buffer by one halo of side^{d-1} keys on
// each side — the largest neighbor stride — so every neighbor key of every
// body cell is a flat array load.  Along dimension 1 neighbors are the
// adjacent buffer entries; along dimension i they sit at fixed offset
// side^{i-1}, so the metric kernels run as strided passes over the buffer
// instead of pointer-chasing re-encodes.
//
// Memory is O(slab): slab bodies are sized at >= 8 halos (rounded to a whole
// number of reduction chunks, so deterministic chunk-ordered reductions keep
// their exact chunk grid), which bounds the halo re-encode overhead at 25%
// while keeping universes of any size streamable.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "sfc/common/types.h"
#include "sfc/curves/space_filling_curve.h"
#include "sfc/grid/universe.h"
#include "sfc/parallel/parallel_for.h"
#include "sfc/parallel/thread_pool.h"

namespace sfc {

/// One materialized slab: curve keys for every cell id in
/// [buffer_begin, buffer_end), of which [begin, end) is the body this slab
/// owns.  The buffer extends far enough past the body on both sides that
/// key_at(id ± side^i) is in range for every body cell whose neighbor along
/// dimension i+1 exists.
struct KeySlab {
  index_t begin = 0;         ///< First body cell id (row-major).
  index_t end = 0;           ///< One past the last body cell id.
  index_t buffer_begin = 0;  ///< First id with a materialized key.
  index_t buffer_end = 0;    ///< One past the last materialized id.
  const index_t* keys = nullptr;  ///< keys[id - buffer_begin] = π(id).
  std::uint64_t slab_index = 0;   ///< Position in the fixed slab grid.

  index_t key_at(index_t id) const { return keys[id - buffer_begin]; }
};

/// keys[i] = π(cell at row-major id begin + i), generated slice-by-slice
/// through index_of_batch so the Point staging buffer stays O(1).
/// Single-threaded; the parallel entry points chunk over it.
void encode_row_major_range(const SpaceFillingCurve& curve, index_t begin,
                            std::span<index_t> keys);

/// Parallel full-universe key table: keys[id] = π(id) for every cell.
/// `keys.size()` must equal the universe cell count.  This is the one shared
/// "decode row-major chunk → index_of_batch" sweep behind KeyCache,
/// evaluate_partition's fragment mode, and compute_all_pairs_exact.
void build_key_table(const SpaceFillingCurve& curve, ThreadPool& pool,
                     std::span<index_t> keys,
                     std::uint64_t grain = kDefaultGrain);

/// Row-major stride of dimension `dim` (0-based): side^dim.  The forward
/// neighbor along that dimension of the cell with id `a` has id
/// a + dim_stride(u, dim).
index_t dim_stride(const Universe& u, int dim);

/// Halo width: the largest neighbor stride, side^{d-1} (one plane of the
/// highest dimension).
index_t slab_halo(const Universe& u);

/// Slab body length: the smallest multiple of `reduction_grain` that is at
/// least 8 halos, so halo re-encodes stay <= 25% of body encodes and slab
/// boundaries always align with the deterministic reduction chunk grid.
std::uint64_t slab_grain(const Universe& u, std::uint64_t reduction_grain);

/// Number of slabs the universe splits into at this reduction grain.
std::uint64_t slab_count(const Universe& u, std::uint64_t reduction_grain);

/// Invokes fn(run_begin, run_end) for each maximal run of consecutive ids in
/// [begin, end) whose *forward* neighbor along `dim` exists (coordinate
/// x_{dim} < side - 1).  Within a run the neighbor of id j is j + stride, so
/// callers can difference two parallel buffer spans.
template <typename Fn>
void for_each_forward_run(const Universe& u, index_t begin, index_t end,
                          int dim, Fn&& fn) {
  const index_t stride = dim_stride(u, dim);
  const index_t period = stride * static_cast<index_t>(u.side());
  const index_t valid = period - stride;  // run length inside each period
  if (valid == 0 || begin >= end) return;
  for (index_t block = (begin / period) * period; block < end;
       block += period) {
    const index_t run_begin = std::max(begin, block);
    const index_t run_end = std::min(end, block + valid);
    if (run_begin < run_end) fn(run_begin, run_end);
  }
}

/// Same for *backward* neighbors (coordinate x_{dim} > 0): the neighbor of
/// id j is j - stride.
template <typename Fn>
void for_each_backward_run(const Universe& u, index_t begin, index_t end,
                           int dim, Fn&& fn) {
  const index_t stride = dim_stride(u, dim);
  const index_t period = stride * static_cast<index_t>(u.side());
  if (period == stride || begin >= end) return;  // side == 1: no neighbors
  for (index_t block = (begin / period) * period; block < end;
       block += period) {
    const index_t run_begin = std::max(begin, block + stride);
    const index_t run_end = std::min(end, block + period);
    if (run_begin < run_end) fn(run_begin, run_end);
  }
}

/// Streams every slab of the universe through `visit(const KeySlab&)`, in
/// parallel on `pool`.  Slab bodies partition [0, n) on the fixed grid of
/// slab_grain(u, reduction_grain); each visit sees the body plus both halos
/// materialized.  Buffers live only for the duration of one visit, so peak
/// memory is O(slab) per worker regardless of universe size.
template <typename Visitor>
void for_each_key_slab(const SpaceFillingCurve& curve, ThreadPool& pool,
                       std::uint64_t reduction_grain, Visitor&& visit) {
  const Universe& u = curve.universe();
  const index_t n = u.cell_count();
  if (n == 0) return;
  const index_t halo = slab_halo(u);
  const std::uint64_t grain = slab_grain(u, reduction_grain);
  parallel_for_chunks(pool, n, grain, [&](const ChunkRange& range) {
    KeySlab slab;
    slab.begin = range.begin;
    slab.end = range.end;
    slab.buffer_begin = range.begin > halo ? range.begin - halo : 0;
    slab.buffer_end = std::min<index_t>(n, range.end + halo);
    slab.slab_index = range.chunk_index;
    std::vector<index_t> buffer(slab.buffer_end - slab.buffer_begin);
    encode_row_major_range(curve, slab.buffer_begin, buffer);
    slab.keys = buffer.data();
    visit(static_cast<const KeySlab&>(slab));
  });
}

}  // namespace sfc
