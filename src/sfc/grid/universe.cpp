#include "sfc/grid/universe.h"

#include <cstdlib>

#include "sfc/common/math.h"

namespace sfc {

Universe::Universe(int dim, coord_t side) : dim_(dim), side_(side) {
  if (dim < 1 || dim > kMaxDim || side < 1) std::abort();
  const auto count = checked_ipow(static_cast<index_t>(side), dim);
  if (!count.has_value()) std::abort();
  cell_count_ = *count;
  level_bits_ = is_pow2(side) ? floor_log2(side) : -1;
}

Universe Universe::pow2(int dim, int level_bits) {
  if (level_bits < 0 || level_bits >= 32) std::abort();
  return Universe(dim, static_cast<coord_t>(static_cast<index_t>(1) << level_bits));
}

bool Universe::contains(const Point& p) const {
  if (p.dim() != dim_) return false;
  for (int i = 0; i < dim_; ++i) {
    if (p[i] >= side_) return false;
  }
  return true;
}

index_t Universe::row_major_index(const Point& p) const {
  index_t id = 0;
  for (int i = dim_ - 1; i >= 0; --i) {
    id = id * side_ + p[i];
  }
  return id;
}

Point Universe::from_row_major(index_t id) const {
  Point p = Point::zero(dim_);
  for (int i = 0; i < dim_; ++i) {
    p[i] = static_cast<coord_t>(id % side_);
    id /= side_;
  }
  return p;
}

int Universe::neighbor_count(const Point& p) const {
  int count = 0;
  for (int i = 0; i < dim_; ++i) {
    if (p[i] > 0) ++count;
    if (p[i] + 1 < side_) ++count;
  }
  return count;
}

index_t Universe::nn_pair_count() const {
  return static_cast<index_t>(dim_) * nn_pair_count_per_dim();
}

index_t Universe::nn_pair_count_per_dim() const {
  if (side_ == 1) return 0;
  return (static_cast<index_t>(side_) - 1) * (cell_count_ / side_);
}

}  // namespace sfc
