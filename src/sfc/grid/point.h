// A cell of the d-dimensional universe.
//
// The paper writes cells as d-tuples (x_1, ..., x_d) with 0 <= x_i < side.
// Point stores paper-dimension i at component x[i-1].  It is a small value
// type (flat array + dim) so the metric engines can keep everything on the
// stack in tight loops.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <string>

#include "sfc/common/types.h"

namespace sfc {

class Point {
 public:
  /// Zero-dimensional point; mostly useful as a default before assignment.
  constexpr Point() : x_{}, dim_(0) {}

  /// Point with explicit dimensionality, all coordinates zero.
  static constexpr Point zero(int dim) {
    Point p;
    p.dim_ = dim;
    return p;
  }

  /// Construction from a coordinate list: Point{3, 5} is the paper's (3,5).
  Point(std::initializer_list<coord_t> coords);

  constexpr int dim() const { return dim_; }

  constexpr coord_t operator[](int i) const { return x_[static_cast<std::size_t>(i)]; }
  constexpr coord_t& operator[](int i) { return x_[static_cast<std::size_t>(i)]; }

  friend constexpr bool operator==(const Point& a, const Point& b) {
    if (a.dim_ != b.dim_) return false;
    for (int i = 0; i < a.dim_; ++i) {
      if (a.x_[static_cast<std::size_t>(i)] != b.x_[static_cast<std::size_t>(i)]) return false;
    }
    return true;
  }
  friend constexpr bool operator!=(const Point& a, const Point& b) { return !(a == b); }

  /// Manhattan distance (the paper's ∆): sum of |α_i − β_i|.
  friend std::uint64_t manhattan_distance(const Point& a, const Point& b);

  /// Squared Euclidean distance as an exact integer.
  friend std::uint64_t squared_euclidean_distance(const Point& a, const Point& b);

  /// Euclidean distance (the paper's ∆_E).
  friend double euclidean_distance(const Point& a, const Point& b);

  /// Chebyshev (max-coordinate) distance; used by application substrates.
  friend std::uint64_t chebyshev_distance(const Point& a, const Point& b);

  /// "(x1,x2,...,xd)" rendering for logs and figure reproduction.
  std::string to_string() const;

 private:
  std::array<coord_t, kMaxDim> x_;
  int dim_;
};

}  // namespace sfc
