#include "sfc/grid/point.h"

#include <cmath>
#include <cstdlib>

namespace sfc {

Point::Point(std::initializer_list<coord_t> coords) : x_{}, dim_(0) {
  if (coords.size() > static_cast<std::size_t>(kMaxDim)) std::abort();
  for (coord_t c : coords) x_[static_cast<std::size_t>(dim_++)] = c;
}

std::uint64_t manhattan_distance(const Point& a, const Point& b) {
  std::uint64_t total = 0;
  for (int i = 0; i < a.dim_; ++i) {
    const auto ai = a.x_[static_cast<std::size_t>(i)];
    const auto bi = b.x_[static_cast<std::size_t>(i)];
    total += ai > bi ? ai - bi : bi - ai;
  }
  return total;
}

std::uint64_t squared_euclidean_distance(const Point& a, const Point& b) {
  std::uint64_t total = 0;
  for (int i = 0; i < a.dim_; ++i) {
    const auto ai = a.x_[static_cast<std::size_t>(i)];
    const auto bi = b.x_[static_cast<std::size_t>(i)];
    const std::uint64_t diff = ai > bi ? ai - bi : bi - ai;
    total += diff * diff;
  }
  return total;
}

double euclidean_distance(const Point& a, const Point& b) {
  return std::sqrt(static_cast<double>(squared_euclidean_distance(a, b)));
}

std::uint64_t chebyshev_distance(const Point& a, const Point& b) {
  std::uint64_t best = 0;
  for (int i = 0; i < a.dim_; ++i) {
    const auto ai = a.x_[static_cast<std::size_t>(i)];
    const auto bi = b.x_[static_cast<std::size_t>(i)];
    const std::uint64_t diff = ai > bi ? ai - bi : bi - ai;
    if (diff > best) best = diff;
  }
  return best;
}

std::string Point::to_string() const {
  std::string out = "(";
  for (int i = 0; i < dim_; ++i) {
    if (i > 0) out += ",";
    out += std::to_string(x_[static_cast<std::size_t>(i)]);
  }
  out += ")";
  return out;
}

}  // namespace sfc
