// The universe U: a d-dimensional grid of side `side` with n = side^d cells.
//
// The paper assumes side = 2^k; Universe supports any side >= 1 (Figure 2
// uses a 6x6 grid) and exposes `level_bits()` for the curves that require a
// power-of-two side.  Row-major indexing (dimension 1 fastest) provides a
// canonical cell enumeration for the metric engines; it coincides with the
// paper's "simple curve" S (Eq. 8).
#pragma once

#include <cstdint>
#include <utility>

#include "sfc/common/types.h"
#include "sfc/grid/point.h"

namespace sfc {

class Universe {
 public:
  /// Grid of `dim` dimensions and side length `side` (cells per dimension).
  /// Aborts if dim is outside [1, kMaxDim] or side^dim overflows 63 bits.
  Universe(int dim, coord_t side);

  /// The paper's standard setting: side = 2^level_bits, n = 2^{dim*level_bits}.
  static Universe pow2(int dim, int level_bits);

  int dim() const { return dim_; }
  coord_t side() const { return side_; }
  /// Number of cells n.
  index_t cell_count() const { return cell_count_; }

  /// True iff side = 2^k for some k >= 0.
  bool power_of_two_side() const { return level_bits_ >= 0; }
  /// k with side = 2^k, or -1 when the side is not a power of two.
  int level_bits() const { return level_bits_; }

  bool contains(const Point& p) const;

  /// Canonical row-major cell id in [0, n): id = sum_i x_i * side^{i-1}.
  index_t row_major_index(const Point& p) const;
  Point from_row_major(index_t id) const;

  /// Number of Manhattan-distance-1 neighbors; d <= result <= 2d.
  int neighbor_count(const Point& p) const;

  /// Invokes fn(neighbor) for each cell at Manhattan distance exactly 1.
  template <typename Fn>
  void for_each_neighbor(const Point& p, Fn&& fn) const {
    for (int i = 0; i < dim_; ++i) {
      if (p[i] > 0) {
        Point q = p;
        --q[i];
        fn(std::as_const(q));
      }
      if (p[i] + 1 < side_) {
        Point q = p;
        ++q[i];
        fn(std::as_const(q));
      }
    }
  }

  /// Invokes fn(neighbor, dimension) for each *positive-direction* neighbor,
  /// i.e. each unordered NN pair is visited exactly once, tagged with the
  /// (0-based) dimension in which the pair differs.  This is the paper's
  /// partition of NN_d into groups G_1..G_d.
  template <typename Fn>
  void for_each_forward_neighbor(const Point& p, Fn&& fn) const {
    for (int i = 0; i < dim_; ++i) {
      if (p[i] + 1 < side_) {
        Point q = p;
        ++q[i];
        fn(std::as_const(q), i);
      }
    }
  }

  /// |NN_d|: number of unordered nearest-neighbor pairs,
  /// d * (side-1) * side^{d-1}.
  index_t nn_pair_count() const;

  /// Number of unordered NN pairs in group G_i (same for every dimension).
  index_t nn_pair_count_per_dim() const;

  friend bool operator==(const Universe& a, const Universe& b) {
    return a.dim_ == b.dim_ && a.side_ == b.side_;
  }

 private:
  int dim_;
  coord_t side_;
  index_t cell_count_;
  int level_bits_;
};

}  // namespace sfc
