#include "sfc/grid/box.h"

#include <cstdlib>

namespace sfc {

Box::Box(Point lo, Point hi) : lo_(lo), hi_(hi) {
  if (lo.dim() != hi.dim() || lo.dim() < 1) std::abort();
  for (int i = 0; i < lo.dim(); ++i) {
    if (lo[i] > hi[i]) std::abort();
  }
}

index_t Box::cell_count() const {
  index_t count = 1;
  for (int i = 0; i < dim(); ++i) {
    count *= static_cast<index_t>(hi_[i] - lo_[i]) + 1;
  }
  return count;
}

bool Box::contains(const Point& p) const {
  if (p.dim() != dim()) return false;
  for (int i = 0; i < dim(); ++i) {
    if (p[i] < lo_[i] || p[i] > hi_[i]) return false;
  }
  return true;
}

Box Box::full(const Universe& u) {
  Point hi = Point::zero(u.dim());
  for (int i = 0; i < u.dim(); ++i) hi[i] = u.side() - 1;
  return Box(Point::zero(u.dim()), hi);
}

}  // namespace sfc
