// Axis-aligned boxes (hyper-rectangles) of grid cells.
//
// Used by the range-query application substrate (the clustering metric of
// Moon et al. counts how many contiguous curve segments cover a rectangular
// query region) and by test fixtures that need sub-grid enumeration.
#pragma once

#include <cstdint>

#include "sfc/common/types.h"
#include "sfc/grid/point.h"
#include "sfc/grid/universe.h"

namespace sfc {

/// Inclusive box [lo, hi] in every dimension.
class Box {
 public:
  Box(Point lo, Point hi);

  const Point& lo() const { return lo_; }
  const Point& hi() const { return hi_; }
  int dim() const { return lo_.dim(); }

  /// Number of cells inside the box.
  index_t cell_count() const;

  bool contains(const Point& p) const;

  /// Invokes fn(cell) for every cell in the box, in row-major order.
  template <typename Fn>
  void for_each_cell(Fn&& fn) const {
    Point p = lo_;
    const int d = dim();
    while (true) {
      fn(static_cast<const Point&>(p));
      int i = 0;
      while (i < d) {
        if (p[i] < hi_[i]) {
          ++p[i];
          break;
        }
        p[i] = lo_[i];
        ++i;
      }
      if (i == d) break;
    }
  }

  /// Whole-universe box.
  static Box full(const Universe& u);

 private:
  Point lo_;
  Point hi_;
};

}  // namespace sfc
