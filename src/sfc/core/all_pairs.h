// All-pairs stretch metrics (paper §V-B).
//
//   str_avg,M(π) = 2/(n(n-1)) · Σ_{(α,β)∈A} ∆π(α,β)/∆(α,β)     (Manhattan)
//   str_avg,E(π) = 2/(n(n-1)) · Σ_{(α,β)∈A} ∆π(α,β)/∆E(α,β)    (Euclidean)
//
// plus the ordered total S_A'(π) = Σ_{A'} ∆π(α,β), which Lemma 2 pins to
// (n-1)n(n+1)/3 for *every* bijection.  The exact computation is O(n²); the
// sampled estimator draws uniform distinct pairs and reports standard
// errors.  Tests validate the estimator against the exact values.
#pragma once

#include <cstdint>

#include "sfc/common/error.h"
#include "sfc/common/int128.h"
#include "sfc/common/types.h"
#include "sfc/curves/space_filling_curve.h"
#include "sfc/parallel/thread_pool.h"

namespace sfc {

struct AllPairsResult {
  index_t n = 0;
  bool exact = false;

  /// str_avg,M(π).
  double avg_stretch_manhattan = 0.0;
  /// str_avg,E(π).
  double avg_stretch_euclidean = 0.0;

  /// S_A'(π): total curve distance over *ordered* pairs.  Exact mode only.
  u128 total_curve_distance_ordered = 0;

  /// Number of unordered pairs (exact) or samples drawn (sampled).
  std::uint64_t pair_count = 0;

  /// Standard errors of the two means (sampled mode; 0 in exact mode).
  double stderr_manhattan = 0.0;
  double stderr_euclidean = 0.0;
};

struct AllPairsOptions {
  ThreadPool* pool = nullptr;
  /// Refuse exact computation above this n (O(n²) pairs).
  index_t max_exact_cells = index_t{1} << 14;
};

/// Thrown by compute_all_pairs_exact when n exceeds max_exact_cells; callers
/// can recover by falling back to estimate_all_pairs (as stretch_report
/// does by checking n up front).
class AllPairsLimitError : public Error {
 public:
  AllPairsLimitError(index_t n, index_t limit);
  index_t n() const { return n_; }
  index_t limit() const { return limit_; }

 private:
  index_t n_;
  index_t limit_;
};

/// Exact O(n²) evaluation.  Throws AllPairsLimitError if
/// n > options.max_exact_cells.
AllPairsResult compute_all_pairs_exact(const SpaceFillingCurve& curve,
                                       const AllPairsOptions& options = {});

/// Monte-Carlo estimate from `samples` uniform distinct ordered pairs.
AllPairsResult estimate_all_pairs(const SpaceFillingCurve& curve,
                                  std::uint64_t samples, std::uint64_t seed,
                                  const AllPairsOptions& options = {});

}  // namespace sfc
