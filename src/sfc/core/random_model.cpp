#include "sfc/core/random_model.h"

#include <cmath>
#include <cstdlib>

#include "sfc/core/nn_stretch.h"
#include "sfc/rng/sampling.h"

namespace sfc {

std::string input_model_name(InputModel model) {
  switch (model) {
    case InputModel::kUniform: return "uniform";
    case InputModel::kGaussianBlob: return "gaussian-blob";
    case InputModel::kDiagonalBand: return "diagonal-band";
  }
  std::abort();
}

namespace {

// Box-Muller standard normal.
double normal(Xoshiro256& rng) {
  const double u1 = rng.next_double();
  const double u2 = rng.next_double();
  return std::sqrt(-2.0 * std::log(u1 + 1e-300)) *
         std::cos(6.283185307179586 * u2);
}

}  // namespace

Point sample_model_cell(InputModel model, const Universe& u, Xoshiro256& rng) {
  const auto side = static_cast<double>(u.side());
  switch (model) {
    case InputModel::kUniform:
      return random_cell(u, rng);
    case InputModel::kGaussianBlob: {
      // Center blob with sigma = side/8, rejection-clamped to the grid.
      while (true) {
        Point p = Point::zero(u.dim());
        bool ok = true;
        for (int i = 0; i < u.dim(); ++i) {
          const double value = side / 2.0 + (side / 8.0) * normal(rng);
          if (value < 0.0 || value >= side) {
            ok = false;
            break;
          }
          p[i] = static_cast<coord_t>(value);
        }
        if (ok) return p;
      }
    }
    case InputModel::kDiagonalBand: {
      // First coordinate uniform; the others within a band of width side/8
      // around it (wrapped-free rejection).
      const auto band = std::max<double>(1.0, side / 8.0);
      while (true) {
        Point p = Point::zero(u.dim());
        p[0] = static_cast<coord_t>(rng.next_below(u.side()));
        bool ok = true;
        for (int i = 1; i < u.dim(); ++i) {
          const double value =
              static_cast<double>(p[0]) + band * (2.0 * rng.next_double() - 1.0);
          if (value < 0.0 || value >= side) {
            ok = false;
            break;
          }
          p[i] = static_cast<coord_t>(value);
        }
        if (ok) return p;
      }
    }
  }
  std::abort();
}

ModelStretch measure_model_stretch(const SpaceFillingCurve& curve,
                                   InputModel model, std::uint64_t samples,
                                   std::uint64_t seed) {
  const Universe& u = curve.universe();
  Xoshiro256 rng(seed);
  RunningStats davg_stats, allpairs_stats;

  for (std::uint64_t s = 0; s < samples; ++s) {
    // Query-weighted per-cell NN stretch.
    const Point alpha = sample_model_cell(model, u, rng);
    davg_stats.add(cell_average_stretch(curve, alpha));

    // Distribution-weighted pairwise stretch.
    Point beta = sample_model_cell(model, u, rng);
    int guard = 0;
    while (beta == alpha && guard++ < 64) beta = sample_model_cell(model, u, rng);
    if (!(beta == alpha)) {
      allpairs_stats.add(static_cast<double>(curve.curve_distance(alpha, beta)) /
                         static_cast<double>(manhattan_distance(alpha, beta)));
    }
  }

  ModelStretch result;
  result.model = model;
  result.samples = samples;
  result.weighted_davg = davg_stats.mean();
  result.stderr_davg = davg_stats.standard_error();
  result.weighted_allpairs_manhattan = allpairs_stats.mean();
  result.stderr_allpairs = allpairs_stats.standard_error();
  return result;
}

}  // namespace sfc
