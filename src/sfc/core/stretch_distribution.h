// Per-cell stretch distributions.
//
// Davg and Dmax are means of the per-cell statistics δavg and δmax; the
// paper's contrast between them ("the average-maximum stretch is worse by a
// factor d ... for a vast majority of cells the distance to two of the
// nearest neighbors is large") is a statement about the *distribution* of
// per-cell stretch.  This module materializes that distribution: quantiles
// and histograms of δavg/δmax/δmin over all cells, computed in one parallel
// sweep.
#pragma once

#include <cstdint>
#include <vector>

#include "sfc/common/types.h"
#include "sfc/curves/space_filling_curve.h"
#include "sfc/parallel/thread_pool.h"

namespace sfc {

struct DistributionSummary {
  double mean = 0.0;
  double p10 = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

struct StretchDistribution {
  index_t n = 0;
  DistributionSummary cell_average;  // δavg distribution (mean = Davg)
  DistributionSummary cell_maximum;  // δmax distribution (mean = Dmax)
  DistributionSummary cell_minimum;  // δmin distribution
  /// Histogram of δavg, `bins` equal-width buckets over [0, max δavg].
  std::vector<index_t> average_histogram;
  double histogram_bucket_width = 0.0;
};

struct DistributionOptions {
  ThreadPool* pool = nullptr;
  int histogram_bins = 16;
};

/// Computes the per-cell stretch distributions (O(n·d) encodes +
/// linear-time quantile selections).
StretchDistribution compute_stretch_distribution(
    const SpaceFillingCurve& curve, const DistributionOptions& options = {});

}  // namespace sfc
