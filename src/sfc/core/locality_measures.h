// Locality measures from the related work (§II), going the *opposite*
// direction from the paper's stretch: how far apart in space can cells be
// that are close on the curve?
//
//   * Gotsman & Lindenbaum (1996): GL(π) = max over pairs of
//       ∆E(π⁻¹(i), π⁻¹(j))² / |i - j|.
//     For the 2-d Hilbert curve they prove lim GL ∈ [6, 6.5]; our measured
//     value reproduces that window.
//   * Niedermeier, Reinhardt & Sanders (2002) bound the same ratio with the
//     Manhattan metric (≈ 3√(i-j) for 2-d Hilbert, i.e. squared-ratio 9).
//   * Dai & Su (2003/2004) study p-norm *average* variants; we implement the
//     mean of the same squared-Euclidean ratio.
//
// These complement the paper's stretch (which maps high-dim -> 1-d): a curve
// can be good at one and mediocre at the other, which is exactly the
// distinction §II draws.
#pragma once

#include <cstdint>

#include "sfc/common/types.h"
#include "sfc/curves/space_filling_curve.h"
#include "sfc/parallel/thread_pool.h"

namespace sfc {

struct LocalityMeasures {
  /// max ∆E² / ∆π over pairs (Gotsman-Lindenbaum measure).
  double gl_max_euclidean_sq = 0.0;
  /// mean ∆E² / ∆π over pairs (Dai-Su style average).
  double mean_euclidean_sq = 0.0;
  /// max ∆(Manhattan)² / ∆π over pairs (Niedermeier et al. variant).
  double nrs_max_manhattan_sq = 0.0;
  /// Pairs evaluated.
  std::uint64_t pair_count = 0;
  bool exact = false;
};

struct LocalityOptions {
  ThreadPool* pool = nullptr;
  /// Exact O(n²) evaluation allowed up to this many cells.
  index_t max_exact_cells = index_t{1} << 13;
  /// Above the exact limit: evaluate all pairs within this key distance
  /// (the maxima are typically achieved at small |i-j|, so a windowed scan
  /// is a tight lower estimate of the true max).
  index_t window = 4096;
};

/// Computes the inverse-direction locality measures, exactly when
/// n <= options.max_exact_cells, else over the key window.
LocalityMeasures compute_locality_measures(const SpaceFillingCurve& curve,
                                           const LocalityOptions& options = {});

}  // namespace sfc
