#include "sfc/core/locality_measures.h"

#include <algorithm>
#include <span>
#include <vector>

#include "sfc/parallel/parallel_for.h"

namespace sfc {

LocalityMeasures compute_locality_measures(const SpaceFillingCurve& curve,
                                           const LocalityOptions& options) {
  const Universe& u = curve.universe();
  const index_t n = u.cell_count();
  ThreadPool& pool = options.pool ? *options.pool : ThreadPool::shared();

  const bool exact = n <= options.max_exact_cells;
  const index_t window = exact ? n : std::min<index_t>(options.window, n);

  // Materialize the curve order once: cells[key] = π⁻¹(key), decoded through
  // the batched codec chunk by chunk.
  std::vector<Point> cells(n);
  parallel_for_chunks(pool, n, kDefaultGrain, [&](const ChunkRange& range) {
    curve.point_range(range.begin,
                      std::span<Point>(cells.data() + range.begin,
                                       range.end - range.begin));
  });

  struct Partial {
    double gl_max = 0.0;
    double nrs_max = 0.0;
    long double mean_sum = 0.0L;
    std::uint64_t pairs = 0;
  };
  const std::uint64_t grain = 1024;
  const std::uint64_t chunks = chunk_count(n, grain);
  std::vector<Partial> partials(chunks);

  parallel_for_chunks(pool, n, grain, [&](const ChunkRange& range) {
    Partial& part = partials[range.chunk_index];
    for (index_t i = range.begin; i < range.end; ++i) {
      const index_t j_end = std::min<index_t>(n, i + 1 + window);
      for (index_t j = i + 1; j < j_end; ++j) {
        const auto key_dist = static_cast<double>(j - i);
        const auto euclid_sq =
            static_cast<double>(squared_euclidean_distance(cells[i], cells[j]));
        const auto manhattan =
            static_cast<double>(manhattan_distance(cells[i], cells[j]));
        const double gl = euclid_sq / key_dist;
        const double nrs = manhattan * manhattan / key_dist;
        if (gl > part.gl_max) part.gl_max = gl;
        if (nrs > part.nrs_max) part.nrs_max = nrs;
        part.mean_sum += static_cast<long double>(gl);
        ++part.pairs;
      }
    }
  });

  LocalityMeasures result;
  result.exact = exact;
  long double mean_sum = 0.0L;
  for (const Partial& part : partials) {
    result.gl_max_euclidean_sq = std::max(result.gl_max_euclidean_sq, part.gl_max);
    result.nrs_max_manhattan_sq =
        std::max(result.nrs_max_manhattan_sq, part.nrs_max);
    mean_sum += part.mean_sum;
    result.pair_count += part.pairs;
  }
  if (result.pair_count > 0) {
    result.mean_euclidean_sq =
        static_cast<double>(mean_sum / static_cast<long double>(result.pair_count));
  }
  return result;
}

}  // namespace sfc
