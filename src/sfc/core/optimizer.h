// Local search for low-stretch bijections.
//
// The paper's §VI asks how close the Theorem-1 bound is to the true optimum
// ("close the gap ... perhaps via an analysis of a different SFC, or through
// a better lower bound").  This module searches the space of bijections
// directly: hill climbing with random restarts over key-swap moves, with an
// O(d) incremental Davg evaluation per move.  On small grids it discovers
// orderings better than any named curve, squeezing the empirical gap between
// the bound and the best-known curve.
#pragma once

#include <cstdint>
#include <vector>

#include "sfc/common/types.h"
#include "sfc/curves/permutation_curve.h"
#include "sfc/grid/universe.h"

namespace sfc {

struct OptimizeOptions {
  /// Total candidate swaps to evaluate.
  std::uint64_t iterations = 200000;
  /// Accept a worsening move with this probability (simple Metropolis-free
  /// diversification; 0 = pure hill climbing).
  double random_accept = 0.01;
  std::uint64_t seed = 1;
};

struct OptimizeResult {
  /// Best keys found: keys[row_major_id] = curve position.
  std::vector<index_t> keys;
  double initial_davg = 0.0;
  double best_davg = 0.0;
  std::uint64_t accepted_moves = 0;
  std::uint64_t iterations = 0;
};

/// Improves the bijection `initial_keys` (defaults to row-major identity if
/// empty) by swap-based local search minimizing Davg.
OptimizeResult optimize_davg(const Universe& universe,
                             std::vector<index_t> initial_keys,
                             const OptimizeOptions& options = {});

/// Wraps the result as a curve.
CurvePtr make_optimized_curve(const Universe& universe, OptimizeResult result);

}  // namespace sfc
