// One-call analysis of a curve: NN-stretch, bounds, ratios, and optionally
// the all-pairs stretch — the library's front-door API used by quickstart.
#pragma once

#include <optional>
#include <string>

#include "sfc/core/all_pairs.h"
#include "sfc/core/bounds.h"
#include "sfc/core/nn_stretch.h"
#include "sfc/curves/space_filling_curve.h"

namespace sfc {

struct AnalyzeOptions {
  NNStretchOptions stretch;
  /// Compute all-pairs stretch: exactly when n <= all_pairs_exact_limit,
  /// by sampling otherwise (0 samples disables all-pairs entirely).
  index_t all_pairs_exact_limit = index_t{1} << 12;
  std::uint64_t all_pairs_samples = 200000;
  std::uint64_t seed = 42;
};

struct StretchReport {
  std::string curve_name;
  int dim = 0;
  index_t n = 0;
  coord_t side = 0;

  NNStretchResult nn;

  /// Theorem 1 bound and where this curve sits relative to it.
  double davg_lower_bound = 0.0;
  double davg_ratio_to_bound = 0.0;
  /// d·Davg/n^{1-1/d} (Theorems 2/3 predict 1 for Z and S as n grows).
  double normalized_davg = 0.0;

  double dmax_lower_bound = 0.0;
  double dmax_ratio_to_bound = 0.0;

  std::optional<AllPairsResult> all_pairs;
  /// Proposition 3 bounds (present whenever all_pairs is).
  double allpairs_manhattan_bound = 0.0;
  double allpairs_euclidean_bound = 0.0;
};

StretchReport analyze_curve(const SpaceFillingCurve& curve,
                            const AnalyzeOptions& options = {});

/// Multi-line human-readable rendering.
std::string to_string(const StretchReport& report);

}  // namespace sfc
