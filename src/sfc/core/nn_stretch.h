// Nearest-neighbor stretch metrics (paper §III Definitions 1-4 and §IV).
//
// For an SFC π on universe U:
//   δavg_π(α) = (Σ_{β∈N(α)} ∆π(α,β)) / |N(α)|        (Definition 1)
//   Davg(π)   = (1/n) Σ_α δavg_π(α)                   (Definition 2)
//   δmax_π(α) = max_{β∈N(α)} ∆π(α,β)                  (Definition 3)
//   Dmax(π)   = (1/n) Σ_α δmax_π(α)                   (Definition 4)
//   Λ_i(π)    = Σ_{(α,β)∈G_i} ∆π(α,β)                 (§IV-B, unordered NN
//               pairs differing in dimension i)
//
// The engine streams the universe in row-major key slabs (sfc/metrics):
// each slab is batch-encoded once and every neighbor distance is a strided
// buffer difference, so exact metrics run in O(slab) memory with one encode
// per cell.  Λ_i accumulate as exact 128-bit integers; the per-cell averages
// use deterministic chunked long-double sums whose chunk grid depends only
// on (n, grain), so results are bit-identical across thread counts and
// across both engines.
#pragma once

#include <array>
#include <optional>

#include "sfc/common/int128.h"
#include "sfc/common/types.h"
#include "sfc/curves/space_filling_curve.h"
#include "sfc/parallel/thread_pool.h"

namespace sfc {

enum class NNStretchEngine {
  /// Slab-streamed engine (sfc/metrics): each cell's key is batch-encoded
  /// once into reusable slab buffers and every neighbor difference is a flat
  /// strided pass.  O(slab) memory at any universe size.
  kSlab,
  /// Reference path: per-cell key lookups, through a full KeyCache when the
  /// universe fits under max_cache_cells and scalar virtual index_of calls
  /// (2d+1 encodes per cell) above it.  Kept for the perf_metrics_scaling
  /// baseline and the engine-equivalence tests; results are bit-identical to
  /// the slab engine.
  kScalar,
};

struct NNStretchOptions {
  /// Pool to run on; nullptr means ThreadPool::shared().
  ThreadPool* pool = nullptr;
  NNStretchEngine engine = NNStretchEngine::kSlab;
  /// Scalar engine only: materialize a key table when n <= max_cache_cells
  /// (8 bytes/cell).  The slab engine never builds an O(n) table.
  bool use_key_cache = true;
  index_t max_cache_cells = index_t{1} << 27;
  /// Cells per deterministic reduction chunk.
  std::uint64_t grain = std::uint64_t{1} << 16;
};

struct NNStretchResult {
  index_t n = 0;
  int dim = 0;

  /// Davg(π): average-average NN stretch (Definition 2).
  double average_average = 0.0;
  /// Dmax(π): average-maximum NN stretch (Definition 4).
  double average_maximum = 0.0;
  /// Extension metric: average over cells of min_{β∈N(α)} ∆π(α,β) — the
  /// curve window needed to reach the *first* spatial neighbor.
  double average_minimum = 0.0;

  /// Λ_i(π) for paper dimensions i = 1..d (component i-1), exact.
  std::array<u128, kMaxDim> lambda{};
  /// Σ over all unordered NN pairs of ∆π = Σ_i Λ_i, exact.
  u128 nn_distance_total = 0;
  /// |NN_d|.
  index_t nn_pair_count = 0;

  /// Lemma 3 sandwich evaluated from the exact NN total:
  ///   lemma3_lower = Σ_NN ∆π / (n d) <= Davg <= 2 Σ_NN ∆π / (n d).
  double lemma3_lower = 0.0;
  double lemma3_upper = 0.0;

  /// Extremes of the per-cell average stretch δavg_π(α).
  double min_cell_stretch = 0.0;
  double max_cell_stretch = 0.0;
};

/// Computes every NN-stretch statistic in one parallel sweep.
NNStretchResult compute_nn_stretch(const SpaceFillingCurve& curve,
                                   const NNStretchOptions& options = {});

/// Λ-only fast path: exact Λ_i(π) for i = 1..d (component i-1) without the
/// per-cell stretch statistics.  Streams the same key slabs but runs the
/// lean cell-tiled Λ kernel (sfc/metrics accumulate_lambda) — forward runs
/// only, no per-cell arrays — so it is several times faster than a full
/// compute_nn_stretch when only the paper's Λ metric is needed.  Exact
/// integer sums: bit-identical to NNStretchResult::lambda for any pool size
/// or grain.  `options.engine` and the key-cache fields are ignored.
std::array<u128, kMaxDim> compute_lambda(const SpaceFillingCurve& curve,
                                         const NNStretchOptions& options = {});

/// δavg_π(α) for a single cell (Definition 1); used by tests and examples.
double cell_average_stretch(const SpaceFillingCurve& curve, const Point& cell);

/// δmax_π(α) for a single cell (Definition 3).
index_t cell_maximum_stretch(const SpaceFillingCurve& curve, const Point& cell);

}  // namespace sfc
