#include "sfc/core/optimizer.h"

#include <cmath>
#include <cstdlib>
#include <memory>
#include <numeric>

#include "sfc/rng/xoshiro256.h"

namespace sfc {

namespace {

// Incremental Davg bookkeeping.  Davg = (1/n) Σ_α contribution(α) where
// contribution(α) = (Σ_{β∈N(α)} |k_α - k_β|) / deg(α).  Swapping the keys of
// two cells changes only the contributions of the swapped cells and their
// neighbors.
class DavgState {
 public:
  DavgState(const Universe& u, std::vector<index_t> keys)
      : universe_(u), keys_(std::move(keys)), contribution_(u.cell_count()) {
    total_ = 0.0L;
    for (index_t id = 0; id < universe_.cell_count(); ++id) {
      contribution_[id] = cell_contribution(id);
      total_ += contribution_[id];
    }
  }

  double davg() const {
    return static_cast<double>(total_ /
                               static_cast<long double>(universe_.cell_count()));
  }

  const std::vector<index_t>& keys() const { return keys_; }

  /// Swaps the keys of cells a and b and returns the new Davg.
  double apply_swap(index_t a, index_t b) {
    std::swap(keys_[a], keys_[b]);
    refresh_around(a);
    refresh_around(b);
    return davg();
  }

 private:
  double cell_contribution(index_t id) const {
    const Point cell = universe_.from_row_major(id);
    const index_t key = keys_[id];
    std::uint64_t sum = 0;
    int degree = 0;
    universe_.for_each_neighbor(cell, [&](const Point& q) {
      const index_t qk = keys_[universe_.row_major_index(q)];
      sum += key > qk ? key - qk : qk - key;
      ++degree;
    });
    return degree > 0 ? static_cast<double>(sum) / degree : 0.0;
  }

  void refresh_cell(index_t id) {
    const double fresh = cell_contribution(id);
    total_ += static_cast<long double>(fresh) -
              static_cast<long double>(contribution_[id]);
    contribution_[id] = fresh;
  }

  void refresh_around(index_t id) {
    refresh_cell(id);
    const Point cell = universe_.from_row_major(id);
    universe_.for_each_neighbor(cell, [&](const Point& q) {
      refresh_cell(universe_.row_major_index(q));
    });
  }

  Universe universe_;
  std::vector<index_t> keys_;
  std::vector<double> contribution_;
  long double total_;
};

}  // namespace

OptimizeResult optimize_davg(const Universe& universe,
                             std::vector<index_t> initial_keys,
                             const OptimizeOptions& options) {
  const index_t n = universe.cell_count();
  if (initial_keys.empty()) {
    initial_keys.resize(n);
    std::iota(initial_keys.begin(), initial_keys.end(), index_t{0});
  }
  if (initial_keys.size() != n) std::abort();

  DavgState state(universe, std::move(initial_keys));
  Xoshiro256 rng(options.seed);

  OptimizeResult result;
  result.initial_davg = state.davg();
  result.best_davg = result.initial_davg;
  result.keys = state.keys();
  result.iterations = options.iterations;

  double current = result.initial_davg;
  for (std::uint64_t iter = 0; iter < options.iterations; ++iter) {
    const index_t a = rng.next_below(n);
    index_t b = rng.next_below(n);
    if (a == b) continue;
    const double candidate = state.apply_swap(a, b);
    const bool accept = candidate <= current ||
                        rng.next_double() < options.random_accept;
    if (accept) {
      current = candidate;
      ++result.accepted_moves;
      if (candidate < result.best_davg) {
        result.best_davg = candidate;
        result.keys = state.keys();
      }
    } else {
      state.apply_swap(a, b);  // undo
    }
  }
  return result;
}

CurvePtr make_optimized_curve(const Universe& universe, OptimizeResult result) {
  return std::make_unique<PermutationCurve>(universe, std::move(result.keys),
                                            "optimized");
}

}  // namespace sfc
