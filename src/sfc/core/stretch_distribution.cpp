#include "sfc/core/stretch_distribution.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sfc/metrics/neighbor_stats.h"
#include "sfc/metrics/slab_walker.h"
#include "sfc/parallel/parallel_for.h"

namespace sfc {

namespace {

// Fixed quantiles only need order statistics, so each is a linear-time
// std::nth_element selection (permuting `values`) rather than a full sort;
// the histogram pass below never needed sorted data.
DistributionSummary summarize(std::vector<double>& values) {
  DistributionSummary summary;
  if (values.empty()) return summary;
  long double sum = 0.0L;
  for (double v : values) sum += static_cast<long double>(v);
  summary.mean = static_cast<double>(sum / static_cast<long double>(values.size()));
  auto at = [&](double fraction) {
    const auto index = static_cast<std::size_t>(
        fraction * static_cast<double>(values.size() - 1));
    const auto nth = values.begin() + static_cast<std::ptrdiff_t>(index);
    std::nth_element(values.begin(), nth, values.end());
    return *nth;
  };
  summary.p10 = at(0.10);
  summary.p50 = at(0.50);
  summary.p90 = at(0.90);
  summary.p99 = at(0.99);
  summary.max = *std::max_element(values.begin(), values.end());
  return summary;
}

}  // namespace

StretchDistribution compute_stretch_distribution(
    const SpaceFillingCurve& curve, const DistributionOptions& options) {
  const Universe& u = curve.universe();
  ThreadPool& pool = options.pool ? *options.pool : ThreadPool::shared();
  const index_t n = u.cell_count();

  // One slab-streamed sweep (sfc/metrics): each cell's key is batch-encoded
  // once and every neighbor distance is a strided buffer difference, instead
  // of 2d+1 virtual encodes per cell.
  std::vector<double> averages(n), maxima(n), minima(n);
  for_each_key_slab(curve, pool, kDefaultGrain, [&](const KeySlab& slab) {
    SlabNeighborStats stats;
    accumulate_neighbor_stats(u, slab, stats);
    for (index_t id = slab.begin; id < slab.end; ++id) {
      const std::size_t j = id - slab.begin;
      const int degree = stats.degree[j];
      averages[id] = degree > 0 ? static_cast<double>(stats.distance_sum[j]) /
                                      static_cast<double>(degree)
                                : 0.0;
      maxima[id] = static_cast<double>(degree > 0 ? stats.distance_max[j] : 0);
      minima[id] = static_cast<double>(degree > 0 ? stats.distance_min[j] : 0);
    }
  });

  StretchDistribution result;
  result.n = n;
  result.cell_average = summarize(averages);   // permutes in place
  result.cell_maximum = summarize(maxima);
  result.cell_minimum = summarize(minima);

  const int bins = std::max(1, options.histogram_bins);
  result.average_histogram.assign(static_cast<std::size_t>(bins), 0);
  const double top = result.cell_average.max;
  result.histogram_bucket_width = top > 0 ? top / bins : 1.0;
  for (double value : averages) {
    auto bucket = static_cast<std::size_t>(value / result.histogram_bucket_width);
    if (bucket >= static_cast<std::size_t>(bins)) {
      bucket = static_cast<std::size_t>(bins) - 1;
    }
    ++result.average_histogram[bucket];
  }
  return result;
}

}  // namespace sfc
