#include "sfc/core/convergence.h"

namespace sfc {

std::vector<SweepRow> davg_sweep(CurveFamily family, int dim, int k_min,
                                 int k_max, const SweepOptions& options) {
  std::vector<SweepRow> rows;
  for (int k = k_min; k <= k_max; ++k) {
    const auto n = checked_ipow(index_t{2}, k * dim);
    if (!n.has_value() || *n > options.max_cells) break;
    const Universe u = Universe::pow2(dim, k);
    const CurvePtr curve = make_curve(family, u, options.seed);
    const NNStretchResult stretch = compute_nn_stretch(*curve, options.stretch);

    SweepRow row;
    row.dim = dim;
    row.level_bits = k;
    row.n = u.cell_count();
    row.davg = stretch.average_average;
    row.dmax = stretch.average_maximum;
    row.lower_bound = bounds::davg_lower_bound(u);
    row.ratio_to_bound = row.lower_bound > 0 ? row.davg / row.lower_bound : 0.0;
    const double scale = static_cast<double>(bounds::n_pow_1m1d(u));
    row.normalized_davg = dim * row.davg / scale;
    row.normalized_dmax = dim * row.dmax / scale;
    rows.push_back(row);
  }
  return rows;
}

int max_level_bits(int dim, index_t max_cells, int k_min) {
  int k = k_min;
  while (true) {
    const auto n = checked_ipow(index_t{2}, (k + 1) * dim);
    if (!n.has_value() || *n > max_cells) return k;
    ++k;
  }
}

}  // namespace sfc
