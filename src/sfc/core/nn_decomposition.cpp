#include "sfc/core/nn_decomposition.h"

#include <cstdlib>
#include <string>

#include "sfc/common/math.h"

namespace sfc {

namespace {

NNEdge make_edge(const Point& a, const Point& b, int dim_i) {
  return a[dim_i] < b[dim_i] ? NNEdge{a, b} : NNEdge{b, a};
}

}  // namespace

DecompositionArgumentError::DecompositionArgumentError(int alpha_dim,
                                                       int beta_dim)
    : Error("nn_decomposition endpoints differ in dimension: " +
            std::to_string(alpha_dim) + " vs " +
            std::to_string(beta_dim)),
      alpha_dim_(alpha_dim),
      beta_dim_(beta_dim) {}

std::vector<Point> nn_decomposition_vertices(const Point& alpha, const Point& beta) {
  if (alpha.dim() != beta.dim()) {
    throw DecompositionArgumentError(alpha.dim(), beta.dim());
  }
  std::vector<Point> vertices;
  vertices.push_back(alpha);
  Point current = alpha;
  // Correct dimensions in order 1..d (paper's construction: α_0 = α,
  // α_j fixes the first j coordinates to β's).
  for (int i = 0; i < alpha.dim(); ++i) {
    while (current[i] != beta[i]) {
      if (current[i] < beta[i]) {
        ++current[i];
      } else {
        --current[i];
      }
      vertices.push_back(current);
    }
  }
  return vertices;
}

std::vector<NNEdge> nn_decomposition(const Point& alpha, const Point& beta) {
  const std::vector<Point> vertices = nn_decomposition_vertices(alpha, beta);
  std::vector<NNEdge> edges;
  edges.reserve(vertices.size() > 0 ? vertices.size() - 1 : 0);
  for (std::size_t v = 0; v + 1 < vertices.size(); ++v) {
    // Consecutive vertices differ in exactly one dimension by one.
    int diff_dim = -1;
    for (int i = 0; i < alpha.dim(); ++i) {
      if (vertices[v][i] != vertices[v + 1][i]) {
        diff_dim = i;
        break;
      }
    }
    edges.push_back(make_edge(vertices[v], vertices[v + 1], diff_dim));
  }
  return edges;
}

u128 decomposition_multiplicity(const Universe& u, const Point& zeta, int dim_i) {
  if (dim_i < 0 || dim_i >= u.dim()) std::abort();
  if (zeta[dim_i] + 1 >= u.side()) std::abort();  // edge must exist
  // Derivation (proof of Lemma 4): the edge (ζ, ζ+e_i) lies on p(α,β) iff
  //   β_j = ζ_j for j < i   (already corrected),
  //   α_j = ζ_j for j > i   (not yet corrected),
  //   and the i-interval of the path covers [ζ_i, ζ_i+1]:
  //   α_i <= ζ_i < β_i  or  β_i <= ζ_i < α_i.
  // Free choices: α_j for j < i (side each), β_j for j > i (side each), and
  // (α_i, β_i) in 2 · (ζ_i+1) · (side-1-ζ_i) ways.
  const u128 side = u.side();
  u128 free_choices = 1;
  for (int j = 0; j < u.dim() - 1; ++j) free_choices *= side;
  const u128 interval_choices =
      u128{2} * (static_cast<u128>(zeta[dim_i]) + 1) *
      (side - 1 - static_cast<u128>(zeta[dim_i]));
  return free_choices * interval_choices;
}

u128 decomposition_multiplicity_bound(const Universe& u) {
  // n^{(d+1)/d} / 2 = n * side / 2.  n * side is always even for side >= 2.
  return static_cast<u128>(u.cell_count()) * u.side() / 2;
}

}  // namespace sfc
