#include "sfc/core/nn_stretch.h"

#include <limits>
#include <memory>
#include <vector>

#include "sfc/curves/key_cache.h"
#include "sfc/metrics/neighbor_stats.h"
#include "sfc/metrics/slab_walker.h"
#include "sfc/parallel/parallel_for.h"

namespace sfc {

namespace {

// Per-chunk partial sums.  Chunk boundaries depend only on n and the grain,
// and partials are combined in chunk order, so the floating-point results are
// deterministic for any thread count — and identical for both engines, which
// share this chunk grid.
struct Partial {
  long double avg_sum = 0.0L;  // Σ_α δavg(α)
  long double max_sum = 0.0L;  // Σ_α δmax(α)
  long double min_sum = 0.0L;  // Σ_α δmin(α)
  std::array<u128, kMaxDim> lambda{};
  double min_cell = std::numeric_limits<double>::infinity();
  double max_cell = -std::numeric_limits<double>::infinity();
};

// Key lookup abstraction for the scalar engine: cached table or on-the-fly
// encode.
class KeyFn {
 public:
  KeyFn(const SpaceFillingCurve& curve, const NNStretchOptions& options,
        ThreadPool& pool)
      : curve_(curve) {
    if (options.use_key_cache &&
        curve.universe().cell_count() <= options.max_cache_cells) {
      cache_ = std::make_unique<KeyCache>(curve, pool);
    }
  }

  index_t operator()(const Point& cell, index_t row_major_id) const {
    return cache_ ? cache_->key_of_id(row_major_id) : curve_.index_of(cell);
  }

 private:
  const SpaceFillingCurve& curve_;
  std::unique_ptr<KeyCache> cache_;
};

// Scalar reference sweep: one pass over all cells, 2d+1 key lookups each.
void scalar_sweep(const SpaceFillingCurve& curve,
                  const NNStretchOptions& options, ThreadPool& pool,
                  std::vector<Partial>& partials) {
  const Universe& u = curve.universe();
  const KeyFn key(curve, options, pool);
  const index_t n = u.cell_count();
  const int d = u.dim();
  const index_t side = u.side();

  // Row-major strides: neighbor along dimension i is at id ± stride[i].
  std::array<index_t, kMaxDim> stride{};
  {
    index_t s = 1;
    for (int i = 0; i < d; ++i) {
      stride[static_cast<std::size_t>(i)] = s;
      s *= side;
    }
  }

  parallel_for_chunks(pool, n, options.grain, [&](const ChunkRange& range) {
    Partial& part = partials[range.chunk_index];
    Point cell = u.from_row_major(range.begin);
    for (index_t id = range.begin; id < range.end; ++id) {
      const index_t cell_key = key(cell, id);

      std::uint64_t dist_sum = 0;
      index_t dist_max = 0;
      index_t dist_min = std::numeric_limits<index_t>::max();
      int degree = 0;

      for (int i = 0; i < d; ++i) {
        const auto si = stride[static_cast<std::size_t>(i)];
        // Backward neighbor (x_i - 1).
        if (cell[i] > 0) {
          Point q = cell;
          --q[i];
          const index_t qk = key(q, id - si);
          const index_t dist = cell_key > qk ? cell_key - qk : qk - cell_key;
          dist_sum += dist;
          if (dist > dist_max) dist_max = dist;
          if (dist < dist_min) dist_min = dist;
          ++degree;
        }
        // Forward neighbor (x_i + 1): also the unordered-pair representative
        // for Λ_i (each NN pair counted exactly once, by its lower endpoint).
        if (cell[i] + 1 < side) {
          Point q = cell;
          ++q[i];
          const index_t qk = key(q, id + si);
          const index_t dist = cell_key > qk ? cell_key - qk : qk - cell_key;
          dist_sum += dist;
          if (dist > dist_max) dist_max = dist;
          if (dist < dist_min) dist_min = dist;
          ++degree;
          part.lambda[static_cast<std::size_t>(i)] += dist;
        }
      }

      if (degree > 0) {
        const double cell_avg =
            static_cast<double>(dist_sum) / static_cast<double>(degree);
        part.avg_sum += static_cast<long double>(cell_avg);
        part.max_sum += static_cast<long double>(dist_max);
        part.min_sum += static_cast<long double>(dist_min);
        if (cell_avg < part.min_cell) part.min_cell = cell_avg;
        if (cell_avg > part.max_cell) part.max_cell = cell_avg;
      }

      // Advance the cell coordinates in row-major order.
      int i = 0;
      while (i < d) {
        if (++cell[i] < side) break;
        cell[i] = 0;
        ++i;
      }
    }
  });
}

// Slab sweep: each slab is batch-encoded once (plus halos); neighbor
// distances are strided buffer passes.  Per-cell results are folded into the
// *reduction* chunk grid — slab bodies are whole multiples of the grain, so
// every chunk belongs to exactly one slab and the floating-point partials
// match the scalar sweep bit for bit.
void slab_sweep(const SpaceFillingCurve& curve, const NNStretchOptions& options,
                ThreadPool& pool, std::vector<Partial>& partials) {
  const Universe& u = curve.universe();
  const int d = u.dim();
  const std::uint64_t grain = options.grain;

  for_each_key_slab(curve, pool, grain, [&](const KeySlab& slab) {
    SlabNeighborStats stats;
    accumulate_neighbor_stats(u, slab, stats);

    // Λ_i is an exact integer sum, so it can land in any partial; use the
    // slab's first chunk.
    {
      Partial& first = partials[slab.begin / grain];
      for (int i = 0; i < d; ++i) {
        first.lambda[static_cast<std::size_t>(i)] +=
            stats.lambda[static_cast<std::size_t>(i)];
      }
    }

    for (index_t chunk_begin = slab.begin; chunk_begin < slab.end;
         chunk_begin += grain) {
      Partial& part = partials[chunk_begin / grain];
      const index_t chunk_end = std::min<index_t>(slab.end, chunk_begin + grain);
      for (index_t id = chunk_begin; id < chunk_end; ++id) {
        const std::size_t j = id - slab.begin;
        const int degree = stats.degree[j];
        if (degree == 0) continue;
        const double cell_avg = static_cast<double>(stats.distance_sum[j]) /
                                static_cast<double>(degree);
        part.avg_sum += static_cast<long double>(cell_avg);
        part.max_sum += static_cast<long double>(stats.distance_max[j]);
        part.min_sum += static_cast<long double>(stats.distance_min[j]);
        if (cell_avg < part.min_cell) part.min_cell = cell_avg;
        if (cell_avg > part.max_cell) part.max_cell = cell_avg;
      }
    }
  });
}

}  // namespace

NNStretchResult compute_nn_stretch(const SpaceFillingCurve& curve,
                                   const NNStretchOptions& options) {
  const Universe& u = curve.universe();
  ThreadPool& pool = options.pool ? *options.pool : ThreadPool::shared();
  const index_t n = u.cell_count();
  const int d = u.dim();

  const std::uint64_t chunks = chunk_count(n, options.grain);
  std::vector<Partial> partials(chunks);
  if (options.engine == NNStretchEngine::kSlab) {
    slab_sweep(curve, options, pool, partials);
  } else {
    scalar_sweep(curve, options, pool, partials);
  }

  NNStretchResult result;
  result.n = n;
  result.dim = d;
  result.nn_pair_count = u.nn_pair_count();

  long double avg_total = 0.0L, max_total = 0.0L, min_total = 0.0L;
  double min_cell = std::numeric_limits<double>::infinity();
  double max_cell = -std::numeric_limits<double>::infinity();
  for (const Partial& part : partials) {
    avg_total += part.avg_sum;
    max_total += part.max_sum;
    min_total += part.min_sum;
    for (int i = 0; i < d; ++i) {
      result.lambda[static_cast<std::size_t>(i)] += part.lambda[static_cast<std::size_t>(i)];
    }
    if (part.min_cell < min_cell) min_cell = part.min_cell;
    if (part.max_cell > max_cell) max_cell = part.max_cell;
  }
  for (int i = 0; i < d; ++i) {
    result.nn_distance_total += result.lambda[static_cast<std::size_t>(i)];
  }

  const auto nd = static_cast<long double>(n);
  result.average_average = static_cast<double>(avg_total / nd);
  result.average_maximum = static_cast<double>(max_total / nd);
  result.average_minimum = static_cast<double>(min_total / nd);
  result.min_cell_stretch = n > 0 ? min_cell : 0.0;
  result.max_cell_stretch = n > 0 ? max_cell : 0.0;

  const long double nn_total = to_long_double(result.nn_distance_total);
  result.lemma3_lower = static_cast<double>(nn_total / (nd * d));
  result.lemma3_upper = static_cast<double>(2.0L * nn_total / (nd * d));
  return result;
}

std::array<u128, kMaxDim> compute_lambda(const SpaceFillingCurve& curve,
                                         const NNStretchOptions& options) {
  const Universe& u = curve.universe();
  ThreadPool& pool = options.pool ? *options.pool : ThreadPool::shared();
  // One partial per slab, folded in slab order.  The fold is exact integer
  // addition, so the result is independent of scheduling anyway; the ordered
  // fold keeps the determinism argument trivial.
  std::vector<std::array<u128, kMaxDim>> partials(
      slab_count(u, options.grain));
  for_each_key_slab(curve, pool, options.grain, [&](const KeySlab& slab) {
    accumulate_lambda(u, slab, partials[slab.slab_index]);
  });
  std::array<u128, kMaxDim> lambda{};
  for (const auto& part : partials) {
    for (int i = 0; i < u.dim(); ++i) {
      lambda[static_cast<std::size_t>(i)] +=
          part[static_cast<std::size_t>(i)];
    }
  }
  return lambda;
}

double cell_average_stretch(const SpaceFillingCurve& curve, const Point& cell) {
  const Universe& u = curve.universe();
  const index_t cell_key = curve.index_of(cell);
  std::uint64_t sum = 0;
  int degree = 0;
  u.for_each_neighbor(cell, [&](const Point& q) {
    const index_t qk = curve.index_of(q);
    sum += cell_key > qk ? cell_key - qk : qk - cell_key;
    ++degree;
  });
  return degree == 0 ? 0.0
                     : static_cast<double>(sum) / static_cast<double>(degree);
}

index_t cell_maximum_stretch(const SpaceFillingCurve& curve, const Point& cell) {
  const Universe& u = curve.universe();
  const index_t cell_key = curve.index_of(cell);
  index_t best = 0;
  u.for_each_neighbor(cell, [&](const Point& q) {
    const index_t qk = curve.index_of(q);
    const index_t dist = cell_key > qk ? cell_key - qk : qk - cell_key;
    if (dist > best) best = dist;
  });
  return best;
}

}  // namespace sfc
