// The nearest-neighbor decomposition p(α,β) (paper §IV-A).
//
// p(α,β) is the staircase path from α to β that corrects coordinates one
// dimension at a time, dimension 1 first; it is the multiset of NN edges
// whose triangle-inequality sum upper-bounds ∆π(α,β) in the proof of
// Theorem 1.  Lemma 4 bounds how many ordered pairs (α,β) route through any
// fixed edge; the exact count (derived in the lemma's proof) is
//
//   mult(ζ, i) = 2 · side^{d-1} · (ζ_i + 1) · (side − 1 − ζ_i)
//
// for the edge between ζ and ζ + e_i, which never exceeds n^{(d+1)/d} / 2.
#pragma once

#include <utility>
#include <vector>

#include "sfc/common/error.h"
#include "sfc/common/int128.h"
#include "sfc/common/types.h"
#include "sfc/grid/point.h"
#include "sfc/grid/universe.h"

namespace sfc {

/// Thrown by nn_decomposition / nn_decomposition_vertices when the two
/// endpoints have different dimensionality; derives from sfc::Error so
/// drivers can recover instead of aborting.
class DecompositionArgumentError : public Error {
 public:
  DecompositionArgumentError(int alpha_dim, int beta_dim);
  int alpha_dim() const { return alpha_dim_; }
  int beta_dim() const { return beta_dim_; }

 private:
  int alpha_dim_;
  int beta_dim_;
};

/// An unordered NN edge, stored with the lexicographically smaller endpoint
/// first (the endpoint with the smaller coordinate in the differing dim).
using NNEdge = std::pair<Point, Point>;

/// The edge set p(α,β), in path order from α to β.  Empty when α == β.
/// Throws DecompositionArgumentError when the endpoint dimensions differ.
std::vector<NNEdge> nn_decomposition(const Point& alpha, const Point& beta);

/// The vertex sequence of the same path, from α to β inclusive.
/// Throws DecompositionArgumentError when the endpoint dimensions differ.
std::vector<Point> nn_decomposition_vertices(const Point& alpha, const Point& beta);

/// Exact number of ordered pairs (α,β) ∈ A' whose decomposition p(α,β)
/// contains the edge (ζ, ζ+e_i); `dim_i` is 0-based.  (Lemma 4, exact form.)
u128 decomposition_multiplicity(const Universe& u, const Point& zeta, int dim_i);

/// Lemma 4's upper bound: n^{(d+1)/d} / 2 = n · side / 2.
u128 decomposition_multiplicity_bound(const Universe& u);

}  // namespace sfc
