#include "sfc/core/bounds.h"

#include <cmath>
#include <cstdlib>

namespace sfc {
namespace bounds {

index_t n_pow_1m1d(const Universe& u) {
  return ipow(u.side(), u.dim() - 1);
}

double davg_lower_bound(const Universe& u) {
  const int d = u.dim();
  const auto n = static_cast<long double>(u.cell_count());
  const auto main_term = static_cast<long double>(n_pow_1m1d(u));
  // n^{-1-1/d} = 1/(n * side).
  const long double small_term = 1.0L / (n * static_cast<long double>(u.side()));
  return static_cast<double>((2.0L / (3.0L * d)) * (main_term - small_term));
}

double dmax_lower_bound(const Universe& u) { return davg_lower_bound(u); }

double davg_zs_asymptote(const Universe& u) {
  return static_cast<double>(n_pow_1m1d(u)) / u.dim();
}

double optimal_gap_factor() { return 1.5; }

u128 lemma2_total_ordered_distance(index_t n) { return lemma2_total(n); }

u128 z_group_size(int d, int k, int j) {
  if (j < 1 || j > k) std::abort();
  // 2^{k-j} choices of κ times side^{d-1} = 2^{k(d-1)} choices of the other
  // coordinates.
  return u128{1} << (k - j + k * (d - 1));
}

u128 z_group_distance(int d, int i, int j) {
  if (i < 1 || i > d || j < 1) std::abort();
  u128 dist = u128{1} << (j * d - i);
  for (int l = 1; l < j; ++l) {
    dist -= u128{1} << (l * d - i);
  }
  return dist;
}

u128 lambda_z_exact(int d, int k, int i) {
  if (i < 1 || i > d) std::abort();
  u128 total = 0;
  for (int j = 1; j <= k; ++j) {
    total += z_group_size(d, k, j) * z_group_distance(d, i, j);
  }
  return total;
}

double lambda_z_limit(int d, int i) {
  return static_cast<double>(u128{1} << (d - i)) /
         static_cast<double>((u128{1} << d) - 1);
}

index_t dmax_simple_exact(const Universe& u) { return n_pow_1m1d(u); }

double allpairs_manhattan_lower_bound(const Universe& u) {
  if (u.side() < 2) std::abort();
  const auto n = static_cast<long double>(u.cell_count());
  return static_cast<double>((n + 1.0L) /
                             (3.0L * u.dim() * (u.side() - 1.0L)));
}

double allpairs_euclidean_lower_bound(const Universe& u) {
  if (u.side() < 2) std::abort();
  const auto n = static_cast<long double>(u.cell_count());
  return static_cast<double>(
      (n + 1.0L) / (3.0L * std::sqrt(static_cast<long double>(u.dim())) *
                    (u.side() - 1.0L)));
}

double allpairs_simple_manhattan_upper_bound(const Universe& u) {
  return static_cast<double>(n_pow_1m1d(u));
}

double allpairs_simple_euclidean_upper_bound(const Universe& u) {
  return std::sqrt(2.0) * static_cast<double>(n_pow_1m1d(u));
}

index_t max_manhattan_distance(const Universe& u) {
  return static_cast<index_t>(u.dim()) * (u.side() - 1);
}

double max_euclidean_distance(const Universe& u) {
  return std::sqrt(static_cast<double>(u.dim())) *
         static_cast<double>(u.side() - 1);
}

double simple_interior_cell_stretch(const Universe& u) {
  if (u.side() < 2) std::abort();
  const auto n = static_cast<long double>(u.cell_count());
  return static_cast<double>((n - 1.0L) /
                             (static_cast<long double>(u.dim()) *
                              (static_cast<long double>(u.side()) - 1.0L)));
}

double davg_simple_exact(const Universe& u) {
  const int d = u.dim();
  const index_t side = u.side();
  if (side == 1) return 0.0;
  long double total = 0.0L;
  for (unsigned mask = 0; mask < (1u << d); ++mask) {
    long double cell_count = 1.0L;
    long double distance_sum = 0.0L;
    int degree = 0;
    for (int i = 0; i < d; ++i) {
      const auto stride = static_cast<long double>(ipow(side, i));
      if (mask & (1u << i)) {
        cell_count *= 2.0L;       // two boundary slices in dimension i+1
        distance_sum += stride;   // one neighbor
        degree += 1;
      } else {
        cell_count *= static_cast<long double>(side - 2);
        distance_sum += 2.0L * stride;
        degree += 2;
      }
    }
    if (cell_count > 0.0L) {
      total += cell_count * (distance_sum / degree);
    }
  }
  return static_cast<double>(total / static_cast<long double>(u.cell_count()));
}

double davg_min_simple_exact(const Universe& u) {
  return u.side() >= 2 ? 1.0 : 0.0;
}

double davg_z_exact(const Universe& u) {
  if (!u.power_of_two_side()) std::abort();
  const int d = u.dim();
  const index_t side = u.side();
  if (side == 1) return 0.0;

  // Binomial coefficients C(d-1, t).
  long double choose[kMaxDim] = {};
  choose[0] = 1.0L;
  for (int row = 1; row <= d - 1; ++row) {
    for (int t = row; t >= 1; --t) choose[t] += choose[t - 1];
  }

  // Other-coordinate counts by boundary-dimension count t.
  long double other_count[kMaxDim] = {};
  for (int t = 0; t <= d - 1; ++t) {
    other_count[t] = choose[t] * powl(2.0L, t) *
                     powl(static_cast<long double>(side) - 2.0L, d - 1 - t);
  }

  long double total = 0.0L;
  for (int i = 1; i <= d; ++i) {
    for (index_t kappa = 0; kappa + 1 < side; ++kappa) {
      // Trailing ones of κ determine the Lemma-5 group j = ones + 1.
      int trailing_ones = 0;
      index_t value = kappa;
      while (value & 1) {
        ++trailing_ones;
        value >>= 1;
      }
      const long double dist =
          to_long_double(z_group_distance(d, i, trailing_ones + 1));
      const int alpha_boundary = kappa == 0 ? 1 : 0;
      const int beta_boundary = kappa == side - 2 ? 1 : 0;
      for (int t = 0; t <= d - 1; ++t) {
        if (other_count[t] == 0.0L) continue;
        const long double weight =
            1.0L / (2 * d - t - alpha_boundary) +
            1.0L / (2 * d - t - beta_boundary);
        total += other_count[t] * dist * weight;
      }
    }
  }
  return static_cast<double>(total / static_cast<long double>(u.cell_count()));
}

}  // namespace bounds
}  // namespace sfc
