// Closed-form bounds and asymptotes from the paper, evaluated exactly.
//
// Wherever a quantity is an exact integer for power-of-two sides (e.g.
// n^{1-1/d} = side^{d-1}), the integer form is used; floating point enters
// only for genuinely fractional values.  Each function cites the paper
// result it implements.
#pragma once

#include "sfc/common/int128.h"
#include "sfc/common/math.h"
#include "sfc/common/types.h"
#include "sfc/grid/universe.h"

namespace sfc {
namespace bounds {

/// n^{1-1/d}, exact: side^{d-1}.
index_t n_pow_1m1d(const Universe& u);

/// Theorem 1: every SFC π satisfies
///   Davg(π) >= (2/3d) (n^{1-1/d} - n^{-1-1/d}).
double davg_lower_bound(const Universe& u);

/// Proposition 1: the same expression lower-bounds Dmax(π).
double dmax_lower_bound(const Universe& u);

/// Theorems 2 and 3: Davg(Z) ~ Davg(S) ~ (1/d) n^{1-1/d}.
double davg_zs_asymptote(const Universe& u);

/// Ratio of the Theorem 2/3 asymptote to the Theorem 1 bound as n -> inf:
/// exactly 3/2 — "the Z curve is within a factor of 1.5 from optimal".
double optimal_gap_factor();

/// Lemma 2: S_A'(π) = (n-1)n(n+1)/3 for every bijection π (ordered pairs).
u128 lemma2_total_ordered_distance(index_t n);

/// |G_{i,j}| (proof of Lemma 5): number of NN pairs along paper-dimension i
/// whose lower coordinate κ ends in (j-1) one bits then a zero bit:
/// 2^{k-j} · 2^{k(d-1)}.  Independent of i.
u128 z_group_size(int d, int k, int j);

/// ∆Z(α,β) for every pair in G_{i,j} (proof of Lemma 5):
///   2^{jd-i} − Σ_{ℓ=1..j-1} 2^{ℓd-i}.
u128 z_group_distance(int d, int i, int j);

/// Exact finite-n Λ_i(Z) = Σ_j |G_{i,j}| · ∆Z|G_{i,j}| (pre-limit form of
/// Lemma 5; an exact identity for every k, verified in tests).
u128 lambda_z_exact(int d, int k, int i);

/// Lemma 5 limit: Λ_i(Z)/n^{2-1/d} -> 2^{d-i}/(2^d - 1).
double lambda_z_limit(int d, int i);

/// Proposition 2: Dmax(S) = n^{1-1/d} exactly.
index_t dmax_simple_exact(const Universe& u);

/// Proposition 3 (Manhattan): str_avg,M(π) >= (1/3d) (n+1)/(n^{1/d} - 1).
double allpairs_manhattan_lower_bound(const Universe& u);

/// Proposition 3 (Euclidean): str_avg,E(π) >= (1/(3 sqrt(d))) (n+1)/(n^{1/d} - 1).
double allpairs_euclidean_lower_bound(const Universe& u);

/// Proposition 4: str_avg,M(S) <= n^{1-1/d}.
double allpairs_simple_manhattan_upper_bound(const Universe& u);

/// Proposition 4: str_avg,E(S) <= sqrt(2) n^{1-1/d}.
double allpairs_simple_euclidean_upper_bound(const Universe& u);

/// Lemma 6: max Manhattan distance in U is d(n^{1/d} - 1).
index_t max_manhattan_distance(const Universe& u);

/// Lemma 6: max Euclidean distance in U is sqrt(d) (n^{1/d} - 1).
double max_euclidean_distance(const Universe& u);

/// Interior-cell δavg for the simple curve (proof of Theorem 3):
///   (1/d) (n-1)/(side-1).
double simple_interior_cell_stretch(const Universe& u);

/// Exact finite-n Davg(S) for the simple curve — sharper than the paper's
/// Theorem-3 asymptote.  Derivation: a cell's neighbors along dimension i
/// sit exactly side^{i-1} away in key space, so grouping cells by their
/// boundary pattern b ⊆ {1..d} (b = dimensions where the cell touches a
/// face, contributing one neighbor instead of two):
///   Davg(S) = (1/n) Σ_b [ Π_i (b∋i ? 2 : side-2) ] ·
///                    [ Σ_i (b∋i ? 1 : 2)·side^{i-1} ] / (2d - |b|).
/// Verified bit-close against the metric engine in tests.
double davg_simple_exact(const Universe& u);

/// Exact average-minimum NN stretch of the simple curve: every cell has a
/// dimension-1 neighbor at key distance exactly 1, so the value is 1 for
/// any side >= 2.
double davg_min_simple_exact(const Universe& u);

/// Exact finite-n Davg(Z) — sharper than Theorem 2's asymptote.
///
/// Derivation: group each unordered NN pair by (i, κ, t) where i is the
/// differing dimension, κ the smaller coordinate in that dimension (the pair
/// distance ∆Z depends only on the trailing-ones count of κ — the proof of
/// Lemma 5), and t the number of *other* dimensions in which the shared
/// coordinates touch a face (which determines both endpoint degrees):
///
///   Davg(Z) = (1/n) Σ_i Σ_κ Σ_t  C(d-1,t)·2^t·(side-2)^{d-1-t} · ∆Z(i,κ)
///             · [ 1/(2d - t - [κ=0]) + 1/(2d - t - [κ=side-2]) ].
///
/// Verified against the metric engine to full double precision in tests;
/// requires side = 2^k.
double davg_z_exact(const Universe& u);

}  // namespace bounds
}  // namespace sfc
