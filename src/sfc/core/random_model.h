// Probabilistic input models (paper §VI, open direction 4: "analysis of
// proximity preservation using a more general probabilistic model of
// input"; cf. Tirthapura, Seal & Aluru [25]).
//
// Instead of averaging the NN stretch uniformly over all cells, cells are
// drawn from a distribution modelling realistic workloads: uniform, a
// Gaussian blob (dense hot spot), or a diagonal band (correlated
// attributes).  The module estimates the *query-weighted* NN stretch — the
// expected dilation seen by a query landing on a distribution-sampled cell —
// and the distribution-weighted all-pairs stretch.
#pragma once

#include <cstdint>
#include <string>

#include "sfc/common/types.h"
#include "sfc/curves/space_filling_curve.h"
#include "sfc/rng/xoshiro256.h"

namespace sfc {

enum class InputModel {
  kUniform,       // the paper's implicit model
  kGaussianBlob,  // hot spot around the grid center, sigma = side/8
  kDiagonalBand,  // cells near the main diagonal (correlated dimensions)
};

std::string input_model_name(InputModel model);

/// Draws a cell of `u` from the model (rejection sampling where needed).
Point sample_model_cell(InputModel model, const Universe& u, Xoshiro256& rng);

struct ModelStretch {
  InputModel model = InputModel::kUniform;
  std::uint64_t samples = 0;
  /// E[ δavg_π(α) ] with α ~ model (query-weighted average NN stretch).
  double weighted_davg = 0.0;
  double stderr_davg = 0.0;
  /// E[ ∆π(α,β)/∆(α,β) ] with α,β ~ model i.i.d., α ≠ β.
  double weighted_allpairs_manhattan = 0.0;
  double stderr_allpairs = 0.0;
};

/// Monte-Carlo estimate of the model-weighted stretch metrics.
ModelStretch measure_model_stretch(const SpaceFillingCurve& curve,
                                   InputModel model, std::uint64_t samples,
                                   std::uint64_t seed);

}  // namespace sfc
