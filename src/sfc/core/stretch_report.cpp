#include "sfc/core/stretch_report.h"

#include <sstream>

namespace sfc {

StretchReport analyze_curve(const SpaceFillingCurve& curve,
                            const AnalyzeOptions& options) {
  const Universe& u = curve.universe();

  StretchReport report;
  report.curve_name = curve.name();
  report.dim = u.dim();
  report.n = u.cell_count();
  report.side = u.side();

  report.nn = compute_nn_stretch(curve, options.stretch);

  report.davg_lower_bound = bounds::davg_lower_bound(u);
  report.dmax_lower_bound = bounds::dmax_lower_bound(u);
  if (report.davg_lower_bound > 0) {
    report.davg_ratio_to_bound = report.nn.average_average / report.davg_lower_bound;
    report.dmax_ratio_to_bound = report.nn.average_maximum / report.dmax_lower_bound;
  }
  const double scale = static_cast<double>(bounds::n_pow_1m1d(u));
  report.normalized_davg = u.dim() * report.nn.average_average / scale;

  if (options.all_pairs_samples > 0 && report.n >= 2) {
    AllPairsOptions ap_options;
    ap_options.pool = options.stretch.pool;
    if (report.n <= options.all_pairs_exact_limit) {
      report.all_pairs = compute_all_pairs_exact(curve, ap_options);
    } else {
      report.all_pairs =
          estimate_all_pairs(curve, options.all_pairs_samples, options.seed,
                             ap_options);
    }
    if (u.side() >= 2) {
      report.allpairs_manhattan_bound = bounds::allpairs_manhattan_lower_bound(u);
      report.allpairs_euclidean_bound = bounds::allpairs_euclidean_lower_bound(u);
    }
  }
  return report;
}

std::string to_string(const StretchReport& report) {
  std::ostringstream out;
  out << "curve " << report.curve_name << " on " << report.dim
      << "-d grid, side " << report.side << " (n = " << report.n << ")\n";
  out << "  Davg (avg-avg NN stretch)   = " << report.nn.average_average << "\n";
  out << "  Dmax (avg-max NN stretch)   = " << report.nn.average_maximum << "\n";
  out << "  Dmin (avg-min NN stretch)   = " << report.nn.average_minimum << "\n";
  out << "  Theorem-1 lower bound       = " << report.davg_lower_bound << "\n";
  out << "  Davg / bound                = " << report.davg_ratio_to_bound
      << "  (1.5 = asymptotically optimal-class)\n";
  out << "  d*Davg/n^{1-1/d}            = " << report.normalized_davg << "\n";
  if (report.all_pairs.has_value()) {
    const AllPairsResult& ap = *report.all_pairs;
    out << "  all-pairs stretch Manhattan = " << ap.avg_stretch_manhattan
        << (ap.exact ? " (exact)" : " (sampled)") << "\n";
    out << "  all-pairs stretch Euclidean = " << ap.avg_stretch_euclidean
        << (ap.exact ? " (exact)" : " (sampled)") << "\n";
    out << "  Prop-3 Manhattan bound      = " << report.allpairs_manhattan_bound << "\n";
    out << "  Prop-3 Euclidean bound      = " << report.allpairs_euclidean_bound << "\n";
  }
  return out.str();
}

}  // namespace sfc
