// Sweep drivers: measure stretch metrics across (d, k) grids and normalize
// against the paper's closed forms.  These produce the rows printed by the
// Theorem 2/3 and Lemma 5 reproduction benches.
#pragma once

#include <vector>

#include "sfc/core/bounds.h"
#include "sfc/core/nn_stretch.h"
#include "sfc/curves/curve_factory.h"

namespace sfc {

struct SweepRow {
  int dim = 0;
  int level_bits = 0;   // k
  index_t n = 0;
  double davg = 0.0;
  double dmax = 0.0;
  /// Theorem 1 lower bound for this (n, d).
  double lower_bound = 0.0;
  /// davg / lower_bound — Theorem 2 predicts -> 1.5 for Z and S.
  double ratio_to_bound = 0.0;
  /// d·davg / n^{1-1/d} — Theorems 2/3 predict -> 1.
  double normalized_davg = 0.0;
  /// d·dmax / n^{1-1/d}.
  double normalized_dmax = 0.0;
};

struct SweepOptions {
  NNStretchOptions stretch;
  /// Skip configurations with more cells than this.
  index_t max_cells = index_t{1} << 22;
  /// Seed for kRandom curves.
  std::uint64_t seed = 1;
};

/// Measures the NN-stretch of `family` for k in [k_min, k_max] at fixed d,
/// skipping configurations above options.max_cells.
std::vector<SweepRow> davg_sweep(CurveFamily family, int dim, int k_min,
                                 int k_max, const SweepOptions& options = {});

/// Largest k with 2^{k·d} <= max_cells (at least k_min).
int max_level_bits(int dim, index_t max_cells, int k_min = 1);

}  // namespace sfc
