#include "sfc/core/all_pairs.h"

#include <cmath>
#include <span>
#include <string>
#include <vector>

#include "sfc/metrics/slab_walker.h"
#include "sfc/parallel/parallel_for.h"
#include "sfc/rng/sampling.h"

namespace sfc {

AllPairsLimitError::AllPairsLimitError(index_t n, index_t limit)
    : Error("all-pairs exact: n = " + std::to_string(n) +
            " exceeds max_exact_cells = " + std::to_string(limit)),
      n_(n),
      limit_(limit) {}

AllPairsResult compute_all_pairs_exact(const SpaceFillingCurve& curve,
                                       const AllPairsOptions& options) {
  const Universe& u = curve.universe();
  const index_t n = u.cell_count();
  if (n > options.max_exact_cells) {
    throw AllPairsLimitError(n, options.max_exact_cells);
  }
  ThreadPool& pool = options.pool ? *options.pool : ThreadPool::shared();

  // Materialize cells and keys once; the double loop then touches only flat
  // arrays.  Encoding goes through the shared slab kernel (sfc/metrics).
  std::vector<Point> cells(n);
  std::vector<index_t> keys(n);
  for (index_t id = 0; id < n; ++id) cells[id] = u.from_row_major(id);
  build_key_table(curve, pool, keys);

  struct Partial {
    long double manhattan = 0.0L;
    long double euclidean = 0.0L;
    u128 total = 0;
  };
  const std::uint64_t grain = 64;  // outer rows per chunk
  const std::uint64_t chunks = chunk_count(n, grain);
  std::vector<Partial> partials(chunks);

  parallel_for_chunks(pool, n, grain, [&](const ChunkRange& range) {
    Partial& part = partials[range.chunk_index];
    for (index_t a = range.begin; a < range.end; ++a) {
      const index_t ka = keys[a];
      const Point& pa = cells[a];
      for (index_t b = a + 1; b < n; ++b) {
        const index_t kb = keys[b];
        const index_t curve_dist = ka > kb ? ka - kb : kb - ka;
        const std::uint64_t manhattan = manhattan_distance(pa, cells[b]);
        const std::uint64_t sq_euclid = squared_euclidean_distance(pa, cells[b]);
        part.total += curve_dist;
        part.manhattan += static_cast<long double>(curve_dist) /
                          static_cast<long double>(manhattan);
        part.euclidean += static_cast<long double>(curve_dist) /
                          std::sqrt(static_cast<long double>(sq_euclid));
      }
    }
  });

  long double manhattan_sum = 0.0L, euclidean_sum = 0.0L;
  u128 total_unordered = 0;
  for (const Partial& part : partials) {
    manhattan_sum += part.manhattan;
    euclidean_sum += part.euclidean;
    total_unordered += part.total;
  }

  AllPairsResult result;
  result.n = n;
  result.exact = true;
  result.pair_count = n * (n - 1) / 2;
  const long double norm = static_cast<long double>(result.pair_count);
  result.avg_stretch_manhattan = static_cast<double>(manhattan_sum / norm);
  result.avg_stretch_euclidean = static_cast<double>(euclidean_sum / norm);
  // Ordered pairs see every unordered pair twice.
  result.total_curve_distance_ordered = total_unordered * 2;
  return result;
}

AllPairsResult estimate_all_pairs(const SpaceFillingCurve& curve,
                                  std::uint64_t samples, std::uint64_t seed,
                                  const AllPairsOptions& /*options*/) {
  const Universe& u = curve.universe();
  Xoshiro256 rng(seed);
  RunningStats manhattan_stats, euclidean_stats;
  for (std::uint64_t s = 0; s < samples; ++s) {
    const auto [a, b] = random_distinct_pair(u, rng);
    const auto curve_dist = static_cast<double>(curve.curve_distance(a, b));
    manhattan_stats.add(curve_dist / static_cast<double>(manhattan_distance(a, b)));
    euclidean_stats.add(curve_dist / euclidean_distance(a, b));
  }

  AllPairsResult result;
  result.n = u.cell_count();
  result.exact = false;
  result.pair_count = samples;
  result.avg_stretch_manhattan = manhattan_stats.mean();
  result.avg_stretch_euclidean = euclidean_stats.mean();
  result.stderr_manhattan = manhattan_stats.standard_error();
  result.stderr_euclidean = euclidean_stats.standard_error();
  return result;
}

}  // namespace sfc
