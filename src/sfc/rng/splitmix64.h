// SplitMix64 (Steele, Lea, Flood 2014): the standard seeding generator.
//
// Used to expand a single user seed into the 256-bit state of Xoshiro256++
// and to derive independent per-stream seeds for parallel sampling.
#pragma once

#include <cstdint>

namespace sfc {

class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

}  // namespace sfc
