// Xoshiro256++ (Blackman & Vigna 2019): fast, high-quality 64-bit generator.
//
// All randomized experiments (random bijections, sampled all-pairs stretch,
// random query boxes) use this generator with explicit seeds so every table
// in the reproduction is replayable.
#pragma once

#include <cstdint>

namespace sfc {

class Xoshiro256 {
 public:
  /// Seeds the 256-bit state from a single value via SplitMix64.
  explicit Xoshiro256(std::uint64_t seed);

  /// Next 64 uniform random bits.
  std::uint64_t next();

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method
  /// with rejection).  bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Jump to a statistically independent stream (2^128 calls ahead).
  void long_jump();

 private:
  std::uint64_t state_[4];
};

}  // namespace sfc
