// Sampling utilities built on Xoshiro256++.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sfc/common/types.h"
#include "sfc/grid/box.h"
#include "sfc/grid/universe.h"
#include "sfc/rng/xoshiro256.h"

namespace sfc {

/// In-place Fisher–Yates shuffle.
void shuffle(std::vector<index_t>& values, Xoshiro256& rng);

/// Identity permutation of size n.
std::vector<index_t> identity_permutation(index_t n);

/// Uniform random permutation of {0..n-1}.
std::vector<index_t> random_permutation(index_t n, Xoshiro256& rng);

/// Uniform random cell of the universe.
Point random_cell(const Universe& u, Xoshiro256& rng);

/// Uniform random *distinct* ordered cell pair.
std::pair<Point, Point> random_distinct_pair(const Universe& u, Xoshiro256& rng);

/// Uniform random axis-aligned box whose extent in every dimension is
/// exactly `extent` cells (must satisfy 1 <= extent <= side).
Box random_box(const Universe& u, coord_t extent, Xoshiro256& rng);

/// Streaming mean/variance accumulator (Welford) for sampled estimators.
class RunningStats {
 public:
  void add(double value);
  std::uint64_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Unbiased sample variance; 0 when fewer than two samples.
  double variance() const;
  /// Standard error of the mean.
  double standard_error() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace sfc
