#include "sfc/rng/sampling.h"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <numeric>

namespace sfc {

void shuffle(std::vector<index_t>& values, Xoshiro256& rng) {
  for (std::size_t i = values.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.next_below(i));
    std::swap(values[i - 1], values[j]);
  }
}

std::vector<index_t> identity_permutation(index_t n) {
  std::vector<index_t> perm(n);
  std::iota(perm.begin(), perm.end(), index_t{0});
  return perm;
}

std::vector<index_t> random_permutation(index_t n, Xoshiro256& rng) {
  auto perm = identity_permutation(n);
  shuffle(perm, rng);
  return perm;
}

Point random_cell(const Universe& u, Xoshiro256& rng) {
  Point p = Point::zero(u.dim());
  for (int i = 0; i < u.dim(); ++i) {
    p[i] = static_cast<coord_t>(rng.next_below(u.side()));
  }
  return p;
}

std::pair<Point, Point> random_distinct_pair(const Universe& u, Xoshiro256& rng) {
  if (u.cell_count() < 2) std::abort();
  const Point a = random_cell(u, rng);
  while (true) {
    const Point b = random_cell(u, rng);
    if (!(a == b)) return {a, b};
  }
}

Box random_box(const Universe& u, coord_t extent, Xoshiro256& rng) {
  if (extent < 1 || extent > u.side()) std::abort();
  Point lo = Point::zero(u.dim());
  Point hi = Point::zero(u.dim());
  for (int i = 0; i < u.dim(); ++i) {
    const auto origin_range = static_cast<std::uint64_t>(u.side() - extent) + 1;
    lo[i] = static_cast<coord_t>(rng.next_below(origin_range));
    hi[i] = lo[i] + extent - 1;
  }
  return Box(lo, hi);
}

void RunningStats::add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::standard_error() const {
  if (count_ == 0) return 0.0;
  return std::sqrt(variance() / static_cast<double>(count_));
}

}  // namespace sfc
