#include "sfc/rng/xoshiro256.h"

#include "sfc/common/int128.h"
#include "sfc/rng/splitmix64.h"

namespace sfc {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 mixer(seed);
  for (auto& word : state_) word = mixer.next();
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::next_below(std::uint64_t bound) {
  // Lemire's multiply-shift with rejection for exact uniformity.
  u128 product = static_cast<u128>(next()) * bound;
  auto low = static_cast<std::uint64_t>(product);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      product = static_cast<u128>(next()) * bound;
      low = static_cast<std::uint64_t>(product);
    }
  }
  return static_cast<std::uint64_t>(product >> 64);
}

double Xoshiro256::next_double() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

void Xoshiro256::long_jump() {
  static constexpr std::uint64_t kJump[] = {
      0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL,
      0x77710069854ee241ULL, 0x39109bb02acbe635ULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ULL << b)) {
        s0 ^= state_[0];
        s1 ^= state_[1];
        s2 ^= state_[2];
        s3 ^= state_[3];
      }
      next();
    }
  }
  state_[0] = s0;
  state_[1] = s1;
  state_[2] = s2;
  state_[3] = s3;
}

}  // namespace sfc
