#include "sfc/index/point_index.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "sfc/obs/metrics.h"
#include "sfc/obs/span_trace.h"
#include "sfc/sort/radix_sort.h"

namespace sfc {

namespace {

/// Smallest input position holding an invalid point, or points.size() when
/// the dataset is clean.  A deterministic reduction (min over chunk minima)
/// so the error message names the same point for every thread count.
std::uint64_t first_invalid_point(const Universe& u,
                                  std::span<const Point> points,
                                  ThreadPool& pool, std::uint64_t grain) {
  const std::uint64_t n = points.size();
  return parallel_reduce(
      pool, n, grain, n,
      [&](const ChunkRange& range) {
        for (std::uint64_t i = range.begin; i < range.end; ++i) {
          if (points[i].dim() != u.dim() || !u.contains(points[i])) return i;
        }
        return n;
      },
      [](std::uint64_t a, std::uint64_t b) { return std::min(a, b); });
}

}  // namespace

PointIndex PointIndex::build(const SpaceFillingCurve& curve,
                             std::span<const Point> points,
                             const IndexBuildOptions& options) {
  const double build_start_us = trace_now_us();
  if (points.size() > std::numeric_limits<std::uint32_t>::max()) {
    throw IndexArgumentError(
        "point index build: " + std::to_string(points.size()) +
        " points exceed the 32-bit payload-id limit");
  }
  const Universe& u = curve.universe();
  ThreadPool& pool =
      options.pool != nullptr ? *options.pool : ThreadPool::shared();
  const std::uint64_t grain =
      options.grain == 0 ? kDefaultGrain : options.grain;
  const std::uint64_t bad = first_invalid_point(u, points, pool, grain);
  if (bad != points.size()) {
    throw IndexArgumentError(
        "point index build: point at position " + std::to_string(bad) + " " +
        points[bad].to_string() + " lies outside the d=" +
        std::to_string(u.dim()) + " side-" + std::to_string(u.side()) +
        " universe");
  }

  PointIndex index;
  index.curve_ = &curve;
  index.block_rows_ = options.block_rows == 0 ? 256 : options.block_rows;

  SortOptions sort_options;
  sort_options.pool = &pool;
  sort_options.grain = grain;
  SortedKeyColumns columns = sort_curve_key_columns(curve, points, sort_options);
  index.keys_ = std::move(columns.keys);
  index.ids_ = std::move(columns.ids);

  // Gather the points into key order so interval scans stream contiguously.
  const std::uint64_t n = index.keys_.size();
  index.points_.resize(n);
  parallel_for_chunks(pool, n, grain, [&](const ChunkRange& range) {
    for (std::uint64_t i = range.begin; i < range.end; ++i) {
      index.points_[i] = points[index.ids_[i]];
    }
  });

  // Sparse directory: the last (max) key of each row block.  With sorted
  // keys this is one strided read of the key column.
  const std::uint64_t blocks =
      (n + index.block_rows_ - 1) / index.block_rows_;
  index.block_last_key_.resize(blocks);
  for (std::uint64_t b = 0; b < blocks; ++b) {
    const std::uint64_t end =
        std::min<std::uint64_t>((b + 1) * index.block_rows_, n);
    index.block_last_key_[b] = index.keys_[end - 1];
  }
  if (obs_enabled()) {
    const double build_us = trace_now_us() - build_start_us;
    MetricsRegistry::global().counter("index.builds").add(1);
    MetricsRegistry::global().counter("index.build_rows").add(n);
    MetricsRegistry::global().histogram("index.build_us").record_us(build_us);
    TraceSpan span;
    span.name = "index_build";
    span.category = "index";
    span.start_us = build_start_us;
    span.dur_us = build_us;
    span.tid = trace_thread_id();
    span.add_arg("rows", n);
    span.add_arg("blocks", blocks);
    TraceRing::global().record(span);
  }
  return index;
}

}  // namespace sfc
