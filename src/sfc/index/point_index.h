// An immutable, SFC-keyed point index over arbitrary point datasets.
//
// The paper's premise is that a curve key order makes one-dimensional
// storage answer d-dimensional proximity queries; this subsystem is the
// serving layer that realizes it for *data* rather than full grids.  Build
// fuses curve encoding into the sfc/sort radix pipeline (one pass over the
// input produces sorted (key, payload-id) records), and the index stores the
// result as columns: the sorted key column, the payload-id column, and the
// points gathered into key order so scans stream contiguous memory.  A
// sparse block directory (last key per fixed-size row block) resolves a key
// interval to its row range by searching the small directory first and only
// then one block of the key column — the classic "B-tree over curve keys"
// access pattern of the clustering literature (Moon et al.; Haverkort & van
// Walderveen's bounding-box-quality workloads).
//
// PointIndex is the *owning* storage backend: build once, then hand out the
// storage-agnostic IndexColumnsView (columns_view.h) that every query engine
// runs on.  The same columns round-trip through the on-disk format
// (sfc/store) and come back as a mmap-backed view serving bit-identical
// answers.
//
// Query engines on top: batched box range scans driven by the exact covers
// of sfc/ranges (range_scan.h) and certified best-first kNN over the curve's
// subtree hierarchy (knn.h), both multi-query parallel via executor.h.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "sfc/common/error.h"
#include "sfc/common/types.h"
#include "sfc/curves/space_filling_curve.h"
#include "sfc/grid/point.h"
#include "sfc/index/columns_view.h"
#include "sfc/parallel/parallel_for.h"
#include "sfc/parallel/thread_pool.h"

namespace sfc {

/// Thrown on invalid index construction or query arguments: points outside
/// the curve's universe, dimension mismatches, or datasets exceeding the
/// 32-bit payload-id limit.  Derives from sfc::Error so drivers recover
/// instead of aborting.
class IndexArgumentError : public Error {
 public:
  explicit IndexArgumentError(const std::string& what) : Error(what) {}
};

struct IndexBuildOptions {
  /// Worker pool for the build; nullptr means ThreadPool::shared().  The
  /// pool size only affects wall clock, never the built index.
  ThreadPool* pool = nullptr;
  /// Elements per deterministic sort/gather chunk (0 = kDefaultGrain).
  std::uint64_t grain = kDefaultGrain;
  /// Rows per block-directory entry (0 = default 256).  Smaller blocks mean
  /// a larger directory but fewer key-column probes per interval.
  std::uint32_t block_rows = 256;
};

/// The index.  Immutable after build; rows are ordered by (curve key,
/// input position) — the stable sort keeps duplicate keys in input order.
class PointIndex {
 public:
  /// Bulk build over `points` (duplicates allowed, empty allowed).  Every
  /// point must lie inside the curve's universe; throws IndexArgumentError
  /// otherwise, and when points.size() >= 2^32 (payload ids are 32-bit).
  /// The curve must outlive the index.
  static PointIndex build(const SpaceFillingCurve& curve,
                          std::span<const Point> points,
                          const IndexBuildOptions& options = {});

  /// The storage-agnostic view of the owned columns — what engines query.
  /// Valid while this index is alive and unmoved.
  IndexColumnsView view() const {
    return IndexColumnsView(*curve_, block_rows_, keys_, ids_, points_,
                            block_last_key_);
  }
  /// Implicit: a PointIndex is usable wherever a view is expected.
  operator IndexColumnsView() const { return view(); }  // NOLINT

  const SpaceFillingCurve& curve() const { return *curve_; }
  std::uint64_t row_count() const { return keys_.size(); }
  bool empty() const { return keys_.empty(); }

  /// Sorted key column; keys()[r] is row r's curve key.
  std::span<const index_t> keys() const { return keys_; }
  /// ids()[r] is the input position (payload id) of row r.
  std::span<const std::uint32_t> ids() const { return ids_; }
  /// points()[r] is the point of row r (the input point at ids()[r]),
  /// gathered into key order at build time.
  std::span<const Point> points() const { return points_; }

  index_t key_of_row(std::uint64_t row) const { return keys_[row]; }
  std::uint32_t id_of_row(std::uint64_t row) const { return ids_[row]; }
  const Point& point_of_row(std::uint64_t row) const { return points_[row]; }

  std::uint32_t block_rows() const { return block_rows_; }
  std::uint64_t block_count() const { return block_last_key_.size(); }

  /// First row whose key is >= `key` (row_count() when none); delegates to
  /// the view's directory search.
  std::uint64_t lower_bound_row(index_t key) const {
    return view().lower_bound_row(key);
  }

  /// Half-open row range [first, second) of the rows whose keys lie in the
  /// inclusive key interval [lo, hi].
  std::pair<std::uint64_t, std::uint64_t> rows_in_interval(index_t lo,
                                                           index_t hi) const {
    return view().rows_in_interval(lo, hi);
  }

 private:
  PointIndex() = default;

  const SpaceFillingCurve* curve_ = nullptr;
  std::uint32_t block_rows_ = 256;
  std::vector<index_t> keys_;
  std::vector<std::uint32_t> ids_;
  std::vector<Point> points_;
  /// Directory: block_last_key_[b] = max key of rows [b*B, (b+1)*B).
  std::vector<index_t> block_last_key_;
};

}  // namespace sfc
