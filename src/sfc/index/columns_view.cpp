#include "sfc/index/columns_view.h"

#include <algorithm>
#include <limits>

namespace sfc {

std::uint64_t IndexColumnsView::lower_bound_row(index_t key) const {
  const auto dir_it =
      std::lower_bound(block_last_key_.begin(), block_last_key_.end(), key);
  if (dir_it == block_last_key_.end()) return row_count();
  const std::uint64_t block =
      static_cast<std::uint64_t>(dir_it - block_last_key_.begin());
  const std::uint64_t begin = block * block_rows_;
  const std::uint64_t end =
      std::min<std::uint64_t>(begin + block_rows_, row_count());
  return static_cast<std::uint64_t>(
      std::lower_bound(keys_.begin() + static_cast<std::ptrdiff_t>(begin),
                       keys_.begin() + static_cast<std::ptrdiff_t>(end), key) -
      keys_.begin());
}

std::pair<std::uint64_t, std::uint64_t> IndexColumnsView::rows_in_interval(
    index_t lo, index_t hi) const {
  const std::uint64_t first = lower_bound_row(lo);
  // upper_bound(hi) == lower_bound(hi + 1); keys are < 2^63 (cell counts),
  // so hi + 1 cannot wrap for in-universe intervals, but guard anyway.
  const std::uint64_t last = hi == std::numeric_limits<index_t>::max()
                                 ? row_count()
                                 : lower_bound_row(hi + 1);
  return {first, std::max(first, last)};
}

}  // namespace sfc
