#include "sfc/index/knn.h"

#include <algorithm>
#include <string>
#include <tuple>

#include "sfc/common/math.h"
#include "sfc/obs/metrics.h"

namespace sfc {

namespace {

struct KnnMetrics {
  MetricsRegistry::Counter queries;
  MetricsRegistry::Counter neighbors_returned;
  MetricsRegistry::Counter nodes_expanded;
  MetricsRegistry::Counter frontier_pushes;
  MetricsRegistry::Counter rows_scanned;
  MetricsRegistry::Counter certified;
};

KnnMetrics& knn_metrics() {
  static KnnMetrics metrics{
      MetricsRegistry::global().counter("index.knn.queries"),
      MetricsRegistry::global().counter("index.knn.neighbors_returned"),
      MetricsRegistry::global().counter("index.knn.nodes_expanded"),
      MetricsRegistry::global().counter("index.knn.frontier_pushes"),
      MetricsRegistry::global().counter("index.knn.rows_scanned"),
      MetricsRegistry::global().counter("index.knn.certified"),
  };
  return metrics;
}

/// The total candidate order: (squared distance, curve key, row) ascending —
/// exactly what a brute-force stable ranking produces, so index answers are
/// bit-identical to the reference scan, ties included.
struct Closer {
  template <typename C>
  bool operator()(const C& a, const C& b) const {
    return std::tie(a.sq_dist, a.key, a.row) < std::tie(b.sq_dist, b.key, b.row);
  }
};

/// Min-heap order for the frontier: nearest subcube first, ties by key_lo so
/// the pop sequence (and therefore every statistic) is deterministic.
struct FrontierAfter {
  template <typename V>
  bool operator()(const V& a, const V& b) const {
    return std::tie(a.sq_dist, a.node.key_lo) > std::tie(b.sq_dist, b.node.key_lo);
  }
};

}  // namespace

void KnnEngine::consider_rows(const Point& query, std::uint32_t k,
                              std::uint64_t first, std::uint64_t last,
                              KnnStats& stats) {
  const std::span<const Point> points = view_.points();
  const std::span<const index_t> keys = view_.keys();
  const Closer closer;
  for (std::uint64_t row = first; row < last; ++row) {
    ++stats.rows_scanned;
    const Candidate candidate{squared_euclidean_distance(query, points[row]),
                              keys[row], row};
    if (best_.size() < k) {
      best_.push_back(candidate);
      std::push_heap(best_.begin(), best_.end(), closer);
    } else if (closer(candidate, best_.front())) {
      std::pop_heap(best_.begin(), best_.end(), closer);
      best_.back() = candidate;
      std::push_heap(best_.begin(), best_.end(), closer);
    }
  }
}

std::vector<KnnNeighbor> KnnEngine::query(const Point& query, std::uint32_t k,
                                          KnnStats* stats) {
  const SpaceFillingCurve& curve = view_.curve();
  const Universe& u = curve.universe();
  if (query.dim() != u.dim() || !u.contains(query)) {
    throw IndexArgumentError("knn query: point " + query.to_string() +
                             " lies outside the d=" + std::to_string(u.dim()) +
                             " side-" + std::to_string(u.side()) + " universe");
  }
  KnnStats local;
  best_.clear();
  frontier_.clear();

  if (k == 0 || view_.empty()) {
    local.certified = true;
    if (obs_enabled()) {
      knn_metrics().queries.add(1);
      knn_metrics().certified.add(1);
    }
    if (stats != nullptr) *stats = local;
    return {};
  }

  if (!curve.has_subtree_traversal()) {
    // No hierarchy to descend: exhaustive scan, trivially certified.
    consider_rows(query, k, 0, view_.row_count(), local);
    local.certified = true;
  } else {
    local.used_subtree = true;
    const FrontierAfter after;
    const index_t arity = ipow(curve.subtree_radix(), u.dim());
    const SubtreeNode root = curve.subtree_root();
    frontier_.push_back(Visit{root.min_squared_distance(query), root, 0,
                              view_.row_count()});
    ++local.frontier_pushes;
    while (!frontier_.empty()) {
      std::pop_heap(frontier_.begin(), frontier_.end(), after);
      const Visit visit = frontier_.back();
      frontier_.pop_back();
      if (best_.size() == k && visit.sq_dist > best_.front().sq_dist) {
        // Certificate: the k-th best distance is <= the min distance of this
        // and (by heap order) every remaining frontier node — no unvisited
        // row can enter the result.  Ties (==) keep descending so the
        // (distance, key, row) tie-break stays exact.
        local.certified = true;
        local.frontier_bound_valid = true;
        local.frontier_sq_dist = visit.sq_dist;
        break;
      }
      const SubtreeNode& node = visit.node;
      if (node.side == 1 || visit.row_last - visit.row_first <= kLeafRows) {
        consider_rows(query, k, visit.row_first, visit.row_last, local);
        continue;
      }
      ++local.nodes_expanded;
      children_.resize(arity);
      curve.subtree_children(node, children_);
      for (const SubtreeNode& child : children_) {
        const auto [child_first, child_last] =
            view_.rows_in_interval(child.key_lo,
                                    child.key_lo + (child.key_count - 1));
        if (child_first == child_last) continue;  // no rows: prune
        const std::uint64_t child_dist = child.min_squared_distance(query);
        if (best_.size() == k && child_dist > best_.front().sq_dist) continue;
        frontier_.push_back(Visit{child_dist, child, child_first, child_last});
        std::push_heap(frontier_.begin(), frontier_.end(), after);
        ++local.frontier_pushes;
      }
    }
    // A drained frontier certifies too: every reachable candidate was
    // evaluated.  (No-op when the loop broke on the frontier bound.)
    local.certified = true;
  }

  std::sort(best_.begin(), best_.end(), Closer{});
  std::vector<KnnNeighbor> result;
  result.reserve(best_.size());
  for (const Candidate& candidate : best_) {
    result.push_back(KnnNeighbor{view_.id_of_row(candidate.row), candidate.key,
                                 candidate.sq_dist});
  }
  if (obs_enabled()) {
    KnnMetrics& metrics = knn_metrics();
    metrics.queries.add(1);
    metrics.neighbors_returned.add(result.size());
    metrics.nodes_expanded.add(local.nodes_expanded);
    metrics.frontier_pushes.add(local.frontier_pushes);
    metrics.rows_scanned.add(local.rows_scanned);
    if (local.certified) metrics.certified.add(1);
  }
  if (stats != nullptr) *stats = local;
  return result;
}

}  // namespace sfc
