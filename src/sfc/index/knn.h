// Certified best-first kNN over a PointIndex.
//
// The classical SFC kNN heuristic scans a key window around the query and
// hopes it is wide enough (nn_query's knn_via_window, paper intro ref [5]) —
// the paper's stretch bounds say how wide "wide enough" must be.  This
// engine needs no window guess: it descends the curve's subtree hierarchy
// best-first, ordering a frontier of subtree nodes by the exact minimum
// squared Euclidean distance from the query to their subcubes
// (SubtreeNode::min_squared_distance).  Subtrees holding no indexed rows are
// pruned through the block directory; small row ranges are scanned; and the
// search stops with a *correctness certificate*: the k-th best distance
// found is <= the min distance of every unpopped frontier node, so no
// unvisited row can improve the answer.  Results are exact and
// deterministic — candidates are totally ordered by (squared distance,
// curve key, row), the order brute force produces.
//
// Curves without subtree structure fall back to a full scan of the rows
// (exact, trivially certified), so every family answers through one entry
// point.  Like the range scans, the engine queries through IndexColumnsView,
// so in-memory, mmap-backed, and shard-sliced storage all answer
// bit-identically.
#pragma once

#include <cstdint>
#include <vector>

#include "sfc/grid/point.h"
#include "sfc/index/columns_view.h"
#include "sfc/index/point_index.h"

namespace sfc {

/// One kNN result row.
struct KnnNeighbor {
  std::uint32_t id = 0;        ///< payload id of the input point
  index_t key = 0;             ///< its curve key
  std::uint64_t sq_dist = 0;   ///< exact squared Euclidean distance to query

  friend bool operator==(const KnnNeighbor& a, const KnnNeighbor& b) {
    return a.id == b.id && a.key == b.key && a.sq_dist == b.sq_dist;
  }
};

struct KnnStats {
  /// Subtree nodes expanded into children (0 on the full-scan path).
  std::uint64_t nodes_expanded = 0;
  /// Frontier pushes (root + children surviving the emptiness prune).
  std::uint64_t frontier_pushes = 0;
  /// Rows whose distance was evaluated.
  std::uint64_t rows_scanned = 0;
  /// True when the search terminated with the frontier certificate
  /// (k-th distance <= min distance of any unpopped node), or by exhausting
  /// every candidate (full scan / frontier drained) — always true on exit.
  bool certified = false;
  /// True when the certificate came from a non-empty frontier; then
  /// frontier_sq_dist is the min squared distance of the unpopped nodes.
  bool frontier_bound_valid = false;
  std::uint64_t frontier_sq_dist = 0;
  /// False when the curve has no subtree structure and the engine fell back
  /// to the exhaustive row scan.
  bool used_subtree = false;
};

/// Best-first kNN engine.  Reuses its heaps across queries; not thread-safe
/// — the multi-query executor keeps one per worker chunk.
class KnnEngine {
 public:
  /// Row ranges at most this long are scanned instead of descending further.
  static constexpr std::uint64_t kLeafRows = 64;

  explicit KnnEngine(IndexColumnsView view) : view_(view) {}

  /// The k rows nearest to `query` under the total order (squared Euclidean
  /// distance, curve key, row), ascending — fewer when the view holds fewer
  /// than k rows.  Duplicate points are distinct rows and are all reported.
  /// The query must lie inside the curve's universe (throws
  /// IndexArgumentError otherwise).
  std::vector<KnnNeighbor> query(const Point& query, std::uint32_t k,
                                 KnnStats* stats = nullptr);

  const IndexColumnsView& view() const { return view_; }

 private:
  struct Candidate {
    std::uint64_t sq_dist;
    index_t key;
    std::uint64_t row;
  };
  struct Visit {
    std::uint64_t sq_dist;
    SubtreeNode node;
    // Row range of the node's key interval, resolved once at push time (the
    // index is immutable, so it cannot change before the pop).
    std::uint64_t row_first;
    std::uint64_t row_last;
  };

  void consider_rows(const Point& query, std::uint32_t k, std::uint64_t first,
                     std::uint64_t last, KnnStats& stats);

  IndexColumnsView view_;
  // Max-heap of the best k candidates (top = current k-th) and min-heap of
  // frontier nodes by (subcube min distance, key_lo); see knn.cpp.
  std::vector<Candidate> best_;
  std::vector<Visit> frontier_;
  std::vector<SubtreeNode> children_;
};

}  // namespace sfc
