// Batched box range scans over an index columns view.
//
// A box query decomposes into its exact maximal key intervals (sfc/ranges);
// each interval resolves to a row range through the view's block directory
// and the rows are appended wholesale.  Because the cover is *exact* — every
// key in every interval corresponds to a cell inside the box — no per-row
// membership test is needed and zero rows are overscanned: work is
// O(runs · (log side + log n) + output) instead of the O(n) of a full scan
// (or the O(volume) of enumerating the box).  The full-scan reference path
// is kept for verification and as the baseline the CI bench gates against.
//
// The engine queries through IndexColumnsView, so the same code serves an
// in-memory PointIndex, a mmap-backed MappedIndex (sfc/store), or one shard
// of a ShardedIndex (sfc/serve) — bit-identically.
#pragma once

#include <cstdint>
#include <vector>

#include "sfc/grid/box.h"
#include "sfc/index/columns_view.h"
#include "sfc/index/point_index.h"
#include "sfc/ranges/range_cover.h"

namespace sfc {

struct RangeScanStats {
  /// Rows whose points lie inside the box (== ids emitted).
  std::uint64_t rows_returned = 0;
  /// Rows touched while answering.  Equals rows_returned on the cover path
  /// (exact covers never overscan); equals row_count() on the full scan.
  std::uint64_t rows_scanned = 0;
  /// Key intervals in the box's cover (its clustering number).
  std::uint64_t runs_in_cover = 0;
  /// Cover intervals that resolved to at least one row.
  std::uint64_t runs_touched = 0;
  /// Subtree nodes visited by the cover descent (0 on enumeration/full scan).
  std::uint64_t nodes_visited = 0;
  bool used_subtree = false;
};

/// Cover-driven scan engine.  Owns a reusable cover workspace, so one engine
/// serves many queries without allocating; not thread-safe — the multi-query
/// executor keeps one per worker chunk.
class RangeScanEngine {
 public:
  explicit RangeScanEngine(IndexColumnsView view)
      : view_(view), cover_(view.curve()) {}

  /// Appends to *out the payload id of every indexed point inside `box`, in
  /// row order (ascending key, duplicate keys in input order).  The box must
  /// lie inside the curve's universe.  `out` is cleared first.
  void scan(const Box& box, std::vector<std::uint32_t>* out,
            RangeScanStats* stats = nullptr);

  const IndexColumnsView& view() const { return view_; }

 private:
  IndexColumnsView view_;
  RangeCoverEngine cover_;
  CoverWorkspace ws_;
};

/// Reference path: tests every row's point against the box.  O(row_count)
/// always; produces the identical id sequence (row order == key order).
std::vector<std::uint32_t> range_scan_full(const IndexColumnsView& view,
                                           const Box& box,
                                           RangeScanStats* stats = nullptr);

}  // namespace sfc
