// Thread-pool-backed multi-query execution over an index columns view.
//
// Serving traffic means answering *batches* of queries, not one box at a
// time.  Each query is answered independently into its own pre-allocated
// result slot, chunks of queries share one scan/kNN engine (so cover
// workspaces and heaps are reused across a chunk without allocation churn),
// and chunk boundaries depend only on the query count and grain — the same
// fixed-chunk design as parallel_for / random_box_clustering — so results
// are bit-identical across 1/2/8 threads and any grain.
//
// The executors take IndexColumnsView: an owned PointIndex, a mmap-backed
// MappedIndex (sfc/store), and a serve shard all run through the same code.
// The sharded serving front end (sfc/serve) feeds its admission batches
// here.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sfc/grid/box.h"
#include "sfc/grid/point.h"
#include "sfc/index/columns_view.h"
#include "sfc/index/knn.h"
#include "sfc/index/point_index.h"
#include "sfc/index/range_scan.h"
#include "sfc/parallel/thread_pool.h"

namespace sfc {

struct MultiQueryOptions {
  /// Worker pool; nullptr means ThreadPool::shared().  The pool size only
  /// affects wall clock, never any result or statistic.
  ThreadPool* pool = nullptr;
  /// Queries per deterministic chunk (0 = default 16).
  std::uint64_t grain = 16;
};

struct RangeQueryResult {
  /// Payload ids inside the box, in row order (ascending key).
  std::vector<std::uint32_t> ids;
  RangeScanStats stats;
};

struct KnnQueryResult {
  std::vector<KnnNeighbor> neighbors;
  KnnStats stats;
};

/// Answers every box query; result[i] corresponds to boxes[i].  Boxes must
/// lie inside the curve's universe.
std::vector<RangeQueryResult> run_range_queries(
    const IndexColumnsView& view, std::span<const Box> boxes,
    const MultiQueryOptions& options = {});

/// Answers every kNN query; result[i] corresponds to queries[i].  Queries
/// must lie inside the curve's universe (IndexArgumentError otherwise).
std::vector<KnnQueryResult> run_knn_queries(
    const IndexColumnsView& view, std::span<const Point> queries,
    std::uint32_t k, const MultiQueryOptions& options = {});

}  // namespace sfc
