#include "sfc/index/range_scan.h"

#include "sfc/obs/metrics.h"

namespace sfc {

namespace {

struct RangeScanMetrics {
  MetricsRegistry::Counter queries;
  MetricsRegistry::Counter rows_returned;
  MetricsRegistry::Counter rows_scanned;
  MetricsRegistry::Counter runs_in_cover;
  MetricsRegistry::Counter runs_touched;
  MetricsRegistry::Counter nodes_visited;
};

RangeScanMetrics& range_scan_metrics() {
  static RangeScanMetrics metrics{
      MetricsRegistry::global().counter("index.range.queries"),
      MetricsRegistry::global().counter("index.range.rows_returned"),
      MetricsRegistry::global().counter("index.range.rows_scanned"),
      MetricsRegistry::global().counter("index.range.runs_in_cover"),
      MetricsRegistry::global().counter("index.range.runs_touched"),
      MetricsRegistry::global().counter("index.range.nodes_visited"),
  };
  return metrics;
}

}  // namespace

void RangeScanEngine::scan(const Box& box, std::vector<std::uint32_t>* out,
                           RangeScanStats* stats) {
  out->clear();
  RangeScanStats local;
  CoverStats cover_stats;
  const std::span<const std::uint32_t> ids = view_.ids();
  cover_.for_each_interval(
      box, ws_,
      [&](const KeyInterval& interval) {
        ++local.runs_in_cover;
        const auto [first, last] =
            view_.rows_in_interval(interval.lo, interval.hi);
        if (first == last) return;
        ++local.runs_touched;
        local.rows_returned += last - first;
        out->insert(out->end(), ids.begin() + static_cast<std::ptrdiff_t>(first),
                    ids.begin() + static_cast<std::ptrdiff_t>(last));
      },
      &cover_stats);
  // Exact covers: every resolved row is a hit, nothing else was touched.
  local.rows_scanned = local.rows_returned;
  local.nodes_visited = cover_stats.nodes_visited;
  local.used_subtree = cover_stats.used_subtree;
  if (obs_enabled()) {
    RangeScanMetrics& metrics = range_scan_metrics();
    metrics.queries.add(1);
    metrics.rows_returned.add(local.rows_returned);
    metrics.rows_scanned.add(local.rows_scanned);
    metrics.runs_in_cover.add(local.runs_in_cover);
    metrics.runs_touched.add(local.runs_touched);
    metrics.nodes_visited.add(local.nodes_visited);
  }
  if (stats != nullptr) *stats = local;
}

std::vector<std::uint32_t> range_scan_full(const IndexColumnsView& view,
                                           const Box& box,
                                           RangeScanStats* stats) {
  std::vector<std::uint32_t> out;
  const std::uint64_t n = view.row_count();
  for (std::uint64_t row = 0; row < n; ++row) {
    if (box.contains(view.point_of_row(row))) {
      out.push_back(view.id_of_row(row));
    }
  }
  if (stats != nullptr) {
    *stats = RangeScanStats{};
    stats->rows_returned = out.size();
    stats->rows_scanned = n;
  }
  return out;
}

}  // namespace sfc
