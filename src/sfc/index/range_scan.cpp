#include "sfc/index/range_scan.h"

namespace sfc {

void RangeScanEngine::scan(const Box& box, std::vector<std::uint32_t>* out,
                           RangeScanStats* stats) {
  out->clear();
  RangeScanStats local;
  CoverStats cover_stats;
  const std::span<const std::uint32_t> ids = view_.ids();
  cover_.for_each_interval(
      box, ws_,
      [&](const KeyInterval& interval) {
        ++local.runs_in_cover;
        const auto [first, last] =
            view_.rows_in_interval(interval.lo, interval.hi);
        if (first == last) return;
        ++local.runs_touched;
        local.rows_returned += last - first;
        out->insert(out->end(), ids.begin() + static_cast<std::ptrdiff_t>(first),
                    ids.begin() + static_cast<std::ptrdiff_t>(last));
      },
      &cover_stats);
  // Exact covers: every resolved row is a hit, nothing else was touched.
  local.rows_scanned = local.rows_returned;
  local.nodes_visited = cover_stats.nodes_visited;
  local.used_subtree = cover_stats.used_subtree;
  if (stats != nullptr) *stats = local;
}

std::vector<std::uint32_t> range_scan_full(const IndexColumnsView& view,
                                           const Box& box,
                                           RangeScanStats* stats) {
  std::vector<std::uint32_t> out;
  const std::uint64_t n = view.row_count();
  for (std::uint64_t row = 0; row < n; ++row) {
    if (box.contains(view.point_of_row(row))) {
      out.push_back(view.id_of_row(row));
    }
  }
  if (stats != nullptr) {
    *stats = RangeScanStats{};
    stats->rows_returned = out.size();
    stats->rows_scanned = n;
  }
  return out;
}

}  // namespace sfc
