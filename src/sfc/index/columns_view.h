// The storage-agnostic columns view every index query engine runs on.
//
// A built index is four flat columns — sorted curve keys, payload ids, points
// gathered into key order, and the sparse block directory — plus the curve
// that keyed them.  Where those columns live is a storage decision: owned
// std::vectors (PointIndex::build), a read-only mmap of an index file
// (sfc/store MappedIndex), or a curve-contiguous slice of either (sfc/serve
// shards).  IndexColumnsView is the span-based seam between the two layers:
// engines (RangeScanEngine, KnnEngine, the multi-query executor) accept a
// view and never know the backing storage, which is what makes in-memory and
// mmap-served queries bit-identical by construction.
//
// A view is non-owning and cheap to copy (six words of spans + a curve
// pointer); the storage it points at must outlive it.
#pragma once

#include <cstdint>
#include <span>
#include <utility>

#include "sfc/common/types.h"
#include "sfc/curves/space_filling_curve.h"
#include "sfc/grid/point.h"

namespace sfc {

class IndexColumnsView {
 public:
  IndexColumnsView() = default;

  /// Assembles a view over externally owned columns.  `keys`, `ids`, and
  /// `points` must have equal length and be sorted by (key, id);
  /// `block_last_key` must hold the max key of every `block_rows`-sized row
  /// block.  Invariants are the storage layer's contract — the view does not
  /// re-validate (MappedIndex validates once at open, PointIndex builds them
  /// true).
  IndexColumnsView(const SpaceFillingCurve& curve, std::uint32_t block_rows,
                   std::span<const index_t> keys,
                   std::span<const std::uint32_t> ids,
                   std::span<const Point> points,
                   std::span<const index_t> block_last_key)
      : curve_(&curve),
        block_rows_(block_rows),
        keys_(keys),
        ids_(ids),
        points_(points),
        block_last_key_(block_last_key) {}

  const SpaceFillingCurve& curve() const { return *curve_; }
  std::uint64_t row_count() const { return keys_.size(); }
  bool empty() const { return keys_.empty(); }

  /// Sorted key column; keys()[r] is row r's curve key.
  std::span<const index_t> keys() const { return keys_; }
  /// ids()[r] is the input position (payload id) of row r.
  std::span<const std::uint32_t> ids() const { return ids_; }
  /// points()[r] is the point of row r, gathered into key order.
  std::span<const Point> points() const { return points_; }
  /// Directory column: block_last_key()[b] = max key of rows
  /// [b*block_rows, (b+1)*block_rows).
  std::span<const index_t> block_last_key() const { return block_last_key_; }

  index_t key_of_row(std::uint64_t row) const { return keys_[row]; }
  std::uint32_t id_of_row(std::uint64_t row) const { return ids_[row]; }
  const Point& point_of_row(std::uint64_t row) const { return points_[row]; }

  std::uint32_t block_rows() const { return block_rows_; }
  std::uint64_t block_count() const { return block_last_key_.size(); }

  /// First row whose key is >= `key` (row_count() when none).  Searches the
  /// block directory, then binary-searches within the one resolved block.
  std::uint64_t lower_bound_row(index_t key) const;

  /// Half-open row range [first, second) of the rows whose keys lie in the
  /// inclusive key interval [lo, hi] — the resolution step of every
  /// interval-driven scan.
  std::pair<std::uint64_t, std::uint64_t> rows_in_interval(index_t lo,
                                                           index_t hi) const;

 private:
  const SpaceFillingCurve* curve_ = nullptr;
  std::uint32_t block_rows_ = 256;
  std::span<const index_t> keys_;
  std::span<const std::uint32_t> ids_;
  std::span<const Point> points_;
  std::span<const index_t> block_last_key_;
};

}  // namespace sfc
