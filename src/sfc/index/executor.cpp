#include "sfc/index/executor.h"

#include "sfc/parallel/parallel_for.h"

namespace sfc {

namespace {

std::uint64_t normalized_grain(const MultiQueryOptions& options) {
  return options.grain == 0 ? 16 : options.grain;
}

ThreadPool& pool_of(const MultiQueryOptions& options) {
  return options.pool != nullptr ? *options.pool : ThreadPool::shared();
}

}  // namespace

std::vector<RangeQueryResult> run_range_queries(
    const IndexColumnsView& view, std::span<const Box> boxes,
    const MultiQueryOptions& options) {
  std::vector<RangeQueryResult> results(boxes.size());
  parallel_for_chunks(
      pool_of(options), boxes.size(), normalized_grain(options),
      [&](const ChunkRange& range) {
        // One engine per chunk: the cover workspace warms up on the first
        // query and every later query in the chunk runs allocation-light.
        RangeScanEngine engine(view);
        for (std::uint64_t i = range.begin; i < range.end; ++i) {
          engine.scan(boxes[i], &results[i].ids, &results[i].stats);
        }
      });
  return results;
}

std::vector<KnnQueryResult> run_knn_queries(const IndexColumnsView& view,
                                            std::span<const Point> queries,
                                            std::uint32_t k,
                                            const MultiQueryOptions& options) {
  std::vector<KnnQueryResult> results(queries.size());
  parallel_for_chunks(
      pool_of(options), queries.size(), normalized_grain(options),
      [&](const ChunkRange& range) {
        KnnEngine engine(view);
        for (std::uint64_t i = range.begin; i < range.end; ++i) {
          results[i].neighbors = engine.query(queries[i], k, &results[i].stats);
        }
      });
  return results;
}

}  // namespace sfc
