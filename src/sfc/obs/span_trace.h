// Per-query span tracing: bounded, exportable as Chrome trace-event JSON.
//
// A span is one timed phase of one request — queue wait, batch execution, an
// engine's work on a query, a sort pass — stamped with the trace id minted
// at admission so every phase of a request lines up on one timeline.  Spans
// carry only trivially-copyable data (static-lifetime name/category strings,
// a fixed arg array of integer facts), so recording is a struct copy into a
// mutex-protected ring buffer that keeps the most recent `capacity` spans
// and counts what it overwrote.  Span volume is per-query/per-batch, never
// per-row, so the mutex is uncontended in practice.
//
// chrome_trace_json renders any span list as the Chrome/Perfetto trace-event
// format ("ph":"X" complete events): load the file in chrome://tracing or
// https://ui.perfetto.dev and the serving pipeline becomes a flame chart.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace sfc {

struct TraceSpan {
  /// Request correlation id (next_trace_id()); 0 = not tied to a request.
  std::uint64_t trace_id = 0;
  /// Static-lifetime strings only (string literals): spans are copied around
  /// without ownership.
  const char* name = "";
  const char* category = "";
  /// trace_now_us() timebase: microseconds since the process trace epoch.
  double start_us = 0.0;
  double dur_us = 0.0;
  /// Small dense per-thread id (trace_thread_id()), the Chrome "tid".
  std::uint32_t tid = 0;

  struct Arg {
    const char* key = nullptr;  ///< nullptr = slot unused
    std::uint64_t value = 0;
  };
  std::array<Arg, 8> args{};

  /// Appends an integer fact; silently drops past the fixed arg capacity.
  void add_arg(const char* key, std::uint64_t value);
};

/// Bounded most-recent-spans buffer.  Thread-safe; record() is a no-op while
/// obs is disabled (set_obs_enabled / SFC_OBS_DISABLED).
class TraceRing {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit TraceRing(std::size_t capacity = kDefaultCapacity);

  /// The process ring the built-in instrumentation records into.
  /// Intentionally leaked, like MetricsRegistry::global().
  static TraceRing& global();

  void record(const TraceSpan& span);
  /// Records a batch of spans under one lock acquisition.  Hot paths that
  /// mint several spans per event (one per query in a served batch) should
  /// stage them locally and flush once, so the ring mutex is taken per
  /// batch, not per query.
  void record_all(std::span<const TraceSpan> spans);
  /// Retained spans, oldest first.
  std::vector<TraceSpan> snapshot() const;
  void clear();

  std::size_t capacity() const { return capacity_; }
  /// Lifetime counters: spans ever recorded, and how many of those were
  /// overwritten by newer spans (recorded - dropped = retained, capped).
  std::uint64_t recorded() const;
  std::uint64_t dropped() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<TraceSpan> ring_;
  std::size_t head_ = 0;  ///< next write position
  std::size_t size_ = 0;  ///< valid spans in ring_
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Monotonic process-global request id, starting at 1.
std::uint64_t next_trace_id();

/// Microseconds since the process trace epoch (steady clock).
double trace_now_us();
/// The same timebase for an already-captured steady_clock time point.
double trace_time_us(std::chrono::steady_clock::time_point tp);

/// Small dense id of the calling thread, assigned on first use.
std::uint32_t trace_thread_id();

/// Renders spans as Chrome trace-event JSON ({"traceEvents":[...]}).
std::string chrome_trace_json(std::span<const TraceSpan> spans);

}  // namespace sfc
