#include "sfc/obs/span_trace.h"

#include <atomic>
#include <cstdio>

#include "sfc/obs/metrics.h"

namespace sfc {

namespace {

std::atomic<std::uint64_t> g_trace_id{1};
std::atomic<std::uint32_t> g_thread_id{1};

std::chrono::steady_clock::time_point trace_epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

/// Minimal JSON string escaping.  Span strings are static literals chosen by
/// instrumentation code, but the exporter must stay well-formed for any
/// input.
void append_json_string(std::string& out, const char* text) {
  out += '"';
  for (const char* p = text; *p != '\0'; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof buffer, "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buffer;
    } else {
      out += c;
    }
  }
  out += '"';
}

void append_fixed3(std::string& out, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.3f", value);
  out += buffer;
}

}  // namespace

void TraceSpan::add_arg(const char* key, std::uint64_t value) {
  for (Arg& arg : args) {
    if (arg.key == nullptr) {
      arg = Arg{key, value};
      return;
    }
  }
}

TraceRing::TraceRing(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.resize(capacity_);
}

TraceRing& TraceRing::global() {
  static TraceRing* ring = new TraceRing();
  return *ring;
}

void TraceRing::record(const TraceSpan& span) {
#ifdef SFC_OBS_DISABLED
  (void)span;
  return;
#else
  if (!obs_enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  ring_[head_] = span;
  head_ = (head_ + 1) % capacity_;
  if (size_ < capacity_) {
    ++size_;
  } else {
    ++dropped_;
  }
  ++recorded_;
#endif
}

void TraceRing::record_all(std::span<const TraceSpan> spans) {
#ifdef SFC_OBS_DISABLED
  (void)spans;
#else
  if (!obs_enabled() || spans.empty()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const TraceSpan& span : spans) {
    ring_[head_] = span;
    head_ = (head_ + 1) % capacity_;
    if (size_ < capacity_) {
      ++size_;
    } else {
      ++dropped_;
    }
    ++recorded_;
  }
#endif
}

std::vector<TraceSpan> TraceRing::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceSpan> spans;
  spans.reserve(size_);
  const std::size_t oldest = (head_ + capacity_ - size_) % capacity_;
  for (std::size_t i = 0; i < size_; ++i) {
    spans.push_back(ring_[(oldest + i) % capacity_]);
  }
  return spans;
}

void TraceRing::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  head_ = 0;
  size_ = 0;
  recorded_ = 0;
  dropped_ = 0;
}

std::uint64_t TraceRing::recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recorded_;
}

std::uint64_t TraceRing::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::uint64_t next_trace_id() {
  return g_trace_id.fetch_add(1, std::memory_order_relaxed);
}

double trace_now_us() {
  return trace_time_us(std::chrono::steady_clock::now());
}

double trace_time_us(std::chrono::steady_clock::time_point tp) {
  return std::chrono::duration<double, std::micro>(tp - trace_epoch()).count();
}

std::uint32_t trace_thread_id() {
  thread_local const std::uint32_t id =
      g_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::string chrome_trace_json(std::span<const TraceSpan> spans) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceSpan& span : spans) {
    if (!first) out += ',';
    first = false;
    out += "\n{\"pid\":1,\"tid\":";
    out += std::to_string(span.tid);
    out += ",\"ph\":\"X\",\"ts\":";
    append_fixed3(out, span.start_us);
    out += ",\"dur\":";
    append_fixed3(out, span.dur_us);
    out += ",\"name\":";
    append_json_string(out, span.name);
    out += ",\"cat\":";
    append_json_string(out, span.category);
    out += ",\"args\":{\"trace_id\":";
    out += std::to_string(span.trace_id);
    for (const TraceSpan::Arg& arg : span.args) {
      if (arg.key == nullptr) continue;
      out += ',';
      append_json_string(out, arg.key);
      out += ':';
      out += std::to_string(arg.value);
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

}  // namespace sfc
