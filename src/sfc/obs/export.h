// Export surfaces for metrics snapshots: JSON for tooling, Prometheus text
// exposition for scrapers.  Both render a MetricsSnapshot only — take the
// snapshot first, so one consistent fold feeds every surface.
#pragma once

#include <string>

#include "sfc/obs/metrics.h"

namespace sfc {

/// {"metrics": {name: value | {histogram object}, ...}}, name-sorted (the
/// snapshot order).  Counters and gauges render as integers; histograms as
/// {"count", "sum_us", "p50_us", "p90_us", "p99_us", "buckets": [32 counts]}.
std::string metrics_json(const MetricsSnapshot& snapshot);

/// Prometheus text exposition: names are prefixed "sfc_" with '.'/'-'
/// mapped to '_'; histograms emit cumulative _bucket{le="2^i"} series plus
/// _count and _sum (microseconds).
std::string metrics_prometheus(const MetricsSnapshot& snapshot);

}  // namespace sfc
