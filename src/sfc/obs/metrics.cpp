#include "sfc/obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <utility>

#include "sfc/common/error.h"

namespace sfc {

namespace {

/// Fixed shard capacity: cells must keep stable addresses while other
/// threads record, so shards are sized once at creation and registration
/// beyond the cap is a loud error instead of a silent realloc race.  The
/// caps are an order of magnitude above what the built-in instrumentation
/// registers (a few dozen counters, a handful of histograms).
constexpr std::uint32_t kMaxCounterSlots = 512;
constexpr std::uint32_t kMaxHistogramSlots = 64;

std::atomic<std::uint64_t> g_registry_uid{1};

const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

}  // namespace

/// One thread's private cells.  Everything is a relaxed atomic integer:
/// writes are uncontended (one writer thread), and the atomics make the
/// cross-thread snapshot fold race-free.
struct MetricsRegistry::Shard {
  std::vector<std::atomic<std::uint64_t>> counters;
  struct HistCell {
    std::array<std::atomic<std::uint64_t>, 32> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum_ns{0};
  };
  std::vector<HistCell> histograms;

  Shard() : counters(kMaxCounterSlots), histograms(kMaxHistogramSlots) {}
};

MetricsRegistry::MetricsRegistry()
    : uid_(g_registry_uid.fetch_add(1, std::memory_order_relaxed)) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Counter MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    if (it->second.kind != MetricKind::kCounter) {
      throw Error("metric '" + name + "' already registered as a " +
                  kind_name(it->second.kind));
    }
    return Counter(this, it->second.slot);
  }
  if (counter_slots_ >= kMaxCounterSlots) {
    throw Error("metrics registry: counter capacity exhausted at '" + name +
                "'");
  }
  const std::uint32_t slot = counter_slots_++;
  metrics_.emplace(name, Meta{MetricKind::kCounter, slot});
  return Counter(this, slot);
}

MetricsRegistry::Gauge MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    if (it->second.kind != MetricKind::kGauge) {
      throw Error("metric '" + name + "' already registered as a " +
                  kind_name(it->second.kind));
    }
    return Gauge(gauges_[it->second.slot].get());
  }
  const auto slot = static_cast<std::uint32_t>(gauges_.size());
  gauges_.push_back(std::make_unique<std::atomic<std::int64_t>>(0));
  metrics_.emplace(name, Meta{MetricKind::kGauge, slot});
  return Gauge(gauges_[slot].get());
}

MetricsRegistry::Histogram MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    if (it->second.kind != MetricKind::kHistogram) {
      throw Error("metric '" + name + "' already registered as a " +
                  kind_name(it->second.kind));
    }
    return Histogram(this, it->second.slot);
  }
  if (histogram_slots_ >= kMaxHistogramSlots) {
    throw Error("metrics registry: histogram capacity exhausted at '" + name +
                "'");
  }
  const std::uint32_t slot = histogram_slots_++;
  metrics_.emplace(name, Meta{MetricKind::kHistogram, slot});
  return Histogram(this, slot);
}

MetricsRegistry::Shard* MetricsRegistry::attach_shard() {
  std::lock_guard<std::mutex> lock(mutex_);
  shards_.push_back(std::make_unique<Shard>());
  return shards_.back().get();
}

MetricsRegistry::Shard& MetricsRegistry::local_shard() {
  // Registry-uid-keyed cache: one entry per registry this thread has
  // recorded into (almost always just the global one, so the scan is a
  // single compare).  Entries for destroyed registries go stale but are
  // never dereferenced — uids are not reused.
  thread_local std::vector<std::pair<std::uint64_t, Shard*>> cache;
  for (const auto& [uid, shard] : cache) {
    if (uid == uid_) return *shard;
  }
  Shard* shard = attach_shard();
  cache.emplace_back(uid_, shard);
  return *shard;
}

void MetricsRegistry::counter_add(std::uint32_t slot, std::uint64_t n) {
  local_shard().counters[slot].fetch_add(n, std::memory_order_relaxed);
}

void MetricsRegistry::histogram_record(std::uint32_t slot, double us) {
  // Same bucketing as LatencyHistogram::record_us, applied to the shard's
  // atomic cells so the snapshot fold reproduces record_us exactly.
  Shard::HistCell& cell = local_shard().histograms[slot];
  const std::uint64_t whole =
      us <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(std::ceil(us)));
  const int bucket = std::min(31, static_cast<int>(std::bit_width(whole)));
  cell.buckets[static_cast<std::size_t>(bucket)].fetch_add(
      1, std::memory_order_relaxed);
  cell.count.fetch_add(1, std::memory_order_relaxed);
  if (us > 0.0) {
    cell.sum_ns.fetch_add(static_cast<std::uint64_t>(std::llround(
                              std::min(us, 9.0e15) * 1000.0)),
                          std::memory_order_relaxed);
  }
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mutex_);
  snapshot.metrics.reserve(metrics_.size());
  // std::map iteration is name order, and every fold below is an integer
  // sum over the shard list — commutative, so the snapshot is identical for
  // any thread count and any shard registration order.
  for (const auto& [name, meta] : metrics_) {
    MetricValue value;
    value.name = name;
    value.kind = meta.kind;
    switch (meta.kind) {
      case MetricKind::kCounter: {
        std::uint64_t total = 0;
        for (const auto& shard : shards_) {
          total += shard->counters[meta.slot].load(std::memory_order_relaxed);
        }
        value.value = static_cast<std::int64_t>(total);
        break;
      }
      case MetricKind::kGauge:
        value.value = gauges_[meta.slot]->load(std::memory_order_relaxed);
        break;
      case MetricKind::kHistogram: {
        for (const auto& shard : shards_) {
          const Shard::HistCell& cell = shard->histograms[meta.slot];
          for (std::size_t b = 0; b < cell.buckets.size(); ++b) {
            value.histogram.buckets[b] +=
                cell.buckets[b].load(std::memory_order_relaxed);
          }
          value.histogram.count += cell.count.load(std::memory_order_relaxed);
          value.histogram.sum_ns +=
              cell.sum_ns.load(std::memory_order_relaxed);
        }
        break;
      }
    }
    snapshot.metrics.push_back(std::move(value));
  }
  return snapshot;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& shard : shards_) {
    for (auto& counter : shard->counters) {
      counter.store(0, std::memory_order_relaxed);
    }
    for (auto& cell : shard->histograms) {
      for (auto& bucket : cell.buckets) {
        bucket.store(0, std::memory_order_relaxed);
      }
      cell.count.store(0, std::memory_order_relaxed);
      cell.sum_ns.store(0, std::memory_order_relaxed);
    }
  }
  for (const auto& gauge : gauges_) {
    gauge->store(0, std::memory_order_relaxed);
  }
}

const MetricValue* MetricsSnapshot::find(std::string_view name) const {
  for (const MetricValue& metric : metrics) {
    if (metric.name == name) return &metric;
  }
  return nullptr;
}

std::int64_t MetricsSnapshot::value(std::string_view name) const {
  const MetricValue* metric = find(name);
  return metric == nullptr ? 0 : metric->value;
}

const LatencyHistogram* MetricsSnapshot::histogram(
    std::string_view name) const {
  const MetricValue* metric = find(name);
  return metric != nullptr && metric->kind == MetricKind::kHistogram
             ? &metric->histogram
             : nullptr;
}

}  // namespace sfc
