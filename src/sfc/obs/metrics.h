// The process-wide metrics registry: named counters, gauges, and log2
// latency histograms with lock-light recording.
//
// Recording is the hot path and must stay off every lock: each thread gets a
// private shard of relaxed atomic cells per registry (registered once under
// the registry mutex, owned by the registry so counts survive thread exit),
// and a handle's add()/record_us() is a thread-local shard lookup plus a
// relaxed fetch_add on an uncontended cache line.  snapshot() folds the
// shards deterministically: every cell is an integer (histogram time sums
// are kept in nanoseconds, never floating point), so the fold is a
// commutative sum and the snapshot is bit-identical for any thread count or
// fold order — the same determinism contract the sort and cover kernels
// keep.
//
// Two switches make instrumentation free when unwanted: the runtime
// obs_enabled() flag (one relaxed atomic load per record; flip it with
// set_obs_enabled) and the SFC_OBS_DISABLED compile definition (CMake
// -DSFC_OBS=OFF), which compiles every handle method to an empty inline
// body.
//
// Naming convention: dot-separated "<layer>.<fact>" ("serve.accepted",
// "index.range.rows_scanned", "sort.pass_us"); histogram names end in the
// unit.  Export surfaces (sfc/obs/export.h) rely only on that shape.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "sfc/obs/histogram.h"

namespace sfc {

namespace obs_detail {
/// Runtime master switch, checked on every record.  Inline so the handle
/// fast path is a single relaxed load away from the caller's code.
inline std::atomic<bool> g_obs_enabled{true};
}  // namespace obs_detail

inline bool obs_enabled() {
  return obs_detail::g_obs_enabled.load(std::memory_order_relaxed);
}
inline void set_obs_enabled(bool enabled) {
  obs_detail::g_obs_enabled.store(enabled, std::memory_order_relaxed);
}

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// One folded metric in a snapshot.  `value` carries counters and gauges;
/// `histogram` carries histograms (empty otherwise).
struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::int64_t value = 0;
  LatencyHistogram histogram;
};

/// A deterministic point-in-time fold of a registry, name-sorted.
struct MetricsSnapshot {
  std::vector<MetricValue> metrics;

  const MetricValue* find(std::string_view name) const;
  /// Counter/gauge value by name; 0 when absent.
  std::int64_t value(std::string_view name) const;
  /// Histogram by name; nullptr when absent or not a histogram.
  const LatencyHistogram* histogram(std::string_view name) const;
};

class MetricsRegistry {
 public:
  /// Cheap copyable handle to one counter.  Safe to cache in function-local
  /// statics against the global() registry (which is never destroyed).
  class Counter {
   public:
    Counter() = default;
    void add(std::uint64_t n = 1) {
#ifndef SFC_OBS_DISABLED
      if (registry_ != nullptr && obs_enabled()) registry_->counter_add(slot_, n);
#endif
    }

   private:
    friend class MetricsRegistry;
    Counter(MetricsRegistry* registry, std::uint32_t slot)
        : registry_(registry), slot_(slot) {}
    MetricsRegistry* registry_ = nullptr;
    std::uint32_t slot_ = 0;
  };

  /// Gauges are low-frequency set/add values (queue depth, bytes mapped):
  /// one shared atomic per gauge, no sharding.
  class Gauge {
   public:
    Gauge() = default;
    void set(std::int64_t value) {
#ifndef SFC_OBS_DISABLED
      if (cell_ != nullptr && obs_enabled()) {
        cell_->store(value, std::memory_order_relaxed);
      }
#endif
    }
    void add(std::int64_t delta) {
#ifndef SFC_OBS_DISABLED
      if (cell_ != nullptr && obs_enabled()) {
        cell_->fetch_add(delta, std::memory_order_relaxed);
      }
#endif
    }

   private:
    friend class MetricsRegistry;
    explicit Gauge(std::atomic<std::int64_t>* cell) : cell_(cell) {}
    std::atomic<std::int64_t>* cell_ = nullptr;
  };

  class Histogram {
   public:
    Histogram() = default;
    void record_us(double us) {
#ifndef SFC_OBS_DISABLED
      if (registry_ != nullptr && obs_enabled()) {
        registry_->histogram_record(slot_, us);
      }
#endif
    }

   private:
    friend class MetricsRegistry;
    Histogram(MetricsRegistry* registry, std::uint32_t slot)
        : registry_(registry), slot_(slot) {}
    MetricsRegistry* registry_ = nullptr;
    std::uint32_t slot_ = 0;
  };

  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process registry every built-in instrumentation site reports to.
  /// Intentionally leaked: worker threads may still record during static
  /// destruction.
  static MetricsRegistry& global();

  /// Get-or-create by name; throws Error if the name exists with a
  /// different kind.  Registration takes the registry mutex — cache the
  /// handle, don't look it up per record.
  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  Histogram histogram(const std::string& name);

  /// Deterministic fold of all shards into a name-sorted snapshot.
  MetricsSnapshot snapshot() const;
  /// Zeroes every cell in every shard (names and handles stay registered).
  void reset();

 private:
  struct Shard;
  struct Meta {
    MetricKind kind;
    std::uint32_t slot;
  };

  void counter_add(std::uint32_t slot, std::uint64_t n);
  void histogram_record(std::uint32_t slot, double us);
  Shard& local_shard();
  Shard* attach_shard();

  /// Unique per registry instance, never reused: the thread-local shard
  /// cache keys on it, so a stale cache entry for a destroyed registry can
  /// never alias a new one.
  const std::uint64_t uid_;

  mutable std::mutex mutex_;
  std::map<std::string, Meta> metrics_;
  std::uint32_t counter_slots_ = 0;
  std::uint32_t histogram_slots_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<std::atomic<std::int64_t>>> gauges_;
};

}  // namespace sfc
