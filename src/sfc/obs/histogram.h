// Shared latency accounting for the observability layer.
//
// LatencyHistogram is the one histogram shape every subsystem reports with:
// 32 log2 buckets over microseconds, fixed size, merge-friendly — the
// operator-dashboard instrument, not a benchmark one.  It started life inside
// ServerHealth; the serving layer still embeds it there, and the metrics
// registry (sfc/obs/metrics.h) folds its thread shards into this same type so
// a snapshot consumer only ever sees one histogram representation.
//
// nearest_rank_percentile is the *exact* companion: replay and chaos reports
// keep their raw latency vectors and must report exact percentiles (a log2
// bucket edge would halve their resolution and wobble gate math), so the one
// nearest-rank definition lives here instead of being re-derived per caller.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace sfc {

/// Log-scale latency histogram: bucket i counts samples whose microsecond
/// value, rounded up, has bit width i — roughly (2^(i-1), 2^i] us, with
/// bucket 0 holding only zero/negative samples and bucket 31 saturating.
/// Fixed size, lock-friendly, and good to ~2x resolution across us..minutes.
struct LatencyHistogram {
  std::array<std::uint64_t, 32> buckets{};
  std::uint64_t count = 0;
  /// Total recorded time, kept in integer nanoseconds so merges fold
  /// deterministically in any order (export surfaces divide back to us).
  std::uint64_t sum_ns = 0;

  void record_us(double us);
  /// Nearest-rank percentile, reported as the upper edge (2^i us) of the
  /// bucket holding that rank; 0 when empty.
  double percentile_us(double fraction) const;
  double sum_us() const { return static_cast<double>(sum_ns) / 1000.0; }
  /// Bucket-wise accumulation; the shard fold of the metrics registry.
  void merge(const LatencyHistogram& other);
  void reset();
};

/// Exact nearest-rank percentile over raw latency samples: rank
/// ceil(fraction * n) clamped to [1, n], 0 when empty.  Sorts `latencies_us`
/// in place (idempotent across repeated calls).
double nearest_rank_percentile(std::vector<double>& latencies_us,
                               double fraction);

}  // namespace sfc
