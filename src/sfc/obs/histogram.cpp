#include "sfc/obs/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>

namespace sfc {

void LatencyHistogram::record_us(double us) {
  const std::uint64_t whole =
      us <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(std::ceil(us)));
  const int bucket = std::min(31, static_cast<int>(std::bit_width(whole)));
  ++buckets[static_cast<std::size_t>(bucket)];
  ++count;
  if (us > 0.0) {
    // Clamp before the ns conversion: llround past int64 range is undefined,
    // and a sample measured in centuries has nothing left to say anyway.
    sum_ns += static_cast<std::uint64_t>(
        std::llround(std::min(us, 9.0e15) * 1000.0));
  }
}

double LatencyHistogram::percentile_us(double fraction) const {
  if (count == 0) return 0.0;
  const double rank = std::ceil(fraction * static_cast<double>(count));
  const auto target = static_cast<std::uint64_t>(
      std::min<double>(static_cast<double>(count),
                       std::max<double>(1.0, rank)));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    seen += buckets[b];
    if (seen >= target) {
      return b == 0 ? 1.0 : std::ldexp(1.0, static_cast<int>(b));
    }
  }
  return std::ldexp(1.0, 31);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    buckets[b] += other.buckets[b];
  }
  count += other.count;
  sum_ns += other.sum_ns;
}

void LatencyHistogram::reset() { *this = LatencyHistogram{}; }

double nearest_rank_percentile(std::vector<double>& latencies_us,
                               double fraction) {
  if (latencies_us.empty()) return 0.0;
  std::sort(latencies_us.begin(), latencies_us.end());
  const double rank =
      std::ceil(fraction * static_cast<double>(latencies_us.size()));
  const std::size_t at = std::min<std::size_t>(
      latencies_us.size(),
      std::max<std::size_t>(1, static_cast<std::size_t>(rank)));
  return latencies_us[at - 1];
}

}  // namespace sfc
