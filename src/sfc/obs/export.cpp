#include "sfc/obs/export.h"

#include <cmath>
#include <cstdio>

namespace sfc {

namespace {

std::string fixed3(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.3f", value);
  return buffer;
}

std::string prometheus_name(const std::string& name) {
  std::string out = "sfc_";
  for (const char c : name) {
    out += (c == '.' || c == '-') ? '_' : c;
  }
  return out;
}

}  // namespace

std::string metrics_json(const MetricsSnapshot& snapshot) {
  std::string out = "{\n  \"metrics\": {";
  bool first = true;
  for (const MetricValue& metric : snapshot.metrics) {
    if (!first) out += ',';
    first = false;
    out += "\n    \"" + metric.name + "\": ";
    if (metric.kind == MetricKind::kHistogram) {
      const LatencyHistogram& h = metric.histogram;
      out += "{\"count\": " + std::to_string(h.count);
      out += ", \"sum_us\": " + fixed3(h.sum_us());
      out += ", \"p50_us\": " + fixed3(h.percentile_us(0.50));
      out += ", \"p90_us\": " + fixed3(h.percentile_us(0.90));
      out += ", \"p99_us\": " + fixed3(h.percentile_us(0.99));
      out += ", \"buckets\": [";
      for (std::size_t b = 0; b < h.buckets.size(); ++b) {
        if (b > 0) out += ", ";
        out += std::to_string(h.buckets[b]);
      }
      out += "]}";
    } else {
      out += std::to_string(metric.value);
    }
  }
  out += "\n  }\n}\n";
  return out;
}

std::string metrics_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const MetricValue& metric : snapshot.metrics) {
    const std::string name = prometheus_name(metric.name);
    switch (metric.kind) {
      case MetricKind::kCounter:
        out += "# TYPE " + name + " counter\n";
        out += name + " " + std::to_string(metric.value) + "\n";
        break;
      case MetricKind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + " " + std::to_string(metric.value) + "\n";
        break;
      case MetricKind::kHistogram: {
        const LatencyHistogram& h = metric.histogram;
        out += "# TYPE " + name + " histogram\n";
        // Bucket b's reported upper edge is 2^b us (percentile_us uses the
        // same convention); bucket 0 holds zero/negative samples and folds
        // into the first cumulative line.
        std::uint64_t cumulative = h.buckets[0];
        for (std::size_t b = 1; b < h.buckets.size(); ++b) {
          cumulative += h.buckets[b];
          out += name + "_bucket{le=\"" +
                 fixed3(std::ldexp(1.0, static_cast<int>(b))) + "\"} " +
                 std::to_string(cumulative) + "\n";
        }
        out += name + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
        out += name + "_count " + std::to_string(h.count) + "\n";
        out += name + "_sum " + fixed3(h.sum_us()) + "\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace sfc
