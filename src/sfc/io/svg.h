// SVG export of 2-D curve traversals (for the curve_gallery example).
#pragma once

#include <string>

#include "sfc/curves/space_filling_curve.h"

namespace sfc {

struct SvgOptions {
  double cell_px = 24.0;     // pixels per grid cell
  double stroke_px = 2.0;    // polyline width
  bool draw_grid = true;     // light background lattice
};

/// Renders the curve as an SVG document: a polyline through cell centers in
/// key order (jumps of non-continuous curves appear as long chords).
std::string render_curve_svg(const SpaceFillingCurve& curve,
                             const SvgOptions& options = {});

/// Writes `content` to `path`; returns false on I/O failure.
bool write_text_file(const std::string& path, const std::string& content);

}  // namespace sfc
