#include "sfc/io/svg.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace sfc {

std::string render_curve_svg(const SpaceFillingCurve& curve,
                             const SvgOptions& options) {
  const Universe& u = curve.universe();
  if (u.dim() != 2) std::abort();
  const coord_t side = u.side();
  const double size = options.cell_px * side;

  auto cx = [&](coord_t x) { return options.cell_px * (x + 0.5); };
  // x2 grows upward; SVG y grows downward.
  auto cy = [&](coord_t y) { return size - options.cell_px * (y + 0.5); };

  std::ostringstream out;
  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << size
      << "\" height=\"" << size << "\" viewBox=\"0 0 " << size << " " << size
      << "\">\n";
  out << "  <rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";

  if (options.draw_grid) {
    out << "  <g stroke=\"#dddddd\" stroke-width=\"1\">\n";
    for (coord_t i = 0; i <= side; ++i) {
      const double pos = options.cell_px * i;
      out << "    <line x1=\"" << pos << "\" y1=\"0\" x2=\"" << pos
          << "\" y2=\"" << size << "\"/>\n";
      out << "    <line x1=\"0\" y1=\"" << pos << "\" x2=\"" << size
          << "\" y2=\"" << pos << "\"/>\n";
    }
    out << "  </g>\n";
  }

  out << "  <polyline fill=\"none\" stroke=\"#1f77b4\" stroke-width=\""
      << options.stroke_px << "\" points=\"";
  for (index_t key = 0; key < u.cell_count(); ++key) {
    const Point p = curve.point_at(key);
    out << (key == 0 ? "" : " ") << cx(p[0]) << "," << cy(p[1]);
  }
  out << "\"/>\n";

  const Point start = curve.point_at(0);
  const Point end = curve.point_at(u.cell_count() - 1);
  out << "  <circle cx=\"" << cx(start[0]) << "\" cy=\"" << cy(start[1])
      << "\" r=\"" << options.cell_px / 5 << "\" fill=\"#2ca02c\"/>\n";
  out << "  <circle cx=\"" << cx(end[0]) << "\" cy=\"" << cy(end[1])
      << "\" r=\"" << options.cell_px / 5 << "\" fill=\"#d62728\"/>\n";
  out << "</svg>\n";
  return out.str();
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

}  // namespace sfc
