#include "sfc/io/ascii_grid.h"

#include <cstdlib>
#include <sstream>
#include <vector>

namespace sfc {

namespace {

void require_2d(const SpaceFillingCurve& curve) {
  if (curve.universe().dim() != 2) std::abort();
}

std::string to_binary(index_t value, int digits) {
  std::string out(static_cast<std::size_t>(digits), '0');
  for (int b = 0; b < digits; ++b) {
    if (value & (index_t{1} << b)) {
      out[static_cast<std::size_t>(digits - 1 - b)] = '1';
    }
  }
  return out;
}

}  // namespace

std::string render_key_grid(const SpaceFillingCurve& curve) {
  require_2d(curve);
  const Universe& u = curve.universe();
  const coord_t side = u.side();
  const std::size_t width = std::to_string(u.cell_count() - 1).size();

  std::ostringstream out;
  for (coord_t row = side; row-- > 0;) {  // top row = max x2
    for (coord_t col = 0; col < side; ++col) {
      const index_t key = curve.index_of(Point{col, row});
      std::string text = std::to_string(key);
      out << (col == 0 ? "" : " ");
      out << std::string(width - text.size(), ' ') << text;
    }
    out << '\n';
  }
  return out.str();
}

std::string render_key_grid_binary(const SpaceFillingCurve& curve) {
  require_2d(curve);
  const Universe& u = curve.universe();
  if (!u.power_of_two_side()) std::abort();
  const coord_t side = u.side();
  const int digits = 2 * u.level_bits();

  std::ostringstream out;
  for (coord_t row = side; row-- > 0;) {
    for (coord_t col = 0; col < side; ++col) {
      const index_t key = curve.index_of(Point{col, row});
      out << (col == 0 ? "" : " ") << to_binary(key, digits);
    }
    out << '\n';
  }
  return out.str();
}

std::string render_curve_path(const SpaceFillingCurve& curve) {
  require_2d(curve);
  const Universe& u = curve.universe();
  const coord_t side = u.side();
  const index_t n = u.cell_count();

  // Character canvas: cells at even positions, connectors between them.
  const std::size_t canvas_w = 2 * static_cast<std::size_t>(side) - 1;
  const std::size_t canvas_h = canvas_w;
  std::vector<std::string> canvas(canvas_h, std::string(canvas_w, ' '));

  auto cell_px = [&](const Point& p) {
    // x2 grows upward; row 0 of the canvas is the top.
    const std::size_t cx = 2 * static_cast<std::size_t>(p[0]);
    const std::size_t cy = canvas_h - 1 - 2 * static_cast<std::size_t>(p[1]);
    return std::pair<std::size_t, std::size_t>{cx, cy};
  };

  for (index_t key = 0; key < n; ++key) {
    const auto [cx, cy] = cell_px(curve.point_at(key));
    canvas[cy][cx] = 'o';
  }
  canvas[cell_px(curve.point_at(0)).second][cell_px(curve.point_at(0)).first] = 'S';
  canvas[cell_px(curve.point_at(n - 1)).second][cell_px(curve.point_at(n - 1)).first] = 'E';

  for (index_t key = 0; key + 1 < n; ++key) {
    const Point a = curve.point_at(key);
    const Point b = curve.point_at(key + 1);
    const auto [ax, ay] = cell_px(a);
    const auto [bx, by] = cell_px(b);
    if (ay == by && (ax + 2 == bx || bx + 2 == ax)) {
      canvas[ay][(ax + bx) / 2] = '-';
    } else if (ax == bx && (ay + 2 == by || by + 2 == ay)) {
      canvas[(ay + by) / 2][ax] = '|';
    } else {
      // Non-adjacent consecutive cells (Z, Gray, random curves): mark both
      // endpoints of the jump with '*' (drawing the diagonal would overlap
      // other cells on an ASCII canvas).
      if (canvas[ay][ax] == 'o') canvas[ay][ax] = '*';
      if (canvas[by][bx] == 'o') canvas[by][bx] = '*';
    }
  }

  std::ostringstream out;
  for (const std::string& line : canvas) out << line << '\n';
  return out.str();
}

}  // namespace sfc
