// Column-aligned console tables and CSV output for the reproduction benches.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace sfc {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must have the same arity as the headers.
  void add_row(std::vector<std::string> cells);

  std::size_t row_count() const { return rows_.size(); }

  /// Pretty console rendering with a header underline.
  void print(std::ostream& out) const;

  /// RFC-4180-ish CSV (quotes cells containing commas/quotes/newlines).
  std::string to_csv() const;

  /// Formats a double with `precision` significant digits.
  static std::string fmt(double value, int precision = 6);
  static std::string fmt_int(std::uint64_t value);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sfc
