#include "sfc/io/table.h"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <ostream>
#include <sstream>

namespace sfc {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) std::abort();
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      out << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) out << ' ';
    }
    out << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string Table::to_csv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string quoted = "\"";
    for (char ch : cell) {
      if (ch == '"') quoted += '"';
      quoted += ch;
    }
    quoted += '"';
    return quoted;
  };
  std::ostringstream out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << (c == 0 ? "" : ",") << escape(headers_[c]);
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : ",") << escape(row[c]);
    }
    out << '\n';
  }
  return out.str();
}

std::string Table::fmt(double value, int precision) {
  std::ostringstream out;
  out.precision(precision);
  out << value;
  return out.str();
}

std::string Table::fmt_int(std::uint64_t value) { return std::to_string(value); }

}  // namespace sfc
