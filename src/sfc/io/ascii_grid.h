// ASCII renderings of curves on 2-D grids, used to regenerate the paper's
// Figures 1, 3, and 4 on the console.
//
// Grids are drawn with dimension 1 (x[0]) increasing to the right and
// dimension 2 (x[1]) increasing upward, matching the paper's axes.
#pragma once

#include <string>

#include "sfc/curves/space_filling_curve.h"

namespace sfc {

/// Key assignment grid: each cell shows π(α) in decimal (Figure 3/4 left).
std::string render_key_grid(const SpaceFillingCurve& curve);

/// Key assignment grid in binary with 2k digits per cell, reproducing the
/// bit-interleave view on the left of Figure 3.  2-D power-of-two only.
std::string render_key_grid_binary(const SpaceFillingCurve& curve);

/// Visit-order picture: draws the traversal with unicode arrows between
/// consecutive cells (Figure 3/4 right).  2-D only; intended for small grids.
std::string render_curve_path(const SpaceFillingCurve& curve);

}  // namespace sfc
