// The single exception base of the sfc library surface.
//
// Every recoverable library error — invalid curve construction arguments,
// bad index datasets, out-of-universe queries, partition/decomposition
// argument mismatches, all-pairs size limits, corrupt index files — derives
// from sfc::Error, so a driver (sfctool, a serving process embedding the
// library) can catch one type at its tool boundary and report what() without
// enumerating subsystems.  Subsystem-specific subclasses carry structured
// accessors for callers that want to recover programmatically (e.g. clamp a
// partition count and retry).
#pragma once

#include <stdexcept>
#include <string>

namespace sfc {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace sfc
