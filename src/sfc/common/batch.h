// Shared batch-chunk sizes for the streaming encode/decode pipelines.
//
// Every hot path that feeds points through index_of_batch / point_at_batch
// does so in fixed-size slices so peak memory stays O(slice), not O(n).
// The sizes live here (rather than per-module file-local constants) so the
// slab walker, the sort key fusion, and the box-streaming range paths stay
// tuned together: a slice has to be large enough to amortize the per-call
// virtual dispatch and small enough to stay cache- and stack-resident.
#pragma once

#include <cstddef>

namespace sfc {

/// Cells per heap-buffered encode slice in the slab walker and the fused
/// encode-and-count pass of sort_by_curve_key.
inline constexpr std::size_t kEncodeSliceCells = 4096;

/// Cells per stack-buffered slice when streaming a Box's cells through the
/// batched encoder (range-query run counting and the enumeration-based
/// cover fallback).  Smaller than kEncodeSliceCells because the Point
/// buffer lives on the stack (sizeof(Point) = 40: ~40 KiB per slice).
inline constexpr std::size_t kBoxSliceCells = 1024;

}  // namespace sfc
