#include "sfc/common/math.h"

#include <cstdlib>
#include <limits>

namespace sfc {

std::optional<index_t> checked_ipow(index_t base, int exp) {
  constexpr index_t kLimit = static_cast<index_t>(1) << 63;
  index_t result = 1;
  for (int i = 0; i < exp; ++i) {
    if (base != 0 && result > (kLimit - 1) / base) return std::nullopt;
    result *= base;
  }
  return result;
}

index_t ipow(index_t base, int exp) {
  const auto value = checked_ipow(base, exp);
  if (!value.has_value()) std::abort();
  return *value;
}

std::optional<coord_t> exact_root(index_t value, int d) {
  if (d <= 0) return std::nullopt;
  if (d == 1) {
    if (value > std::numeric_limits<coord_t>::max()) return std::nullopt;
    return static_cast<coord_t>(value);
  }
  // Binary search for r with r^d == value.
  index_t lo = 0, hi = value + 1;
  while (lo + 1 < hi) {
    const index_t mid = lo + (hi - lo) / 2;
    const auto power = checked_ipow(mid, d);
    if (power.has_value() && *power <= value) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const auto power = checked_ipow(lo, d);
  if (power.has_value() && *power == value &&
      lo <= std::numeric_limits<coord_t>::max()) {
    return static_cast<coord_t>(lo);
  }
  return std::nullopt;
}

int floor_log2(index_t value) {
  int result = -1;
  while (value != 0) {
    value >>= 1;
    ++result;
  }
  return result;
}

index_t side_pow_dm1(coord_t side, int d) {
  return ipow(static_cast<index_t>(side), d - 1);
}

u128 lemma2_total(index_t n) {
  if (n == 0) return 0;
  // (n-1)n(n+1) is always divisible by 3; divide the factor that is.
  u128 a = n - 1, b = n, c = n + 1;
  if (a % 3 == 0) {
    a /= 3;
  } else if (b % 3 == 0) {
    b /= 3;
  } else {
    c /= 3;
  }
  return a * b * c;
}

}  // namespace sfc
