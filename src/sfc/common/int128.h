// Minimal 128-bit unsigned integer helpers.
//
// Distance sums in the stretch metrics are exact integers that can exceed
// 64 bits (e.g. S_A'(pi) = (n-1)n(n+1)/3 is ~n^3), so all total-distance
// accumulation is done in unsigned __int128 and only converted to floating
// point at the reporting boundary.
#pragma once

#include <cstdint>
#include <string>

namespace sfc {

__extension__ typedef unsigned __int128 u128;  // NOLINT: GCC/Clang extension

/// Decimal rendering (std::to_string has no 128-bit overload).
std::string to_string(u128 value);

/// Lossy conversion for ratio reporting; exact for values below 2^64 and
/// within long-double precision above.
long double to_long_double(u128 value);

/// Exact equality helper against a 64-bit value.
constexpr bool equals_u64(u128 value, std::uint64_t expected) {
  return value == static_cast<u128>(expected);
}

}  // namespace sfc
