// Fundamental fixed-width types shared by every SFC-Stretch module.
//
// The paper's universe is a d-dimensional grid with n = side^d cells and an
// SFC is a bijection onto {0, ..., n-1}; keys therefore need 64 bits and
// coordinates 32 bits.  Dimensions are small constants (the paper assumes
// d = O(1)); we fix an upper bound so Point can be a flat array.
#pragma once

#include <cstdint>

namespace sfc {

/// One-dimensional key assigned by a space filling curve (position on the
/// curve), and also the type of cell counts `n`.
using index_t = std::uint64_t;

/// A single grid coordinate, `0 <= x_i < side`.
using coord_t = std::uint32_t;

/// Maximum supported dimensionality.  The paper treats d as a constant; 8 is
/// enough for every experiment while keeping Point a small value type.
inline constexpr int kMaxDim = 8;

}  // namespace sfc
