#include "sfc/common/int128.h"

#include <algorithm>

namespace sfc {

std::string to_string(u128 value) {
  if (value == 0) return "0";
  std::string digits;
  while (value != 0) {
    digits.push_back(static_cast<char>('0' + static_cast<int>(value % 10)));
    value /= 10;
  }
  std::reverse(digits.begin(), digits.end());
  return digits;
}

long double to_long_double(u128 value) {
  constexpr u128 kHigh = static_cast<u128>(1) << 64;
  const auto hi = static_cast<std::uint64_t>(value / kHigh);
  const auto lo = static_cast<std::uint64_t>(value % kHigh);
  return static_cast<long double>(hi) * 18446744073709551616.0L +
         static_cast<long double>(lo);
}

}  // namespace sfc
