// Exact small-integer math used throughout the bound formulas.
//
// Every closed form in the paper is a function of n = side^d; evaluating the
// bounds with pow(double) would silently lose exactness for quantities that
// are provably integers (e.g. n^{1-1/d} = side^{d-1} when the side is a power
// of two).  These helpers keep integer paths exact and detect overflow.
#pragma once

#include <cstdint>
#include <optional>

#include "sfc/common/int128.h"
#include "sfc/common/types.h"

namespace sfc {

/// side^exp with overflow detection; nullopt when the result exceeds 2^63-1
/// (we keep one sign bit of headroom so downstream differences stay safe).
std::optional<index_t> checked_ipow(index_t base, int exp);

/// side^exp, terminating the program on overflow.  Used where the caller has
/// already validated the configuration.
index_t ipow(index_t base, int exp);

/// Exact integer d-th root when `value` is a perfect d-th power.
std::optional<coord_t> exact_root(index_t value, int d);

/// True iff value is a power of two (value >= 1).
constexpr bool is_pow2(index_t value) {
  return value != 0 && (value & (value - 1)) == 0;
}

/// floor(log2(value)) for value >= 1.
int floor_log2(index_t value);

/// n^{1-1/d} evaluated exactly as side^{d-1} when side is known.
index_t side_pow_dm1(coord_t side, int d);

/// Exact (n-1)n(n+1)/3 — the paper's Lemma 2 total ordered-pair curve
/// distance, an integer for every n (one of n-1, n, n+1 is divisible by 3).
u128 lemma2_total(index_t n);

}  // namespace sfc
