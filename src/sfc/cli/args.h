// Minimal command-line parsing for the sfctool utility.
//
// Grammar: `tool <subcommand> [--flag] [--key value] [--key=value] ...`.
// Unknown flags are errors; every lookup states its default, so `--help`
// output can be generated from the same table the parser checks against.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sfc::cli {

class Args {
 public:
  /// Parses argv (excluding the program name).  On grammar errors, the
  /// object is marked invalid and `error()` describes the problem.
  static Args parse(const std::vector<std::string>& argv);

  bool valid() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  /// First positional token (the subcommand), empty if none.
  const std::string& subcommand() const { return subcommand_; }

  bool has(const std::string& key) const;

  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  /// nullopt when present but unparsable; `fallback` when absent.
  std::optional<std::int64_t> get_int(const std::string& key,
                                      std::int64_t fallback) const;
  std::optional<double> get_double(const std::string& key,
                                   double fallback) const;
  /// A bare `--flag` (no value) is true.
  bool get_flag(const std::string& key) const;

  /// Keys that were provided but never queried — used to reject typos.
  std::vector<std::string> unused_keys() const;

 private:
  std::string subcommand_;
  std::map<std::string, std::string> values_;  // key -> value ("" for bare flags)
  mutable std::map<std::string, bool> queried_;
  std::string error_;
};

}  // namespace sfc::cli
