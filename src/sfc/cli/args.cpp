#include "sfc/cli/args.h"

#include <cstdlib>

namespace sfc::cli {

Args Args::parse(const std::vector<std::string>& argv) {
  Args args;
  std::size_t i = 0;
  if (i < argv.size() && argv[i].rfind("--", 0) != 0) {
    args.subcommand_ = argv[i++];
  }
  while (i < argv.size()) {
    const std::string& token = argv[i];
    if (token.rfind("--", 0) != 0) {
      args.error_ = "unexpected positional argument '" + token + "'";
      return args;
    }
    std::string key = token.substr(2);
    std::string value;
    const auto equals = key.find('=');
    if (equals != std::string::npos) {
      value = key.substr(equals + 1);
      key = key.substr(0, equals);
      ++i;
    } else if (i + 1 < argv.size() && argv[i + 1].rfind("--", 0) != 0) {
      value = argv[i + 1];
      i += 2;
    } else {
      ++i;  // bare flag
    }
    if (key.empty()) {
      args.error_ = "empty flag name in '" + token + "'";
      return args;
    }
    if (args.values_.count(key) != 0) {
      args.error_ = "duplicate flag --" + key;
      return args;
    }
    args.values_[key] = value;
  }
  return args;
}

bool Args::has(const std::string& key) const {
  queried_[key] = true;
  return values_.count(key) != 0;
}

std::string Args::get_string(const std::string& key,
                             const std::string& fallback) const {
  queried_[key] = true;
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::optional<std::int64_t> Args::get_int(const std::string& key,
                                          std::int64_t fallback) const {
  queried_[key] = true;
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    std::size_t consumed = 0;
    const std::int64_t value = std::stoll(it->second, &consumed);
    if (consumed != it->second.size()) return std::nullopt;
    return value;
  } catch (...) {
    return std::nullopt;
  }
}

std::optional<double> Args::get_double(const std::string& key,
                                       double fallback) const {
  queried_[key] = true;
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    std::size_t consumed = 0;
    const double value = std::stod(it->second, &consumed);
    if (consumed != it->second.size()) return std::nullopt;
    return value;
  } catch (...) {
    return std::nullopt;
  }
}

bool Args::get_flag(const std::string& key) const {
  queried_[key] = true;
  return values_.count(key) != 0;
}

std::vector<std::string> Args::unused_keys() const {
  std::vector<std::string> unused;
  for (const auto& [key, value] : values_) {
    if (queried_.count(key) == 0) unused.push_back(key);
  }
  return unused;
}

}  // namespace sfc::cli
