// A small fixed-size thread pool.
//
// The stretch metrics are embarrassingly parallel sweeps over cells; the pool
// provides the shared-memory worker substrate (in the spirit of an OpenMP
// parallel region) without any external dependency.  Work is submitted as
// batches of index-addressed tasks; the pool guarantees that `run_batch`
// returns only after every task of the batch has completed, and rethrows the
// first task exception on the caller thread.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sfc {

class ThreadPool {
 public:
  /// Creates `thread_count` workers; 0 means std::thread::hardware_concurrency.
  explicit ThreadPool(unsigned thread_count = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads participating in a batch (helpers + the calling thread).
  unsigned thread_count() const { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Runs fn(task_index) for task_index in [0, task_count), distributing
  /// tasks across the pool (the calling thread also participates).  Blocks
  /// until all tasks finish.  Task indices are claimed atomically, so tasks
  /// may run in any order; callers needing determinism must make each task
  /// independent and combine results by task index afterwards.
  void run_batch(std::uint64_t task_count,
                 const std::function<void(std::uint64_t)>& fn);

  /// Process-wide default pool (lazily constructed with hardware threads).
  static ThreadPool& shared();

 private:
  struct Batch;

  void worker_loop();
  void run_tasks(Batch& batch);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable batch_done_;
  Batch* current_ = nullptr;        // guarded by mutex_
  std::uint64_t generation_ = 0;    // bumps once per run_batch; guarded by mutex_
  bool shutting_down_ = false;
};

}  // namespace sfc
