// Deterministic chunked parallel loops and reductions.
//
// The index range [0, count) is split into fixed-size chunks whose boundaries
// depend only on `count` and the grain size — never on the thread count or
// scheduling order.  parallel_reduce stores one partial result per chunk and
// combines them sequentially in chunk order, so floating-point reductions are
// bit-identical across runs and across any number of threads.  This is the
// "deterministic chunked reduction" design choice called out in DESIGN.md.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sfc/parallel/thread_pool.h"

namespace sfc {

/// Default chunk grain: large enough to amortize dispatch, small enough to
/// load-balance the boundary-heavy metric sweeps.
inline constexpr std::uint64_t kDefaultGrain = 1 << 16;

struct ChunkRange {
  std::uint64_t begin;
  std::uint64_t end;
  std::uint64_t chunk_index;
};

/// Number of chunks the range [0, count) splits into with the given grain.
constexpr std::uint64_t chunk_count(std::uint64_t count, std::uint64_t grain) {
  return count == 0 ? 0 : (count + grain - 1) / grain;
}

/// Runs body(ChunkRange) over every chunk, in parallel on `pool`.
void parallel_for_chunks(ThreadPool& pool, std::uint64_t count, std::uint64_t grain,
                         const std::function<void(const ChunkRange&)>& body);

/// Convenience element-wise loop: body(i) for every i in [0, count).
void parallel_for(ThreadPool& pool, std::uint64_t count,
                  const std::function<void(std::uint64_t)>& body,
                  std::uint64_t grain = kDefaultGrain);

/// Deterministic reduction.  `map` produces the partial result of one chunk;
/// partials are combined with `combine` strictly in chunk order, starting
/// from `identity`.
template <typename T, typename MapFn, typename CombineFn>
T parallel_reduce(ThreadPool& pool, std::uint64_t count, std::uint64_t grain,
                  T identity, MapFn&& map, CombineFn&& combine) {
  const std::uint64_t chunks = chunk_count(count, grain);
  std::vector<T> partials(chunks, identity);
  parallel_for_chunks(pool, count, grain, [&](const ChunkRange& range) {
    partials[range.chunk_index] = map(range);
  });
  T total = identity;
  for (const T& partial : partials) total = combine(total, partial);
  return total;
}

}  // namespace sfc
