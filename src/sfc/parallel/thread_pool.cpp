#include "sfc/parallel/thread_pool.h"

#include <atomic>
#include <exception>

namespace sfc {

struct ThreadPool::Batch {
  std::uint64_t task_count = 0;
  const std::function<void(std::uint64_t)>* fn = nullptr;
  std::atomic<std::uint64_t> next_task{0};
  std::atomic<unsigned> active_workers{0};
  std::exception_ptr first_error;  // guarded by the pool mutex
};

ThreadPool::ThreadPool(unsigned thread_count) {
  if (thread_count == 0) {
    thread_count = std::thread::hardware_concurrency();
    if (thread_count == 0) thread_count = 1;
  }
  // The calling thread participates in run_batch, so spawn one fewer worker.
  const unsigned helpers = thread_count > 1 ? thread_count - 1 : 0;
  workers_.reserve(helpers);
  for (unsigned i = 0; i < helpers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::run_tasks(Batch& batch) {
  while (true) {
    const std::uint64_t task = batch.next_task.fetch_add(1, std::memory_order_relaxed);
    if (task >= batch.task_count) break;
    try {
      (*batch.fn)(task);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!batch.first_error) batch.first_error = std::current_exception();
    }
  }
}

void ThreadPool::run_batch(std::uint64_t task_count,
                           const std::function<void(std::uint64_t)>& fn) {
  if (task_count == 0) return;
  Batch batch;
  batch.task_count = task_count;
  batch.fn = &fn;

  {
    std::lock_guard<std::mutex> lock(mutex_);
    current_ = &batch;
    ++generation_;
  }
  work_ready_.notify_all();

  // The caller helps drain the batch.
  run_tasks(batch);

  // Unpublish the batch, then wait for helpers that joined it to finish.
  // Workers only touch the batch after observing current_ != nullptr and
  // incrementing active_workers under the same mutex, so once current_ is
  // null and active_workers reaches zero the batch can safely go away.
  std::unique_lock<std::mutex> lock(mutex_);
  current_ = nullptr;
  batch_done_.wait(lock, [&] { return batch.active_workers.load() == 0; });
  if (batch.first_error) std::rethrow_exception(batch.first_error);
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  while (true) {
    Batch* batch = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      // Waiting on a *new* generation prevents a worker from re-joining a
      // batch it already drained while the caller is still unpublishing it.
      work_ready_.wait(lock, [&] {
        return shutting_down_ || (current_ != nullptr && generation_ != seen_generation);
      });
      if (shutting_down_) return;
      batch = current_;
      seen_generation = generation_;
      batch->active_workers.fetch_add(1);
    }
    run_tasks(*batch);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      batch->active_workers.fetch_sub(1);
    }
    batch_done_.notify_all();
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace sfc
