#include "sfc/parallel/parallel_for.h"

#include <algorithm>

namespace sfc {

void parallel_for_chunks(ThreadPool& pool, std::uint64_t count, std::uint64_t grain,
                         const std::function<void(const ChunkRange&)>& body) {
  if (count == 0) return;
  if (grain == 0) grain = 1;
  const std::uint64_t chunks = chunk_count(count, grain);
  pool.run_batch(chunks, [&](std::uint64_t chunk) {
    ChunkRange range;
    range.chunk_index = chunk;
    range.begin = chunk * grain;
    range.end = std::min(count, range.begin + grain);
    body(range);
  });
}

void parallel_for(ThreadPool& pool, std::uint64_t count,
                  const std::function<void(std::uint64_t)>& body,
                  std::uint64_t grain) {
  parallel_for_chunks(pool, count, grain, [&](const ChunkRange& range) {
    for (std::uint64_t i = range.begin; i < range.end; ++i) body(i);
  });
}

}  // namespace sfc
