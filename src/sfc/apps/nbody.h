// Barnes-Hut N-body on Morton-ordered particles (paper intro ref [26],
// Warren & Salmon's hashed oct-tree).
//
// The paper motivates NN-stretch with N-body codes: the dominant
// interactions are between spatially near particles, so storing particles in
// SFC order keeps interacting pairs close in memory and makes contiguous
// key ranges good processor domains.  This substrate implements:
//   * particle quantization to a 2^b grid + Morton key sort,
//   * a classic Barnes-Hut quad/oct-tree with center-of-mass approximation,
//   * softened gravity with a theta opening criterion,
//   * direct O(n²) summation for accuracy validation, and
//   * a leapfrog integrator with energy diagnostics.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sfc/common/types.h"

namespace sfc {

struct Particle {
  std::array<double, 3> pos{};  // in [0,1)^dim (unused components 0)
  std::array<double, 3> vel{};
  double mass = 1.0;
};

struct NBodyParams {
  int dim = 3;               // 2 or 3
  double theta = 0.5;        // opening angle
  double softening = 1e-3;   // Plummer softening length
  double gravity = 1.0;      // G
  int leaf_size = 8;         // max particles per leaf
  int level_bits = 10;       // Morton quantization bits per dimension
};

/// Clustered initial condition: `blobs` Gaussian clusters in [0,1)^dim with
/// small virial-ish velocities; deterministic in `seed`.
std::vector<Particle> make_clustered_particles(std::size_t count, int dim,
                                               int blobs, std::uint64_t seed);

class BarnesHut {
 public:
  BarnesHut(std::vector<Particle> particles, const NBodyParams& params);

  const std::vector<Particle>& particles() const { return particles_; }
  const NBodyParams& params() const { return params_; }

  /// Sorts particles by Morton key of their quantized position; returns the
  /// number of key inversions removed (0 when already sorted).
  std::uint64_t sort_by_morton();

  /// Tree-approximated accelerations (rebuilds the tree).
  std::vector<std::array<double, 3>> compute_accelerations();

  /// Exact O(n²) accelerations, for validation.
  std::vector<std::array<double, 3>> direct_accelerations() const;

  /// One leapfrog (kick-drift-kick) step using tree accelerations.
  void step(double dt);

  /// Exact total energy (kinetic + softened potential), O(n²).
  double total_energy() const;

  /// Nodes allocated by the last tree build.
  std::size_t last_tree_nodes() const { return nodes_.size(); }

  /// Morton key of a particle's quantized position (exposed for tests).
  index_t morton_key(const Particle& particle) const;

 private:
  struct Node {
    std::array<double, 3> center{};   // geometric center of the node's cube
    std::array<double, 3> com{};      // center of mass
    double mass = 0.0;
    double half_size = 0.0;
    std::uint32_t first = 0;          // particle range [first, first+count)
    std::uint32_t count = 0;
    std::array<std::int32_t, 8> children{};  // -1 = none
    bool leaf = true;
  };

  void build_tree();
  std::int32_t build_node(std::uint32_t first, std::uint32_t count,
                          const std::array<double, 3>& center, double half_size,
                          int depth);
  void accumulate(const Particle& target, std::int32_t node_index,
                  std::array<double, 3>& accel) const;

  std::vector<Particle> particles_;
  NBodyParams params_;
  std::vector<Node> nodes_;
  std::vector<Particle> scratch_;
};

}  // namespace sfc
