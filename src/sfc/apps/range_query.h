// Secondary-memory range queries over SFC-ordered data (paper intro refs
// [9, 14, 18]).
//
// When multi-dimensional records are stored in curve-key order (e.g. in a
// B-tree), a rectangular query touches as many disk seeks as the number of
// maximal runs of consecutive keys inside the query box — the "clustering"
// metric of Moon, Jagadish, Faloutsos & Saltz.  This module counts runs
// exactly for a given box and estimates the average over random boxes.
//
// Two engines produce bit-identical counts: the hierarchical cover engine
// (sfc/ranges, O(runs · log side) via subtree descent) and the streaming
// enumeration reference path (O(volume · log volume)).  The default picks
// the cover engine whenever the curve has subtree structure.
#pragma once

#include <cstdint>

#include "sfc/common/types.h"
#include "sfc/curves/space_filling_curve.h"
#include "sfc/grid/box.h"
#include "sfc/index/point_index.h"
#include "sfc/parallel/thread_pool.h"
#include "sfc/rng/sampling.h"

namespace sfc {

/// How count_key_runs / random_box_clustering compute the run count.
enum class RunCountEngine {
  /// kCover when the curve has subtree structure, else kEnumeration.
  kAuto,
  /// Hierarchical cover (RangeCoverEngine); falls back to enumeration for
  /// curves without subtree structure.
  kCover,
  /// Slab-streamed enumeration of every cell in the box — the reference
  /// implementation the cover path is verified against.
  kEnumeration,
};

/// Number of maximal runs of consecutive curve keys covering the box
/// (the clustering number of the query region).
index_t count_key_runs(const SpaceFillingCurve& curve, const Box& box,
                       RunCountEngine engine = RunCountEngine::kAuto);

/// The enumeration reference path: batch-encodes every cell of the box in
/// fixed-size slices, sorts, and counts the merged key runs (the shared
/// streaming loop lives in sfc/ranges cover_by_enumeration).
index_t count_key_runs_enumeration(const SpaceFillingCurve& curve,
                                   const Box& box);

struct ClusteringStats {
  coord_t extent = 0;          // box side length
  std::uint64_t samples = 0;
  double mean_runs = 0.0;
  double stderr_runs = 0.0;
  double max_runs = 0.0;
  index_t cells_per_box = 0;   // extent^d
};

struct ClusteringOptions {
  /// Worker pool for sampling; nullptr means ThreadPool::shared().  Each
  /// sample draws its boxes from a per-sample RNG stream and the per-sample
  /// run counts are reduced as exact integers, so the result is bit-identical
  /// across any thread count.
  ThreadPool* pool = nullptr;
  RunCountEngine engine = RunCountEngine::kAuto;
  /// Samples per deterministic reduction chunk.
  std::uint64_t grain = 64;
};

/// Average clustering number over `samples` uniformly placed cubic boxes of
/// the given extent.
ClusteringStats random_box_clustering(const SpaceFillingCurve& curve,
                                      coord_t extent, std::uint64_t samples,
                                      std::uint64_t seed,
                                      const ClusteringOptions& options = {});

/// Scan-efficiency of index-backed range queries (sfc/index): how much of
/// the stored data a rectangular query actually touches.
struct ScanEfficiencyStats {
  coord_t extent = 0;
  std::uint64_t samples = 0;
  std::uint64_t index_rows = 0;       ///< rows a full scan pays per query
  double mean_rows_returned = 0.0;
  double mean_rows_scanned = 0.0;     ///< == returned: exact covers overscan 0
  double mean_runs = 0.0;             ///< mean cover intervals per query
  double mean_runs_touched = 0.0;     ///< intervals resolving to >= 1 row
  /// index_rows / mean_rows_scanned — the row-touch advantage over a full
  /// scan (what bench/perf_index_query gates in wall clock).
  double full_scan_ratio = 0.0;
};

/// Runs `samples` uniformly placed extent^d box queries against the index
/// (per-sample RNG streams + deterministic reduction, like
/// random_box_clustering: bit-identical for any thread count/grain).
ScanEfficiencyStats random_box_scan_efficiency(
    const PointIndex& index, coord_t extent, std::uint64_t samples,
    std::uint64_t seed, const ClusteringOptions& options = {});

}  // namespace sfc
