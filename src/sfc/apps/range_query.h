// Secondary-memory range queries over SFC-ordered data (paper intro refs
// [9, 14, 18]).
//
// When multi-dimensional records are stored in curve-key order (e.g. in a
// B-tree), a rectangular query touches as many disk seeks as the number of
// maximal runs of consecutive keys inside the query box — the "clustering"
// metric of Moon, Jagadish, Faloutsos & Saltz.  This module counts runs
// exactly for a given box and estimates the average over random boxes.
#pragma once

#include <cstdint>

#include "sfc/common/types.h"
#include "sfc/curves/space_filling_curve.h"
#include "sfc/grid/box.h"
#include "sfc/rng/sampling.h"

namespace sfc {

/// Number of maximal runs of consecutive curve keys covering the box
/// (the clustering number of the query region).
index_t count_key_runs(const SpaceFillingCurve& curve, const Box& box);

struct ClusteringStats {
  coord_t extent = 0;          // box side length
  std::uint64_t samples = 0;
  double mean_runs = 0.0;
  double stderr_runs = 0.0;
  double max_runs = 0.0;
  index_t cells_per_box = 0;   // extent^d
};

/// Average clustering number over `samples` uniformly placed cubic boxes of
/// the given extent.
ClusteringStats random_box_clustering(const SpaceFillingCurve& curve,
                                      coord_t extent, std::uint64_t samples,
                                      std::uint64_t seed);

}  // namespace sfc
