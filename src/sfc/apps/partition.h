// SFC-based domain decomposition (paper intro refs [3, 22, 23]).
//
// Parallel codes partition a grid by cutting the curve into P contiguous key
// ranges.  The quality of the decomposition is governed by exactly the
// locality the stretch metrics capture: every NN pair whose endpoints fall in
// different blocks becomes inter-processor communication.  This module
// measures edge cut (communication volume) and block imbalance for any curve,
// letting the benches connect Davg to application-level cost.
#pragma once

#include <cstdint>
#include <vector>

#include "sfc/common/error.h"
#include "sfc/common/types.h"
#include "sfc/curves/space_filling_curve.h"
#include "sfc/parallel/thread_pool.h"

namespace sfc {

/// Thrown by evaluate_partition when `parts` is outside [1, n]; derives from
/// sfc::Error so drivers can recover (e.g. clamp and retry) instead of
/// aborting the process.
class PartitionArgumentError : public Error {
 public:
  PartitionArgumentError(int parts, index_t cell_count);
  int parts() const { return parts_; }
  index_t cell_count() const { return cell_count_; }

 private:
  int parts_;
  index_t cell_count_;
};

struct PartitionQuality {
  int parts = 0;
  /// NN pairs whose endpoints are assigned to different blocks.
  index_t edge_cut = 0;
  /// edge_cut / |NN_d|: fraction of neighbor interactions that cross blocks.
  double cut_fraction = 0.0;
  /// max block size / (n/P); 1.0 is perfectly balanced.
  double imbalance = 0.0;
  /// Number of blocks that are spatially *disconnected* (have at least two
  /// components under grid adjacency) — 0 for continuous curves like Hilbert
  /// on power-of-two splits, possibly positive for Z/random.
  int fragmented_blocks = 0;
};

struct PartitionOptions {
  ThreadPool* pool = nullptr;
  /// Computing fragmented_blocks costs an O(n) flood fill; disable for speed.
  bool count_fragments = true;
};

/// Splits the curve into `parts` contiguous key ranges of near-equal size
/// (block b gets keys [b*n/P, (b+1)*n/P)) and scores the decomposition.
/// Throws PartitionArgumentError when parts is outside [1, n].  Both modes
/// count the edge cut as strided forward-pair passes over slab-encoded keys
/// (sfc/metrics): with count_fragments on, an 8n-byte key table is built
/// once (shared by the edge cut and the flood fill); with it off, memory
/// stays O(slab) so huge universes can still be edge-cut scored.
PartitionQuality evaluate_partition(const SpaceFillingCurve& curve, int parts,
                                    const PartitionOptions& options = {});

/// The block id of a cell under the contiguous-range partition.
int partition_block(const SpaceFillingCurve& curve, int parts, const Point& cell);

}  // namespace sfc
