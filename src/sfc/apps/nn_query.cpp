#include "sfc/apps/nn_query.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <span>
#include <vector>

#include "sfc/grid/box.h"
#include "sfc/index/knn.h"
#include "sfc/sort/radix_sort.h"

namespace sfc {

namespace {

WindowQuantiles quantiles(std::vector<double>& values) {
  WindowQuantiles q;
  if (values.empty()) return q;
  radix_sort_doubles(values);
  double sum = 0.0;
  for (double v : values) sum += v;
  q.mean = sum / static_cast<double>(values.size());
  auto at = [&](double fraction) {
    const auto idx = static_cast<std::size_t>(
        fraction * static_cast<double>(values.size() - 1));
    return values[idx];
  };
  q.p50 = at(0.50);
  q.p95 = at(0.95);
  q.p99 = at(0.99);
  q.max = values.back();
  return q;
}

}  // namespace

NNWindowStats measure_nn_window(const SpaceFillingCurve& curve,
                                std::uint64_t samples, std::uint64_t seed) {
  const Universe& u = curve.universe();
  Xoshiro256 rng(seed);
  std::vector<double> first, all;
  first.reserve(samples);
  all.reserve(samples);
  // Query + up to 2d neighbors, encoded with one batch call per sample.
  std::array<Point, 1 + 2 * kMaxDim> batch_cells;
  std::array<index_t, 1 + 2 * kMaxDim> batch_keys;
  for (std::uint64_t s = 0; s < samples; ++s) {
    Point query = Point::zero(u.dim());
    for (int i = 0; i < u.dim(); ++i) {
      query[i] = static_cast<coord_t>(rng.next_below(u.side()));
    }
    std::size_t count = 0;
    batch_cells[count++] = query;
    u.for_each_neighbor(query,
                        [&](const Point& nb) { batch_cells[count++] = nb; });
    curve.index_of_batch(std::span<const Point>(batch_cells.data(), count),
                         std::span<index_t>(batch_keys.data(), count));
    const index_t qk = batch_keys[0];
    index_t min_dist = 0, max_dist = 0;
    bool any = false;
    for (std::size_t i = 1; i < count; ++i) {
      const index_t nk = batch_keys[i];
      const index_t dist = qk > nk ? qk - nk : nk - qk;
      if (!any || dist < min_dist) min_dist = dist;
      if (!any || dist > max_dist) max_dist = dist;
      any = true;
    }
    if (any) {
      first.push_back(static_cast<double>(min_dist));
      all.push_back(static_cast<double>(max_dist));
    }
  }
  NNWindowStats stats;
  stats.samples = samples;
  stats.first_neighbor = quantiles(first);
  stats.all_neighbors = quantiles(all);
  return stats;
}

bool knn_via_window(const SpaceFillingCurve& curve, const Point& query, int k,
                    index_t window, std::vector<Point>* neighbors) {
  const Universe& u = curve.universe();
  const index_t n = u.cell_count();
  const index_t qk = curve.index_of(query);
  const index_t lo = qk > window ? qk - window : 0;
  const index_t hi = qk + window < n - 1 ? qk + window : n - 1;

  struct Candidate {
    double dist;
    index_t key;
    Point cell;
  };
  // Decode the whole window through the batched codec, then score.
  std::vector<Point> window_cells(hi - lo + 1);
  curve.point_range(lo, window_cells);
  std::vector<Candidate> candidates;
  candidates.reserve(window_cells.size());
  for (index_t key = lo; key <= hi; ++key) {
    const Point& cell = window_cells[key - lo];
    if (cell == query) continue;
    candidates.push_back({euclidean_distance(query, cell), key, cell});
  }
  if (candidates.size() < static_cast<std::size_t>(k)) return false;
  // Rank by (distance, key) as one 128-bit composite: distances are
  // non-negative, so their IEEE bit patterns order numerically, and packing
  // the curve key into the low half makes the tie-break part of the key.
  // Only the first k ranks are ever read, so a top-k selection beats a full
  // sort of the window.
  std::vector<KeyIndex128> ranked(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const u128 composite =
        (static_cast<u128>(std::bit_cast<std::uint64_t>(candidates[i].dist))
         << 64) |
        candidates[i].key;
    ranked[i] = {composite, static_cast<std::uint32_t>(i)};
  }
  std::partial_sort(ranked.begin(), ranked.begin() + k, ranked.end(),
                    [](const KeyIndex128& a, const KeyIndex128& b) {
                      return a.key < b.key;
                    });
  const double radius = candidates[ranked[static_cast<std::size_t>(k - 1)].index].dist;

  // Soundness check: every cell within Euclidean radius `radius` of the query
  // must have been scanned; otherwise a closer cell may hide outside the
  // window.  Enumerate the clipped bounding box of that ball.
  const auto reach = static_cast<coord_t>(std::ceil(radius));
  Point box_lo = query, box_hi = query;
  for (int i = 0; i < u.dim(); ++i) {
    box_lo[i] = query[i] > reach ? query[i] - reach : 0;
    box_hi[i] = std::min<coord_t>(query[i] + reach, u.side() - 1);
  }
  bool sound = true;
  Box(box_lo, box_hi).for_each_cell([&](const Point& cell) {
    if (!sound || cell == query) return;
    if (euclidean_distance(query, cell) <= radius) {
      const index_t key = curve.index_of(cell);
      if (key < lo || key > hi) sound = false;
    }
  });
  if (!sound) return false;

  if (neighbors != nullptr) {
    neighbors->clear();
    for (int i = 0; i < k; ++i) {
      neighbors->push_back(
          candidates[ranked[static_cast<std::size_t>(i)].index].cell);
    }
  }
  return true;
}

bool knn_via_index(const PointIndex& index, const Point& query, int k,
                   std::vector<Point>* neighbors) {
  if (k <= 0) return false;
  // Validate before touching index_of: permutation-backed curves index
  // their key table by the raw cell id, so an out-of-universe query must
  // hit the typed error, not unchecked memory.
  const Universe& u = index.curve().universe();
  if (query.dim() != u.dim() || !u.contains(query)) {
    throw IndexArgumentError("knn query: point " + query.to_string() +
                             " lies outside the d=" + std::to_string(u.dim()) +
                             " side-" + std::to_string(u.side()) + " universe");
  }
  // Rows at the query's own key are the query cell itself (keys are a
  // bijection on cells); ask for that many extra rows so dropping them
  // cannot lose the k-th neighbor, duplicates included.  Ordering by
  // (squared distance, key, row) matches the window path's (distance, key)
  // ranking on integer grids.
  const index_t query_key = index.curve().index_of(query);
  const auto [self_first, self_last] =
      index.rows_in_interval(query_key, query_key);
  KnnEngine engine(index);
  const std::vector<KnnNeighbor> found = engine.query(
      query, static_cast<std::uint32_t>(k) +
                 static_cast<std::uint32_t>(self_last - self_first));
  std::vector<Point> cells;
  cells.reserve(static_cast<std::size_t>(k));
  for (const KnnNeighbor& neighbor : found) {
    if (cells.size() == static_cast<std::size_t>(k)) break;
    const Point cell = index.curve().point_at(neighbor.key);
    if (cell == query) continue;
    cells.push_back(cell);
  }
  if (cells.size() < static_cast<std::size_t>(k)) return false;
  if (neighbors != nullptr) *neighbors = std::move(cells);
  return true;
}

}  // namespace sfc
