#include "sfc/apps/partition.h"

#include <span>
#include <string>
#include <vector>

#include "sfc/common/int128.h"
#include "sfc/metrics/slab_walker.h"
#include "sfc/parallel/parallel_for.h"

namespace sfc {

namespace {

// Block of a key under the contiguous near-equal partition: block b covers
// keys [floor(b*n/P), floor((b+1)*n/P)).  Computing floor(key*P/n) inverts
// that range map exactly.
int block_of_key(index_t key, index_t n, int parts) {
  return static_cast<int>(static_cast<u128>(key) * static_cast<u128>(parts) / n);
}

// Edge cut contributed by one slab body: forward NN pairs whose endpoints
// fall in different blocks, counted as strided passes over the slab's key
// buffer (neighbor along dimension i sits at fixed offset side^{i-1}).
// Blocks are derived once per key — one u128 divide per cell instead of 2d
// in the passes, which then reduce to flat int comparisons.
index_t slab_edge_cut(const Universe& u, const KeySlab& slab, index_t n,
                      int parts) {
  // Forward passes read ids in [begin, end - 1 + stride]; the largest stride
  // is one halo, and a valid forward neighbor id is always < n.
  const index_t cover_end =
      std::min<index_t>(slab.buffer_end, slab.end + slab_halo(u));
  const index_t* const keys = slab.keys + (slab.begin - slab.buffer_begin);
  std::vector<int> blocks(cover_end - slab.begin);
  for (std::size_t j = 0; j < blocks.size(); ++j) {
    blocks[j] = block_of_key(keys[j], n, parts);
  }

  index_t cut = 0;
  for (int i = 0; i < u.dim(); ++i) {
    const index_t stride = dim_stride(u, i);
    for_each_forward_run(
        u, slab.begin, slab.end, i, [&](index_t run_begin, index_t run_end) {
          const int* const lo = blocks.data() + (run_begin - slab.begin);
          const int* const hi = lo + stride;
          const std::size_t count = run_end - run_begin;
          for (std::size_t j = 0; j < count; ++j) {
            if (lo[j] != hi[j]) ++cut;
          }
        });
  }
  return cut;
}

}  // namespace

PartitionArgumentError::PartitionArgumentError(int parts, index_t cell_count)
    : Error("evaluate_partition: parts = " +
                            std::to_string(parts) +
                            " outside [1, n] for n = " +
                            std::to_string(cell_count)),
      parts_(parts),
      cell_count_(cell_count) {}

int partition_block(const SpaceFillingCurve& curve, int parts, const Point& cell) {
  return block_of_key(curve.index_of(cell), curve.universe().cell_count(), parts);
}

PartitionQuality evaluate_partition(const SpaceFillingCurve& curve, int parts,
                                    const PartitionOptions& options) {
  const Universe& u = curve.universe();
  const index_t n = u.cell_count();
  if (parts < 1 || static_cast<index_t>(parts) > n) {
    throw PartitionArgumentError(parts, n);
  }
  ThreadPool& pool = options.pool ? *options.pool : ThreadPool::shared();

  PartitionQuality quality;
  quality.parts = parts;

  const std::uint64_t grain = std::uint64_t{1} << 16;

  if (options.count_fragments) {
    // The flood fill needs every cell's key anyway, so materialize the table
    // once through the shared slab kernel (each cell encoded exactly once)
    // and share it between the edge cut and the fill.
    std::vector<index_t> keys(n);
    build_key_table(curve, pool, keys, grain);

    // The edge cut runs over chunk-sized views into the full table — the
    // same strided-pass kernel as the slab path, with the whole universe as
    // the "buffer".
    const std::uint64_t chunks = chunk_count(n, grain);
    std::vector<index_t> cut_partials(chunks, 0);
    parallel_for_chunks(pool, n, grain, [&](const ChunkRange& range) {
      KeySlab view;
      view.begin = range.begin;
      view.end = range.end;
      view.buffer_begin = 0;
      view.buffer_end = n;
      view.keys = keys.data();
      view.slab_index = range.chunk_index;
      cut_partials[range.chunk_index] = slab_edge_cut(u, view, n, parts);
    });
    for (index_t cut : cut_partials) quality.edge_cut += cut;

    // Flood fill per block over the grid graph; a block with more than one
    // component is fragmented.  Sequential O(n) BFS — used on small/medium
    // universes by the benches.
    std::vector<int> block_of_cell(n);
    for (index_t id = 0; id < n; ++id) {
      block_of_cell[id] = block_of_key(keys[id], n, parts);
    }
    std::vector<bool> visited(n, false);
    std::vector<int> components(static_cast<std::size_t>(parts), 0);
    std::vector<index_t> stack;
    for (index_t start = 0; start < n; ++start) {
      if (visited[start]) continue;
      const int block = block_of_cell[start];
      ++components[static_cast<std::size_t>(block)];
      stack.push_back(start);
      visited[start] = true;
      while (!stack.empty()) {
        const index_t id = stack.back();
        stack.pop_back();
        const Point cell = u.from_row_major(id);
        u.for_each_neighbor(cell, [&](const Point& q) {
          const index_t qid = u.row_major_index(q);
          if (!visited[qid] && block_of_cell[qid] == block) {
            visited[qid] = true;
            stack.push_back(qid);
          }
        });
      }
    }
    for (int parts_components : components) {
      if (parts_components > 1) ++quality.fragmented_blocks;
    }
  } else {
    // Edge-cut-only mode stays O(slab) in memory for huge universes: each
    // slab is batch-encoded once (body + forward halo) and the cut is the
    // same strided-pass kernel over the slab buffer.
    std::vector<index_t> cut_partials(slab_count(u, grain), 0);
    for_each_key_slab(curve, pool, grain, [&](const KeySlab& slab) {
      cut_partials[slab.slab_index] = slab_edge_cut(u, slab, n, parts);
    });
    for (index_t cut : cut_partials) quality.edge_cut += cut;
  }

  const index_t nn_pairs = u.nn_pair_count();
  quality.cut_fraction =
      nn_pairs > 0 ? static_cast<double>(quality.edge_cut) / static_cast<double>(nn_pairs)
                   : 0.0;

  // Imbalance: contiguous ranges differ by at most one cell.
  index_t max_block = 0;
  for (int b = 0; b < parts; ++b) {
    const index_t begin = static_cast<index_t>(
        static_cast<u128>(b) * static_cast<u128>(n) / static_cast<u128>(parts));
    const index_t end = static_cast<index_t>(static_cast<u128>(b + 1) *
                                             static_cast<u128>(n) /
                                             static_cast<u128>(parts));
    if (end - begin > max_block) max_block = end - begin;
  }
  quality.imbalance = static_cast<double>(max_block) * parts / static_cast<double>(n);
  return quality;
}

}  // namespace sfc
