#include "sfc/apps/partition.h"

#include <cstdlib>
#include <span>
#include <vector>

#include "sfc/common/int128.h"
#include "sfc/parallel/parallel_for.h"

namespace sfc {

namespace {

// Block of a key under the contiguous near-equal partition: block b covers
// keys [floor(b*n/P), floor((b+1)*n/P)).  Computing floor(key*P/n) inverts
// that range map exactly.
int block_of_key(index_t key, index_t n, int parts) {
  return static_cast<int>(static_cast<u128>(key) * static_cast<u128>(parts) / n);
}

}  // namespace

int partition_block(const SpaceFillingCurve& curve, int parts, const Point& cell) {
  return block_of_key(curve.index_of(cell), curve.universe().cell_count(), parts);
}

PartitionQuality evaluate_partition(const SpaceFillingCurve& curve, int parts,
                                    const PartitionOptions& options) {
  const Universe& u = curve.universe();
  const index_t n = u.cell_count();
  if (parts < 1 || static_cast<index_t>(parts) > n) std::abort();
  ThreadPool& pool = options.pool ? *options.pool : ThreadPool::shared();

  PartitionQuality quality;
  quality.parts = parts;

  const std::uint64_t grain = std::uint64_t{1} << 16;
  const std::uint64_t chunks = chunk_count(n, grain);
  std::vector<index_t> cut_partials(chunks, 0);

  if (options.count_fragments) {
    // The flood fill needs every cell's key anyway, so materialize the table
    // once through the batched codec (each cell encoded exactly once instead
    // of once as a center plus up to d times as a neighbor) and share it
    // between the edge cut and the fill.
    std::vector<index_t> keys(n);
    parallel_for_chunks(pool, n, grain, [&](const ChunkRange& range) {
      const std::size_t len = range.end - range.begin;
      std::vector<Point> cells(len);
      for (std::size_t i = 0; i < len; ++i) {
        cells[i] = u.from_row_major(range.begin + i);
      }
      curve.index_of_batch(cells,
                           std::span<index_t>(keys.data() + range.begin, len));
    });

    parallel_for_chunks(pool, n, grain, [&](const ChunkRange& range) {
      index_t cut = 0;
      for (index_t id = range.begin; id < range.end; ++id) {
        const Point cell = u.from_row_major(id);
        const int cell_block = block_of_key(keys[id], n, parts);
        u.for_each_forward_neighbor(cell, [&](const Point& q, int /*dim*/) {
          const int q_block =
              block_of_key(keys[u.row_major_index(q)], n, parts);
          if (q_block != cell_block) ++cut;
        });
      }
      cut_partials[range.chunk_index] = cut;
    });

    // Flood fill per block over the grid graph; a block with more than one
    // component is fragmented.  Sequential O(n) BFS — used on small/medium
    // universes by the benches.
    std::vector<int> block_of_cell(n);
    for (index_t id = 0; id < n; ++id) {
      block_of_cell[id] = block_of_key(keys[id], n, parts);
    }
    std::vector<bool> visited(n, false);
    std::vector<int> components(static_cast<std::size_t>(parts), 0);
    std::vector<index_t> stack;
    for (index_t start = 0; start < n; ++start) {
      if (visited[start]) continue;
      const int block = block_of_cell[start];
      ++components[static_cast<std::size_t>(block)];
      stack.push_back(start);
      visited[start] = true;
      while (!stack.empty()) {
        const index_t id = stack.back();
        stack.pop_back();
        const Point cell = u.from_row_major(id);
        u.for_each_neighbor(cell, [&](const Point& q) {
          const index_t qid = u.row_major_index(q);
          if (!visited[qid] && block_of_cell[qid] == block) {
            visited[qid] = true;
            stack.push_back(qid);
          }
        });
      }
    }
    for (int parts_components : components) {
      if (parts_components > 1) ++quality.fragmented_blocks;
    }
  } else {
    // Edge-cut-only mode stays O(grain) in memory for huge universes: gather
    // each chunk's cells plus their forward neighbors into one buffer and
    // batch-encode it in a single call.
    const int d = u.dim();
    parallel_for_chunks(pool, n, grain, [&](const ChunkRange& range) {
      const std::size_t len = range.end - range.begin;
      std::vector<Point> batch;
      batch.reserve(len * static_cast<std::size_t>(1 + d));
      for (index_t id = range.begin; id < range.end; ++id) {
        const Point cell = u.from_row_major(id);
        batch.push_back(cell);
        u.for_each_forward_neighbor(
            cell, [&](const Point& q, int /*dim*/) { batch.push_back(q); });
      }
      std::vector<index_t> batch_keys(batch.size());
      curve.index_of_batch(batch, batch_keys);
      index_t cut = 0;
      std::size_t pos = 0;
      for (index_t id = range.begin; id < range.end; ++id) {
        const Point& cell = batch[pos];
        const int cell_block = block_of_key(batch_keys[pos], n, parts);
        ++pos;
        for (int i = 0; i < d; ++i) {
          if (cell[i] + 1 < u.side()) {
            const int q_block = block_of_key(batch_keys[pos], n, parts);
            if (q_block != cell_block) ++cut;
            ++pos;
          }
        }
      }
      cut_partials[range.chunk_index] = cut;
    });
  }

  for (index_t cut : cut_partials) quality.edge_cut += cut;
  const index_t nn_pairs = u.nn_pair_count();
  quality.cut_fraction =
      nn_pairs > 0 ? static_cast<double>(quality.edge_cut) / static_cast<double>(nn_pairs)
                   : 0.0;

  // Imbalance: contiguous ranges differ by at most one cell.
  index_t max_block = 0;
  for (int b = 0; b < parts; ++b) {
    const index_t begin = static_cast<index_t>(
        static_cast<u128>(b) * static_cast<u128>(n) / static_cast<u128>(parts));
    const index_t end = static_cast<index_t>(static_cast<u128>(b + 1) *
                                             static_cast<u128>(n) /
                                             static_cast<u128>(parts));
    if (end - begin > max_block) max_block = end - begin;
  }
  quality.imbalance = static_cast<double>(max_block) * parts / static_cast<double>(n);
  return quality;
}

}  // namespace sfc
