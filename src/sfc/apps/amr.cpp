#include "sfc/apps/amr.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "sfc/common/math.h"
#include "sfc/rng/xoshiro256.h"
#include "sfc/sort/radix_sort.h"

namespace sfc {

index_t AmrMesh::covered_cells() const {
  index_t total = 0;
  for (const AmrLeaf& leaf : leaves) {
    total += ipow(leaf.size, dim);
  }
  return total;
}

namespace {

// Recursive block splitter.
void refine_block(const Universe& finest, const Point& anchor, coord_t size,
                  const std::function<double(const Point&)>& density,
                  double split_threshold, std::vector<AmrLeaf>& leaves) {
  // Integrate the density over the block.
  double integral = 0.0;
  Point hi = anchor;
  for (int i = 0; i < finest.dim(); ++i) hi[i] = anchor[i] + size - 1;
  Box(anchor, hi).for_each_cell(
      [&](const Point& cell) { integral += density(cell); });

  if (size == 1 || integral <= split_threshold) {
    AmrLeaf leaf;
    leaf.anchor = anchor;
    leaf.size = size;
    // Refined (small) leaves model locally expensive physics: cost grows
    // with density, ~1 per cell plus the integral.
    leaf.cost = static_cast<double>(ipow(size, finest.dim())) + integral;
    leaves.push_back(leaf);
    return;
  }
  const coord_t half = size / 2;
  const int children = 1 << finest.dim();
  for (int child = 0; child < children; ++child) {
    Point child_anchor = anchor;
    for (int i = 0; i < finest.dim(); ++i) {
      if (child & (1 << i)) child_anchor[i] = anchor[i] + half;
    }
    refine_block(finest, child_anchor, half, density, split_threshold, leaves);
  }
}

}  // namespace

AmrMesh build_amr_mesh(int dim, int finest_bits,
                       const std::function<double(const Point&)>& density,
                       double split_threshold) {
  AmrMesh mesh;
  mesh.dim = dim;
  mesh.finest_bits = finest_bits;
  const Universe finest = mesh.finest_universe();
  refine_block(finest, Point::zero(dim), finest.side(), density,
               split_threshold, mesh.leaves);
  return mesh;
}

std::function<double(const Point&)> make_hotspot_density(int dim, int finest_bits,
                                                         int spots,
                                                         std::uint64_t seed) {
  const auto side = static_cast<double>(index_t{1} << finest_bits);
  Xoshiro256 rng(seed);
  std::vector<std::vector<double>> centers;
  for (int s = 0; s < spots; ++s) {
    std::vector<double> center(static_cast<std::size_t>(dim));
    for (auto& c : center) c = side * rng.next_double();
    centers.push_back(std::move(center));
  }
  const double sigma = side / 16.0;
  return [dim, centers, sigma](const Point& cell) {
    double value = 0.0;
    for (const auto& center : centers) {
      double dist2 = 0.0;
      for (int i = 0; i < dim; ++i) {
        const double diff = static_cast<double>(cell[i]) - center[static_cast<std::size_t>(i)];
        dist2 += diff * diff;
      }
      value += std::exp(-dist2 / (2.0 * sigma * sigma));
    }
    return value;
  };
}

AmrPartitionQuality evaluate_amr_partition(const AmrMesh& mesh,
                                           const SpaceFillingCurve& curve,
                                           int parts) {
  const Universe finest = mesh.finest_universe();
  if (!(curve.universe() == finest) || parts < 1) std::abort();

  // Order leaves by the curve key of their anchor: one fused batch-encode +
  // radix sort (anchors are distinct cells, so keys are unique).
  std::vector<Point> anchors(mesh.leaves.size());
  for (std::size_t i = 0; i < mesh.leaves.size(); ++i) {
    anchors[i] = mesh.leaves[i].anchor;
  }
  const std::vector<KeyIndex> order = sort_by_curve_key(curve, anchors);

  // Cost-balanced contiguous split of the ordered leaf sequence.
  double total_cost = 0.0;
  for (const AmrLeaf& leaf : mesh.leaves) total_cost += leaf.cost;
  const double target = total_cost / parts;
  std::vector<int> part_of_leaf(mesh.leaves.size(), parts - 1);
  std::vector<double> part_cost(static_cast<std::size_t>(parts), 0.0);
  {
    int current = 0;
    double used = 0.0;
    for (std::size_t pos = 0; pos < order.size(); ++pos) {
      const auto leaf_id = static_cast<std::size_t>(order[pos].index);
      const AmrLeaf& leaf = mesh.leaves[leaf_id];
      if (current < parts - 1 && used + leaf.cost / 2 > target) {
        ++current;
        used = 0.0;
      }
      part_of_leaf[leaf_id] = current;
      part_cost[static_cast<std::size_t>(current)] += leaf.cost;
      used += leaf.cost;
    }
  }

  // Map every finest cell to its worker via the leaf that owns it.
  std::vector<int> part_of_cell(finest.cell_count(), -1);
  for (std::size_t li = 0; li < mesh.leaves.size(); ++li) {
    const AmrLeaf& leaf = mesh.leaves[li];
    Point hi = leaf.anchor;
    for (int i = 0; i < finest.dim(); ++i) hi[i] = leaf.anchor[i] + leaf.size - 1;
    Box(leaf.anchor, hi).for_each_cell([&](const Point& cell) {
      part_of_cell[finest.row_major_index(cell)] = part_of_leaf[li];
    });
  }

  AmrPartitionQuality quality;
  quality.parts = parts;
  quality.leaves = mesh.leaves.size();
  for (index_t id = 0; id < finest.cell_count(); ++id) {
    const Point cell = finest.from_row_major(id);
    const int cell_part = part_of_cell[id];
    if (cell_part < 0) std::abort();  // leaves must tile the domain
    finest.for_each_forward_neighbor(cell, [&](const Point& q, int) {
      if (part_of_cell[finest.row_major_index(q)] != cell_part) {
        ++quality.edge_cut;
      }
    });
  }
  quality.cut_fraction =
      static_cast<double>(quality.edge_cut) /
      static_cast<double>(finest.nn_pair_count());
  const double max_cost = *std::max_element(part_cost.begin(), part_cost.end());
  quality.cost_imbalance = max_cost * parts / total_cost;
  return quality;
}

}  // namespace sfc
