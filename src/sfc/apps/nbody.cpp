#include "sfc/apps/nbody.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "sfc/curves/bitops.h"
#include "sfc/grid/point.h"
#include "sfc/rng/xoshiro256.h"
#include "sfc/sort/radix_sort.h"

namespace sfc {

namespace {

// Box-Muller normal deviate.
double normal(Xoshiro256& rng) {
  const double u1 = rng.next_double();
  const double u2 = rng.next_double();
  return std::sqrt(-2.0 * std::log(u1 + 1e-300)) * std::cos(6.283185307179586 * u2);
}

double clamp01(double v) {
  if (v < 0.0) return 0.0;
  if (v >= 1.0) return std::nextafter(1.0, 0.0);
  return v;
}

}  // namespace

std::vector<Particle> make_clustered_particles(std::size_t count, int dim,
                                               int blobs, std::uint64_t seed) {
  if (dim != 2 && dim != 3) std::abort();
  Xoshiro256 rng(seed);
  std::vector<std::array<double, 3>> centers(static_cast<std::size_t>(blobs));
  for (auto& center : centers) {
    for (int i = 0; i < dim; ++i) center[static_cast<std::size_t>(i)] = 0.2 + 0.6 * rng.next_double();
  }
  std::vector<Particle> particles(count);
  for (auto& particle : particles) {
    const auto& center = centers[rng.next_below(static_cast<std::uint64_t>(blobs))];
    for (int i = 0; i < dim; ++i) {
      particle.pos[static_cast<std::size_t>(i)] =
          clamp01(center[static_cast<std::size_t>(i)] + 0.05 * normal(rng));
      particle.vel[static_cast<std::size_t>(i)] = 0.05 * normal(rng);
    }
    particle.mass = 1.0 / static_cast<double>(count);
  }
  return particles;
}

BarnesHut::BarnesHut(std::vector<Particle> particles, const NBodyParams& params)
    : particles_(std::move(particles)), params_(params) {
  if (params_.dim != 2 && params_.dim != 3) std::abort();
}

index_t BarnesHut::morton_key(const Particle& particle) const {
  const double scale = static_cast<double>(index_t{1} << params_.level_bits);
  Point p = Point::zero(params_.dim);
  for (int i = 0; i < params_.dim; ++i) {
    auto q = static_cast<std::int64_t>(particle.pos[static_cast<std::size_t>(i)] * scale);
    const auto max_q = static_cast<std::int64_t>((index_t{1} << params_.level_bits) - 1);
    if (q < 0) q = 0;
    if (q > max_q) q = max_q;
    p[i] = static_cast<coord_t>(q);
  }
  return interleave(p, params_.level_bits);
}

std::uint64_t BarnesHut::sort_by_morton() {
  std::vector<KeyIndex> order(particles_.size());
  for (std::uint32_t i = 0; i < particles_.size(); ++i) {
    order[i] = {morton_key(particles_[i]), i};
  }
  std::uint64_t inversions = 0;
  for (std::size_t i = 1; i < order.size(); ++i) {
    if (order[i].key < order[i - 1].key) ++inversions;
  }
  // Radix sort is stable, so co-located particles keep their relative order
  // exactly as the previous std::stable_sort did.
  radix_sort_pairs(order);
  std::vector<Particle> sorted(particles_.size());
  for (std::size_t i = 0; i < order.size(); ++i) sorted[i] = particles_[order[i].index];
  particles_ = std::move(sorted);
  return inversions;
}

void BarnesHut::build_tree() {
  nodes_.clear();
  nodes_.reserve(2 * particles_.size() /
                     static_cast<std::size_t>(std::max(1, params_.leaf_size)) +
                 64);
  scratch_.resize(particles_.size());
  std::array<double, 3> root_center{0.5, 0.5, 0.5};
  build_node(0, static_cast<std::uint32_t>(particles_.size()), root_center, 0.5,
             0);
}

std::int32_t BarnesHut::build_node(std::uint32_t first, std::uint32_t count,
                                   const std::array<double, 3>& center,
                                   double half_size, int depth) {
  if (count == 0) return -1;
  const auto index = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();
  {
    Node& node = nodes_.back();
    node.center = center;
    node.half_size = half_size;
    node.first = first;
    node.count = count;
    node.children.fill(-1);
  }

  // Center of mass.
  double mass = 0.0;
  std::array<double, 3> com{};
  for (std::uint32_t i = first; i < first + count; ++i) {
    const Particle& particle = particles_[i];
    mass += particle.mass;
    for (int c = 0; c < 3; ++c) com[static_cast<std::size_t>(c)] += particle.mass * particle.pos[static_cast<std::size_t>(c)];
  }
  for (int c = 0; c < 3; ++c) com[static_cast<std::size_t>(c)] /= mass > 0 ? mass : 1.0;
  nodes_[static_cast<std::size_t>(index)].mass = mass;
  nodes_[static_cast<std::size_t>(index)].com = com;

  const bool at_max_depth = depth >= params_.level_bits;
  if (count <= static_cast<std::uint32_t>(params_.leaf_size) || at_max_depth) {
    nodes_[static_cast<std::size_t>(index)].leaf = true;
    return index;
  }
  nodes_[static_cast<std::size_t>(index)].leaf = false;

  // Bucket particles into child octants (2^dim contiguous sub-ranges).
  const int child_count = 1 << params_.dim;
  std::array<std::uint32_t, 8> bucket_size{};
  auto octant_of = [&](const Particle& particle) {
    int octant = 0;
    for (int i = 0; i < params_.dim; ++i) {
      if (particle.pos[static_cast<std::size_t>(i)] >= center[static_cast<std::size_t>(i)]) octant |= 1 << i;
    }
    return octant;
  };
  for (std::uint32_t i = first; i < first + count; ++i) {
    ++bucket_size[static_cast<std::size_t>(octant_of(particles_[i]))];
  }
  std::array<std::uint32_t, 8> bucket_offset{};
  std::uint32_t running = first;
  for (int o = 0; o < child_count; ++o) {
    bucket_offset[static_cast<std::size_t>(o)] = running;
    running += bucket_size[static_cast<std::size_t>(o)];
  }
  std::array<std::uint32_t, 8> cursor = bucket_offset;
  for (std::uint32_t i = first; i < first + count; ++i) {
    scratch_[cursor[static_cast<std::size_t>(octant_of(particles_[i]))]++] = particles_[i];
  }
  std::copy(scratch_.begin() + first, scratch_.begin() + first + count,
            particles_.begin() + first);

  const double quarter = half_size / 2.0;
  for (int o = 0; o < child_count; ++o) {
    if (bucket_size[static_cast<std::size_t>(o)] == 0) continue;
    std::array<double, 3> child_center = center;
    for (int i = 0; i < params_.dim; ++i) {
      child_center[static_cast<std::size_t>(i)] += (o & (1 << i)) ? quarter : -quarter;
    }
    const std::int32_t child = build_node(bucket_offset[static_cast<std::size_t>(o)],
                                          bucket_size[static_cast<std::size_t>(o)],
                                          child_center, quarter, depth + 1);
    nodes_[static_cast<std::size_t>(index)].children[static_cast<std::size_t>(o)] = child;
  }
  return index;
}

void BarnesHut::accumulate(const Particle& target, std::int32_t node_index,
                           std::array<double, 3>& accel) const {
  const double eps2 = params_.softening * params_.softening;
  std::array<std::int32_t, 512> stack;  // >= max_depth * (2^dim - 1)
  int top = 0;
  stack[static_cast<std::size_t>(top++)] = node_index;
  while (top > 0) {
    const Node& node = nodes_[static_cast<std::size_t>(stack[static_cast<std::size_t>(--top)])];
    std::array<double, 3> delta{};
    double dist2 = eps2;
    for (int c = 0; c < params_.dim; ++c) {
      delta[static_cast<std::size_t>(c)] = node.com[static_cast<std::size_t>(c)] - target.pos[static_cast<std::size_t>(c)];
      dist2 += delta[static_cast<std::size_t>(c)] * delta[static_cast<std::size_t>(c)];
    }
    const double size = 2.0 * node.half_size;
    if (node.leaf || size * size < params_.theta * params_.theta * dist2) {
      if (node.leaf) {
        // Exact interaction with every particle in the leaf.
        for (std::uint32_t i = node.first; i < node.first + node.count; ++i) {
          const Particle& source = particles_[i];
          if (&source == &target) continue;
          std::array<double, 3> d{};
          double r2 = eps2;
          for (int c = 0; c < params_.dim; ++c) {
            d[static_cast<std::size_t>(c)] = source.pos[static_cast<std::size_t>(c)] - target.pos[static_cast<std::size_t>(c)];
            r2 += d[static_cast<std::size_t>(c)] * d[static_cast<std::size_t>(c)];
          }
          const double inv = params_.gravity * source.mass / (r2 * std::sqrt(r2));
          for (int c = 0; c < params_.dim; ++c) accel[static_cast<std::size_t>(c)] += inv * d[static_cast<std::size_t>(c)];
        }
      } else {
        const double inv = params_.gravity * node.mass / (dist2 * std::sqrt(dist2));
        for (int c = 0; c < params_.dim; ++c) accel[static_cast<std::size_t>(c)] += inv * delta[static_cast<std::size_t>(c)];
      }
      continue;
    }
    for (std::int32_t child : node.children) {
      if (child >= 0) stack[static_cast<std::size_t>(top++)] = child;
    }
  }
}

std::vector<std::array<double, 3>> BarnesHut::compute_accelerations() {
  build_tree();
  std::vector<std::array<double, 3>> accel(particles_.size());
  if (nodes_.empty()) return accel;
  for (std::size_t i = 0; i < particles_.size(); ++i) {
    accumulate(particles_[i], 0, accel[i]);
  }
  return accel;
}

std::vector<std::array<double, 3>> BarnesHut::direct_accelerations() const {
  const double eps2 = params_.softening * params_.softening;
  std::vector<std::array<double, 3>> accel(particles_.size());
  for (std::size_t i = 0; i < particles_.size(); ++i) {
    for (std::size_t j = 0; j < particles_.size(); ++j) {
      if (i == j) continue;
      std::array<double, 3> d{};
      double r2 = eps2;
      for (int c = 0; c < params_.dim; ++c) {
        d[static_cast<std::size_t>(c)] =
            particles_[j].pos[static_cast<std::size_t>(c)] - particles_[i].pos[static_cast<std::size_t>(c)];
        r2 += d[static_cast<std::size_t>(c)] * d[static_cast<std::size_t>(c)];
      }
      const double inv = params_.gravity * particles_[j].mass / (r2 * std::sqrt(r2));
      for (int c = 0; c < params_.dim; ++c) accel[i][static_cast<std::size_t>(c)] += inv * d[static_cast<std::size_t>(c)];
    }
  }
  return accel;
}

void BarnesHut::step(double dt) {
  auto accel = compute_accelerations();
  for (std::size_t i = 0; i < particles_.size(); ++i) {
    for (int c = 0; c < params_.dim; ++c) {
      particles_[i].vel[static_cast<std::size_t>(c)] += 0.5 * dt * accel[i][static_cast<std::size_t>(c)];
      particles_[i].pos[static_cast<std::size_t>(c)] += dt * particles_[i].vel[static_cast<std::size_t>(c)];
    }
  }
  accel = compute_accelerations();
  for (std::size_t i = 0; i < particles_.size(); ++i) {
    for (int c = 0; c < params_.dim; ++c) {
      particles_[i].vel[static_cast<std::size_t>(c)] += 0.5 * dt * accel[i][static_cast<std::size_t>(c)];
    }
  }
}

double BarnesHut::total_energy() const {
  const double eps2 = params_.softening * params_.softening;
  double kinetic = 0.0, potential = 0.0;
  for (std::size_t i = 0; i < particles_.size(); ++i) {
    double v2 = 0.0;
    for (int c = 0; c < params_.dim; ++c) {
      v2 += particles_[i].vel[static_cast<std::size_t>(c)] * particles_[i].vel[static_cast<std::size_t>(c)];
    }
    kinetic += 0.5 * particles_[i].mass * v2;
    for (std::size_t j = i + 1; j < particles_.size(); ++j) {
      double r2 = eps2;
      for (int c = 0; c < params_.dim; ++c) {
        const double d =
            particles_[j].pos[static_cast<std::size_t>(c)] - particles_[i].pos[static_cast<std::size_t>(c)];
        r2 += d * d;
      }
      potential -= params_.gravity * particles_[i].mass * particles_[j].mass /
                   std::sqrt(r2);
    }
  }
  return kinetic + potential;
}

}  // namespace sfc
