#include "sfc/apps/range_query.h"

#include <algorithm>
#include <cmath>

#include "sfc/common/int128.h"
#include "sfc/common/math.h"
#include "sfc/index/range_scan.h"
#include "sfc/parallel/parallel_for.h"
#include "sfc/ranges/range_cover.h"
#include "sfc/rng/splitmix64.h"

namespace sfc {

index_t count_key_runs_enumeration(const SpaceFillingCurve& curve,
                                   const Box& box) {
  // The run count is exactly the number of merged intervals the streaming
  // enumeration produces (sfc/ranges owns the shared slice-encode loop).
  return static_cast<index_t>(cover_by_enumeration(curve, box).size());
}

index_t count_key_runs(const SpaceFillingCurve& curve, const Box& box,
                       RunCountEngine engine) {
  switch (engine) {
    case RunCountEngine::kEnumeration:
      return count_key_runs_enumeration(curve, box);
    case RunCountEngine::kCover:
      return static_cast<index_t>(RangeCoverEngine(curve).cover(box).size());
    case RunCountEngine::kAuto:
      break;
  }
  return curve.has_subtree_traversal()
             ? static_cast<index_t>(RangeCoverEngine(curve).cover(box).size())
             : count_key_runs_enumeration(curve, box);
}

ClusteringStats random_box_clustering(const SpaceFillingCurve& curve,
                                      coord_t extent, std::uint64_t samples,
                                      std::uint64_t seed,
                                      const ClusteringOptions& options) {
  const Universe& u = curve.universe();
  // Exact integer moments per deterministic chunk: integer addition is
  // associative, so combining partials in chunk order gives bit-identical
  // statistics for any thread count (and any scheduling).
  struct Partial {
    u128 sum = 0;
    u128 sum_sq = 0;
    index_t max = 0;
  };
  ThreadPool& pool =
      options.pool != nullptr ? *options.pool : ThreadPool::shared();
  const Partial total = parallel_reduce(
      pool, samples, options.grain, Partial{},
      [&](const ChunkRange& range) {
        Partial partial;
        for (std::uint64_t s = range.begin; s < range.end; ++s) {
          // Per-sample RNG stream: the box drawn for sample s depends only
          // on (seed, s), never on which chunk or thread ran it.
          Xoshiro256 rng(SplitMix64(seed + s).next());
          const Box box = random_box(u, extent, rng);
          const index_t runs = count_key_runs(curve, box, options.engine);
          partial.sum += runs;
          partial.sum_sq += static_cast<u128>(runs) * runs;
          partial.max = std::max(partial.max, runs);
        }
        return partial;
      },
      [](Partial a, const Partial& b) {
        a.sum += b.sum;
        a.sum_sq += b.sum_sq;
        a.max = std::max(a.max, b.max);
        return a;
      });

  ClusteringStats result;
  result.extent = extent;
  result.samples = samples;
  result.cells_per_box = ipow(extent, u.dim());
  if (samples > 0) {
    const long double n = static_cast<long double>(samples);
    const long double sum = to_long_double(total.sum);
    result.mean_runs = static_cast<double>(sum / n);
    if (samples > 1) {
      const long double variance =
          std::max(0.0L, (to_long_double(total.sum_sq) - sum * sum / n) /
                             (n - 1.0L));
      result.stderr_runs = static_cast<double>(std::sqrt(variance / n));
    }
    result.max_runs = static_cast<double>(total.max);
  }
  return result;
}

ScanEfficiencyStats random_box_scan_efficiency(const PointIndex& index,
                                               coord_t extent,
                                               std::uint64_t samples,
                                               std::uint64_t seed,
                                               const ClusteringOptions& options) {
  const Universe& u = index.curve().universe();
  struct Partial {
    u128 returned = 0;
    u128 scanned = 0;
    u128 runs = 0;
    u128 runs_touched = 0;
  };
  ThreadPool& pool =
      options.pool != nullptr ? *options.pool : ThreadPool::shared();
  const Partial total = parallel_reduce(
      pool, samples, options.grain, Partial{},
      [&](const ChunkRange& range) {
        // One engine per chunk, per-sample RNG streams (see
        // random_box_clustering): bit-identical for any thread count.
        RangeScanEngine engine(index);
        std::vector<std::uint32_t> ids;
        RangeScanStats stats;
        Partial partial;
        for (std::uint64_t s = range.begin; s < range.end; ++s) {
          Xoshiro256 rng(SplitMix64(seed + s).next());
          engine.scan(random_box(u, extent, rng), &ids, &stats);
          partial.returned += stats.rows_returned;
          partial.scanned += stats.rows_scanned;
          partial.runs += stats.runs_in_cover;
          partial.runs_touched += stats.runs_touched;
        }
        return partial;
      },
      [](Partial a, const Partial& b) {
        a.returned += b.returned;
        a.scanned += b.scanned;
        a.runs += b.runs;
        a.runs_touched += b.runs_touched;
        return a;
      });

  ScanEfficiencyStats result;
  result.extent = extent;
  result.samples = samples;
  result.index_rows = index.row_count();
  if (samples > 0) {
    const long double n = static_cast<long double>(samples);
    result.mean_rows_returned =
        static_cast<double>(to_long_double(total.returned) / n);
    result.mean_rows_scanned =
        static_cast<double>(to_long_double(total.scanned) / n);
    result.mean_runs = static_cast<double>(to_long_double(total.runs) / n);
    result.mean_runs_touched =
        static_cast<double>(to_long_double(total.runs_touched) / n);
    if (result.mean_rows_scanned > 0.0) {
      result.full_scan_ratio =
          static_cast<double>(index.row_count()) / result.mean_rows_scanned;
    }
  }
  return result;
}

}  // namespace sfc
