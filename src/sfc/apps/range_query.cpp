#include "sfc/apps/range_query.h"

#include <algorithm>
#include <vector>

#include "sfc/common/math.h"

namespace sfc {

index_t count_key_runs(const SpaceFillingCurve& curve, const Box& box) {
  std::vector<index_t> keys;
  keys.reserve(box.cell_count());
  box.for_each_cell([&](const Point& cell) {
    keys.push_back(curve.index_of(cell));
  });
  if (keys.empty()) return 0;
  std::sort(keys.begin(), keys.end());
  index_t runs = 1;
  for (std::size_t i = 1; i < keys.size(); ++i) {
    if (keys[i] != keys[i - 1] + 1) ++runs;
  }
  return runs;
}

ClusteringStats random_box_clustering(const SpaceFillingCurve& curve,
                                      coord_t extent, std::uint64_t samples,
                                      std::uint64_t seed) {
  const Universe& u = curve.universe();
  Xoshiro256 rng(seed);
  RunningStats stats;
  for (std::uint64_t s = 0; s < samples; ++s) {
    const Box box = random_box(u, extent, rng);
    stats.add(static_cast<double>(count_key_runs(curve, box)));
  }
  ClusteringStats result;
  result.extent = extent;
  result.samples = samples;
  result.mean_runs = stats.mean();
  result.stderr_runs = stats.standard_error();
  result.max_runs = stats.max();
  result.cells_per_box = ipow(extent, u.dim());
  return result;
}

}  // namespace sfc
