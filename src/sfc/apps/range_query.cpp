#include "sfc/apps/range_query.h"

#include <array>
#include <span>
#include <vector>

#include "sfc/common/math.h"
#include "sfc/sort/radix_sort.h"

namespace sfc {

index_t count_key_runs(const SpaceFillingCurve& curve, const Box& box) {
  // Batch-encode in fixed-size slices while walking the box, so peak memory
  // stays one key per cell rather than a materialized Point array.
  std::vector<index_t> keys;
  keys.reserve(box.cell_count());
  std::array<Point, 1024> cell_buf;
  std::size_t pending = 0;
  auto flush = [&] {
    const std::size_t at = keys.size();
    keys.resize(at + pending);
    curve.index_of_batch(std::span<const Point>(cell_buf.data(), pending),
                         std::span<index_t>(keys.data() + at, pending));
    pending = 0;
  };
  box.for_each_cell([&](const Point& cell) {
    cell_buf[pending++] = cell;
    if (pending == cell_buf.size()) flush();
  });
  if (pending > 0) flush();
  if (keys.empty()) return 0;
  radix_sort_keys(keys);
  index_t runs = 1;
  for (std::size_t i = 1; i < keys.size(); ++i) {
    if (keys[i] != keys[i - 1] + 1) ++runs;
  }
  return runs;
}

ClusteringStats random_box_clustering(const SpaceFillingCurve& curve,
                                      coord_t extent, std::uint64_t samples,
                                      std::uint64_t seed) {
  const Universe& u = curve.universe();
  Xoshiro256 rng(seed);
  RunningStats stats;
  for (std::uint64_t s = 0; s < samples; ++s) {
    const Box box = random_box(u, extent, rng);
    stats.add(static_cast<double>(count_key_runs(curve, box)));
  }
  ClusteringStats result;
  result.extent = extent;
  result.samples = samples;
  result.mean_runs = stats.mean();
  result.stderr_runs = stats.standard_error();
  result.max_runs = stats.max();
  result.cells_per_box = ipow(extent, u.dim());
  return result;
}

}  // namespace sfc
