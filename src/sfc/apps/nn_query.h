// Nearest-neighbor queries through a one-dimensional curve window (paper
// intro ref [5], Chen & Chang).
//
// A common SFC-based kNN heuristic inspects the cells whose keys lie within
// a window around the query's key.  How wide the window must be to contain
// the query's true spatial nearest neighbors is *exactly* the per-cell NN
// stretch:  δmin gives the window to the first neighbor, δmax the window to
// all of them.  This module reports quantiles of those window sizes over
// sampled query cells, making the paper's abstract metric operational.
#pragma once

#include <cstdint>
#include <vector>

#include "sfc/common/types.h"
#include "sfc/curves/space_filling_curve.h"
#include "sfc/rng/xoshiro256.h"

namespace sfc {

struct WindowQuantiles {
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

struct NNWindowStats {
  std::uint64_t samples = 0;
  /// Window needed to see at least one spatial nearest neighbor.
  WindowQuantiles first_neighbor;
  /// Window needed to see all spatial nearest neighbors (δmax quantiles).
  WindowQuantiles all_neighbors;
};

/// Samples `samples` uniform query cells and reports curve-window quantiles.
NNWindowStats measure_nn_window(const SpaceFillingCurve& curve,
                                std::uint64_t samples, std::uint64_t seed);

/// Exhaustive kNN ground truth helper: the `k` cells closest to `query` in
/// Euclidean distance (ties broken by curve key), found by scanning a curve
/// window of half-width `window` around the query's key.  Returns true if
/// the window provably contains the true k nearest (i.e. the k-th best
/// distance found is <= the distance to any cell outside the scanned box).
/// Used by tests and the knn example to demonstrate window-based search.
bool knn_via_window(const SpaceFillingCurve& curve, const Point& query, int k,
                    index_t window, std::vector<Point>* neighbors);

}  // namespace sfc
