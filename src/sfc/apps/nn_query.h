// Nearest-neighbor queries through a one-dimensional curve window (paper
// intro ref [5], Chen & Chang).
//
// A common SFC-based kNN heuristic inspects the cells whose keys lie within
// a window around the query's key.  How wide the window must be to contain
// the query's true spatial nearest neighbors is *exactly* the per-cell NN
// stretch:  δmin gives the window to the first neighbor, δmax the window to
// all of them.  This module reports quantiles of those window sizes over
// sampled query cells, making the paper's abstract metric operational.
#pragma once

#include <cstdint>
#include <vector>

#include "sfc/common/types.h"
#include "sfc/curves/space_filling_curve.h"
#include "sfc/index/point_index.h"
#include "sfc/rng/xoshiro256.h"

namespace sfc {

struct WindowQuantiles {
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

struct NNWindowStats {
  std::uint64_t samples = 0;
  /// Window needed to see at least one spatial nearest neighbor.
  WindowQuantiles first_neighbor;
  /// Window needed to see all spatial nearest neighbors (δmax quantiles).
  WindowQuantiles all_neighbors;
};

/// Samples `samples` uniform query cells and reports curve-window quantiles.
NNWindowStats measure_nn_window(const SpaceFillingCurve& curve,
                                std::uint64_t samples, std::uint64_t seed);

/// Window-enumeration kNN, kept as the *reference-only* path: the `k` cells
/// closest to `query` in Euclidean distance (ties broken by curve key),
/// found by decoding the whole curve window of half-width `window` around
/// the query's key.  Returns true if the window provably contains the true k
/// nearest (i.e. the k-th best distance found is <= the distance to any cell
/// outside the scanned box).  Serving traffic goes through the certified
/// best-first descent instead (sfc/index KnnEngine, adapted below), which
/// needs no window guess and touches O(output) rows; tests cross-check the
/// two paths against each other.
bool knn_via_window(const SpaceFillingCurve& curve, const Point& query, int k,
                    index_t window, std::vector<Point>* neighbors);

/// Index-backed kNN with knn_via_window's contract: the k cells nearest to
/// `query` among the indexed points, *excluding* rows whose point equals the
/// query cell itself, ordered by (Euclidean distance, curve key).  Runs the
/// certified best-first engine, so it always returns true when the index
/// holds at least k other cells — no window parameter to guess.  `index` is
/// typically a full-grid index (every cell indexed once), making this a
/// drop-in replacement for window search in the kNN example workloads.
bool knn_via_index(const PointIndex& index, const Point& query, int k,
                   std::vector<Point>* neighbors);

}  // namespace sfc
