// Adaptive mesh refinement (AMR) partitioning — the dynamic-grid application
// of the paper's introduction (Parashar & Browne [22], Pilkington & Baden
// [23]).
//
// A quadtree/octree mesh is refined around hot spots of a density field, so
// leaves have heterogeneous sizes and costs.  Partitioning assigns *leaves*
// (weighted by cost) to workers by cutting the leaf sequence — ordered by
// the SFC key of each leaf's anchor cell at the finest resolution — into
// contiguous ranges.  Quality is measured on the finest grid: every
// finest-level NN pair whose cells land in different workers is
// communication.  This extends the uniform-grid partition app to the
// workload the cited papers actually target.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sfc/common/types.h"
#include "sfc/curves/space_filling_curve.h"
#include "sfc/grid/box.h"

namespace sfc {

/// One AMR leaf: a cube of finest-level cells.
struct AmrLeaf {
  Point anchor;        // lowest-coordinate finest-level cell
  coord_t size = 1;    // edge length in finest cells (power of two)
  double cost = 1.0;   // work estimate (refined leaves cost more per cell)
};

struct AmrMesh {
  /// The finest-level universe the leaves tile.
  int dim = 2;
  int finest_bits = 0;
  std::vector<AmrLeaf> leaves;

  Universe finest_universe() const { return Universe::pow2(dim, finest_bits); }
  /// Total finest cells covered (must equal the universe size).
  index_t covered_cells() const;
};

/// Density-driven refinement: starts from one root block and splits any
/// block whose density integral exceeds `split_threshold`, down to
/// `finest_bits` levels.  `density` maps a finest cell to a non-negative
/// weight.  Deterministic.
AmrMesh build_amr_mesh(int dim, int finest_bits,
                       const std::function<double(const Point&)>& density,
                       double split_threshold);

/// Convenience density: sum of Gaussian hot spots (deterministic in seed).
std::function<double(const Point&)> make_hotspot_density(int dim, int finest_bits,
                                                         int spots,
                                                         std::uint64_t seed);

struct AmrPartitionQuality {
  int parts = 0;
  /// Finest-level NN pairs crossing workers.
  index_t edge_cut = 0;
  double cut_fraction = 0.0;
  /// max worker cost / mean worker cost.
  double cost_imbalance = 0.0;
  std::size_t leaves = 0;
};

/// Orders leaves by curve key of their anchors, splits into `parts`
/// cost-balanced contiguous ranges, and scores the decomposition on the
/// finest grid.  `curve` must live on mesh.finest_universe().
AmrPartitionQuality evaluate_amr_partition(const AmrMesh& mesh,
                                           const SpaceFillingCurve& curve,
                                           int parts);

}  // namespace sfc
