// Recoverable errors for invalid curve construction arguments.
//
// Mirrors PartitionArgumentError / AllPairsLimitError /
// DecompositionArgumentError: the library surface throws a typed exception
// instead of aborting, so drivers (sfctool, services embedding the library)
// can report the bad argument and keep running.
#pragma once

#include <stdexcept>
#include <string>

namespace sfc {

/// Thrown when a curve cannot be constructed or dispatched on the given
/// arguments: an unknown CurveFamily value, a 2-d-only curve (diagonal,
/// spiral) built on another dimensionality, or a permutation table that is
/// not a bijection of the universe's cells.
class CurveArgumentError : public std::invalid_argument {
 public:
  explicit CurveArgumentError(const std::string& what)
      : std::invalid_argument(what) {}
};

}  // namespace sfc
