// Recoverable errors for invalid curve construction arguments.
//
// Like every recoverable error of the library surface it derives from
// sfc::Error (common/error.h), so drivers (sfctool, services embedding the
// library) can catch one type at the tool boundary, report the bad argument,
// and keep running.
#pragma once

#include <string>

#include "sfc/common/error.h"

namespace sfc {

/// Thrown when a curve cannot be constructed or dispatched on the given
/// arguments: an unknown CurveFamily value or descriptor, a 2-d-only curve
/// (diagonal, spiral) built on another dimensionality, or a permutation
/// table that is not a bijection of the universe's cells.
class CurveArgumentError : public Error {
 public:
  explicit CurveArgumentError(const std::string& what) : Error(what) {}
};

}  // namespace sfc
