// Name-based construction of every curve family, for sweeps and CLI tools.
#pragma once

#include <string>
#include <vector>

#include "sfc/curves/space_filling_curve.h"

namespace sfc {

/// Curve family identifiers understood by make_curve.
enum class CurveFamily {
  kZ,        // paper §IV-B (requires power-of-two side)
  kSimple,   // paper Eq. (8)
  kSnake,    // boustrophedon baseline
  kGray,     // Faloutsos Gray-code curve (requires power-of-two side)
  kHilbert,  // Skilling transpose (requires power-of-two side)
  kRandom,   // uniformly random bijection (seeded)
};

/// All families, in canonical table order.
const std::vector<CurveFamily>& all_curve_families();

/// Families that do not require materializing an O(n) permutation table.
const std::vector<CurveFamily>& analytic_curve_families();

std::string family_name(CurveFamily family);

/// True iff the family requires side = 2^k.
bool family_requires_pow2(CurveFamily family);

/// Constructs a curve on `universe`.  `seed` is used only by kRandom.
/// family_name / family_requires_pow2 / make_curve throw CurveArgumentError
/// on CurveFamily values outside the enum.
CurvePtr make_curve(CurveFamily family, const Universe& universe,
                    std::uint64_t seed = 1);

}  // namespace sfc
