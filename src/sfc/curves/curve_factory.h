// Name-based construction of every curve family, for sweeps and CLI tools.
#pragma once

#include <string>
#include <vector>

#include "sfc/curves/space_filling_curve.h"

namespace sfc {

/// Curve family identifiers understood by make_curve.
enum class CurveFamily {
  kZ,        // paper §IV-B (requires power-of-two side)
  kSimple,   // paper Eq. (8)
  kSnake,    // boustrophedon baseline
  kGray,     // Faloutsos Gray-code curve (requires power-of-two side)
  kHilbert,  // Skilling transpose (requires power-of-two side)
  kRandom,   // uniformly random bijection (seeded)
};

/// All families, in canonical table order.
const std::vector<CurveFamily>& all_curve_families();

/// Families that do not require materializing an O(n) permutation table.
const std::vector<CurveFamily>& analytic_curve_families();

std::string family_name(CurveFamily family);

/// True iff the family requires side = 2^k.
bool family_requires_pow2(CurveFamily family);

/// Constructs a curve on `universe`.  `seed` is used only by kRandom.
/// family_name / family_requires_pow2 / make_curve throw CurveArgumentError
/// on CurveFamily values outside the enum.
CurvePtr make_curve(CurveFamily family, const Universe& universe,
                    std::uint64_t seed = 1);

/// A serializable identity of a curve: enough to reconstruct the exact same
/// bijection in another process.  This is what the on-disk index format
/// (sfc/store) persists in its header, so a mmap-opened index rebuilds the
/// very curve it was built with — `family` is the canonical CLI name and
/// covers every constructible family, including the ones outside CurveFamily
/// (peano, spiral, diagonal); `seed` matters only for "random".
struct CurveDescriptor {
  std::string family;        ///< "z", "simple", "snake", "gray", "hilbert",
                             ///< "random", "peano", "spiral", "diagonal"
  int dim = 2;               ///< universe dimensionality
  coord_t side = 0;          ///< universe side (cells per dimension)
  std::uint64_t seed = 1;    ///< permutation seed ("random" only)

  /// "family d=D side=S seed=Q" — the round-trippable rendering.
  std::string to_string() const;
  /// Inverse of to_string; throws CurveArgumentError on malformed text.
  static CurveDescriptor parse(const std::string& text);

  friend bool operator==(const CurveDescriptor& a, const CurveDescriptor& b) {
    return a.family == b.family && a.dim == b.dim && a.side == b.side &&
           (a.family != "random" || a.seed == b.seed);
  }
};

/// The names make_curve(descriptor) understands, in canonical order.
const std::vector<std::string>& descriptor_family_names();

/// Constructs the curve a descriptor names.  Throws CurveArgumentError on an
/// unknown family name or a universe the family cannot be built on (non-2^k
/// side for z/gray/hilbert, non-3^k side for peano, dim != 2 for
/// spiral/diagonal) — never aborts, so corrupt persisted descriptors are
/// recoverable at the tool boundary.
CurvePtr make_curve(const CurveDescriptor& descriptor);

}  // namespace sfc
