// An explicit bijection given as a permutation table.
//
// The paper's definition of an SFC is *any* bijection π : U → {0..n-1}
// (§III); PermutationCurve realizes that full generality.  Random instances
// serve as adversarial baselines in the lower-bound experiments (Theorem 1
// must hold for them too), and tiny explicit instances realize the Figure-1
// toy curves.  Keys are indexed by the universe's row-major cell id.
#pragma once

#include <vector>

#include "sfc/curves/space_filling_curve.h"
#include "sfc/rng/xoshiro256.h"

namespace sfc {

class PermutationCurve final : public SpaceFillingCurve {
 public:
  /// `keys[row_major_id]` = curve position of that cell.  Must be a
  /// permutation of {0..n-1}; validated at construction (throws
  /// CurveArgumentError otherwise).
  PermutationCurve(Universe universe, std::vector<index_t> keys,
                   std::string name = "permutation");

  /// Uniformly random bijection.
  static CurvePtr random(Universe universe, std::uint64_t seed);

  std::string name() const override { return name_; }
  index_t index_of(const Point& cell) const override;
  Point point_at(index_t key) const override;

 private:
  std::vector<index_t> keys_;      // row-major id -> curve key
  std::vector<index_t> inverse_;   // curve key -> row-major id
  std::string name_;
};

}  // namespace sfc
