#include "sfc/curves/curve_factory.h"

#include <memory>
#include <string>

#include "sfc/curves/curve_error.h"
#include "sfc/curves/gray_curve.h"
#include "sfc/curves/hilbert_curve.h"
#include "sfc/curves/permutation_curve.h"
#include "sfc/curves/simple_curve.h"
#include "sfc/curves/snake_curve.h"
#include "sfc/curves/zcurve.h"

namespace sfc {

const std::vector<CurveFamily>& all_curve_families() {
  static const std::vector<CurveFamily> families = {
      CurveFamily::kZ,    CurveFamily::kSimple,  CurveFamily::kSnake,
      CurveFamily::kGray, CurveFamily::kHilbert, CurveFamily::kRandom};
  return families;
}

const std::vector<CurveFamily>& analytic_curve_families() {
  static const std::vector<CurveFamily> families = {
      CurveFamily::kZ, CurveFamily::kSimple, CurveFamily::kSnake,
      CurveFamily::kGray, CurveFamily::kHilbert};
  return families;
}

std::string family_name(CurveFamily family) {
  switch (family) {
    case CurveFamily::kZ: return "z-curve";
    case CurveFamily::kSimple: return "simple";
    case CurveFamily::kSnake: return "snake";
    case CurveFamily::kGray: return "gray";
    case CurveFamily::kHilbert: return "hilbert";
    case CurveFamily::kRandom: return "random";
  }
  throw CurveArgumentError("unknown curve family id " +
                           std::to_string(static_cast<int>(family)));
}

bool family_requires_pow2(CurveFamily family) {
  switch (family) {
    case CurveFamily::kZ:
    case CurveFamily::kGray:
    case CurveFamily::kHilbert:
      return true;
    case CurveFamily::kSimple:
    case CurveFamily::kSnake:
    case CurveFamily::kRandom:
      return false;
  }
  throw CurveArgumentError("unknown curve family id " +
                           std::to_string(static_cast<int>(family)));
}

CurvePtr make_curve(CurveFamily family, const Universe& universe,
                    std::uint64_t seed) {
  switch (family) {
    case CurveFamily::kZ: return std::make_unique<ZCurve>(universe);
    case CurveFamily::kSimple: return std::make_unique<SimpleCurve>(universe);
    case CurveFamily::kSnake: return std::make_unique<SnakeCurve>(universe);
    case CurveFamily::kGray: return std::make_unique<GrayCurve>(universe);
    case CurveFamily::kHilbert: return std::make_unique<HilbertCurve>(universe);
    case CurveFamily::kRandom: return PermutationCurve::random(universe, seed);
  }
  throw CurveArgumentError("unknown curve family id " +
                           std::to_string(static_cast<int>(family)));
}

}  // namespace sfc
