#include "sfc/curves/curve_factory.h"

#include <limits>
#include <memory>
#include <string>

#include "sfc/curves/curve_error.h"
#include "sfc/curves/diagonal_curve.h"
#include "sfc/curves/gray_curve.h"
#include "sfc/curves/hilbert_curve.h"
#include "sfc/curves/peano_curve.h"
#include "sfc/curves/permutation_curve.h"
#include "sfc/curves/simple_curve.h"
#include "sfc/curves/snake_curve.h"
#include "sfc/curves/spiral_curve.h"
#include "sfc/curves/zcurve.h"

namespace sfc {

const std::vector<CurveFamily>& all_curve_families() {
  static const std::vector<CurveFamily> families = {
      CurveFamily::kZ,    CurveFamily::kSimple,  CurveFamily::kSnake,
      CurveFamily::kGray, CurveFamily::kHilbert, CurveFamily::kRandom};
  return families;
}

const std::vector<CurveFamily>& analytic_curve_families() {
  static const std::vector<CurveFamily> families = {
      CurveFamily::kZ, CurveFamily::kSimple, CurveFamily::kSnake,
      CurveFamily::kGray, CurveFamily::kHilbert};
  return families;
}

std::string family_name(CurveFamily family) {
  switch (family) {
    case CurveFamily::kZ: return "z-curve";
    case CurveFamily::kSimple: return "simple";
    case CurveFamily::kSnake: return "snake";
    case CurveFamily::kGray: return "gray";
    case CurveFamily::kHilbert: return "hilbert";
    case CurveFamily::kRandom: return "random";
  }
  throw CurveArgumentError("unknown curve family id " +
                           std::to_string(static_cast<int>(family)));
}

bool family_requires_pow2(CurveFamily family) {
  switch (family) {
    case CurveFamily::kZ:
    case CurveFamily::kGray:
    case CurveFamily::kHilbert:
      return true;
    case CurveFamily::kSimple:
    case CurveFamily::kSnake:
    case CurveFamily::kRandom:
      return false;
  }
  throw CurveArgumentError("unknown curve family id " +
                           std::to_string(static_cast<int>(family)));
}

CurvePtr make_curve(CurveFamily family, const Universe& universe,
                    std::uint64_t seed) {
  switch (family) {
    case CurveFamily::kZ: return std::make_unique<ZCurve>(universe);
    case CurveFamily::kSimple: return std::make_unique<SimpleCurve>(universe);
    case CurveFamily::kSnake: return std::make_unique<SnakeCurve>(universe);
    case CurveFamily::kGray: return std::make_unique<GrayCurve>(universe);
    case CurveFamily::kHilbert: return std::make_unique<HilbertCurve>(universe);
    case CurveFamily::kRandom: return PermutationCurve::random(universe, seed);
  }
  throw CurveArgumentError("unknown curve family id " +
                           std::to_string(static_cast<int>(family)));
}

namespace {

bool is_power_of(index_t value, index_t base) {
  while (value % base == 0) value /= base;
  return value == 1;
}

/// Parses "key=value" with an all-digit value; throws on mismatch.
std::uint64_t parse_field(const std::string& token, const std::string& key,
                          const std::string& text) {
  const std::string prefix = key + "=";
  if (token.rfind(prefix, 0) != 0) {
    throw CurveArgumentError("curve descriptor '" + text + "': expected " +
                             prefix + "..., got '" + token + "'");
  }
  const std::string digits = token.substr(prefix.size());
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    throw CurveArgumentError("curve descriptor '" + text + "': field " + key +
                             " must be a non-negative integer");
  }
  try {
    return std::stoull(digits);
  } catch (const std::exception&) {
    throw CurveArgumentError("curve descriptor '" + text + "': field " + key +
                             " out of range");
  }
}

}  // namespace

std::string CurveDescriptor::to_string() const {
  return family + " d=" + std::to_string(dim) + " side=" +
         std::to_string(side) + " seed=" + std::to_string(seed);
}

CurveDescriptor CurveDescriptor::parse(const std::string& text) {
  std::vector<std::string> tokens;
  std::size_t at = 0;
  while (at < text.size()) {
    const std::size_t space = text.find(' ', at);
    const std::size_t end = space == std::string::npos ? text.size() : space;
    if (end > at) tokens.push_back(text.substr(at, end - at));
    at = end + 1;
  }
  if (tokens.size() != 4) {
    throw CurveArgumentError("curve descriptor '" + text +
                             "': expected 'family d=D side=S seed=Q'");
  }
  CurveDescriptor descriptor;
  descriptor.family = tokens[0];
  const std::uint64_t dim = parse_field(tokens[1], "d", text);
  const std::uint64_t side = parse_field(tokens[2], "side", text);
  if (dim < 1 || dim > static_cast<std::uint64_t>(kMaxDim)) {
    throw CurveArgumentError("curve descriptor '" + text + "': d = " +
                             std::to_string(dim) + " outside [1, " +
                             std::to_string(kMaxDim) + "]");
  }
  if (side < 1 || side > std::numeric_limits<coord_t>::max()) {
    throw CurveArgumentError("curve descriptor '" + text + "': side = " +
                             std::to_string(side) + " not a coordinate");
  }
  descriptor.dim = static_cast<int>(dim);
  descriptor.side = static_cast<coord_t>(side);
  descriptor.seed = parse_field(tokens[3], "seed", text);
  return descriptor;
}

const std::vector<std::string>& descriptor_family_names() {
  static const std::vector<std::string> names = {
      "z",      "simple", "snake",  "gray",    "hilbert",
      "random", "peano",  "spiral", "diagonal"};
  return names;
}

CurvePtr make_curve(const CurveDescriptor& descriptor) {
  const std::string& family = descriptor.family;
  if (descriptor.dim < 1 || descriptor.dim > kMaxDim) {
    throw CurveArgumentError("curve descriptor: d = " +
                             std::to_string(descriptor.dim) + " outside [1, " +
                             std::to_string(kMaxDim) + "]");
  }
  if (descriptor.side < 1) {
    throw CurveArgumentError("curve descriptor: side must be >= 1");
  }
  // Check preconditions before constructing: Universe and the curve
  // constructors abort on violations, and a descriptor can come from a
  // corrupt file — the store layer needs a recoverable throw instead.
  index_t cells = 1;
  for (int i = 0; i < descriptor.dim; ++i) {
    if (cells > (std::numeric_limits<index_t>::max() >> 1) / descriptor.side) {
      throw CurveArgumentError("curve descriptor: side " +
                               std::to_string(descriptor.side) + "^" +
                               std::to_string(descriptor.dim) +
                               " overflows the 63-bit cell count");
    }
    cells *= descriptor.side;
  }
  if ((family == "z" || family == "gray" || family == "hilbert") &&
      !is_power_of(descriptor.side, 2)) {
    throw CurveArgumentError("curve descriptor: " + family +
                             " requires a power-of-two side, got " +
                             std::to_string(descriptor.side));
  }
  if (family == "peano" && !is_power_of(descriptor.side, 3)) {
    throw CurveArgumentError(
        "curve descriptor: peano requires a power-of-three side, got " +
        std::to_string(descriptor.side));
  }
  if ((family == "spiral" || family == "diagonal") && descriptor.dim != 2) {
    throw CurveArgumentError("curve descriptor: " + family +
                             " is 2-d only, got d = " +
                             std::to_string(descriptor.dim));
  }
  const Universe universe(descriptor.dim, descriptor.side);
  if (family == "z") return std::make_unique<ZCurve>(universe);
  if (family == "simple") return std::make_unique<SimpleCurve>(universe);
  if (family == "snake") return std::make_unique<SnakeCurve>(universe);
  if (family == "gray") return std::make_unique<GrayCurve>(universe);
  if (family == "hilbert") return std::make_unique<HilbertCurve>(universe);
  if (family == "random") {
    return PermutationCurve::random(universe, descriptor.seed);
  }
  if (family == "peano") return std::make_unique<PeanoCurve>(universe);
  if (family == "spiral") return std::make_unique<SpiralCurve>(universe);
  if (family == "diagonal") return std::make_unique<DiagonalCurve>(universe);
  throw CurveArgumentError("curve descriptor: unknown family '" + family +
                           "'");
}

}  // namespace sfc
