// The Peano curve (Peano 1890) in arbitrary dimension, side = 3^k.
//
// Construction follows Peano's original ternary-digit formula, generalized
// to d dimensions: writing the key in base 3 as digits t_1 t_2 ... t_{dk}
// (most significant first, dimension 1 first within each level), coordinate
// i's level-j digit is
//
//   c_{i,j} = kappa^{S}( t_{(j-1)d + i} ),   kappa(t) = 2 - t,
//
// where the reflection count S is the sum of all *earlier* key digits that
// belong to other dimensions.  The curve is continuous (consecutive keys are
// nearest neighbors), which the test suite verifies exhaustively.
//
// Included for two reasons: it is the historically first SFC, and it extends
// the continuous-curve ablation (snake, Hilbert) to non-power-of-two sides,
// exercising the bound formulas away from the paper's side = 2^k setting.
#pragma once

#include "sfc/curves/space_filling_curve.h"

namespace sfc {

class PeanoCurve final : public SpaceFillingCurve {
 public:
  /// Universe side must be a power of three.
  explicit PeanoCurve(Universe universe);

  std::string name() const override { return "peano"; }
  index_t index_of(const Point& cell) const override;
  Point point_at(index_t key) const override;
  bool is_continuous() const override { return true; }

  /// k with side = 3^k.
  int level_count() const { return levels_; }

  /// Triadic: each 3^d-way key split lands on the 3^d aligned third-side
  /// subcubes of the ternary construction, so even this non-dyadic family
  /// keeps exact O(runs · log side) box covers (sfc/ranges).
  coord_t subtree_radix() const override { return 3; }

  /// Direct ternary-digit descent.  A node's state packs one reflection
  /// parity bit per dimension (bit i = S_i mod 2 of the digit formula, taken
  /// over all key digits above this subtree); child j's ternary digits are
  /// mapped through kappa per the parities, and the child state adds the
  /// digits of the other dimensions — no decoder round trip.  Bit-identical
  /// to the generic decode-based descent (tests/ranges/
  /// test_descent_kernels.cpp); speed-gated by bench/perf_kernels.cpp.
  void subtree_children(const SubtreeNode& node,
                        std::span<SubtreeNode> children) const override;
  void subtree_children_batch(std::span<const SubtreeNode> nodes,
                              std::span<SubtreeNode> children) const override;

 private:
  int levels_;
};

}  // namespace sfc
