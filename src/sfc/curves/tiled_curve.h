// Blocked (tiled) row-major curve.
//
// The grid is partitioned into tiles of side T (T divides the universe
// side); tiles are visited in row-major order and cells within a tile in
// row-major order.  T = 1 and T = side both degenerate to the simple curve;
// intermediate T interpolates between the simple curve and the recursive
// blocking of the Z curve (T = side/2 one level of blocking, and so on).
//
// Included as the ablation axis for "how much recursive blocking does the
// stretch need?" — the Z curve is the T -> fully recursive limit.
#pragma once

#include "sfc/curves/space_filling_curve.h"

namespace sfc {

class TiledCurve final : public SpaceFillingCurve {
 public:
  /// tile_side must divide the universe side.
  TiledCurve(Universe universe, coord_t tile_side);

  std::string name() const override;
  index_t index_of(const Point& cell) const override;
  Point point_at(index_t key) const override;

  coord_t tile_side() const { return tile_side_; }

 private:
  coord_t tile_side_;
  index_t cells_per_tile_;
  coord_t tiles_per_side_;
};

}  // namespace sfc
