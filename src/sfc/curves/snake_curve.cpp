#include "sfc/curves/snake_curve.h"

namespace sfc {

// Mixed-radix boustrophedon code.  Writing the key in base `side` as digits
// b_d b_{d-1} ... b_1 (b_d most significant, consistent with the simple
// curve's S(α) = Σ x_i side^{i-1}):
//
//   b_i = x_i                 if the sum of the *original* digits above
//                             position i (x_{i+1} + ... + x_d) is even,
//   b_i = side-1-x_i          otherwise.
//
// Incrementing the key by one either bumps b_1 (moving one cell along
// dimension 1) or carries, flipping direction exactly like a snake.

index_t SnakeCurve::index_of(const Point& cell) const {
  const int d = universe_.dim();
  const index_t side = universe_.side();
  index_t key = 0;
  std::uint64_t parity_above = 0;
  for (int i = d - 1; i >= 0; --i) {
    const coord_t digit = (parity_above % 2 == 0) ? cell[i] : static_cast<coord_t>(side - 1 - cell[i]);
    key = key * side + digit;
    parity_above += cell[i];
  }
  return key;
}

Point SnakeCurve::point_at(index_t key) const {
  const int d = universe_.dim();
  const index_t side = universe_.side();
  // Extract reflected digits b_i, most significant (i = d) first, undoing the
  // reflection as the original digits above become known.
  Point p = Point::zero(d);
  std::uint64_t parity_above = 0;
  index_t divisor = 1;
  for (int i = 1; i < d; ++i) divisor *= side;
  for (int i = d - 1; i >= 0; --i) {
    const auto digit = static_cast<coord_t>(key / divisor);
    key %= divisor;
    if (divisor > 1) divisor /= side;
    const coord_t original = (parity_above % 2 == 0) ? digit : static_cast<coord_t>(side - 1 - digit);
    p[i] = original;
    parity_above += original;
  }
  return p;
}

}  // namespace sfc
