// The two 2x2 toy curves of the paper's Figure 1.
//
// Cell layout (x1 horizontal = dimension 1, x2 vertical = dimension 2,
// origin bottom-left):
//
//        A  C            A=(0,1)  C=(1,1)
//        D  B            D=(0,0)  B=(1,0)
//
// π1 orders the cells C, A, B, D and π2 orders them A, B, C, D.  The paper
// works out Davg(π1)=1.5, Davg(π2)=2, Dmax(π1)=2, Dmax(π2)=2.5; the test
// suite and bench/repro_fig1_toy_curves verify these exactly.
#pragma once

#include "sfc/curves/space_filling_curve.h"

namespace sfc {

/// The left curve of Figure 1 (order C, A, B, D).
CurvePtr make_figure1_pi1();

/// The right, self-intersecting curve of Figure 1 (order A, B, C, D).
CurvePtr make_figure1_pi2();

/// Label (A/B/C/D) of a Figure-1 cell, for figure reproduction.
char figure1_label(const Point& cell);

}  // namespace sfc
