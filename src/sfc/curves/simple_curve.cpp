#include "sfc/curves/simple_curve.h"

// Header-only implementation; this translation unit anchors the vtable.
