#include "sfc/curves/key_cache.h"

#include "sfc/metrics/slab_walker.h"

namespace sfc {

KeyCache::KeyCache(const SpaceFillingCurve& curve, ThreadPool& pool)
    : universe_(curve.universe()), keys_(universe_.cell_count()) {
  build_key_table(curve, pool, keys_);
}

}  // namespace sfc
