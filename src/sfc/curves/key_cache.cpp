#include "sfc/curves/key_cache.h"

#include "sfc/parallel/parallel_for.h"

namespace sfc {

KeyCache::KeyCache(const SpaceFillingCurve& curve, ThreadPool& pool)
    : universe_(curve.universe()), keys_(universe_.cell_count()) {
  parallel_for_chunks(pool, universe_.cell_count(), kDefaultGrain,
                      [&](const ChunkRange& range) {
                        for (index_t id = range.begin; id < range.end; ++id) {
                          keys_[id] = curve.index_of(universe_.from_row_major(id));
                        }
                      });
}

}  // namespace sfc
