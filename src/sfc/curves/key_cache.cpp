#include "sfc/curves/key_cache.h"

#include <span>

#include "sfc/parallel/parallel_for.h"

namespace sfc {

KeyCache::KeyCache(const SpaceFillingCurve& curve, ThreadPool& pool)
    : universe_(curve.universe()), keys_(universe_.cell_count()) {
  parallel_for_chunks(
      pool, universe_.cell_count(), kDefaultGrain, [&](const ChunkRange& range) {
        const std::size_t len = range.end - range.begin;
        std::vector<Point> cells(len);
        for (std::size_t i = 0; i < len; ++i) {
          cells[i] = universe_.from_row_major(range.begin + i);
        }
        curve.index_of_batch(
            cells, std::span<index_t>(keys_.data() + range.begin, len));
      });
}

}  // namespace sfc
