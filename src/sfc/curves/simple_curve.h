// The paper's "simple curve" S — §IV-C, Eq. (8).
//
//   S(α) = Σ_{i=1..d}  x_i · side^{i-1}
//
// i.e. plain row-major order with dimension 1 varying fastest.  Theorem 3
// shows that despite its naivety it matches the Z curve's average NN-stretch
// asymptotically, and Proposition 2 shows Dmax(S) = n^{1-1/d} exactly.
// Works for any side (no power-of-two requirement).
#pragma once

#include "sfc/curves/space_filling_curve.h"

namespace sfc {

class SimpleCurve final : public SpaceFillingCurve {
 public:
  explicit SimpleCurve(Universe universe) : SpaceFillingCurve(universe) {}

  std::string name() const override { return "simple"; }
  index_t index_of(const Point& cell) const override {
    return universe_.row_major_index(cell);
  }
  Point point_at(index_t key) const override {
    return universe_.from_row_major(key);
  }
};

}  // namespace sfc
