// The SFC abstraction.
//
// Following the paper (§III), a space filling curve is *any* bijection
// π : U → {0, ..., n-1}; it need not be continuous or self-avoiding (the
// paper's lower bounds therefore also apply to the classical non-intersecting
// curves).  index_of is the paper's π(α); curve_distance is ∆π(α,β).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "sfc/common/types.h"
#include "sfc/grid/point.h"
#include "sfc/grid/universe.h"

namespace sfc {

/// A node of a curve's recursive subtree decomposition: an axis-aligned
/// subcube of side `side` (a power of the curve's subtree radix) whose cells
/// occupy the contiguous key interval [key_lo, key_lo + key_count).  The
/// hierarchy is what makes output-sensitive box→key-range covers possible
/// (sfc/ranges): a query descends the tree, emitting whole intervals for
/// subtrees inside the box and pruning subtrees outside it.
struct SubtreeNode {
  Point origin;        ///< lower corner of the subcube
  coord_t side = 0;    ///< subcube side length (radix^level)
  index_t key_lo = 0;  ///< first curve key of the subtree
  index_t key_count = 0;  ///< side^d — number of cells/keys in the subtree
  std::uint32_t state = 0;  ///< opaque curve-specific descent state

  /// Exact minimum squared Euclidean distance from `q` (same dimension as
  /// the node) to any cell of the subcube — 0 when q lies inside it.  The
  /// best-first kNN descent (sfc/index) orders its frontier by this bound.
  std::uint64_t min_squared_distance(const Point& q) const;
};

class SpaceFillingCurve {
 public:
  explicit SpaceFillingCurve(Universe universe) : universe_(universe) {}
  virtual ~SpaceFillingCurve() = default;

  SpaceFillingCurve(const SpaceFillingCurve&) = delete;
  SpaceFillingCurve& operator=(const SpaceFillingCurve&) = delete;

  const Universe& universe() const { return universe_; }

  /// Human-readable curve name (used in tables and reports).
  virtual std::string name() const = 0;

  /// π(α): the position of cell α on the curve, in [0, n).
  virtual index_t index_of(const Point& cell) const = 0;

  /// π⁻¹(key): the cell at position `key` on the curve.
  virtual Point point_at(index_t key) const = 0;

  /// Batched π: keys[i] = index_of(cells[i]) for every i.  Spans must have
  /// equal length (aborts otherwise).  The base implementation is a scalar
  /// loop over the virtuals; analytic families (Z, Gray, Hilbert) override it
  /// with branch-free kernels that hoist the per-curve dispatch out of the
  /// loop, which is what the metric engines and apps call on their hot paths.
  virtual void index_of_batch(std::span<const Point> cells,
                              std::span<index_t> keys) const;

  /// Batched π⁻¹: cells[i] = point_at(keys[i]) for every i.  Same contract
  /// as index_of_batch.
  virtual void point_at_batch(std::span<const index_t> keys,
                              std::span<Point> cells) const;

  /// Convenience for the common "decode a contiguous key window" pattern:
  /// cells[i] = point_at(first_key + i).  Routes through point_at_batch in
  /// fixed-size chunks so no caller-side key buffer is needed.
  void point_range(index_t first_key, std::span<Point> cells) const;

  /// ∆π(α,β) = |π(α) − π(β)|.
  index_t curve_distance(const Point& a, const Point& b) const;

  /// True iff consecutive curve positions are always nearest neighbors in U
  /// (the classical "continuous curve" property; Z and Gray curves are not
  /// continuous, Hilbert/snake/simple... see each curve's documentation).
  virtual bool is_continuous() const { return false; }

  // ---- Subtree traversal (hierarchical curves) ----------------------------
  //
  // A curve has *subtree structure* when splitting its key sequence into
  // radix^d equal contiguous blocks, recursively, always yields axis-aligned
  // subcubes of side `parent side / radix`.  Z, Gray, and Hilbert are dyadic
  // (radix 2); Peano is triadic (radix 3).  The RangeCoverEngine
  // (sfc/ranges) uses this structure to decompose a query box into its exact
  // maximal key intervals in O(runs · log side) instead of O(volume).

  /// Cells-per-dimension split factor of the recursive decomposition, or 0
  /// when the curve has no key-aligned subtree structure (simple, snake,
  /// spiral, diagonal, tiled, permutation, ...).
  virtual coord_t subtree_radix() const { return 0; }

  bool has_subtree_traversal() const { return subtree_radix() > 0; }

  /// The root node: the whole universe, keys [0, n).  Requires
  /// has_subtree_traversal().
  SubtreeNode subtree_root() const;

  /// Fills `children` (size must be subtree_radix()^d) with the children of
  /// `node` in curve visit order, i.e. ascending by key_lo: child j covers
  /// keys [node.key_lo + j·c, node.key_lo + (j+1)·c) with c = node.key_count
  /// / radix^d.  Requires node.side > 1 and has_subtree_traversal().
  ///
  /// The base implementation routes through subtree_children_batch; Z and
  /// Gray override it with direct bit kernels (child digit → subcube offset)
  /// that never touch the decoder.
  virtual void subtree_children(const SubtreeNode& node,
                                std::span<SubtreeNode> children) const;

  /// Batched expansion of a whole frontier: the children of nodes[i] land in
  /// children[i·arity, (i+1)·arity), each block in visit order.  The base
  /// implementation gathers every child's first key into a single
  /// point_at_batch call and rounds the decoded cells down to the child-side
  /// grid — correct for any curve whose key blocks are aligned subcubes, and
  /// amortizing the batch kernel's per-call setup across the frontier
  /// (Hilbert and Peano descend through their existing batched decoders this
  /// way).  Z and Gray override it with loops over their bit kernels.
  virtual void subtree_children_batch(std::span<const SubtreeNode> nodes,
                                      std::span<SubtreeNode> children) const;

  /// Descent state stored in subtree_root().state; curve-specific.
  virtual std::uint32_t subtree_root_state() const { return 0; }

 protected:
  /// Node-by-node batch expansion: loops the subtree_children virtual over
  /// each node's slot of `children`.  Curves whose per-node kernel is already
  /// cheap (Z, Gray, Hilbert state descent) implement their
  /// subtree_children_batch override with this.
  void expand_subtrees_nodewise(std::span<const SubtreeNode> nodes,
                                std::span<SubtreeNode> children) const;

  Universe universe_;
};

using CurvePtr = std::unique_ptr<SpaceFillingCurve>;

}  // namespace sfc
