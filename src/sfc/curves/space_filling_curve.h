// The SFC abstraction.
//
// Following the paper (§III), a space filling curve is *any* bijection
// π : U → {0, ..., n-1}; it need not be continuous or self-avoiding (the
// paper's lower bounds therefore also apply to the classical non-intersecting
// curves).  index_of is the paper's π(α); curve_distance is ∆π(α,β).
#pragma once

#include <memory>
#include <span>
#include <string>

#include "sfc/common/types.h"
#include "sfc/grid/point.h"
#include "sfc/grid/universe.h"

namespace sfc {

class SpaceFillingCurve {
 public:
  explicit SpaceFillingCurve(Universe universe) : universe_(universe) {}
  virtual ~SpaceFillingCurve() = default;

  SpaceFillingCurve(const SpaceFillingCurve&) = delete;
  SpaceFillingCurve& operator=(const SpaceFillingCurve&) = delete;

  const Universe& universe() const { return universe_; }

  /// Human-readable curve name (used in tables and reports).
  virtual std::string name() const = 0;

  /// π(α): the position of cell α on the curve, in [0, n).
  virtual index_t index_of(const Point& cell) const = 0;

  /// π⁻¹(key): the cell at position `key` on the curve.
  virtual Point point_at(index_t key) const = 0;

  /// Batched π: keys[i] = index_of(cells[i]) for every i.  Spans must have
  /// equal length (aborts otherwise).  The base implementation is a scalar
  /// loop over the virtuals; analytic families (Z, Gray, Hilbert) override it
  /// with branch-free kernels that hoist the per-curve dispatch out of the
  /// loop, which is what the metric engines and apps call on their hot paths.
  virtual void index_of_batch(std::span<const Point> cells,
                              std::span<index_t> keys) const;

  /// Batched π⁻¹: cells[i] = point_at(keys[i]) for every i.  Same contract
  /// as index_of_batch.
  virtual void point_at_batch(std::span<const index_t> keys,
                              std::span<Point> cells) const;

  /// Convenience for the common "decode a contiguous key window" pattern:
  /// cells[i] = point_at(first_key + i).  Routes through point_at_batch in
  /// fixed-size chunks so no caller-side key buffer is needed.
  void point_range(index_t first_key, std::span<Point> cells) const;

  /// ∆π(α,β) = |π(α) − π(β)|.
  index_t curve_distance(const Point& a, const Point& b) const;

  /// True iff consecutive curve positions are always nearest neighbors in U
  /// (the classical "continuous curve" property; Z and Gray curves are not
  /// continuous, Hilbert/snake/simple... see each curve's documentation).
  virtual bool is_continuous() const { return false; }

 protected:
  Universe universe_;
};

using CurvePtr = std::unique_ptr<SpaceFillingCurve>;

}  // namespace sfc
