// The SFC abstraction.
//
// Following the paper (§III), a space filling curve is *any* bijection
// π : U → {0, ..., n-1}; it need not be continuous or self-avoiding (the
// paper's lower bounds therefore also apply to the classical non-intersecting
// curves).  index_of is the paper's π(α); curve_distance is ∆π(α,β).
#pragma once

#include <memory>
#include <string>

#include "sfc/common/types.h"
#include "sfc/grid/point.h"
#include "sfc/grid/universe.h"

namespace sfc {

class SpaceFillingCurve {
 public:
  explicit SpaceFillingCurve(Universe universe) : universe_(universe) {}
  virtual ~SpaceFillingCurve() = default;

  SpaceFillingCurve(const SpaceFillingCurve&) = delete;
  SpaceFillingCurve& operator=(const SpaceFillingCurve&) = delete;

  const Universe& universe() const { return universe_; }

  /// Human-readable curve name (used in tables and reports).
  virtual std::string name() const = 0;

  /// π(α): the position of cell α on the curve, in [0, n).
  virtual index_t index_of(const Point& cell) const = 0;

  /// π⁻¹(key): the cell at position `key` on the curve.
  virtual Point point_at(index_t key) const = 0;

  /// ∆π(α,β) = |π(α) − π(β)|.
  index_t curve_distance(const Point& a, const Point& b) const;

  /// True iff consecutive curve positions are always nearest neighbors in U
  /// (the classical "continuous curve" property; Z and Gray curves are not
  /// continuous, Hilbert/snake/simple... see each curve's documentation).
  virtual bool is_continuous() const { return false; }

 protected:
  Universe universe_;
};

using CurvePtr = std::unique_ptr<SpaceFillingCurve>;

}  // namespace sfc
