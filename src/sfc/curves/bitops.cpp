#include "sfc/curves/bitops.h"

namespace sfc {

std::uint64_t spread_bits(std::uint64_t v, int stride, int bits) {
  std::uint64_t out = 0;
  for (int b = 0; b < bits; ++b) {
    out |= ((v >> b) & 1ULL) << (b * stride);
  }
  return out;
}

std::uint64_t compact_bits(std::uint64_t v, int stride, int bits) {
  std::uint64_t out = 0;
  for (int b = 0; b < bits; ++b) {
    out |= ((v >> (b * stride)) & 1ULL) << b;
  }
  return out;
}

std::uint64_t spread_bits_2(std::uint32_t v) {
  std::uint64_t x = v & 0xffffULL;
  x = (x | (x << 16)) & 0x0000ffff0000ffffULL;
  x = (x | (x << 8)) & 0x00ff00ff00ff00ffULL;
  x = (x | (x << 4)) & 0x0f0f0f0f0f0f0f0fULL;
  x = (x | (x << 2)) & 0x3333333333333333ULL;
  x = (x | (x << 1)) & 0x5555555555555555ULL;
  return x;
}

std::uint32_t compact_bits_2(std::uint64_t v) {
  std::uint64_t x = v & 0x5555555555555555ULL;
  x = (x | (x >> 1)) & 0x3333333333333333ULL;
  x = (x | (x >> 2)) & 0x0f0f0f0f0f0f0f0fULL;
  x = (x | (x >> 4)) & 0x00ff00ff00ff00ffULL;
  x = (x | (x >> 8)) & 0x0000ffff0000ffffULL;
  x = (x | (x >> 16)) & 0x00000000ffffffffULL;
  return static_cast<std::uint32_t>(x);
}

std::uint64_t spread_bits_3(std::uint32_t v) {
  std::uint64_t x = v & 0x1fffffULL;  // 21 bits
  x = (x | (x << 32)) & 0x001f00000000ffffULL;
  x = (x | (x << 16)) & 0x001f0000ff0000ffULL;
  x = (x | (x << 8)) & 0x100f00f00f00f00fULL;
  x = (x | (x << 4)) & 0x10c30c30c30c30c3ULL;
  x = (x | (x << 2)) & 0x1249249249249249ULL;
  return x;
}

std::uint32_t compact_bits_3(std::uint64_t v) {
  std::uint64_t x = v & 0x1249249249249249ULL;
  x = (x | (x >> 2)) & 0x10c30c30c30c30c3ULL;
  x = (x | (x >> 4)) & 0x100f00f00f00f00fULL;
  x = (x | (x >> 8)) & 0x001f0000ff0000ffULL;
  x = (x | (x >> 16)) & 0x001f00000000ffffULL;
  x = (x | (x >> 32)) & 0x00000000001fffffULL;
  return static_cast<std::uint32_t>(x);
}

index_t interleave(const Point& p, int level_bits) {
  const int d = p.dim();
  // Dimension 1 (component 0) is most significant within each level.
  if (d == 1) return p[0];
  if (d == 2 && level_bits <= 16) {
    return (spread_bits_2(p[0]) << 1) | spread_bits_2(p[1]);
  }
  if (d == 3 && level_bits <= 21) {
    return (spread_bits_3(p[0]) << 2) | (spread_bits_3(p[1]) << 1) |
           spread_bits_3(p[2]);
  }
  index_t key = 0;
  for (int i = 0; i < d; ++i) {
    key |= spread_bits(p[i], d, level_bits) << (d - 1 - i);
  }
  return key;
}

Point deinterleave(index_t key, int dim, int level_bits) {
  Point p = Point::zero(dim);
  if (dim == 1) {
    p[0] = static_cast<coord_t>(key);
    return p;
  }
  if (dim == 2 && level_bits <= 16) {
    p[0] = compact_bits_2(key >> 1);
    p[1] = compact_bits_2(key);
    return p;
  }
  if (dim == 3 && level_bits <= 21) {
    p[0] = compact_bits_3(key >> 2);
    p[1] = compact_bits_3(key >> 1);
    p[2] = compact_bits_3(key);
    return p;
  }
  for (int i = 0; i < dim; ++i) {
    p[i] = static_cast<coord_t>(compact_bits(key >> (dim - 1 - i), dim, level_bits));
  }
  return p;
}

std::uint64_t gray_decode(std::uint64_t g) {
  g ^= g >> 1;
  g ^= g >> 2;
  g ^= g >> 4;
  g ^= g >> 8;
  g ^= g >> 16;
  g ^= g >> 32;
  return g;
}

}  // namespace sfc
