#include "sfc/curves/bitops.h"

namespace sfc {

std::uint64_t spread_bits(std::uint64_t v, int stride, int bits) {
  std::uint64_t out = 0;
  for (int b = 0; b < bits; ++b) {
    out |= ((v >> b) & 1ULL) << (b * stride);
  }
  return out;
}

std::uint64_t compact_bits(std::uint64_t v, int stride, int bits) {
  std::uint64_t out = 0;
  for (int b = 0; b < bits; ++b) {
    out |= ((v >> (b * stride)) & 1ULL) << b;
  }
  return out;
}

index_t interleave(const Point& p, int level_bits) {
  const int d = p.dim();
  // Dimension 1 (component 0) is most significant within each level.
  if (d == 1) return p[0];
  if (d == 2 && level_bits <= 16) {
    return (spread_bits_2(p[0]) << 1) | spread_bits_2(p[1]);
  }
  if (d == 3 && level_bits <= 21) {
    return (spread_bits_3(p[0]) << 2) | (spread_bits_3(p[1]) << 1) |
           spread_bits_3(p[2]);
  }
  index_t key = 0;
  for (int i = 0; i < d; ++i) {
    key |= spread_bits(p[i], d, level_bits) << (d - 1 - i);
  }
  return key;
}

Point deinterleave(index_t key, int dim, int level_bits) {
  Point p = Point::zero(dim);
  if (dim == 1) {
    p[0] = static_cast<coord_t>(key);
    return p;
  }
  if (dim == 2 && level_bits <= 16) {
    p[0] = compact_bits_2(key >> 1);
    p[1] = compact_bits_2(key);
    return p;
  }
  if (dim == 3 && level_bits <= 21) {
    p[0] = compact_bits_3(key >> 2);
    p[1] = compact_bits_3(key >> 1);
    p[2] = compact_bits_3(key);
    return p;
  }
  for (int i = 0; i < dim; ++i) {
    p[i] = static_cast<coord_t>(compact_bits(key >> (dim - 1 - i), dim, level_bits));
  }
  return p;
}

}  // namespace sfc
