// Materialized key table for a curve.
//
// The metric engines repeatedly evaluate π on the same cells (each cell is
// visited once as a center and up to 2d times as a neighbor).  KeyCache
// stores `key[row_major_id]` once — built in parallel — turning each π
// evaluation into one array load.  This is the "key cache vs on-the-fly
// encode" trade-off ablated in perf_metrics_scaling: the cache costs 8n bytes
// and wins whenever encode is slower than one cache-missing load.
#pragma once

#include <vector>

#include "sfc/curves/space_filling_curve.h"
#include "sfc/parallel/thread_pool.h"

namespace sfc {

class KeyCache {
 public:
  /// Builds the table with `pool` (one encode per cell).
  KeyCache(const SpaceFillingCurve& curve, ThreadPool& pool);

  const Universe& universe() const { return universe_; }

  index_t key_of_id(index_t row_major_id) const { return keys_[row_major_id]; }
  index_t key_of(const Point& cell) const {
    return keys_[universe_.row_major_index(cell)];
  }

  index_t curve_distance_by_id(index_t id_a, index_t id_b) const {
    const index_t ka = keys_[id_a], kb = keys_[id_b];
    return ka > kb ? ka - kb : kb - ka;
  }

  /// Memory footprint heuristic: caches above this many cells are not built
  /// implicitly by the metric engines (8 GiB of keys at the default).
  static constexpr index_t kDefaultMaxCells = index_t{1} << 30;

 private:
  Universe universe_;
  std::vector<index_t> keys_;
};

}  // namespace sfc
