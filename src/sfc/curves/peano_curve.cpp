#include "sfc/curves/peano_curve.h"

#include <array>
#include <cstdlib>

#include "sfc/common/math.h"

namespace sfc {

namespace {

int ternary_levels(coord_t side) {
  int levels = 0;
  index_t value = side;
  while (value > 1) {
    if (value % 3 != 0) return -1;
    value /= 3;
    ++levels;
  }
  return levels;
}

}  // namespace

PeanoCurve::PeanoCurve(Universe universe) : SpaceFillingCurve(universe) {
  levels_ = ternary_levels(universe_.side());
  if (levels_ < 0) std::abort();  // side must be 3^k
}

index_t PeanoCurve::index_of(const Point& cell) const {
  const int d = universe_.dim();
  // Coordinate digits, most significant first.
  std::array<std::array<int, 32>, kMaxDim> digits{};
  for (int i = 0; i < d; ++i) {
    coord_t value = cell[i];
    for (int j = levels_ - 1; j >= 0; --j) {
      digits[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          static_cast<int>(value % 3);
      value /= 3;
    }
  }
  // Emit key digits in order; S_i tracks the sum of earlier key digits
  // belonging to dimensions other than i.
  std::array<int, kMaxDim> other_digit_sum{};
  index_t key = 0;
  for (int j = 0; j < levels_; ++j) {
    for (int i = 0; i < d; ++i) {
      const int coordinate_digit = digits[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
      const bool reflect = (other_digit_sum[static_cast<std::size_t>(i)] % 2) == 1;
      const int key_digit = reflect ? 2 - coordinate_digit : coordinate_digit;
      key = key * 3 + static_cast<index_t>(key_digit);
      for (int m = 0; m < d; ++m) {
        if (m != i) other_digit_sum[static_cast<std::size_t>(m)] += key_digit;
      }
    }
  }
  return key;
}

void PeanoCurve::subtree_children(const SubtreeNode& node,
                                  std::span<SubtreeNode> children) const {
  const int d = universe_.dim();
  const coord_t child_side = node.side / 3;
  const index_t child_count =
      node.key_count / static_cast<index_t>(children.size());
  // Child j's ternary digits t[], dimension 0 most significant — the same
  // per-level digit order index_of emits.  The digits advance as a ternary
  // odometer (amortized O(1) per child) instead of d divisions per child.
  std::array<int, kMaxDim> t{};
  int total = 0;  // Σ t_i, maintained incrementally.
  for (std::size_t j = 0;; ++j) {
    SubtreeNode& child = children[j];
    child.side = child_side;
    child.key_lo = node.key_lo + static_cast<index_t>(j) * child_count;
    child.key_count = child_count;
    child.origin = node.origin;
    // Dimension i's reflection inside this digit group is its carried parity
    // XOR the parity of the group's earlier digits (they belong to other
    // dimensions); afterwards its parity absorbs the group's other digits,
    // i.e. total - t_i.
    std::uint32_t state = node.state;
    int prefix = 0;
    for (int i = 0; i < d; ++i) {
      const int digit = t[static_cast<std::size_t>(i)];
      const bool reflect =
          (((node.state >> i) ^ static_cast<std::uint32_t>(prefix)) & 1u) != 0;
      const int coordinate_digit = reflect ? 2 - digit : digit;
      child.origin[i] = static_cast<coord_t>(
          node.origin[i] + static_cast<coord_t>(coordinate_digit) * child_side);
      if (((total - digit) & 1) != 0) state ^= (1u << i);
      prefix += digit;
    }
    child.state = state;
    if (j + 1 == children.size()) break;
    // Advance the ternary odometer: t[d-1] is least significant.
    int carry_at = d - 1;
    while (t[static_cast<std::size_t>(carry_at)] == 2) {
      t[static_cast<std::size_t>(carry_at)] = 0;
      total -= 2;
      --carry_at;
    }
    ++t[static_cast<std::size_t>(carry_at)];
    ++total;
  }
}

void PeanoCurve::subtree_children_batch(std::span<const SubtreeNode> nodes,
                                        std::span<SubtreeNode> children) const {
  expand_subtrees_nodewise(nodes, children);
}

Point PeanoCurve::point_at(index_t key) const {
  const int d = universe_.dim();
  // Extract key digits, most significant first.
  std::array<int, 32 * kMaxDim> key_digits{};
  const int total_digits = levels_ * d;
  for (int m = total_digits - 1; m >= 0; --m) {
    key_digits[static_cast<std::size_t>(m)] = static_cast<int>(key % 3);
    key /= 3;
  }
  Point cell = Point::zero(d);
  std::array<int, kMaxDim> other_digit_sum{};
  int m = 0;
  for (int j = 0; j < levels_; ++j) {
    for (int i = 0; i < d; ++i, ++m) {
      const int key_digit = key_digits[static_cast<std::size_t>(m)];
      const bool reflect = (other_digit_sum[static_cast<std::size_t>(i)] % 2) == 1;
      const int coordinate_digit = reflect ? 2 - key_digit : key_digit;
      cell[i] = cell[i] * 3 + static_cast<coord_t>(coordinate_digit);
      for (int mm = 0; mm < d; ++mm) {
        if (mm != i) other_digit_sum[static_cast<std::size_t>(mm)] += key_digit;
      }
    }
  }
  return cell;
}

}  // namespace sfc
