#include "sfc/curves/peano_curve.h"

#include <array>
#include <cstdlib>

#include "sfc/common/math.h"

namespace sfc {

namespace {

int ternary_levels(coord_t side) {
  int levels = 0;
  index_t value = side;
  while (value > 1) {
    if (value % 3 != 0) return -1;
    value /= 3;
    ++levels;
  }
  return levels;
}

}  // namespace

PeanoCurve::PeanoCurve(Universe universe) : SpaceFillingCurve(universe) {
  levels_ = ternary_levels(universe_.side());
  if (levels_ < 0) std::abort();  // side must be 3^k
}

index_t PeanoCurve::index_of(const Point& cell) const {
  const int d = universe_.dim();
  // Coordinate digits, most significant first.
  std::array<std::array<int, 32>, kMaxDim> digits{};
  for (int i = 0; i < d; ++i) {
    coord_t value = cell[i];
    for (int j = levels_ - 1; j >= 0; --j) {
      digits[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          static_cast<int>(value % 3);
      value /= 3;
    }
  }
  // Emit key digits in order; S_i tracks the sum of earlier key digits
  // belonging to dimensions other than i.
  std::array<int, kMaxDim> other_digit_sum{};
  index_t key = 0;
  for (int j = 0; j < levels_; ++j) {
    for (int i = 0; i < d; ++i) {
      const int coordinate_digit = digits[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
      const bool reflect = (other_digit_sum[static_cast<std::size_t>(i)] % 2) == 1;
      const int key_digit = reflect ? 2 - coordinate_digit : coordinate_digit;
      key = key * 3 + static_cast<index_t>(key_digit);
      for (int m = 0; m < d; ++m) {
        if (m != i) other_digit_sum[static_cast<std::size_t>(m)] += key_digit;
      }
    }
  }
  return key;
}

Point PeanoCurve::point_at(index_t key) const {
  const int d = universe_.dim();
  // Extract key digits, most significant first.
  std::array<int, 32 * kMaxDim> key_digits{};
  const int total_digits = levels_ * d;
  for (int m = total_digits - 1; m >= 0; --m) {
    key_digits[static_cast<std::size_t>(m)] = static_cast<int>(key % 3);
    key /= 3;
  }
  Point cell = Point::zero(d);
  std::array<int, kMaxDim> other_digit_sum{};
  int m = 0;
  for (int j = 0; j < levels_; ++j) {
    for (int i = 0; i < d; ++i, ++m) {
      const int key_digit = key_digits[static_cast<std::size_t>(m)];
      const bool reflect = (other_digit_sum[static_cast<std::size_t>(i)] % 2) == 1;
      const int coordinate_digit = reflect ? 2 - key_digit : key_digit;
      cell[i] = cell[i] * 3 + static_cast<coord_t>(coordinate_digit);
      for (int mm = 0; mm < d; ++mm) {
        if (mm != i) other_digit_sum[static_cast<std::size_t>(mm)] += key_digit;
      }
    }
  }
  return cell;
}

}  // namespace sfc
