// The Hilbert curve in arbitrary dimension (Hilbert [13]).
//
// Implemented with Skilling's transpose algorithm ("Programming the Hilbert
// curve", AIP Conf. Proc. 707, 2004): coordinates are transformed in place
// to/from the "transposed" form of the Hilbert index, which is then
// (de)interleaved exactly like a Morton key.  The curve is continuous —
// consecutive keys are always nearest neighbors — which the test suite
// verifies exhaustively for small universes in 2..5 dimensions.
//
// The paper leaves the average NN-stretch of the Hilbert curve as an open
// question (§VI); bench/repro_ext_hilbert measures it.  Requires side = 2^k.
#pragma once

#include <array>
#include <cstdint>

#include "sfc/curves/space_filling_curve.h"

namespace sfc {

class HilbertCurve final : public SpaceFillingCurve {
 public:
  explicit HilbertCurve(Universe universe);

  std::string name() const override { return "hilbert"; }
  index_t index_of(const Point& cell) const override;
  Point point_at(index_t key) const override;
  bool is_continuous() const override { return true; }

  /// Batched codec: hoists the per-call (d, level_bits) setup and fuses the
  /// Skilling transpose with the interleave kernel.
  void index_of_batch(std::span<const Point> cells,
                      std::span<index_t> keys) const override;
  void point_at_batch(std::span<const index_t> keys,
                      std::span<Point> cells) const override;

  /// Dyadic: every 2^d-way key split lands on the 2^d aligned half-side
  /// subcubes (the defining self-similarity).
  coord_t subtree_radix() const override { return 2; }

  /// State descent: every subtree's orientation is a signed rotation
  /// x ↦ ror_d(x ^ e, r) of the base motif, so a node's 2^d children cost
  /// O(d) bit ops each — no decoding.  The per-child motif digits and
  /// (rotation, reflection) updates are derived once at construction from
  /// the Skilling kernels themselves and verified exhaustively; if the
  /// derivation ever failed to fit (it cannot for a self-similar curve, but
  /// the check is cheap), descent would fall back to the base class's
  /// decode-based expansion, keeping answers exact.
  void subtree_children(const SubtreeNode& node,
                        std::span<SubtreeNode> children) const override;
  void subtree_children_batch(std::span<const SubtreeNode> nodes,
                              std::span<SubtreeNode> children) const override;

 private:
  void derive_subtree_tables();

  int level_bits_;
  // Subtree state-descent tables, indexed by child visit position j < 2^d:
  // the base motif digit (subcube offset bits, dimension 1 most significant)
  // and the child's orientation delta as (rotation, reflection mask).
  std::array<std::uint8_t, 256> base_digit_{};
  std::array<std::uint8_t, 256> child_rot_{};
  std::array<std::uint8_t, 256> child_flip_{};
  bool subtree_tables_ok_ = false;
};

}  // namespace sfc
