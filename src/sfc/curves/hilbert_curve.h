// The Hilbert curve in arbitrary dimension (Hilbert [13]).
//
// Implemented with Skilling's transpose algorithm ("Programming the Hilbert
// curve", AIP Conf. Proc. 707, 2004): coordinates are transformed in place
// to/from the "transposed" form of the Hilbert index, which is then
// (de)interleaved exactly like a Morton key.  The curve is continuous —
// consecutive keys are always nearest neighbors — which the test suite
// verifies exhaustively for small universes in 2..5 dimensions.
//
// The paper leaves the average NN-stretch of the Hilbert curve as an open
// question (§VI); bench/repro_ext_hilbert measures it.  Requires side = 2^k.
#pragma once

#include "sfc/curves/space_filling_curve.h"

namespace sfc {

class HilbertCurve final : public SpaceFillingCurve {
 public:
  explicit HilbertCurve(Universe universe);

  std::string name() const override { return "hilbert"; }
  index_t index_of(const Point& cell) const override;
  Point point_at(index_t key) const override;
  bool is_continuous() const override { return true; }

  /// Batched codec: hoists the per-call (d, level_bits) setup and fuses the
  /// Skilling transpose with the interleave kernel.
  void index_of_batch(std::span<const Point> cells,
                      std::span<index_t> keys) const override;
  void point_at_batch(std::span<const index_t> keys,
                      std::span<Point> cells) const override;

 private:
  int level_bits_;
};

}  // namespace sfc
