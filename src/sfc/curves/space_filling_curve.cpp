#include "sfc/curves/space_filling_curve.h"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "sfc/common/math.h"

namespace sfc {

std::uint64_t SubtreeNode::min_squared_distance(const Point& q) const {
  // Per-dimension clamp of q onto the subcube [origin, origin + side - 1]:
  // the nearest cell differs from q only in the dimensions where q falls
  // outside the slab, by exactly the distance to the nearer face.
  std::uint64_t total = 0;
  const int d = q.dim();
  for (int i = 0; i < d; ++i) {
    const coord_t lo = origin[i];
    const coord_t hi = origin[i] + (side - 1);
    std::uint64_t gap = 0;
    if (q[i] < lo) {
      gap = lo - q[i];
    } else if (q[i] > hi) {
      gap = q[i] - hi;
    }
    total += gap * gap;
  }
  return total;
}

index_t SpaceFillingCurve::curve_distance(const Point& a, const Point& b) const {
  const index_t ka = index_of(a);
  const index_t kb = index_of(b);
  return ka > kb ? ka - kb : kb - ka;
}

void SpaceFillingCurve::index_of_batch(std::span<const Point> cells,
                                       std::span<index_t> keys) const {
  if (cells.size() != keys.size()) std::abort();
  for (std::size_t i = 0; i < cells.size(); ++i) keys[i] = index_of(cells[i]);
}

void SpaceFillingCurve::point_at_batch(std::span<const index_t> keys,
                                       std::span<Point> cells) const {
  if (cells.size() != keys.size()) std::abort();
  for (std::size_t i = 0; i < keys.size(); ++i) cells[i] = point_at(keys[i]);
}

SubtreeNode SpaceFillingCurve::subtree_root() const {
  if (!has_subtree_traversal()) std::abort();
  SubtreeNode root;
  root.origin = Point::zero(universe_.dim());
  root.side = universe_.side();
  root.key_lo = 0;
  root.key_count = universe_.cell_count();
  root.state = subtree_root_state();
  return root;
}

void SpaceFillingCurve::subtree_children(const SubtreeNode& node,
                                         std::span<SubtreeNode> children) const {
  subtree_children_batch(std::span<const SubtreeNode>(&node, 1), children);
}

void SpaceFillingCurve::expand_subtrees_nodewise(
    std::span<const SubtreeNode> nodes, std::span<SubtreeNode> children) const {
  const index_t arity = ipow(subtree_radix(), universe_.dim());
  if (children.size() != nodes.size() * arity) std::abort();
  for (std::size_t at = 0; at < nodes.size(); ++at) {
    subtree_children(nodes[at], children.subspan(at * arity, arity));
  }
}

void SpaceFillingCurve::subtree_children_batch(
    std::span<const SubtreeNode> nodes, std::span<SubtreeNode> children) const {
  const coord_t radix = subtree_radix();
  if (radix == 0) std::abort();
  const int d = universe_.dim();
  const index_t arity = ipow(radix, d);
  if (children.size() != nodes.size() * arity) std::abort();
  // Decode every child's first key in one batch, then round each decoded
  // cell down to its child-side grid to recover the subcube origin.  Valid
  // whenever the curve's key blocks are aligned subcubes (the subtree
  // contract), so hierarchical curves without a specialized descent kernel
  // (Hilbert via Skilling transpose, Peano via ternary digits) get exact
  // traversal through their existing batched decoders.
  std::vector<index_t> keys(children.size());
  std::vector<Point> cells(children.size());
  for (std::size_t at = 0; at < nodes.size(); ++at) {
    const SubtreeNode& node = nodes[at];
    if (node.side < radix || node.side % radix != 0) std::abort();
    const index_t child_count = node.key_count / arity;
    for (index_t j = 0; j < arity; ++j) {
      keys[at * arity + j] = node.key_lo + j * child_count;
    }
  }
  point_at_batch(keys, cells);
  for (std::size_t at = 0; at < nodes.size(); ++at) {
    const SubtreeNode& node = nodes[at];
    const coord_t child_side = node.side / radix;
    const index_t child_count = node.key_count / arity;
    for (index_t j = 0; j < arity; ++j) {
      SubtreeNode& child = children[at * arity + j];
      child.origin = Point::zero(d);
      for (int i = 0; i < d; ++i) {
        child.origin[i] = cells[at * arity + j][i] / child_side * child_side;
      }
      child.side = child_side;
      child.key_lo = keys[at * arity + j];
      child.key_count = child_count;
      child.state = 0;
    }
  }
}

void SpaceFillingCurve::point_range(index_t first_key,
                                    std::span<Point> cells) const {
  std::array<index_t, 1024> keys;
  std::size_t done = 0;
  while (done < cells.size()) {
    const std::size_t chunk = std::min(cells.size() - done, keys.size());
    std::iota(keys.begin(), keys.begin() + static_cast<std::ptrdiff_t>(chunk),
              first_key + done);
    point_at_batch(std::span<const index_t>(keys.data(), chunk),
                   cells.subspan(done, chunk));
    done += chunk;
  }
}

}  // namespace sfc
