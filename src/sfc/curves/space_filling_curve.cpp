#include "sfc/curves/space_filling_curve.h"

namespace sfc {

index_t SpaceFillingCurve::curve_distance(const Point& a, const Point& b) const {
  const index_t ka = index_of(a);
  const index_t kb = index_of(b);
  return ka > kb ? ka - kb : kb - ka;
}

}  // namespace sfc
