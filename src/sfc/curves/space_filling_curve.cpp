#include "sfc/curves/space_filling_curve.h"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <numeric>

namespace sfc {

index_t SpaceFillingCurve::curve_distance(const Point& a, const Point& b) const {
  const index_t ka = index_of(a);
  const index_t kb = index_of(b);
  return ka > kb ? ka - kb : kb - ka;
}

void SpaceFillingCurve::index_of_batch(std::span<const Point> cells,
                                       std::span<index_t> keys) const {
  if (cells.size() != keys.size()) std::abort();
  for (std::size_t i = 0; i < cells.size(); ++i) keys[i] = index_of(cells[i]);
}

void SpaceFillingCurve::point_at_batch(std::span<const index_t> keys,
                                       std::span<Point> cells) const {
  if (cells.size() != keys.size()) std::abort();
  for (std::size_t i = 0; i < keys.size(); ++i) cells[i] = point_at(keys[i]);
}

void SpaceFillingCurve::point_range(index_t first_key,
                                    std::span<Point> cells) const {
  std::array<index_t, 1024> keys;
  std::size_t done = 0;
  while (done < cells.size()) {
    const std::size_t chunk = std::min(cells.size() - done, keys.size());
    std::iota(keys.begin(), keys.begin() + static_cast<std::ptrdiff_t>(chunk),
              first_key + done);
    point_at_batch(std::span<const index_t>(keys.data(), chunk),
                   cells.subspan(done, chunk));
    done += chunk;
  }
}

}  // namespace sfc
