// Forwarding wrapper that strips a curve's specialized descent kernel.
//
// GenericDescentCurve presents the wrapped curve unchanged — same universe,
// same π/π⁻¹ (including the batched codecs), same subtree radix — but does
// NOT forward subtree_children/subtree_children_batch, so every expansion
// routes through the base class's generic batched-decoder descent (decode
// each child's first key, round down to the child grid).  That is exactly
// the pre-kernel path Peano and PermutedZ used before they grew direct
// descent kernels, retained here as:
//
//  - the bit-identity oracle: tests/ranges/test_descent_kernels.cpp checks
//    children and whole covers of the direct kernels against this wrapper;
//  - the CI bench baseline: bench/perf_kernels.cpp pairs each direct-kernel
//    cover against the same cover through this wrapper, and
//    tools/check_bench_speedup.py gates the ratio.
//
// The base descent never reads SubtreeNode::state, so wrapping a
// state-carrying curve (Hilbert) is also valid; subtree_root_state is left
// at the base default 0 accordingly.
#pragma once

#include "sfc/curves/space_filling_curve.h"

namespace sfc {

class GenericDescentCurve final : public SpaceFillingCurve {
 public:
  /// The wrapped curve must outlive the wrapper.
  explicit GenericDescentCurve(const SpaceFillingCurve& inner)
      : SpaceFillingCurve(inner.universe()), inner_(inner) {}

  std::string name() const override {
    return inner_.name() + "-generic-descent";
  }
  index_t index_of(const Point& cell) const override {
    return inner_.index_of(cell);
  }
  Point point_at(index_t key) const override { return inner_.point_at(key); }
  void index_of_batch(std::span<const Point> cells,
                      std::span<index_t> keys) const override {
    inner_.index_of_batch(cells, keys);
  }
  void point_at_batch(std::span<const index_t> keys,
                      std::span<Point> cells) const override {
    inner_.point_at_batch(keys, cells);
  }
  bool is_continuous() const override { return inner_.is_continuous(); }
  coord_t subtree_radix() const override { return inner_.subtree_radix(); }
  // subtree_children / subtree_children_batch intentionally NOT overridden.

 private:
  const SpaceFillingCurve& inner_;
};

}  // namespace sfc
