// The spiral curve — 2-d, any side.
//
// Visits the outermost ring of the grid counter-clockwise (bottom edge
// rightward, right edge upward, top edge leftward, left edge downward), then
// recurses into the next ring.  Consecutive cells are always grid neighbors,
// including the hand-off between rings, so the curve is continuous — yet its
// average NN stretch is Θ(n^{1/2}) like every curve (Theorem 1), making it a
// useful "continuity is not enough" data point alongside snake and Hilbert.
#pragma once

#include "sfc/curves/space_filling_curve.h"

namespace sfc {

class SpiralCurve final : public SpaceFillingCurve {
 public:
  /// 2-d universes only (throws CurveArgumentError otherwise).
  explicit SpiralCurve(Universe universe);

  std::string name() const override { return "spiral"; }
  index_t index_of(const Point& cell) const override;
  Point point_at(index_t key) const override;
  bool is_continuous() const override { return true; }

 private:
  /// Cells in rings 0..r-1: side^2 - (side - 2r)^2.
  index_t ring_offset(coord_t r) const;
};

}  // namespace sfc
