#include "sfc/curves/gray_curve.h"

#include <cstdlib>

#include "sfc/curves/batch_kernels.h"
#include "sfc/curves/bitops.h"

namespace sfc {

GrayCurve::GrayCurve(Universe universe) : SpaceFillingCurve(universe) {
  if (!universe_.power_of_two_side()) std::abort();
  level_bits_ = universe_.level_bits();
}

index_t GrayCurve::index_of(const Point& cell) const {
  return gray_decode(interleave(cell, level_bits_));
}

Point GrayCurve::point_at(index_t key) const {
  return deinterleave(gray_encode(key), universe_.dim(), level_bits_);
}

void GrayCurve::index_of_batch(std::span<const Point> cells,
                               std::span<index_t> keys) const {
  detail::interleave_batch(cells, keys, universe_.dim(), level_bits_,
                           [](index_t key) { return gray_decode(key); });
}

void GrayCurve::point_at_batch(std::span<const index_t> keys,
                               std::span<Point> cells) const {
  detail::deinterleave_batch(keys, cells, universe_.dim(), level_bits_,
                             [](index_t key) { return gray_encode(key); });
}

void GrayCurve::subtree_children(const SubtreeNode& node,
                                 std::span<SubtreeNode> children) const {
  if (node.side < 2 || node.side % 2 != 0) std::abort();
  const int d = universe_.dim();
  const index_t arity = index_t{1} << d;
  if (children.size() != arity) std::abort();
  const coord_t child_side = node.side / 2;
  const index_t child_count = node.key_count >> d;
  // gray_encode(key) crosses digit boundaries only through the carry bit
  // lsb(K_{j-1}) << (d-1); node.state carries exactly that bit.
  for (index_t j = 0; j < arity; ++j) {
    const index_t digit =
        gray_encode(j) ^ (static_cast<index_t>(node.state) << (d - 1));
    SubtreeNode& child = children[j];
    child.origin = node.origin;
    for (int i = 0; i < d; ++i) {
      if ((digit >> (d - 1 - i)) & 1) child.origin[i] += child_side;
    }
    child.side = child_side;
    child.key_lo = node.key_lo + j * child_count;
    child.key_count = child_count;
    child.state = static_cast<std::uint32_t>(j & 1);
  }
}

void GrayCurve::subtree_children_batch(std::span<const SubtreeNode> nodes,
                                       std::span<SubtreeNode> children) const {
  expand_subtrees_nodewise(nodes, children);
}

}  // namespace sfc
