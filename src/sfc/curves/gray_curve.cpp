#include "sfc/curves/gray_curve.h"

#include <cstdlib>

#include "sfc/curves/batch_kernels.h"
#include "sfc/curves/bitops.h"

namespace sfc {

GrayCurve::GrayCurve(Universe universe) : SpaceFillingCurve(universe) {
  if (!universe_.power_of_two_side()) std::abort();
  level_bits_ = universe_.level_bits();
}

index_t GrayCurve::index_of(const Point& cell) const {
  return gray_decode(interleave(cell, level_bits_));
}

Point GrayCurve::point_at(index_t key) const {
  return deinterleave(gray_encode(key), universe_.dim(), level_bits_);
}

void GrayCurve::index_of_batch(std::span<const Point> cells,
                               std::span<index_t> keys) const {
  detail::interleave_batch(cells, keys, universe_.dim(), level_bits_,
                           [](index_t key) { return gray_decode(key); });
}

void GrayCurve::point_at_batch(std::span<const index_t> keys,
                               std::span<Point> cells) const {
  detail::deinterleave_batch(keys, cells, universe_.dim(), level_bits_,
                             [](index_t key) { return gray_encode(key); });
}

}  // namespace sfc
