#include "sfc/curves/spiral_curve.h"

#include <algorithm>
#include <string>

#include "sfc/curves/curve_error.h"

namespace sfc {

SpiralCurve::SpiralCurve(Universe universe) : SpaceFillingCurve(universe) {
  if (universe_.dim() != 2) {
    throw CurveArgumentError("spiral curve requires a 2-d universe, got d=" +
                             std::to_string(universe_.dim()));
  }
}

index_t SpiralCurve::ring_offset(coord_t r) const {
  const index_t side = universe_.side();
  const index_t inner = side - 2 * static_cast<index_t>(r);
  return universe_.cell_count() - inner * inner;
}

index_t SpiralCurve::index_of(const Point& cell) const {
  const coord_t side = universe_.side();
  const coord_t r = std::min(std::min(cell[0], cell[1]),
                             std::min(side - 1 - cell[0], side - 1 - cell[1]));
  const coord_t m = side - 2 * r;  // ring's square side
  const index_t base = ring_offset(r);
  if (m == 1) return base;  // center cell of an odd grid
  const coord_t x = cell[0] - r, y = cell[1] - r;  // ring-local, in [0, m)
  const coord_t edge = m - 1;
  index_t position;
  if (y == 0) {
    position = x;                       // bottom edge, rightward
  } else if (x == edge) {
    position = edge + y;                // right edge, upward
  } else if (y == edge) {
    position = 2 * static_cast<index_t>(edge) + (edge - x);  // top, leftward
  } else {
    position = 3 * static_cast<index_t>(edge) + (edge - y);  // left, downward
  }
  return base + position;
}

Point SpiralCurve::point_at(index_t key) const {
  const coord_t side = universe_.side();
  // Ring from the closed-form offset: find the largest valid ring index r
  // with ring_offset(r) <= key.  Rings run 0 .. floor((side-1)/2).
  coord_t r = 0;
  while (r < (side - 1) / 2 && ring_offset(r + 1) <= key) ++r;
  const coord_t m = side - 2 * r;
  index_t position = key - ring_offset(r);
  Point p = Point::zero(2);
  if (m == 1) {
    p[0] = p[1] = r;
    return p;
  }
  const auto edge = static_cast<index_t>(m - 1);
  coord_t x, y;
  if (position < edge) {
    x = static_cast<coord_t>(position);
    y = 0;
  } else if (position < 2 * edge) {
    x = static_cast<coord_t>(edge);
    y = static_cast<coord_t>(position - edge);
  } else if (position < 3 * edge) {
    x = static_cast<coord_t>(edge - (position - 2 * edge));
    y = static_cast<coord_t>(edge);
  } else {
    x = 0;
    y = static_cast<coord_t>(edge - (position - 3 * edge));
  }
  p[0] = r + x;
  p[1] = r + y;
  return p;
}

}  // namespace sfc
