// Bit manipulation primitives for curve key construction.
//
// Conventions (matching the paper's §IV-B):
//   * An interleaved key packs k levels of d bits.  Level j (1 = most
//     significant) holds the j-th most significant bit of every coordinate,
//     with paper-dimension 1 (component x[0]) occupying the most significant
//     bit *within* the level.
//   * spread_bits(v, d) places bit b of v at position b*d, so a full
//     interleave is  key = Σ_i spread_bits(x[i], d) << (d-1-i).
#pragma once

#include <cstdint>

#include "sfc/common/types.h"
#include "sfc/grid/point.h"

namespace sfc {

/// Places bit b of `v` (b < bits) at position b*stride.  Generic loop form.
std::uint64_t spread_bits(std::uint64_t v, int stride, int bits);

/// Inverse of spread_bits: gathers bits at positions 0, stride, 2*stride, ...
std::uint64_t compact_bits(std::uint64_t v, int stride, int bits);

/// Magic-mask fast path for stride 2 (d = 2), 16-bit inputs.  Defined inline
/// so the batched curve kernels can fold it into their loops.
constexpr std::uint64_t spread_bits_2(std::uint32_t v) {
  std::uint64_t x = v & 0xffffULL;
  x = (x | (x << 16)) & 0x0000ffff0000ffffULL;
  x = (x | (x << 8)) & 0x00ff00ff00ff00ffULL;
  x = (x | (x << 4)) & 0x0f0f0f0f0f0f0f0fULL;
  x = (x | (x << 2)) & 0x3333333333333333ULL;
  x = (x | (x << 1)) & 0x5555555555555555ULL;
  return x;
}
constexpr std::uint32_t compact_bits_2(std::uint64_t v) {
  std::uint64_t x = v & 0x5555555555555555ULL;
  x = (x | (x >> 1)) & 0x3333333333333333ULL;
  x = (x | (x >> 2)) & 0x0f0f0f0f0f0f0f0fULL;
  x = (x | (x >> 4)) & 0x00ff00ff00ff00ffULL;
  x = (x | (x >> 8)) & 0x0000ffff0000ffffULL;
  x = (x | (x >> 16)) & 0x00000000ffffffffULL;
  return static_cast<std::uint32_t>(x);
}

/// Magic-mask fast path for stride 3 (d = 3), 21-bit inputs.
constexpr std::uint64_t spread_bits_3(std::uint32_t v) {
  std::uint64_t x = v & 0x1fffffULL;  // 21 bits
  x = (x | (x << 32)) & 0x001f00000000ffffULL;
  x = (x | (x << 16)) & 0x001f0000ff0000ffULL;
  x = (x | (x << 8)) & 0x100f00f00f00f00fULL;
  x = (x | (x << 4)) & 0x10c30c30c30c30c3ULL;
  x = (x | (x << 2)) & 0x1249249249249249ULL;
  return x;
}
constexpr std::uint32_t compact_bits_3(std::uint64_t v) {
  std::uint64_t x = v & 0x1249249249249249ULL;
  x = (x | (x >> 2)) & 0x10c30c30c30c30c3ULL;
  x = (x | (x >> 4)) & 0x100f00f00f00f00fULL;
  x = (x | (x >> 8)) & 0x001f0000ff0000ffULL;
  x = (x | (x >> 16)) & 0x001f00000000ffffULL;
  x = (x | (x >> 32)) & 0x00000000001fffffULL;
  return static_cast<std::uint32_t>(x);
}

/// Full interleave of a point's coordinates into a Morton key (paper layout:
/// dimension 1 most significant within each level).  `level_bits` = k.
index_t interleave(const Point& p, int level_bits);

/// Inverse of interleave.
Point deinterleave(index_t key, int dim, int level_bits);

/// Binary-reflected Gray code and its inverse.
constexpr std::uint64_t gray_encode(std::uint64_t v) { return v ^ (v >> 1); }
constexpr std::uint64_t gray_decode(std::uint64_t g) {
  g ^= g >> 1;
  g ^= g >> 2;
  g ^= g >> 4;
  g ^= g >> 8;
  g ^= g >> 16;
  g ^= g >> 32;
  return g;
}

}  // namespace sfc
