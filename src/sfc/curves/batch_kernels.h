// Internal branch-free loop kernels behind the batched curve API.
//
// The scalar interleave()/deinterleave() dispatch on (d, level_bits) per
// call; these kernels hoist that dispatch out of the loop and inline the
// magic-mask spread/compact forms so the compiler can pipeline/vectorize the
// body.  `KeyFn` is a per-key transform applied after interleaving (encode)
// or before deinterleaving (decode): identity for the Z curve, the Gray-code
// maps for the Gray curve.
#pragma once

#include <cstdlib>
#include <span>

#include "sfc/common/types.h"
#include "sfc/curves/bitops.h"
#include "sfc/grid/point.h"

// BMI2 pdep/pext collapse a full interleave to one instruction per
// coordinate.  The kernels below are compiled for the bmi2 target and
// selected at runtime (one cpuid-backed check per batch call), so the same
// binary still runs on pre-Haswell hardware via the magic-mask loops.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SFC_HAS_BMI2_KERNELS 1
#include <immintrin.h>
#endif

namespace sfc::detail {

// Bit i of the mask marks where bit i/d of a coordinate lands in the key.
inline constexpr std::uint64_t kEvenBitsMask = 0x5555555555555555ULL;
inline constexpr std::uint64_t kEveryThirdBitMask = 0x1249249249249249ULL;

#ifdef SFC_HAS_BMI2_KERNELS

inline bool cpu_has_bmi2() {
  // SFC_NO_BMI2 forces the magic-mask fallback so tests can exercise it on
  // hardware that has BMI2 (ctest registers a BatchCodec run with it set).
  static const bool has_bmi2 = __builtin_cpu_supports("bmi2") != 0 &&
                               std::getenv("SFC_NO_BMI2") == nullptr;
  return has_bmi2;
}

template <typename KeyFn>
__attribute__((target("bmi2"))) void interleave2_bmi2(
    std::span<const Point> cells, std::span<index_t> keys, KeyFn&& post) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    keys[i] = post(_pdep_u64(cells[i][0], kEvenBitsMask << 1) |
                   _pdep_u64(cells[i][1], kEvenBitsMask));
  }
}

template <typename KeyFn>
__attribute__((target("bmi2"))) void interleave3_bmi2(
    std::span<const Point> cells, std::span<index_t> keys, KeyFn&& post) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    keys[i] = post(_pdep_u64(cells[i][0], kEveryThirdBitMask << 2) |
                   _pdep_u64(cells[i][1], kEveryThirdBitMask << 1) |
                   _pdep_u64(cells[i][2], kEveryThirdBitMask));
  }
}

template <typename KeyFn>
__attribute__((target("bmi2"))) void deinterleave2_bmi2(
    std::span<const index_t> keys, std::span<Point> cells, KeyFn&& pre) {
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const index_t key = pre(keys[i]);
    Point p = Point::zero(2);
    p[0] = static_cast<coord_t>(_pext_u64(key, kEvenBitsMask << 1));
    p[1] = static_cast<coord_t>(_pext_u64(key, kEvenBitsMask));
    cells[i] = p;
  }
}

template <typename KeyFn>
__attribute__((target("bmi2"))) void deinterleave3_bmi2(
    std::span<const index_t> keys, std::span<Point> cells, KeyFn&& pre) {
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const index_t key = pre(keys[i]);
    Point p = Point::zero(3);
    p[0] = static_cast<coord_t>(_pext_u64(key, kEveryThirdBitMask << 2));
    p[1] = static_cast<coord_t>(_pext_u64(key, kEveryThirdBitMask << 1));
    p[2] = static_cast<coord_t>(_pext_u64(key, kEveryThirdBitMask));
    cells[i] = p;
  }
}

#else

inline bool cpu_has_bmi2() { return false; }

#endif  // SFC_HAS_BMI2_KERNELS

template <typename KeyFn>
void interleave_batch(std::span<const Point> cells, std::span<index_t> keys,
                      int d, int level_bits, KeyFn&& post) {
  if (cells.size() != keys.size()) std::abort();
  const std::size_t count = cells.size();
  if (d == 1) {
    for (std::size_t i = 0; i < count; ++i) {
      keys[i] = post(static_cast<index_t>(cells[i][0]));
    }
  } else if (d == 2) {
#ifdef SFC_HAS_BMI2_KERNELS
    // pdep spreads all 32 coordinate bits, so this path has no level_bits
    // ceiling in 2-d.
    if (cpu_has_bmi2()) {
      interleave2_bmi2(cells, keys, post);
      return;
    }
#endif
    if (level_bits <= 16) {
      for (std::size_t i = 0; i < count; ++i) {
        keys[i] = post((spread_bits_2(cells[i][0]) << 1) |
                       spread_bits_2(cells[i][1]));
      }
    } else {
      for (std::size_t i = 0; i < count; ++i) {
        keys[i] = post(interleave(cells[i], level_bits));
      }
    }
  } else if (d == 3 && level_bits <= 21) {
#ifdef SFC_HAS_BMI2_KERNELS
    if (cpu_has_bmi2()) {
      interleave3_bmi2(cells, keys, post);
      return;
    }
#endif
    for (std::size_t i = 0; i < count; ++i) {
      keys[i] = post((spread_bits_3(cells[i][0]) << 2) |
                     (spread_bits_3(cells[i][1]) << 1) |
                     spread_bits_3(cells[i][2]));
    }
  } else {
    for (std::size_t i = 0; i < count; ++i) {
      keys[i] = post(interleave(cells[i], level_bits));
    }
  }
}

template <typename KeyFn>
void deinterleave_batch(std::span<const index_t> keys, std::span<Point> cells,
                        int d, int level_bits, KeyFn&& pre) {
  if (cells.size() != keys.size()) std::abort();
  const std::size_t count = keys.size();
  if (d == 1) {
    for (std::size_t i = 0; i < count; ++i) {
      Point p = Point::zero(1);
      p[0] = static_cast<coord_t>(pre(keys[i]));
      cells[i] = p;
    }
  } else if (d == 2) {
#ifdef SFC_HAS_BMI2_KERNELS
    if (cpu_has_bmi2()) {
      deinterleave2_bmi2(keys, cells, pre);
      return;
    }
#endif
    if (level_bits <= 16) {
      for (std::size_t i = 0; i < count; ++i) {
        const index_t key = pre(keys[i]);
        Point p = Point::zero(2);
        p[0] = compact_bits_2(key >> 1);
        p[1] = compact_bits_2(key);
        cells[i] = p;
      }
    } else {
      for (std::size_t i = 0; i < count; ++i) {
        cells[i] = deinterleave(pre(keys[i]), d, level_bits);
      }
    }
  } else if (d == 3 && level_bits <= 21) {
#ifdef SFC_HAS_BMI2_KERNELS
    if (cpu_has_bmi2()) {
      deinterleave3_bmi2(keys, cells, pre);
      return;
    }
#endif
    for (std::size_t i = 0; i < count; ++i) {
      const index_t key = pre(keys[i]);
      Point p = Point::zero(3);
      p[0] = compact_bits_3(key >> 2);
      p[1] = compact_bits_3(key >> 1);
      p[2] = compact_bits_3(key);
      cells[i] = p;
    }
  } else {
    for (std::size_t i = 0; i < count; ++i) {
      cells[i] = deinterleave(pre(keys[i]), d, level_bits);
    }
  }
}

}  // namespace sfc::detail
