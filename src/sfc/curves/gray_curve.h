// The Gray-code curve (Faloutsos [9, 10]).
//
// Cells are visited in the order in which their *interleaved* coordinate
// string appears in the binary-reflected Gray code sequence:
//
//   key(α) = gray⁻¹( interleave(α) )      interleave as in the Z curve.
//
// Consecutive keys therefore differ in exactly one bit of the interleaved
// string — a jump of a power of two along a single dimension — which improves
// some locality measures over the Z curve but does not make the curve
// continuous.  Requires a power-of-two side.
#pragma once

#include "sfc/curves/space_filling_curve.h"

namespace sfc {

class GrayCurve final : public SpaceFillingCurve {
 public:
  explicit GrayCurve(Universe universe);

  std::string name() const override { return "gray"; }
  index_t index_of(const Point& cell) const override;
  Point point_at(index_t key) const override;

  /// Batched codec: the Z-curve interleave kernel with the Gray-code map
  /// fused into the same loop.
  void index_of_batch(std::span<const Point> cells,
                      std::span<index_t> keys) const override;
  void point_at_batch(std::span<const index_t> keys,
                      std::span<Point> cells) const override;

  /// Dyadic subtree structure with a one-bit descent state.  Writing the key
  /// as d-bit digits K_1..K_k (MSB first), the interleaved digit at level j
  /// is gray(K_j) ^ (lsb(K_{j-1}) << (d-1)) — so a node only needs the low
  /// bit of its own key digit to place all of its children.
  coord_t subtree_radix() const override { return 2; }
  void subtree_children(const SubtreeNode& node,
                        std::span<SubtreeNode> children) const override;
  void subtree_children_batch(std::span<const SubtreeNode> nodes,
                              std::span<SubtreeNode> children) const override;

 private:
  int level_bits_;
};

}  // namespace sfc
