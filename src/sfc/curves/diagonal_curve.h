// The diagonal (Cantor / zigzag) curve — 2-d, any side.
//
// Cells are visited anti-diagonal by anti-diagonal (s = x1 + x2), direction
// alternating: even diagonals walk with x1 increasing, odd diagonals with x2
// increasing.  On an 8x8 grid this is exactly the JPEG zigzag scan order,
// which the test suite checks against the published table.  Not continuous
// (consecutive diagonal cells touch only corner-wise), but it is the classic
// enumeration of N x N and a useful stretch baseline: neighbor pairs sit
// O(side) apart on the curve, like the simple curve, yet with a completely
// different structure.
#pragma once

#include "sfc/curves/space_filling_curve.h"

namespace sfc {

class DiagonalCurve final : public SpaceFillingCurve {
 public:
  /// 2-d universes only (throws CurveArgumentError otherwise).
  explicit DiagonalCurve(Universe universe);

  std::string name() const override { return "diagonal"; }
  index_t index_of(const Point& cell) const override;
  Point point_at(index_t key) const override;

 private:
  /// Number of cells on anti-diagonals 0..s-1.
  index_t diagonal_offset(coord_t s) const;
  /// Number of cells on anti-diagonal s.
  coord_t diagonal_length(coord_t s) const;
};

}  // namespace sfc
