#include "sfc/curves/diagonal_curve.h"

#include <string>

#include "sfc/curves/curve_error.h"

namespace sfc {

DiagonalCurve::DiagonalCurve(Universe universe) : SpaceFillingCurve(universe) {
  if (universe_.dim() != 2) {
    throw CurveArgumentError("diagonal curve requires a 2-d universe, got d=" +
                             std::to_string(universe_.dim()));
  }
}

coord_t DiagonalCurve::diagonal_length(coord_t s) const {
  const coord_t side = universe_.side();
  // Diagonals grow 1..side then shrink back to 1.
  const coord_t peak = side - 1;
  return s <= peak ? s + 1 : 2 * peak - s + 1;
}

index_t DiagonalCurve::diagonal_offset(coord_t s) const {
  const index_t side = universe_.side();
  if (s <= side) {
    // 1 + 2 + ... + s.
    return static_cast<index_t>(s) * (s + 1) / 2;
  }
  // All n cells minus the triangular tail from diagonal s to the last one.
  const index_t remaining = 2 * (side - 1) - s + 1;  // lengths remaining..1
  return universe_.cell_count() - remaining * (remaining + 1) / 2;
}

index_t DiagonalCurve::index_of(const Point& cell) const {
  const coord_t side = universe_.side();
  const coord_t s = cell[0] + cell[1];
  const coord_t start = s < side ? 0 : s - (side - 1);
  const coord_t position =
      (s % 2 == 0) ? cell[0] - start : cell[1] - start;
  return diagonal_offset(s) + position;
}

Point DiagonalCurve::point_at(index_t key) const {
  const coord_t side = universe_.side();
  // Find the diagonal: linear in the number of diagonals (2*side - 1), but
  // start from the closed-form triangular inverse for the first half.
  coord_t s = 0;
  while (diagonal_offset(s + 1) <= key) ++s;
  const auto position = static_cast<coord_t>(key - diagonal_offset(s));
  const coord_t start = s < side ? 0 : s - (side - 1);
  Point p = Point::zero(2);
  if (s % 2 == 0) {
    p[0] = start + position;
    p[1] = s - p[0];
  } else {
    p[1] = start + position;
    p[0] = s - p[1];
  }
  return p;
}

}  // namespace sfc
