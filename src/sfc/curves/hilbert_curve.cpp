#include "sfc/curves/hilbert_curve.h"

#include <algorithm>
#include <array>
#include <cstdlib>

#include "sfc/curves/batch_kernels.h"
#include "sfc/curves/bitops.h"

namespace sfc {

namespace {

// Skilling's AxestoTranspose: converts grid coordinates into the transposed
// Hilbert index (in place).  X[i] are b-bit values.
void axes_to_transpose(std::array<std::uint32_t, kMaxDim>& x, int b, int d) {
  if (b == 0 || d < 2) return;
  const std::uint32_t m = 1u << (b - 1);
  // Inverse undo of the excess-work loop in transpose_to_axes.
  for (std::uint32_t q = m; q > 1; q >>= 1) {
    const std::uint32_t p = q - 1;
    for (int i = 0; i < d; ++i) {
      if (x[static_cast<std::size_t>(i)] & q) {
        x[0] ^= p;  // invert low bits of x[0]
      } else {
        const std::uint32_t t = (x[0] ^ x[static_cast<std::size_t>(i)]) & p;
        x[0] ^= t;
        x[static_cast<std::size_t>(i)] ^= t;
      }
    }
  }
  // Gray encode.
  for (int i = 1; i < d; ++i) x[static_cast<std::size_t>(i)] ^= x[static_cast<std::size_t>(i - 1)];
  std::uint32_t t = 0;
  for (std::uint32_t q = m; q > 1; q >>= 1) {
    if (x[static_cast<std::size_t>(d - 1)] & q) t ^= q - 1;
  }
  for (int i = 0; i < d; ++i) x[static_cast<std::size_t>(i)] ^= t;
}

// Skilling's TransposetoAxes: converts a transposed Hilbert index back into
// grid coordinates (in place).
void transpose_to_axes(std::array<std::uint32_t, kMaxDim>& x, int b, int d) {
  if (b == 0 || d < 2) return;
  const std::uint32_t n = 2u << (b - 1);
  // Gray decode by H ^ (H/2).
  std::uint32_t t = x[static_cast<std::size_t>(d - 1)] >> 1;
  for (int i = d - 1; i > 0; --i) {
    x[static_cast<std::size_t>(i)] ^= x[static_cast<std::size_t>(i - 1)];
  }
  x[0] ^= t;
  // Undo excess work.
  for (std::uint32_t q = 2; q != n; q <<= 1) {
    const std::uint32_t p = q - 1;
    for (int i = d - 1; i >= 0; --i) {
      if (x[static_cast<std::size_t>(i)] & q) {
        x[0] ^= p;
      } else {
        const std::uint32_t s = (x[0] ^ x[static_cast<std::size_t>(i)]) & p;
        x[0] ^= s;
        x[static_cast<std::size_t>(i)] ^= s;
      }
    }
  }
}

// d-bit rotations for the subtree orientation group (r in [0, d)).
inline std::uint32_t ror_d(std::uint32_t x, int r, int d) {
  if (r == 0) return x;
  const std::uint32_t mask = (1u << d) - 1;
  return ((x >> r) | (x << (d - r))) & mask;
}
inline std::uint32_t rol_d(std::uint32_t x, int r, int d) {
  return r == 0 ? x : ror_d(x, d - r, d);
}

}  // namespace

HilbertCurve::HilbertCurve(Universe universe) : SpaceFillingCurve(universe) {
  if (!universe_.power_of_two_side()) std::abort();
  level_bits_ = universe_.level_bits();
  derive_subtree_tables();
}

void HilbertCurve::derive_subtree_tables() {
  const int d = universe_.dim();
  if (d < 2) return;  // d = 1 is the identity curve; generic descent suffices
  const std::uint32_t arity = 1u << d;
  // Decode a key on a small reference universe of side 2^b through the same
  // Skilling kernels as point_at.  The subtree structure is a property of
  // the construction, not of the universe size, so side-2 and side-4
  // references determine the motif and every child orientation; the
  // consistency checks below (and the exhaustive subtree test suite) verify
  // that the actual curve at any depth agrees.
  const auto decode = [d](index_t key, int b) {
    const Point transposed = deinterleave(key, d, b);
    std::array<std::uint32_t, kMaxDim> x{};
    for (int i = 0; i < d; ++i) x[static_cast<std::size_t>(i)] = transposed[i];
    transpose_to_axes(x, b, d);
    return x;
  };
  // Packs bit `shift` of each coordinate into a digit (dimension 1 most
  // significant, matching the interleave convention).
  const auto digit_of = [d](const std::array<std::uint32_t, kMaxDim>& cell,
                            int shift) {
    std::uint32_t m = 0;
    for (int i = 0; i < d; ++i) {
      m |= ((cell[static_cast<std::size_t>(i)] >> shift) & 1u)
           << (d - 1 - i);
    }
    return m;
  };
  // Base motif: the level-1 visit order of the side-2 reference.
  std::array<std::uint8_t, 256> fine{};
  for (std::uint32_t t = 0; t < arity; ++t) {
    fine[t] = static_cast<std::uint8_t>(digit_of(decode(t, 1), 0));
  }
  bool ok = true;
  for (std::uint32_t j = 0; j < arity && ok; ++j) {
    // Top-level digit of child j on the side-4 reference; self-similarity
    // requires it to equal the side-2 motif.
    const std::uint32_t top =
        digit_of(decode(static_cast<index_t>(j) * arity, 2), 1);
    base_digit_[j] = static_cast<std::uint8_t>(top);
    ok = top == fine[j];
    if (!ok) break;
    // Sub-motif within child j: B_j(fine[t]) = position of visit t inside
    // the subcube.  Fit B_j to the signed-rotation form ror_d(x ^ e, r).
    std::array<std::uint8_t, 256> b_table{};
    for (std::uint32_t t = 0; t < arity; ++t) {
      b_table[fine[t]] = static_cast<std::uint8_t>(
          digit_of(decode(static_cast<index_t>(j) * arity + t, 2), 0));
    }
    bool fit = false;
    for (int r = 0; r < d && !fit; ++r) {
      const std::uint32_t e = rol_d(b_table[0], r, d);
      bool match = true;
      for (std::uint32_t x = 0; x < arity && match; ++x) {
        match = ror_d(x ^ e, r, d) == b_table[x];
      }
      if (match) {
        child_rot_[j] = static_cast<std::uint8_t>(r);
        child_flip_[j] = static_cast<std::uint8_t>(e);
        fit = true;
      }
    }
    ok = fit;
  }
  subtree_tables_ok_ = ok;
}

void HilbertCurve::subtree_children(const SubtreeNode& node,
                                    std::span<SubtreeNode> children) const {
  if (!subtree_tables_ok_) {
    SpaceFillingCurve::subtree_children(node, children);
    return;
  }
  if (node.side < 2 || node.side % 2 != 0) std::abort();
  const int d = universe_.dim();
  const index_t arity = index_t{1} << d;
  if (children.size() != arity) std::abort();
  const coord_t child_side = node.side / 2;
  const index_t child_count = node.key_count >> d;
  const int r_n = static_cast<int>(node.state & 0xffu);
  const std::uint32_t e_n = node.state >> 8;
  for (std::uint32_t j = 0; j < arity; ++j) {
    // Absolute subcube digit: the node's orientation applied to the motif.
    const std::uint32_t m = ror_d(base_digit_[j] ^ e_n, r_n, d);
    SubtreeNode& child = children[j];
    child.origin = node.origin;
    for (int i = 0; i < d; ++i) {
      if ((m >> (d - 1 - i)) & 1u) child.origin[i] += child_side;
    }
    child.side = child_side;
    child.key_lo = node.key_lo + j * child_count;
    child.key_count = child_count;
    // Compose orientations: (T_n ∘ B_j)(x) = ror(x ^ (e_j ^ rol(e_n, r_j)),
    // r_j + r_n).
    const int r_j = child_rot_[j];
    child.state =
        static_cast<std::uint32_t>((r_j + r_n) % d) |
        ((child_flip_[j] ^ rol_d(e_n, r_j, d)) << 8);
  }
}

void HilbertCurve::subtree_children_batch(
    std::span<const SubtreeNode> nodes, std::span<SubtreeNode> children) const {
  if (!subtree_tables_ok_) {
    SpaceFillingCurve::subtree_children_batch(nodes, children);
    return;
  }
  expand_subtrees_nodewise(nodes, children);
}

index_t HilbertCurve::index_of(const Point& cell) const {
  const int d = universe_.dim();
  if (d == 1) return cell[0];
  std::array<std::uint32_t, kMaxDim> x{};
  for (int i = 0; i < d; ++i) x[static_cast<std::size_t>(i)] = cell[i];
  axes_to_transpose(x, level_bits_, d);
  // The transposed form distributes index bits across x[0..d-1] with x[0]
  // carrying the most significant bit of each level — identical to our
  // Morton interleave convention.
  Point transposed = Point::zero(d);
  for (int i = 0; i < d; ++i) transposed[i] = x[static_cast<std::size_t>(i)];
  return interleave(transposed, level_bits_);
}

Point HilbertCurve::point_at(index_t key) const {
  const int d = universe_.dim();
  if (d == 1) {
    Point p = Point::zero(1);
    p[0] = static_cast<coord_t>(key);
    return p;
  }
  const Point transposed = deinterleave(key, d, level_bits_);
  std::array<std::uint32_t, kMaxDim> x{};
  for (int i = 0; i < d; ++i) x[static_cast<std::size_t>(i)] = transposed[i];
  transpose_to_axes(x, level_bits_, d);
  Point p = Point::zero(d);
  for (int i = 0; i < d; ++i) p[i] = x[static_cast<std::size_t>(i)];
  return p;
}

void HilbertCurve::index_of_batch(std::span<const Point> cells,
                                  std::span<index_t> keys) const {
  if (cells.size() != keys.size()) std::abort();
  const int d = universe_.dim();
  const int b = level_bits_;
  if (d == 1) {
    for (std::size_t i = 0; i < cells.size(); ++i) keys[i] = cells[i][0];
    return;
  }
  // Transpose into a fixed-size stack buffer chunk by chunk, then run the
  // branch-free interleave kernel over each chunk.
  constexpr std::size_t kChunk = 256;
  std::array<Point, kChunk> transposed;
  std::size_t done = 0;
  while (done < cells.size()) {
    const std::size_t chunk = std::min(cells.size() - done, kChunk);
    for (std::size_t i = 0; i < chunk; ++i) {
      std::array<std::uint32_t, kMaxDim> x{};
      for (int j = 0; j < d; ++j) {
        x[static_cast<std::size_t>(j)] = cells[done + i][j];
      }
      axes_to_transpose(x, b, d);
      Point t = Point::zero(d);
      for (int j = 0; j < d; ++j) t[j] = x[static_cast<std::size_t>(j)];
      transposed[i] = t;
    }
    detail::interleave_batch(
        std::span<const Point>(transposed.data(), chunk),
        keys.subspan(done, chunk), d, b, [](index_t key) { return key; });
    done += chunk;
  }
}

void HilbertCurve::point_at_batch(std::span<const index_t> keys,
                                  std::span<Point> cells) const {
  if (cells.size() != keys.size()) std::abort();
  const int d = universe_.dim();
  const int b = level_bits_;
  if (d == 1) {
    for (std::size_t i = 0; i < keys.size(); ++i) {
      Point p = Point::zero(1);
      p[0] = static_cast<coord_t>(keys[i]);
      cells[i] = p;
    }
    return;
  }
  detail::deinterleave_batch(keys, cells, d, b,
                             [](index_t key) { return key; });
  for (std::size_t i = 0; i < cells.size(); ++i) {
    std::array<std::uint32_t, kMaxDim> x{};
    for (int j = 0; j < d; ++j) x[static_cast<std::size_t>(j)] = cells[i][j];
    transpose_to_axes(x, b, d);
    for (int j = 0; j < d; ++j) cells[i][j] = x[static_cast<std::size_t>(j)];
  }
}

}  // namespace sfc
