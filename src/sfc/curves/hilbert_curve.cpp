#include "sfc/curves/hilbert_curve.h"

#include <algorithm>
#include <array>
#include <cstdlib>

#include "sfc/curves/batch_kernels.h"
#include "sfc/curves/bitops.h"

namespace sfc {

namespace {

// Skilling's AxestoTranspose: converts grid coordinates into the transposed
// Hilbert index (in place).  X[i] are b-bit values.
void axes_to_transpose(std::array<std::uint32_t, kMaxDim>& x, int b, int d) {
  if (b == 0 || d < 2) return;
  const std::uint32_t m = 1u << (b - 1);
  // Inverse undo of the excess-work loop in transpose_to_axes.
  for (std::uint32_t q = m; q > 1; q >>= 1) {
    const std::uint32_t p = q - 1;
    for (int i = 0; i < d; ++i) {
      if (x[static_cast<std::size_t>(i)] & q) {
        x[0] ^= p;  // invert low bits of x[0]
      } else {
        const std::uint32_t t = (x[0] ^ x[static_cast<std::size_t>(i)]) & p;
        x[0] ^= t;
        x[static_cast<std::size_t>(i)] ^= t;
      }
    }
  }
  // Gray encode.
  for (int i = 1; i < d; ++i) x[static_cast<std::size_t>(i)] ^= x[static_cast<std::size_t>(i - 1)];
  std::uint32_t t = 0;
  for (std::uint32_t q = m; q > 1; q >>= 1) {
    if (x[static_cast<std::size_t>(d - 1)] & q) t ^= q - 1;
  }
  for (int i = 0; i < d; ++i) x[static_cast<std::size_t>(i)] ^= t;
}

// Skilling's TransposetoAxes: converts a transposed Hilbert index back into
// grid coordinates (in place).
void transpose_to_axes(std::array<std::uint32_t, kMaxDim>& x, int b, int d) {
  if (b == 0 || d < 2) return;
  const std::uint32_t n = 2u << (b - 1);
  // Gray decode by H ^ (H/2).
  std::uint32_t t = x[static_cast<std::size_t>(d - 1)] >> 1;
  for (int i = d - 1; i > 0; --i) {
    x[static_cast<std::size_t>(i)] ^= x[static_cast<std::size_t>(i - 1)];
  }
  x[0] ^= t;
  // Undo excess work.
  for (std::uint32_t q = 2; q != n; q <<= 1) {
    const std::uint32_t p = q - 1;
    for (int i = d - 1; i >= 0; --i) {
      if (x[static_cast<std::size_t>(i)] & q) {
        x[0] ^= p;
      } else {
        const std::uint32_t s = (x[0] ^ x[static_cast<std::size_t>(i)]) & p;
        x[0] ^= s;
        x[static_cast<std::size_t>(i)] ^= s;
      }
    }
  }
}

}  // namespace

HilbertCurve::HilbertCurve(Universe universe) : SpaceFillingCurve(universe) {
  if (!universe_.power_of_two_side()) std::abort();
  level_bits_ = universe_.level_bits();
}

index_t HilbertCurve::index_of(const Point& cell) const {
  const int d = universe_.dim();
  if (d == 1) return cell[0];
  std::array<std::uint32_t, kMaxDim> x{};
  for (int i = 0; i < d; ++i) x[static_cast<std::size_t>(i)] = cell[i];
  axes_to_transpose(x, level_bits_, d);
  // The transposed form distributes index bits across x[0..d-1] with x[0]
  // carrying the most significant bit of each level — identical to our
  // Morton interleave convention.
  Point transposed = Point::zero(d);
  for (int i = 0; i < d; ++i) transposed[i] = x[static_cast<std::size_t>(i)];
  return interleave(transposed, level_bits_);
}

Point HilbertCurve::point_at(index_t key) const {
  const int d = universe_.dim();
  if (d == 1) {
    Point p = Point::zero(1);
    p[0] = static_cast<coord_t>(key);
    return p;
  }
  const Point transposed = deinterleave(key, d, level_bits_);
  std::array<std::uint32_t, kMaxDim> x{};
  for (int i = 0; i < d; ++i) x[static_cast<std::size_t>(i)] = transposed[i];
  transpose_to_axes(x, level_bits_, d);
  Point p = Point::zero(d);
  for (int i = 0; i < d; ++i) p[i] = x[static_cast<std::size_t>(i)];
  return p;
}

void HilbertCurve::index_of_batch(std::span<const Point> cells,
                                  std::span<index_t> keys) const {
  if (cells.size() != keys.size()) std::abort();
  const int d = universe_.dim();
  const int b = level_bits_;
  if (d == 1) {
    for (std::size_t i = 0; i < cells.size(); ++i) keys[i] = cells[i][0];
    return;
  }
  // Transpose into a fixed-size stack buffer chunk by chunk, then run the
  // branch-free interleave kernel over each chunk.
  constexpr std::size_t kChunk = 256;
  std::array<Point, kChunk> transposed;
  std::size_t done = 0;
  while (done < cells.size()) {
    const std::size_t chunk = std::min(cells.size() - done, kChunk);
    for (std::size_t i = 0; i < chunk; ++i) {
      std::array<std::uint32_t, kMaxDim> x{};
      for (int j = 0; j < d; ++j) {
        x[static_cast<std::size_t>(j)] = cells[done + i][j];
      }
      axes_to_transpose(x, b, d);
      Point t = Point::zero(d);
      for (int j = 0; j < d; ++j) t[j] = x[static_cast<std::size_t>(j)];
      transposed[i] = t;
    }
    detail::interleave_batch(
        std::span<const Point>(transposed.data(), chunk),
        keys.subspan(done, chunk), d, b, [](index_t key) { return key; });
    done += chunk;
  }
}

void HilbertCurve::point_at_batch(std::span<const index_t> keys,
                                  std::span<Point> cells) const {
  if (cells.size() != keys.size()) std::abort();
  const int d = universe_.dim();
  const int b = level_bits_;
  if (d == 1) {
    for (std::size_t i = 0; i < keys.size(); ++i) {
      Point p = Point::zero(1);
      p[0] = static_cast<coord_t>(keys[i]);
      cells[i] = p;
    }
    return;
  }
  detail::deinterleave_batch(keys, cells, d, b,
                             [](index_t key) { return key; });
  for (std::size_t i = 0; i < cells.size(); ++i) {
    std::array<std::uint32_t, kMaxDim> x{};
    for (int j = 0; j < d; ++j) x[static_cast<std::size_t>(j)] = cells[i][j];
    transpose_to_axes(x, b, d);
    for (int j = 0; j < d; ++j) cells[i][j] = x[static_cast<std::size_t>(j)];
  }
}

}  // namespace sfc
