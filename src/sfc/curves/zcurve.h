// The Z curve (Morton order) — paper §IV-B.
//
// Z(x) is the integer whose binary expansion interleaves the coordinate bits
// level by level:  x1's MSB, x2's MSB, ..., xd's MSB, then the second bits,
// and so on (dimension 1 most significant within each level).  The paper's
// worked example is Z(101, 010, 011) = 100011101₂ = 285 for d = 3, k = 3.
//
// Requires a power-of-two side (side = 2^k).  Not continuous: consecutive
// keys can be far apart in space, but Theorem 2 shows its average NN-stretch
// is within 1.5x of the optimal.
#pragma once

#include <vector>

#include "sfc/curves/space_filling_curve.h"

namespace sfc {

class ZCurve final : public SpaceFillingCurve {
 public:
  explicit ZCurve(Universe universe);

  std::string name() const override { return "z-curve"; }
  index_t index_of(const Point& cell) const override;
  Point point_at(index_t key) const override;

  /// Branch-free batched codec: one (d, level_bits) dispatch per call, then a
  /// tight magic-mask loop (bench: perf_encode_decode batch-vs-scalar).
  void index_of_batch(std::span<const Point> cells,
                      std::span<index_t> keys) const override;
  void point_at_batch(std::span<const index_t> keys,
                      std::span<Point> cells) const override;

  /// Dyadic subtree structure: child j's subcube offset is j's bits read as
  /// one interleave level (dimension 1 in the most significant bit).
  coord_t subtree_radix() const override { return 2; }
  void subtree_children(const SubtreeNode& node,
                        std::span<SubtreeNode> children) const override;
  void subtree_children_batch(std::span<const SubtreeNode> nodes,
                              std::span<SubtreeNode> children) const override;

 private:
  int level_bits_;
};

/// Z curve with an arbitrary per-level dimension order.
///
/// The paper notes (§IV-B) that "different Z curves are possible by taking
/// the dimensions in a different order during interleaving, but these are
/// all equivalent ... at least for the metrics that we consider".  This
/// class realizes those variants so the claim can be verified empirically
/// (bench/ablation_z_dimension_order): `order[pos]` is the 0-based dimension
/// placed at significance position `pos` within each level (pos 0 = most
/// significant).  The identity order reproduces ZCurve exactly.
class PermutedZCurve final : public SpaceFillingCurve {
 public:
  PermutedZCurve(Universe universe, std::vector<int> order);

  std::string name() const override;
  index_t index_of(const Point& cell) const override;
  Point point_at(index_t key) const override;

  /// Dyadic like ZCurve for any dimension order.
  coord_t subtree_radix() const override { return 2; }

  /// Direct bit-pick descent: bit (d-1-pos) of child j's key digit selects
  /// the upper half of dimension order[pos] — ZCurve's kernel routed through
  /// the permutation, no decoder round trip.  Bit-identical to the generic
  /// decode-based descent (tests/ranges/test_descent_kernels.cpp);
  /// speed-gated by bench/perf_kernels.cpp.
  void subtree_children(const SubtreeNode& node,
                        std::span<SubtreeNode> children) const override;
  void subtree_children_batch(std::span<const SubtreeNode> nodes,
                              std::span<SubtreeNode> children) const override;

 private:
  int level_bits_;
  std::vector<int> order_;  // significance position -> dimension
};

}  // namespace sfc
