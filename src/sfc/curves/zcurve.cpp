#include "sfc/curves/zcurve.h"

#include <array>
#include <bit>
#include <cstdlib>

#include "sfc/curves/batch_kernels.h"
#include "sfc/curves/bitops.h"

namespace sfc {

ZCurve::ZCurve(Universe universe) : SpaceFillingCurve(universe) {
  if (!universe_.power_of_two_side()) std::abort();
  level_bits_ = universe_.level_bits();
}

index_t ZCurve::index_of(const Point& cell) const {
  return interleave(cell, level_bits_);
}

Point ZCurve::point_at(index_t key) const {
  return deinterleave(key, universe_.dim(), level_bits_);
}

void ZCurve::index_of_batch(std::span<const Point> cells,
                            std::span<index_t> keys) const {
  detail::interleave_batch(cells, keys, universe_.dim(), level_bits_,
                           [](index_t key) { return key; });
}

void ZCurve::point_at_batch(std::span<const index_t> keys,
                            std::span<Point> cells) const {
  detail::deinterleave_batch(keys, cells, universe_.dim(), level_bits_,
                             [](index_t key) { return key; });
}

void ZCurve::subtree_children(const SubtreeNode& node,
                              std::span<SubtreeNode> children) const {
  if (node.side < 2 || node.side % 2 != 0) std::abort();
  const int d = universe_.dim();
  const index_t arity = index_t{1} << d;
  if (children.size() != arity) std::abort();
  const coord_t child_side = node.side / 2;
  const index_t child_count = node.key_count >> d;
  // Child j's key digit *is* one interleave level: bit (d-1-i) selects the
  // upper half of dimension i.
  for (index_t j = 0; j < arity; ++j) {
    SubtreeNode& child = children[j];
    child.origin = node.origin;
    for (int i = 0; i < d; ++i) {
      if ((j >> (d - 1 - i)) & 1) child.origin[i] += child_side;
    }
    child.side = child_side;
    child.key_lo = node.key_lo + j * child_count;
    child.key_count = child_count;
    child.state = 0;
  }
}

void ZCurve::subtree_children_batch(std::span<const SubtreeNode> nodes,
                                    std::span<SubtreeNode> children) const {
  expand_subtrees_nodewise(nodes, children);
}

PermutedZCurve::PermutedZCurve(Universe universe, std::vector<int> order)
    : SpaceFillingCurve(universe), order_(std::move(order)) {
  if (!universe_.power_of_two_side()) std::abort();
  level_bits_ = universe_.level_bits();
  // order_ must be a permutation of {0..d-1}.
  const int d = universe_.dim();
  if (order_.size() != static_cast<std::size_t>(d)) std::abort();
  std::vector<bool> seen(static_cast<std::size_t>(d), false);
  for (int dim : order_) {
    if (dim < 0 || dim >= d || seen[static_cast<std::size_t>(dim)]) std::abort();
    seen[static_cast<std::size_t>(dim)] = true;
  }
}

std::string PermutedZCurve::name() const {
  std::string suffix;
  for (int dim : order_) suffix += std::to_string(dim + 1);
  return "z-curve-order" + suffix;
}

index_t PermutedZCurve::index_of(const Point& cell) const {
  const int d = universe_.dim();
  index_t key = 0;
  for (int pos = 0; pos < d; ++pos) {
    key |= spread_bits(cell[order_[static_cast<std::size_t>(pos)]], d, level_bits_)
           << (d - 1 - pos);
  }
  return key;
}

Point PermutedZCurve::point_at(index_t key) const {
  const int d = universe_.dim();
  Point cell = Point::zero(d);
  for (int pos = 0; pos < d; ++pos) {
    cell[order_[static_cast<std::size_t>(pos)]] = static_cast<coord_t>(
        compact_bits(key >> (d - 1 - pos), d, level_bits_));
  }
  return cell;
}

void PermutedZCurve::subtree_children(const SubtreeNode& node,
                                      std::span<SubtreeNode> children) const {
  if (node.side < 2 || node.side % 2 != 0) std::abort();
  const int d = universe_.dim();
  const index_t arity = index_t{1} << d;
  if (children.size() != arity) std::abort();
  const coord_t child_side = node.side / 2;
  const index_t child_count = node.key_count >> d;
  // Child j's key digit is one interleave level in permuted order: bit
  // (d-1-pos) selects the upper half of dimension order_[pos].  j and
  // j & (j-1) differ in exactly the lowest set bit of j, so each child's
  // origin is an already-computed sibling's origin plus one half-step —
  // O(1) per child instead of a d-bit scan.
  std::array<int, kMaxDim> bump_dim;
  for (int pos = 0; pos < d; ++pos) {
    bump_dim[static_cast<std::size_t>(d - 1 - pos)] =
        order_[static_cast<std::size_t>(pos)];
  }
  children[0].origin = node.origin;
  children[0].side = child_side;
  children[0].key_lo = node.key_lo;
  children[0].key_count = child_count;
  children[0].state = 0;
  for (index_t j = 1; j < arity; ++j) {
    SubtreeNode& child = children[j];
    child.origin = children[j & (j - 1)].origin;
    child.origin[bump_dim[static_cast<std::size_t>(std::countr_zero(j))]] +=
        child_side;
    child.side = child_side;
    child.key_lo = node.key_lo + j * child_count;
    child.key_count = child_count;
    child.state = 0;
  }
}

void PermutedZCurve::subtree_children_batch(
    std::span<const SubtreeNode> nodes, std::span<SubtreeNode> children) const {
  expand_subtrees_nodewise(nodes, children);
}

}  // namespace sfc
