#include "sfc/curves/toy_curves.h"

#include <cstdlib>
#include <memory>
#include <vector>

#include "sfc/curves/permutation_curve.h"

namespace sfc {

namespace {

// Row-major ids on the 2x2 universe: id = x1 + 2*x2.
//   D=(0,0)->0, B=(1,0)->1, A=(0,1)->2, C=(1,1)->3.
constexpr index_t kIdD = 0, kIdB = 1, kIdA = 2, kIdC = 3;

CurvePtr make_toy(const std::vector<index_t>& order_by_id, std::string name) {
  Universe u(2, 2);
  return std::make_unique<PermutationCurve>(u, order_by_id, std::move(name));
}

}  // namespace

CurvePtr make_figure1_pi1() {
  // Order C, A, B, D  =>  π(C)=0, π(A)=1, π(B)=2, π(D)=3.
  std::vector<index_t> keys(4);
  keys[kIdC] = 0;
  keys[kIdA] = 1;
  keys[kIdB] = 2;
  keys[kIdD] = 3;
  return make_toy(keys, "fig1-pi1");
}

CurvePtr make_figure1_pi2() {
  // Order A, B, C, D  =>  π(A)=0, π(B)=1, π(C)=2, π(D)=3.
  std::vector<index_t> keys(4);
  keys[kIdA] = 0;
  keys[kIdB] = 1;
  keys[kIdC] = 2;
  keys[kIdD] = 3;
  return make_toy(keys, "fig1-pi2");
}

char figure1_label(const Point& cell) {
  if (cell == Point{0, 1}) return 'A';
  if (cell == Point{1, 0}) return 'B';
  if (cell == Point{1, 1}) return 'C';
  if (cell == Point{0, 0}) return 'D';
  std::abort();
}

}  // namespace sfc
