// The snake (boustrophedon) curve.
//
// Row-major order in which each row is traversed in alternating direction, so
// consecutive keys are always nearest neighbors: the curve is a Hamiltonian
// path of the grid graph (is_continuous() == true).  Generalizes to any d by
// reflecting each digit according to the parity of the more-significant
// digits of the mixed-radix expansion.  Works for any side.
//
// Included as a baseline: it is the minimal *continuous* modification of the
// paper's simple curve, useful for the ablation "does continuity change the
// average NN-stretch?" (it does not, asymptotically — the Theorem 1 bound
// dominates).
#pragma once

#include "sfc/curves/space_filling_curve.h"

namespace sfc {

class SnakeCurve final : public SpaceFillingCurve {
 public:
  explicit SnakeCurve(Universe universe) : SpaceFillingCurve(universe) {}

  std::string name() const override { return "snake"; }
  index_t index_of(const Point& cell) const override;
  Point point_at(index_t key) const override;
  bool is_continuous() const override { return true; }
};

}  // namespace sfc
