#include "sfc/curves/tiled_curve.h"

#include <cstdlib>

#include "sfc/common/math.h"

namespace sfc {

TiledCurve::TiledCurve(Universe universe, coord_t tile_side)
    : SpaceFillingCurve(universe), tile_side_(tile_side) {
  if (tile_side < 1 || universe_.side() % tile_side != 0) std::abort();
  cells_per_tile_ = ipow(tile_side, universe_.dim());
  tiles_per_side_ = universe_.side() / tile_side;
}

std::string TiledCurve::name() const {
  return "tiled-" + std::to_string(tile_side_);
}

index_t TiledCurve::index_of(const Point& cell) const {
  const int d = universe_.dim();
  index_t tile_index = 0, within_index = 0;
  for (int i = d - 1; i >= 0; --i) {
    tile_index = tile_index * tiles_per_side_ + cell[i] / tile_side_;
    within_index = within_index * tile_side_ + cell[i] % tile_side_;
  }
  return tile_index * cells_per_tile_ + within_index;
}

Point TiledCurve::point_at(index_t key) const {
  const int d = universe_.dim();
  index_t tile_index = key / cells_per_tile_;
  index_t within_index = key % cells_per_tile_;
  Point cell = Point::zero(d);
  for (int i = 0; i < d; ++i) {
    const auto tile_coord = static_cast<coord_t>(tile_index % tiles_per_side_);
    const auto within_coord = static_cast<coord_t>(within_index % tile_side_);
    tile_index /= tiles_per_side_;
    within_index /= tile_side_;
    cell[i] = tile_coord * tile_side_ + within_coord;
  }
  return cell;
}

}  // namespace sfc
