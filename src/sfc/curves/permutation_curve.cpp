#include "sfc/curves/permutation_curve.h"

#include <string>

#include "sfc/curves/curve_error.h"
#include "sfc/rng/sampling.h"

namespace sfc {

PermutationCurve::PermutationCurve(Universe universe, std::vector<index_t> keys,
                                   std::string name)
    : SpaceFillingCurve(universe), keys_(std::move(keys)), name_(std::move(name)) {
  const index_t n = universe_.cell_count();
  if (keys_.size() != n) {
    throw CurveArgumentError("permutation table has " +
                             std::to_string(keys_.size()) +
                             " entries for a universe of " + std::to_string(n) +
                             " cells");
  }
  inverse_.assign(n, n);  // n = "unset" sentinel
  for (index_t id = 0; id < n; ++id) {
    const index_t key = keys_[id];
    if (key >= n || inverse_[key] != n) {
      throw CurveArgumentError(
          "permutation table is not a bijection: key " + std::to_string(key) +
          " at cell id " + std::to_string(id) +
          (key >= n ? " is out of range" : " is assigned twice"));
    }
    inverse_[key] = id;
  }
}

CurvePtr PermutationCurve::random(Universe universe, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  auto keys = random_permutation(universe.cell_count(), rng);
  return std::make_unique<PermutationCurve>(universe, std::move(keys),
                                            "random-" + std::to_string(seed));
}

index_t PermutationCurve::index_of(const Point& cell) const {
  return keys_[universe_.row_major_index(cell)];
}

Point PermutationCurve::point_at(index_t key) const {
  return universe_.from_row_major(inverse_[key]);
}

}  // namespace sfc
