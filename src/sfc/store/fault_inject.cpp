#include "sfc/store/fault_inject.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <mutex>
#include <thread>
#include <utility>

#include "sfc/rng/sampling.h"

namespace sfc {

namespace {

// Format-v1 header geometry, mirrored from docs/index_format.md (and pinned
// by the store tests): the header is 184 bytes, with its own FNV-1a checksum
// in the trailing 8 bytes — computed over the header with that field zeroed.
constexpr std::uint64_t kHeaderBytes = 184;
constexpr std::uint64_t kHeaderChecksumOffset = 176;

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kBitFlip: return "bit-flip";
    case FaultKind::kByteStomp: return "byte-stomp";
    case FaultKind::kTruncate: return "truncate";
    case FaultKind::kTruncateWhileMapped: return "truncate-while-mapped";
    case FaultKind::kHeaderField: return "header-field";
    default: return "?";
  }
}

const char* fault_outcome_name(FaultOutcome outcome) {
  switch (outcome) {
    case FaultOutcome::kRejected: return "rejected";
    case FaultOutcome::kBenign: return "benign";
    case FaultOutcome::kWrongAnswer: return "WRONG-ANSWER";
    case FaultOutcome::kWrongError: return "WRONG-ERROR";
    default: return "?";
  }
}

std::string FaultMutation::describe() const {
  switch (kind) {
    case FaultKind::kBitFlip:
      return std::string(fault_kind_name(kind)) + " offset " +
             std::to_string(offset) + " bit " + std::to_string(bit);
    case FaultKind::kByteStomp:
    case FaultKind::kHeaderField:
      return std::string(fault_kind_name(kind)) + " offset " +
             std::to_string(offset) + " value " + std::to_string(value);
    case FaultKind::kTruncate:
      return std::string(fault_kind_name(kind)) + " to " +
             std::to_string(truncate_to) + " bytes";
    case FaultKind::kTruncateWhileMapped:
      return std::string(fault_kind_name(kind)) + " at " +
             std::to_string(truncate_to) + " bytes (tail zeroed)";
    default:
      return "?";
  }
}

FaultMutation draw_fault_mutation(Xoshiro256& rng, std::uint64_t file_bytes) {
  FaultMutation m;
  const std::uint64_t roll = rng.next_below(100);
  if (roll < 40) {
    m.kind = FaultKind::kBitFlip;
    m.offset = rng.next_below(file_bytes);
    m.bit = static_cast<std::uint8_t>(rng.next_below(8));
  } else if (roll < 55) {
    m.kind = FaultKind::kByteStomp;
    m.offset = rng.next_below(file_bytes);
    m.value = static_cast<std::uint8_t>(rng.next_below(256));
  } else if (roll < 70) {
    m.kind = FaultKind::kTruncate;
    m.truncate_to = rng.next_below(file_bytes);
  } else if (roll < 85) {
    m.kind = FaultKind::kTruncateWhileMapped;
    m.truncate_to = rng.next_below(file_bytes);
  } else {
    m.kind = FaultKind::kHeaderField;
    // Stomp any pre-checksum header byte; the harness recomputes the header
    // checksum afterwards so the mutation survives into semantic validation.
    m.offset = rng.next_below(std::min(kHeaderChecksumOffset, file_bytes));
    m.value = static_cast<std::uint8_t>(rng.next_below(256));
  }
  return m;
}

FaultHarness::FaultHarness(
    std::shared_ptr<const std::vector<std::uint8_t>> pristine,
    std::string scratch_path, std::uint32_t probes, std::uint64_t probe_seed)
    : pristine_(std::move(pristine)), scratch_path_(std::move(scratch_path)) {
  fd_ = ::open(scratch_path_.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC,
               0644);
  if (fd_ < 0) throw StoreIoError("open", scratch_path_, errno);
  write_at(0, pristine_->data(), pristine_->size());

  // Build the probe set and its reference answers from the pristine scratch
  // copy; this also proves the input validates before any fault is injected.
  MappedIndex index = MappedIndex::open(scratch_path_, {.verify = true});
  const Universe& u = index.curve().universe();
  Xoshiro256 rng(probe_seed);
  const coord_t extent = std::max<coord_t>(1, u.side() / 8);
  for (std::uint32_t i = 0; i < probes; ++i) {
    probe_boxes_.push_back(random_box(u, extent, rng));
    probe_points_.push_back(random_cell(u, rng));
  }
  reference_ranges_ = run_range_queries(index.view(), probe_boxes_);
  reference_knn_ = run_knn_queries(index.view(), probe_points_, probe_k_);
}

FaultHarness::~FaultHarness() {
  if (fd_ >= 0) ::close(fd_);
  ::unlink(scratch_path_.c_str());
}

void FaultHarness::write_at(std::uint64_t offset, const void* data,
                            std::uint64_t bytes) {
  const auto* at = static_cast<const char*>(data);
  while (bytes > 0) {
    const ::ssize_t wrote =
        ::pwrite(fd_, at, bytes, static_cast<::off_t>(offset));
    if (wrote < 0) {
      if (errno == EINTR) continue;
      throw StoreIoError("pwrite", scratch_path_, errno);
    }
    at += wrote;
    offset += static_cast<std::uint64_t>(wrote);
    bytes -= static_cast<std::uint64_t>(wrote);
  }
}

void FaultHarness::apply(const FaultMutation& mutation) {
  switch (mutation.kind) {
    case FaultKind::kBitFlip: {
      const std::uint8_t flipped = static_cast<std::uint8_t>(
          (*pristine_)[mutation.offset] ^ (1u << mutation.bit));
      write_at(mutation.offset, &flipped, 1);
      break;
    }
    case FaultKind::kByteStomp:
      write_at(mutation.offset, &mutation.value, 1);
      break;
    case FaultKind::kTruncate:
      if (::ftruncate(fd_, static_cast<::off_t>(mutation.truncate_to)) != 0) {
        throw StoreIoError("ftruncate", scratch_path_, errno);
      }
      break;
    case FaultKind::kTruncateWhileMapped:
      // Truncate, then regrow to full size.  The regrown tail reads as
      // zeros — exactly the bytes a live mapping observes when the file
      // under it is truncated and re-extended, but reachable through the
      // ordinary open path (no SIGBUS needed to deliver the corruption).
      if (::ftruncate(fd_, static_cast<::off_t>(mutation.truncate_to)) != 0 ||
          ::ftruncate(fd_, static_cast<::off_t>(pristine_->size())) != 0) {
        throw StoreIoError("ftruncate", scratch_path_, errno);
      }
      break;
    case FaultKind::kHeaderField: {
      write_at(mutation.offset, &mutation.value, 1);
      // Recompute the header checksum over the mutated header so the header
      // digest check passes and validation reaches the semantic layers.
      std::uint8_t header[kHeaderBytes];
      std::copy_n(pristine_->data(), kHeaderBytes, header);
      header[mutation.offset] = mutation.value;
      std::fill_n(header + kHeaderChecksumOffset, sizeof(std::uint64_t),
                  std::uint8_t{0});
      const std::uint64_t digest = fnv1a64(header, kHeaderBytes);
      write_at(kHeaderChecksumOffset, &digest, sizeof(digest));
      break;
    }
    default:
      break;
  }
}

void FaultHarness::restore(const FaultMutation& mutation) {
  switch (mutation.kind) {
    case FaultKind::kBitFlip:
    case FaultKind::kByteStomp:
      write_at(mutation.offset, pristine_->data() + mutation.offset, 1);
      break;
    case FaultKind::kTruncate:
    case FaultKind::kTruncateWhileMapped:
      // ftruncate back up (zero-fills; no-op if already full size), then
      // rewrite the pristine tail.
      if (::ftruncate(fd_, static_cast<::off_t>(pristine_->size())) != 0) {
        throw StoreIoError("ftruncate", scratch_path_, errno);
      }
      write_at(mutation.truncate_to,
               pristine_->data() + mutation.truncate_to,
               pristine_->size() - mutation.truncate_to);
      break;
    case FaultKind::kHeaderField:
      write_at(mutation.offset, pristine_->data() + mutation.offset, 1);
      write_at(kHeaderChecksumOffset,
               pristine_->data() + kHeaderChecksumOffset,
               sizeof(std::uint64_t));
      break;
    default:
      break;
  }
}

FaultOutcome FaultHarness::classify() {
  try {
    const MappedIndex index =
        MappedIndex::open(scratch_path_, {.verify = true});
    // The mutated file opened.  That is only acceptable if it answers every
    // probe exactly like the pristine index did (e.g. a padding-byte stomp).
    try {
      const std::vector<RangeQueryResult> ranges =
          run_range_queries(index.view(), probe_boxes_);
      for (std::size_t i = 0; i < ranges.size(); ++i) {
        if (ranges[i].ids != reference_ranges_[i].ids) {
          return FaultOutcome::kWrongAnswer;
        }
      }
      const std::vector<KnnQueryResult> knn =
          run_knn_queries(index.view(), probe_points_, probe_k_);
      for (std::size_t i = 0; i < knn.size(); ++i) {
        if (knn[i].neighbors != reference_knn_[i].neighbors) {
          return FaultOutcome::kWrongAnswer;
        }
      }
      return FaultOutcome::kBenign;
    } catch (const Error&) {
      // A validated index must answer in-universe probes; an engine error
      // here means validation let a semantic inconsistency through.
      return FaultOutcome::kWrongError;
    }
  } catch (const StoreError&) {
    return FaultOutcome::kRejected;  // the contract: typed rejection
  } catch (const Error&) {
    return FaultOutcome::kWrongError;  // escaped with the wrong type
  }
}

FaultOutcome FaultHarness::check(const FaultMutation& mutation) {
  apply(mutation);
  const FaultOutcome outcome = classify();
  restore(mutation);
  return outcome;
}

FaultCampaignReport run_fault_campaign(const std::string& path,
                                       const FaultCampaignOptions& options) {
  // Load the pristine image once; shared read-only across workers.
  auto pristine = std::make_shared<std::vector<std::uint8_t>>();
  {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) throw StoreIoError("open", path, errno);
    struct ::stat st{};
    if (::fstat(fd, &st) != 0) {
      const int err = errno;
      ::close(fd);
      throw StoreIoError("fstat", path, err);
    }
    pristine->resize(static_cast<std::size_t>(st.st_size));
    std::uint64_t at = 0;
    while (at < pristine->size()) {
      const ::ssize_t got = ::pread(fd, pristine->data() + at,
                                    pristine->size() - at,
                                    static_cast<::off_t>(at));
      if (got < 0) {
        if (errno == EINTR) continue;
        const int err = errno;
        ::close(fd);
        throw StoreIoError("pread", path, err);
      }
      if (got == 0) break;
      at += static_cast<std::uint64_t>(got);
    }
    ::close(fd);
  }
  if (pristine->size() < kHeaderBytes) {
    throw StoreError("fault campaign: '" + path + "' is shorter (" +
                     std::to_string(pristine->size()) +
                     " bytes) than an index header");
  }

  const std::string scratch_dir = [&] {
    if (!options.scratch_dir.empty()) return options.scratch_dir;
    const std::size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? std::string(".")
                                      : path.substr(0, slash);
  }();
  std::uint32_t threads = options.threads != 0
                              ? options.threads
                              : std::max(1u, std::thread::hardware_concurrency());
  threads = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(threads, std::max<std::uint64_t>(
                                           1, options.iterations)));

  FaultCampaignReport report;
  report.iterations = options.iterations;
  std::mutex report_mutex;
  std::exception_ptr first_error;

  const auto worker = [&](std::uint32_t worker_id) {
    try {
      FaultHarness harness(
          pristine,
          scratch_dir + "/.sfcidx-fuzz-" + std::to_string(::getpid()) + "-" +
              std::to_string(worker_id) + ".scratch",
          options.probes, options.seed ^ 0x9e3779b97f4a7c15ULL);
      std::array<std::uint64_t,
                 static_cast<std::size_t>(FaultKind::kFaultKinds)>
          by_kind{};
      std::uint64_t rejected = 0, benign = 0, wrong_answer = 0,
                    wrong_error = 0;
      std::vector<std::uint64_t> failing;
      for (std::uint64_t it = worker_id; it < options.iterations;
           it += threads) {
        // Per-iteration seeding: the mutation stream is a pure function of
        // (campaign seed, iteration index), independent of the thread count.
        Xoshiro256 rng(options.seed + 0x51ed2701ULL * (it + 1));
        const FaultMutation mutation =
            draw_fault_mutation(rng, harness.file_bytes());
        ++by_kind[static_cast<std::size_t>(mutation.kind)];
        switch (harness.check(mutation)) {
          case FaultOutcome::kRejected: ++rejected; break;
          case FaultOutcome::kBenign: ++benign; break;
          case FaultOutcome::kWrongAnswer:
            ++wrong_answer;
            failing.push_back(it);
            break;
          default:
            ++wrong_error;
            failing.push_back(it);
            break;
        }
      }
      std::lock_guard<std::mutex> lock(report_mutex);
      for (std::size_t k = 0; k < by_kind.size(); ++k) {
        report.by_kind[k] += by_kind[k];
      }
      report.rejected += rejected;
      report.benign += benign;
      report.wrong_answer += wrong_answer;
      report.wrong_error += wrong_error;
      for (const std::uint64_t it : failing) {
        if (report.failing_iterations.size() < 32) {
          report.failing_iterations.push_back(it);
        }
      }
    } catch (...) {
      std::lock_guard<std::mutex> lock(report_mutex);
      if (!first_error) first_error = std::current_exception();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::uint32_t w = 0; w < threads; ++w) pool.emplace_back(worker, w);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
  std::sort(report.failing_iterations.begin(),
            report.failing_iterations.end());
  return report;
}

}  // namespace sfc
