#include "sfc/store/index_store.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "sfc/curves/curve_error.h"
#include "sfc/obs/metrics.h"
#include "sfc/obs/span_trace.h"

namespace sfc {

namespace {

struct StoreMetrics {
  MetricsRegistry::Counter writes;
  MetricsRegistry::Counter opens;
  MetricsRegistry::Counter bytes_mapped;
  MetricsRegistry::Histogram write_us;
  MetricsRegistry::Histogram open_us;
  MetricsRegistry::Histogram verify_us;
};

StoreMetrics& store_metrics() {
  static StoreMetrics metrics{
      MetricsRegistry::global().counter("store.writes"),
      MetricsRegistry::global().counter("store.opens"),
      MetricsRegistry::global().counter("store.bytes_mapped"),
      MetricsRegistry::global().histogram("store.write_us"),
      MetricsRegistry::global().histogram("store.open_us"),
      MetricsRegistry::global().histogram("store.verify_us"),
  };
  return metrics;
}

// The mapped columns are served as raw spans, so the format pins the native
// layout of every element type.  A platform where these do not hold cannot
// read (or produce) version-1 files; the header's endian tag and point_bytes
// field turn such mismatches into recoverable StoreErrors.
static_assert(std::is_trivially_copyable_v<Point>);
static_assert(std::is_standard_layout_v<Point>);
static_assert(sizeof(Point) == 36, "on-disk point layout (v1) changed");
static_assert(sizeof(index_t) == 8 && sizeof(coord_t) == 4);

constexpr char kMagic[8] = {'S', 'F', 'C', 'I', 'D', 'X', '0', '1'};
constexpr std::uint32_t kEndianTag = 0x01020304;
constexpr std::uint64_t kColumnAlign = 64;
constexpr std::size_t kFamilyBytes = 24;

enum Column : std::size_t { kKeys = 0, kIds, kPoints, kDirectory, kColumns };

struct ColumnEntry {
  std::uint64_t offset = 0;    // byte offset from file start, 64-aligned
  std::uint64_t bytes = 0;     // payload bytes (excluding padding)
  std::uint64_t checksum = 0;  // fnv1a64 over the payload bytes
};

struct Header {
  char magic[8];
  std::uint32_t version;
  std::uint32_t endian_tag;
  std::uint32_t header_bytes;
  std::uint32_t point_bytes;
  std::uint32_t curve_dim;
  std::uint32_t curve_side;
  std::uint64_t curve_seed;
  std::uint64_t row_count;
  std::uint32_t block_rows;
  std::uint32_t reserved;
  char curve_family[kFamilyBytes];  // NUL-padded canonical family name
  ColumnEntry columns[kColumns];
  std::uint64_t header_checksum;  // fnv1a64 over the header, this field = 0
};

static_assert(std::is_trivially_copyable_v<Header>);
static_assert(sizeof(Header) == 184, "on-disk header layout (v1) changed");

std::uint64_t align_up(std::uint64_t value, std::uint64_t align) {
  return (value + align - 1) / align * align;
}

std::uint64_t header_digest(Header header) {
  header.header_checksum = 0;
  return fnv1a64(&header, sizeof(header));
}

/// The four column payload sizes of an index with `rows` rows.
void column_sizes(std::uint64_t rows, std::uint32_t block_rows,
                  std::uint64_t sizes[kColumns]) {
  const std::uint64_t blocks =
      block_rows == 0 ? 0 : (rows + block_rows - 1) / block_rows;
  sizes[kKeys] = rows * sizeof(index_t);
  sizes[kIds] = rows * sizeof(std::uint32_t);
  sizes[kPoints] = rows * sizeof(Point);
  sizes[kDirectory] = blocks * sizeof(index_t);
}

}  // namespace

namespace store_testing {
std::atomic<int> write_kill_countdown{-1};
}  // namespace store_testing

namespace {

// Crash injection point: called immediately before every write-path syscall.
// A countdown of k lets k syscalls through and terminates the process at the
// (k+1)-th, so a seeded loop over k covers a crash at every syscall boundary
// of the write protocol deterministically.
void maybe_kill() {
  int v = store_testing::write_kill_countdown.load(std::memory_order_relaxed);
  while (v >= 0) {
    if (v == 0) ::_exit(store_testing::kKillExitCode);
    if (store_testing::write_kill_countdown.compare_exchange_weak(
            v, v - 1, std::memory_order_relaxed)) {
      return;
    }
  }
}

}  // namespace

std::uint64_t fnv1a64(const void* data, std::size_t bytes,
                      std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t hash = seed;
  for (std::size_t i = 0; i < bytes; ++i) {
    hash ^= p[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

StoreIoError::StoreIoError(const std::string& sys_call,
                           const std::string& path, int errno_value)
    : StoreError("index io: " + sys_call + "('" + path +
                 "') failed: " + std::strerror(errno_value)),
      sys_call_(sys_call),
      errno_value_(errno_value) {}

void write_index_file(const std::string& path, const PointIndex& index,
                      const CurveDescriptor& descriptor) {
  const double write_start_us = trace_now_us();
  const Universe& u = index.curve().universe();
  if (descriptor.dim != u.dim() || descriptor.side != u.side()) {
    throw StoreError("index write: descriptor universe (d=" +
                     std::to_string(descriptor.dim) + " side=" +
                     std::to_string(descriptor.side) +
                     ") does not match the index's curve (d=" +
                     std::to_string(u.dim()) + " side=" +
                     std::to_string(u.side()) + ")");
  }
  if (descriptor.family.size() + 1 > kFamilyBytes) {
    throw StoreError("index write: curve family name '" + descriptor.family +
                     "' exceeds " + std::to_string(kFamilyBytes - 1) +
                     " bytes");
  }

  Header header{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kIndexFormatVersion;
  header.endian_tag = kEndianTag;
  header.header_bytes = sizeof(Header);
  header.point_bytes = sizeof(Point);
  header.curve_dim = static_cast<std::uint32_t>(descriptor.dim);
  header.curve_side = descriptor.side;
  header.curve_seed = descriptor.seed;
  header.row_count = index.row_count();
  header.block_rows = index.block_rows();
  std::memcpy(header.curve_family, descriptor.family.c_str(),
              descriptor.family.size() + 1);

  const void* payloads[kColumns] = {
      index.keys().data(), index.ids().data(), index.points().data(),
      index.view().block_last_key().data()};
  std::uint64_t sizes[kColumns];
  column_sizes(index.row_count(), index.block_rows(), sizes);

  std::uint64_t offset = align_up(sizeof(Header), kColumnAlign);
  for (std::size_t c = 0; c < kColumns; ++c) {
    header.columns[c].offset = offset;
    header.columns[c].bytes = sizes[c];
    header.columns[c].checksum = fnv1a64(payloads[c], sizes[c]);
    offset = align_up(offset + sizes[c], kColumnAlign);
  }
  header.header_checksum = header_digest(header);

  // Crash-safe protocol: stream everything into `path + ".tmp"`, fsync the
  // file, atomically rename over `path`, then fsync the parent directory so
  // the rename itself is durable.  A reader can therefore only ever map the
  // previous complete file or the new complete file; a crash at any point
  // leaves at worst a stale `.tmp` that MappedIndex::open never looks at
  // (and that is itself rejected if opened torn).
  const std::string tmp = path + ".tmp";
  maybe_kill();
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) throw StoreIoError("open", tmp, errno);

  const auto fail = [&](const char* sys_call) {
    const int err = errno;
    ::close(fd);
    ::unlink(tmp.c_str());  // best effort: do not leave a torn temp behind
    throw StoreIoError(sys_call, tmp, err);
  };
  const auto write_all = [&](const void* data, std::uint64_t bytes) {
    const auto* at = static_cast<const char*>(data);
    while (bytes > 0) {
      maybe_kill();
      const ::ssize_t wrote = ::write(fd, at, bytes);
      if (wrote < 0) {
        if (errno == EINTR) continue;
        fail("write");
      }
      at += wrote;
      bytes -= static_cast<std::uint64_t>(wrote);
    }
  };

  const char zeros[kColumnAlign] = {};
  std::uint64_t written = 0;
  const auto emit = [&](const void* data, std::uint64_t bytes) {
    write_all(data, bytes);
    written += bytes;
  };
  const auto pad_to = [&](std::uint64_t target) {
    while (written < target) {
      const std::uint64_t chunk =
          std::min<std::uint64_t>(target - written, sizeof(zeros));
      emit(zeros, chunk);
    }
  };
  emit(&header, sizeof(header));
  for (std::size_t c = 0; c < kColumns; ++c) {
    pad_to(header.columns[c].offset);
    emit(payloads[c], sizes[c]);
  }
  maybe_kill();
  if (::fsync(fd) != 0) fail("fsync");
  maybe_kill();
  if (::close(fd) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    throw StoreIoError("close", tmp, err);
  }
  maybe_kill();
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    throw StoreIoError("rename", path, err);
  }
  // Durable rename: fsync the directory entry.  Some filesystems reject
  // directory fsync (EINVAL) — treat that as best-effort, everything else as
  // a real error.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  maybe_kill();
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dir_fd < 0) throw StoreIoError("open", dir, errno);
  maybe_kill();
  if (::fsync(dir_fd) != 0 && errno != EINVAL) {
    const int err = errno;
    ::close(dir_fd);
    throw StoreIoError("fsync", dir, err);
  }
  ::close(dir_fd);
  if (obs_enabled()) {
    const double write_us = trace_now_us() - write_start_us;
    StoreMetrics& metrics = store_metrics();
    metrics.writes.add(1);
    metrics.write_us.record_us(write_us);
    TraceSpan span;
    span.name = "store_write";
    span.category = "store";
    span.start_us = write_start_us;
    span.dur_us = write_us;
    span.tid = trace_thread_id();
    span.add_arg("rows", index.row_count());
    span.add_arg("bytes", written);
    TraceRing::global().record(span);
  }
}

MappedIndex MappedIndex::open(const std::string& path,
                              const MappedIndexOptions& options) {
  const double open_start_us = trace_now_us();
  // `mapped` owns fd + mapping from the moment they exist, so every throw
  // below (validation failures included) releases them through the destructor.
  MappedIndex mapped;
  mapped.path_ = path;
  mapped.fd_ = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (mapped.fd_ < 0) throw StoreIoError("open", path, errno);
  if (options.lock && ::flock(mapped.fd_, LOCK_SH | LOCK_NB) != 0) {
    // EWOULDBLOCK = somebody holds LOCK_EX (a would-be in-place mutator):
    // refuse to map rather than race it.  The lock rides the fd until close.
    throw StoreIoError("flock", path, errno);
  }
  struct stat st{};
  if (::fstat(mapped.fd_, &st) != 0) throw StoreIoError("fstat", path, errno);
  const std::uint64_t file_bytes = static_cast<std::uint64_t>(st.st_size);
  if (file_bytes < sizeof(Header)) {
    throw StoreError("index open: '" + path + "' is " +
                     std::to_string(file_bytes) +
                     " bytes — shorter than the " +
                     std::to_string(sizeof(Header)) + "-byte header");
  }
  void* map =
      ::mmap(nullptr, file_bytes, PROT_READ, MAP_SHARED, mapped.fd_, 0);
  if (map == MAP_FAILED) throw StoreIoError("mmap", path, errno);
  mapped.map_ = map;
  mapped.map_bytes_ = file_bytes;

  // SIGBUS hardening: validation below reads every mapped byte, and touching
  // a page past a concurrently-shrunk file's end is a SIGBUS crash, not an
  // error return.  Our own writers never shrink a live path (rename-based
  // replace keeps the old inode intact) and the flock above holds off
  // cooperating in-place mutators, so the only remaining hazard is a file
  // that was already short or is being resized by a non-cooperating writer —
  // catch it with syscalls that *do* return errors: an mincore page-table
  // walk over the whole range, a pread of the final byte (EOF = the inode
  // lost that byte), and a size re-check on the same fd.
  {
    const long page_size = ::sysconf(_SC_PAGESIZE);
    const std::size_t pages =
        (file_bytes + static_cast<std::size_t>(page_size) - 1) /
        static_cast<std::size_t>(page_size);
    std::vector<unsigned char> resident(pages);
    if (::mincore(map, file_bytes, resident.data()) != 0) {
      throw StoreIoError("mincore", path, errno);
    }
    char last = 0;
    const ::ssize_t got = ::pread(mapped.fd_, &last, 1,
                                  static_cast<::off_t>(file_bytes - 1));
    if (got < 0) throw StoreIoError("pread", path, errno);
    if (got != 1) throw StoreIoError("pread", path, EIO);
    struct stat again{};
    if (::fstat(mapped.fd_, &again) != 0) {
      throw StoreIoError("fstat", path, errno);
    }
    if (static_cast<std::uint64_t>(again.st_size) != file_bytes) {
      throw StoreError("index open: '" + path +
                       "' was resized while being mapped (" +
                       std::to_string(file_bytes) + " -> " +
                       std::to_string(again.st_size) +
                       " bytes) — concurrent in-place writer?");
    }
  }

  const auto fail = [&](const std::string& what) -> void {
    throw StoreError("index open: '" + path + "': " + what);
  };

  Header header;
  std::memcpy(&header, map, sizeof(header));
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    fail("bad magic — not an SFC index file");
  }
  if (header.endian_tag != kEndianTag) {
    fail("endianness mismatch — file was written on an incompatible host");
  }
  if (header.version != kIndexFormatVersion) {
    fail("format version " + std::to_string(header.version) +
         " unsupported (this build reads version " +
         std::to_string(kIndexFormatVersion) + ")");
  }
  if (header.header_bytes != sizeof(Header)) {
    fail("header size " + std::to_string(header.header_bytes) +
         " != expected " + std::to_string(sizeof(Header)));
  }
  if (header.point_bytes != sizeof(Point)) {
    fail("point layout " + std::to_string(header.point_bytes) +
         " bytes != this build's " + std::to_string(sizeof(Point)));
  }
  if (header_digest(header) != header.header_checksum) {
    fail("header checksum mismatch — corrupt or truncated header");
  }
  if (header.block_rows == 0) fail("block_rows must be >= 1");
  if (header.curve_family[kFamilyBytes - 1] != '\0') {
    fail("curve family name is not NUL-terminated");
  }

  std::uint64_t sizes[kColumns];
  column_sizes(header.row_count, header.block_rows, sizes);
  for (std::size_t c = 0; c < kColumns; ++c) {
    const ColumnEntry& column = header.columns[c];
    if (column.bytes != sizes[c]) {
      fail("column " + std::to_string(c) + " holds " +
           std::to_string(column.bytes) + " bytes, expected " +
           std::to_string(sizes[c]) + " for " +
           std::to_string(header.row_count) + " rows");
    }
    if (column.offset % alignof(Point) != 0 ||
        column.offset % alignof(index_t) != 0) {
      fail("column " + std::to_string(c) + " offset " +
           std::to_string(column.offset) + " is misaligned");
    }
    if (column.offset > file_bytes || column.bytes > file_bytes - column.offset) {
      fail("column " + std::to_string(c) + " [" +
           std::to_string(column.offset) + ", +" +
           std::to_string(column.bytes) + ") exceeds the " +
           std::to_string(file_bytes) + "-byte file — truncated?");
    }
  }

  for (std::size_t c = 0; c < kColumns; ++c) {
    mapped.column_offset_[c] = header.columns[c].offset;
    mapped.column_bytes_[c] = header.columns[c].bytes;
    mapped.column_checksum_[c] = header.columns[c].checksum;
  }

  mapped.descriptor_.family = header.curve_family;
  mapped.descriptor_.dim = static_cast<int>(header.curve_dim);
  mapped.descriptor_.side = header.curve_side;
  mapped.descriptor_.seed = header.curve_seed;
  try {
    mapped.curve_ = make_curve(mapped.descriptor_);
  } catch (const CurveArgumentError& error) {
    fail(std::string("persisted curve descriptor rejected: ") + error.what());
  }

  const auto* base = static_cast<const unsigned char*>(map);
  const auto* keys = reinterpret_cast<const index_t*>(
      base + header.columns[kKeys].offset);
  const auto* ids = reinterpret_cast<const std::uint32_t*>(
      base + header.columns[kIds].offset);
  const auto* points = reinterpret_cast<const Point*>(
      base + header.columns[kPoints].offset);
  const auto* directory = reinterpret_cast<const index_t*>(
      base + header.columns[kDirectory].offset);
  const std::uint64_t rows = header.row_count;
  const std::uint64_t blocks = sizes[kDirectory] / sizeof(index_t);

  const double verify_start_us = trace_now_us();
  if (options.verify) {
    for (std::size_t c = 0; c < kColumns; ++c) {
      if (fnv1a64(base + header.columns[c].offset, header.columns[c].bytes) !=
          header.columns[c].checksum) {
        fail("column " + std::to_string(c) +
             " checksum mismatch — corrupt data");
      }
    }
    const index_t cells = mapped.curve_->universe().cell_count();
    for (std::uint64_t r = 0; r < rows; ++r) {
      if (keys[r] >= cells) {
        fail("row " + std::to_string(r) + " key " + std::to_string(keys[r]) +
             " outside the " + std::to_string(cells) + "-cell universe");
      }
      if (r > 0 && keys[r - 1] > keys[r]) {
        fail("key column not sorted at row " + std::to_string(r));
      }
    }
    for (std::uint64_t b = 0; b < blocks; ++b) {
      const std::uint64_t end =
          std::min<std::uint64_t>((b + 1) * header.block_rows, rows);
      if (directory[b] != keys[end - 1]) {
        fail("block directory entry " + std::to_string(b) +
             " disagrees with the key column");
      }
    }
    // Key<->point agreement: re-encode every stored point through the
    // reconstructed curve and require the stored key back.  This is the check
    // that ties the persisted curve identity to the data — a tampered
    // family/seed/universe (even with a dutifully recomputed checksum) cannot
    // pass it, so a validated file can never serve silently wrong answers.
    // Dimension and containment are checked first so index_of_batch only ever
    // sees in-universe cells.
    const Universe& u = mapped.curve_->universe();
    constexpr std::uint64_t kVerifyChunk = 4096;
    std::vector<index_t> recoded(std::min<std::uint64_t>(rows, kVerifyChunk));
    for (std::uint64_t at = 0; at < rows; at += kVerifyChunk) {
      const std::uint64_t n = std::min<std::uint64_t>(kVerifyChunk, rows - at);
      for (std::uint64_t i = 0; i < n; ++i) {
        const Point& p = points[at + i];
        if (p.dim() != u.dim()) {
          fail("row " + std::to_string(at + i) + " point dimension " +
               std::to_string(p.dim()) + " != curve dimension " +
               std::to_string(u.dim()));
        }
        if (!u.contains(p)) {
          fail("row " + std::to_string(at + i) +
               " point outside the curve universe");
        }
      }
      mapped.curve_->index_of_batch(
          std::span<const Point>(points + at, n),
          std::span<index_t>(recoded.data(), n));
      for (std::uint64_t i = 0; i < n; ++i) {
        if (recoded[i] != keys[at + i]) {
          fail("row " + std::to_string(at + i) + " key " +
               std::to_string(keys[at + i]) +
               " does not re-encode from its point (curve gives " +
               std::to_string(recoded[i]) +
               ") — data and curve descriptor disagree");
        }
      }
    }
  }

  mapped.view_ = IndexColumnsView(
      *mapped.curve_, header.block_rows, std::span<const index_t>(keys, rows),
      std::span<const std::uint32_t>(ids, rows),
      std::span<const Point>(points, rows),
      std::span<const index_t>(directory, blocks));
  if (obs_enabled()) {
    const double end_us = trace_now_us();
    StoreMetrics& metrics = store_metrics();
    metrics.opens.add(1);
    metrics.bytes_mapped.add(file_bytes);
    metrics.open_us.record_us(end_us - open_start_us);
    if (options.verify) {
      metrics.verify_us.record_us(end_us - verify_start_us);
    }
    TraceSpan span;
    span.name = "store_open";
    span.category = "store";
    span.start_us = open_start_us;
    span.dur_us = end_us - open_start_us;
    span.tid = trace_thread_id();
    span.add_arg("rows", rows);
    span.add_arg("bytes", file_bytes);
    span.add_arg("verified", options.verify ? std::uint64_t{1} : std::uint64_t{0});
    TraceRing::global().record(span);
  }
  return mapped;
}

std::uint32_t MappedIndex::verify_column_checksums() const {
  const auto* base = static_cast<const unsigned char*>(map_);
  std::uint32_t mask = 0;
  for (std::size_t c = 0; c < kColumns; ++c) {
    if (fnv1a64(base + column_offset_[c], column_bytes_[c]) !=
        column_checksum_[c]) {
      mask |= 1u << c;
    }
  }
  return mask;
}

MappedIndex::MappedIndex(MappedIndex&& other) noexcept
    : map_(std::exchange(other.map_, nullptr)),
      map_bytes_(std::exchange(other.map_bytes_, 0)),
      fd_(std::exchange(other.fd_, -1)),
      path_(std::move(other.path_)),
      curve_(std::move(other.curve_)),
      descriptor_(std::move(other.descriptor_)),
      view_(other.view_) {
  for (std::size_t c = 0; c < kColumns; ++c) {
    column_offset_[c] = other.column_offset_[c];
    column_bytes_[c] = other.column_bytes_[c];
    column_checksum_[c] = other.column_checksum_[c];
  }
}

MappedIndex& MappedIndex::operator=(MappedIndex&& other) noexcept {
  if (this != &other) {
    if (map_ != nullptr) ::munmap(map_, map_bytes_);
    if (fd_ >= 0) ::close(fd_);
    map_ = std::exchange(other.map_, nullptr);
    map_bytes_ = std::exchange(other.map_bytes_, 0);
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
    for (std::size_t c = 0; c < kColumns; ++c) {
      column_offset_[c] = other.column_offset_[c];
      column_bytes_[c] = other.column_bytes_[c];
      column_checksum_[c] = other.column_checksum_[c];
    }
    curve_ = std::move(other.curve_);
    descriptor_ = std::move(other.descriptor_);
    view_ = other.view_;
  }
  return *this;
}

MappedIndex::~MappedIndex() {
  if (map_ != nullptr) ::munmap(map_, map_bytes_);
  if (fd_ >= 0) ::close(fd_);  // releases the advisory lock
}

}  // namespace sfc
