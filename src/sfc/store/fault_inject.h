// Corruption fault injection for the on-disk index format.
//
// The robustness contract of sfc/store is: *no sequence of file bytes* makes
// MappedIndex::open crash, corrupt memory, or hand back an index that serves
// wrong answers — corruption is either rejected with a typed StoreError at
// open, or provably harmless (padding bytes).  This harness enforces that
// contract by construction: it draws seeded mutations (single-bit flips, byte
// stomps, truncations, and header-field stomps with the header checksum
// dutifully recomputed so the mutation reaches the deeper validators),
// applies each to a scratch copy of a valid `.sfcidx`, opens it with full
// verification, and classifies the outcome.  A mutated file that still opens
// is probed with reference queries: answers must be bit-identical to the
// pristine index's, or the campaign flags kWrongAnswer — the one failure mode
// checksums alone cannot rule out (a tampered curve descriptor with a fixed
// checksum used to be exactly such a hole).
//
// Mutations are applied in place and restored from the pristine image, so a
// 2000-iteration campaign over a 48 MB index costs megabytes of writes, not
// ~100 GB of file copies.  Every iteration's mutation derives from
// (seed, iteration) alone, so campaigns are deterministic and reproducible
// across thread counts, and a failing iteration can be replayed by index.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sfc/grid/box.h"
#include "sfc/grid/point.h"
#include "sfc/index/executor.h"
#include "sfc/rng/xoshiro256.h"
#include "sfc/store/index_store.h"

namespace sfc {

enum class FaultKind : std::uint8_t {
  kBitFlip = 0,     ///< flip one bit anywhere in the file
  kByteStomp,       ///< overwrite one byte with a random value
  kTruncate,        ///< cut the file to a shorter length
  kTruncateWhileMapped,  ///< truncate, then regrow to full size (zero tail):
                         ///< the byte image a live mapping observes when the
                         ///< file under it is truncated and re-extended —
                         ///< exercises the SIGBUS-hardened open path
  kHeaderField,     ///< stomp a header byte, then recompute the header
                    ///< checksum so validation reaches the semantic checks
  kFaultKinds       ///< count sentinel
};

const char* fault_kind_name(FaultKind kind);

/// One concrete mutation, fully determined by draw_fault_mutation(rng, size).
struct FaultMutation {
  FaultKind kind = FaultKind::kBitFlip;
  std::uint64_t offset = 0;       ///< byte offset (flip / stomp / header)
  std::uint8_t bit = 0;           ///< bit index for kBitFlip
  std::uint8_t value = 0;         ///< replacement byte for stomps
  std::uint64_t truncate_to = 0;  ///< new length for kTruncate

  std::string describe() const;
};

/// Draws one mutation over a `file_bytes`-long index file.  Kind weights are
/// roughly 40% bit flips, 15% byte stomps, 15% truncations, 15%
/// truncate-while-mapped, 15% header-field stomps; offsets are uniform over
/// the applicable region.
FaultMutation draw_fault_mutation(Xoshiro256& rng, std::uint64_t file_bytes);

enum class FaultOutcome : std::uint8_t {
  kRejected = 0,  ///< open threw a typed StoreError — the contract
  kBenign,        ///< opened AND every probe answer is bit-identical
  kWrongAnswer,   ///< opened but a probe answer differs — the forbidden case
  kWrongError,    ///< a non-StoreError escaped open, or a probe threw
  kFaultOutcomes  ///< count sentinel
};

const char* fault_outcome_name(FaultOutcome outcome);

/// Applies mutations to a scratch copy of one pristine index file and
/// classifies each outcome.  Not thread-safe; run_fault_campaign gives each
/// worker thread its own harness over its own scratch file.
class FaultHarness {
 public:
  /// `pristine` is the byte image of a valid index file (shared, read-only
  /// across harnesses); it is copied to `scratch_path` (created/overwritten).
  /// `probes` range + `probes` kNN reference queries are drawn from
  /// `probe_seed` inside the pristine index's universe and answered once
  /// against the pristine index; throws StoreError if the pristine image
  /// itself does not validate.
  FaultHarness(std::shared_ptr<const std::vector<std::uint8_t>> pristine,
               std::string scratch_path, std::uint32_t probes,
               std::uint64_t probe_seed);
  ~FaultHarness();

  FaultHarness(const FaultHarness&) = delete;
  FaultHarness& operator=(const FaultHarness&) = delete;

  /// Applies `mutation` to the scratch file, opens + probes it, restores the
  /// scratch file to pristine bytes, and returns the classification.
  FaultOutcome check(const FaultMutation& mutation);

  std::uint64_t file_bytes() const { return pristine_->size(); }

 private:
  void apply(const FaultMutation& mutation);
  void restore(const FaultMutation& mutation);
  FaultOutcome classify();
  void write_at(std::uint64_t offset, const void* data, std::uint64_t bytes);

  std::shared_ptr<const std::vector<std::uint8_t>> pristine_;
  std::string scratch_path_;
  int fd_ = -1;

  std::vector<Box> probe_boxes_;
  std::vector<Point> probe_points_;
  std::uint32_t probe_k_ = 4;
  std::vector<RangeQueryResult> reference_ranges_;
  std::vector<KnnQueryResult> reference_knn_;
};

struct FaultCampaignOptions {
  std::uint64_t iterations = 2000;
  std::uint64_t seed = 1;
  /// Worker threads (0 = hardware concurrency); each gets its own scratch
  /// file.  Outcome totals are independent of the thread count.
  std::uint32_t threads = 0;
  /// Reference queries of each kind per harness.
  std::uint32_t probes = 8;
  /// Directory for scratch copies; empty = alongside the input file.
  std::string scratch_dir;
};

struct FaultCampaignReport {
  std::uint64_t iterations = 0;
  std::array<std::uint64_t, static_cast<std::size_t>(FaultKind::kFaultKinds)>
      by_kind{};
  std::uint64_t rejected = 0;
  std::uint64_t benign = 0;
  std::uint64_t wrong_answer = 0;
  std::uint64_t wrong_error = 0;
  /// Iteration indices (into the campaign) of every non-clean outcome, for
  /// replay; capped at 32 entries.
  std::vector<std::uint64_t> failing_iterations;

  /// The robustness contract held: nothing opened wrong and nothing escaped
  /// with an untyped error.
  bool clean() const { return wrong_answer == 0 && wrong_error == 0; }
};

/// Runs a seeded corruption campaign against the index file at `path`.
/// Deterministic in (path contents, iterations, seed, probes) — thread count
/// only changes wall clock.  Throws StoreError if `path` itself fails to
/// open/validate, and StoreIoError if scratch files cannot be created.
FaultCampaignReport run_fault_campaign(const std::string& path,
                                       const FaultCampaignOptions& options);

}  // namespace sfc
