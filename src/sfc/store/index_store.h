// Persistent on-disk index storage: versioned, checksummed, mmap-served.
//
// The north-star serving story is "build once, serve many processes": a
// PointIndex's columns are already flat arrays, so the on-disk format is a
// fixed header (magic, version, curve descriptor, universe, row count,
// column table with per-column FNV-1a checksums) followed by the four
// columns, each 64-byte aligned — see docs/index_format.md for the byte-level
// layout.  write_index_file streams a built index out; MappedIndex mmaps a
// file read-only, validates everything (magic, version, endianness, header
// checksum, column bounds, per-column checksums, key-order and directory
// consistency), reconstructs the exact curve from the persisted
// CurveDescriptor, and exposes the same IndexColumnsView the in-memory index
// exposes — queries through either storage are bit-identical by
// construction, because the engines only ever see the view.
//
// The format is *not* an interchange format: it fixes the native
// little-endian column layout (including Point's in-memory layout) so that
// serving can map columns without any translation, and it refuses to open
// files whose header disagrees with the running build's layout constants.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "sfc/common/error.h"
#include "sfc/common/types.h"
#include "sfc/curves/curve_factory.h"
#include "sfc/index/columns_view.h"
#include "sfc/index/point_index.h"

namespace sfc {

/// Thrown on any index-file problem: unwritable path, short/truncated file,
/// bad magic or version, checksum mismatch, column table out of bounds, a
/// descriptor naming an unknown curve, or a universe mismatch.  Derives from
/// sfc::Error so serving drivers recover at the tool boundary.
class StoreError : public Error {
 public:
  explicit StoreError(const std::string& what) : Error(what) {}
};

/// A StoreError raised by a failing syscall on the write or open path (open,
/// write, fsync, rename, flock, mmap, mincore, pread, ...), carrying the
/// syscall name and errno so callers can distinguish a full disk from a
/// missing directory (or a concurrently-truncated file from a corrupt one)
/// programmatically.
class StoreIoError : public StoreError {
 public:
  StoreIoError(const std::string& sys_call, const std::string& path,
               int errno_value);

  /// The syscall that failed ("open", "write", "fsync", "close", "rename").
  const std::string& sys_call() const { return sys_call_; }
  int errno_value() const { return errno_value_; }

 private:
  std::string sys_call_;
  int errno_value_;
};

/// Current on-disk format version (header field `version`).
inline constexpr std::uint32_t kIndexFormatVersion = 1;

/// 64-bit FNV-1a over a byte range — the format's checksum primitive.
/// Chainable: pass the previous digest as `seed` to extend.
std::uint64_t fnv1a64(const void* data, std::size_t bytes,
                      std::uint64_t seed = 0xcbf29ce484222325ULL);

/// Serializes `index` to `path` (overwriting), persisting `descriptor` as
/// the curve identity.  The descriptor's universe must match the index's
/// curve (throws StoreError otherwise); it is what MappedIndex::open
/// reconstructs the curve from, so it must name the curve the index was
/// built with — "hilbert d=2 side=1024 seed=1" etc.
///
/// Crash-safe: the file is streamed to `path + ".tmp"`, fsync'd, and
/// atomically renamed over `path` (then the parent directory is fsync'd), so
/// readers only ever observe either the previous complete file or the new
/// complete file — never a torn write.  A crash mid-write leaves at worst a
/// stale `.tmp` alongside an intact `path`.  Every failing syscall raises a
/// typed StoreIoError (and the temp file is unlinked best-effort).
void write_index_file(const std::string& path, const PointIndex& index,
                      const CurveDescriptor& descriptor);

struct MappedIndexOptions {
  /// Verify per-column checksums, key-column sortedness, block-directory
  /// consistency, and key<->point agreement (re-encoding every stored point
  /// through the reconstructed curve must reproduce its stored key — this is
  /// what ties the persisted curve identity to the data, so a tampered
  /// family/seed/universe cannot serve silently wrong answers) at open, one
  /// streaming pass over the file.  Serving processes that reopen a file
  /// they just validated may switch this off; header and bounds validation
  /// always runs.
  bool verify = true;
  /// Hold an advisory shared lock (flock LOCK_SH) on the file for the
  /// lifetime of the mapping.  Cooperating writers must never truncate or
  /// rewrite a read-locked path in place (write_index_file never does — it
  /// renames a complete temp file over the path, which leaves existing
  /// mappings on the old inode intact); a process that *would* mutate in
  /// place can take LOCK_EX and will see the readers.  Open fails with a
  /// typed StoreIoError("flock") if the file is exclusively locked.
  bool lock = true;
};

/// A read-only, mmap-backed index.  Owns the mapping and the curve
/// reconstructed from the persisted descriptor; exposes the storage-agnostic
/// IndexColumnsView that RangeScanEngine / KnnEngine / the executors and the
/// serve front end query.  Movable, not copyable; views are valid while the
/// MappedIndex is alive and unmoved.
class MappedIndex {
 public:
  /// Maps and validates `path`; throws StoreError on any mismatch.
  ///
  /// The open is SIGBUS-hardened: after mmap the mapping is pre-faulted (an
  /// mincore page-table walk plus a pread of the final byte) and the file
  /// size is re-checked, so a file replaced or truncated between the first
  /// stat and validation yields a typed StoreIoError instead of a crash when
  /// validation reads the columns.  With options.lock (the default) the fd
  /// stays open holding flock LOCK_SH until the mapping is destroyed, so
  /// cooperating writers can detect live readers.
  static MappedIndex open(const std::string& path,
                          const MappedIndexOptions& options = {});

  MappedIndex(MappedIndex&& other) noexcept;
  MappedIndex& operator=(MappedIndex&& other) noexcept;
  MappedIndex(const MappedIndex&) = delete;
  MappedIndex& operator=(const MappedIndex&) = delete;
  ~MappedIndex();

  /// The persisted curve identity the index was opened with.
  const CurveDescriptor& descriptor() const { return descriptor_; }
  /// The reconstructed curve (owned by this object).
  const SpaceFillingCurve& curve() const { return *curve_; }

  std::uint64_t row_count() const { return view_.row_count(); }
  std::uint32_t block_rows() const { return view_.block_rows(); }
  std::uint64_t file_bytes() const { return map_bytes_; }

  /// The columns view over the mapped file — what engines query.
  const IndexColumnsView& view() const { return view_; }
  operator IndexColumnsView() const { return view_; }  // NOLINT

  /// The path this mapping was opened from.
  const std::string& path() const { return path_; }

  /// Re-runs the per-column FNV-1a checksums against the header's recorded
  /// values and returns a bitmask of mismatching columns (bit 0 keys, bit 1
  /// ids, bit 2 points, bit 3 directory; 0 = all clean).  This is the
  /// localization primitive degraded-mode open uses to decide which shards to
  /// mark dead instead of refusing the whole file.
  std::uint32_t verify_column_checksums() const;

  /// Byte offset / length of column `c` (0 keys, 1 ids, 2 points,
  /// 3 directory) within the mapped file, as recorded in the header.
  std::uint64_t column_offset(int c) const { return column_offset_[c]; }
  std::uint64_t column_bytes(int c) const { return column_bytes_[c]; }

 private:
  MappedIndex() = default;

  void* map_ = nullptr;
  std::size_t map_bytes_ = 0;
  int fd_ = -1;  ///< kept open for the mapping's lifetime (holds the flock)
  std::string path_;
  std::uint64_t column_offset_[4] = {0, 0, 0, 0};
  std::uint64_t column_bytes_[4] = {0, 0, 0, 0};
  std::uint64_t column_checksum_[4] = {0, 0, 0, 0};
  CurvePtr curve_;
  CurveDescriptor descriptor_;
  IndexColumnsView view_;
};

/// Test-only crash injection for the write path.  When `write_kill_countdown`
/// is >= 0, every write-path syscall write_index_file is about to issue
/// decrements it first; the call that drives it below zero terminates the
/// process immediately with _exit(kKillExitCode) — simulating a crash at an
/// exact, seedable syscall boundary.  Forked chaos/crash tests set the
/// countdown in the child, call write_index_file, and let the parent assert
/// the target path still opens clean (old or new complete content, never
/// torn).  Default -1 = disabled; production code never touches this.
namespace store_testing {
extern std::atomic<int> write_kill_countdown;
inline constexpr int kKillExitCode = 42;
}  // namespace store_testing

}  // namespace sfc
