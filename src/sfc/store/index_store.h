// Persistent on-disk index storage: versioned, checksummed, mmap-served.
//
// The north-star serving story is "build once, serve many processes": a
// PointIndex's columns are already flat arrays, so the on-disk format is a
// fixed header (magic, version, curve descriptor, universe, row count,
// column table with per-column FNV-1a checksums) followed by the four
// columns, each 64-byte aligned — see docs/index_format.md for the byte-level
// layout.  write_index_file streams a built index out; MappedIndex mmaps a
// file read-only, validates everything (magic, version, endianness, header
// checksum, column bounds, per-column checksums, key-order and directory
// consistency), reconstructs the exact curve from the persisted
// CurveDescriptor, and exposes the same IndexColumnsView the in-memory index
// exposes — queries through either storage are bit-identical by
// construction, because the engines only ever see the view.
//
// The format is *not* an interchange format: it fixes the native
// little-endian column layout (including Point's in-memory layout) so that
// serving can map columns without any translation, and it refuses to open
// files whose header disagrees with the running build's layout constants.
#pragma once

#include <cstdint>
#include <string>

#include "sfc/common/error.h"
#include "sfc/common/types.h"
#include "sfc/curves/curve_factory.h"
#include "sfc/index/columns_view.h"
#include "sfc/index/point_index.h"

namespace sfc {

/// Thrown on any index-file problem: unwritable path, short/truncated file,
/// bad magic or version, checksum mismatch, column table out of bounds, a
/// descriptor naming an unknown curve, or a universe mismatch.  Derives from
/// sfc::Error so serving drivers recover at the tool boundary.
class StoreError : public Error {
 public:
  explicit StoreError(const std::string& what) : Error(what) {}
};

/// A StoreError raised by a failing syscall on the write path (open, write,
/// fsync, rename, ...), carrying the syscall name and errno so callers can
/// distinguish a full disk from a missing directory programmatically.
class StoreIoError : public StoreError {
 public:
  StoreIoError(const std::string& sys_call, const std::string& path,
               int errno_value);

  /// The syscall that failed ("open", "write", "fsync", "close", "rename").
  const std::string& sys_call() const { return sys_call_; }
  int errno_value() const { return errno_value_; }

 private:
  std::string sys_call_;
  int errno_value_;
};

/// Current on-disk format version (header field `version`).
inline constexpr std::uint32_t kIndexFormatVersion = 1;

/// 64-bit FNV-1a over a byte range — the format's checksum primitive.
/// Chainable: pass the previous digest as `seed` to extend.
std::uint64_t fnv1a64(const void* data, std::size_t bytes,
                      std::uint64_t seed = 0xcbf29ce484222325ULL);

/// Serializes `index` to `path` (overwriting), persisting `descriptor` as
/// the curve identity.  The descriptor's universe must match the index's
/// curve (throws StoreError otherwise); it is what MappedIndex::open
/// reconstructs the curve from, so it must name the curve the index was
/// built with — "hilbert d=2 side=1024 seed=1" etc.
///
/// Crash-safe: the file is streamed to `path + ".tmp"`, fsync'd, and
/// atomically renamed over `path` (then the parent directory is fsync'd), so
/// readers only ever observe either the previous complete file or the new
/// complete file — never a torn write.  A crash mid-write leaves at worst a
/// stale `.tmp` alongside an intact `path`.  Every failing syscall raises a
/// typed StoreIoError (and the temp file is unlinked best-effort).
void write_index_file(const std::string& path, const PointIndex& index,
                      const CurveDescriptor& descriptor);

struct MappedIndexOptions {
  /// Verify per-column checksums, key-column sortedness, block-directory
  /// consistency, and key<->point agreement (re-encoding every stored point
  /// through the reconstructed curve must reproduce its stored key — this is
  /// what ties the persisted curve identity to the data, so a tampered
  /// family/seed/universe cannot serve silently wrong answers) at open, one
  /// streaming pass over the file.  Serving processes that reopen a file
  /// they just validated may switch this off; header and bounds validation
  /// always runs.
  bool verify = true;
};

/// A read-only, mmap-backed index.  Owns the mapping and the curve
/// reconstructed from the persisted descriptor; exposes the storage-agnostic
/// IndexColumnsView that RangeScanEngine / KnnEngine / the executors and the
/// serve front end query.  Movable, not copyable; views are valid while the
/// MappedIndex is alive and unmoved.
class MappedIndex {
 public:
  /// Maps and validates `path`; throws StoreError on any mismatch.
  static MappedIndex open(const std::string& path,
                          const MappedIndexOptions& options = {});

  MappedIndex(MappedIndex&& other) noexcept;
  MappedIndex& operator=(MappedIndex&& other) noexcept;
  MappedIndex(const MappedIndex&) = delete;
  MappedIndex& operator=(const MappedIndex&) = delete;
  ~MappedIndex();

  /// The persisted curve identity the index was opened with.
  const CurveDescriptor& descriptor() const { return descriptor_; }
  /// The reconstructed curve (owned by this object).
  const SpaceFillingCurve& curve() const { return *curve_; }

  std::uint64_t row_count() const { return view_.row_count(); }
  std::uint32_t block_rows() const { return view_.block_rows(); }
  std::uint64_t file_bytes() const { return map_bytes_; }

  /// The columns view over the mapped file — what engines query.
  const IndexColumnsView& view() const { return view_; }
  operator IndexColumnsView() const { return view_; }  // NOLINT

 private:
  MappedIndex() = default;

  void* map_ = nullptr;
  std::size_t map_bytes_ = 0;
  CurvePtr curve_;
  CurveDescriptor descriptor_;
  IndexColumnsView view_;
};

}  // namespace sfc
