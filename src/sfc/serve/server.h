// The concurrent serving front end: batching admission over a sharded index.
//
// Serving clients arrive one query at a time, but the engines are at their
// best answering batches (engine reuse, chunked parallelism, shard fan-out).
// IndexServer bridges the two with a classic batching admission queue: client
// threads enqueue a query and block on a future; a single dispatcher thread
// collects arrivals until the batch is full (`max_batch`) or the oldest
// waiting query has aged out (`batch_window_us`), then executes the whole
// batch through the sharded run_range_queries / run_knn_queries executors and
// fulfills every future.  Under load, batches fill and throughput approaches
// the executors' batch rate; when idle, a lone query waits at most one window.
//
// The queue is a real admission controller, not a buffer: it is bounded
// (`max_queue`, ServerOverloadError beyond it — backpressure instead of
// unbounded latency), queries carry deadlines (`deadline_us`; a query whose
// deadline passes while queued fails fast with ServerTimeoutError at batch
// formation instead of occupying a slot), submissions after stop() fail with
// ServerStoppedError, and stop() drains: every query admitted before stop()
// is answered before stop() returns.  ServerHealth exposes the counters and
// the dispatch-latency histogram an operator would watch.
//
// Answers are the engines' answers — batching and sharding change latency and
// throughput, never results (the serve tests assert equality against direct
// engine calls under concurrent clients).
#pragma once

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "sfc/index/executor.h"
#include "sfc/serve/serve_error.h"
#include "sfc/serve/sharded_index.h"
#include "sfc/serve/trace.h"

namespace sfc {

struct ServerOptions {
  /// log2 of the shard count handed to ShardedIndex (clamped to key width).
  int shard_bits = 0;
  /// Executor pool for batch execution; nullptr = ThreadPool::shared().
  ThreadPool* pool = nullptr;
  /// Executor chunk grain (queries per engine chunk).
  std::uint64_t grain = 16;
  /// Dispatch as soon as this many queries are queued.
  std::uint32_t max_batch = 64;
  /// ... or once the oldest queued query has waited this long.
  std::uint32_t batch_window_us = 200;
  /// Admission-queue bound: a submission arriving while the queue already
  /// holds this many queries fails fast with ServerOverloadError
  /// (backpressure).  0 = unbounded (the pre-robustness behavior).
  std::uint32_t max_queue = 1024;
  /// Default per-query deadline in microseconds (0 = none).  A query whose
  /// deadline passes while it is still queued is failed with
  /// ServerTimeoutError at batch formation.  Deadlines shorter than
  /// batch_window_us cannot be met by a batching server — the batch closes
  /// early at the earliest queued deadline, but the query has already aged
  /// out by then; give deadlines headroom above the window.
  std::uint64_t deadline_us = 0;
};

/// Log-scale latency histogram: bucket i counts samples whose microsecond
/// value, rounded up, has bit width i — roughly (2^(i-1), 2^i] us, with
/// bucket 0 holding only zero/negative samples and bucket 31 saturating.
/// Fixed size, lock-friendly, and good to ~2x resolution across us..minutes —
/// the operator-dashboard shape, not a benchmark instrument.
struct LatencyHistogram {
  std::array<std::uint64_t, 32> buckets{};
  std::uint64_t count = 0;

  void record_us(double us);
  /// Nearest-rank percentile, reported as the upper edge (2^i us) of the
  /// bucket holding that rank; 0 when empty.
  double percentile_us(double fraction) const;
};

struct ServerStats {
  std::uint64_t queries_admitted = 0;
  std::uint64_t range_queries = 0;
  std::uint64_t knn_queries = 0;
  std::uint64_t batches_dispatched = 0;
  std::uint64_t max_batch_rows = 0;  ///< largest batch dispatched so far
};

/// Operator-facing snapshot of the admission controller (taken atomically
/// under the queue lock).  accepted = admitted into the queue; executed =
/// answered through a batch; accepted == executed + timed_out once drained.
/// The failure counters are bumped before the client sees the typed error
/// (rejected_overload/rejected_stopped before admit() throws, timed_out
/// before the expired promises are failed), so a caller that just caught a
/// ServeError will find itself counted.  executed and the latency histogram
/// are recorded by the dispatcher after it fulfills a batch's futures, so
/// they may momentarily trail a query whose answer just arrived; stop()
/// (which drains and joins) makes them final.
struct ServerHealth {
  std::uint64_t queue_depth = 0;       ///< queries waiting right now
  bool stopped = false;                ///< stop() has begun or finished
  std::uint64_t accepted = 0;          ///< admitted into the queue
  std::uint64_t rejected_overload = 0; ///< failed fast: queue at max_queue
  std::uint64_t rejected_stopped = 0;  ///< failed fast: submitted after stop()
  std::uint64_t timed_out = 0;         ///< dropped at batch formation: deadline
  std::uint64_t executed = 0;          ///< answered (value or engine error)
  std::uint64_t batches_dispatched = 0;
  /// Enqueue-to-fulfillment latency of every executed query.
  LatencyHistogram dispatch_latency;
};

/// A read-only query server over any index storage.  The storage behind the
/// view must outlive the server.  Thread-safe: any number of client threads
/// may call range_query / knn_query concurrently.
class IndexServer {
 public:
  explicit IndexServer(IndexColumnsView view, const ServerOptions& options = {});
  ~IndexServer();

  IndexServer(const IndexServer&) = delete;
  IndexServer& operator=(const IndexServer&) = delete;

  /// Blocking point queries: enqueue, wait for the dispatcher's batch, return
  /// the engine's answer.  Engine errors (e.g. out-of-universe arguments)
  /// rethrow on the calling thread.  Admission failures are typed: queue full
  /// = ServerOverloadError, deadline expired in queue = ServerTimeoutError,
  /// submitted after stop() = ServerStoppedError.  The two-argument forms
  /// override the server's default deadline for this query (0 = no deadline).
  RangeQueryResult range_query(const Box& box);
  RangeQueryResult range_query(const Box& box, std::uint64_t deadline_us);
  KnnQueryResult knn_query(const Point& query, std::uint32_t k);
  KnnQueryResult knn_query(const Point& query, std::uint32_t k,
                           std::uint64_t deadline_us);

  /// Stops admission and drains: every already-admitted query is answered
  /// (or timed out by its own deadline) before this returns.  Called by the
  /// destructor; queries submitted after stop() throw ServerStoppedError.
  /// Idempotent and safe to race with concurrent clients.
  void stop();

  const ShardedIndex& index() const { return index_; }
  const ServerOptions& options() const { return options_; }
  /// Snapshot of the admission counters (taken under the queue lock).
  ServerStats stats() const;
  /// Snapshot of the robustness counters + dispatch-latency histogram.
  ServerHealth health() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    enum class Kind : std::uint8_t { kRange, kKnn } kind;
    Box box;
    Point point;
    std::uint32_t k = 0;
    Clock::time_point enqueued;
    Clock::time_point deadline;  ///< meaningful iff deadline_us > 0
    std::uint64_t deadline_us = 0;
    std::promise<RangeQueryResult> range_promise;
    std::promise<KnnQueryResult> knn_promise;

    explicit Pending(const Box& b)
        : kind(Kind::kRange), box(b) {}
    Pending(const Point& p, std::uint32_t kk)
        : kind(Kind::kKnn), box(Point::zero(1), Point::zero(1)), point(p), k(kk) {}
  };

  /// Shared admission path: overload/stopped checks + deadline stamping.
  /// Returns the slot just enqueued (under mutex_, which the caller holds).
  Pending& admit(Pending&& pending, std::uint64_t deadline_us);

  void dispatcher_loop();
  /// Fails batch entries whose deadline has passed; keeps the live ones.
  void expire_batch(std::vector<Pending>& batch, Clock::time_point now);
  void execute_batch(std::vector<Pending>& batch);

  ShardedIndex index_;
  ServerOptions options_;

  mutable std::mutex mutex_;
  std::mutex join_mutex_;  ///< serializes the dispatcher join in stop()
  std::condition_variable arrivals_;
  std::vector<Pending> pending_;
  bool stopping_ = false;
  ServerStats stats_;
  ServerHealth health_;  ///< queue_depth/stopped filled at snapshot time
  std::thread dispatcher_;
};

/// Trace replay: `clients` threads each replay a strided slice of the trace
/// through blocking server calls, measuring per-query latency end to end
/// (admission wait + batch execution + any retry backoff included).
///
/// The client policy is retry-with-exponential-backoff: an attempt that
/// fails with ServerOverloadError or ServerTimeoutError sleeps
/// min(backoff_base_us << attempt, backoff_max_us) and retries, up to
/// max_retries re-submissions; a query still failing after its last retry is
/// tallied as rejected (overload) or timed_out (deadline) — shed load is
/// *measured*, never silently dropped.  Any other error (engine errors,
/// ServerStoppedError) aborts the replay and rethrows: those are bugs or
/// misuse, not load shedding.
struct ReplayOptions {
  std::uint32_t clients = 1;
  /// Re-submissions allowed per query after the initial attempt.
  std::uint32_t max_retries = 0;
  /// First retry backoff; doubles per attempt (exponential).
  std::uint32_t backoff_base_us = 200;
  /// Backoff ceiling.
  std::uint32_t backoff_max_us = 50000;
  /// Per-query deadline passed with every submission (0 = use the server's
  /// default deadline).
  std::uint64_t deadline_us = 0;
};

struct ReplayReport {
  std::uint32_t clients = 0;
  std::uint64_t queries = 0;  ///< offered load: every query in the trace
  std::uint64_t range_queries = 0;
  std::uint64_t knn_queries = 0;
  /// Outcome accounting: accepted + rejected + timed_out == queries.
  std::uint64_t accepted = 0;   ///< answered (possibly after retries)
  std::uint64_t rejected = 0;   ///< shed: still overloaded after max_retries
  std::uint64_t timed_out = 0;  ///< shed: still expiring after max_retries
  std::uint64_t retries = 0;    ///< total re-submissions across all queries
  /// Result-volume checksums so replays can assert they did real work.
  std::uint64_t rows_returned = 0;
  std::uint64_t neighbors_returned = 0;
  double wall_seconds = 0.0;
  /// Goodput: accepted queries per second of wall clock.
  double qps = 0.0;
  /// Latency percentiles over *accepted* queries, microseconds
  /// (nearest-rank, end to end from first attempt to answer).
  double p50_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
};

ReplayReport replay_trace(IndexServer& server, const QueryTrace& trace,
                          const ReplayOptions& options = {});

}  // namespace sfc
