// The concurrent serving front end: batching admission over a sharded index.
//
// Serving clients arrive one query at a time, but the engines are at their
// best answering batches (engine reuse, chunked parallelism, shard fan-out).
// IndexServer bridges the two with a classic batching admission queue: client
// threads enqueue a query and block on a future; a single dispatcher thread
// collects arrivals until the batch is full (`max_batch`) or the oldest
// waiting query has aged out (`batch_window_us`), then executes the whole
// batch through the sharded run_range_queries / run_knn_queries executors and
// fulfills every future.  Under load, batches fill and throughput approaches
// the executors' batch rate; when idle, a lone query waits at most one window.
//
// The queue is a real admission controller, not a buffer: it is bounded
// (`max_queue`, ServerOverloadError beyond it — backpressure instead of
// unbounded latency), queries carry deadlines (`deadline_us`; a query whose
// deadline passes while queued fails fast with ServerTimeoutError at batch
// formation instead of occupying a slot), submissions after stop() fail with
// ServerStoppedError, and stop() drains: every query admitted before stop()
// is answered before stop() returns.  ServerHealth exposes the counters and
// the queue-wait / execute latency histograms an operator would watch.
//
// The index behind the server is generation-managed (sfc/serve/generation):
// each batch pins the active IndexGeneration for the duration of its
// execution, and reload(path) validates a replacement file fully before
// swapping it in at a batch boundary — queries in flight during a reload
// finish against the generation they started on, the old mapping unmaps when
// its last batch completes, and a failed reload throws ReloadError while the
// old generation keeps serving.  A degraded generation (allow_degraded)
// answers queries that overlap dead shards with typed PartialResultErrors.
//
// Answers are the engines' answers — batching, sharding, and generation swaps
// change latency and throughput, never results (the serve tests assert
// equality against direct engine calls under concurrent clients and reloads).
#pragma once

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sfc/index/executor.h"
#include "sfc/obs/histogram.h"
#include "sfc/serve/generation.h"
#include "sfc/serve/serve_error.h"
#include "sfc/serve/sharded_index.h"
#include "sfc/serve/trace.h"

namespace sfc {

struct ServerOptions {
  /// log2 of the shard count handed to ShardedIndex (clamped to key width).
  int shard_bits = 0;
  /// Executor pool for batch execution; nullptr = ThreadPool::shared().
  ThreadPool* pool = nullptr;
  /// Executor chunk grain (queries per engine chunk).
  std::uint64_t grain = 16;
  /// Dispatch as soon as this many queries are queued.
  std::uint32_t max_batch = 64;
  /// ... or once the oldest queued query has waited this long.
  std::uint32_t batch_window_us = 200;
  /// Admission-queue bound: a submission arriving while the queue already
  /// holds this many queries fails fast with ServerOverloadError
  /// (backpressure).  0 = unbounded (the pre-robustness behavior).
  std::uint32_t max_queue = 1024;
  /// Default per-query deadline in microseconds (0 = none).  A query whose
  /// deadline passes while it is still queued is failed with
  /// ServerTimeoutError at batch formation.  Deadlines shorter than
  /// batch_window_us cannot be met by a batching server — the batch closes
  /// early at the earliest queued deadline, but the query has already aged
  /// out by then; give deadlines headroom above the window.
  std::uint64_t deadline_us = 0;
  /// Open files degraded when per-shard verification can localize corruption
  /// (dead shards + PartialResultError) instead of failing the open/reload.
  /// Applies to the path constructor and every reload().
  bool allow_degraded = false;
  /// Every N dispatched batches the dispatcher logs a compact one-line
  /// metrics snapshot (counters + latency p99s) to stderr.  0 = off.
  std::uint32_t metrics_log_every_batches = 0;
};

struct ServerStats {
  std::uint64_t queries_admitted = 0;
  std::uint64_t range_queries = 0;
  std::uint64_t knn_queries = 0;
  std::uint64_t batches_dispatched = 0;
  std::uint64_t max_batch_rows = 0;  ///< largest batch dispatched so far
};

/// Operator-facing snapshot of the admission controller (taken atomically
/// under the queue lock).  accepted = admitted into the queue; executed =
/// answered through a batch; accepted == executed + timed_out once drained.
/// The failure counters are bumped before the client sees the typed error
/// (rejected_overload/rejected_stopped before admit() throws, timed_out
/// before the expired promises are failed), so a caller that just caught a
/// ServeError will find itself counted.  executed and the latency histogram
/// are recorded by the dispatcher after it fulfills a batch's futures, so
/// they may momentarily trail a query whose answer just arrived; stop()
/// (which drains and joins) makes them final.
struct ServerHealth {
  std::uint64_t queue_depth = 0;       ///< queries waiting right now
  bool stopped = false;                ///< stop() has begun or finished
  std::uint64_t accepted = 0;          ///< admitted into the queue
  std::uint64_t rejected_overload = 0; ///< failed fast: queue at max_queue
  std::uint64_t rejected_stopped = 0;  ///< failed fast: submitted after stop()
  std::uint64_t timed_out = 0;         ///< dropped at batch formation: deadline
  std::uint64_t executed = 0;          ///< answered (value or engine error)
  std::uint64_t batches_dispatched = 0;
  /// Dispatch latency split at the batch boundary, so an overload's home is
  /// visible: queue_wait (enqueue -> batch formation) grows when batches form
  /// too slowly or the queue runs deep; execute (batch formation -> answer
  /// delivered) grows when the engines are the bottleneck.  Both record every
  /// executed query; end-to-end latency is their sum per query.
  LatencyHistogram queue_wait_latency;
  LatencyHistogram execute_latency;
  /// Generation surface: the active epoch, lifetime reload counters, and the
  /// active generation's per-shard liveness (all-1 unless degraded).
  std::uint64_t epoch = 0;
  std::uint64_t reloads = 0;
  std::uint64_t failed_reloads = 0;
  std::uint64_t shard_count = 0;
  std::uint64_t dead_shards = 0;
  std::vector<std::uint8_t> shard_alive;
};

/// An answer stamped with the generation that produced it — what the chaos
/// checker needs to verify bit-identity against the right dataset.
struct ServedRange {
  RangeQueryResult result;
  std::uint64_t epoch = 0;
};

struct ServedKnn {
  KnnQueryResult result;
  std::uint64_t epoch = 0;
};

/// A read-only query server over generation-managed index storage.  Built
/// either over caller-owned storage (the view constructor; the storage must
/// outlive the server) or over an index file (the path constructor; the file
/// is mapped, validated, and owned by the active generation, and reload()
/// can replace it at runtime).  Thread-safe: any number of client threads may
/// call range_query / knn_query concurrently, including across reloads.
class IndexServer {
 public:
  explicit IndexServer(IndexColumnsView view, const ServerOptions& options = {});
  /// Opens `path` as generation 0 (throws StoreError if it does not
  /// validate; with options.allow_degraded, localizable corruption opens
  /// degraded instead).
  explicit IndexServer(const std::string& path,
                       const ServerOptions& options = {});
  ~IndexServer();

  IndexServer(const IndexServer&) = delete;
  IndexServer& operator=(const IndexServer&) = delete;

  /// Blocking point queries: enqueue, wait for the dispatcher's batch, return
  /// the engine's answer.  Engine errors (e.g. out-of-universe arguments)
  /// rethrow on the calling thread.  Admission failures are typed: queue full
  /// = ServerOverloadError, deadline expired in queue = ServerTimeoutError,
  /// submitted after stop() = ServerStoppedError; in a degraded generation a
  /// query overlapping a dead shard throws PartialResultError (carrying the
  /// live-shard partial answer).  The two-argument forms override the
  /// server's default deadline for this query (0 = no deadline).
  RangeQueryResult range_query(const Box& box);
  RangeQueryResult range_query(const Box& box, std::uint64_t deadline_us);
  KnnQueryResult knn_query(const Point& query, std::uint32_t k);
  KnnQueryResult knn_query(const Point& query, std::uint32_t k,
                           std::uint64_t deadline_us);

  /// Same queries, with the answer stamped with the epoch of the generation
  /// that served it — the primitive a correctness checker needs to compare
  /// an answer against the dataset it was actually served from when reloads
  /// are racing the queries.
  ServedRange range_query_served(const Box& box);
  ServedRange range_query_served(const Box& box, std::uint64_t deadline_us);
  ServedKnn knn_query_served(const Point& query, std::uint32_t k);
  ServedKnn knn_query_served(const Point& query, std::uint32_t k,
                             std::uint64_t deadline_us);

  /// Validates `path` fully, then atomically swaps it in as the new active
  /// generation at the next batch boundary; returns the new epoch.  Batches
  /// in flight finish on the generation they pinned; the old mapping unmaps
  /// when its last pin drops.  Throws ReloadError on any validation failure
  /// — the previous generation is untouched and keeps serving.  Safe to call
  /// concurrently with queries and other reloads.
  std::uint64_t reload(const std::string& path);

  /// Stops admission and drains: every already-admitted query is answered
  /// (or timed out by its own deadline) before this returns.  Called by the
  /// destructor; queries submitted after stop() throw ServerStoppedError.
  /// Idempotent and safe to race with concurrent clients.
  void stop();

  /// The active generation (a pin: holding the returned pointer keeps its
  /// storage mapped even across reloads).
  std::shared_ptr<const IndexGeneration> generation() const;
  const ServerOptions& options() const { return options_; }
  /// Snapshot of the admission counters (taken under the queue lock).
  ServerStats stats() const;
  /// Snapshot of the robustness counters, latency histograms, and the
  /// active generation's status.
  ServerHealth health() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    enum class Kind : std::uint8_t { kRange, kKnn } kind;
    Box box;
    Point point;
    std::uint32_t k = 0;
    Clock::time_point enqueued;
    Clock::time_point deadline;  ///< meaningful iff deadline_us > 0
    std::uint64_t deadline_us = 0;
    /// Span-trace correlation id, minted at admission (sfc/obs/span_trace).
    std::uint64_t trace_id = 0;
    std::promise<ServedRange> range_promise;
    std::promise<ServedKnn> knn_promise;

    explicit Pending(const Box& b)
        : kind(Kind::kRange), box(b) {}
    Pending(const Point& p, std::uint32_t kk)
        : kind(Kind::kKnn), box(Point::zero(1), Point::zero(1)), point(p), k(kk) {}
  };

  /// Shared admission path: overload/stopped checks + deadline stamping.
  /// Returns the slot just enqueued (under mutex_, which the caller holds).
  Pending& admit(Pending&& pending, std::uint64_t deadline_us);

  void dispatcher_loop();
  /// Fails batch entries whose deadline has passed; keeps the live ones.
  void expire_batch(std::vector<Pending>& batch, Clock::time_point now);
  /// Executes `batch` against `gen` (the generation the dispatcher pinned at
  /// batch formation) and fulfills every promise.  `formed` is the batch
  /// formation time, the start of every execute-side trace span.
  void execute_batch(std::vector<Pending>& batch, const IndexGeneration& gen,
                     Clock::time_point formed);
  /// One-line metrics snapshot to stderr (metrics_log_every_batches).
  void log_metrics_line();

  GenerationManager generations_;
  ServerOptions options_;

  mutable std::mutex mutex_;
  std::mutex join_mutex_;  ///< serializes the dispatcher join in stop()
  std::condition_variable arrivals_;
  std::vector<Pending> pending_;
  bool stopping_ = false;
  ServerStats stats_;
  ServerHealth health_;  ///< queue_depth/stopped filled at snapshot time
  std::thread dispatcher_;
};

/// Trace replay: `clients` threads each replay a strided slice of the trace
/// through blocking server calls, measuring per-query latency end to end
/// (admission wait + batch execution + any retry backoff included).
///
/// The client policy is retry-with-exponential-backoff: an attempt that
/// fails with ServerOverloadError or ServerTimeoutError sleeps
/// min(backoff_base_us << attempt, backoff_max_us) and retries, up to
/// max_retries re-submissions; a query still failing after its last retry is
/// tallied as rejected (overload) or timed_out (deadline) — shed load is
/// *measured*, never silently dropped.  Any other error (engine errors,
/// ServerStoppedError) aborts the replay and rethrows: those are bugs or
/// misuse, not load shedding.
struct ReplayOptions {
  std::uint32_t clients = 1;
  /// Re-submissions allowed per query after the initial attempt.
  std::uint32_t max_retries = 0;
  /// First retry backoff; doubles per attempt (exponential).
  std::uint32_t backoff_base_us = 200;
  /// Backoff ceiling.
  std::uint32_t backoff_max_us = 50000;
  /// Per-query deadline passed with every submission (0 = use the server's
  /// default deadline).
  std::uint64_t deadline_us = 0;
};

struct ReplayReport {
  std::uint32_t clients = 0;
  std::uint64_t queries = 0;  ///< offered load: every query in the trace
  std::uint64_t range_queries = 0;
  std::uint64_t knn_queries = 0;
  /// Outcome accounting: accepted + rejected + timed_out == queries.
  std::uint64_t accepted = 0;   ///< answered (possibly after retries)
  std::uint64_t rejected = 0;   ///< shed: still overloaded after max_retries
  std::uint64_t timed_out = 0;  ///< shed: still expiring after max_retries
  std::uint64_t retries = 0;    ///< total re-submissions across all queries
  /// Result-volume checksums so replays can assert they did real work.
  std::uint64_t rows_returned = 0;
  std::uint64_t neighbors_returned = 0;
  double wall_seconds = 0.0;
  /// Goodput: accepted queries per second of wall clock.
  double qps = 0.0;
  /// Latency percentiles over *accepted* queries, microseconds
  /// (nearest-rank, end to end from first attempt to answer).
  double p50_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
  /// Server-side split of the dispatch latency (snapshot of the server's
  /// queue-wait and execute histograms at the end of the replay): which side
  /// of the batch boundary the latency lives on.
  double queue_wait_p99_us = 0.0;
  double execute_p99_us = 0.0;
};

ReplayReport replay_trace(IndexServer& server, const QueryTrace& trace,
                          const ReplayOptions& options = {});

}  // namespace sfc
