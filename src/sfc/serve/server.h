// The concurrent serving front end: batching admission over a sharded index.
//
// Serving clients arrive one query at a time, but the engines are at their
// best answering batches (engine reuse, chunked parallelism, shard fan-out).
// IndexServer bridges the two with a classic batching admission queue: client
// threads enqueue a query and block on a future; a single dispatcher thread
// collects arrivals until the batch is full (`max_batch`) or the oldest
// waiting query has aged out (`batch_window_us`), then executes the whole
// batch through the sharded run_range_queries / run_knn_queries executors and
// fulfills every future.  Under load, batches fill and throughput approaches
// the executors' batch rate; when idle, a lone query waits at most one window.
//
// Answers are the engines' answers — batching and sharding change latency and
// throughput, never results (the serve tests assert equality against direct
// engine calls under concurrent clients).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "sfc/index/executor.h"
#include "sfc/serve/sharded_index.h"
#include "sfc/serve/trace.h"

namespace sfc {

struct ServerOptions {
  /// log2 of the shard count handed to ShardedIndex (clamped to key width).
  int shard_bits = 0;
  /// Executor pool for batch execution; nullptr = ThreadPool::shared().
  ThreadPool* pool = nullptr;
  /// Executor chunk grain (queries per engine chunk).
  std::uint64_t grain = 16;
  /// Dispatch as soon as this many queries are queued.
  std::uint32_t max_batch = 64;
  /// ... or once the oldest queued query has waited this long.
  std::uint32_t batch_window_us = 200;
};

struct ServerStats {
  std::uint64_t queries_admitted = 0;
  std::uint64_t range_queries = 0;
  std::uint64_t knn_queries = 0;
  std::uint64_t batches_dispatched = 0;
  std::uint64_t max_batch_rows = 0;  ///< largest batch dispatched so far
};

/// A read-only query server over any index storage.  The storage behind the
/// view must outlive the server.  Thread-safe: any number of client threads
/// may call range_query / knn_query concurrently.
class IndexServer {
 public:
  explicit IndexServer(IndexColumnsView view, const ServerOptions& options = {});
  ~IndexServer();

  IndexServer(const IndexServer&) = delete;
  IndexServer& operator=(const IndexServer&) = delete;

  /// Blocking point queries: enqueue, wait for the dispatcher's batch, return
  /// the engine's answer.  Engine errors (e.g. out-of-universe arguments)
  /// rethrow on the calling thread.
  RangeQueryResult range_query(const Box& box);
  KnnQueryResult knn_query(const Point& query, std::uint32_t k);

  /// Drains queued queries and joins the dispatcher.  Called by the
  /// destructor; queries submitted after stop() throw Error.
  void stop();

  const ShardedIndex& index() const { return index_; }
  const ServerOptions& options() const { return options_; }
  /// Snapshot of the admission counters (taken under the queue lock).
  ServerStats stats() const;

 private:
  struct Pending {
    enum class Kind : std::uint8_t { kRange, kKnn } kind;
    Box box;
    Point point;
    std::uint32_t k = 0;
    std::promise<RangeQueryResult> range_promise;
    std::promise<KnnQueryResult> knn_promise;

    explicit Pending(const Box& b)
        : kind(Kind::kRange), box(b) {}
    Pending(const Point& p, std::uint32_t kk)
        : kind(Kind::kKnn), box(Point::zero(1), Point::zero(1)), point(p), k(kk) {}
  };

  void dispatcher_loop();
  void execute_batch(std::vector<Pending>& batch);

  ShardedIndex index_;
  ServerOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable arrivals_;
  std::vector<Pending> pending_;
  bool stopping_ = false;
  ServerStats stats_;
  std::thread dispatcher_;
};

/// Trace replay: `clients` threads each replay a strided slice of the trace
/// through blocking server calls, measuring per-query latency end to end
/// (admission wait + batch execution included).
struct ReplayOptions {
  std::uint32_t clients = 1;
};

struct ReplayReport {
  std::uint32_t clients = 0;
  std::uint64_t queries = 0;
  std::uint64_t range_queries = 0;
  std::uint64_t knn_queries = 0;
  /// Result-volume checksums so replays can assert they did real work.
  std::uint64_t rows_returned = 0;
  std::uint64_t neighbors_returned = 0;
  double wall_seconds = 0.0;
  double qps = 0.0;
  /// Latency percentiles over all queries, microseconds (nearest-rank).
  double p50_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
};

ReplayReport replay_trace(IndexServer& server, const QueryTrace& trace,
                          const ReplayOptions& options = {});

}  // namespace sfc
