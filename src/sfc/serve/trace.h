// Recorded query traces: the serving workload as data.
//
// A trace is a flat list of range and kNN queries in arrival order, stored
// as a line-oriented text file so traces can be generated once, checked into
// the repo (CI replays a bundled 1k-query trace), diffed, and hand-edited:
//
//   # comment / blank lines ignored
//   range LO_1,...,LO_d HI_1,...,HI_d
//   knn   X_1,...,X_d K
//
// generate_trace draws a reproducible mixed workload from the rng layer:
// uniform box anchors with a fixed extent (clamped to the universe) and
// uniform kNN query points, interleaved by a Bernoulli mix.  The replay
// driver (sfc/serve server + sfctool serve-bench) partitions a trace across
// client threads.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sfc/common/error.h"
#include "sfc/grid/box.h"
#include "sfc/grid/point.h"
#include "sfc/grid/universe.h"

namespace sfc {

/// Thrown on malformed trace text or unwritable/unreadable trace paths.
class TraceError : public Error {
 public:
  explicit TraceError(const std::string& what) : Error(what) {}
};

/// One recorded query; `kind` selects which payload is meaningful.  The
/// range payload is stored as corner points (Box has no default state) and
/// materialized on demand.
struct TraceQuery {
  enum class Kind : std::uint8_t { kRange, kKnn };

  Kind kind = Kind::kRange;
  Point box_lo;        ///< kRange payload: inclusive low corner
  Point box_hi;        ///< kRange payload: inclusive high corner
  Point point;         ///< kKnn payload
  std::uint32_t k = 0; ///< kKnn payload

  Box box() const { return Box(box_lo, box_hi); }

  static TraceQuery range(const Box& b) {
    TraceQuery q;
    q.kind = Kind::kRange;
    q.box_lo = b.lo();
    q.box_hi = b.hi();
    return q;
  }
  static TraceQuery knn(const Point& p, std::uint32_t k) {
    TraceQuery q;
    q.kind = Kind::kKnn;
    q.point = p;
    q.k = k;
    return q;
  }

  friend bool operator==(const TraceQuery& a, const TraceQuery& b) {
    if (a.kind != b.kind) return false;
    return a.kind == Kind::kRange
               ? a.box_lo == b.box_lo && a.box_hi == b.box_hi
               : a.point == b.point && a.k == b.k;
  }
};

struct QueryTrace {
  std::vector<TraceQuery> queries;

  std::size_t size() const { return queries.size(); }
  bool empty() const { return queries.empty(); }
  std::uint64_t range_count() const;
  std::uint64_t knn_count() const;
};

struct TraceGenOptions {
  std::uint64_t count = 1000;     ///< total queries
  std::uint32_t box_extent = 32;  ///< side length of range boxes (>= 1)
  std::uint32_t knn_k = 8;        ///< k for the kNN queries
  /// Fraction of kNN queries in the mix, in percent (0 = all range,
  /// 100 = all kNN).
  std::uint32_t knn_percent = 50;
  std::uint64_t seed = 1;
};

/// Draws a reproducible mixed workload inside `universe`.  Box extents are
/// clamped to the universe side, so small universes stay valid.
QueryTrace generate_trace(const Universe& universe,
                          const TraceGenOptions& options);

/// Text-format round trip.  Both throw TraceError on I/O failure;
/// read_trace_text/read_trace_file additionally throw on malformed lines
/// (message names the line number).
std::string write_trace_text(const QueryTrace& trace);
QueryTrace read_trace_text(const std::string& text);
void write_trace_file(const std::string& path, const QueryTrace& trace);
QueryTrace read_trace_file(const std::string& path);

}  // namespace sfc
