#include "sfc/serve/trace.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "sfc/rng/sampling.h"
#include "sfc/rng/xoshiro256.h"

namespace sfc {

namespace {

/// Renders "x1,x2,...,xd".
void append_coords(std::string& out, const Point& p) {
  for (int i = 0; i < p.dim(); ++i) {
    if (i != 0) out.push_back(',');
    out += std::to_string(p[i]);
  }
}

/// Parses "x1,x2,...,xd" into *out; false on malformed input.
bool parse_point_csv(const std::string& text, Point* out) {
  coord_t coords[kMaxDim];
  int dim = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::size_t end = comma == std::string::npos ? text.size() : comma;
    if (end == pos || dim >= kMaxDim) return false;
    std::uint64_t value = 0;
    for (std::size_t i = pos; i < end; ++i) {
      const char c = text[i];
      if (c < '0' || c > '9') return false;
      value = value * 10 + static_cast<std::uint64_t>(c - '0');
      if (value > 0xffffffffULL) return false;
    }
    coords[dim++] = static_cast<coord_t>(value);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (dim == 0) return false;
  Point p = Point::zero(dim);
  for (int i = 0; i < dim; ++i) p[i] = coords[i];
  *out = p;
  return true;
}

[[noreturn]] void malformed(std::uint64_t line_no, const std::string& line,
                            const std::string& why) {
  throw TraceError("trace parse error at line " + std::to_string(line_no) +
                   " (" + why + "): " + line);
}

}  // namespace

std::uint64_t QueryTrace::range_count() const {
  return static_cast<std::uint64_t>(
      std::count_if(queries.begin(), queries.end(), [](const TraceQuery& q) {
        return q.kind == TraceQuery::Kind::kRange;
      }));
}

std::uint64_t QueryTrace::knn_count() const {
  return size() - range_count();
}

QueryTrace generate_trace(const Universe& universe,
                          const TraceGenOptions& options) {
  if (options.knn_percent > 100) {
    throw TraceError("generate_trace: knn_percent = " +
                     std::to_string(options.knn_percent) + " exceeds 100");
  }
  if (options.box_extent < 1) {
    throw TraceError("generate_trace: box_extent must be >= 1");
  }
  const coord_t extent = static_cast<coord_t>(
      std::min<std::uint64_t>(options.box_extent, universe.side()));
  Xoshiro256 rng(options.seed);
  QueryTrace trace;
  trace.queries.reserve(options.count);
  for (std::uint64_t i = 0; i < options.count; ++i) {
    const bool knn = rng.next_below(100) < options.knn_percent;
    if (knn) {
      trace.queries.push_back(
          TraceQuery::knn(random_cell(universe, rng), options.knn_k));
    } else {
      trace.queries.push_back(
          TraceQuery::range(random_box(universe, extent, rng)));
    }
  }
  return trace;
}

std::string write_trace_text(const QueryTrace& trace) {
  std::string out;
  out += "# sfc query trace: " + std::to_string(trace.size()) + " queries (" +
         std::to_string(trace.range_count()) + " range, " +
         std::to_string(trace.knn_count()) + " knn)\n";
  for (const TraceQuery& q : trace.queries) {
    if (q.kind == TraceQuery::Kind::kRange) {
      out += "range ";
      append_coords(out, q.box_lo);
      out.push_back(' ');
      append_coords(out, q.box_hi);
    } else {
      out += "knn ";
      append_coords(out, q.point);
      out.push_back(' ');
      out += std::to_string(q.k);
    }
    out.push_back('\n');
  }
  return out;
}

QueryTrace read_trace_text(const std::string& text) {
  QueryTrace trace;
  std::istringstream in(text);
  std::string line;
  std::uint64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string op, a, b;
    fields >> op >> a >> b;
    if (fields.fail()) malformed(line_no, line, "expected 3 fields");
    std::string extra;
    if (fields >> extra) malformed(line_no, line, "trailing fields");
    if (op == "range") {
      Point lo, hi;
      if (!parse_point_csv(a, &lo)) malformed(line_no, line, "bad low corner");
      if (!parse_point_csv(b, &hi)) malformed(line_no, line, "bad high corner");
      if (lo.dim() != hi.dim()) malformed(line_no, line, "corner dim mismatch");
      for (int i = 0; i < lo.dim(); ++i) {
        if (lo[i] > hi[i]) malformed(line_no, line, "inverted corner");
      }
      trace.queries.push_back(TraceQuery::range(Box(lo, hi)));
    } else if (op == "knn") {
      Point p;
      if (!parse_point_csv(a, &p)) malformed(line_no, line, "bad query point");
      std::uint64_t k = 0;
      for (const char c : b) {
        if (c < '0' || c > '9') malformed(line_no, line, "bad k");
        k = k * 10 + static_cast<std::uint64_t>(c - '0');
        if (k > 0xffffffffULL) malformed(line_no, line, "k out of range");
      }
      if (b.empty() || k == 0) malformed(line_no, line, "bad k");
      trace.queries.push_back(
          TraceQuery::knn(p, static_cast<std::uint32_t>(k)));
    } else {
      malformed(line_no, line, "unknown op '" + op + "'");
    }
  }
  return trace;
}

void write_trace_file(const std::string& path, const QueryTrace& trace) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw TraceError("cannot open trace file for writing: " + path);
  const std::string text = write_trace_text(trace);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  out.flush();
  if (!out) throw TraceError("I/O error writing trace file: " + path);
}

QueryTrace read_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw TraceError("cannot open trace file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) throw TraceError("I/O error reading trace file: " + path);
  return read_trace_text(buffer.str());
}

}  // namespace sfc
