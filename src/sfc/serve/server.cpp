#include "sfc/serve/server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <exception>
#include <map>
#include <utility>

#include "sfc/obs/metrics.h"
#include "sfc/obs/span_trace.h"

namespace sfc {

namespace {

/// Registry handles for the serve layer, resolved once.  These mirror the
/// mutex-guarded ServerHealth counters into the process-wide registry so one
/// snapshot covers every IndexServer in the process.
struct ServeMetrics {
  MetricsRegistry::Counter accepted;
  MetricsRegistry::Counter rejected_overload;
  MetricsRegistry::Counter rejected_stopped;
  MetricsRegistry::Counter timed_out;
  MetricsRegistry::Counter executed;
  MetricsRegistry::Counter batches;
  MetricsRegistry::Counter range_queries;
  MetricsRegistry::Counter knn_queries;
  MetricsRegistry::Counter reloads;
  MetricsRegistry::Counter failed_reloads;
  MetricsRegistry::Counter degraded_partials;
  MetricsRegistry::Gauge queue_depth;
  MetricsRegistry::Histogram queue_wait_us;
  MetricsRegistry::Histogram execute_us;
  MetricsRegistry::Histogram batch_rows;
};

ServeMetrics& serve_metrics() {
  static ServeMetrics metrics{
      MetricsRegistry::global().counter("serve.accepted"),
      MetricsRegistry::global().counter("serve.rejected_overload"),
      MetricsRegistry::global().counter("serve.rejected_stopped"),
      MetricsRegistry::global().counter("serve.timed_out"),
      MetricsRegistry::global().counter("serve.executed"),
      MetricsRegistry::global().counter("serve.batches"),
      MetricsRegistry::global().counter("serve.range_queries"),
      MetricsRegistry::global().counter("serve.knn_queries"),
      MetricsRegistry::global().counter("serve.reloads"),
      MetricsRegistry::global().counter("serve.failed_reloads"),
      MetricsRegistry::global().counter("serve.degraded_partials"),
      MetricsRegistry::global().gauge("serve.queue_depth"),
      MetricsRegistry::global().histogram("serve.queue_wait_us"),
      MetricsRegistry::global().histogram("serve.execute_us"),
      MetricsRegistry::global().histogram("serve.batch_rows"),
  };
  return metrics;
}

}  // namespace

IndexServer::IndexServer(IndexColumnsView view, const ServerOptions& options)
    : generations_(IndexGeneration::wrap(view, options.shard_bits, 0)),
      options_(options) {
  if (options_.max_batch < 1) {
    throw Error("IndexServer: max_batch must be >= 1");
  }
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

IndexServer::IndexServer(const std::string& path, const ServerOptions& options)
    : generations_(IndexGeneration::open(path, options.shard_bits, 0,
                                         options.allow_degraded)),
      options_(options) {
  if (options_.max_batch < 1) {
    throw Error("IndexServer: max_batch must be >= 1");
  }
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

std::uint64_t IndexServer::reload(const std::string& path) {
  const double start_us = trace_now_us();
  try {
    const std::uint64_t epoch =
        generations_.reload(path, options_.shard_bits, options_.allow_degraded)
            ->epoch();
    serve_metrics().reloads.add(1);
    if (obs_enabled()) {
      TraceSpan span;
      span.name = "reload";
      span.category = "serve";
      span.start_us = start_us;
      span.dur_us = trace_now_us() - start_us;
      span.tid = trace_thread_id();
      span.add_arg("epoch", epoch);
      TraceRing::global().record(span);
    }
    return epoch;
  } catch (...) {
    serve_metrics().failed_reloads.add(1);
    throw;
  }
}

std::shared_ptr<const IndexGeneration> IndexServer::generation() const {
  return generations_.active();
}

IndexServer::~IndexServer() { stop(); }

void IndexServer::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  arrivals_.notify_all();
  // Serialize the join so concurrent stop() calls are safe and *every* stop()
  // returns only after the drain has finished (idempotent included).
  std::lock_guard<std::mutex> join_lock(join_mutex_);
  if (dispatcher_.joinable()) dispatcher_.join();
}

IndexServer::Pending& IndexServer::admit(Pending&& pending,
                                         std::uint64_t deadline_us) {
  // Caller holds mutex_.
  if (stopping_) {
    ++health_.rejected_stopped;
    serve_metrics().rejected_stopped.add(1);
    throw ServerStoppedError();
  }
  if (options_.max_queue > 0 && pending_.size() >= options_.max_queue) {
    ++health_.rejected_overload;
    serve_metrics().rejected_overload.add(1);
    throw ServerOverloadError(pending_.size(), options_.max_queue);
  }
  pending.enqueued = Clock::now();
  pending.deadline_us = deadline_us;
  pending.trace_id = next_trace_id();
  if (deadline_us > 0) {
    pending.deadline = pending.enqueued + std::chrono::microseconds(deadline_us);
  }
  pending_.push_back(std::move(pending));
  ++stats_.queries_admitted;
  ++health_.accepted;
  serve_metrics().accepted.add(1);
  serve_metrics().queue_depth.set(static_cast<std::int64_t>(pending_.size()));
  return pending_.back();
}

RangeQueryResult IndexServer::range_query(const Box& box) {
  return range_query_served(box, options_.deadline_us).result;
}

RangeQueryResult IndexServer::range_query(const Box& box,
                                          std::uint64_t deadline_us) {
  return range_query_served(box, deadline_us).result;
}

KnnQueryResult IndexServer::knn_query(const Point& query, std::uint32_t k) {
  return knn_query_served(query, k, options_.deadline_us).result;
}

KnnQueryResult IndexServer::knn_query(const Point& query, std::uint32_t k,
                                      std::uint64_t deadline_us) {
  return knn_query_served(query, k, deadline_us).result;
}

ServedRange IndexServer::range_query_served(const Box& box) {
  return range_query_served(box, options_.deadline_us);
}

ServedRange IndexServer::range_query_served(const Box& box,
                                            std::uint64_t deadline_us) {
  std::future<ServedRange> future;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Pending& slot = admit(Pending(box), deadline_us);
    future = slot.range_promise.get_future();
    ++stats_.range_queries;
    serve_metrics().range_queries.add(1);
  }
  arrivals_.notify_one();
  return future.get();
}

ServedKnn IndexServer::knn_query_served(const Point& query, std::uint32_t k) {
  return knn_query_served(query, k, options_.deadline_us);
}

ServedKnn IndexServer::knn_query_served(const Point& query, std::uint32_t k,
                                        std::uint64_t deadline_us) {
  std::future<ServedKnn> future;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Pending& slot = admit(Pending(query, k), deadline_us);
    future = slot.knn_promise.get_future();
    ++stats_.knn_queries;
    serve_metrics().knn_queries.add(1);
  }
  arrivals_.notify_one();
  return future.get();
}

ServerStats IndexServer::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

ServerHealth IndexServer::health() const {
  ServerHealth snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot = health_;
    snapshot.queue_depth = pending_.size();
    snapshot.stopped = stopping_;
    snapshot.batches_dispatched = stats_.batches_dispatched;
  }
  const std::shared_ptr<const IndexGeneration> gen = generations_.active();
  snapshot.epoch = gen->epoch();
  snapshot.reloads = generations_.reloads();
  snapshot.failed_reloads = generations_.failed_reloads();
  snapshot.shard_count = gen->sharded().shard_count();
  snapshot.dead_shards = gen->dead_shard_count();
  snapshot.shard_alive = gen->shard_alive();
  return snapshot;
}

void IndexServer::dispatcher_loop() {
  const auto window = std::chrono::microseconds(options_.batch_window_us);
  std::vector<Pending> batch;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      arrivals_.wait(lock, [this] { return stopping_ || !pending_.empty(); });
      if (pending_.empty()) return;  // stopping with nothing queued
      // The window opens when the dispatcher first sees a non-empty queue —
      // the oldest query waits at most one window before its batch executes.
      // Queries with deadlines pull the close earlier: waiting the full
      // window past a queued deadline would expire a query the server could
      // still have answered.
      const auto window_close = Clock::now() + window;
      while (!stopping_ && pending_.size() < options_.max_batch) {
        auto close_at = window_close;
        for (const Pending& p : pending_) {
          if (p.deadline_us > 0 && p.deadline < close_at) close_at = p.deadline;
        }
        if (Clock::now() >= close_at) break;
        arrivals_.wait_until(lock, close_at);
      }
      batch.swap(pending_);
      ++stats_.batches_dispatched;
      stats_.max_batch_rows =
          std::max<std::uint64_t>(stats_.max_batch_rows, batch.size());
      serve_metrics().queue_depth.set(0);
    }
    serve_metrics().batches.add(1);
    serve_metrics().batch_rows.record_us(static_cast<double>(batch.size()));
    const auto formed = Clock::now();
    expire_batch(batch, formed);
    // Pin the active generation for this whole batch: a reload that lands
    // mid-execution swaps the manager's pointer, but this batch keeps its
    // generation mapped (shared_ptr refcount) and answers from it — the swap
    // is only ever observed at a batch boundary.
    const std::shared_ptr<const IndexGeneration> gen = generations_.active();
    execute_batch(batch, *gen, formed);
    {
      // Per-query latency split at the batch boundary: queue wait (enqueue
      // -> batch formation) and execute (formation -> answer delivered),
      // recorded with the executed count after the futures are fulfilled.
      const auto done = Clock::now();
      const double execute_us =
          std::chrono::duration<double, std::micro>(done - formed).count();
      std::lock_guard<std::mutex> lock(mutex_);
      for (const Pending& p : batch) {
        health_.queue_wait_latency.record_us(
            std::chrono::duration<double, std::micro>(formed - p.enqueued)
                .count());
        health_.execute_latency.record_us(execute_us);
        ++health_.executed;
      }
    }
    serve_metrics().executed.add(batch.size());
    if (obs_enabled()) {
      // One queue-wait span per query and one execute-side summary histogram
      // pair: the engine-fact spans were already recorded by execute_batch.
      const auto done = Clock::now();
      const double execute_us =
          std::chrono::duration<double, std::micro>(done - formed).count();
      const double formed_us = trace_time_us(formed);
      const std::uint32_t tid = trace_thread_id();
      std::vector<TraceSpan> spans;
      spans.reserve(batch.size() + 1);
      for (const Pending& p : batch) {
        const double wait_us =
            std::chrono::duration<double, std::micro>(formed - p.enqueued)
                .count();
        serve_metrics().queue_wait_us.record_us(wait_us);
        serve_metrics().execute_us.record_us(execute_us);
        TraceSpan span;
        span.trace_id = p.trace_id;
        span.name = "queue_wait";
        span.category = "serve";
        span.start_us = trace_time_us(p.enqueued);
        span.dur_us = wait_us;
        span.tid = tid;
        span.add_arg("deadline_us", p.deadline_us);
        spans.push_back(span);
      }
      TraceSpan span;
      span.name = "batch";
      span.category = "serve";
      span.start_us = formed_us;
      span.dur_us = execute_us;
      span.tid = tid;
      span.add_arg("rows", batch.size());
      span.add_arg("epoch", gen->epoch());
      spans.push_back(span);
      // One ring-lock acquisition per batch, not per query.
      TraceRing::global().record_all(spans);
    }
    if (options_.metrics_log_every_batches > 0) {
      bool log_now = false;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        log_now = stats_.batches_dispatched %
                      options_.metrics_log_every_batches == 0;
      }
      if (log_now) log_metrics_line();
    }
    batch.clear();
  }
}

void IndexServer::log_metrics_line() {
  const ServerHealth snapshot = health();
  std::fprintf(
      stderr,
      "sfc-serve metrics: batches=%llu accepted=%llu executed=%llu "
      "timed_out=%llu rejected=%llu queue_depth=%llu queue_wait_p99_us=%.0f "
      "execute_p99_us=%.0f epoch=%llu reloads=%llu\n",
      static_cast<unsigned long long>(snapshot.batches_dispatched),
      static_cast<unsigned long long>(snapshot.accepted),
      static_cast<unsigned long long>(snapshot.executed),
      static_cast<unsigned long long>(snapshot.timed_out),
      static_cast<unsigned long long>(snapshot.rejected_overload +
                                      snapshot.rejected_stopped),
      static_cast<unsigned long long>(snapshot.queue_depth),
      snapshot.queue_wait_latency.percentile_us(0.99),
      snapshot.execute_latency.percentile_us(0.99),
      static_cast<unsigned long long>(snapshot.epoch),
      static_cast<unsigned long long>(snapshot.reloads));
}

void IndexServer::expire_batch(std::vector<Pending>& batch,
                               Clock::time_point now) {
  const auto is_expired = [now](const Pending& p) {
    return p.deadline_us > 0 && now >= p.deadline;
  };
  // Bump the counter BEFORE failing any promise: a client that observes
  // ServerTimeoutError is guaranteed to find itself in health().timed_out.
  const auto expired = static_cast<std::uint64_t>(
      std::count_if(batch.begin(), batch.end(), is_expired));
  if (expired > 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    health_.timed_out += expired;
    serve_metrics().timed_out.add(expired);
  }
  std::size_t kept = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Pending& p = batch[i];
    if (is_expired(p)) {
      const auto waited = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(now -
                                                                p.enqueued)
              .count());
      const auto error = std::make_exception_ptr(
          ServerTimeoutError(p.deadline_us, waited));
      if (p.kind == Pending::Kind::kRange) {
        p.range_promise.set_exception(error);
      } else {
        p.knn_promise.set_exception(error);
      }
      continue;
    }
    if (kept != i) batch[kept] = std::move(batch[i]);
    ++kept;
  }
  batch.erase(batch.begin() + static_cast<std::ptrdiff_t>(kept), batch.end());
}

void IndexServer::execute_batch(std::vector<Pending>& batch,
                                const IndexGeneration& gen,
                                Clock::time_point formed) {
  // Split the mixed batch into one range sub-batch and one kNN sub-batch per
  // k (the executor answers a whole sub-batch with one k), then execute each
  // through the sharded executors of the pinned generation.
  MultiQueryOptions exec;
  exec.pool = options_.pool;
  exec.grain = options_.grain;
  const ShardedIndex& index = gen.sharded();
  const std::uint64_t epoch = gen.epoch();
  const double formed_us = trace_time_us(formed);

  // Per-query engine-fact span: the execute-side phase of the request's
  // timeline, carrying the engine's work accounting (the paper's clustering
  // quantities, observed live).  Duration is the sub-batch's wall time — the
  // executor answers sub-batches as a unit, so that is the latency the query
  // actually experienced.  Spans are staged locally and flushed with one
  // record_all at the end, so the ring mutex is taken once per batch.
  std::vector<TraceSpan> engine_spans;
  const auto record_range_span = [&](const Pending& p,
                                     const RangeScanStats& stats,
                                     std::uint64_t rows, double dur_us) {
    TraceSpan span;
    span.trace_id = p.trace_id;
    span.name = "range";
    span.category = "engine";
    span.start_us = formed_us;
    span.dur_us = dur_us;
    span.tid = trace_thread_id();
    span.add_arg("epoch", epoch);
    span.add_arg("rows_returned", rows);
    span.add_arg("rows_scanned", stats.rows_scanned);
    span.add_arg("runs_in_cover", stats.runs_in_cover);
    span.add_arg("runs_touched", stats.runs_touched);
    span.add_arg("nodes_visited", stats.nodes_visited);
    span.add_arg("used_subtree", stats.used_subtree ? 1 : 0);
    engine_spans.push_back(span);
  };
  const auto record_knn_span = [&](const Pending& p, const KnnStats& stats,
                                   std::uint64_t neighbors, double dur_us) {
    TraceSpan span;
    span.trace_id = p.trace_id;
    span.name = "knn";
    span.category = "engine";
    span.start_us = formed_us;
    span.dur_us = dur_us;
    span.tid = trace_thread_id();
    span.add_arg("epoch", epoch);
    span.add_arg("k", p.k);
    span.add_arg("neighbors", neighbors);
    span.add_arg("nodes_expanded", stats.nodes_expanded);
    span.add_arg("frontier_pushes", stats.frontier_pushes);
    span.add_arg("rows_scanned", stats.rows_scanned);
    span.add_arg("certified", stats.certified ? 1 : 0);
    engine_spans.push_back(span);
  };

  std::vector<std::size_t> range_slots;
  std::map<std::uint32_t, std::vector<std::size_t>> knn_slots;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].kind == Pending::Kind::kRange) {
      range_slots.push_back(i);
    } else {
      knn_slots[batch[i].k].push_back(i);
    }
  }

  if (!range_slots.empty()) {
    std::vector<Box> boxes;
    boxes.reserve(range_slots.size());
    for (const std::size_t i : range_slots) boxes.push_back(batch[i].box);
    try {
      if (gen.degraded()) {
        std::vector<DegradedRangeResult> results = run_range_queries_degraded(
            index, boxes, gen.shard_alive(), exec);
        const double sub_us =
            obs_enabled() ? trace_now_us() - formed_us : 0.0;
        for (std::size_t j = 0; j < range_slots.size(); ++j) {
          Pending& p = batch[range_slots[j]];
          DegradedRangeResult& d = results[j];
          if (obs_enabled()) {
            record_range_span(p, d.result.stats, d.result.ids.size(), sub_us);
          }
          if (d.dead_overlap.empty()) {
            p.range_promise.set_value(
                ServedRange{std::move(d.result), epoch});
          } else {
            serve_metrics().degraded_partials.add(1);
            p.range_promise.set_exception(
                std::make_exception_ptr(PartialResultError(
                    std::move(d.dead_overlap), std::move(d.result.ids))));
          }
        }
      } else {
        std::vector<RangeQueryResult> results =
            run_range_queries(index, boxes, exec);
        const double sub_us =
            obs_enabled() ? trace_now_us() - formed_us : 0.0;
        for (std::size_t j = 0; j < range_slots.size(); ++j) {
          Pending& p = batch[range_slots[j]];
          if (obs_enabled()) {
            record_range_span(p, results[j].stats, results[j].ids.size(),
                              sub_us);
          }
          p.range_promise.set_value(ServedRange{std::move(results[j]), epoch});
        }
      }
    } catch (...) {
      // A bad query (e.g. out-of-universe box) fails the whole sub-batch;
      // every waiter sees the error on its own thread.
      for (const std::size_t i : range_slots) {
        batch[i].range_promise.set_exception(std::current_exception());
      }
    }
  }

  for (auto& [k, slots] : knn_slots) {
    std::vector<Point> points;
    points.reserve(slots.size());
    for (const std::size_t i : slots) points.push_back(batch[i].point);
    try {
      if (gen.degraded()) {
        std::vector<DegradedKnnResult> results = run_knn_queries_degraded(
            index, points, k, gen.shard_alive(), exec);
        const double sub_us =
            obs_enabled() ? trace_now_us() - formed_us : 0.0;
        for (std::size_t j = 0; j < slots.size(); ++j) {
          Pending& p = batch[slots[j]];
          DegradedKnnResult& d = results[j];
          if (obs_enabled()) {
            record_knn_span(p, d.result.stats, d.result.neighbors.size(),
                            sub_us);
          }
          if (d.dead_overlap.empty()) {
            p.knn_promise.set_value(ServedKnn{std::move(d.result), epoch});
          } else {
            serve_metrics().degraded_partials.add(1);
            p.knn_promise.set_exception(
                std::make_exception_ptr(PartialResultError(
                    std::move(d.dead_overlap),
                    std::move(d.result.neighbors))));
          }
        }
      } else {
        std::vector<KnnQueryResult> results =
            run_knn_queries(index, points, k, exec);
        const double sub_us =
            obs_enabled() ? trace_now_us() - formed_us : 0.0;
        for (std::size_t j = 0; j < slots.size(); ++j) {
          Pending& p = batch[slots[j]];
          if (obs_enabled()) {
            record_knn_span(p, results[j].stats, results[j].neighbors.size(),
                            sub_us);
          }
          p.knn_promise.set_value(ServedKnn{std::move(results[j]), epoch});
        }
      }
    } catch (...) {
      for (const std::size_t i : slots) {
        batch[i].knn_promise.set_exception(std::current_exception());
      }
    }
  }
  TraceRing::global().record_all(engine_spans);
}

ReplayReport replay_trace(IndexServer& server, const QueryTrace& trace,
                          const ReplayOptions& options) {
  const std::uint32_t clients = std::max<std::uint32_t>(1, options.clients);
  ReplayReport report;
  report.clients = clients;
  report.queries = trace.size();
  report.range_queries = trace.range_count();
  report.knn_queries = trace.knn_count();
  if (trace.empty()) return report;

  struct ClientTally {
    std::vector<double> latencies_us;
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t timed_out = 0;
    std::uint64_t retries = 0;
    std::uint64_t rows_returned = 0;
    std::uint64_t neighbors_returned = 0;
    std::exception_ptr error;
  };
  std::vector<ClientTally> tallies(clients);

  using clock = std::chrono::steady_clock;
  const auto replay_begin = clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::uint32_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      ClientTally& tally = tallies[c];
      try {
        // Strided slice: client c replays queries c, c+clients, ... so every
        // client mixes range and kNN work the way the trace does.
        for (std::size_t q = c; q < trace.size(); q += clients) {
          const TraceQuery& query = trace.queries[q];
          const auto begin = clock::now();
          // Retry-with-exponential-backoff on shed load; anything else is a
          // real error and aborts the replay.  Every query resolves to
          // exactly one outcome, assigned exactly once at loop exit — a
          // query that is shed, retried, and finally times out tallies as
          // one timed_out, never as one of each, so the identity
          // accepted + rejected + timed_out == queries holds by
          // construction.
          enum class Outcome : std::uint8_t { kAccepted, kRejected, kTimedOut };
          Outcome outcome = Outcome::kAccepted;
          for (std::uint32_t attempt = 0;; ++attempt) {
            try {
              if (query.kind == TraceQuery::Kind::kRange) {
                const RangeQueryResult result =
                    options.deadline_us > 0
                        ? server.range_query(query.box(), options.deadline_us)
                        : server.range_query(query.box());
                tally.rows_returned += result.ids.size();
              } else {
                const KnnQueryResult result =
                    options.deadline_us > 0
                        ? server.knn_query(query.point, query.k,
                                           options.deadline_us)
                        : server.knn_query(query.point, query.k);
                tally.neighbors_returned += result.neighbors.size();
              }
              outcome = Outcome::kAccepted;
              const auto end = clock::now();
              tally.latencies_us.push_back(
                  std::chrono::duration<double, std::micro>(end - begin)
                      .count());
              break;
            } catch (const ServerOverloadError&) {
              outcome = Outcome::kRejected;
            } catch (const ServerTimeoutError&) {
              outcome = Outcome::kTimedOut;
            }
            if (attempt >= options.max_retries) break;
            ++tally.retries;
            const std::uint64_t backoff_us = std::min<std::uint64_t>(
                options.backoff_max_us,
                static_cast<std::uint64_t>(options.backoff_base_us)
                    << std::min<std::uint32_t>(attempt, 20));
            std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
          }
          switch (outcome) {
            case Outcome::kAccepted: ++tally.accepted; break;
            case Outcome::kRejected: ++tally.rejected; break;
            case Outcome::kTimedOut: ++tally.timed_out; break;
          }
        }
      } catch (...) {
        tally.error = std::current_exception();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const auto replay_end = clock::now();

  std::vector<double> latencies;
  latencies.reserve(trace.size());
  for (ClientTally& tally : tallies) {
    if (tally.error) std::rethrow_exception(tally.error);
    report.accepted += tally.accepted;
    report.rejected += tally.rejected;
    report.timed_out += tally.timed_out;
    report.retries += tally.retries;
    report.rows_returned += tally.rows_returned;
    report.neighbors_returned += tally.neighbors_returned;
    latencies.insert(latencies.end(), tally.latencies_us.begin(),
                     tally.latencies_us.end());
  }

  report.wall_seconds =
      std::chrono::duration<double>(replay_end - replay_begin).count();
  report.qps = report.wall_seconds > 0.0
                   ? static_cast<double>(report.accepted) / report.wall_seconds
                   : 0.0;
  // Exact percentiles from the shared helper (it sorts `latencies`), so the
  // replay report and the chaos report use one nearest-rank definition.
  report.p50_us = nearest_rank_percentile(latencies, 0.50);
  report.p99_us = nearest_rank_percentile(latencies, 0.99);
  report.max_us = latencies.empty() ? 0.0 : latencies.back();
  const ServerHealth health = server.health();
  report.queue_wait_p99_us = health.queue_wait_latency.percentile_us(0.99);
  report.execute_p99_us = health.execute_latency.percentile_us(0.99);
  return report;
}

}  // namespace sfc
