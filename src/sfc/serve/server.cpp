#include "sfc/serve/server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <map>
#include <utility>

namespace sfc {

IndexServer::IndexServer(IndexColumnsView view, const ServerOptions& options)
    : index_(view, options.shard_bits), options_(options) {
  if (options_.max_batch < 1) {
    throw Error("IndexServer: max_batch must be >= 1");
  }
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

IndexServer::~IndexServer() { stop(); }

void IndexServer::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  arrivals_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

RangeQueryResult IndexServer::range_query(const Box& box) {
  std::future<RangeQueryResult> future;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) throw Error("IndexServer: query after stop()");
    pending_.emplace_back(box);
    future = pending_.back().range_promise.get_future();
    ++stats_.queries_admitted;
    ++stats_.range_queries;
  }
  arrivals_.notify_one();
  return future.get();
}

KnnQueryResult IndexServer::knn_query(const Point& query, std::uint32_t k) {
  std::future<KnnQueryResult> future;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) throw Error("IndexServer: query after stop()");
    pending_.emplace_back(query, k);
    future = pending_.back().knn_promise.get_future();
    ++stats_.queries_admitted;
    ++stats_.knn_queries;
  }
  arrivals_.notify_one();
  return future.get();
}

ServerStats IndexServer::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void IndexServer::dispatcher_loop() {
  const auto window = std::chrono::microseconds(options_.batch_window_us);
  std::vector<Pending> batch;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      arrivals_.wait(lock, [this] { return stopping_ || !pending_.empty(); });
      if (pending_.empty()) return;  // stopping with nothing queued
      // The window opens when the dispatcher first sees a non-empty queue —
      // the oldest query waits at most one window before its batch executes.
      const auto deadline = std::chrono::steady_clock::now() + window;
      arrivals_.wait_until(lock, deadline, [this] {
        return stopping_ || pending_.size() >= options_.max_batch;
      });
      batch.swap(pending_);
      ++stats_.batches_dispatched;
      stats_.max_batch_rows =
          std::max<std::uint64_t>(stats_.max_batch_rows, batch.size());
    }
    execute_batch(batch);
    batch.clear();
  }
}

void IndexServer::execute_batch(std::vector<Pending>& batch) {
  // Split the mixed batch into one range sub-batch and one kNN sub-batch per
  // k (the executor answers a whole sub-batch with one k), then execute each
  // through the sharded executors.
  MultiQueryOptions exec;
  exec.pool = options_.pool;
  exec.grain = options_.grain;

  std::vector<std::size_t> range_slots;
  std::map<std::uint32_t, std::vector<std::size_t>> knn_slots;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].kind == Pending::Kind::kRange) {
      range_slots.push_back(i);
    } else {
      knn_slots[batch[i].k].push_back(i);
    }
  }

  if (!range_slots.empty()) {
    std::vector<Box> boxes;
    boxes.reserve(range_slots.size());
    for (const std::size_t i : range_slots) boxes.push_back(batch[i].box);
    try {
      std::vector<RangeQueryResult> results =
          run_range_queries(index_, boxes, exec);
      for (std::size_t j = 0; j < range_slots.size(); ++j) {
        batch[range_slots[j]].range_promise.set_value(std::move(results[j]));
      }
    } catch (...) {
      // A bad query (e.g. out-of-universe box) fails the whole sub-batch;
      // every waiter sees the error on its own thread.
      for (const std::size_t i : range_slots) {
        batch[i].range_promise.set_exception(std::current_exception());
      }
    }
  }

  for (auto& [k, slots] : knn_slots) {
    std::vector<Point> points;
    points.reserve(slots.size());
    for (const std::size_t i : slots) points.push_back(batch[i].point);
    try {
      std::vector<KnnQueryResult> results =
          run_knn_queries(index_, points, k, exec);
      for (std::size_t j = 0; j < slots.size(); ++j) {
        batch[slots[j]].knn_promise.set_value(std::move(results[j]));
      }
    } catch (...) {
      for (const std::size_t i : slots) {
        batch[i].knn_promise.set_exception(std::current_exception());
      }
    }
  }
}

namespace {

double percentile_us(const std::vector<double>& sorted_us, double fraction) {
  if (sorted_us.empty()) return 0.0;
  const double rank = std::ceil(fraction * static_cast<double>(sorted_us.size()));
  const std::size_t at =
      std::min<std::size_t>(sorted_us.size(),
                            std::max<std::size_t>(1, static_cast<std::size_t>(rank)));
  return sorted_us[at - 1];
}

}  // namespace

ReplayReport replay_trace(IndexServer& server, const QueryTrace& trace,
                          const ReplayOptions& options) {
  const std::uint32_t clients = std::max<std::uint32_t>(1, options.clients);
  ReplayReport report;
  report.clients = clients;
  report.queries = trace.size();
  report.range_queries = trace.range_count();
  report.knn_queries = trace.knn_count();
  if (trace.empty()) return report;

  struct ClientTally {
    std::vector<double> latencies_us;
    std::uint64_t rows_returned = 0;
    std::uint64_t neighbors_returned = 0;
    std::exception_ptr error;
  };
  std::vector<ClientTally> tallies(clients);

  using clock = std::chrono::steady_clock;
  const auto replay_begin = clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::uint32_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      ClientTally& tally = tallies[c];
      try {
        // Strided slice: client c replays queries c, c+clients, ... so every
        // client mixes range and kNN work the way the trace does.
        for (std::size_t q = c; q < trace.size(); q += clients) {
          const TraceQuery& query = trace.queries[q];
          const auto begin = clock::now();
          if (query.kind == TraceQuery::Kind::kRange) {
            const RangeQueryResult result = server.range_query(query.box());
            tally.rows_returned += result.ids.size();
          } else {
            const KnnQueryResult result =
                server.knn_query(query.point, query.k);
            tally.neighbors_returned += result.neighbors.size();
          }
          const auto end = clock::now();
          tally.latencies_us.push_back(
              std::chrono::duration<double, std::micro>(end - begin).count());
        }
      } catch (...) {
        tally.error = std::current_exception();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const auto replay_end = clock::now();

  std::vector<double> latencies;
  latencies.reserve(trace.size());
  for (ClientTally& tally : tallies) {
    if (tally.error) std::rethrow_exception(tally.error);
    report.rows_returned += tally.rows_returned;
    report.neighbors_returned += tally.neighbors_returned;
    latencies.insert(latencies.end(), tally.latencies_us.begin(),
                     tally.latencies_us.end());
  }
  std::sort(latencies.begin(), latencies.end());

  report.wall_seconds =
      std::chrono::duration<double>(replay_end - replay_begin).count();
  report.qps = report.wall_seconds > 0.0
                   ? static_cast<double>(report.queries) / report.wall_seconds
                   : 0.0;
  report.p50_us = percentile_us(latencies, 0.50);
  report.p99_us = percentile_us(latencies, 0.99);
  report.max_us = latencies.empty() ? 0.0 : latencies.back();
  return report;
}

}  // namespace sfc
