// Typed errors of the serving front end.
//
// Serving failures are part of the protocol, not exceptional states: an
// overloaded server *must* shed load, an expired query *must* fail fast, and
// clients react differently to each (retry with backoff on overload, give up
// or re-plan on timeout, reconnect elsewhere on stop).  Each condition is
// therefore its own sfc::Error subtype carrying the numbers a client policy
// needs — replay_trace's retry loop and the serve-bench failure accounting
// dispatch on these types, and anything *not* one of them is a real bug that
// propagates as-is.
#pragma once

#include <cstdint>
#include <string>

#include "sfc/common/error.h"

namespace sfc {

/// Base of every admission-control failure the server raises on purpose.
/// Engine errors (bad arguments, etc.) are NOT ServeErrors — they propagate
/// with their own types, so callers can tell shed load from broken queries.
class ServeError : public Error {
 public:
  explicit ServeError(const std::string& what) : Error(what) {}
};

/// The admission queue was at max_queue when the query arrived: backpressure.
/// Clients should back off and retry; the query was never admitted.
class ServerOverloadError : public ServeError {
 public:
  ServerOverloadError(std::uint64_t queue_depth, std::uint64_t max_queue)
      : ServeError("server overloaded: admission queue holds " +
                   std::to_string(queue_depth) + " queries (max_queue " +
                   std::to_string(max_queue) + ")"),
        queue_depth_(queue_depth),
        max_queue_(max_queue) {}

  std::uint64_t queue_depth() const { return queue_depth_; }
  std::uint64_t max_queue() const { return max_queue_; }

 private:
  std::uint64_t queue_depth_;
  std::uint64_t max_queue_;
};

/// The query's deadline elapsed while it was still queued; it was dropped at
/// batch formation instead of occupying a batch slot it could no longer use.
class ServerTimeoutError : public ServeError {
 public:
  ServerTimeoutError(std::uint64_t deadline_us, std::uint64_t waited_us)
      : ServeError("query deadline of " + std::to_string(deadline_us) +
                   " us expired after waiting " + std::to_string(waited_us) +
                   " us in the admission queue"),
        deadline_us_(deadline_us),
        waited_us_(waited_us) {}

  std::uint64_t deadline_us() const { return deadline_us_; }
  std::uint64_t waited_us() const { return waited_us_; }

 private:
  std::uint64_t deadline_us_;
  std::uint64_t waited_us_;
};

/// The server has been stopped (or is stopping): no new queries are
/// admitted.  In-flight queries at stop() time still drain and answer.
class ServerStoppedError : public ServeError {
 public:
  ServerStoppedError() : ServeError("IndexServer is stopped: query rejected") {}
};

}  // namespace sfc
