// Typed errors of the serving front end.
//
// Serving failures are part of the protocol, not exceptional states: an
// overloaded server *must* shed load, an expired query *must* fail fast, and
// clients react differently to each (retry with backoff on overload, give up
// or re-plan on timeout, reconnect elsewhere on stop).  Each condition is
// therefore its own sfc::Error subtype carrying the numbers a client policy
// needs — replay_trace's retry loop and the serve-bench failure accounting
// dispatch on these types, and anything *not* one of them is a real bug that
// propagates as-is.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sfc/common/error.h"
#include "sfc/index/knn.h"

namespace sfc {

/// Base of every admission-control failure the server raises on purpose.
/// Engine errors (bad arguments, etc.) are NOT ServeErrors — they propagate
/// with their own types, so callers can tell shed load from broken queries.
class ServeError : public Error {
 public:
  explicit ServeError(const std::string& what) : Error(what) {}
};

/// The admission queue was at max_queue when the query arrived: backpressure.
/// Clients should back off and retry; the query was never admitted.
class ServerOverloadError : public ServeError {
 public:
  ServerOverloadError(std::uint64_t queue_depth, std::uint64_t max_queue)
      : ServeError("server overloaded: admission queue holds " +
                   std::to_string(queue_depth) + " queries (max_queue " +
                   std::to_string(max_queue) + ")"),
        queue_depth_(queue_depth),
        max_queue_(max_queue) {}

  std::uint64_t queue_depth() const { return queue_depth_; }
  std::uint64_t max_queue() const { return max_queue_; }

 private:
  std::uint64_t queue_depth_;
  std::uint64_t max_queue_;
};

/// The query's deadline elapsed while it was still queued; it was dropped at
/// batch formation instead of occupying a batch slot it could no longer use.
class ServerTimeoutError : public ServeError {
 public:
  ServerTimeoutError(std::uint64_t deadline_us, std::uint64_t waited_us)
      : ServeError("query deadline of " + std::to_string(deadline_us) +
                   " us expired after waiting " + std::to_string(waited_us) +
                   " us in the admission queue"),
        deadline_us_(deadline_us),
        waited_us_(waited_us) {}

  std::uint64_t deadline_us() const { return deadline_us_; }
  std::uint64_t waited_us() const { return waited_us_; }

 private:
  std::uint64_t deadline_us_;
  std::uint64_t waited_us_;
};

/// The server has been stopped (or is stopping): no new queries are
/// admitted.  In-flight queries at stop() time still drain and answer.
class ServerStoppedError : public ServeError {
 public:
  ServerStoppedError() : ServeError("IndexServer is stopped: query rejected") {}
};

/// IndexServer::reload failed: the candidate file did not validate (or could
/// not be opened, or every shard verified dead).  The previous generation is
/// untouched and keeps serving — a failed reload is an operator event, never
/// an outage.  `reason` carries the underlying StoreError text.
class ReloadError : public ServeError {
 public:
  ReloadError(const std::string& path, const std::string& reason)
      : ServeError("index reload of '" + path +
                   "' rejected (previous generation keeps serving): " + reason),
        path_(path),
        reason_(reason) {}

  const std::string& path() const { return path_; }
  const std::string& reason() const { return reason_; }

 private:
  std::string path_;
  std::string reason_;
};

/// A query in a degraded generation overlapped one or more dead shards.  The
/// live shards' answer is carried in the error — callers choose between a
/// partial answer and none — together with the dead shard ids, so a client
/// can report exactly which key ranges are unavailable.  Queries that do not
/// overlap any dead shard return normally even in a degraded generation.
class PartialResultError : public ServeError {
 public:
  PartialResultError(std::vector<std::uint32_t> dead_shards,
                     std::vector<std::uint32_t> partial_ids)
      : ServeError(describe(dead_shards, "range")),
        dead_shards_(std::move(dead_shards)),
        partial_ids_(std::move(partial_ids)) {}
  PartialResultError(std::vector<std::uint32_t> dead_shards,
                     std::vector<KnnNeighbor> partial_neighbors)
      : ServeError(describe(dead_shards, "knn")),
        dead_shards_(std::move(dead_shards)),
        partial_neighbors_(std::move(partial_neighbors)) {}

  /// Shards (by index) whose key range the query needed but which failed
  /// per-shard verification; sorted ascending.
  const std::vector<std::uint32_t>& dead_shards() const { return dead_shards_; }
  /// Live-shard range answer (row order over the live shards); empty for kNN.
  const std::vector<std::uint32_t>& partial_ids() const { return partial_ids_; }
  /// Live-shard kNN answer (may be fewer than k, and is *not* certified
  /// global — a dead shard could hold closer neighbors); empty for range.
  const std::vector<KnnNeighbor>& partial_neighbors() const {
    return partial_neighbors_;
  }

 private:
  static std::string describe(const std::vector<std::uint32_t>& dead,
                              const char* kind) {
    std::string ids;
    for (const std::uint32_t s : dead) {
      if (!ids.empty()) ids += ",";
      ids += std::to_string(s);
    }
    return std::string(kind) + " query overlaps " +
           std::to_string(dead.size()) +
           " dead shard(s) [" + ids + "]: partial result attached";
  }

  std::vector<std::uint32_t> dead_shards_;
  std::vector<std::uint32_t> partial_ids_;
  std::vector<KnnNeighbor> partial_neighbors_;
};

}  // namespace sfc
