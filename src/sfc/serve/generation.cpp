#include "sfc/serve/generation.h"

#include <algorithm>
#include <span>
#include <utility>

#include "sfc/serve/serve_error.h"

namespace sfc {

namespace {

// Column indices of MappedIndex::verify_column_checksums()'s bitmask.
constexpr std::uint32_t kKeysBit = 1u << 0;
constexpr std::uint32_t kIdsBit = 1u << 1;
constexpr std::uint32_t kPointsBit = 1u << 2;
constexpr std::uint32_t kDirectoryBit = 1u << 3;

/// Semantic verification of one shard's slice: keys sorted, inside the
/// shard's key range and the universe, points well-formed and in-universe,
/// and every point re-encoding to its stored key through the generation's
/// curve — the same checks the strict open runs globally, restricted to the
/// rows this shard owns so a failure is attributable.  Returns the empty
/// string when the shard is clean, else a description of the first failure.
std::string verify_shard(const IndexColumnsView& shard,
                         const KeyInterval& key_range) {
  const std::span<const index_t> keys = shard.keys();
  const std::span<const Point> points = shard.points();
  const Universe& u = shard.curve().universe();
  const index_t cells = u.cell_count();
  for (std::uint64_t r = 0; r < keys.size(); ++r) {
    if (keys[r] >= cells) {
      return "row " + std::to_string(r) + " key " + std::to_string(keys[r]) +
             " outside the " + std::to_string(cells) + "-cell universe";
    }
    if (keys[r] < key_range.lo || keys[r] > key_range.hi) {
      return "row " + std::to_string(r) + " key " + std::to_string(keys[r]) +
             " outside the shard's key range [" + std::to_string(key_range.lo) +
             ", " + std::to_string(key_range.hi) + "]";
    }
    if (r > 0 && keys[r - 1] > keys[r]) {
      return "key column not sorted at row " + std::to_string(r);
    }
  }
  constexpr std::uint64_t kVerifyChunk = 4096;
  std::vector<index_t> recoded(
      std::min<std::uint64_t>(keys.size(), kVerifyChunk));
  for (std::uint64_t at = 0; at < keys.size(); at += kVerifyChunk) {
    const std::uint64_t n =
        std::min<std::uint64_t>(kVerifyChunk, keys.size() - at);
    for (std::uint64_t i = 0; i < n; ++i) {
      const Point& p = points[at + i];
      if (p.dim() != u.dim()) {
        return "row " + std::to_string(at + i) + " point dimension " +
               std::to_string(p.dim()) + " != curve dimension " +
               std::to_string(u.dim());
      }
      if (!u.contains(p)) {
        return "row " + std::to_string(at + i) +
               " point outside the curve universe";
      }
    }
    shard.curve().index_of_batch(points.subspan(at, n),
                                 std::span<index_t>(recoded.data(), n));
    for (std::uint64_t i = 0; i < n; ++i) {
      if (recoded[i] != keys[at + i]) {
        return "row " + std::to_string(at + i) + " key " +
               std::to_string(keys[at + i]) +
               " does not re-encode from its point (curve gives " +
               std::to_string(recoded[i]) + ")";
      }
    }
  }
  return std::string();
}

/// Shard owning global row `row`: the last shard whose first row is <= row
/// (empty shards share a begin with their successor and own no rows).
std::size_t shard_of_row(const std::vector<std::uint64_t>& row_begin,
                         std::uint64_t row) {
  const auto it =
      std::upper_bound(row_begin.begin(), row_begin.end(), row);
  return static_cast<std::size_t>(it - row_begin.begin()) - 1;
}

}  // namespace

std::shared_ptr<const IndexGeneration> IndexGeneration::open(
    const std::string& path, int shard_bits, std::uint64_t epoch,
    bool allow_degraded) {
  std::shared_ptr<IndexGeneration> gen(new IndexGeneration());
  gen->epoch_ = epoch;
  gen->path_ = path;

  if (!allow_degraded) {
    // Strict open: the store layer's full validation, any corruption throws.
    gen->mapped_.emplace(MappedIndex::open(path, {.verify = true}));
    gen->sharded_.emplace(gen->mapped_->view(), shard_bits);
    gen->shard_alive_.assign(gen->sharded_->shard_count(), 1);
    gen->shard_errors_.assign(gen->sharded_->shard_count(), std::string());
    return gen;
  }

  // Degraded open: structural validation only (header, bounds, descriptor —
  // anything failing there makes the whole file unusable), then localize.
  gen->mapped_.emplace(MappedIndex::open(path, {.verify = false}));
  const std::uint32_t mask = gen->mapped_->verify_column_checksums();
  if (mask & kIdsBit) {
    // The ids column has no semantic invariant a per-shard check could
    // verify (any permutation of input positions is plausible), so its
    // corruption cannot be localized — serving would risk silently wrong
    // ids.  Reject the file outright.
    throw StoreError("index open: '" + path +
                     "': ids column checksum mismatch — not localizable to "
                     "a shard, refusing degraded open");
  }

  gen->sharded_.emplace(gen->mapped_->view(), shard_bits);
  const ShardedIndex& sharded = *gen->sharded_;
  const std::size_t count = sharded.shard_count();
  gen->shard_alive_.assign(count, 1);
  gen->shard_errors_.assign(count, std::string());

  std::vector<std::uint64_t> row_begin(count);
  for (std::size_t s = 0; s < count; ++s) {
    row_begin[s] = sharded.shard_row_begin(s);
  }

  const auto mark_dead = [&](std::size_t s, std::string why) {
    if (gen->shard_alive_[s] == 0) return;
    gen->shard_alive_[s] = 0;
    gen->shard_errors_[s] = std::move(why);
    ++gen->dead_count_;
  };

  for (std::size_t s = 0; s < count; ++s) {
    std::string why = verify_shard(sharded.shard(s), sharded.shard_key_range(s));
    if (!why.empty()) mark_dead(s, std::move(why));
  }

  // The file's global block directory is not part of any shard slice (shards
  // rebuild their own), but a mismatch there still marks the shard owning
  // the block's last row: that is where the disagreeing key lives.
  const IndexColumnsView& base = gen->mapped_->view();
  const std::span<const index_t> directory = base.block_last_key();
  const std::uint64_t rows = base.row_count();
  for (std::uint64_t b = 0; b < directory.size(); ++b) {
    const std::uint64_t end = std::min<std::uint64_t>(
        (b + 1) * std::uint64_t{base.block_rows()}, rows);
    if (end == 0) break;
    if (directory[b] != base.keys()[end - 1]) {
      mark_dead(shard_of_row(row_begin, end - 1),
                "global directory entry " + std::to_string(b) +
                    " disagrees with the key column");
    }
  }

  if (gen->dead_count_ == count && count > 0) {
    throw StoreError("index open: '" + path +
                     "': every shard failed verification (first: " +
                     gen->shard_errors_[0] + ")");
  }
  if (mask != 0 && gen->dead_count_ == 0) {
    // A checksum disagrees but no shard check explains it — either the
    // recorded checksum itself is corrupt or the corruption hides where the
    // semantic checks cannot see it.  Unattributable = unserveable.
    throw StoreError("index open: '" + path + "': column checksum mismatch " +
                     "(mask " + std::to_string(mask) +
                     ") not localizable to any shard, refusing degraded open");
  }
  return gen;
}

std::shared_ptr<const IndexGeneration> IndexGeneration::wrap(
    IndexColumnsView view, int shard_bits, std::uint64_t epoch) {
  std::shared_ptr<IndexGeneration> gen(new IndexGeneration());
  gen->epoch_ = epoch;
  gen->sharded_.emplace(view, shard_bits);
  gen->shard_alive_.assign(gen->sharded_->shard_count(), 1);
  gen->shard_errors_.assign(gen->sharded_->shard_count(), std::string());
  return gen;
}

GenerationManager::GenerationManager(
    std::shared_ptr<const IndexGeneration> initial)
    : active_(std::move(initial)) {
  next_epoch_ = active_->epoch() + 1;
}

std::shared_ptr<const IndexGeneration> GenerationManager::active() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return active_;
}

std::shared_ptr<const IndexGeneration> GenerationManager::reload(
    const std::string& path, int shard_bits, bool allow_degraded) {
  std::uint64_t epoch;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    epoch = next_epoch_++;
  }
  std::shared_ptr<const IndexGeneration> next;
  try {
    // All validation happens here, before the swap lock: a throw leaves
    // active_ untouched and still serving.
    next = IndexGeneration::open(path, shard_bits, epoch, allow_degraded);
  } catch (const Error& error) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++failed_reloads_;
    }
    throw ReloadError(path, error.what());
  }
  std::lock_guard<std::mutex> lock(mutex_);
  active_ = next;  // old generation unpins here; unmaps at refcount zero
  ++reloads_;
  return next;
}

std::uint64_t GenerationManager::reloads() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return reloads_;
}

std::uint64_t GenerationManager::failed_reloads() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return failed_reloads_;
}

}  // namespace sfc
