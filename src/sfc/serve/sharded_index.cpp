#include "sfc/serve/sharded_index.h"

#include <algorithm>
#include <bit>
#include <optional>

#include "sfc/parallel/parallel_for.h"

namespace sfc {

namespace {

std::uint64_t normalized_grain(const MultiQueryOptions& options) {
  return options.grain == 0 ? 16 : options.grain;
}

ThreadPool& pool_of(const MultiQueryOptions& options) {
  return options.pool != nullptr ? *options.pool : ThreadPool::shared();
}

/// Indices of shards marked dead in `alive` (missing entries count as alive,
/// so an empty span means a fully-live index).
std::vector<std::uint32_t> dead_shards_of(const ShardedIndex& index,
                                          std::span<const std::uint8_t> alive) {
  std::vector<std::uint32_t> dead;
  const std::size_t n = std::min(index.shard_count(), alive.size());
  for (std::size_t s = 0; s < n; ++s) {
    if (alive[s] == 0) dead.push_back(static_cast<std::uint32_t>(s));
  }
  return dead;
}

}  // namespace

ShardedIndex::ShardedIndex(IndexColumnsView base, int shard_bits)
    : base_(base) {
  const std::uint64_t cells = base_.curve().universe().cell_count();
  const int key_bits =
      cells <= 1 ? 0 : static_cast<int>(std::bit_width(cells - 1));
  shard_bits_ = std::clamp(shard_bits, 0, key_bits);
  const std::size_t count = std::size_t{1} << shard_bits_;
  const int shift = key_bits - shard_bits_;

  key_ranges_.reserve(count);
  shard_row_begin_.reserve(count);
  directories_.reserve(count);
  shards_.reserve(count);

  const std::uint32_t block_rows = base_.block_rows();
  std::uint64_t row = 0;
  for (std::size_t s = 0; s < count; ++s) {
    const index_t lo = static_cast<index_t>(s) << shift;
    const index_t next = static_cast<index_t>(s + 1) << shift;
    key_ranges_.push_back(KeyInterval{lo, next - 1});
    shard_row_begin_.push_back(row);

    // Rows are key-sorted, so the shard's rows are the contiguous run up to
    // the first key of the next shard.
    const std::uint64_t end =
        s + 1 == count ? base_.row_count() : base_.lower_bound_row(next);
    const std::uint64_t rows = end - row;

    const auto keys = base_.keys().subspan(row, rows);
    std::vector<index_t>& dir = directories_.emplace_back();
    if (rows != 0) {
      const std::uint64_t blocks = (rows + block_rows - 1) / block_rows;
      dir.reserve(blocks);
      for (std::uint64_t b = 0; b < blocks; ++b) {
        const std::uint64_t last =
            std::min<std::uint64_t>((b + 1) * std::uint64_t{block_rows}, rows);
        dir.push_back(keys[last - 1]);
      }
    }
    shards_.emplace_back(base_.curve(), block_rows, keys,
                         base_.ids().subspan(row, rows),
                         base_.points().subspan(row, rows),
                         std::span<const index_t>(dir));
    row = end;
  }
}

std::vector<RangeQueryResult> run_range_queries(
    const ShardedIndex& index, std::span<const Box> boxes,
    const MultiQueryOptions& options) {
  const std::size_t shard_count = index.shard_count();
  if (shard_count <= 1) {
    return run_range_queries(index.base(), boxes, options);
  }
  const std::uint64_t query_count = boxes.size();

  // Cell (s, q) = per-shard partial answer; laid out shard-major so a chunk
  // of consecutive cells reuses one engine per shard run.
  std::vector<RangeQueryResult> cells(shard_count * query_count);
  parallel_for_chunks(
      pool_of(options), cells.size(), normalized_grain(options),
      [&](const ChunkRange& range) {
        std::size_t engine_shard = shard_count;  // no engine yet
        std::optional<RangeScanEngine> engine;
        for (std::uint64_t c = range.begin; c < range.end; ++c) {
          const std::size_t s = c / query_count;
          const std::uint64_t q = c % query_count;
          if (s != engine_shard) {
            engine.emplace(index.shard(s));
            engine_shard = s;
          }
          engine->scan(boxes[q], &cells[c].ids, &cells[c].stats);
        }
      });

  // Shards ascend in key order and every shard's ids come out in row order,
  // so concatenating in shard order reproduces the unsharded id sequence
  // exactly.
  std::vector<RangeQueryResult> results(query_count);
  for (std::uint64_t q = 0; q < query_count; ++q) {
    RangeQueryResult& merged = results[q];
    std::uint64_t total = 0;
    for (std::size_t s = 0; s < shard_count; ++s) {
      total += cells[s * query_count + q].ids.size();
    }
    merged.ids.reserve(total);
    for (std::size_t s = 0; s < shard_count; ++s) {
      const RangeQueryResult& part = cells[s * query_count + q];
      merged.ids.insert(merged.ids.end(), part.ids.begin(), part.ids.end());
      merged.stats.rows_returned += part.stats.rows_returned;
      merged.stats.rows_scanned += part.stats.rows_scanned;
      merged.stats.runs_touched += part.stats.runs_touched;
      merged.stats.nodes_visited += part.stats.nodes_visited;
      merged.stats.used_subtree |= part.stats.used_subtree;
    }
    // The cover is a property of the box, computed identically in every
    // shard; report it once, not shard_count times.
    merged.stats.runs_in_cover = cells[q].stats.runs_in_cover;
  }
  return results;
}

std::vector<KnnQueryResult> run_knn_queries(const ShardedIndex& index,
                                            std::span<const Point> queries,
                                            std::uint32_t k,
                                            const MultiQueryOptions& options) {
  const std::size_t shard_count = index.shard_count();
  if (shard_count <= 1) {
    return run_knn_queries(index.base(), queries, k, options);
  }
  const std::uint64_t query_count = queries.size();

  std::vector<KnnQueryResult> cells(shard_count * query_count);
  parallel_for_chunks(
      pool_of(options), cells.size(), normalized_grain(options),
      [&](const ChunkRange& range) {
        std::size_t engine_shard = shard_count;
        std::optional<KnnEngine> engine;
        for (std::uint64_t c = range.begin; c < range.end; ++c) {
          const std::size_t s = c / query_count;
          const std::uint64_t q = c % query_count;
          if (s != engine_shard) {
            engine.emplace(index.shard(s));
            engine_shard = s;
          }
          cells[c].neighbors =
              engine->query(queries[q], k, &cells[c].stats);
        }
      });

  // Each shard returns its exact top-k; the global top-k is the best k of
  // the union under the engines' total candidate order (squared distance,
  // key, id) — within equal keys row order is id order, so this matches the
  // unsharded (distance, key, row) order bit for bit.
  std::vector<KnnQueryResult> results(query_count);
  std::vector<KnnNeighbor> pool;
  for (std::uint64_t q = 0; q < query_count; ++q) {
    KnnQueryResult& merged = results[q];
    pool.clear();
    bool all_certified = true;
    for (std::size_t s = 0; s < shard_count; ++s) {
      const KnnQueryResult& part = cells[s * query_count + q];
      pool.insert(pool.end(), part.neighbors.begin(), part.neighbors.end());
      merged.stats.nodes_expanded += part.stats.nodes_expanded;
      merged.stats.frontier_pushes += part.stats.frontier_pushes;
      merged.stats.rows_scanned += part.stats.rows_scanned;
      merged.stats.used_subtree |= part.stats.used_subtree;
      all_certified &= part.stats.certified;
    }
    merged.stats.certified = all_certified;
    std::sort(pool.begin(), pool.end(),
              [](const KnnNeighbor& a, const KnnNeighbor& b) {
                if (a.sq_dist != b.sq_dist) return a.sq_dist < b.sq_dist;
                if (a.key != b.key) return a.key < b.key;
                return a.id < b.id;
              });
    if (pool.size() > k) pool.resize(k);
    merged.neighbors = pool;
  }
  return results;
}

std::vector<DegradedRangeResult> run_range_queries_degraded(
    const ShardedIndex& index, std::span<const Box> boxes,
    std::span<const std::uint8_t> alive, const MultiQueryOptions& options) {
  const std::vector<std::uint32_t> dead = dead_shards_of(index, alive);
  const std::uint64_t query_count = boxes.size();
  std::vector<DegradedRangeResult> results(query_count);
  if (dead.empty()) {
    std::vector<RangeQueryResult> plain =
        run_range_queries(index, boxes, options);
    for (std::uint64_t q = 0; q < query_count; ++q) {
      results[q].result = std::move(plain[q]);
    }
    return results;
  }

  // Exact overlap: a query needs a dead shard iff its key cover intersects
  // that shard's key range.  The cover is sorted and disjoint, so each dead
  // shard costs one binary search per query.  Cover computation works for
  // every curve family (subtree descent or the enumeration fallback).
  const RangeCoverEngine cover_engine(index.base().curve());
  CoverWorkspace ws;
  for (std::uint64_t q = 0; q < query_count; ++q) {
    const std::span<const KeyInterval> cover =
        cover_engine.cover(boxes[q], ws);
    results[q].result.stats.runs_in_cover = cover.size();
    for (const std::uint32_t d : dead) {
      const KeyInterval range = index.shard_key_range(d);
      const auto it = std::lower_bound(
          cover.begin(), cover.end(), range.lo,
          [](const KeyInterval& interval, index_t lo) {
            return interval.hi < lo;
          });
      if (it != cover.end() && it->lo <= range.hi) {
        results[q].dead_overlap.push_back(d);
      }
    }
  }

  // Fan out over live shards only; concatenation in (live) shard order is
  // still global row order over the surviving rows.
  std::vector<std::uint32_t> live;
  for (std::size_t s = 0; s < index.shard_count(); ++s) {
    if (s >= alive.size() || alive[s] != 0) {
      live.push_back(static_cast<std::uint32_t>(s));
    }
  }
  std::vector<RangeQueryResult> cells(live.size() * query_count);
  parallel_for_chunks(
      pool_of(options), cells.size(), normalized_grain(options),
      [&](const ChunkRange& range) {
        std::size_t engine_shard = index.shard_count();
        std::optional<RangeScanEngine> engine;
        for (std::uint64_t c = range.begin; c < range.end; ++c) {
          const std::size_t s = live[c / query_count];
          const std::uint64_t q = c % query_count;
          if (s != engine_shard) {
            engine.emplace(index.shard(s));
            engine_shard = s;
          }
          engine->scan(boxes[q], &cells[c].ids, &cells[c].stats);
        }
      });
  for (std::uint64_t q = 0; q < query_count; ++q) {
    RangeQueryResult& merged = results[q].result;
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < live.size(); ++i) {
      total += cells[i * query_count + q].ids.size();
    }
    merged.ids.reserve(total);
    for (std::size_t i = 0; i < live.size(); ++i) {
      const RangeQueryResult& part = cells[i * query_count + q];
      merged.ids.insert(merged.ids.end(), part.ids.begin(), part.ids.end());
      merged.stats.rows_returned += part.stats.rows_returned;
      merged.stats.rows_scanned += part.stats.rows_scanned;
      merged.stats.runs_touched += part.stats.runs_touched;
      merged.stats.nodes_visited += part.stats.nodes_visited;
      merged.stats.used_subtree |= part.stats.used_subtree;
    }
  }
  return results;
}

std::vector<DegradedKnnResult> run_knn_queries_degraded(
    const ShardedIndex& index, std::span<const Point> queries, std::uint32_t k,
    std::span<const std::uint8_t> alive, const MultiQueryOptions& options) {
  const std::vector<std::uint32_t> dead = dead_shards_of(index, alive);
  const std::uint64_t query_count = queries.size();
  std::vector<DegradedKnnResult> results(query_count);
  if (dead.empty()) {
    std::vector<KnnQueryResult> plain =
        run_knn_queries(index, queries, k, options);
    for (std::uint64_t q = 0; q < query_count; ++q) {
      results[q].result = std::move(plain[q]);
    }
    return results;
  }

  std::vector<std::uint32_t> live;
  for (std::size_t s = 0; s < index.shard_count(); ++s) {
    if (s >= alive.size() || alive[s] != 0) {
      live.push_back(static_cast<std::uint32_t>(s));
    }
  }
  std::vector<KnnQueryResult> cells(live.size() * query_count);
  parallel_for_chunks(
      pool_of(options), cells.size(), normalized_grain(options),
      [&](const ChunkRange& range) {
        std::size_t engine_shard = index.shard_count();
        std::optional<KnnEngine> engine;
        for (std::uint64_t c = range.begin; c < range.end; ++c) {
          const std::size_t s = live[c / query_count];
          const std::uint64_t q = c % query_count;
          if (s != engine_shard) {
            engine.emplace(index.shard(s));
            engine_shard = s;
          }
          cells[c].neighbors = engine->query(queries[q], k, &cells[c].stats);
        }
      });
  std::vector<KnnNeighbor> pool;
  for (std::uint64_t q = 0; q < query_count; ++q) {
    KnnQueryResult& merged = results[q].result;
    // Conservative: any dead shard could hold a closer neighbor for any
    // query point, so every query reports every dead shard and no partial
    // answer is certified.
    results[q].dead_overlap = dead;
    pool.clear();
    for (std::size_t i = 0; i < live.size(); ++i) {
      const KnnQueryResult& part = cells[i * query_count + q];
      pool.insert(pool.end(), part.neighbors.begin(), part.neighbors.end());
      merged.stats.nodes_expanded += part.stats.nodes_expanded;
      merged.stats.frontier_pushes += part.stats.frontier_pushes;
      merged.stats.rows_scanned += part.stats.rows_scanned;
      merged.stats.used_subtree |= part.stats.used_subtree;
    }
    merged.stats.certified = false;
    std::sort(pool.begin(), pool.end(),
              [](const KnnNeighbor& a, const KnnNeighbor& b) {
                if (a.sq_dist != b.sq_dist) return a.sq_dist < b.sq_dist;
                if (a.key != b.key) return a.key < b.key;
                return a.id < b.id;
              });
    if (pool.size() > k) pool.resize(k);
    merged.neighbors = pool;
  }
  return results;
}

}  // namespace sfc
