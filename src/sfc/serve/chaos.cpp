#include "sfc/serve/chaos.h"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "sfc/index/knn.h"
#include "sfc/index/point_index.h"
#include "sfc/index/range_scan.h"
#include "sfc/obs/histogram.h"
#include "sfc/rng/sampling.h"
#include "sfc/rng/xoshiro256.h"
#include "sfc/serve/serve_error.h"
#include "sfc/store/index_store.h"

// Crash cycles fork from a threaded process, which ThreadSanitizer does not
// model; the harness degrades to crash-free soaking under TSAN.
#if defined(__SANITIZE_THREAD__)
#define SFC_CHAOS_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SFC_CHAOS_TSAN 1
#endif
#endif

namespace sfc {

namespace {

using Clock = std::chrono::steady_clock;

/// Reference answers of one dataset, indexed by trace position (only the
/// entry matching the query's kind is meaningful).
struct RefAnswers {
  std::vector<std::vector<std::uint32_t>> range_ids;
  std::vector<std::vector<KnnNeighbor>> knn;
};

RefAnswers reference_answers(const IndexColumnsView& view,
                             const QueryTrace& trace) {
  RefAnswers refs;
  refs.range_ids.resize(trace.size());
  refs.knn.resize(trace.size());
  RangeScanEngine range(view);
  KnnEngine knn(view);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const TraceQuery& q = trace.queries[i];
    if (q.kind == TraceQuery::Kind::kRange) {
      RangeQueryResult r;
      range.scan(q.box(), &r.ids, &r.stats);
      refs.range_ids[i] = std::move(r.ids);
    } else {
      KnnQueryResult r;
      refs.knn[i] = knn.query(q.point, q.k, &r.stats);
    }
  }
  return refs;
}

constexpr int kDatasetA = 1;
constexpr int kDatasetB = 2;

/// The answer oracle: pins epochs to datasets as distinguishing answers
/// arrive and convicts answers that match neither their epoch's dataset nor
/// (while unpinned) either dataset.  Thread-safe; the pin race is harmless
/// because both racers derived the same verdict from bit-identical data.
class EpochOracle {
 public:
  /// `match` is a bitmask: kDatasetA set = answer equals dataset A's
  /// reference, kDatasetB likewise.  Returns false iff the answer is wrong.
  bool check(std::uint64_t epoch, int match) {
    std::lock_guard<std::mutex> lock(mutex_);
    epochs_.insert(epoch);
    const auto it = pinned_.find(epoch);
    if (it != pinned_.end()) return (match & it->second) != 0;
    if (match == 0) return false;
    if (match == kDatasetA || match == kDatasetB) pinned_[epoch] = match;
    return true;  // matches at least one dataset; both = not distinguishing
  }

  std::uint64_t epochs_observed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return epochs_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::map<std::uint64_t, int> pinned_;
  std::set<std::uint64_t> epochs_;
};

struct ClientTally {
  std::uint64_t queries = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t retries = 0;
  std::uint64_t wrong_answers = 0;
  std::vector<double> latencies_us;
  std::exception_ptr error;
};

/// One client: loops its strided trace slice until `deadline`, replaying
/// through the served (epoch-stamped) entry points with the replay_trace
/// retry policy, checking every accepted answer against the oracle.
void chaos_client(IndexServer& server, const QueryTrace& trace,
                  const ChaosOptions& options, const RefAnswers& ref_a,
                  const RefAnswers& ref_b, EpochOracle& oracle,
                  std::uint32_t client, std::uint32_t clients,
                  Clock::time_point deadline, ClientTally& tally) {
  try {
    while (Clock::now() < deadline) {
      for (std::size_t q = client; q < trace.size(); q += clients) {
        if (Clock::now() >= deadline) break;
        const TraceQuery& query = trace.queries[q];
        ++tally.queries;
        const auto begin = Clock::now();
        enum class Outcome : std::uint8_t { kAccepted, kRejected, kTimedOut };
        Outcome outcome = Outcome::kAccepted;
        for (std::uint32_t attempt = 0;; ++attempt) {
          try {
            int match = 0;
            std::uint64_t epoch = 0;
            if (query.kind == TraceQuery::Kind::kRange) {
              const ServedRange served = server.range_query_served(query.box());
              epoch = served.epoch;
              if (served.result.ids == ref_a.range_ids[q]) match |= kDatasetA;
              if (served.result.ids == ref_b.range_ids[q]) match |= kDatasetB;
            } else {
              const ServedKnn served =
                  server.knn_query_served(query.point, query.k);
              epoch = served.epoch;
              if (served.result.neighbors == ref_a.knn[q]) match |= kDatasetA;
              if (served.result.neighbors == ref_b.knn[q]) match |= kDatasetB;
            }
            if (!oracle.check(epoch, match)) ++tally.wrong_answers;
            outcome = Outcome::kAccepted;
            tally.latencies_us.push_back(
                std::chrono::duration<double, std::micro>(Clock::now() - begin)
                    .count());
            break;
          } catch (const ServerOverloadError&) {
            outcome = Outcome::kRejected;
          } catch (const ServerTimeoutError&) {
            outcome = Outcome::kTimedOut;
          }
          if (attempt >= options.max_retries) break;
          ++tally.retries;
          const std::uint64_t backoff_us = std::min<std::uint64_t>(
              options.backoff_max_us,
              static_cast<std::uint64_t>(options.backoff_base_us)
                  << std::min<std::uint32_t>(attempt, 20));
          std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
        }
        switch (outcome) {
          case Outcome::kAccepted: ++tally.accepted; break;
          case Outcome::kRejected: ++tally.rejected; break;
          case Outcome::kTimedOut: ++tally.timed_out; break;
        }
      }
    }
  } catch (...) {
    tally.error = std::current_exception();
  }
}

/// Runs `clients` chaos clients until `deadline` and folds their tallies
/// into `report`; returns the phase's accepted latencies.
std::vector<double> run_phase(IndexServer& server, const QueryTrace& trace,
                              const ChaosOptions& options,
                              const RefAnswers& ref_a, const RefAnswers& ref_b,
                              EpochOracle& oracle, Clock::time_point deadline,
                              ChaosReport& report) {
  const std::uint32_t clients = std::max<std::uint32_t>(1, options.clients);
  std::vector<ClientTally> tallies(clients);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::uint32_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      chaos_client(server, trace, options, ref_a, ref_b, oracle, c, clients,
                   deadline, tallies[c]);
    });
  }
  for (std::thread& t : threads) t.join();
  std::vector<double> latencies;
  for (ClientTally& tally : tallies) {
    if (tally.error) std::rethrow_exception(tally.error);
    report.queries += tally.queries;
    report.accepted += tally.accepted;
    report.rejected += tally.rejected;
    report.timed_out += tally.timed_out;
    report.retries += tally.retries;
    report.wrong_answers += tally.wrong_answers;
    latencies.insert(latencies.end(), tally.latencies_us.begin(),
                     tally.latencies_us.end());
  }
  return latencies;
}

}  // namespace

ChaosReport run_chaos(const ChaosOptions& options) {
  const CurvePtr curve = make_curve(options.descriptor);
  const Universe& universe = curve->universe();

  // Two datasets with the same curve but different points: reloads between
  // them change the right answers, which is what makes a stale or torn read
  // *detectable* rather than coincidentally correct.
  const auto draw_points = [&](std::uint64_t seed) {
    Xoshiro256 rng(seed);
    std::vector<Point> points;
    points.reserve(options.points);
    for (std::uint64_t i = 0; i < options.points; ++i) {
      points.push_back(random_cell(universe, rng));
    }
    return points;
  };
  IndexBuildOptions build;
  build.block_rows = options.block_rows;
  const std::vector<Point> points_a = draw_points(options.seed);
  const std::vector<Point> points_b =
      draw_points(options.seed ^ 0x9e3779b97f4a7c15ULL);
  const PointIndex index_a = PointIndex::build(*curve, points_a, build);
  const PointIndex index_b = PointIndex::build(*curve, points_b, build);

  QueryTrace trace = options.trace;
  if (trace.empty()) {
    TraceGenOptions gen;
    gen.count = 512;
    gen.box_extent = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(universe.side() / 8));
    gen.knn_k = 8;
    gen.seed = options.seed;
    trace = generate_trace(universe, gen);
  }
  const RefAnswers ref_a = reference_answers(index_a.view(), trace);
  const RefAnswers ref_b = reference_answers(index_b.view(), trace);

  write_index_file(options.path, index_a, options.descriptor);

  ChaosReport report;
  const auto soak_begin = Clock::now();
  {
    IndexServer server(options.path, options.server);
    EpochOracle oracle;

    // Phase 1: no-reload baseline — same clients, same trace, quiet writer.
    const double baseline_s = std::max(0.5, options.duration_s / 5.0);
    std::vector<double> baseline_latencies = run_phase(
        server, trace, options, ref_a, ref_b, oracle,
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(baseline_s)),
        report);
    report.baseline_p99_us = nearest_rank_percentile(baseline_latencies, 0.99);

    // Phase 2: the soak — writer rewrites A/B and reloads on a cadence,
    // with optional seeded crash cycles, while the clients keep replaying.
    std::uint32_t crash_every = options.crash_every;
#ifdef SFC_CHAOS_TSAN
    crash_every = 0;
#endif
    const auto soak_deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(options.duration_s));
    std::atomic<std::uint64_t> torn{0};
    std::atomic<std::uint64_t> crash_cycles{0};
    std::atomic<std::uint64_t> crashed_writes{0};
    std::thread writer([&] {
      bool write_b = true;
      std::uint64_t rewrites = 0;
      Xoshiro256 wrng(options.seed ^ 0x517cc1b727220a95ULL);
      while (Clock::now() < soak_deadline) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options.reload_every_ms));
        ++rewrites;
        const PointIndex& next = write_b ? index_b : index_a;
        if (crash_every > 0 && rewrites % crash_every == 0) {
          // Crash cycle: the child arms the kill countdown (drawn in the
          // parent so the writer's rng stream stays deterministic) and dies
          // at that write-path syscall; the parent then proves the served
          // path still reloads — the crash-safe protocol guarantees the old
          // or the new complete file, never a torn one.
          const int countdown = 1 + static_cast<int>(wrng.next_below(24));
          const ::pid_t pid = ::fork();
          if (pid == 0) {
            store_testing::write_kill_countdown.store(countdown);
            try {
              write_index_file(options.path, next, options.descriptor);
            } catch (...) {
            }
            ::_exit(0);
          }
          ++crash_cycles;
          if (pid > 0) {
            int status = 0;
            ::waitpid(pid, &status, 0);
            if (WIFEXITED(status) &&
                WEXITSTATUS(status) == store_testing::kKillExitCode) {
              ++crashed_writes;
            }
          }
          try {
            (void)server.reload(options.path);
          } catch (const ReloadError&) {
            ++torn;
          }
        }
        try {
          write_index_file(options.path, next, options.descriptor);
          (void)server.reload(options.path);
          write_b = !write_b;
        } catch (const ReloadError&) {
          ++torn;
        }
      }
    });
    std::vector<double> soak_latencies =
        run_phase(server, trace, options, ref_a, ref_b, oracle, soak_deadline,
                  report);
    writer.join();
    report.soak_p99_us = nearest_rank_percentile(soak_latencies, 0.99);
    report.torn_files = torn.load();
    report.crash_cycles = crash_cycles.load();
    report.crashed_writes = crashed_writes.load();
    report.epochs_observed = oracle.epochs_observed();

    server.stop();
    const ServerHealth health = server.health();
    report.reloads = health.reloads;
    report.failed_reloads = health.failed_reloads;
  }
  report.wall_seconds =
      std::chrono::duration<double>(Clock::now() - soak_begin).count();
  report.identity_ok =
      report.accepted + report.rejected + report.timed_out == report.queries;
  return report;
}

}  // namespace sfc
