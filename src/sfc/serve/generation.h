// Generation-managed index storage: the serving-continuity seam.
//
// Zero-downtime serving means an index file can be replaced while queries are
// in flight.  The mechanism is refcounted immutable generations: an
// IndexGeneration bundles one validated storage epoch — the MappedIndex, the
// ShardedIndex built over it, the per-shard liveness verdicts, and a
// monotonically increasing epoch id — behind a shared_ptr that in-flight
// batches pin for as long as they execute.  GenerationManager::reload
// validates a candidate file *fully* before anything changes, then swaps the
// active pointer; the old generation keeps serving every batch that already
// pinned it and unmaps exactly when its refcount reaches zero.  A failed
// validation throws a typed ReloadError and leaves the old generation active:
// a bad push is an operator event, never an outage.
//
// Degraded mode rides the same open path: with allow_degraded, per-shard
// verification marks corrupt shards dead instead of failing the whole open
// (as long as the corruption is localizable — an unattributable mismatch
// still rejects the file), so a partially-damaged index serves full answers
// for queries that provably never needed the dead rows and typed
// PartialResultErrors for the rest.  Reloading a repaired file resurrects
// the shards, because liveness is a property of the generation, not the
// server.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "sfc/serve/sharded_index.h"
#include "sfc/store/index_store.h"

namespace sfc {

/// One immutable storage epoch: a validated index (mapped from a file, or
/// wrapping caller-owned storage) plus the sharded view and per-shard
/// liveness built over it.  Never mutated after the factory returns, so any
/// number of batch executions may query it concurrently without
/// synchronization; the shared_ptr refcount is the only lifetime mechanism
/// (the mapping unmaps when the last pin drops).
class IndexGeneration {
 public:
  /// Opens and fully validates `path`.  With allow_degraded = false this is
  /// a strict open: any corruption throws StoreError.  With allow_degraded =
  /// true, corruption that per-shard verification can localize marks those
  /// shards dead and the open succeeds degraded; corruption that cannot be
  /// attributed to a shard (an ids-column mismatch — ids carry no semantic
  /// invariant a shard check could catch — or a checksum mismatch no shard
  /// check explains), or every shard dead, still throws.
  static std::shared_ptr<const IndexGeneration> open(const std::string& path,
                                                     int shard_bits,
                                                     std::uint64_t epoch,
                                                     bool allow_degraded);

  /// Wraps caller-owned storage (e.g. an in-memory PointIndex) as a fully
  /// live generation; the storage must outlive the generation.
  static std::shared_ptr<const IndexGeneration> wrap(IndexColumnsView view,
                                                     int shard_bits,
                                                     std::uint64_t epoch);

  std::uint64_t epoch() const { return epoch_; }
  /// The path this generation was opened from; empty for wrap().
  const std::string& path() const { return path_; }
  const ShardedIndex& sharded() const { return *sharded_; }

  bool degraded() const { return dead_count_ != 0; }
  std::size_t dead_shard_count() const { return dead_count_; }
  /// Per-shard liveness (1 = alive), parallel to sharded().shard(s).
  const std::vector<std::uint8_t>& shard_alive() const { return shard_alive_; }
  /// Per-shard verification failure (empty string for live shards).
  const std::vector<std::string>& shard_errors() const { return shard_errors_; }

 private:
  IndexGeneration() = default;

  std::uint64_t epoch_ = 0;
  std::string path_;
  // mapped_ declared before sharded_: the sharded view points into the
  // mapping, so it must be destroyed first (reverse declaration order).
  std::optional<MappedIndex> mapped_;
  std::optional<ShardedIndex> sharded_;
  std::vector<std::uint8_t> shard_alive_;
  std::vector<std::string> shard_errors_;
  std::size_t dead_count_ = 0;
};

/// The swap point: hands out the active generation and replaces it
/// atomically.  reload() does all validation *before* taking the swap lock,
/// so readers never observe a half-validated generation and a failed reload
/// provably cannot disturb the active one.  Epochs increase monotonically
/// across successful and failed reloads alike.
class GenerationManager {
 public:
  explicit GenerationManager(std::shared_ptr<const IndexGeneration> initial);

  /// The current generation; callers keep the returned shared_ptr for the
  /// duration of any use (it is the pin that defers unmap).
  std::shared_ptr<const IndexGeneration> active() const;

  /// Opens + validates `path` as a new generation and makes it active.
  /// Throws ReloadError on any failure, leaving the previous generation
  /// active and untouched.  Returns the new generation.
  std::shared_ptr<const IndexGeneration> reload(const std::string& path,
                                                int shard_bits,
                                                bool allow_degraded);

  std::uint64_t reloads() const;
  std::uint64_t failed_reloads() const;

 private:
  mutable std::mutex mutex_;
  std::shared_ptr<const IndexGeneration> active_;
  std::uint64_t next_epoch_ = 1;
  std::uint64_t reloads_ = 0;
  std::uint64_t failed_reloads_ = 0;
};

}  // namespace sfc
