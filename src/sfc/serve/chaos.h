// Chaos soak harness: serving correctness under continuous replacement.
//
// The zero-downtime claim is only worth what survives adversarial timing:
// this harness replays a query trace at high client concurrency while a
// writer thread continuously rewrites the served index file — alternating
// between two datasets so every reload *changes the right answers* — and
// triggers server reloads, optionally interleaving seeded kill-at-a-random-
// syscall-point writer crashes (fork a child, arm the store layer's write
// kill countdown, let it die mid-write, then prove the path still reloads).
//
// The gate is exact, not statistical: every accepted answer is stamped with
// the epoch it was served under and must be bit-identical to the reference
// answers of the dataset that epoch serves.  Which dataset an epoch serves is
// discovered from the answers themselves (a distinguishing query pins the
// epoch to dataset A or B; once pinned, every answer under that epoch must
// match that dataset) — no writer bookkeeping, so the check cannot be fooled
// by the race it is hunting.  Alongside: the admission identity
// accepted + rejected + timed_out == queries must hold, no reload may fail
// (a crash-interrupted write must leave the old or the new complete file,
// never a torn one), and the accepted p99 during reloads must stay within a
// factor of the no-reload baseline measured first.
#pragma once

#include <cstdint>
#include <string>

#include "sfc/curves/curve_factory.h"
#include "sfc/serve/server.h"
#include "sfc/serve/trace.h"

namespace sfc {

struct ChaosOptions {
  /// Curve identity of both datasets (family/dim/side/seed).
  CurveDescriptor descriptor;
  /// Points per dataset; dataset A draws from `seed`, dataset B from a
  /// derived seed, so the two datasets answer most queries differently.
  std::uint64_t points = 20000;
  std::uint64_t seed = 1;
  std::uint32_t block_rows = 256;
  /// Served index file path (created by the harness; rewritten throughout).
  std::string path;
  /// Query trace to replay; empty = a generated mixed trace of 512 queries.
  QueryTrace trace;
  std::uint32_t clients = 8;
  /// Soak length in seconds (clients loop the trace until the clock runs
  /// out).  The no-reload baseline phase runs first for ~1/5 of this
  /// (minimum 0.5 s).
  double duration_s = 5.0;
  /// Writer cadence: rewrite the file + reload the server this often.
  std::uint32_t reload_every_ms = 100;
  /// Every Nth rewrite first runs a crash cycle: a forked child starts the
  /// same write with a seeded kill countdown armed and dies at that syscall,
  /// after which the parent proves the path still reloads (old or new
  /// complete file — a ReloadError here is a torn_files gate failure).
  /// 0 disables crash cycles.  Forcibly disabled under ThreadSanitizer
  /// (fork from a threaded process is outside TSAN's supported model).
  std::uint32_t crash_every = 0;
  /// Client retry policy on shed load (ServerOverloadError /
  /// ServerTimeoutError), as in replay_trace.
  std::uint32_t max_retries = 3;
  std::uint32_t backoff_base_us = 200;
  std::uint32_t backoff_max_us = 20000;
  /// Server configuration (shard_bits, batching, queue bound, deadlines).
  ServerOptions server;
};

struct ChaosReport {
  std::uint64_t queries = 0;    ///< offered queries across all clients
  std::uint64_t accepted = 0;   ///< answered; every one checked bit-exactly
  std::uint64_t rejected = 0;   ///< shed after retries: overload
  std::uint64_t timed_out = 0;  ///< shed after retries: deadline
  std::uint64_t retries = 0;
  /// Accepted answers that matched neither their epoch's pinned dataset nor
  /// (for unpinned epochs) either dataset — the forbidden outcome.
  std::uint64_t wrong_answers = 0;
  std::uint64_t reloads = 0;         ///< successful generation swaps
  std::uint64_t failed_reloads = 0;  ///< ReloadErrors observed by the writer
  std::uint64_t crash_cycles = 0;    ///< forked writer crash cycles run
  std::uint64_t crashed_writes = 0;  ///< cycles where the child actually died
  /// Reload failures after a crash cycle or rewrite — a torn file escaped
  /// the crash-safe write protocol (gate failure).
  std::uint64_t torn_files = 0;
  std::uint64_t epochs_observed = 0;  ///< distinct epochs in accepted answers
  bool identity_ok = false;  ///< accepted + rejected + timed_out == queries
  double baseline_p99_us = 0.0;  ///< accepted p99, no-reload phase
  double soak_p99_us = 0.0;      ///< accepted p99 while reloads are landing
  double wall_seconds = 0.0;

  /// The chaos gate.  p99_factor bounds soak_p99 against the baseline (the
  /// baseline is floored at 2000 us so microsecond-scale baselines do not
  /// turn scheduler noise into failures).
  bool clean(double p99_factor) const {
    const double floor_us = 2000.0;
    const double bound =
        p99_factor * (baseline_p99_us < floor_us ? floor_us : baseline_p99_us);
    return wrong_answers == 0 && torn_files == 0 && identity_ok &&
           accepted > 0 && (soak_p99_us <= bound);
  }
};

/// Runs the full chaos soak: build datasets, write A, serve, baseline
/// replay, then the soak with the writer thread (and optional crash cycles)
/// racing the clients.  Deterministic in its inputs up to thread/OS timing;
/// the *correctness* verdicts (wrong_answers, torn_files, identity_ok) are
/// timing-independent.  Throws StoreError/TraceError on setup failures.
ChaosReport run_chaos(const ChaosOptions& options);

}  // namespace sfc
