// Curve-contiguous sharding of an index columns view.
//
// Splitting by the *leading* bits of the curve key partitions the rows into
// 2^shard_bits contiguous key ranges — and, because rows are key-sorted,
// into contiguous row ranges too.  Each shard is therefore just a slice of
// the base columns (zero copies of keys/ids/points) plus its own small block
// directory rebuilt over the slice, packaged as the same IndexColumnsView
// every engine queries.  The paper's clustering results are why this is the
// right split: curve-contiguous shards inherit the curve's proximity
// preservation, so a box or kNN query touches few shards and each shard's
// scan stays as dense as the unsharded one.
//
// Queries over the sharded index fan out per shard and merge:
//   - range scans concatenate per-shard id runs in shard order (shards are
//     ascending in key, so concatenation *is* global row order);
//   - kNN merges the per-shard top-k under the global candidate order
//     (squared distance, key, id) — within equal keys, row order is id
//     order, so this is exactly the unsharded (distance, key, row) order.
// Both are bit-identical to the unsharded engines; tests enforce it.
#pragma once

#include <cstdint>
#include <vector>

#include "sfc/index/columns_view.h"
#include "sfc/index/executor.h"
#include "sfc/ranges/range_cover.h"

namespace sfc {

/// A sharded, read-only wrapper over any index storage (in-memory PointIndex
/// or mmap-backed MappedIndex — anything that yields an IndexColumnsView).
/// The base storage must outlive the sharded index.
class ShardedIndex {
 public:
  /// Splits `base` into 2^shard_bits curve-contiguous shards.  shard_bits is
  /// clamped to the key width of the universe, so tiny universes simply get
  /// fewer shards; shard_bits = 0 means one shard (the base view itself).
  explicit ShardedIndex(IndexColumnsView base, int shard_bits = 0);

  const IndexColumnsView& base() const { return base_; }
  int shard_bits() const { return shard_bits_; }
  std::size_t shard_count() const { return shards_.size(); }

  /// Shard s as a queryable view (slice of the base columns + own
  /// directory); shards ascend in key order.
  const IndexColumnsView& shard(std::size_t s) const { return shards_[s]; }

  /// Inclusive key range [lo, hi] owned by shard s.
  KeyInterval shard_key_range(std::size_t s) const { return key_ranges_[s]; }

  /// Global (base-view) row index of shard s's first row.
  std::uint64_t shard_row_begin(std::size_t s) const {
    return shard_row_begin_[s];
  }

 private:
  IndexColumnsView base_;
  int shard_bits_ = 0;
  std::vector<KeyInterval> key_ranges_;
  std::vector<std::uint64_t> shard_row_begin_;
  /// Per-shard directories; the element vectors are stable (never resized
  /// after construction) so the shard views can point into them.
  std::vector<std::vector<index_t>> directories_;
  std::vector<IndexColumnsView> shards_;
};

/// Sharded multi-query execution: every query fans out over all shards (each
/// (shard, query) cell is an independent task on the pool), and per-shard
/// results merge deterministically.  Results are bit-identical to the
/// unsharded run_range_queries / run_knn_queries on the base view, for every
/// shard count, thread count, and grain.
std::vector<RangeQueryResult> run_range_queries(
    const ShardedIndex& index, std::span<const Box> boxes,
    const MultiQueryOptions& options = {});

std::vector<KnnQueryResult> run_knn_queries(
    const ShardedIndex& index, std::span<const Point> queries, std::uint32_t k,
    const MultiQueryOptions& options = {});

/// Degraded-mode execution over a partially-dead sharded index.  `alive[s]`
/// (nonzero = alive) marks the shards that passed per-shard verification;
/// dead shards are skipped entirely in the fan-out, and each result carries
/// the sorted ids of the dead shards the query actually needed — empty
/// dead_overlap means the answer is the full, exact answer (the dead data
/// provably could not contribute), so queries away from the corruption keep
/// their full guarantees.
///
/// Range queries decide overlap exactly: the box's key cover is intersected
/// with the dead shards' key ranges.  kNN is conservative: any dead shard is
/// reported for every query (a dead shard could always hold a closer
/// neighbor), and partial kNN answers are never certified.
///
/// With every shard alive both functions delegate to the plain executors and
/// are bit-identical to them.
struct DegradedRangeResult {
  RangeQueryResult result;  ///< merged over live shards only (row order)
  /// Dead shards whose key range the box's cover touches; sorted ascending.
  std::vector<std::uint32_t> dead_overlap;
};

struct DegradedKnnResult {
  KnnQueryResult result;  ///< best k over live shards; not certified global
  std::vector<std::uint32_t> dead_overlap;
};

std::vector<DegradedRangeResult> run_range_queries_degraded(
    const ShardedIndex& index, std::span<const Box> boxes,
    std::span<const std::uint8_t> alive, const MultiQueryOptions& options = {});

std::vector<DegradedKnnResult> run_knn_queries_degraded(
    const ShardedIndex& index, std::span<const Point> queries, std::uint32_t k,
    std::span<const std::uint8_t> alive, const MultiQueryOptions& options = {});

}  // namespace sfc
