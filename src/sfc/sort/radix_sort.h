// Deterministic parallel radix sorts for key-ordered workloads.
//
// Every application pipeline in this repo reduces to "encode points to curve
// keys, then sort by key" (AMR ordering, n-body traversal, range/NN index
// builds); this subsystem makes the sort as fast as the batched encode.  Two
// engines share one deterministic design:
//
//  - 64-bit keys (and doubles): an LSD radix sort with 8-bit digits over
//    fixed-size chunks.  Each chunk counts its own digit histogram and the
//    per-chunk histograms are merged into scatter offsets strictly in
//    (bucket, chunk) order — the same fixed-chunk design as parallel_for.h's
//    deterministic reductions — so the output is stable and bit-identical
//    across any thread count.  Passes whose digit is constant over all keys
//    are skipped, so sorting keys drawn from a universe of 2^b cells costs
//    ~ceil(b/8) scatter passes, not the full key width.
//  - 128-bit keys: an MSD-first hybrid.  A straight LSD sort of u128 keys
//    streams the whole array through memory up to 16 times; the hybrid
//    instead partitions once on the highest discriminating digit (the same
//    deterministic (bucket, chunk) scatter), which leaves each bucket a
//    cache-resident range that the remaining LSD passes sweep without ever
//    touching DRAM again.  Buckets still above the cache threshold (heavy
//    duplicates in the top digits) recurse on the next digit.  Both the
//    partition and the per-bucket tails are stable, so the output permutation
//    is bit-identical to the retained LSD reference
//    (lsd_radix_sort_keys/pairs) for any input and any thread count —
//    verified by tests/sort/test_hybrid_radix.cpp and speed-gated by
//    bench/perf_kernels.cpp in CI.
//
// Below a small size threshold a stable comparison sort (which produces the
// identical permutation) is used instead of the scatter machinery.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sfc/common/int128.h"
#include "sfc/common/types.h"
#include "sfc/curves/space_filling_curve.h"
#include "sfc/parallel/parallel_for.h"
#include "sfc/parallel/thread_pool.h"

namespace sfc {

/// One timed top-level phase of a radix sort (see SortStats).
struct SortPassTiming {
  /// 8-bit digit index the pass examined (0 = least significant byte), or -1
  /// for the hybrid's bucket-tail phase (all per-bucket work combined).
  int digit = 0;
  /// False when the pass only counted and found the digit constant (the
  /// scatter was skipped).
  bool scattered = false;
  /// True for the hybrid's top-level MSD count/partition passes.
  bool msd = false;
  double seconds = 0.0;
};

/// Optional per-pass instrumentation, filled top-to-bottom in execution
/// order.  Only top-level passes are timed (the hybrid's per-bucket tails
/// run concurrently and report as one aggregate entry), so enabling stats
/// never perturbs determinism.
struct SortStats {
  std::vector<SortPassTiming> passes;
};

struct SortOptions {
  /// Worker pool; nullptr means ThreadPool::shared().  The pool size only
  /// affects wall clock, never the output.
  ThreadPool* pool = nullptr;
  /// Elements per chunk.  Chunk boundaries depend only on the input size and
  /// this grain, so they are part of the deterministic contract.
  std::uint64_t grain = kDefaultGrain;
  /// When non-null, cleared and filled with per-pass wall-clock timings
  /// (bench/perf_sort_keys reports them as counters).
  SortStats* stats = nullptr;
};

/// A curve key carrying the position it came from — the record behind every
/// former "sort indices by key comparator" call site.
struct KeyIndex {
  index_t key;
  std::uint32_t index;
};

/// 128-bit-key variant, for composite keys such as
/// (distance bits << 64) | curve key.
struct KeyIndex128 {
  u128 key;
  std::uint32_t index;
};

/// Ascending in-place sort of plain keys.  The u128 overload runs the
/// MSD/LSD hybrid above the comparison threshold.
void radix_sort_keys(std::span<index_t> keys, const SortOptions& options = {});
void radix_sort_keys(std::span<u128> keys, const SortOptions& options = {});

/// Ascending in-place sort of (key, payload) records by key.  Stable:
/// records with equal keys keep their relative order.  The 128-bit overload
/// runs the MSD/LSD hybrid above the comparison threshold.
void radix_sort_pairs(std::span<KeyIndex> items, const SortOptions& options = {});
void radix_sort_pairs(std::span<KeyIndex128> items,
                      const SortOptions& options = {});

/// Retained 16-pass LSD reference paths for the 128-bit hybrid: bit-identical
/// output, no MSD partition.  Kept as the bit-identity oracle
/// (tests/sort/test_hybrid_radix.cpp) and the paired CI bench baseline
/// (bench/perf_kernels.cpp).
void lsd_radix_sort_keys(std::span<u128> keys, const SortOptions& options = {});
void lsd_radix_sort_pairs(std::span<KeyIndex128> items,
                          const SortOptions& options = {});

/// Ascending in-place sort of doubles via the order-preserving bit mapping
/// (negatives and infinities sort numerically; NaNs are not supported).
void radix_sort_doubles(std::span<double> values,
                        const SortOptions& options = {});

/// Fused encode+sort: returns {π(cells[i]), i} sorted by key, ties by i.
/// Encoding runs through index_of_batch chunk by chunk and the first
/// counting pass is folded into the encode sweep, so keys never take a
/// second trip through memory before the scatter passes.  Throws
/// std::length_error if cells.size() >= 2^32 (the payload is a 32-bit
/// position).
std::vector<KeyIndex> sort_by_curve_key(const SpaceFillingCurve& curve,
                                        std::span<const Point> cells,
                                        const SortOptions& options = {});

/// Column layout of a sorted (key, payload) table: keys[r] is the r-th
/// smallest curve key and ids[r] the position in the input it came from.
struct SortedKeyColumns {
  std::vector<index_t> keys;
  std::vector<std::uint32_t> ids;
};

/// Bulk-build entry point of the point index (sfc/index): the same fused
/// encode + first-counting-pass pipeline as sort_by_curve_key, with the
/// sorted records then unzipped (in parallel, on the same chunk grid) into a
/// standalone key column and id column, so index lookups binary-search a
/// dense key array instead of striding over interleaved payloads.
SortedKeyColumns sort_curve_key_columns(const SpaceFillingCurve& curve,
                                        std::span<const Point> cells,
                                        const SortOptions& options = {});

}  // namespace sfc
