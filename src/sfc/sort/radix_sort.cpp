#include "sfc/sort/radix_sort.h"

#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <limits>
#include <stdexcept>
#include <utility>

#include "sfc/common/batch.h"
#include "sfc/obs/metrics.h"
#include "sfc/obs/span_trace.h"

namespace sfc {

namespace {

constexpr std::size_t kBuckets = 256;

/// Below this size the histogram/scatter machinery costs more than it saves;
/// a stable comparison sort produces the identical permutation.
constexpr std::size_t kComparisonFallback = 2048;

/// Max bucket length the hybrid LSD's directly after its MSD partition; a
/// 2^14-record KeyIndex128 bucket is ~384 KiB, comfortably cache-resident.
/// Larger buckets (heavy duplicates in the partition digit) recurse on the
/// next digit instead.
constexpr std::size_t kMsdTailMax = std::size_t{1} << 14;

inline unsigned digit_of(std::uint64_t key, int pass) {
  return static_cast<unsigned>(key >> (8 * pass)) & 0xffu;
}

inline unsigned digit_of(u128 key, int pass) {
  return static_cast<unsigned>(key >> (8 * pass)) & 0xffu;
}

std::uint64_t normalized_grain(const SortOptions& options) {
  return options.grain == 0 ? kDefaultGrain : options.grain;
}

using Clock = std::chrono::steady_clock;

inline double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Runs body(ChunkRange) over the fixed chunk grid; a single chunk executes
/// inline so tiny sorts never pay pool dispatch.
template <typename Body>
void over_chunks(ThreadPool& pool, std::uint64_t count, std::uint64_t grain,
                 std::uint64_t chunks, const Body& body) {
  if (chunks <= 1) {
    body(ChunkRange{0, count, 0});
    return;
  }
  parallel_for_chunks(pool, count, grain, body);
}

/// Core LSD sort.  `first_pass` optionally carries per-chunk pass-0
/// histograms counted by the caller during a fused encode sweep; it must use
/// the same chunk grid (n, grain) as this call.
template <typename Record, typename KeyFn>
void lsd_radix_sort(std::span<Record> items, const KeyFn& key_of,
                    const SortOptions& options,
                    std::vector<std::uint64_t>* first_pass) {
  using Key = std::decay_t<decltype(key_of(items[0]))>;
  constexpr int kPasses = static_cast<int>(sizeof(Key));
  const std::uint64_t n = items.size();
  ThreadPool& pool = options.pool ? *options.pool : ThreadPool::shared();
  const std::uint64_t grain = normalized_grain(options);
  const std::uint64_t chunks = chunk_count(n, grain);
  if (options.stats != nullptr) options.stats->passes.clear();

  std::vector<Record> scratch(items.size());
  Record* src = items.data();
  Record* dst = scratch.data();
  std::vector<std::uint64_t> hist;

  for (int pass = 0; pass < kPasses; ++pass) {
    const Clock::time_point pass_start = Clock::now();
    if (pass == 0 && first_pass != nullptr) {
      hist = std::move(*first_pass);
    } else {
      hist.assign(chunks * kBuckets, 0);
      over_chunks(pool, n, grain, chunks, [&](const ChunkRange& range) {
        std::uint64_t* row = hist.data() + range.chunk_index * kBuckets;
        for (std::uint64_t i = range.begin; i < range.end; ++i) {
          ++row[digit_of(key_of(src[i]), pass)];
        }
      });
    }

    // Skip the scatter when every key shares this pass's digit (the first
    // nonzero bucket then holds all n elements).
    {
      std::uint64_t first_total = 0;
      for (std::size_t bucket = 0; bucket < kBuckets && first_total == 0;
           ++bucket) {
        for (std::uint64_t c = 0; c < chunks; ++c) {
          first_total += hist[c * kBuckets + bucket];
        }
      }
      if (first_total == n) {
        if (options.stats != nullptr) {
          options.stats->passes.push_back(
              {pass, false, false, seconds_since(pass_start)});
        }
        continue;
      }
    }

    // Convert counts to exclusive start offsets in (bucket, chunk) order.
    // This sequential merge over the fixed chunk grid is what makes the
    // scatter stable and thread-count independent.
    std::uint64_t running = 0;
    for (std::size_t bucket = 0; bucket < kBuckets; ++bucket) {
      for (std::uint64_t c = 0; c < chunks; ++c) {
        std::uint64_t& cell = hist[c * kBuckets + bucket];
        const std::uint64_t count = cell;
        cell = running;
        running += count;
      }
    }

    over_chunks(pool, n, grain, chunks, [&](const ChunkRange& range) {
      std::uint64_t* row = hist.data() + range.chunk_index * kBuckets;
      for (std::uint64_t i = range.begin; i < range.end; ++i) {
        dst[row[digit_of(key_of(src[i]), pass)]++] = src[i];
      }
    });
    std::swap(src, dst);
    if (options.stats != nullptr) {
      options.stats->passes.push_back(
          {pass, true, false, seconds_since(pass_start)});
    }
  }

  if (src != items.data()) {
    // Odd number of scatter passes: the result sits in the scratch buffer.
    over_chunks(pool, n, grain, chunks, [&](const ChunkRange& range) {
      std::copy(src + range.begin, src + range.end, dst + range.begin);
    });
  }
}

/// Sequential LSD over digits [0, top_digit] of data[0..n), using scratch
/// (same length) as the ping-pong buffer.  The result lands back in data.
/// Stable, with the same constant-digit pass skipping as the parallel engine.
template <typename Record, typename KeyFn>
void lsd_tail_sort(Record* data, Record* scratch, std::size_t n, int top_digit,
                   const KeyFn& key_of) {
  Record* src = data;
  Record* dst = scratch;
  std::size_t hist[kBuckets];
  for (int pass = 0; pass <= top_digit; ++pass) {
    std::fill(std::begin(hist), std::end(hist), std::size_t{0});
    for (std::size_t i = 0; i < n; ++i) {
      ++hist[digit_of(key_of(src[i]), pass)];
    }
    std::size_t first_total = 0;
    for (std::size_t bucket = 0; bucket < kBuckets && first_total == 0;
         ++bucket) {
      first_total = hist[bucket];
    }
    if (first_total == n) continue;
    std::size_t running = 0;
    for (std::size_t bucket = 0; bucket < kBuckets; ++bucket) {
      const std::size_t count = hist[bucket];
      hist[bucket] = running;
      running += count;
    }
    for (std::size_t i = 0; i < n; ++i) {
      dst[hist[digit_of(key_of(src[i]), pass)]++] = src[i];
    }
    std::swap(src, dst);
  }
  if (src != data) std::copy(src, src + n, data);
}

/// Sequential MSD step of the hybrid: sorts data[0..n) by digits [0..digit]
/// with the result in data, using scratch as an equal-length aux range.
/// Cache-resident ranges hand off to the LSD tail; constant digits descend
/// without a partition pass.  Stable.
template <typename Record, typename KeyFn>
void msd_sort_seq(Record* data, Record* scratch, std::size_t n, int digit,
                  const KeyFn& key_of) {
  while (digit >= 0) {
    if (n < 2) return;
    if (n <= kMsdTailMax) {
      lsd_tail_sort(data, scratch, n, digit, key_of);
      return;
    }
    std::size_t hist[kBuckets];
    std::fill(std::begin(hist), std::end(hist), std::size_t{0});
    for (std::size_t i = 0; i < n; ++i) {
      ++hist[digit_of(key_of(data[i]), digit)];
    }
    std::size_t first_total = 0;
    for (std::size_t bucket = 0; bucket < kBuckets && first_total == 0;
         ++bucket) {
      first_total = hist[bucket];
    }
    if (first_total == n) {
      --digit;
      continue;
    }
    std::size_t start[kBuckets];
    std::size_t off[kBuckets];
    std::size_t running = 0;
    for (std::size_t bucket = 0; bucket < kBuckets; ++bucket) {
      start[bucket] = running;
      off[bucket] = running;
      running += hist[bucket];
    }
    for (std::size_t i = 0; i < n; ++i) {
      scratch[off[digit_of(key_of(data[i]), digit)]++] = data[i];
    }
    for (std::size_t bucket = 0; bucket < kBuckets; ++bucket) {
      if (hist[bucket] > 1) {
        msd_sort_seq(scratch + start[bucket], data + start[bucket],
                     hist[bucket], digit - 1, key_of);
      }
    }
    std::copy(scratch, scratch + n, data);
    return;
  }
}

/// Top-level MSD/LSD hybrid for wide keys.  Counts high digits (in parallel,
/// on the fixed chunk grid) until it finds the highest discriminating one,
/// partitions on it with the same deterministic (bucket, chunk) scatter the
/// LSD engine uses, then sorts each bucket's tail independently across the
/// pool.  The partition and every tail are stable, so the output permutation
/// is exactly the LSD reference's for any input and any thread count.
template <typename Record, typename KeyFn>
void hybrid_radix_sort(std::span<Record> items, const KeyFn& key_of,
                       const SortOptions& options) {
  using Key = std::decay_t<decltype(key_of(items[0]))>;
  constexpr int kTopDigit = static_cast<int>(sizeof(Key)) - 1;
  const std::uint64_t n = items.size();
  ThreadPool& pool = options.pool ? *options.pool : ThreadPool::shared();
  const std::uint64_t grain = normalized_grain(options);
  const std::uint64_t chunks = chunk_count(n, grain);
  if (options.stats != nullptr) options.stats->passes.clear();

  std::vector<Record> scratch_buf(items.size());
  Record* const data = items.data();
  Record* const scratch = scratch_buf.data();
  std::vector<std::uint64_t> hist;
  std::array<std::uint64_t, kBuckets> totals{};

  int digit = kTopDigit;
  while (digit >= 0) {
    const Clock::time_point pass_start = Clock::now();
    hist.assign(chunks * kBuckets, 0);
    over_chunks(pool, n, grain, chunks, [&](const ChunkRange& range) {
      std::uint64_t* row = hist.data() + range.chunk_index * kBuckets;
      for (std::uint64_t i = range.begin; i < range.end; ++i) {
        ++row[digit_of(key_of(data[i]), digit)];
      }
    });
    totals.fill(0);
    for (std::uint64_t c = 0; c < chunks; ++c) {
      const std::uint64_t* row = hist.data() + c * kBuckets;
      for (std::size_t bucket = 0; bucket < kBuckets; ++bucket) {
        totals[bucket] += row[bucket];
      }
    }
    std::uint64_t first_total = 0;
    for (std::size_t bucket = 0; bucket < kBuckets && first_total == 0;
         ++bucket) {
      first_total = totals[bucket];
    }
    if (first_total == n) {
      // Constant digit: descend, exactly like the LSD engine's pass skip.
      if (options.stats != nullptr) {
        options.stats->passes.push_back(
            {digit, false, true, seconds_since(pass_start)});
      }
      --digit;
      continue;
    }

    // Partition on the discriminating digit in (bucket, chunk) order — the
    // same deterministic merge the LSD engine uses, so the partition is
    // stable and thread-count independent.
    std::uint64_t running = 0;
    for (std::size_t bucket = 0; bucket < kBuckets; ++bucket) {
      for (std::uint64_t c = 0; c < chunks; ++c) {
        std::uint64_t& cell = hist[c * kBuckets + bucket];
        const std::uint64_t count = cell;
        cell = running;
        running += count;
      }
    }
    over_chunks(pool, n, grain, chunks, [&](const ChunkRange& range) {
      std::uint64_t* row = hist.data() + range.chunk_index * kBuckets;
      for (std::uint64_t i = range.begin; i < range.end; ++i) {
        scratch[row[digit_of(key_of(data[i]), digit)]++] = data[i];
      }
    });
    if (options.stats != nullptr) {
      options.stats->passes.push_back(
          {digit, true, true, seconds_since(pass_start)});
    }
    break;
  }
  if (digit < 0) return;  // Every key is identical — already sorted.

  // Per-bucket tails: each bucket is a contiguous stable range of scratch;
  // sort each one independently over the remaining digits and land it back
  // in items.  Buckets never interact, so pool scheduling cannot perturb the
  // output.
  std::array<std::uint64_t, kBuckets + 1> starts;
  starts[0] = 0;
  for (std::size_t bucket = 0; bucket < kBuckets; ++bucket) {
    starts[bucket + 1] = starts[bucket] + totals[bucket];
  }
  const Clock::time_point tails_start = Clock::now();
  parallel_for(
      pool, kBuckets,
      [&](std::uint64_t bucket) {
        const std::uint64_t start = starts[bucket];
        const std::uint64_t count = starts[bucket + 1] - start;
        if (count == 0) return;
        if (count > 1 && digit > 0) {
          msd_sort_seq(scratch + start, data + start,
                       static_cast<std::size_t>(count), digit - 1, key_of);
        }
        std::copy(scratch + start, scratch + start + count, data + start);
      },
      /*grain=*/1);
  if (options.stats != nullptr) {
    options.stats->passes.push_back({-1, true, false,
                                     seconds_since(tails_start)});
  }
}

template <typename Record, typename KeyFn>
void sort_records(std::span<Record> items, const KeyFn& key_of,
                  const SortOptions& options) {
  if (items.size() < 2) return;
  if (items.size() < kComparisonFallback) {
    std::stable_sort(items.begin(), items.end(),
                     [&](const Record& a, const Record& b) {
                       return key_of(a) < key_of(b);
                     });
    return;
  }
  lsd_radix_sort(items, key_of, options, nullptr);
}

/// Maps a double to an unsigned key whose order matches numeric order:
/// negatives have all bits flipped, non-negatives only the sign bit.
std::uint64_t ordered_bits(double value) {
  const auto bits = std::bit_cast<std::uint64_t>(value);
  return bits ^ ((bits >> 63) != 0 ? ~std::uint64_t{0}
                                   : (std::uint64_t{1} << 63));
}

struct SortMetrics {
  MetricsRegistry::Counter sorts;
  MetricsRegistry::Counter elements;
  MetricsRegistry::Histogram sort_us;
  MetricsRegistry::Histogram pass_us;
};

SortMetrics& sort_metrics() {
  static SortMetrics metrics{
      MetricsRegistry::global().counter("sort.sorts"),
      MetricsRegistry::global().counter("sort.elements"),
      MetricsRegistry::global().histogram("sort.sort_us"),
      MetricsRegistry::global().histogram("sort.pass_us"),
  };
  return metrics;
}

/// Observes one public sort entry.  When the caller did not ask for pass
/// timings, attaches a scratch SortStats so the per-pass wall clocks still
/// reach the registry; the body must run against options().  All recording
/// happens in the destructor, with per-pass spans laid end to end from the
/// entry time (passes execute top-to-bottom, so the reconstruction matches
/// the real timeline up to inter-pass gaps).
class SortObsScope {
 public:
  SortObsScope(const char* entry, std::uint64_t n, const SortOptions& original)
      : entry_(entry), n_(n), options_(original) {
#ifndef SFC_OBS_DISABLED
    enabled_ = obs_enabled();
#endif
    if (!enabled_) return;
    if (options_.stats == nullptr) options_.stats = &scratch_;
    options_.stats->passes.clear();
    start_us_ = trace_now_us();
  }

  SortObsScope(const SortObsScope&) = delete;
  SortObsScope& operator=(const SortObsScope&) = delete;

  const SortOptions& options() const { return options_; }

  ~SortObsScope() {
    if (!enabled_) return;
    const double end_us = trace_now_us();
    SortMetrics& metrics = sort_metrics();
    metrics.sorts.add(1);
    metrics.elements.add(n_);
    metrics.sort_us.record_us(end_us - start_us_);
    const std::uint64_t trace_id = next_trace_id();
    TraceSpan sort_span;
    sort_span.trace_id = trace_id;
    sort_span.name = entry_;
    sort_span.category = "sort";
    sort_span.start_us = start_us_;
    sort_span.dur_us = end_us - start_us_;
    sort_span.tid = trace_thread_id();
    sort_span.add_arg("elements", n_);
    sort_span.add_arg("passes", options_.stats->passes.size());
    TraceRing::global().record(sort_span);
    double at_us = start_us_;
    for (const SortPassTiming& pass : options_.stats->passes) {
      const double dur_us = pass.seconds * 1e6;
      metrics.pass_us.record_us(dur_us);
      TraceSpan span;
      span.trace_id = trace_id;
      span.name = "sort_pass";
      span.category = "sort";
      span.start_us = at_us;
      span.dur_us = dur_us;
      span.tid = trace_thread_id();
      span.add_arg("digit", static_cast<std::uint64_t>(std::max(pass.digit, 0)));
      span.add_arg("tail", pass.digit < 0 ? std::uint64_t{1} : std::uint64_t{0});
      span.add_arg("scattered", pass.scattered ? std::uint64_t{1} : std::uint64_t{0});
      span.add_arg("msd", pass.msd ? std::uint64_t{1} : std::uint64_t{0});
      TraceRing::global().record(span);
      at_us += dur_us;
    }
  }

 private:
  const char* entry_;
  std::uint64_t n_ = 0;
  SortOptions options_;
  SortStats scratch_;
  bool enabled_ = false;
  double start_us_ = 0.0;
};

}  // namespace

void radix_sort_keys(std::span<index_t> keys, const SortOptions& options) {
  SortObsScope obs("radix_sort_keys", keys.size(), options);
  // Payload-free keys have no observable stability; plain std::sort beats
  // the fallback stable sort's merge buffer on small inputs.
  if (keys.size() < kComparisonFallback) {
    std::sort(keys.begin(), keys.end());
    return;
  }
  sort_records(keys, [](index_t key) { return key; }, obs.options());
}

void radix_sort_keys(std::span<u128> keys, const SortOptions& options) {
  SortObsScope obs("radix_sort_keys_u128", keys.size(), options);
  if (keys.size() < kComparisonFallback) {
    std::sort(keys.begin(), keys.end());
    return;
  }
  hybrid_radix_sort(keys, [](const u128& key) { return key; }, obs.options());
}

void radix_sort_pairs(std::span<KeyIndex> items, const SortOptions& options) {
  SortObsScope obs("radix_sort_pairs", items.size(), options);
  sort_records(items, [](const KeyIndex& item) { return item.key; },
               obs.options());
}

void radix_sort_pairs(std::span<KeyIndex128> items, const SortOptions& options) {
  SortObsScope obs("radix_sort_pairs_u128", items.size(), options);
  if (items.size() < 2) return;
  if (items.size() < kComparisonFallback) {
    std::stable_sort(items.begin(), items.end(),
                     [](const KeyIndex128& a, const KeyIndex128& b) {
                       return a.key < b.key;
                     });
    return;
  }
  hybrid_radix_sort(items, [](const KeyIndex128& item) { return item.key; },
                    obs.options());
}

void lsd_radix_sort_keys(std::span<u128> keys, const SortOptions& options) {
  SortObsScope obs("lsd_radix_sort_keys_u128", keys.size(), options);
  if (keys.size() < kComparisonFallback) {
    std::sort(keys.begin(), keys.end());
    return;
  }
  lsd_radix_sort(std::span<u128>(keys), [](const u128& key) { return key; },
                 obs.options(), nullptr);
}

void lsd_radix_sort_pairs(std::span<KeyIndex128> items,
                          const SortOptions& options) {
  SortObsScope obs("lsd_radix_sort_pairs_u128", items.size(), options);
  sort_records(items, [](const KeyIndex128& item) { return item.key; },
               obs.options());
}

void radix_sort_doubles(std::span<double> values, const SortOptions& options) {
  SortObsScope obs("radix_sort_doubles", values.size(), options);
  if (values.size() < kComparisonFallback) {
    // Below the radix threshold the bit-mapping detour buys nothing.
    std::sort(values.begin(), values.end());
    return;
  }
  // The doubles themselves are the sort records: each digit pass recomputes
  // the cheap order-preserving bit transform instead of materializing a
  // temporary u64 key buffer, so the only allocation is the sorter's own
  // ping-pong scratch.
  lsd_radix_sort(values, [](double value) { return ordered_bits(value); },
                 obs.options(), nullptr);
}

std::vector<KeyIndex> sort_by_curve_key(const SpaceFillingCurve& curve,
                                        std::span<const Point> cells,
                                        const SortOptions& options) {
  const std::uint64_t n = cells.size();
  if (n > std::numeric_limits<std::uint32_t>::max()) {
    throw std::length_error(
        "sort_by_curve_key: cell count exceeds the 32-bit payload limit");
  }
  SortObsScope obs("sort_by_curve_key", n, options);
  std::vector<KeyIndex> items(n);
  if (n == 0) return items;
  ThreadPool& pool = options.pool ? *options.pool : ThreadPool::shared();
  const std::uint64_t grain = normalized_grain(options);
  const std::uint64_t chunks = chunk_count(n, grain);
  const bool fuse = n >= kComparisonFallback;
  std::vector<std::uint64_t> first_pass(fuse ? chunks * kBuckets : 0, 0);

  // Encode sweep: batch-encode each chunk in slices and, when the radix path
  // will run, count the pass-0 digit histogram while the keys are still hot.
  over_chunks(pool, n, grain, chunks, [&](const ChunkRange& range) {
    std::array<index_t, kEncodeSliceCells> key_buf;
    std::uint64_t* row =
        fuse ? first_pass.data() + range.chunk_index * kBuckets : nullptr;
    for (std::uint64_t at = range.begin; at < range.end; at += kEncodeSliceCells) {
      const std::size_t len =
          static_cast<std::size_t>(std::min<std::uint64_t>(kEncodeSliceCells, range.end - at));
      curve.index_of_batch(cells.subspan(at, len),
                           std::span<index_t>(key_buf.data(), len));
      for (std::size_t j = 0; j < len; ++j) {
        const index_t key = key_buf[j];
        items[at + j] = {key, static_cast<std::uint32_t>(at + j)};
        if (row != nullptr) ++row[static_cast<unsigned>(key) & 0xffu];
      }
    }
  });

  if (!fuse) {
    // Identical permutation to the radix path: stable by key over records
    // whose initial order is index order.
    std::stable_sort(items.begin(), items.end(),
                     [](const KeyIndex& a, const KeyIndex& b) {
                       return a.key < b.key;
                     });
    return items;
  }
  lsd_radix_sort(std::span<KeyIndex>(items),
                 [](const KeyIndex& item) { return item.key; }, obs.options(),
                 &first_pass);
  return items;
}

SortedKeyColumns sort_curve_key_columns(const SpaceFillingCurve& curve,
                                        std::span<const Point> cells,
                                        const SortOptions& options) {
  const std::vector<KeyIndex> records = sort_by_curve_key(curve, cells, options);
  const std::uint64_t n = records.size();
  SortedKeyColumns columns;
  columns.keys.resize(n);
  columns.ids.resize(n);
  if (n == 0) return columns;
  ThreadPool& pool = options.pool ? *options.pool : ThreadPool::shared();
  const std::uint64_t grain = normalized_grain(options);
  over_chunks(pool, n, grain, chunk_count(n, grain),
              [&](const ChunkRange& range) {
                for (std::uint64_t i = range.begin; i < range.end; ++i) {
                  columns.keys[i] = records[i].key;
                  columns.ids[i] = records[i].index;
                }
              });
  return columns;
}

}  // namespace sfc
