# Third-party test/bench dependencies.
#
# Resolution order favors offline operation (the dev container and CI both
# pre-install the packages) and falls back to a pinned FetchContent download
# only as a last resort:
#   GoogleTest:  1. Debian/Ubuntu source tree at /usr/src/googletest
#                2. installed package (find_package CONFIG)
#                3. FetchContent, pinned to v1.14.0 by SHA256
#   benchmark:   1. installed package (find_package CONFIG)
#                2. FetchContent, pinned to v1.8.3 by SHA256
# With SFC_FETCH_MISSING_DEPS=OFF (fully offline hosts), a missing benchmark
# package skips the perf_* targets instead of failing the configure.
include(FetchContent)

option(SFC_FETCH_MISSING_DEPS
  "Download pinned third-party deps when not installed" ON)

set(SFC_GTEST_URL
  "https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz")
set(SFC_GTEST_SHA256
  "8ad598c73ad796e0d8280b082cebd82a630d73e73cd3c70057938a6501bba5d7")
set(SFC_BENCHMARK_URL
  "https://github.com/google/benchmark/archive/refs/tags/v1.8.3.tar.gz")
set(SFC_BENCHMARK_SHA256
  "6bc180a57d23d4d9515519f92b0c83d61b05b5bab188961f36ac7b06b0d9e9ce")

# --- GoogleTest -------------------------------------------------------------
if(SFC_BUILD_TESTS)
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  if(EXISTS "/usr/src/googletest/CMakeLists.txt")
    # Building from the distro source tree keeps gtest ABI-matched with our
    # flags — in particular under -fsanitize builds.
    add_subdirectory(/usr/src/googletest
      "${CMAKE_BINARY_DIR}/_deps/googletest-distro" EXCLUDE_FROM_ALL)
    message(STATUS "SFC: GoogleTest from /usr/src/googletest")
  else()
    find_package(GTest CONFIG QUIET)
    if(GTest_FOUND)
      message(STATUS "SFC: GoogleTest from installed package")
    elseif(SFC_FETCH_MISSING_DEPS)
      FetchContent_Declare(googletest
        URL "${SFC_GTEST_URL}"
        URL_HASH "SHA256=${SFC_GTEST_SHA256}")
      FetchContent_MakeAvailable(googletest)
      message(STATUS "SFC: GoogleTest via FetchContent (pinned v1.14.0)")
    else()
      message(FATAL_ERROR
        "SFC: GoogleTest not found and SFC_FETCH_MISSING_DEPS=OFF — install "
        "libgtest-dev/googletest or disable SFC_BUILD_TESTS")
    endif()
  endif()
  # In-tree builds expose plain `gtest*` targets; normalize to GTest:: names.
  if(TARGET gtest_main AND NOT TARGET GTest::gtest_main)
    add_library(GTest::gtest_main ALIAS gtest_main)
    add_library(GTest::gtest ALIAS gtest)
  endif()
  if(SFC_SANITIZE AND TARGET gtest)
    target_link_libraries(gtest PUBLIC sfc_sanitize)
    target_link_libraries(gtest_main PUBLIC sfc_sanitize)
  endif()
  include(GoogleTest)
endif()

# --- Google Benchmark -------------------------------------------------------
set(SFC_HAVE_BENCHMARK FALSE)
if(SFC_BUILD_BENCH)
  find_package(benchmark CONFIG QUIET)
  if(benchmark_FOUND)
    set(SFC_HAVE_BENCHMARK TRUE)
    message(STATUS "SFC: benchmark from installed package")
  elseif(SFC_FETCH_MISSING_DEPS)
    set(BENCHMARK_ENABLE_TESTING OFF CACHE BOOL "" FORCE)
    set(BENCHMARK_ENABLE_GTEST_TESTS OFF CACHE BOOL "" FORCE)
    FetchContent_Declare(benchmark
      URL "${SFC_BENCHMARK_URL}"
      URL_HASH "SHA256=${SFC_BENCHMARK_SHA256}")
    FetchContent_MakeAvailable(benchmark)
    if(TARGET benchmark::benchmark)
      set(SFC_HAVE_BENCHMARK TRUE)
      message(STATUS "SFC: benchmark via FetchContent (pinned v1.8.3)")
    endif()
  endif()
  if(NOT SFC_HAVE_BENCHMARK)
    message(STATUS "SFC: Google Benchmark unavailable — perf_* targets skipped")
  endif()
endif()
