# Sanitizer instrumentation for first-party targets, driven by the
# SFC_SANITIZE cache variable ("address,undefined" etc).  Applied through the
# INTERFACE target sfc_sanitize so third-party dependencies built in-tree
# (gtest from /usr/src or FetchContent) can opt in too when needed.
add_library(sfc_sanitize INTERFACE)

if(SFC_SANITIZE)
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
    message(FATAL_ERROR "SFC_SANITIZE requires gcc or clang")
  endif()
  set(_sfc_san_flag "-fsanitize=${SFC_SANITIZE}")
  target_compile_options(sfc_sanitize INTERFACE
    ${_sfc_san_flag} -fno-omit-frame-pointer -fno-sanitize-recover=all)
  target_link_options(sfc_sanitize INTERFACE ${_sfc_san_flag})
  message(STATUS "SFC: sanitizers enabled: ${SFC_SANITIZE}")
endif()
