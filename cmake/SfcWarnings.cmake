# First-party warning flags, attached via the INTERFACE target sfc_warnings.
# Third-party code (gtest, benchmark) never links it, so -Werror only gates
# our own translation units.
add_library(sfc_warnings INTERFACE)

if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
  target_compile_options(sfc_warnings INTERFACE
    -Wall -Wextra -Wpedantic
    -Wconversion -Wsign-conversion
    -Wshadow
    -Wnon-virtual-dtor
    -Wold-style-cast)
  if(CMAKE_CXX_COMPILER_ID STREQUAL "GNU")
    # GCC 12 emits false-positive -Wrestrict on std::string concatenation at
    # -O3 (GCC PR105329); keep the rest of the warning set intact.
    target_compile_options(sfc_warnings INTERFACE -Wno-restrict)
  endif()
  if(SFC_WERROR)
    target_compile_options(sfc_warnings INTERFACE -Werror)
  endif()
elseif(MSVC)
  target_compile_options(sfc_warnings INTERFACE /W4)
  if(SFC_WERROR)
    target_compile_options(sfc_warnings INTERFACE /WX)
  endif()
endif()
