#include "sfc/common/math.h"

#include <gtest/gtest.h>

namespace sfc {
namespace {

TEST(CheckedIpow, SmallValues) {
  EXPECT_EQ(checked_ipow(2, 0).value(), 1u);
  EXPECT_EQ(checked_ipow(2, 10).value(), 1024u);
  EXPECT_EQ(checked_ipow(3, 4).value(), 81u);
  EXPECT_EQ(checked_ipow(10, 6).value(), 1000000u);
  EXPECT_EQ(checked_ipow(1, 100).value(), 1u);
}

TEST(CheckedIpow, ZeroBase) {
  EXPECT_EQ(checked_ipow(0, 0).value(), 1u);
  EXPECT_EQ(checked_ipow(0, 5).value(), 0u);
}

TEST(CheckedIpow, OverflowDetected) {
  EXPECT_FALSE(checked_ipow(2, 64).has_value());
  EXPECT_FALSE(checked_ipow(2, 63).has_value());  // limit is 2^63 - 1
  EXPECT_TRUE(checked_ipow(2, 62).has_value());
  EXPECT_FALSE(checked_ipow(1u << 16, 4).has_value());
}

TEST(Ipow, MatchesChecked) {
  EXPECT_EQ(ipow(7, 5), 16807u);
  EXPECT_EQ(ipow(2, 20), 1u << 20);
}

TEST(ExactRoot, PerfectPowers) {
  EXPECT_EQ(exact_root(64, 2).value(), 8u);
  EXPECT_EQ(exact_root(64, 3).value(), 4u);
  EXPECT_EQ(exact_root(64, 6).value(), 2u);
  EXPECT_EQ(exact_root(1, 5).value(), 1u);
  EXPECT_EQ(exact_root(16777216, 3).value(), 256u);
}

TEST(ExactRoot, NonPerfectPowers) {
  EXPECT_FALSE(exact_root(63, 2).has_value());
  EXPECT_FALSE(exact_root(65, 2).has_value());
  EXPECT_FALSE(exact_root(10, 3).has_value());
}

TEST(ExactRoot, DegenerateInputs) {
  EXPECT_FALSE(exact_root(8, 0).has_value());
  EXPECT_EQ(exact_root(8, 1).value(), 8u);
  EXPECT_EQ(exact_root(0, 3).value(), 0u);
}

TEST(IsPow2, Classification) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_TRUE(is_pow2(index_t{1} << 62));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(6));
  EXPECT_FALSE(is_pow2((index_t{1} << 62) + 1));
}

TEST(FloorLog2, Values) {
  EXPECT_EQ(floor_log2(1), 0);
  EXPECT_EQ(floor_log2(2), 1);
  EXPECT_EQ(floor_log2(3), 1);
  EXPECT_EQ(floor_log2(4), 2);
  EXPECT_EQ(floor_log2(1023), 9);
  EXPECT_EQ(floor_log2(1024), 10);
}

TEST(SidePowDm1, MatchesNPow) {
  // n^{1-1/d} = side^{d-1}.
  EXPECT_EQ(side_pow_dm1(8, 2), 8u);        // n=64, sqrt(64)=8
  EXPECT_EQ(side_pow_dm1(4, 3), 16u);       // n=64, 64^{2/3}=16
  EXPECT_EQ(side_pow_dm1(2, 5), 16u);       // n=32, 32^{4/5}=16
  EXPECT_EQ(side_pow_dm1(16, 1), 1u);       // d=1: n^0 = 1
}

TEST(Lemma2Total, SmallValues) {
  // (n-1)n(n+1)/3.
  EXPECT_TRUE(equals_u64(lemma2_total(1), 0u));
  EXPECT_TRUE(equals_u64(lemma2_total(2), 2u));
  EXPECT_TRUE(equals_u64(lemma2_total(3), 8u));
  EXPECT_TRUE(equals_u64(lemma2_total(4), 20u));
  EXPECT_TRUE(equals_u64(lemma2_total(64), 64u * 63u * 65u / 3u));
}

TEST(Lemma2Total, MatchesDirectSum) {
  // S_A' = sum over ordered pairs of |i-j| over keys {0..n-1}
  //      = sum_{delta=1}^{n-1} 2*delta*(n-delta).
  for (index_t n : {2u, 3u, 5u, 17u, 100u}) {
    std::uint64_t direct = 0;
    for (index_t delta = 1; delta < n; ++delta) direct += 2 * delta * (n - delta);
    EXPECT_TRUE(equals_u64(lemma2_total(n), direct)) << "n=" << n;
  }
}

TEST(Lemma2Total, LargeValueNoOverflow) {
  // n = 2^24: result ~ 2^72/3 needs 128 bits.
  const index_t n = index_t{1} << 24;
  const u128 total = lemma2_total(n);
  // Compare against long-double approximation of n^3/3.
  const long double approx = to_long_double(total);
  const long double expect = (static_cast<long double>(n) *
                              static_cast<long double>(n) *
                              static_cast<long double>(n)) / 3.0L;
  EXPECT_NEAR(static_cast<double>(approx / expect), 1.0, 1e-9);
}

}  // namespace
}  // namespace sfc
