#include "sfc/common/int128.h"

#include <gtest/gtest.h>

namespace sfc {
namespace {

TEST(Int128ToString, SmallValues) {
  EXPECT_EQ(to_string(u128{0}), "0");
  EXPECT_EQ(to_string(u128{1}), "1");
  EXPECT_EQ(to_string(u128{42}), "42");
  EXPECT_EQ(to_string(u128{1000000007}), "1000000007");
}

TEST(Int128ToString, Above64Bits) {
  // 2^64 = 18446744073709551616.
  const u128 two64 = u128{1} << 64;
  EXPECT_EQ(to_string(two64), "18446744073709551616");
  EXPECT_EQ(to_string(two64 + 1), "18446744073709551617");
  // 2^100 = 1267650600228229401496703205376.
  EXPECT_EQ(to_string(u128{1} << 100), "1267650600228229401496703205376");
}

TEST(Int128ToLongDouble, ExactBelow64Bits) {
  EXPECT_EQ(to_long_double(u128{0}), 0.0L);
  EXPECT_EQ(to_long_double(u128{123456789}), 123456789.0L);
  EXPECT_EQ(to_long_double(u128{1} << 52), 4503599627370496.0L);
}

TEST(Int128ToLongDouble, Above64Bits) {
  const long double two64 = 18446744073709551616.0L;
  EXPECT_EQ(to_long_double(u128{1} << 64), two64);
  EXPECT_EQ(to_long_double((u128{1} << 64) * 3), 3.0L * two64);
}

TEST(Int128Equals, U64Comparison) {
  EXPECT_TRUE(equals_u64(u128{77}, 77));
  EXPECT_FALSE(equals_u64(u128{77}, 78));
  EXPECT_FALSE(equals_u64(u128{1} << 64, 0));
}

}  // namespace
}  // namespace sfc
