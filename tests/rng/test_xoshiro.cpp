#include "sfc/rng/xoshiro256.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "sfc/rng/splitmix64.h"

namespace sfc {
namespace {

TEST(SplitMix64, DeterministicAndDistinct) {
  SplitMix64 a(123), b(123), c(124);
  const std::uint64_t a1 = a.next();
  EXPECT_EQ(a1, b.next());
  EXPECT_NE(a1, c.next());
  EXPECT_NE(a.next(), a1);  // advances
}

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Xoshiro256, NextBelowRespectsBound) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Xoshiro256, NextBelowOneAlwaysZero) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Xoshiro256, NextBelowCoversSmallRange) {
  Xoshiro256 rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(6));
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Xoshiro256, NextBelowRoughlyUniform) {
  Xoshiro256 rng(13);
  const int buckets = 8, draws = 80000;
  std::vector<int> histogram(buckets, 0);
  for (int i = 0; i < draws; ++i) {
    ++histogram[static_cast<std::size_t>(rng.next_below(buckets))];
  }
  const double expected = static_cast<double>(draws) / buckets;
  for (int count : histogram) {
    EXPECT_NEAR(count, expected, 5 * std::sqrt(expected));  // ~5 sigma
  }
}

TEST(Xoshiro256, NextDoubleInUnitInterval) {
  Xoshiro256 rng(17);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Xoshiro256, LongJumpDecorrelates) {
  Xoshiro256 a(21);
  Xoshiro256 b(21);
  b.long_jump();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

}  // namespace
}  // namespace sfc
