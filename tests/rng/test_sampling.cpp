#include "sfc/rng/sampling.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace sfc {
namespace {

TEST(Shuffle, ProducesPermutation) {
  Xoshiro256 rng(5);
  auto values = identity_permutation(100);
  shuffle(values, rng);
  auto sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (index_t i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Shuffle, ActuallyShuffles) {
  Xoshiro256 rng(6);
  auto values = identity_permutation(100);
  shuffle(values, rng);
  int fixed_points = 0;
  for (index_t i = 0; i < 100; ++i) {
    if (values[i] == i) ++fixed_points;
  }
  EXPECT_LT(fixed_points, 20);  // expected ~1
}

TEST(RandomPermutation, DeterministicInSeed) {
  Xoshiro256 a(9), b(9);
  EXPECT_EQ(random_permutation(50, a), random_permutation(50, b));
}

TEST(RandomCell, InsideUniverse) {
  const Universe u(3, 7);
  Xoshiro256 rng(10);
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(u.contains(random_cell(u, rng)));
  }
}

TEST(RandomDistinctPair, Distinct) {
  const Universe u(2, 2);
  Xoshiro256 rng(11);
  for (int i = 0; i < 200; ++i) {
    const auto [a, b] = random_distinct_pair(u, rng);
    EXPECT_NE(a, b);
    EXPECT_TRUE(u.contains(a));
    EXPECT_TRUE(u.contains(b));
  }
}

TEST(RandomBox, ExtentAndBoundsRespected) {
  const Universe u(2, 16);
  Xoshiro256 rng(12);
  for (int i = 0; i < 200; ++i) {
    const Box box = random_box(u, 5, rng);
    for (int dim = 0; dim < 2; ++dim) {
      EXPECT_EQ(box.hi()[dim] - box.lo()[dim] + 1, 5u);
      EXPECT_LT(box.hi()[dim], u.side());
    }
    EXPECT_EQ(box.cell_count(), 25u);
  }
}

TEST(RandomBox, FullExtentIsWholeUniverse) {
  const Universe u(2, 8);
  Xoshiro256 rng(13);
  const Box box = random_box(u, 8, rng);
  EXPECT_EQ(box.lo(), (Point{0, 0}));
  EXPECT_EQ(box.cell_count(), 64u);
}

TEST(RunningStats, MeanVarianceAgainstDirect) {
  const std::vector<double> values = {3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  RunningStats stats;
  for (double v : values) stats.add(v);

  double mean = 0.0;
  for (double v : values) mean += v;
  mean /= static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - mean) * (v - mean);
  var /= static_cast<double>(values.size() - 1);

  EXPECT_EQ(stats.count(), values.size());
  EXPECT_NEAR(stats.mean(), mean, 1e-12);
  EXPECT_NEAR(stats.variance(), var, 1e-12);
  EXPECT_NEAR(stats.standard_error(),
              std::sqrt(var / static_cast<double>(values.size())), 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStats, EdgeCases) {
  RunningStats empty;
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_DOUBLE_EQ(empty.variance(), 0.0);
  EXPECT_DOUBLE_EQ(empty.standard_error(), 0.0);

  RunningStats one;
  one.add(42.0);
  EXPECT_DOUBLE_EQ(one.mean(), 42.0);
  EXPECT_DOUBLE_EQ(one.variance(), 0.0);
  EXPECT_DOUBLE_EQ(one.min(), 42.0);
  EXPECT_DOUBLE_EQ(one.max(), 42.0);
}

TEST(RunningStats, ConstantStream) {
  RunningStats stats;
  for (int i = 0; i < 100; ++i) stats.add(7.5);
  EXPECT_DOUBLE_EQ(stats.mean(), 7.5);
  EXPECT_NEAR(stats.variance(), 0.0, 1e-12);
}

}  // namespace
}  // namespace sfc
