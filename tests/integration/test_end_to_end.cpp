// Cross-module integration checks tying the paper's storyline together:
// bounds hold, Z and simple are near-optimal, the ranking is consistent with
// the application-level metrics.
#include <gtest/gtest.h>

#include "sfc/apps/partition.h"
#include "sfc/apps/range_query.h"
#include "sfc/core/stretch_report.h"
#include "sfc/curves/curve_factory.h"

namespace sfc {
namespace {

TEST(EndToEnd, PaperHeadlineResults) {
  // On a 64x64 grid: every curve respects Theorem 1; Z and simple sit within
  // ~1.5x of the bound; random bijections are orders of magnitude worse.
  const Universe u = Universe::pow2(2, 6);
  AnalyzeOptions options;
  options.all_pairs_samples = 0;

  double z_ratio = 0, simple_ratio = 0, random_ratio = 0;
  for (CurveFamily family : all_curve_families()) {
    const CurvePtr curve = make_curve(family, u, 31);
    const StretchReport report = analyze_curve(*curve, options);
    EXPECT_GE(report.davg_ratio_to_bound, 1.0 - 1e-12) << family_name(family);
    if (family == CurveFamily::kZ) z_ratio = report.davg_ratio_to_bound;
    if (family == CurveFamily::kSimple) simple_ratio = report.davg_ratio_to_bound;
    if (family == CurveFamily::kRandom) random_ratio = report.davg_ratio_to_bound;
  }
  EXPECT_NEAR(z_ratio, 1.5, 0.15);
  EXPECT_NEAR(simple_ratio, 1.5, 0.15);
  EXPECT_GT(random_ratio, 10.0);
}

TEST(EndToEnd, HilbertAnswersOpenQuestionBelowZ) {
  // §VI leaves Davg(Hilbert) open; empirically it lands close to (and
  // slightly below) the Z curve on 2-d grids, still >= the Theorem-1 bound.
  const Universe u = Universe::pow2(2, 6);
  AnalyzeOptions options;
  options.all_pairs_samples = 0;
  const double hilbert =
      analyze_curve(*make_curve(CurveFamily::kHilbert, u), options)
          .nn.average_average;
  const double z =
      analyze_curve(*make_curve(CurveFamily::kZ, u), options).nn.average_average;
  EXPECT_GE(hilbert, bounds::davg_lower_bound(u));
  EXPECT_LT(std::abs(hilbert - z) / z, 0.35);
}

TEST(EndToEnd, StretchPredictsPartitionQuality) {
  // Curves with lower Davg should produce lower edge cuts when partitioned
  // into contiguous ranges (the load-balancing application of the intro).
  const Universe u = Universe::pow2(2, 5);
  const CurvePtr hilbert = make_curve(CurveFamily::kHilbert, u);
  const CurvePtr random = make_curve(CurveFamily::kRandom, u, 17);
  const index_t hilbert_cut = evaluate_partition(*hilbert, 8).edge_cut;
  const index_t random_cut = evaluate_partition(*random, 8).edge_cut;
  EXPECT_LT(hilbert_cut * 5, random_cut);
}

TEST(EndToEnd, StretchPredictsClustering) {
  // Same story for the secondary-memory application: locality-preserving
  // curves require fewer key runs per rectangular query.
  const Universe u = Universe::pow2(2, 5);
  const CurvePtr z = make_curve(CurveFamily::kZ, u);
  const CurvePtr random = make_curve(CurveFamily::kRandom, u, 19);
  const double z_runs = random_box_clustering(*z, 4, 200, 23).mean_runs;
  const double random_runs = random_box_clustering(*random, 4, 200, 23).mean_runs;
  EXPECT_LT(z_runs * 2, random_runs);
}

TEST(EndToEnd, NonPow2UniverseFullPipeline) {
  // The simple/snake/random families plus the full metric stack work on a
  // 6x6 grid (the Figure-2 setting).
  const Universe u(2, 6);
  AnalyzeOptions options;
  options.all_pairs_samples = 1000;
  for (CurveFamily family : all_curve_families()) {
    if (family_requires_pow2(family)) continue;
    const CurvePtr curve = make_curve(family, u, 3);
    const StretchReport report = analyze_curve(*curve, options);
    EXPECT_GE(report.davg_ratio_to_bound, 1.0 - 1e-12) << family_name(family);
    EXPECT_TRUE(report.all_pairs.has_value());
  }
}

}  // namespace
}  // namespace sfc
