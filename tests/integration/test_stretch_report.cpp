#include "sfc/core/stretch_report.h"

#include <gtest/gtest.h>

#include "sfc/curves/curve_factory.h"

namespace sfc {
namespace {

TEST(StretchReport, FieldsConsistentForZCurve) {
  const Universe u = Universe::pow2(2, 4);
  const CurvePtr z = make_curve(CurveFamily::kZ, u);
  const StretchReport report = analyze_curve(*z);

  EXPECT_EQ(report.curve_name, "z-curve");
  EXPECT_EQ(report.dim, 2);
  EXPECT_EQ(report.n, 256u);
  EXPECT_EQ(report.side, 16u);
  EXPECT_GT(report.nn.average_average, 0.0);
  EXPECT_DOUBLE_EQ(report.davg_lower_bound, bounds::davg_lower_bound(u));
  EXPECT_NEAR(report.davg_ratio_to_bound,
              report.nn.average_average / report.davg_lower_bound, 1e-12);
  EXPECT_NEAR(report.normalized_davg,
              2 * report.nn.average_average / 16.0, 1e-12);
  ASSERT_TRUE(report.all_pairs.has_value());
  EXPECT_TRUE(report.all_pairs->exact);  // n=256 <= default exact limit
  EXPECT_GE(report.all_pairs->avg_stretch_manhattan,
            report.allpairs_manhattan_bound);
}

TEST(StretchReport, SampledAllPairsAboveExactLimit) {
  const Universe u = Universe::pow2(2, 7);  // n = 16384 > 4096 default limit
  const CurvePtr z = make_curve(CurveFamily::kZ, u);
  AnalyzeOptions options;
  options.all_pairs_samples = 20000;
  const StretchReport report = analyze_curve(*z, options);
  ASSERT_TRUE(report.all_pairs.has_value());
  EXPECT_FALSE(report.all_pairs->exact);
  EXPECT_GT(report.all_pairs->stderr_manhattan, 0.0);
}

TEST(StretchReport, AllPairsCanBeDisabled) {
  const Universe u = Universe::pow2(2, 3);
  const CurvePtr s = make_curve(CurveFamily::kSimple, u);
  AnalyzeOptions options;
  options.all_pairs_samples = 0;
  const StretchReport report = analyze_curve(*s, options);
  EXPECT_FALSE(report.all_pairs.has_value());
}

TEST(StretchReport, RenderingMentionsKeyMetrics) {
  const Universe u = Universe::pow2(2, 3);
  const CurvePtr h = make_curve(CurveFamily::kHilbert, u);
  const std::string text = to_string(analyze_curve(*h));
  EXPECT_NE(text.find("hilbert"), std::string::npos);
  EXPECT_NE(text.find("Davg"), std::string::npos);
  EXPECT_NE(text.find("Theorem-1 lower bound"), std::string::npos);
  EXPECT_NE(text.find("all-pairs stretch Manhattan"), std::string::npos);
}

TEST(StretchReport, EveryFamilyAnalyzable) {
  const Universe u = Universe::pow2(2, 3);
  for (CurveFamily family : all_curve_families()) {
    const CurvePtr curve = make_curve(family, u, 1);
    const StretchReport report = analyze_curve(*curve);
    EXPECT_GE(report.davg_ratio_to_bound, 1.0 - 1e-12) << family_name(family);
  }
}

}  // namespace
}  // namespace sfc
