#include "sfc/core/convergence.h"

#include <gtest/gtest.h>

namespace sfc {
namespace {

TEST(MaxLevelBits, RespectsCellBudget) {
  // d=2: 2^{2k} <= 2^12 -> k = 6.
  EXPECT_EQ(max_level_bits(2, index_t{1} << 12), 6);
  EXPECT_EQ(max_level_bits(3, index_t{1} << 12), 4);
  EXPECT_EQ(max_level_bits(1, index_t{1} << 12), 12);
  // Never below k_min.
  EXPECT_EQ(max_level_bits(8, 2, 1), 1);
}

TEST(DavgSweep, ProducesRequestedRows) {
  SweepOptions options;
  options.max_cells = index_t{1} << 12;
  const auto rows = davg_sweep(CurveFamily::kZ, 2, 1, 4, options);
  ASSERT_EQ(rows.size(), 4u);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].dim, 2);
    EXPECT_EQ(rows[i].level_bits, static_cast<int>(i) + 1);
    EXPECT_EQ(rows[i].n, index_t{1} << (2 * (i + 1)));
    EXPECT_GT(rows[i].davg, 0.0);
    EXPECT_GE(rows[i].dmax, rows[i].davg);
    EXPECT_GT(rows[i].lower_bound, 0.0);
    EXPECT_GE(rows[i].ratio_to_bound, 1.0);
  }
}

TEST(DavgSweep, StopsAtCellBudget) {
  SweepOptions options;
  options.max_cells = 256;  // k <= 4 in 2-d
  const auto rows = davg_sweep(CurveFamily::kSimple, 2, 1, 10, options);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows.back().n, 256u);
}

TEST(DavgSweep, NormalizedValuesApproachOneForZ) {
  SweepOptions options;
  options.max_cells = index_t{1} << 14;
  const auto rows = davg_sweep(CurveFamily::kZ, 2, 2, 7, options);
  ASSERT_GE(rows.size(), 3u);
  // |normalized - 1| shrinks along the sweep.
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LE(std::abs(rows[i].normalized_davg - 1.0),
              std::abs(rows[i - 1].normalized_davg - 1.0) + 1e-12);
  }
}

TEST(DavgSweep, RatioToBoundApproaches1Point5ForSimple) {
  SweepOptions options;
  options.max_cells = index_t{1} << 14;
  const auto rows = davg_sweep(CurveFamily::kSimple, 2, 2, 7, options);
  EXPECT_NEAR(rows.back().ratio_to_bound, 1.5, 0.1);
}

TEST(DavgSweep, WorksForRandomFamily) {
  SweepOptions options;
  options.max_cells = 1 << 8;
  options.seed = 5;
  const auto rows = davg_sweep(CurveFamily::kRandom, 2, 1, 4, options);
  ASSERT_EQ(rows.size(), 4u);
  // Random curves sit far above the bound.
  EXPECT_GT(rows.back().ratio_to_bound, 3.0);
}

}  // namespace
}  // namespace sfc
