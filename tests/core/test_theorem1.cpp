// Theorem 1: Davg(π) >= (2/3d)(n^{1-1/d} - n^{-1-1/d}) for ANY SFC π.
//
// The strongest possible finite check: enumerate ALL 24 bijections of the
// 2x2 universe and confirm none beats the bound; then check adversarial
// random bijections and every named curve across dimensions.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sfc/core/bounds.h"
#include "sfc/core/nn_stretch.h"
#include "sfc/curves/curve_factory.h"
#include "sfc/curves/permutation_curve.h"

namespace sfc {
namespace {

TEST(Theorem1, HoldsForAll24BijectionsOf2x2) {
  const Universe u(2, 2);
  const double bound = bounds::davg_lower_bound(u);
  std::vector<index_t> keys = {0, 1, 2, 3};
  double best = 1e18;
  int checked = 0;
  do {
    const PermutationCurve curve(u, keys);
    const NNStretchResult r = compute_nn_stretch(curve);
    EXPECT_GE(r.average_average, bound - 1e-12);
    best = std::min(best, r.average_average);
    ++checked;
  } while (std::next_permutation(keys.begin(), keys.end()));
  EXPECT_EQ(checked, 24);
  // On the 2x2 grid the optimum is Davg = 1.5 (achieved by π1 among others)
  // while the bound evaluates to (1/3)(2 - 1/8) = 0.625: the bound holds
  // with room, as expected from its asymptotic nature.
  EXPECT_DOUBLE_EQ(best, 1.5);
  EXPECT_NEAR(bound, 0.625, 1e-12);
}

TEST(Theorem1, HoldsForAllBijectionsOf1DSize4) {
  // d=1 exhaustive: n=4, bound = (2/3)(1 - 1/16) = 0.625.
  const Universe u(1, 4);
  const double bound = bounds::davg_lower_bound(u);
  std::vector<index_t> keys = {0, 1, 2, 3};
  double best = 1e18;
  do {
    const PermutationCurve curve(u, keys);
    best = std::min(best, compute_nn_stretch(curve).average_average);
  } while (std::next_permutation(keys.begin(), keys.end()));
  EXPECT_GE(best, bound - 1e-12);
  // The identity ordering achieves Davg = 1 in one dimension.
  EXPECT_DOUBLE_EQ(best, 1.0);
}

class Theorem1Sweep
    : public ::testing::TestWithParam<std::tuple<CurveFamily, int, int>> {};

TEST_P(Theorem1Sweep, BoundHolds) {
  const auto& [family, d, k] = GetParam();
  const Universe u = Universe::pow2(d, k);
  const CurvePtr curve = make_curve(family, u, 77);
  const NNStretchResult r = compute_nn_stretch(*curve);
  const double bound = bounds::davg_lower_bound(u);
  EXPECT_GE(r.average_average, bound * (1 - 1e-12))
      << family_name(family) << " d=" << d << " k=" << k;
}

std::vector<std::tuple<CurveFamily, int, int>> sweep_params() {
  std::vector<std::tuple<CurveFamily, int, int>> params;
  for (CurveFamily family : all_curve_families()) {
    for (int d = 1; d <= 4; ++d) {
      for (int k = 1; k <= 4; ++k) {
        if (d * k > 14) continue;
        params.emplace_back(family, d, k);
      }
    }
  }
  return params;
}

std::string sweep_param_name(
    const ::testing::TestParamInfo<std::tuple<CurveFamily, int, int>>& info) {
  std::string name = family_name(std::get<0>(info.param));
  for (char& ch : name) {
    if (ch == '-') ch = '_';
  }
  return name + "_d" + std::to_string(std::get<1>(info.param)) + "_k" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(AllCurves, Theorem1Sweep,
                         ::testing::ValuesIn(sweep_params()), sweep_param_name);

TEST(Theorem1, RandomBijectionsAreFarAboveBound) {
  // Random bijections have Davg ~ n/3 (a random pair of keys is n/3 apart on
  // average) — they must sit far above the bound, approaching the Lemma-3
  // ceiling rather than the floor.
  const Universe u = Universe::pow2(2, 4);
  const double bound = bounds::davg_lower_bound(u);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const CurvePtr curve = PermutationCurve::random(u, seed);
    const NNStretchResult r = compute_nn_stretch(*curve);
    EXPECT_GT(r.average_average, 5 * bound) << "seed=" << seed;
    EXPECT_NEAR(r.average_average, static_cast<double>(u.cell_count()) / 3.0,
                0.25 * static_cast<double>(u.cell_count()))
        << "seed=" << seed;
  }
}

TEST(Theorem1, BoundFormulaSpotValues) {
  // d=2, n=64: (2/6)(8 - 1/512) = 8/3 - 1/1536.
  EXPECT_NEAR(bounds::davg_lower_bound(Universe::pow2(2, 3)),
              8.0 / 3.0 - 1.0 / 1536.0, 1e-12);
  // d=3, n=512: (2/9)(64 - 1/4096).
  EXPECT_NEAR(bounds::davg_lower_bound(Universe::pow2(3, 3)),
              (2.0 / 9.0) * (64.0 - 1.0 / 4096.0), 1e-9);
}

TEST(Theorem1, BoundGrowsAsNPow1m1d) {
  // Doubling the side in 2-d should double the bound asymptotically.
  const double b3 = bounds::davg_lower_bound(Universe::pow2(2, 3));
  const double b4 = bounds::davg_lower_bound(Universe::pow2(2, 4));
  const double b5 = bounds::davg_lower_bound(Universe::pow2(2, 5));
  EXPECT_NEAR(b4 / b3, 2.0, 0.01);
  EXPECT_NEAR(b5 / b4, 2.0, 0.001);
}

}  // namespace
}  // namespace sfc
