#include "sfc/core/bounds.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sfc {
namespace bounds {
namespace {

TEST(Bounds, NPow1m1d) {
  EXPECT_EQ(n_pow_1m1d(Universe::pow2(2, 3)), 8u);     // n=64 -> 8
  EXPECT_EQ(n_pow_1m1d(Universe::pow2(3, 2)), 16u);    // n=64 -> 16
  EXPECT_EQ(n_pow_1m1d(Universe::pow2(1, 6)), 1u);     // d=1 -> 1
  EXPECT_EQ(n_pow_1m1d(Universe(2, 6)), 6u);           // non-pow2 side works
}

TEST(Bounds, DavgLowerBoundMatchesLongDoubleFormula) {
  for (int d = 1; d <= 4; ++d) {
    for (int k = 1; k <= 3; ++k) {
      const Universe u = Universe::pow2(d, k);
      const long double n = static_cast<long double>(u.cell_count());
      const long double reference =
          (2.0L / (3.0L * d)) *
          (std::pow(n, 1.0L - 1.0L / d) - std::pow(n, -1.0L - 1.0L / d));
      EXPECT_NEAR(davg_lower_bound(u), static_cast<double>(reference), 1e-9)
          << "d=" << d << " k=" << k;
    }
  }
}

TEST(Bounds, DmaxBoundEqualsDavgBound) {
  const Universe u = Universe::pow2(3, 2);
  EXPECT_DOUBLE_EQ(dmax_lower_bound(u), davg_lower_bound(u));
}

TEST(Bounds, AsymptoteAndGapFactor) {
  const Universe u = Universe::pow2(2, 5);
  EXPECT_DOUBLE_EQ(davg_zs_asymptote(u), 32.0 / 2.0);
  EXPECT_DOUBLE_EQ(optimal_gap_factor(), 1.5);
  // asymptote / bound -> 1.5 for large n.
  EXPECT_NEAR(davg_zs_asymptote(u) / davg_lower_bound(u), 1.5, 1e-3);
}

TEST(Bounds, Lemma2Total) {
  EXPECT_TRUE(equals_u64(lemma2_total_ordered_distance(4), 20));
  EXPECT_TRUE(equals_u64(lemma2_total_ordered_distance(64), 87360));
}

TEST(Bounds, ZGroupSizeValues) {
  // d=2, k=3: |G_{i,1}| = 2^2 * 2^3 = 32, |G_{i,2}| = 2 * 8 = 16,
  // |G_{i,3}| = 1 * 8 = 8.
  EXPECT_TRUE(equals_u64(z_group_size(2, 3, 1), 32));
  EXPECT_TRUE(equals_u64(z_group_size(2, 3, 2), 16));
  EXPECT_TRUE(equals_u64(z_group_size(2, 3, 3), 8));
}

TEST(Bounds, ZGroupDistanceValues) {
  // d=2: j=1 -> 2^{2-i}; j=2 -> 2^{4-i} - 2^{2-i}.
  EXPECT_TRUE(equals_u64(z_group_distance(2, 1, 1), 2));
  EXPECT_TRUE(equals_u64(z_group_distance(2, 2, 1), 1));
  EXPECT_TRUE(equals_u64(z_group_distance(2, 1, 2), 8 - 2));
  EXPECT_TRUE(equals_u64(z_group_distance(2, 2, 2), 4 - 1));
  // d=3, i=1, j=2: 2^5 - 2^2 = 28.
  EXPECT_TRUE(equals_u64(z_group_distance(3, 1, 2), 28));
}

TEST(Bounds, LambdaZExactSmall) {
  // d=1: the Z curve is the identity, so every group distance is
  // 2^{j-1} - (2^{j-1} - 1) = 1 and Λ_1 = Σ_j 2^{k-j} = 2^k - 1 (= |NN_1|).
  EXPECT_TRUE(equals_u64(lambda_z_exact(1, 3, 1), 7));
  // d=2, k=1: one group, |G| = 2, distances 2^{2-i}.
  EXPECT_TRUE(equals_u64(lambda_z_exact(2, 1, 1), 2 * 2));
  EXPECT_TRUE(equals_u64(lambda_z_exact(2, 1, 2), 2 * 1));
}

TEST(Bounds, LambdaZLimits) {
  EXPECT_DOUBLE_EQ(lambda_z_limit(2, 1), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(lambda_z_limit(2, 2), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(lambda_z_limit(3, 1), 4.0 / 7.0);
  EXPECT_DOUBLE_EQ(lambda_z_limit(3, 3), 1.0 / 7.0);
}

TEST(Bounds, DmaxSimpleExact) {
  EXPECT_EQ(dmax_simple_exact(Universe::pow2(2, 4)), 16u);
  EXPECT_EQ(dmax_simple_exact(Universe::pow2(3, 2)), 16u);
  EXPECT_EQ(dmax_simple_exact(Universe(2, 10)), 10u);
}

TEST(Bounds, AllPairsLowerBounds) {
  // d=2, n=64: Manhattan (1/6)(65/7), Euclidean (1/(3 sqrt 2)))(65/7).
  const Universe u = Universe::pow2(2, 3);
  EXPECT_NEAR(allpairs_manhattan_lower_bound(u), 65.0 / 42.0, 1e-12);
  EXPECT_NEAR(allpairs_euclidean_lower_bound(u),
              65.0 / 7.0 / (3.0 * std::sqrt(2.0)), 1e-12);
}

TEST(Bounds, AllPairsSimpleUpperBounds) {
  const Universe u = Universe::pow2(2, 3);
  EXPECT_DOUBLE_EQ(allpairs_simple_manhattan_upper_bound(u), 8.0);
  EXPECT_DOUBLE_EQ(allpairs_simple_euclidean_upper_bound(u),
                   std::sqrt(2.0) * 8.0);
}

TEST(Bounds, Lemma6MaxDistances) {
  const Universe u = Universe::pow2(3, 2);  // side 4
  EXPECT_EQ(max_manhattan_distance(u), 9u);  // 3 * 3
  EXPECT_NEAR(max_euclidean_distance(u), std::sqrt(3.0) * 3.0, 1e-12);
}

TEST(Bounds, SimpleInteriorCellStretch) {
  // (1/d)(n-1)/(side-1): d=2, side=8, n=64 -> 63/14 = 4.5.
  EXPECT_DOUBLE_EQ(simple_interior_cell_stretch(Universe::pow2(2, 3)), 4.5);
}

TEST(Bounds, EuclideanBoundBelowManhattanBoundTimesSqrtD) {
  // str_E bound = str_M bound * d/sqrt(d) = str_M * sqrt(d).
  const Universe u = Universe::pow2(3, 2);
  EXPECT_NEAR(allpairs_euclidean_lower_bound(u),
              allpairs_manhattan_lower_bound(u) * std::sqrt(3.0), 1e-12);
}

}  // namespace
}  // namespace bounds
}  // namespace sfc
