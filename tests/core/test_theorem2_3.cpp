// Theorem 2: Davg(Z) ~ (1/d) n^{1-1/d};  Theorem 3: Davg(S) ~ (1/d) n^{1-1/d}.
// We verify the normalized ratio d·Davg/n^{1-1/d} approaches 1 from below/
// above and that both curves land within the paper's 1.5x factor of the
// Theorem-1 bound.
#include <gtest/gtest.h>

#include "sfc/core/bounds.h"
#include "sfc/core/convergence.h"
#include "sfc/core/nn_stretch.h"
#include "sfc/curves/curve_factory.h"

namespace sfc {
namespace {

double normalized_davg(CurveFamily family, int d, int k) {
  const Universe u = Universe::pow2(d, k);
  const CurvePtr curve = make_curve(family, u);
  const NNStretchResult r = compute_nn_stretch(*curve);
  return d * r.average_average / static_cast<double>(bounds::n_pow_1m1d(u));
}

TEST(Theorem2, ZCurveNormalizedRatioApproachesOne2D) {
  double previous_error = 1e18;
  for (int k = 2; k <= 8; ++k) {
    const double error = std::abs(normalized_davg(CurveFamily::kZ, 2, k) - 1.0);
    EXPECT_LT(error, previous_error) << "k=" << k;
    previous_error = error;
  }
  EXPECT_LT(previous_error, 0.05);
}

TEST(Theorem2, ZCurveNormalizedRatioApproachesOne3D) {
  double previous_error = 1e18;
  for (int k = 1; k <= 5; ++k) {
    const double error = std::abs(normalized_davg(CurveFamily::kZ, 3, k) - 1.0);
    EXPECT_LE(error, previous_error) << "k=" << k;
    previous_error = error;
  }
  EXPECT_LT(previous_error, 0.08);
}

TEST(Theorem2, ZCurveWithin1Point5OfBoundAsymptotically) {
  // Davg(Z)/bound -> (1/d)/(2/3d) = 1.5.
  const Universe u = Universe::pow2(2, 8);
  const CurvePtr z = make_curve(CurveFamily::kZ, u);
  const NNStretchResult r = compute_nn_stretch(*z);
  const double ratio = r.average_average / bounds::davg_lower_bound(u);
  EXPECT_GT(ratio, 1.0);
  EXPECT_NEAR(ratio, 1.5, 0.08);
}

TEST(Theorem3, SimpleCurveNormalizedRatioApproachesOne) {
  for (int d = 1; d <= 3; ++d) {
    const int k_max = d == 1 ? 10 : (d == 2 ? 7 : 5);
    double previous_error = 1e18;
    for (int k = 2; k <= k_max; ++k) {
      const double error =
          std::abs(normalized_davg(CurveFamily::kSimple, d, k) - 1.0);
      EXPECT_LE(error, previous_error + 1e-12) << "d=" << d << " k=" << k;
      previous_error = error;
    }
    EXPECT_LT(previous_error, 0.1) << "d=" << d;
  }
}

TEST(Theorem3, SimpleMatchesZAsymptotically) {
  // The surprising result: the naive row-major order matches the Z curve.
  const int d = 2, k = 7;
  const double z = normalized_davg(CurveFamily::kZ, d, k);
  const double s = normalized_davg(CurveFamily::kSimple, d, k);
  EXPECT_NEAR(z, s, 0.03);
}

TEST(Theorem3, SimpleCurveExactDavgSmallGrid) {
  // 4x4 simple curve, computable by hand from Eq. 8 key layout:
  // horizontal NN pairs are 1 apart, vertical pairs 4 apart.
  // Per-cell δavg: corner (1+4)/2=2.5, edge-horizontal (1+1+4)/3=2,
  // edge-vertical (1+4+4)/3=3, interior (1+1+4+4)/4=2.5.
  // Counts: 4 corners, 4 horizontal-edge cells (top/bottom rows middle), 4
  // vertical-edge cells (left/right columns middle), 4 interior.
  // Davg = (4*2.5 + 4*2 + 4*3 + 4*2.5)/16 = (10+8+12+10)/16 = 2.5.
  const Universe u(2, 4);
  const CurvePtr s = make_curve(CurveFamily::kSimple, u);
  const NNStretchResult r = compute_nn_stretch(*s);
  EXPECT_DOUBLE_EQ(r.average_average, 2.5);
}

TEST(Theorem2, ZCurve2x2MatchesHandComputation) {
  // 2x2 Z curve keys: (0,0)=0 (0,1)=1 (1,0)=2 (1,1)=3.
  // δavg(0,0) = (|0-1| + |0-2|)/2 = 1.5, all cells symmetric -> Davg = 1.5;
  // Dmax = 2.
  const Universe u = Universe::pow2(2, 1);
  const CurvePtr z = make_curve(CurveFamily::kZ, u);
  const NNStretchResult r = compute_nn_stretch(*z);
  EXPECT_DOUBLE_EQ(r.average_average, 1.5);
  EXPECT_DOUBLE_EQ(r.average_maximum, 2.0);
}

TEST(Theorem2Proof, H1TermDominatesDavg) {
  // In the proof, Davg(Z) = (h1 + h2)/n with h2/n^{2-1/d} -> 0.  Check that
  // the interior term h1 = (1/d) Σ_i Λ_i already explains most of Davg.
  const Universe u = Universe::pow2(2, 6);
  const CurvePtr z = make_curve(CurveFamily::kZ, u);
  const NNStretchResult r = compute_nn_stretch(*z);
  const double h1_over_n = r.lemma3_lower;  // (1/nd) Σ Λ_i
  EXPECT_NEAR(h1_over_n / r.average_average, 1.0, 0.06);
}

}  // namespace
}  // namespace sfc
