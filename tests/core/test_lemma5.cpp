// Lemma 5: Λ_i(Z)/n^{2-1/d} -> 2^{d-i}/(2^d - 1).  The proof's pre-limit sum
//   Λ_i(Z) = Σ_j |G_{i,j}| (2^{jd-i} - Σ_{ℓ<j} 2^{ℓd-i})
// is an exact identity for every finite k; we check measured Λ_i(Z) against
// it exactly, then check convergence toward the limit.
#include <gtest/gtest.h>

#include "sfc/core/bounds.h"
#include "sfc/core/nn_stretch.h"
#include "sfc/curves/zcurve.h"

namespace sfc {
namespace {

class Lemma5Exact : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(Lemma5Exact, MeasuredLambdaMatchesClosedFormExactly) {
  const auto [d, k] = GetParam();
  const Universe u = Universe::pow2(d, k);
  const ZCurve z(u);
  const NNStretchResult r = compute_nn_stretch(z);
  for (int i = 1; i <= d; ++i) {
    const u128 expected = bounds::lambda_z_exact(d, k, i);
    const u128 measured = r.lambda[static_cast<std::size_t>(i - 1)];
    EXPECT_TRUE(measured == expected)
        << "d=" << d << " k=" << k << " i=" << i << " measured "
        << to_string(measured) << " expected " << to_string(expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndLevels, Lemma5Exact,
    ::testing::Values(std::pair{1, 3}, std::pair{1, 6}, std::pair{2, 1},
                      std::pair{2, 2}, std::pair{2, 3}, std::pair{2, 5},
                      std::pair{3, 1}, std::pair{3, 2}, std::pair{3, 3},
                      std::pair{4, 1}, std::pair{4, 2}, std::pair{5, 2}),
    [](const auto& name_info) {
      return "d" + std::to_string(name_info.param.first) + "_k" +
             std::to_string(name_info.param.second);
    });

TEST(Lemma5, GroupSizesPartitionNNPairs) {
  // Σ_j |G_{i,j}| must equal the per-dimension NN pair count.
  for (int d = 1; d <= 4; ++d) {
    for (int k = 1; k <= 3; ++k) {
      const Universe u = Universe::pow2(d, k);
      u128 total = 0;
      for (int j = 1; j <= k; ++j) total += bounds::z_group_size(d, k, j);
      EXPECT_TRUE(equals_u64(total, u.nn_pair_count_per_dim()))
          << "d=" << d << " k=" << k;
    }
  }
}

TEST(Lemma5, GroupDistancesArePositive) {
  // 2^{jd-i} dominates the subtracted geometric tail for every valid (i,j).
  for (int d = 1; d <= 5; ++d) {
    for (int i = 1; i <= d; ++i) {
      for (int j = 1; j <= 6; ++j) {
        EXPECT_TRUE(bounds::z_group_distance(d, i, j) >= 1)
            << "d=" << d << " i=" << i << " j=" << j;
      }
    }
  }
}

TEST(Lemma5, NormalizedLambdaConvergesToLimit) {
  // Λ_i(Z)/n^{2-1/d} must approach 2^{d-i}/(2^d-1) monotonically in k.
  const int d = 2;
  for (int i = 1; i <= d; ++i) {
    double previous_error = 1e9;
    for (int k = 2; k <= 6; ++k) {
      const Universe u = Universe::pow2(d, k);
      const u128 lambda = bounds::lambda_z_exact(d, k, i);
      // n^{2-1/d} = side^{2d-1}.
      const long double scale =
          static_cast<long double>(ipow(u.side(), 2 * d - 1));
      const double normalized = static_cast<double>(to_long_double(lambda) / scale);
      const double error = std::abs(normalized - bounds::lambda_z_limit(d, i));
      EXPECT_LT(error, previous_error) << "k=" << k << " i=" << i;
      previous_error = error;
    }
    EXPECT_LT(previous_error, 0.02) << "not converged for i=" << i;
  }
}

TEST(Lemma5, LimitsSumToOne) {
  // Σ_{i=1..d} 2^{d-i}/(2^d-1) = 1; this is what makes h1 -> n^{2-1/d}/d in
  // the Theorem 2 proof.
  for (int d = 1; d <= 6; ++d) {
    double sum = 0;
    for (int i = 1; i <= d; ++i) sum += bounds::lambda_z_limit(d, i);
    EXPECT_NEAR(sum, 1.0, 1e-12) << "d=" << d;
  }
}

TEST(Lemma5, AdjacentDimensionRatioIsTwo) {
  // Λ_i limit is exactly twice the Λ_{i+1} limit: dimension 1 (most
  // significant in the interleave) suffers the largest stretch.
  for (int d = 2; d <= 5; ++d) {
    for (int i = 1; i < d; ++i) {
      EXPECT_DOUBLE_EQ(bounds::lambda_z_limit(d, i),
                       2.0 * bounds::lambda_z_limit(d, i + 1));
    }
  }
}

}  // namespace
}  // namespace sfc
