#include "sfc/core/nn_decomposition.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>

namespace sfc {
namespace {

TEST(NNDecomposition, SingleDimensionPath) {
  // p((6,4,5),(3,4,5)) from the paper: three edges along dimension 1.
  const auto edges = nn_decomposition(Point{6, 4, 5}, Point{3, 4, 5});
  ASSERT_EQ(edges.size(), 3u);
  const std::set<std::pair<std::string, std::string>> got = {
      {edges[0].first.to_string(), edges[0].second.to_string()},
      {edges[1].first.to_string(), edges[1].second.to_string()},
      {edges[2].first.to_string(), edges[2].second.to_string()}};
  const std::set<std::pair<std::string, std::string>> want = {
      {"(3,4,5)", "(4,4,5)"}, {"(4,4,5)", "(5,4,5)"}, {"(5,4,5)", "(6,4,5)"}};
  EXPECT_EQ(got, want);
}

TEST(NNDecomposition, SymmetricWhenOneDimensionDiffers) {
  // If α and β differ in only one coordinate, p(α,β) = p(β,α).
  const auto forward = nn_decomposition(Point{2, 7}, Point{5, 7});
  const auto backward = nn_decomposition(Point{5, 7}, Point{2, 7});
  ASSERT_EQ(forward.size(), backward.size());
  for (std::size_t i = 0; i < forward.size(); ++i) {
    // Same edge sets (order may differ); compare as sets.
    const auto in_backward = std::find(backward.begin(), backward.end(), forward[i]);
    EXPECT_NE(in_backward, backward.end());
  }
}

TEST(NNDecomposition, Figure2Example) {
  // Paper Figure 2: α=(1,1), β=(3,5).
  // p(α,β) = {((1,1),(2,1)), ((2,1),(3,1)), ((3,1),(3,2)), ((3,2),(3,3)),
  //           ((3,3),(3,4)), ((3,4),(3,5))}.
  const auto edges = nn_decomposition(Point{1, 1}, Point{3, 5});
  ASSERT_EQ(edges.size(), 6u);
  EXPECT_EQ(edges[0], (NNEdge{Point{1, 1}, Point{2, 1}}));
  EXPECT_EQ(edges[1], (NNEdge{Point{2, 1}, Point{3, 1}}));
  EXPECT_EQ(edges[2], (NNEdge{Point{3, 1}, Point{3, 2}}));
  EXPECT_EQ(edges[3], (NNEdge{Point{3, 2}, Point{3, 3}}));
  EXPECT_EQ(edges[4], (NNEdge{Point{3, 3}, Point{3, 4}}));
  EXPECT_EQ(edges[5], (NNEdge{Point{3, 4}, Point{3, 5}}));
}

TEST(NNDecomposition, Figure2ReverseDiffers) {
  // p(β,α) corrects dimension 1 first from β=(3,5):
  // {((1,5),(2,5)), ((2,5),(3,5)), ((1,1),(1,2)), ((1,2),(1,3)),
  //  ((1,3),(1,4)), ((1,4),(1,5))}.
  const auto edges = nn_decomposition(Point{3, 5}, Point{1, 1});
  ASSERT_EQ(edges.size(), 6u);
  const std::set<std::string> got = [&] {
    std::set<std::string> s;
    for (const auto& e : edges) s.insert(e.first.to_string() + e.second.to_string());
    return s;
  }();
  const std::set<std::string> want = {"(1,5)(2,5)", "(2,5)(3,5)", "(1,1)(1,2)",
                                      "(1,2)(1,3)", "(1,3)(1,4)", "(1,4)(1,5)"};
  EXPECT_EQ(got, want);
  // And it differs from the forward decomposition.
  const auto forward = nn_decomposition(Point{1, 1}, Point{3, 5});
  std::set<std::string> fwd;
  for (const auto& e : forward) fwd.insert(e.first.to_string() + e.second.to_string());
  EXPECT_NE(got, fwd);
}

TEST(NNDecomposition, PathLengthEqualsManhattanDistance) {
  const Point alpha{1, 8, 3};
  const Point beta{5, 2, 7};
  const auto edges = nn_decomposition(alpha, beta);
  EXPECT_EQ(edges.size(), manhattan_distance(alpha, beta));
}

TEST(NNDecomposition, VerticesFormNNChain) {
  const auto vertices = nn_decomposition_vertices(Point{0, 0, 0}, Point{2, 3, 1});
  ASSERT_EQ(vertices.size(), 7u);  // Manhattan distance 6 + 1
  EXPECT_EQ(vertices.front(), (Point{0, 0, 0}));
  EXPECT_EQ(vertices.back(), (Point{2, 3, 1}));
  for (std::size_t i = 0; i + 1 < vertices.size(); ++i) {
    EXPECT_EQ(manhattan_distance(vertices[i], vertices[i + 1]), 1u);
  }
}

TEST(NNDecomposition, DimensionsCorrectedInOrder) {
  // The path corrects dimension 1 first, then 2, then 3.
  const auto vertices = nn_decomposition_vertices(Point{0, 0, 0}, Point{1, 1, 1});
  ASSERT_EQ(vertices.size(), 4u);
  EXPECT_EQ(vertices[1], (Point{1, 0, 0}));
  EXPECT_EQ(vertices[2], (Point{1, 1, 0}));
  EXPECT_EQ(vertices[3], (Point{1, 1, 1}));
}

TEST(NNDecomposition, EqualPointsYieldEmptyPath) {
  EXPECT_TRUE(nn_decomposition(Point{4, 4}, Point{4, 4}).empty());
  EXPECT_EQ(nn_decomposition_vertices(Point{4, 4}, Point{4, 4}).size(), 1u);
}

TEST(NNDecomposition, EveryEdgeIsANearestNeighborPair) {
  const auto edges = nn_decomposition(Point{7, 0, 2, 5}, Point{1, 6, 2, 0});
  for (const auto& [a, b] : edges) {
    EXPECT_EQ(manhattan_distance(a, b), 1u);
  }
}

TEST(NNDecomposition, DimensionMismatchThrowsTypedError) {
  // Mismatched endpoints raise a recoverable typed error (same pattern as
  // PartitionArgumentError / AllPairsLimitError), not a process abort.
  try {
    nn_decomposition(Point{1, 2}, Point{1, 2, 3});
    FAIL() << "expected DecompositionArgumentError";
  } catch (const DecompositionArgumentError& error) {
    EXPECT_EQ(error.alpha_dim(), 2);
    EXPECT_EQ(error.beta_dim(), 3);
    EXPECT_NE(std::string(error.what()).find("dimension"), std::string::npos);
  }
  EXPECT_THROW(nn_decomposition_vertices(Point{0}, Point{0, 0}),
               DecompositionArgumentError);
  // The typed error derives from the unified sfc::Error base, so one catch
  // at a tool boundary recovers from every library error.
  EXPECT_THROW(nn_decomposition(Point{1}, Point{1, 1}), Error);
}

}  // namespace
}  // namespace sfc
