#include "sfc/core/locality_measures.h"

#include <gtest/gtest.h>

#include "sfc/curves/curve_factory.h"
#include "sfc/curves/simple_curve.h"

namespace sfc {
namespace {

// Brute-force reference for the exact mode.
LocalityMeasures brute_force(const SpaceFillingCurve& curve) {
  const Universe& u = curve.universe();
  LocalityMeasures r;
  r.exact = true;
  long double sum = 0;
  for (index_t i = 0; i < u.cell_count(); ++i) {
    for (index_t j = i + 1; j < u.cell_count(); ++j) {
      const Point a = curve.point_at(i), b = curve.point_at(j);
      const auto key_dist = static_cast<double>(j - i);
      const auto gl = static_cast<double>(squared_euclidean_distance(a, b)) / key_dist;
      const auto manhattan = static_cast<double>(manhattan_distance(a, b));
      r.gl_max_euclidean_sq = std::max(r.gl_max_euclidean_sq, gl);
      r.nrs_max_manhattan_sq =
          std::max(r.nrs_max_manhattan_sq, manhattan * manhattan / key_dist);
      sum += static_cast<long double>(gl);
      ++r.pair_count;
    }
  }
  r.mean_euclidean_sq = static_cast<double>(sum / static_cast<long double>(r.pair_count));
  return r;
}

TEST(LocalityMeasures, MatchesBruteForceForEveryFamily) {
  const Universe u = Universe::pow2(2, 2);
  for (CurveFamily family : all_curve_families()) {
    const CurvePtr curve = make_curve(family, u, 5);
    const LocalityMeasures fast = compute_locality_measures(*curve);
    const LocalityMeasures slow = brute_force(*curve);
    EXPECT_DOUBLE_EQ(fast.gl_max_euclidean_sq, slow.gl_max_euclidean_sq)
        << family_name(family);
    EXPECT_DOUBLE_EQ(fast.nrs_max_manhattan_sq, slow.nrs_max_manhattan_sq)
        << family_name(family);
    EXPECT_NEAR(fast.mean_euclidean_sq, slow.mean_euclidean_sq, 1e-10)
        << family_name(family);
    EXPECT_EQ(fast.pair_count, slow.pair_count);
    EXPECT_TRUE(fast.exact);
  }
}

TEST(LocalityMeasures, OneDimensionalIdentityIsPerfect) {
  // On the identity curve, ∆E² = ∆π², so the ratio is |i-j| maximized at
  // n-1; the measure scales with n (no curve can keep both directions
  // constant in 1-d... the ratio ∆E²/∆π = |i-j| itself).
  const Universe u(1, 16);
  const SimpleCurve s(u);
  const LocalityMeasures r = compute_locality_measures(s);
  EXPECT_DOUBLE_EQ(r.gl_max_euclidean_sq, 15.0);
}

TEST(LocalityMeasures, HilbertReproducesGotsmanLindenbaumWindow) {
  // Gotsman & Lindenbaum prove the 2-d Hilbert measure tends to a value in
  // [6, 6.5] as the grid grows; finite grids approach the window from below
  // (measured: ~4.7 at k=3, ~5.2 at k=5).  Check the value stays under the
  // proven ceiling and increases toward the window with k.
  double previous = 0.0;
  for (int k : {3, 4, 5, 6}) {
    const Universe u = Universe::pow2(2, k);
    const CurvePtr h = make_curve(CurveFamily::kHilbert, u);
    const LocalityMeasures r = compute_locality_measures(*h);
    EXPECT_LE(r.gl_max_euclidean_sq, 6.5 + 1e-9) << "k=" << k;
    EXPECT_GE(r.gl_max_euclidean_sq, previous - 1e-9) << "k=" << k;
    previous = r.gl_max_euclidean_sq;
  }
  EXPECT_GE(previous, 4.5);  // the k=6 value is well inside reach of [6,6.5]
}

TEST(LocalityMeasures, HilbertBeatsZCurve) {
  // The Z curve's discontinuities blow up the inverse-direction measure;
  // Hilbert's continuity keeps it bounded — the classical reason Hilbert is
  // preferred for image scans despite Theorem 2 favouring neither.
  const Universe u = Universe::pow2(2, 4);
  const LocalityMeasures hilbert =
      compute_locality_measures(*make_curve(CurveFamily::kHilbert, u));
  const LocalityMeasures z =
      compute_locality_measures(*make_curve(CurveFamily::kZ, u));
  EXPECT_LT(hilbert.gl_max_euclidean_sq, z.gl_max_euclidean_sq);
}

TEST(LocalityMeasures, WindowedModeBoundsExactFromBelow) {
  const Universe u = Universe::pow2(2, 4);
  const CurvePtr h = make_curve(CurveFamily::kHilbert, u);
  const LocalityMeasures exact = compute_locality_measures(*h);
  LocalityOptions windowed;
  windowed.max_exact_cells = 1;  // force the windowed path
  windowed.window = 32;
  const LocalityMeasures approx = compute_locality_measures(*h, windowed);
  EXPECT_FALSE(approx.exact);
  EXPECT_LE(approx.gl_max_euclidean_sq, exact.gl_max_euclidean_sq + 1e-12);
  EXPECT_GT(approx.gl_max_euclidean_sq, 0.0);
  EXPECT_LT(approx.pair_count, exact.pair_count);
}

TEST(LocalityMeasures, MeanNeverExceedsMax) {
  const Universe u = Universe::pow2(2, 3);
  for (CurveFamily family : analytic_curve_families()) {
    const LocalityMeasures r =
        compute_locality_measures(*make_curve(family, u));
    EXPECT_LE(r.mean_euclidean_sq, r.gl_max_euclidean_sq) << family_name(family);
  }
}

TEST(LocalityMeasures, ManhattanMaxDominatesEuclidean) {
  // ∆ >= ∆E pointwise, so the NRS variant dominates the GL variant.
  const Universe u = Universe::pow2(2, 3);
  const LocalityMeasures r =
      compute_locality_measures(*make_curve(CurveFamily::kZ, u));
  EXPECT_GE(r.nrs_max_manhattan_sq, r.gl_max_euclidean_sq);
}

}  // namespace
}  // namespace sfc
