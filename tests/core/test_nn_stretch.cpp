#include "sfc/core/nn_stretch.h"

#include <gtest/gtest.h>

#include "sfc/curves/curve_factory.h"
#include "sfc/curves/simple_curve.h"
#include "sfc/curves/toy_curves.h"
#include "sfc/curves/zcurve.h"

namespace sfc {
namespace {

// Brute-force reference implementation straight from Definitions 1-4.
NNStretchResult brute_force(const SpaceFillingCurve& curve) {
  const Universe& u = curve.universe();
  NNStretchResult result;
  result.n = u.cell_count();
  result.dim = u.dim();
  result.nn_pair_count = u.nn_pair_count();
  long double avg_sum = 0, max_sum = 0, min_sum = 0;
  for (index_t id = 0; id < u.cell_count(); ++id) {
    const Point alpha = u.from_row_major(id);
    long double sum = 0;
    index_t dmax = 0;
    index_t dmin = ~index_t{0};
    int degree = 0;
    u.for_each_neighbor(alpha, [&](const Point& beta) {
      const index_t dist = curve.curve_distance(alpha, beta);
      sum += static_cast<long double>(dist);
      dmax = std::max(dmax, dist);
      dmin = std::min(dmin, dist);
      ++degree;
    });
    u.for_each_forward_neighbor(alpha, [&](const Point& beta, int dim) {
      result.lambda[static_cast<std::size_t>(dim)] += curve.curve_distance(alpha, beta);
    });
    if (degree > 0) {
      avg_sum += sum / degree;
      max_sum += static_cast<long double>(dmax);
      min_sum += static_cast<long double>(dmin);
    }
  }
  for (int i = 0; i < u.dim(); ++i) {
    result.nn_distance_total += result.lambda[static_cast<std::size_t>(i)];
  }
  result.average_average = static_cast<double>(avg_sum / static_cast<long double>(result.n));
  result.average_maximum = static_cast<double>(max_sum / static_cast<long double>(result.n));
  result.average_minimum = static_cast<double>(min_sum / static_cast<long double>(result.n));
  return result;
}

TEST(NNStretch, MatchesBruteForceForEveryFamily) {
  const Universe u = Universe::pow2(2, 3);
  for (CurveFamily family : all_curve_families()) {
    const CurvePtr curve = make_curve(family, u, 11);
    const NNStretchResult fast = compute_nn_stretch(*curve);
    const NNStretchResult slow = brute_force(*curve);
    EXPECT_DOUBLE_EQ(fast.average_average, slow.average_average) << family_name(family);
    EXPECT_DOUBLE_EQ(fast.average_maximum, slow.average_maximum) << family_name(family);
    EXPECT_DOUBLE_EQ(fast.average_minimum, slow.average_minimum) << family_name(family);
    for (int i = 0; i < u.dim(); ++i) {
      EXPECT_TRUE(fast.lambda[static_cast<std::size_t>(i)] ==
                  slow.lambda[static_cast<std::size_t>(i)])
          << family_name(family) << " lambda " << i;
    }
  }
}

TEST(NNStretch, MatchesBruteForceIn3D) {
  const Universe u = Universe::pow2(3, 2);
  const CurvePtr curve = make_curve(CurveFamily::kHilbert, u);
  const NNStretchResult fast = compute_nn_stretch(*curve);
  const NNStretchResult slow = brute_force(*curve);
  EXPECT_DOUBLE_EQ(fast.average_average, slow.average_average);
  EXPECT_DOUBLE_EQ(fast.average_maximum, slow.average_maximum);
}

TEST(NNStretch, Figure1WorkedValues) {
  const NNStretchResult r1 = compute_nn_stretch(*make_figure1_pi1());
  EXPECT_DOUBLE_EQ(r1.average_average, 1.5);
  EXPECT_DOUBLE_EQ(r1.average_maximum, 2.0);
  const NNStretchResult r2 = compute_nn_stretch(*make_figure1_pi2());
  EXPECT_DOUBLE_EQ(r2.average_average, 2.0);
  EXPECT_DOUBLE_EQ(r2.average_maximum, 2.5);
}

TEST(NNStretch, CacheAndNoCachePathsAgree) {
  // use_key_cache only matters on the scalar engine (the slab engine never
  // builds a table), so pin the engine to cover the KeyCache branch.
  const Universe u = Universe::pow2(2, 4);
  const ZCurve z(u);
  NNStretchOptions with_cache;
  with_cache.engine = NNStretchEngine::kScalar;
  with_cache.use_key_cache = true;
  NNStretchOptions without_cache;
  without_cache.engine = NNStretchEngine::kScalar;
  without_cache.use_key_cache = false;
  const NNStretchResult a = compute_nn_stretch(z, with_cache);
  const NNStretchResult b = compute_nn_stretch(z, without_cache);
  EXPECT_EQ(a.average_average, b.average_average);  // bit-identical
  EXPECT_EQ(a.average_maximum, b.average_maximum);
  EXPECT_TRUE(a.nn_distance_total == b.nn_distance_total);
}

TEST(NNStretch, DeterministicAcrossGrainAndThreads) {
  const Universe u = Universe::pow2(2, 5);
  const ZCurve z(u);
  ThreadPool one(1), four(4);

  NNStretchOptions opt_a;
  opt_a.pool = &one;
  opt_a.grain = 64;
  NNStretchOptions opt_b;
  opt_b.pool = &four;
  opt_b.grain = 64;
  const NNStretchResult a = compute_nn_stretch(z, opt_a);
  const NNStretchResult b = compute_nn_stretch(z, opt_b);
  // Same grain, different thread counts: bit-identical.
  EXPECT_EQ(a.average_average, b.average_average);
  EXPECT_EQ(a.average_maximum, b.average_maximum);
}

TEST(NNStretch, Lemma3SandwichHoldsForEveryFamily) {
  // (1/nd) Σ_NN ∆π <= Davg <= (2/nd) Σ_NN ∆π.
  const Universe u = Universe::pow2(2, 3);
  for (CurveFamily family : all_curve_families()) {
    const CurvePtr curve = make_curve(family, u, 23);
    const NNStretchResult r = compute_nn_stretch(*curve);
    EXPECT_LE(r.lemma3_lower, r.average_average * (1 + 1e-12)) << family_name(family);
    EXPECT_GE(r.lemma3_upper, r.average_average * (1 - 1e-12)) << family_name(family);
  }
}

TEST(NNStretch, OneDimensionalIdentityCurve) {
  // In 1-d the simple curve is the identity: every NN pair is at curve
  // distance 1, so Davg = Dmax = 1.
  const Universe u(1, 64);
  const SimpleCurve s(u);
  const NNStretchResult r = compute_nn_stretch(s);
  EXPECT_DOUBLE_EQ(r.average_average, 1.0);
  EXPECT_DOUBLE_EQ(r.average_maximum, 1.0);
  EXPECT_DOUBLE_EQ(r.average_minimum, 1.0);
  EXPECT_TRUE(equals_u64(r.nn_distance_total, 63));
}

TEST(NNStretch, SimpleCurve2x2ByHand) {
  // 2x2 simple curve keys: (0,0)=0 (1,0)=1 (0,1)=2 (1,1)=3.
  // δavg(0,0) = (|0-1| + |0-2|)/2 = 1.5; same for all cells by symmetry.
  const Universe u(2, 2);
  const SimpleCurve s(u);
  const NNStretchResult r = compute_nn_stretch(s);
  EXPECT_DOUBLE_EQ(r.average_average, 1.5);
  EXPECT_DOUBLE_EQ(r.average_maximum, 2.0);
  EXPECT_DOUBLE_EQ(r.average_minimum, 1.0);
  // Λ_1 = two horizontal pairs at distance 1 each = 2; Λ_2 = two vertical
  // pairs at distance 2 each = 4.
  EXPECT_TRUE(equals_u64(r.lambda[0], 2));
  EXPECT_TRUE(equals_u64(r.lambda[1], 4));
}

TEST(NNStretch, MinAndMaxCellStretchBracketsAverage) {
  const Universe u = Universe::pow2(2, 4);
  for (CurveFamily family : analytic_curve_families()) {
    const CurvePtr curve = make_curve(family, u);
    const NNStretchResult r = compute_nn_stretch(*curve);
    EXPECT_LE(r.min_cell_stretch, r.average_average) << family_name(family);
    EXPECT_GE(r.max_cell_stretch, r.average_average) << family_name(family);
  }
}

TEST(NNStretch, SingleCellUniverse) {
  const Universe u(2, 1);
  const SimpleCurve s(u);
  const NNStretchResult r = compute_nn_stretch(s);
  EXPECT_DOUBLE_EQ(r.average_average, 0.0);
  EXPECT_EQ(r.nn_pair_count, 0u);
}

TEST(CellStretch, SingleCellHelpersMatchEngine) {
  const Universe u = Universe::pow2(2, 3);
  const ZCurve z(u);
  // Engine averages the per-cell values; cross-check a few cells directly.
  long double avg = 0;
  for (index_t id = 0; id < u.cell_count(); ++id) {
    avg += static_cast<long double>(
        cell_average_stretch(z, u.from_row_major(id)));
  }
  const NNStretchResult r = compute_nn_stretch(z);
  EXPECT_NEAR(static_cast<double>(avg / static_cast<long double>(u.cell_count())),
              r.average_average, 1e-12);
}

}  // namespace
}  // namespace sfc
