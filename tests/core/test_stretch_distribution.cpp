#include "sfc/core/stretch_distribution.h"

#include <gtest/gtest.h>

#include <numeric>

#include "sfc/core/bounds.h"
#include "sfc/core/nn_stretch.h"
#include "sfc/curves/curve_factory.h"
#include "sfc/curves/toy_curves.h"

namespace sfc {
namespace {

TEST(StretchDistribution, MeansMatchMetricEngine) {
  const Universe u = Universe::pow2(2, 4);
  for (CurveFamily family : all_curve_families()) {
    const CurvePtr curve = make_curve(family, u, 7);
    const StretchDistribution dist = compute_stretch_distribution(*curve);
    const NNStretchResult engine = compute_nn_stretch(*curve);
    EXPECT_NEAR(dist.cell_average.mean, engine.average_average, 1e-9)
        << family_name(family);
    EXPECT_NEAR(dist.cell_maximum.mean, engine.average_maximum, 1e-9)
        << family_name(family);
    EXPECT_NEAR(dist.cell_minimum.mean, engine.average_minimum, 1e-9)
        << family_name(family);
  }
}

TEST(StretchDistribution, QuantilesAreMonotone) {
  const Universe u = Universe::pow2(2, 5);
  const CurvePtr z = make_curve(CurveFamily::kZ, u);
  const StretchDistribution dist = compute_stretch_distribution(*z);
  for (const DistributionSummary* summary :
       {&dist.cell_average, &dist.cell_maximum, &dist.cell_minimum}) {
    EXPECT_LE(summary->p10, summary->p50);
    EXPECT_LE(summary->p50, summary->p90);
    EXPECT_LE(summary->p90, summary->p99);
    EXPECT_LE(summary->p99, summary->max);
  }
}

TEST(StretchDistribution, HistogramCountsAllCells) {
  const Universe u = Universe::pow2(2, 4);
  const CurvePtr h = make_curve(CurveFamily::kHilbert, u);
  DistributionOptions options;
  options.histogram_bins = 8;
  const StretchDistribution dist = compute_stretch_distribution(*h, options);
  ASSERT_EQ(dist.average_histogram.size(), 8u);
  const index_t total = std::accumulate(dist.average_histogram.begin(),
                                        dist.average_histogram.end(), index_t{0});
  EXPECT_EQ(total, u.cell_count());
  EXPECT_GT(dist.histogram_bucket_width, 0.0);
}

TEST(StretchDistribution, ToyCurveConstantDistribution) {
  // Every cell of π1 has δavg = 1.5: the distribution is a point mass.
  const StretchDistribution dist =
      compute_stretch_distribution(*make_figure1_pi1());
  EXPECT_DOUBLE_EQ(dist.cell_average.p10, 1.5);
  EXPECT_DOUBLE_EQ(dist.cell_average.max, 1.5);
}

TEST(StretchDistribution, SimpleCurveMaxIsPointMass) {
  // Prop. 2's proof: EVERY cell of the simple curve has δmax = n^{1-1/d}.
  const Universe u(2, 8);
  const CurvePtr s = make_curve(CurveFamily::kSimple, u);
  const StretchDistribution dist = compute_stretch_distribution(*s);
  const auto expected = static_cast<double>(bounds::dmax_simple_exact(u));
  EXPECT_DOUBLE_EQ(dist.cell_maximum.p10, expected);
  EXPECT_DOUBLE_EQ(dist.cell_maximum.max, expected);
}

TEST(StretchDistribution, PaperIntuitionMostCellsHaveTwoFarNeighbors) {
  // §V-A's intuition for the Dmax/Davg factor-d gap on the simple curve:
  // for the vast majority of cells, two neighbors are far (distance
  // side^{d-1}) and the other 2d-2 are close, so the per-cell δavg median
  // sits near (2·side + 2)/4 in 2-d while δmax is side for all.
  const Universe u(2, 16);
  const CurvePtr s = make_curve(CurveFamily::kSimple, u);
  const StretchDistribution dist = compute_stretch_distribution(*s);
  EXPECT_NEAR(dist.cell_average.p50, (2.0 * 16 + 2) / 4, 1.0);
  EXPECT_DOUBLE_EQ(dist.cell_maximum.p50, 16.0);
}

}  // namespace
}  // namespace sfc
