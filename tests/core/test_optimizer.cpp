#include "sfc/core/optimizer.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "sfc/core/bounds.h"
#include "sfc/core/nn_stretch.h"

namespace sfc {
namespace {

OptimizeOptions quick_options(std::uint64_t iterations, std::uint64_t seed = 3) {
  OptimizeOptions options;
  options.iterations = iterations;
  options.seed = seed;
  options.random_accept = 0.02;
  return options;
}

TEST(Optimizer, ResultIsAValidBijection) {
  const Universe u(2, 4);
  const OptimizeResult result = optimize_davg(u, {}, quick_options(20000));
  std::vector<index_t> sorted = result.keys;
  std::sort(sorted.begin(), sorted.end());
  for (index_t i = 0; i < u.cell_count(); ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Optimizer, NeverWorseThanStart) {
  const Universe u(2, 4);
  const OptimizeResult result = optimize_davg(u, {}, quick_options(20000));
  EXPECT_LE(result.best_davg, result.initial_davg);
}

TEST(Optimizer, ReportedDavgMatchesRecomputation) {
  const Universe u(2, 4);
  OptimizeResult result = optimize_davg(u, {}, quick_options(20000));
  const CurvePtr curve = make_optimized_curve(u, result);
  const double recomputed = compute_nn_stretch(*curve).average_average;
  EXPECT_NEAR(result.best_davg, recomputed, 1e-9);
}

TEST(Optimizer, RespectsTheorem1Bound) {
  // However hard we optimize, Theorem 1 caps the improvement.
  const Universe u(2, 4);
  const OptimizeResult result = optimize_davg(u, {}, quick_options(100000));
  EXPECT_GE(result.best_davg, bounds::davg_lower_bound(u) - 1e-12);
}

TEST(Optimizer, ImprovesOnRowMajorFor4x4) {
  // Row-major Davg on 4x4 is 2.5; local search must find something better
  // (the Z curve already achieves 2.375).
  const Universe u(2, 4);
  const OptimizeResult result = optimize_davg(u, {}, quick_options(100000));
  EXPECT_DOUBLE_EQ(result.initial_davg, 2.5);
  EXPECT_LT(result.best_davg, 2.5);
}

TEST(Optimizer, DeterministicInSeed) {
  const Universe u(2, 3);
  const OptimizeResult a = optimize_davg(u, {}, quick_options(5000, 11));
  const OptimizeResult b = optimize_davg(u, {}, quick_options(5000, 11));
  EXPECT_EQ(a.best_davg, b.best_davg);
  EXPECT_EQ(a.keys, b.keys);
}

TEST(Optimizer, AcceptsCustomStart) {
  const Universe u(2, 3);
  // Start from a reversed ordering.
  std::vector<index_t> reversed(u.cell_count());
  for (index_t i = 0; i < u.cell_count(); ++i) {
    reversed[i] = u.cell_count() - 1 - i;
  }
  const OptimizeResult result =
      optimize_davg(u, reversed, quick_options(20000));
  // Reversal does not change Davg of row-major (|a-b| is reversal-invariant);
  // on the 3x3 grid the row-major Davg works out to exactly 2.
  EXPECT_DOUBLE_EQ(result.initial_davg, 2.0);
  EXPECT_LE(result.best_davg, result.initial_davg);
}

TEST(Optimizer, TracksAcceptedMoves) {
  const Universe u(2, 3);
  const OptimizeResult result = optimize_davg(u, {}, quick_options(5000));
  EXPECT_GT(result.accepted_moves, 0u);
  EXPECT_LE(result.accepted_moves, result.iterations);
}

}  // namespace
}  // namespace sfc
