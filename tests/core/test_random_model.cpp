#include "sfc/core/random_model.h"

#include <gtest/gtest.h>

#include "sfc/core/nn_stretch.h"
#include "sfc/curves/curve_factory.h"

namespace sfc {
namespace {

TEST(RandomModel, Names) {
  EXPECT_EQ(input_model_name(InputModel::kUniform), "uniform");
  EXPECT_EQ(input_model_name(InputModel::kGaussianBlob), "gaussian-blob");
  EXPECT_EQ(input_model_name(InputModel::kDiagonalBand), "diagonal-band");
}

TEST(RandomModel, SamplesAreInsideTheUniverse) {
  const Universe u = Universe::pow2(2, 5);
  Xoshiro256 rng(3);
  for (InputModel model : {InputModel::kUniform, InputModel::kGaussianBlob,
                           InputModel::kDiagonalBand}) {
    for (int trial = 0; trial < 500; ++trial) {
      EXPECT_TRUE(u.contains(sample_model_cell(model, u, rng)))
          << input_model_name(model);
    }
  }
}

TEST(RandomModel, GaussianBlobConcentratesNearCenter) {
  const Universe u = Universe::pow2(2, 6);
  Xoshiro256 rng(5);
  double mean_center_dist = 0.0;
  const int trials = 2000;
  const Point center{32, 32};
  for (int trial = 0; trial < trials; ++trial) {
    const Point p = sample_model_cell(InputModel::kGaussianBlob, u, rng);
    mean_center_dist += euclidean_distance(p, center);
  }
  mean_center_dist /= trials;
  // Sigma = side/8 = 8 -> mean radius ~ 8*sqrt(pi/2) ~ 10; far below the
  // ~24.5 a uniform sample would give.
  EXPECT_LT(mean_center_dist, 16.0);
}

TEST(RandomModel, DiagonalBandStaysNearDiagonal) {
  const Universe u = Universe::pow2(2, 6);
  Xoshiro256 rng(7);
  for (int trial = 0; trial < 1000; ++trial) {
    const Point p = sample_model_cell(InputModel::kDiagonalBand, u, rng);
    const double diff = std::abs(static_cast<double>(p[0]) - p[1]);
    EXPECT_LE(diff, 8.0);  // band half-width side/8 = 8
  }
}

TEST(RandomModel, UniformWeightedDavgMatchesEngine) {
  // With the uniform model, the query-weighted Davg estimator converges to
  // the true Davg from the metric engine.
  const Universe u = Universe::pow2(2, 4);
  const CurvePtr z = make_curve(CurveFamily::kZ, u);
  const NNStretchResult exact = compute_nn_stretch(*z);
  const ModelStretch sampled =
      measure_model_stretch(*z, InputModel::kUniform, 40000, 9);
  EXPECT_NEAR(sampled.weighted_davg, exact.average_average,
              5 * sampled.stderr_davg + 1e-9);
}

TEST(RandomModel, DeterministicInSeed) {
  const Universe u = Universe::pow2(2, 4);
  const CurvePtr h = make_curve(CurveFamily::kHilbert, u);
  const ModelStretch a =
      measure_model_stretch(*h, InputModel::kGaussianBlob, 2000, 11);
  const ModelStretch b =
      measure_model_stretch(*h, InputModel::kGaussianBlob, 2000, 11);
  EXPECT_EQ(a.weighted_davg, b.weighted_davg);
  EXPECT_EQ(a.weighted_allpairs_manhattan, b.weighted_allpairs_manhattan);
}

TEST(RandomModel, ClusteredPairsSeeHigherRelativeStretch) {
  // Hot-spot pairs are spatially close, and the ratio ∆π/∆ is largest for
  // close pairs (the NN pairs are the worst case — that is why the paper
  // centers on NN stretch).  So clustered input sees HIGHER relative
  // stretch than uniform input — the empirical §VI-4 observation.
  const Universe u = Universe::pow2(2, 6);
  const CurvePtr h = make_curve(CurveFamily::kHilbert, u);
  const ModelStretch uniform =
      measure_model_stretch(*h, InputModel::kUniform, 20000, 13);
  const ModelStretch blob =
      measure_model_stretch(*h, InputModel::kGaussianBlob, 20000, 13);
  EXPECT_GT(blob.weighted_allpairs_manhattan,
            uniform.weighted_allpairs_manhattan);
}

TEST(RandomModel, ReportsSampleCount) {
  const Universe u = Universe::pow2(2, 3);
  const CurvePtr s = make_curve(CurveFamily::kSimple, u);
  const ModelStretch r =
      measure_model_stretch(*s, InputModel::kDiagonalBand, 500, 1);
  EXPECT_EQ(r.samples, 500u);
  EXPECT_EQ(r.model, InputModel::kDiagonalBand);
  EXPECT_GT(r.weighted_davg, 0.0);
}

}  // namespace
}  // namespace sfc
