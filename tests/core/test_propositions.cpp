// Propositions 1-4 (§V): Dmax lower bound, exact Dmax(S), all-pairs stretch
// lower bounds for every SFC and upper bounds for the simple curve.
#include <gtest/gtest.h>

#include "sfc/core/all_pairs.h"
#include "sfc/core/bounds.h"
#include "sfc/core/nn_stretch.h"
#include "sfc/curves/curve_factory.h"
#include "sfc/curves/permutation_curve.h"
#include "sfc/curves/simple_curve.h"

namespace sfc {
namespace {

TEST(Proposition1, DmaxBoundHoldsForEveryFamily) {
  for (const auto& [d, k] : std::vector<std::pair<int, int>>{{1, 4}, {2, 3}, {3, 2}}) {
    const Universe u = Universe::pow2(d, k);
    const double bound = bounds::dmax_lower_bound(u);
    for (CurveFamily family : all_curve_families()) {
      const CurvePtr curve = make_curve(family, u, 13);
      const NNStretchResult r = compute_nn_stretch(*curve);
      EXPECT_GE(r.average_maximum, bound * (1 - 1e-12))
          << family_name(family) << " d=" << d;
      // Dmax >= Davg always (max dominates mean).
      EXPECT_GE(r.average_maximum, r.average_average * (1 - 1e-12))
          << family_name(family);
    }
  }
}

TEST(Proposition2, DmaxSimpleIsExactlyNPow1m1d) {
  // Dmax(S) = n^{1-1/d} as an exact equality, for any d and side >= 2.
  for (const auto& [d, side] : std::vector<std::pair<int, coord_t>>{
           {1, 8}, {2, 4}, {2, 8}, {2, 6}, {3, 4}, {4, 3}}) {
    const Universe u(d, side);
    const SimpleCurve s(u);
    const NNStretchResult r = compute_nn_stretch(s);
    EXPECT_DOUBLE_EQ(r.average_maximum,
                     static_cast<double>(bounds::dmax_simple_exact(u)))
        << "d=" << d << " side=" << side;
  }
}

TEST(Proposition2, EveryCellAchievesTheMaximum) {
  // The proof: every cell has a dimension-d neighbor at distance side^{d-1}.
  const Universe u(3, 4);
  const SimpleCurve s(u);
  for (index_t id = 0; id < u.cell_count(); ++id) {
    EXPECT_EQ(cell_maximum_stretch(s, u.from_row_major(id)),
              bounds::dmax_simple_exact(u));
  }
}

TEST(Proposition3, AllPairsBoundsHoldForEveryFamily) {
  const Universe u = Universe::pow2(2, 3);
  const double bound_m = bounds::allpairs_manhattan_lower_bound(u);
  const double bound_e = bounds::allpairs_euclidean_lower_bound(u);
  for (CurveFamily family : all_curve_families()) {
    const CurvePtr curve = make_curve(family, u, 21);
    const AllPairsResult r = compute_all_pairs_exact(*curve);
    EXPECT_GE(r.avg_stretch_manhattan, bound_m * (1 - 1e-12)) << family_name(family);
    EXPECT_GE(r.avg_stretch_euclidean, bound_e * (1 - 1e-12)) << family_name(family);
  }
}

TEST(Proposition3, HoldsForAdversarialRandomBijections) {
  const Universe u(2, 4);
  const double bound_m = bounds::allpairs_manhattan_lower_bound(u);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const CurvePtr curve = PermutationCurve::random(u, seed);
    const AllPairsResult r = compute_all_pairs_exact(*curve);
    EXPECT_GE(r.avg_stretch_manhattan, bound_m) << "seed=" << seed;
  }
}

TEST(Proposition3, HoldsIn3D) {
  const Universe u = Universe::pow2(3, 2);
  const double bound_m = bounds::allpairs_manhattan_lower_bound(u);
  const double bound_e = bounds::allpairs_euclidean_lower_bound(u);
  const CurvePtr z = make_curve(CurveFamily::kZ, u);
  const AllPairsResult r = compute_all_pairs_exact(*z);
  EXPECT_GE(r.avg_stretch_manhattan, bound_m);
  EXPECT_GE(r.avg_stretch_euclidean, bound_e);
}

TEST(Proposition4, SimpleCurveUpperBounds) {
  // str_M(S) <= n^{1-1/d}, str_E(S) <= sqrt(2) n^{1-1/d} — and per Lemma 7
  // these hold per-pair, hence for the averages.
  for (const auto& [d, side] : std::vector<std::pair<int, coord_t>>{
           {1, 16}, {2, 8}, {3, 4}}) {
    const Universe u(d, side);
    const SimpleCurve s(u);
    const AllPairsResult r = compute_all_pairs_exact(s);
    EXPECT_LE(r.avg_stretch_manhattan,
              bounds::allpairs_simple_manhattan_upper_bound(u) * (1 + 1e-12))
        << "d=" << d;
    EXPECT_LE(r.avg_stretch_euclidean,
              bounds::allpairs_simple_euclidean_upper_bound(u) * (1 + 1e-12))
        << "d=" << d;
  }
}

TEST(Proposition4Lemma7, PerPairRatioBound) {
  // Lemma 7: ∆S/∆ <= n^{1-1/d} and ∆S/∆E <= sqrt(2) n^{1-1/d} for EVERY pair.
  const Universe u(2, 8);
  const SimpleCurve s(u);
  const double bound_m = bounds::allpairs_simple_manhattan_upper_bound(u);
  const double bound_e = bounds::allpairs_simple_euclidean_upper_bound(u);
  for (index_t a = 0; a < u.cell_count(); ++a) {
    for (index_t b = a + 1; b < u.cell_count(); ++b) {
      const Point pa = u.from_row_major(a), pb = u.from_row_major(b);
      const auto dist = static_cast<double>(s.curve_distance(pa, pb));
      EXPECT_LE(dist / static_cast<double>(manhattan_distance(pa, pb)),
                bound_m * (1 + 1e-12));
      EXPECT_LE(dist / euclidean_distance(pa, pb), bound_e * (1 + 1e-12));
    }
  }
}

TEST(Lemma6, MaxDistancesAchievedAtOppositeCorners) {
  const Universe u = Universe::pow2(2, 3);
  Point far = Point::zero(2);
  far[0] = far[1] = u.side() - 1;
  EXPECT_EQ(manhattan_distance(Point::zero(2), far),
            bounds::max_manhattan_distance(u));
  EXPECT_NEAR(euclidean_distance(Point::zero(2), far),
              bounds::max_euclidean_distance(u), 1e-12);
}

}  // namespace
}  // namespace sfc
