#include "sfc/core/all_pairs.h"

#include <gtest/gtest.h>

#include "sfc/common/math.h"
#include "sfc/curves/curve_factory.h"
#include "sfc/curves/simple_curve.h"

namespace sfc {
namespace {

// Straight-from-definition reference.
AllPairsResult brute_force(const SpaceFillingCurve& curve) {
  const Universe& u = curve.universe();
  AllPairsResult r;
  r.n = u.cell_count();
  r.exact = true;
  long double manhattan = 0, euclidean = 0;
  for (index_t a = 0; a < u.cell_count(); ++a) {
    for (index_t b = a + 1; b < u.cell_count(); ++b) {
      const Point pa = u.from_row_major(a), pb = u.from_row_major(b);
      const auto dist = static_cast<long double>(curve.curve_distance(pa, pb));
      manhattan += dist / static_cast<long double>(manhattan_distance(pa, pb));
      euclidean += dist / static_cast<long double>(euclidean_distance(pa, pb));
      r.total_curve_distance_ordered += 2 * curve.curve_distance(pa, pb);
    }
  }
  r.pair_count = u.cell_count() * (u.cell_count() - 1) / 2;
  r.avg_stretch_manhattan =
      static_cast<double>(manhattan / static_cast<long double>(r.pair_count));
  r.avg_stretch_euclidean =
      static_cast<double>(euclidean / static_cast<long double>(r.pair_count));
  return r;
}

TEST(AllPairsExact, MatchesBruteForceEveryFamily) {
  const Universe u = Universe::pow2(2, 2);
  for (CurveFamily family : all_curve_families()) {
    const CurvePtr curve = make_curve(family, u, 9);
    const AllPairsResult fast = compute_all_pairs_exact(*curve);
    const AllPairsResult slow = brute_force(*curve);
    EXPECT_NEAR(fast.avg_stretch_manhattan, slow.avg_stretch_manhattan, 1e-10)
        << family_name(family);
    EXPECT_NEAR(fast.avg_stretch_euclidean, slow.avg_stretch_euclidean, 1e-10)
        << family_name(family);
    EXPECT_TRUE(fast.total_curve_distance_ordered ==
                slow.total_curve_distance_ordered)
        << family_name(family);
    EXPECT_EQ(fast.pair_count, slow.pair_count);
  }
}

TEST(AllPairsExact, OrderedTotalIsLemma2Constant) {
  for (const auto& [d, side] : std::vector<std::pair<int, coord_t>>{
           {1, 16}, {2, 4}, {2, 8}, {3, 4}}) {
    const Universe u(d, side);
    const SimpleCurve s(u);
    const AllPairsResult r = compute_all_pairs_exact(s);
    EXPECT_TRUE(r.total_curve_distance_ordered == lemma2_total(u.cell_count()))
        << "d=" << d << " side=" << side;
  }
}

TEST(AllPairsExact, ManhattanStretchAtLeastOneOverMaxDistance) {
  // Each ratio ∆π/∆ >= 1/(d(side-1)) trivially; the averages are positive
  // and the Euclidean stretch dominates the Manhattan stretch because
  // ∆E <= ∆.
  const Universe u = Universe::pow2(2, 3);
  for (CurveFamily family : analytic_curve_families()) {
    const CurvePtr curve = make_curve(family, u);
    const AllPairsResult r = compute_all_pairs_exact(*curve);
    EXPECT_GE(r.avg_stretch_euclidean, r.avg_stretch_manhattan)
        << family_name(family);
    EXPECT_GT(r.avg_stretch_manhattan, 0.0);
  }
}

TEST(AllPairsSampled, ConvergesToExactValue) {
  const Universe u = Universe::pow2(2, 3);
  const CurvePtr z = make_curve(CurveFamily::kZ, u);
  const AllPairsResult exact = compute_all_pairs_exact(*z);
  const AllPairsResult sampled = estimate_all_pairs(*z, 200000, 123);
  // Within 5 standard errors.
  EXPECT_NEAR(sampled.avg_stretch_manhattan, exact.avg_stretch_manhattan,
              5 * sampled.stderr_manhattan + 1e-9);
  EXPECT_NEAR(sampled.avg_stretch_euclidean, exact.avg_stretch_euclidean,
              5 * sampled.stderr_euclidean + 1e-9);
  EXPECT_FALSE(sampled.exact);
  EXPECT_EQ(sampled.pair_count, 200000u);
}

TEST(AllPairsSampled, DeterministicInSeed) {
  const Universe u = Universe::pow2(2, 4);
  const CurvePtr z = make_curve(CurveFamily::kZ, u);
  const AllPairsResult a = estimate_all_pairs(*z, 1000, 7);
  const AllPairsResult b = estimate_all_pairs(*z, 1000, 7);
  EXPECT_EQ(a.avg_stretch_manhattan, b.avg_stretch_manhattan);
  const AllPairsResult c = estimate_all_pairs(*z, 1000, 8);
  EXPECT_NE(a.avg_stretch_manhattan, c.avg_stretch_manhattan);
}

TEST(AllPairsSampled, StandardErrorShrinksWithSamples) {
  const Universe u = Universe::pow2(2, 4);
  const CurvePtr z = make_curve(CurveFamily::kZ, u);
  const AllPairsResult small = estimate_all_pairs(*z, 1000, 3);
  const AllPairsResult large = estimate_all_pairs(*z, 100000, 3);
  EXPECT_LT(large.stderr_manhattan, small.stderr_manhattan);
}

TEST(AllPairsExact, ThrowsRecoverablyAboveExactLimit) {
  const Universe u = Universe::pow2(2, 3);  // 64 cells
  const CurvePtr z = make_curve(CurveFamily::kZ, u);
  AllPairsOptions options;
  options.max_exact_cells = 16;
  EXPECT_THROW(compute_all_pairs_exact(*z, options), AllPairsLimitError);
  try {
    compute_all_pairs_exact(*z, options);
    FAIL() << "expected AllPairsLimitError";
  } catch (const AllPairsLimitError& error) {
    EXPECT_EQ(error.n(), 64u);
    EXPECT_EQ(error.limit(), 16u);
    EXPECT_NE(std::string(error.what()).find("max_exact_cells"),
              std::string::npos);
  }
  // Recoverable: the sampled estimator and an exact run within the limit
  // both still work afterwards.
  const AllPairsResult sampled = estimate_all_pairs(*z, 1000, 5, options);
  EXPECT_FALSE(sampled.exact);
  options.max_exact_cells = 64;
  EXPECT_TRUE(compute_all_pairs_exact(*z, options).exact);
}

TEST(AllPairsExact, TwoCellUniverse) {
  const Universe u(1, 2);
  const SimpleCurve s(u);
  const AllPairsResult r = compute_all_pairs_exact(s);
  EXPECT_EQ(r.pair_count, 1u);
  EXPECT_DOUBLE_EQ(r.avg_stretch_manhattan, 1.0);
  EXPECT_DOUBLE_EQ(r.avg_stretch_euclidean, 1.0);
  EXPECT_TRUE(equals_u64(r.total_curve_distance_ordered, 2));
}

}  // namespace
}  // namespace sfc
