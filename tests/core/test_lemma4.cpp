// Lemma 4: every NN edge (ζ,η) lies on at most n^{(d+1)/d}/2 decomposition
// paths p(α,β).  The proof derives the exact multiplicity
// 2·side^{d-1}·(ζ_i+1)(side-1-ζ_i); we verify that exact count against brute
// force over all ordered pairs, and the bound on top of it.
#include <gtest/gtest.h>

#include <algorithm>

#include "sfc/core/nn_decomposition.h"

namespace sfc {
namespace {

u128 brute_force_multiplicity(const Universe& u, const Point& zeta, int dim_i) {
  Point eta = zeta;
  ++eta[dim_i];
  const NNEdge target{zeta, eta};
  u128 count = 0;
  for (index_t a = 0; a < u.cell_count(); ++a) {
    for (index_t b = 0; b < u.cell_count(); ++b) {
      if (a == b) continue;
      const auto edges = nn_decomposition(u.from_row_major(a), u.from_row_major(b));
      if (std::find(edges.begin(), edges.end(), target) != edges.end()) ++count;
    }
  }
  return count;
}

TEST(Lemma4, ExactMultiplicityFormula2D) {
  const Universe u(2, 4);
  for (coord_t x = 0; x + 1 < u.side(); ++x) {
    for (coord_t y = 0; y < u.side(); ++y) {
      const Point zeta{x, y};
      EXPECT_TRUE(brute_force_multiplicity(u, zeta, 0) ==
                  decomposition_multiplicity(u, zeta, 0))
          << "edge along dim 1 at " << zeta.to_string();
    }
  }
  for (coord_t x = 0; x < u.side(); ++x) {
    for (coord_t y = 0; y + 1 < u.side(); ++y) {
      const Point zeta{x, y};
      EXPECT_TRUE(brute_force_multiplicity(u, zeta, 1) ==
                  decomposition_multiplicity(u, zeta, 1))
          << "edge along dim 2 at " << zeta.to_string();
    }
  }
}

TEST(Lemma4, ExactMultiplicityFormula3D) {
  const Universe u(3, 3);
  // Sample a handful of edges in each dimension.
  const std::vector<Point> cells = {Point{0, 0, 0}, Point{1, 1, 1},
                                    Point{0, 2, 1}, Point{1, 0, 2}};
  for (const Point& zeta : cells) {
    for (int i = 0; i < 3; ++i) {
      if (zeta[i] + 1 >= u.side()) continue;
      EXPECT_TRUE(brute_force_multiplicity(u, zeta, i) ==
                  decomposition_multiplicity(u, zeta, i))
          << zeta.to_string() << " dim " << i;
    }
  }
}

TEST(Lemma4, MultiplicityNeverExceedsBound) {
  for (const auto& [d, side] : std::vector<std::pair<int, coord_t>>{
           {1, 8}, {2, 4}, {2, 8}, {3, 4}}) {
    const Universe u(d, side);
    const u128 bound = decomposition_multiplicity_bound(u);
    for (index_t id = 0; id < u.cell_count(); ++id) {
      const Point zeta = u.from_row_major(id);
      for (int i = 0; i < d; ++i) {
        if (zeta[i] + 1 >= side) continue;
        EXPECT_TRUE(decomposition_multiplicity(u, zeta, i) <= bound)
            << "d=" << d << " side=" << side;
      }
    }
  }
}

TEST(Lemma4, BoundIsTightAtCenterEdges) {
  // The multiplicity is maximized for ζ_i near side/2; at side=2 the bound
  // n·side/2 is achieved exactly: 2·side^{d-1}·1·1 = n = n·2/2.
  const Universe u(2, 2);
  EXPECT_TRUE(decomposition_multiplicity(u, Point{0, 0}, 0) ==
              decomposition_multiplicity_bound(u));
}

TEST(Lemma4, BoundFormula) {
  EXPECT_TRUE(decomposition_multiplicity_bound(Universe(2, 8)) ==
              u128{64} * 8 / 2);
  EXPECT_TRUE(decomposition_multiplicity_bound(Universe(3, 4)) ==
              u128{64} * 4 / 2);
}

TEST(Lemma4, TheoremOneCountingStep) {
  // The Theorem 1 proof needs: Σ over ordered pairs of |p(α,β)| equals
  // Σ over NN edges of multiplicity(edge).  Check the double-count on a
  // small universe.
  const Universe u(2, 3);
  u128 path_total = 0;
  for (index_t a = 0; a < u.cell_count(); ++a) {
    for (index_t b = 0; b < u.cell_count(); ++b) {
      if (a == b) continue;
      path_total += nn_decomposition(u.from_row_major(a), u.from_row_major(b)).size();
    }
  }
  u128 edge_total = 0;
  for (index_t id = 0; id < u.cell_count(); ++id) {
    const Point zeta = u.from_row_major(id);
    for (int i = 0; i < u.dim(); ++i) {
      if (zeta[i] + 1 >= u.side()) continue;
      edge_total += decomposition_multiplicity(u, zeta, i);
    }
  }
  EXPECT_TRUE(path_total == edge_total);
}

}  // namespace
}  // namespace sfc
