// The exact finite-n Davg(Z) closed form (bounds::davg_z_exact) — our
// sharpening of the paper's Theorem 2, which only gives the n -> infinity
// asymptote — must agree with the metric engine at every configuration.
#include <gtest/gtest.h>

#include "sfc/core/bounds.h"
#include "sfc/core/nn_stretch.h"
#include "sfc/curves/zcurve.h"

namespace sfc {
namespace {

class ZExactFormula : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ZExactFormula, MatchesMetricEngine) {
  const auto [d, k] = GetParam();
  const Universe u = Universe::pow2(d, k);
  const ZCurve z(u);
  const NNStretchResult measured = compute_nn_stretch(z);
  EXPECT_NEAR(bounds::davg_z_exact(u), measured.average_average,
              1e-9 * (1.0 + measured.average_average))
      << "d=" << d << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndLevels, ZExactFormula,
    ::testing::Values(std::pair{1, 1}, std::pair{1, 5}, std::pair{2, 1},
                      std::pair{2, 2}, std::pair{2, 3}, std::pair{2, 6},
                      std::pair{3, 1}, std::pair{3, 2}, std::pair{3, 4},
                      std::pair{4, 2}, std::pair{5, 2}),
    [](const auto& name_info) {
      return "d" + std::to_string(name_info.param.first) + "_k" +
             std::to_string(name_info.param.second);
    });

TEST(ZExactFormula, KnownSmallValues) {
  // 2x2 Z curve: Davg = 1.5 (hand-computed in the Theorem-2 tests).
  EXPECT_DOUBLE_EQ(bounds::davg_z_exact(Universe::pow2(2, 1)), 1.5);
  // 4x4 Z curve: engine gives 2.375.
  EXPECT_DOUBLE_EQ(bounds::davg_z_exact(Universe::pow2(2, 2)), 2.375);
}

TEST(ZExactFormula, OneDimensionalIsOne) {
  for (int k : {1, 4, 10}) {
    EXPECT_DOUBLE_EQ(bounds::davg_z_exact(Universe::pow2(1, k)), 1.0);
  }
}

TEST(ZExactFormula, ConvergesToTheorem2Asymptote) {
  // d * exact / n^{1-1/d} -> 1, and the exact form lets us evaluate far
  // beyond what the O(n) metric engine sweep can reach.
  const int d = 2;
  double previous_error = 1e18;
  for (int k = 2; k <= 16; ++k) {  // up to n = 2^32 — closed form only
    const Universe u = Universe::pow2(d, k);
    const double normalized =
        d * bounds::davg_z_exact(u) / static_cast<double>(bounds::n_pow_1m1d(u));
    const double error = std::abs(normalized - 1.0);
    EXPECT_LT(error, previous_error) << "k=" << k;
    previous_error = error;
  }
  EXPECT_LT(previous_error, 1e-4);
}

TEST(ZExactFormula, RatioToBoundApproaches1Point5) {
  const Universe u = Universe::pow2(2, 14);  // n = 2^28: engine-infeasible
  const double ratio = bounds::davg_z_exact(u) / bounds::davg_lower_bound(u);
  EXPECT_NEAR(ratio, 1.5, 1e-3);
}

TEST(ZExactFormula, DegenerateSideOne) {
  EXPECT_DOUBLE_EQ(bounds::davg_z_exact(Universe::pow2(3, 0)), 0.0);
}

}  // namespace
}  // namespace sfc
