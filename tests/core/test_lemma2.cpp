// Lemma 2: S_A'(π) = (n-1)n(n+1)/3 for EVERY bijection π — an exact
// curve-independent identity.  Verified exhaustively against brute force for
// random bijections and every named curve.
#include <gtest/gtest.h>

#include "sfc/common/math.h"
#include "sfc/core/all_pairs.h"
#include "sfc/curves/curve_factory.h"
#include "sfc/curves/permutation_curve.h"

namespace sfc {
namespace {

u128 brute_force_ordered_total(const SpaceFillingCurve& curve) {
  const Universe& u = curve.universe();
  u128 total = 0;
  for (index_t a = 0; a < u.cell_count(); ++a) {
    for (index_t b = 0; b < u.cell_count(); ++b) {
      if (a == b) continue;
      total += curve.curve_distance(u.from_row_major(a), u.from_row_major(b));
    }
  }
  return total;
}

TEST(Lemma2, HoldsForEveryNamedCurve) {
  const Universe u = Universe::pow2(2, 2);
  const u128 expected = lemma2_total(u.cell_count());
  for (CurveFamily family : all_curve_families()) {
    const CurvePtr curve = make_curve(family, u, 5);
    EXPECT_TRUE(brute_force_ordered_total(*curve) == expected)
        << family_name(family);
  }
}

TEST(Lemma2, HoldsForRandomBijections) {
  // The identity is permutation-invariant: check several adversarial
  // random bijections on differently sized universes.
  for (const auto& [d, side] : std::vector<std::pair<int, coord_t>>{
           {1, 7}, {2, 3}, {2, 4}, {3, 2}}) {
    const Universe u(d, side);
    const u128 expected = lemma2_total(u.cell_count());
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const CurvePtr curve = PermutationCurve::random(u, seed);
      EXPECT_TRUE(brute_force_ordered_total(*curve) == expected)
          << "d=" << d << " side=" << side << " seed=" << seed;
    }
  }
}

TEST(Lemma2, AllPairsEngineReturnsSameTotal) {
  const Universe u = Universe::pow2(2, 3);
  const u128 expected = lemma2_total(u.cell_count());
  for (CurveFamily family : all_curve_families()) {
    const CurvePtr curve = make_curve(family, u, 3);
    const AllPairsResult result = compute_all_pairs_exact(*curve);
    EXPECT_TRUE(result.total_curve_distance_ordered == expected)
        << family_name(family);
  }
}

TEST(Lemma2, SubgroupCountingArgument) {
  // The proof partitions A' into groups A'_i with |A'_i| = 2(n-i) pairs at
  // curve distance exactly i.  Verify the partition sizes for one curve.
  const Universe u = Universe::pow2(1, 3);  // n=8, identity curve semantics
  const CurvePtr curve = make_curve(CurveFamily::kSimple, u);
  const index_t n = u.cell_count();
  std::vector<index_t> group_sizes(n, 0);
  for (index_t a = 0; a < n; ++a) {
    for (index_t b = 0; b < n; ++b) {
      if (a == b) continue;
      const index_t dist =
          curve->curve_distance(u.from_row_major(a), u.from_row_major(b));
      ++group_sizes[dist];
    }
  }
  for (index_t i = 1; i < n; ++i) {
    EXPECT_EQ(group_sizes[i], 2 * (n - i)) << "i=" << i;
  }
}

}  // namespace
}  // namespace sfc
