// The exact finite-n Davg(S) formula (bounds::davg_simple_exact) — our
// sharpening of the paper's Theorem-3 asymptote — must agree with the metric
// engine for every dimension and side.
#include <gtest/gtest.h>

#include "sfc/core/bounds.h"
#include "sfc/core/nn_stretch.h"
#include "sfc/curves/simple_curve.h"

namespace sfc {
namespace {

class SimpleExactFormula
    : public ::testing::TestWithParam<std::pair<int, coord_t>> {};

TEST_P(SimpleExactFormula, MatchesMetricEngine) {
  const auto [d, side] = GetParam();
  const Universe u(d, side);
  const SimpleCurve s(u);
  const NNStretchResult measured = compute_nn_stretch(s);
  EXPECT_NEAR(bounds::davg_simple_exact(u), measured.average_average,
              1e-9 * (1.0 + measured.average_average))
      << "d=" << d << " side=" << side;
  EXPECT_DOUBLE_EQ(bounds::davg_min_simple_exact(u), measured.average_minimum)
      << "d=" << d << " side=" << side;
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndSides, SimpleExactFormula,
    ::testing::Values(std::pair<int, coord_t>{1, 2},
                      std::pair<int, coord_t>{1, 17},
                      std::pair<int, coord_t>{2, 2},
                      std::pair<int, coord_t>{2, 3},
                      std::pair<int, coord_t>{2, 8},
                      std::pair<int, coord_t>{2, 13},
                      std::pair<int, coord_t>{3, 2},
                      std::pair<int, coord_t>{3, 4},
                      std::pair<int, coord_t>{3, 7},
                      std::pair<int, coord_t>{4, 3},
                      std::pair<int, coord_t>{4, 4}),
    [](const auto& name_info) {
      return "d" + std::to_string(name_info.param.first) + "_side" +
             std::to_string(name_info.param.second);
    });

TEST(SimpleExactFormula, KnownSmallValues) {
  // Hand-computed earlier: 4x4 -> 2.5; 3x3 -> 2; 2x2 -> 1.5.
  EXPECT_DOUBLE_EQ(bounds::davg_simple_exact(Universe(2, 4)), 2.5);
  EXPECT_DOUBLE_EQ(bounds::davg_simple_exact(Universe(2, 3)), 2.0);
  EXPECT_DOUBLE_EQ(bounds::davg_simple_exact(Universe(2, 2)), 1.5);
}

TEST(SimpleExactFormula, OneDimensionalIsOne) {
  for (coord_t side : {coord_t{2}, coord_t{10}, coord_t{100}}) {
    EXPECT_DOUBLE_EQ(bounds::davg_simple_exact(Universe(1, side)), 1.0);
  }
}

TEST(SimpleExactFormula, DegenerateSideOne) {
  EXPECT_DOUBLE_EQ(bounds::davg_simple_exact(Universe(3, 1)), 0.0);
  EXPECT_DOUBLE_EQ(bounds::davg_min_simple_exact(Universe(3, 1)), 0.0);
}

TEST(SimpleExactFormula, ConvergesToTheorem3Asymptote) {
  // d * exact / n^{1-1/d} -> 1 as the side grows.
  double previous_error = 1e18;
  for (coord_t side : {coord_t{4}, coord_t{8}, coord_t{16}, coord_t{32},
                       coord_t{64}, coord_t{128}}) {
    const Universe u(2, side);
    const double normalized =
        2.0 * bounds::davg_simple_exact(u) / static_cast<double>(side);
    const double error = std::abs(normalized - 1.0);
    EXPECT_LT(error, previous_error) << "side=" << side;
    previous_error = error;
  }
  EXPECT_LT(previous_error, 0.02);
}

TEST(SimpleExactFormula, ExactBeatsAsymptoteAtSmallN) {
  // At small n the exact value differs measurably from the asymptote —
  // the reason to have the exact formula at all.
  const Universe u(2, 4);
  const double exact = bounds::davg_simple_exact(u);
  const double asymptote = bounds::davg_zs_asymptote(u);
  EXPECT_GT(std::abs(exact - asymptote) / asymptote, 0.2);
}

}  // namespace
}  // namespace sfc
