#include "sfc/cli/args.h"

#include <gtest/gtest.h>

namespace sfc::cli {
namespace {

TEST(Args, SubcommandAndFlags) {
  const Args args = Args::parse({"analyze", "--dim", "3", "--bits=4", "--csv"});
  ASSERT_TRUE(args.valid());
  EXPECT_EQ(args.subcommand(), "analyze");
  EXPECT_EQ(args.get_int("dim", 0).value(), 3);
  EXPECT_EQ(args.get_int("bits", 0).value(), 4);
  EXPECT_TRUE(args.get_flag("csv"));
  EXPECT_FALSE(args.get_flag("absent"));
}

TEST(Args, EmptyInput) {
  const Args args = Args::parse({});
  EXPECT_TRUE(args.valid());
  EXPECT_EQ(args.subcommand(), "");
}

TEST(Args, DefaultsWhenAbsent) {
  const Args args = Args::parse({"cmd"});
  EXPECT_EQ(args.get_string("curve", "z"), "z");
  EXPECT_EQ(args.get_int("dim", 7).value(), 7);
  EXPECT_DOUBLE_EQ(args.get_double("theta", 0.5).value(), 0.5);
}

TEST(Args, EqualsAndSpaceSyntaxEquivalent) {
  const Args a = Args::parse({"c", "--key=value"});
  const Args b = Args::parse({"c", "--key", "value"});
  EXPECT_EQ(a.get_string("key", ""), "value");
  EXPECT_EQ(b.get_string("key", ""), "value");
}

TEST(Args, BadIntegerReportsNullopt) {
  const Args args = Args::parse({"c", "--dim", "abc", "--bits", "3x"});
  EXPECT_FALSE(args.get_int("dim", 0).has_value());
  EXPECT_FALSE(args.get_int("bits", 0).has_value());
}

TEST(Args, DoubleParsing) {
  const Args args = Args::parse({"c", "--theta=0.25", "--bad", "1.2.3"});
  EXPECT_DOUBLE_EQ(args.get_double("theta", 0).value(), 0.25);
  EXPECT_FALSE(args.get_double("bad", 0).has_value());
}

TEST(Args, NegativeNumbersAsValues) {
  // "--key -3" would look like a flag; the = syntax handles negatives.
  const Args args = Args::parse({"c", "--offset=-3"});
  EXPECT_EQ(args.get_int("offset", 0).value(), -3);
}

TEST(Args, RejectsStrayPositional) {
  const Args args = Args::parse({"cmd", "oops"});
  EXPECT_FALSE(args.valid());
  EXPECT_NE(args.error().find("oops"), std::string::npos);
}

TEST(Args, RejectsDuplicateFlags) {
  const Args args = Args::parse({"cmd", "--a", "1", "--a", "2"});
  EXPECT_FALSE(args.valid());
}

TEST(Args, RejectsEmptyFlagName) {
  const Args args = Args::parse({"cmd", "--"});
  EXPECT_FALSE(args.valid());
}

TEST(Args, UnusedKeysTracksQueries) {
  const Args args = Args::parse({"cmd", "--used", "1", "--typo", "2"});
  ASSERT_TRUE(args.valid());
  (void)args.get_int("used", 0);
  const auto unused = args.unused_keys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Args, HasMarksQueried) {
  const Args args = Args::parse({"cmd", "--present"});
  EXPECT_TRUE(args.has("present"));
  EXPECT_TRUE(args.unused_keys().empty());
}

TEST(Args, BareFlagThenFlag) {
  const Args args = Args::parse({"cmd", "--verbose", "--dim", "2"});
  EXPECT_TRUE(args.get_flag("verbose"));
  EXPECT_EQ(args.get_int("dim", 0).value(), 2);
}

}  // namespace
}  // namespace sfc::cli
