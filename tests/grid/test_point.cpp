#include "sfc/grid/point.h"

#include <gtest/gtest.h>

namespace sfc {
namespace {

TEST(Point, InitializerListConstruction) {
  const Point p{3, 5, 7};
  EXPECT_EQ(p.dim(), 3);
  EXPECT_EQ(p[0], 3u);
  EXPECT_EQ(p[1], 5u);
  EXPECT_EQ(p[2], 7u);
}

TEST(Point, ZeroFactory) {
  const Point p = Point::zero(4);
  EXPECT_EQ(p.dim(), 4);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(p[i], 0u);
}

TEST(Point, Equality) {
  EXPECT_EQ((Point{1, 2}), (Point{1, 2}));
  EXPECT_NE((Point{1, 2}), (Point{2, 1}));
  EXPECT_NE((Point{1, 2}), (Point{1, 2, 0}));  // different dim
}

TEST(Point, MutableAccess) {
  Point p = Point::zero(2);
  p[0] = 9;
  p[1] = 4;
  EXPECT_EQ(p, (Point{9, 4}));
}

TEST(Point, ManhattanDistance) {
  EXPECT_EQ(manhattan_distance(Point{0, 0}, Point{0, 0}), 0u);
  EXPECT_EQ(manhattan_distance(Point{1, 1}, Point{3, 5}), 6u);
  EXPECT_EQ(manhattan_distance(Point{3, 5}, Point{1, 1}), 6u);  // symmetric
  EXPECT_EQ(manhattan_distance(Point{7}, Point{2}), 5u);
  EXPECT_EQ(manhattan_distance(Point{1, 2, 3, 4}, Point{4, 3, 2, 1}), 8u);
}

TEST(Point, SquaredEuclideanDistance) {
  EXPECT_EQ(squared_euclidean_distance(Point{0, 0}, Point{3, 4}), 25u);
  EXPECT_EQ(squared_euclidean_distance(Point{1, 1, 1}, Point{2, 2, 2}), 3u);
}

TEST(Point, EuclideanDistance) {
  EXPECT_DOUBLE_EQ(euclidean_distance(Point{0, 0}, Point{3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(euclidean_distance(Point{5}, Point{5}), 0.0);
}

TEST(Point, ChebyshevDistance) {
  EXPECT_EQ(chebyshev_distance(Point{1, 1}, Point{3, 9}), 8u);
  EXPECT_EQ(chebyshev_distance(Point{4, 4}, Point{4, 4}), 0u);
}

TEST(Point, NearestNeighborsHaveAllDistancesOne) {
  // Manhattan-distance-1 pairs are also Euclidean-distance-1 pairs (§III).
  const Point a{5, 5};
  const Point b{5, 6};
  EXPECT_EQ(manhattan_distance(a, b), 1u);
  EXPECT_DOUBLE_EQ(euclidean_distance(a, b), 1.0);
  EXPECT_EQ(chebyshev_distance(a, b), 1u);
}

TEST(Point, ToString) {
  EXPECT_EQ((Point{3, 5}).to_string(), "(3,5)");
  EXPECT_EQ((Point{1}).to_string(), "(1)");
  EXPECT_EQ((Point{0, 0, 0}).to_string(), "(0,0,0)");
}

TEST(Point, LargeCoordinatesNoOverflow) {
  const coord_t big = 0x80000000u;  // 2^31: squared distance sums reach 2^63
  const Point a{0, 0};
  const Point b{big, big};
  EXPECT_EQ(manhattan_distance(a, b), 2ull * big);
  EXPECT_EQ(squared_euclidean_distance(a, b),
            2ull * static_cast<std::uint64_t>(big) * big);
}

}  // namespace
}  // namespace sfc
