#include "sfc/grid/box.h"

#include <gtest/gtest.h>

#include <vector>

namespace sfc {
namespace {

TEST(Box, CellCount) {
  EXPECT_EQ(Box(Point{0, 0}, Point{0, 0}).cell_count(), 1u);
  EXPECT_EQ(Box(Point{0, 0}, Point{3, 3}).cell_count(), 16u);
  EXPECT_EQ(Box(Point{1, 2}, Point{2, 5}).cell_count(), 8u);
  EXPECT_EQ(Box(Point{0, 0, 0}, Point{1, 1, 1}).cell_count(), 8u);
}

TEST(Box, Contains) {
  const Box box(Point{1, 1}, Point{3, 4});
  EXPECT_TRUE(box.contains(Point{1, 1}));
  EXPECT_TRUE(box.contains(Point{3, 4}));
  EXPECT_TRUE(box.contains(Point{2, 3}));
  EXPECT_FALSE(box.contains(Point{0, 1}));
  EXPECT_FALSE(box.contains(Point{4, 4}));
  EXPECT_FALSE(box.contains(Point{2, 5}));
}

TEST(Box, IterationVisitsEveryCellOnce) {
  const Box box(Point{1, 2, 0}, Point{2, 3, 1});
  std::vector<Point> cells;
  box.for_each_cell([&](const Point& p) { cells.push_back(p); });
  EXPECT_EQ(cells.size(), box.cell_count());
  for (const Point& p : cells) EXPECT_TRUE(box.contains(p));
  // Distinctness.
  for (std::size_t i = 0; i < cells.size(); ++i) {
    for (std::size_t j = i + 1; j < cells.size(); ++j) {
      EXPECT_NE(cells[i], cells[j]);
    }
  }
}

TEST(Box, IterationIsRowMajor) {
  const Box box(Point{0, 0}, Point{1, 1});
  std::vector<Point> cells;
  box.for_each_cell([&](const Point& p) { cells.push_back(p); });
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0], (Point{0, 0}));
  EXPECT_EQ(cells[1], (Point{1, 0}));
  EXPECT_EQ(cells[2], (Point{0, 1}));
  EXPECT_EQ(cells[3], (Point{1, 1}));
}

TEST(Box, SingleCell) {
  const Box box(Point{5, 5}, Point{5, 5});
  int visits = 0;
  box.for_each_cell([&](const Point& p) {
    EXPECT_EQ(p, (Point{5, 5}));
    ++visits;
  });
  EXPECT_EQ(visits, 1);
}

TEST(Box, FullUniverse) {
  const Universe u(2, 4);
  const Box box = Box::full(u);
  EXPECT_EQ(box.cell_count(), u.cell_count());
  EXPECT_EQ(box.lo(), (Point{0, 0}));
  EXPECT_EQ(box.hi(), (Point{3, 3}));
}

}  // namespace
}  // namespace sfc
