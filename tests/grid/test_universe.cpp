#include "sfc/grid/universe.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace sfc {
namespace {

TEST(Universe, BasicProperties) {
  const Universe u(2, 8);
  EXPECT_EQ(u.dim(), 2);
  EXPECT_EQ(u.side(), 8u);
  EXPECT_EQ(u.cell_count(), 64u);
  EXPECT_TRUE(u.power_of_two_side());
  EXPECT_EQ(u.level_bits(), 3);
}

TEST(Universe, NonPowerOfTwoSide) {
  const Universe u(2, 6);  // the Figure-2 grid
  EXPECT_EQ(u.cell_count(), 36u);
  EXPECT_FALSE(u.power_of_two_side());
  EXPECT_EQ(u.level_bits(), -1);
}

TEST(Universe, Pow2Factory) {
  const Universe u = Universe::pow2(3, 4);
  EXPECT_EQ(u.side(), 16u);
  EXPECT_EQ(u.cell_count(), 4096u);
  EXPECT_EQ(u.level_bits(), 4);
}

TEST(Universe, SideOne) {
  const Universe u(3, 1);
  EXPECT_EQ(u.cell_count(), 1u);
  EXPECT_EQ(u.nn_pair_count(), 0u);
  EXPECT_EQ(u.neighbor_count(Point{0, 0, 0}), 0);
}

TEST(Universe, Contains) {
  const Universe u(2, 4);
  EXPECT_TRUE(u.contains(Point{0, 0}));
  EXPECT_TRUE(u.contains(Point{3, 3}));
  EXPECT_FALSE(u.contains(Point{4, 0}));
  EXPECT_FALSE(u.contains(Point{0, 4}));
  EXPECT_FALSE(u.contains(Point{0, 0, 0}));  // wrong dim
}

TEST(Universe, RowMajorRoundTrip) {
  const Universe u(3, 5);
  for (index_t id = 0; id < u.cell_count(); ++id) {
    EXPECT_EQ(u.row_major_index(u.from_row_major(id)), id);
  }
}

TEST(Universe, RowMajorMatchesFormula) {
  // id = x1 + x2*side + x3*side^2 (dimension 1 fastest).
  const Universe u(3, 4);
  EXPECT_EQ(u.row_major_index(Point{0, 0, 0}), 0u);
  EXPECT_EQ(u.row_major_index(Point{1, 0, 0}), 1u);
  EXPECT_EQ(u.row_major_index(Point{0, 1, 0}), 4u);
  EXPECT_EQ(u.row_major_index(Point{0, 0, 1}), 16u);
  EXPECT_EQ(u.row_major_index(Point{3, 3, 3}), 63u);
}

TEST(Universe, NeighborCountBounds) {
  // d <= |N(alpha)| <= 2d for every cell (paper §III), assuming side >= 2.
  const Universe u(3, 4);
  for (index_t id = 0; id < u.cell_count(); ++id) {
    const int count = u.neighbor_count(u.from_row_major(id));
    EXPECT_GE(count, u.dim());
    EXPECT_LE(count, 2 * u.dim());
  }
}

TEST(Universe, CornerAndInteriorNeighborCounts) {
  const Universe u(2, 4);
  EXPECT_EQ(u.neighbor_count(Point{0, 0}), 2);   // corner
  EXPECT_EQ(u.neighbor_count(Point{1, 0}), 3);   // edge
  EXPECT_EQ(u.neighbor_count(Point{1, 1}), 4);   // interior
  EXPECT_EQ(u.neighbor_count(Point{3, 3}), 2);   // far corner
}

TEST(Universe, ForEachNeighborEnumeratesExactlyDistanceOne) {
  const Universe u(3, 3);
  const Point center{1, 1, 1};
  std::set<index_t> seen;
  u.for_each_neighbor(center, [&](const Point& q) {
    EXPECT_EQ(manhattan_distance(center, q), 1u);
    EXPECT_TRUE(u.contains(q));
    seen.insert(u.row_major_index(q));
  });
  EXPECT_EQ(seen.size(), 6u);  // interior cell in 3-d
}

TEST(Universe, ForwardNeighborsVisitEachPairOnce) {
  const Universe u(2, 4);
  // Count unordered NN pairs via forward enumeration.
  index_t pairs = 0;
  for (index_t id = 0; id < u.cell_count(); ++id) {
    u.for_each_forward_neighbor(u.from_row_major(id),
                                [&](const Point&, int dim) {
                                  EXPECT_GE(dim, 0);
                                  EXPECT_LT(dim, u.dim());
                                  ++pairs;
                                });
  }
  EXPECT_EQ(pairs, u.nn_pair_count());
}

TEST(Universe, NNPairCountFormula) {
  // |NN_d| = d * (side-1) * side^{d-1}.
  EXPECT_EQ(Universe(1, 8).nn_pair_count(), 7u);
  EXPECT_EQ(Universe(2, 8).nn_pair_count(), 2u * 7u * 8u);
  EXPECT_EQ(Universe(3, 4).nn_pair_count(), 3u * 3u * 16u);
  EXPECT_EQ(Universe(2, 2).nn_pair_count(), 4u);  // the Figure-1 grid
}

TEST(Universe, NNPairCountMatchesBruteForce) {
  for (int d = 1; d <= 3; ++d) {
    const Universe u(d, 3);
    index_t brute = 0;
    for (index_t a = 0; a < u.cell_count(); ++a) {
      for (index_t b = a + 1; b < u.cell_count(); ++b) {
        if (manhattan_distance(u.from_row_major(a), u.from_row_major(b)) == 1) {
          ++brute;
        }
      }
    }
    EXPECT_EQ(u.nn_pair_count(), brute) << "d=" << d;
  }
}

TEST(Universe, Equality) {
  EXPECT_EQ(Universe(2, 8), Universe(2, 8));
  EXPECT_FALSE(Universe(2, 8) == Universe(3, 8));
  EXPECT_FALSE(Universe(2, 8) == Universe(2, 4));
}

}  // namespace
}  // namespace sfc
