#include "sfc/sort/radix_sort.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "sfc/curves/curve_factory.h"
#include "sfc/rng/xoshiro256.h"

namespace sfc {
namespace {

// Sizes straddling the comparison-sort fallback, the single-chunk radix
// path, and (with the small grain below) the multi-chunk parallel path.
const std::size_t kSizes[] = {0, 1, 2, 100, 2047, 2048, 5000, 100000};

// Small grain so even the mid-sized inputs split into many chunks.
SortOptions multi_chunk_options(ThreadPool* pool = nullptr) {
  SortOptions options;
  options.pool = pool;
  options.grain = 1024;
  return options;
}

std::vector<index_t> random_keys(std::size_t count, std::uint64_t seed,
                                 index_t mask = ~index_t{0}) {
  Xoshiro256 rng(seed);
  std::vector<index_t> keys(count);
  for (auto& key : keys) key = rng.next() & mask;
  return keys;
}

TEST(RadixSortKeys, MatchesStdSortOnRandomInput) {
  for (std::size_t count : kSizes) {
    std::vector<index_t> keys = random_keys(count, 1);
    std::vector<index_t> expected = keys;
    std::sort(expected.begin(), expected.end());
    radix_sort_keys(keys, multi_chunk_options());
    EXPECT_EQ(keys, expected) << "count=" << count;
  }
}

TEST(RadixSortKeys, MatchesStdSortOnDuplicateHeavyInput) {
  // Only 256 distinct values: every bucket overflows with duplicates and all
  // upper passes are constant-digit (skipped).
  std::vector<index_t> keys = random_keys(50000, 2, 0xff);
  std::vector<index_t> expected = keys;
  std::sort(expected.begin(), expected.end());
  radix_sort_keys(keys, multi_chunk_options());
  EXPECT_EQ(keys, expected);
}

TEST(RadixSortKeys, HandlesSortedReverseAndAllEqualInput) {
  const std::size_t count = 10000;
  std::vector<index_t> sorted(count), reversed(count), equal(count, 42);
  for (std::size_t i = 0; i < count; ++i) {
    sorted[i] = static_cast<index_t>(i) * 3;
    reversed[i] = static_cast<index_t>(count - i);
  }
  for (auto* keys : {&sorted, &reversed, &equal}) {
    std::vector<index_t> expected = *keys;
    std::sort(expected.begin(), expected.end());
    radix_sort_keys(*keys, multi_chunk_options());
    EXPECT_EQ(*keys, expected);
  }
}

TEST(RadixSortKeys, MatchesStdSortOnU128Keys) {
  for (std::size_t count : kSizes) {
    Xoshiro256 rng(3);
    std::vector<u128> keys(count);
    for (auto& key : keys) {
      key = (static_cast<u128>(rng.next()) << 64) | rng.next();
    }
    std::vector<u128> expected = keys;
    std::sort(expected.begin(), expected.end());
    radix_sort_keys(keys, multi_chunk_options());
    EXPECT_TRUE(keys == expected) << "count=" << count;
  }
}

TEST(RadixSortPairs, StableAndMatchesStableSort) {
  for (std::size_t count : kSizes) {
    // Narrow key range forces many ties, exercising stability.
    const std::vector<index_t> keys = random_keys(count, 4, 0x3ff);
    std::vector<KeyIndex> items(count);
    for (std::size_t i = 0; i < count; ++i) {
      items[i] = {keys[i], static_cast<std::uint32_t>(i)};
    }
    std::vector<KeyIndex> expected = items;
    std::stable_sort(expected.begin(), expected.end(),
                     [](const KeyIndex& a, const KeyIndex& b) {
                       return a.key < b.key;
                     });
    radix_sort_pairs(items, multi_chunk_options());
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(items[i].key, expected[i].key) << "count=" << count;
      EXPECT_EQ(items[i].index, expected[i].index)
          << "stability broken at " << i << " (count=" << count << ")";
    }
  }
}

TEST(RadixSortPairs, StableOnU128CompositeKeys) {
  const std::size_t count = 20000;
  Xoshiro256 rng(5);
  std::vector<KeyIndex128> items(count);
  for (std::size_t i = 0; i < count; ++i) {
    // High half narrow, low half narrow: ties at every level.
    items[i] = {(static_cast<u128>(rng.next() & 0xf) << 64) | (rng.next() & 0xf),
                static_cast<std::uint32_t>(i)};
  }
  std::vector<KeyIndex128> expected = items;
  std::stable_sort(expected.begin(), expected.end(),
                   [](const KeyIndex128& a, const KeyIndex128& b) {
                     return a.key < b.key;
                   });
  radix_sort_pairs(items, multi_chunk_options());
  for (std::size_t i = 0; i < count; ++i) {
    EXPECT_TRUE(items[i].key == expected[i].key);
    EXPECT_EQ(items[i].index, expected[i].index);
  }
}

TEST(RadixSortDoubles, MatchesStdSortIncludingNegativesAndInfinities) {
  Xoshiro256 rng(6);
  std::vector<double> values(30000);
  for (auto& v : values) v = (rng.next_double() - 0.5) * 1e12;
  values[0] = std::numeric_limits<double>::infinity();
  values[1] = -std::numeric_limits<double>::infinity();
  values[2] = 0.0;
  std::vector<double> expected = values;
  std::sort(expected.begin(), expected.end());
  radix_sort_doubles(values, multi_chunk_options());
  ASSERT_EQ(values.size(), expected.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(values[i], expected[i]) << "at " << i;
  }
}

TEST(RadixSortDeterminism, IdenticalOutputAcrossThreadCounts) {
  const std::size_t count = 100000;
  const std::vector<index_t> keys = random_keys(count, 7, 0xffff);
  std::vector<KeyIndex> reference;
  for (unsigned threads : {1u, 2u, 8u}) {
    // ThreadPool(t) adds t workers to the calling thread.
    ThreadPool pool(threads);
    std::vector<KeyIndex> items(count);
    for (std::size_t i = 0; i < count; ++i) {
      items[i] = {keys[i], static_cast<std::uint32_t>(i)};
    }
    radix_sort_pairs(items, multi_chunk_options(&pool));
    if (reference.empty()) {
      reference = items;
      continue;
    }
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_EQ(items[i].key, reference[i].key) << "threads=" << threads;
      ASSERT_EQ(items[i].index, reference[i].index) << "threads=" << threads;
    }
  }
}

TEST(SortByCurveKey, MatchesEncodeThenStableSortEveryFamily) {
  const Universe u = Universe::pow2(2, 5);
  Xoshiro256 rng(8);
  // More cells than the universe holds, so keys repeat and stability shows.
  std::vector<Point> cells(5000, Point::zero(2));
  for (auto& cell : cells) {
    for (int i = 0; i < 2; ++i) {
      cell[i] = static_cast<coord_t>(rng.next_below(u.side()));
    }
  }
  for (CurveFamily family : all_curve_families()) {
    const CurvePtr curve = make_curve(family, u, 11);
    std::vector<KeyIndex> expected(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      expected[i] = {curve->index_of(cells[i]), static_cast<std::uint32_t>(i)};
    }
    std::stable_sort(expected.begin(), expected.end(),
                     [](const KeyIndex& a, const KeyIndex& b) {
                       return a.key < b.key;
                     });
    const std::vector<KeyIndex> sorted =
        sort_by_curve_key(*curve, cells, multi_chunk_options());
    ASSERT_EQ(sorted.size(), expected.size());
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      EXPECT_EQ(sorted[i].key, expected[i].key) << family_name(family);
      EXPECT_EQ(sorted[i].index, expected[i].index) << family_name(family);
    }
  }
}

TEST(SortByCurveKey, EmptyAndSingleCell) {
  const Universe u = Universe::pow2(2, 3);
  const CurvePtr curve = make_curve(CurveFamily::kZ, u, 0);
  EXPECT_TRUE(sort_by_curve_key(*curve, {}).empty());
  const std::vector<Point> one{Point{3, 5}};
  const std::vector<KeyIndex> sorted = sort_by_curve_key(*curve, one);
  ASSERT_EQ(sorted.size(), 1u);
  EXPECT_EQ(sorted[0].key, curve->index_of(one[0]));
  EXPECT_EQ(sorted[0].index, 0u);
}

}  // namespace
}  // namespace sfc
