// Bit-identity of the MSD/LSD hybrid u128 sorter against its retained LSD
// reference, across key distributions engineered to hit every hybrid branch:
// random wide keys (one partition, small tails), duplicate-heavy and
// all-equal sets (constant-digit skipping), and top-digit-heavy sets whose
// partition buckets exceed the cache threshold and force the sequential MSD
// recursion.  Both engines are stable, so "identical output" is exact — key
// arrays compare element-wise equal and pair payloads preserve input order.
#include "sfc/sort/radix_sort.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sfc/rng/xoshiro256.h"

namespace sfc {
namespace {

std::vector<u128> random_u128(std::size_t count, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<u128> keys(count);
  for (auto& key : keys) {
    key = (static_cast<u128>(rng.next()) << 64) | rng.next();
  }
  return keys;
}

// Key distributions exercising the hybrid's branches by name.
std::vector<u128> keys_for(const std::string& kind, std::size_t count,
                           std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<u128> keys(count);
  if (kind == "random") {
    return random_u128(count, seed);
  }
  if (kind == "duplicate-heavy") {
    // 64 distinct values drawn once: every value repeats ~count/64 times.
    std::vector<u128> values = random_u128(64, seed + 1);
    for (auto& key : keys) key = values[rng.next_below(values.size())];
    return keys;
  }
  if (kind == "all-equal") {
    const u128 value = (static_cast<u128>(0x123456789abcdef0ull) << 64) | 42u;
    std::fill(keys.begin(), keys.end(), value);
    return keys;
  }
  if (kind == "top-digit-heavy") {
    // Only two values of the top discriminating byte: the MSD partition
    // leaves two buckets of ~count/2 records each, far above the tail
    // threshold, so both recurse on the next digit.
    for (auto& key : keys) {
      const u128 top = static_cast<u128>(rng.next() & 1) << 120;
      key = top | (rng.next() & 0xffffu);
    }
    return keys;
  }
  if (kind == "low-64-only") {
    // All sixteen high digits constant: the hybrid must skip down to the low
    // half before partitioning, like the LSD engine's pass skipping.
    for (auto& key : keys) key = rng.next();
    return keys;
  }
  ADD_FAILURE() << "unknown key distribution " << kind;
  return keys;
}

const char* kDistributions[] = {"random", "duplicate-heavy", "all-equal",
                                "top-digit-heavy", "low-64-only"};

TEST(HybridRadix, KeysBitIdenticalToLsdReferenceEveryDistribution) {
  const std::size_t count = 100000;
  for (const char* kind : kDistributions) {
    for (unsigned threads : {1u, 2u, 8u}) {
      for (std::uint64_t grain : {std::uint64_t{4096}, kDefaultGrain}) {
        ThreadPool pool(threads);
        SortOptions options;
        options.pool = &pool;
        options.grain = grain;
        std::vector<u128> hybrid = keys_for(kind, count, 11);
        std::vector<u128> reference = hybrid;
        radix_sort_keys(hybrid, options);
        lsd_radix_sort_keys(reference, options);
        ASSERT_TRUE(hybrid == reference)
            << kind << " threads=" << threads << " grain=" << grain;
        // And both really sort.
        ASSERT_TRUE(std::is_sorted(hybrid.begin(), hybrid.end())) << kind;
      }
    }
  }
}

TEST(HybridRadix, PairsStableAndBitIdenticalToLsdReference) {
  const std::size_t count = 100000;
  for (const char* kind : kDistributions) {
    const std::vector<u128> keys = keys_for(kind, count, 23);
    std::vector<KeyIndex128> hybrid(count);
    for (std::size_t i = 0; i < count; ++i) {
      hybrid[i] = {keys[i], static_cast<std::uint32_t>(i)};
    }
    std::vector<KeyIndex128> reference = hybrid;
    SortOptions options;
    options.grain = 4096;
    radix_sort_pairs(hybrid, options);
    lsd_radix_sort_pairs(reference, options);
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_TRUE(hybrid[i].key == reference[i].key) << kind << " at " << i;
      ASSERT_EQ(hybrid[i].index, reference[i].index) << kind << " at " << i;
    }
    // Stability against the comparison oracle: equal keys keep input order.
    std::vector<KeyIndex128> expected(count);
    for (std::size_t i = 0; i < count; ++i) {
      expected[i] = {keys[i], static_cast<std::uint32_t>(i)};
    }
    std::stable_sort(expected.begin(), expected.end(),
                     [](const KeyIndex128& a, const KeyIndex128& b) {
                       return a.key < b.key;
                     });
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_TRUE(hybrid[i].key == expected[i].key) << kind << " at " << i;
      ASSERT_EQ(hybrid[i].index, expected[i].index) << kind << " at " << i;
    }
  }
}

TEST(HybridRadix, IdenticalOutputAcrossThreadCounts) {
  const std::size_t count = 150000;
  const std::vector<u128> keys = keys_for("top-digit-heavy", count, 31);
  std::vector<KeyIndex128> reference;
  for (unsigned threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    SortOptions options;
    options.pool = &pool;
    options.grain = 4096;
    std::vector<KeyIndex128> items(count);
    for (std::size_t i = 0; i < count; ++i) {
      items[i] = {keys[i], static_cast<std::uint32_t>(i)};
    }
    radix_sort_pairs(items, options);
    if (reference.empty()) {
      reference = items;
      continue;
    }
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_TRUE(items[i].key == reference[i].key) << "threads=" << threads;
      ASSERT_EQ(items[i].index, reference[i].index) << "threads=" << threads;
    }
  }
}

TEST(HybridRadix, ReportsPerPassTimings) {
  // low-64-only: sixteen skipped high digits (8 on the hybrid side before it
  // reaches the discriminating one), then a partition and a tail phase.
  std::vector<u128> keys = keys_for("low-64-only", 50000, 47);
  SortStats stats;
  SortOptions options;
  options.stats = &stats;
  radix_sort_keys(keys, options);
  ASSERT_FALSE(stats.passes.empty());
  // Skipped MSD passes come first (digits 15..8 are constant), then one
  // scattered MSD partition, then the aggregate tail entry.
  EXPECT_EQ(stats.passes.front().digit, 15);
  EXPECT_FALSE(stats.passes.front().scattered);
  EXPECT_TRUE(stats.passes.front().msd);
  const SortPassTiming& tail = stats.passes.back();
  EXPECT_EQ(tail.digit, -1);
  EXPECT_FALSE(tail.msd);
  int partitions = 0;
  for (const SortPassTiming& pass : stats.passes) {
    if (pass.msd && pass.scattered) ++partitions;
  }
  EXPECT_EQ(partitions, 1);

  // The LSD reference reports one entry per digit pass.
  std::vector<u128> lsd_keys = keys_for("low-64-only", 50000, 47);
  SortStats lsd_stats;
  options.stats = &lsd_stats;
  lsd_radix_sort_keys(lsd_keys, options);
  EXPECT_EQ(lsd_stats.passes.size(), 16u);
  for (const SortPassTiming& pass : lsd_stats.passes) {
    EXPECT_FALSE(pass.msd);
    EXPECT_EQ(pass.scattered, pass.digit < 8) << "digit=" << pass.digit;
  }
}

TEST(HybridRadix, AllEqualLeavesPairsUntouched) {
  // Every digit constant: the hybrid finds no discriminating digit and must
  // return the input unchanged (it is already sorted and stable).
  const std::size_t count = 4096;
  std::vector<KeyIndex128> items(count);
  for (std::size_t i = 0; i < count; ++i) {
    items[i] = {static_cast<u128>(7) << 100, static_cast<std::uint32_t>(i)};
  }
  radix_sort_pairs(items);
  for (std::size_t i = 0; i < count; ++i) {
    ASSERT_EQ(items[i].index, static_cast<std::uint32_t>(i));
  }
}

}  // namespace
}  // namespace sfc
