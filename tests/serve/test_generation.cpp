// Generation lifecycle: hot reloads swap at batch boundaries while in-flight
// clients keep bit-identical answers from the generation they were admitted
// under; old generations unmap exactly at refcount zero; a corrupt reload is
// rejected with the old generation untouched; and shard-isolated degraded
// mode routes queries around dead shards with typed partial results — for
// every curve family — until a repaired reload resurrects them.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "sfc/curves/curve_factory.h"
#include "sfc/index/point_index.h"
#include "sfc/index/range_scan.h"
#include "sfc/rng/sampling.h"
#include "sfc/serve/generation.h"
#include "sfc/serve/serve_error.h"
#include "sfc/serve/server.h"
#include "sfc/serve/sharded_index.h"
#include "sfc/store/index_store.h"

namespace sfc {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/sfc_generation_" + name;
}

struct Dataset {
  CurveDescriptor descriptor;
  CurvePtr curve;
  std::vector<Point> points;
  PointIndex index;
};

Dataset make_dataset(const std::string& family, std::uint64_t seed,
                     int count = 800) {
  CurveDescriptor descriptor;
  descriptor.family = family;
  descriptor.dim = 2;
  descriptor.side = 64;
  descriptor.seed = 7;
  CurvePtr curve = make_curve(descriptor);
  Xoshiro256 rng(seed);
  std::vector<Point> points;
  for (int i = 0; i < count; ++i) {
    points.push_back(random_cell(curve->universe(), rng));
  }
  PointIndex index = PointIndex::build(*curve, points);
  return Dataset{descriptor, std::move(curve), std::move(points),
                 std::move(index)};
}

std::vector<std::uint32_t> scan_ids(const IndexColumnsView& view,
                                    const Box& box) {
  RangeScanEngine engine(view);
  std::vector<std::uint32_t> ids;
  engine.scan(box, &ids);
  return ids;
}

Box probe_box(int i) {
  const coord_t lo = static_cast<coord_t>((i * 5) % 48);
  return Box(Point{lo, lo}, Point{lo + 15, lo + 15});
}

/// Flips the low bit of the first coordinate of global row `row` in the
/// points column of the file at `path` (coords < side stay < side, so the
/// point stays in-universe but re-encodes to a different key — localizable
/// to the shard owning the row).
void corrupt_point_row(const std::string& path, std::uint64_t row) {
  MappedIndexOptions lazy;
  lazy.verify = false;
  lazy.lock = false;
  std::uint64_t offset = 0;
  {
    const MappedIndex mapped = MappedIndex::open(path, lazy);
    offset = mapped.column_offset(2) + row * sizeof(Point);
  }
  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(file.good());
  file.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x01);
  file.seekp(static_cast<std::streamoff>(offset));
  file.write(&byte, 1);
  ASSERT_TRUE(file.good());
}

TEST(Generation, ReloadStormKeepsEveryAnswerGenerationConsistent) {
  // Clients hammer a distinguishing probe while the main thread reloads
  // between two datasets; every answer must equal one dataset's reference
  // bit-exactly — a torn or mixed answer fails.  Run at 1, 8, and 64
  // clients: the swap must be invisible at every concurrency level.
  const Dataset a = make_dataset("hilbert", 41);
  const Dataset b = make_dataset("hilbert", 42);
  const std::string path = temp_path("reload_storm");
  const Box probe = probe_box(2);
  const auto ref_a = scan_ids(a.index.view(), probe);
  const auto ref_b = scan_ids(b.index.view(), probe);
  ASSERT_NE(ref_a, ref_b);

  for (const int clients : {1, 8, 64}) {
    write_index_file(path, a.index, a.descriptor);
    ServerOptions options;
    options.shard_bits = 2;
    options.batch_window_us = 50;
    IndexServer server(path, options);

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> answers{0};
    std::atomic<std::uint64_t> bad{0};
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&] {
        while (!stop.load()) {
          const ServedRange served = server.range_query_served(probe);
          ++answers;
          if (served.result.ids != ref_a && served.result.ids != ref_b) ++bad;
        }
      });
    }
    for (int r = 0; r < 20; ++r) {
      write_index_file(path, (r % 2 == 0) ? b.index : a.index,
                       (r % 2 == 0) ? b.descriptor : a.descriptor);
      EXPECT_EQ(server.reload(path), static_cast<std::uint64_t>(r + 1));
    }
    stop = true;
    for (std::thread& t : threads) t.join();
    server.stop();

    EXPECT_EQ(bad.load(), 0u) << clients << " clients";
    EXPECT_GT(answers.load(), 0u);
    const ServerHealth health = server.health();
    EXPECT_EQ(health.reloads, 20u);
    EXPECT_EQ(health.failed_reloads, 0u);
    EXPECT_EQ(health.epoch, 20u);
  }
}

TEST(Generation, OldGenerationUnmapsAtRefcountZero) {
  const Dataset a = make_dataset("hilbert", 43);
  const Dataset b = make_dataset("hilbert", 44);
  const std::string path = temp_path("refcount");
  write_index_file(path, a.index, a.descriptor);

  GenerationManager manager(IndexGeneration::open(path, 2, 0, false));
  std::shared_ptr<const IndexGeneration> pinned = manager.active();
  std::weak_ptr<const IndexGeneration> watch = pinned;
  EXPECT_EQ(pinned->epoch(), 0u);

  write_index_file(path, b.index, b.descriptor);
  const auto fresh = manager.reload(path, 2, false);
  EXPECT_EQ(fresh->epoch(), 1u);
  EXPECT_EQ(manager.active().get(), fresh.get());

  // The manager dropped the old generation, but the pin (an in-flight batch
  // in real serving) keeps it alive — and still answering from the *old*
  // bytes, which the rename-based write left untouched on the old inode.
  EXPECT_FALSE(watch.expired());
  EXPECT_EQ(scan_ids(pinned->sharded().base(), probe_box(1)),
            scan_ids(a.index.view(), probe_box(1)));

  pinned.reset();  // the last pin releases: the mapping unmaps now
  EXPECT_TRUE(watch.expired());
}

TEST(Generation, CorruptReloadLeavesOldGenerationServing) {
  const Dataset a = make_dataset("hilbert", 45);
  const std::string path = temp_path("corrupt_reload");
  write_index_file(path, a.index, a.descriptor);

  ServerOptions options;
  options.shard_bits = 2;
  IndexServer server(path, options);
  const Box probe = probe_box(4);
  const auto ref_a = scan_ids(a.index.view(), probe);
  EXPECT_EQ(server.range_query(probe).ids, ref_a);

  // Rename a torn stub over the path (never truncating in place — the old
  // generation's mapping and read lock pin the old inode, and in-place
  // mutation of a mapped file is exactly what the locking contract forbids).
  {
    const std::string stub = path + ".stub";
    std::ofstream file(stub, std::ios::binary | std::ios::trunc);
    file << "torn";
    file.close();
    ASSERT_EQ(std::rename(stub.c_str(), path.c_str()), 0);
  }
  try {
    server.reload(path);
    FAIL() << "expected ReloadError";
  } catch (const ReloadError& error) {
    EXPECT_EQ(error.path(), path);
    EXPECT_NE(std::string(error.what()).find("previous generation keeps"),
              std::string::npos);
  }
  // The old generation is untouched: same epoch, same answers, and the
  // failed attempt is accounted.
  const ServerHealth health = server.health();
  EXPECT_EQ(health.failed_reloads, 1u);
  EXPECT_EQ(health.reloads, 0u);
  EXPECT_EQ(health.epoch, 0u);
  EXPECT_EQ(server.range_query(probe).ids, ref_a);

  // Epochs burn monotonically across failures: the next success skips the
  // epoch the failed attempt consumed.
  write_index_file(path, a.index, a.descriptor);
  EXPECT_EQ(server.reload(path), 2u);
}

TEST(Generation, DegradedModeRoutesAroundDeadShardsForEveryFamily) {
  for (const std::string family : {"hilbert", "z", "snake", "gray", "simple",
                                   "random"}) {
    const Dataset a = make_dataset(family, 46);
    const std::string path = temp_path("degraded_" + family);
    write_index_file(path, a.index, a.descriptor);

    // Kill the shard owning the middle row by corrupting one of its points.
    constexpr int kShardBits = 2;
    const ShardedIndex reference(a.index.view(), kShardBits);
    const std::uint64_t victim_row = a.index.row_count() / 2;
    std::size_t dead = 0;
    while (dead + 1 < reference.shard_count() &&
           reference.shard_row_begin(dead + 1) <= victim_row) {
      ++dead;
    }
    corrupt_point_row(path, victim_row);

    // Strict open refuses; degraded open marks exactly that shard dead.
    EXPECT_THROW((void)IndexGeneration::open(path, kShardBits, 0, false),
                 StoreError)
        << family;
    ServerOptions options;
    options.shard_bits = kShardBits;
    options.allow_degraded = true;
    IndexServer server(path, options);
    const ServerHealth health = server.health();
    EXPECT_EQ(health.dead_shards, 1u) << family;
    ASSERT_EQ(health.shard_alive.size(), reference.shard_count()) << family;
    EXPECT_EQ(health.shard_alive[dead], 0u) << family;

    // Row -> shard for filtering reference answers down to live shards.
    const auto shard_of_row = [&](std::uint64_t row) {
      std::size_t s = 0;
      while (s + 1 < reference.shard_count() &&
             reference.shard_row_begin(s + 1) <= row) {
        ++s;
      }
      return s;
    };
    std::vector<std::size_t> id_shard(a.index.row_count());
    for (std::uint64_t row = 0; row < a.index.row_count(); ++row) {
      id_shard[a.index.ids()[row]] = shard_of_row(row);
    }

    int partial = 0;
    int full = 0;
    for (int i = 0; i < 10; ++i) {
      const Box probe = probe_box(i);
      const auto ref = scan_ids(a.index.view(), probe);
      std::vector<std::uint32_t> live_ref;
      for (const std::uint32_t id : ref) {
        if (id_shard[id] != dead) live_ref.push_back(id);
      }
      try {
        const RangeQueryResult result = server.range_query(probe);
        ++full;
        EXPECT_EQ(result.ids, ref) << family << " probe " << i;
      } catch (const PartialResultError& error) {
        ++partial;
        ASSERT_EQ(error.dead_shards().size(), 1u) << family;
        EXPECT_EQ(error.dead_shards()[0], dead) << family;
        EXPECT_EQ(error.partial_ids(), live_ref) << family << " probe " << i;
      }
    }
    EXPECT_GT(partial, 0) << family;  // the dead shard was actually routed

    // kNN is conservative: every query reports the dead shard, with the
    // live-shard best-k attached.
    try {
      (void)server.knn_query(Point{31, 31}, 4);
      FAIL() << family << ": expected PartialResultError";
    } catch (const PartialResultError& error) {
      EXPECT_EQ(error.dead_shards(), std::vector<std::uint32_t>{
                                         static_cast<std::uint32_t>(dead)});
      EXPECT_EQ(error.partial_neighbors().size(), 4u) << family;
    }

    // A repaired reload resurrects the shard: full answers everywhere.
    write_index_file(path, a.index, a.descriptor);
    (void)server.reload(path);
    EXPECT_EQ(server.health().dead_shards, 0u) << family;
    for (int i = 0; i < 10; ++i) {
      EXPECT_EQ(server.range_query(probe_box(i)).ids,
                scan_ids(a.index.view(), probe_box(i)))
          << family << " probe " << i;
    }
  }
}

TEST(Generation, UnlocalizableCorruptionRefusesDegradedOpen) {
  // The ids column carries no semantic invariant to localize by, so an ids
  // checksum mismatch must refuse even a degraded open — serving plausible
  // but unattributable ids would be a silent wrong answer.
  const Dataset a = make_dataset("hilbert", 47);
  const std::string path = temp_path("ids_corrupt");
  write_index_file(path, a.index, a.descriptor);

  MappedIndexOptions lazy;
  lazy.verify = false;
  lazy.lock = false;
  std::uint64_t ids_offset = 0;
  {
    const MappedIndex mapped = MappedIndex::open(path, lazy);
    ids_offset = mapped.column_offset(1);
  }
  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  file.seekg(static_cast<std::streamoff>(ids_offset));
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x55);
  file.seekp(static_cast<std::streamoff>(ids_offset));
  file.write(&byte, 1);
  file.close();

  EXPECT_THROW((void)IndexGeneration::open(path, 2, 0, true), StoreError);
}

}  // namespace
}  // namespace sfc
