// The chaos harness, exercised small: a short soak with reloads and crash
// cycles must come out clean (no wrong answers, no torn files, identity
// intact), and the gate itself must check every invariant it claims to.
#include "sfc/serve/chaos.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

namespace sfc {
namespace {

TEST(Chaos, MiniSoakWithCrashCyclesIsClean) {
  ChaosOptions options;
  options.descriptor.family = "hilbert";
  options.descriptor.dim = 2;
  options.descriptor.side = 64;
  options.points = 4000;
  options.seed = 5;
  options.path = ::testing::TempDir() + "/sfc_chaos_mini.sfcidx";
  options.clients = 4;
  options.duration_s = 1.5;
  options.reload_every_ms = 50;
  options.crash_every = 3;  // auto-disabled under TSAN inside run_chaos
  options.server.shard_bits = 2;
  options.server.batch_window_us = 100;

  const ChaosReport report = run_chaos(options);

  // The correctness half of the gate, asserted piecewise for diagnosis.
  EXPECT_EQ(report.wrong_answers, 0u);
  EXPECT_EQ(report.torn_files, 0u);
  EXPECT_TRUE(report.identity_ok);
  EXPECT_EQ(report.accepted + report.rejected + report.timed_out,
            report.queries);
  EXPECT_GT(report.accepted, 0u);
  // The soak must have actually churned generations.
  EXPECT_GT(report.reloads, 1u);
  EXPECT_EQ(report.failed_reloads, 0u);
  EXPECT_GT(report.epochs_observed, 1u);
  EXPECT_GT(report.wall_seconds, 1.0);
  // The p99 bound is timing-sensitive; the piecewise asserts above cover
  // correctness, so give the latency factor generous CI headroom here.
  EXPECT_TRUE(report.clean(1000.0));
}

TEST(Chaos, CleanGateChecksEveryInvariant) {
  ChaosReport good;
  good.queries = 100;
  good.accepted = 90;
  good.rejected = 6;
  good.timed_out = 4;
  good.identity_ok = true;
  good.baseline_p99_us = 500.0;
  good.soak_p99_us = 900.0;
  EXPECT_TRUE(good.clean(2.0));

  ChaosReport wrong = good;
  wrong.wrong_answers = 1;
  EXPECT_FALSE(wrong.clean(2.0));

  ChaosReport torn = good;
  torn.torn_files = 1;
  EXPECT_FALSE(torn.clean(2.0));

  ChaosReport leak = good;
  leak.identity_ok = false;
  EXPECT_FALSE(leak.clean(2.0));

  ChaosReport idle = good;
  idle.accepted = 0;
  EXPECT_FALSE(idle.clean(2.0));

  // The baseline floor: a microsecond-scale baseline is floored at 2000 us,
  // so a 3900 us soak p99 passes a 2x gate...
  ChaosReport floored = good;
  floored.baseline_p99_us = 80.0;
  floored.soak_p99_us = 3900.0;
  EXPECT_TRUE(floored.clean(2.0));
  // ...but blowing past factor * floor still fails.
  floored.soak_p99_us = 4100.0;
  EXPECT_FALSE(floored.clean(2.0));

  // Above the floor the real baseline governs.
  ChaosReport slow = good;
  slow.baseline_p99_us = 5000.0;
  slow.soak_p99_us = 9900.0;
  EXPECT_TRUE(slow.clean(2.0));
  slow.soak_p99_us = 10100.0;
  EXPECT_FALSE(slow.clean(2.0));
}

}  // namespace
}  // namespace sfc
