// Query traces must be reproducible (seeded generation) and round-trip
// exactly through their text format, with malformed inputs rejected loudly —
// a trace that parses differently than it was written would silently change
// what a serve bench measures.
#include "sfc/serve/trace.h"

#include <gtest/gtest.h>

#include <string>

#include "sfc/grid/universe.h"

namespace sfc {
namespace {

TEST(QueryTrace, GenerationIsSeededAndInUniverse) {
  const Universe u = Universe::pow2(2, 6);
  TraceGenOptions options;
  options.count = 300;
  options.box_extent = 9;
  options.knn_k = 6;
  options.knn_percent = 40;
  options.seed = 77;
  const QueryTrace a = generate_trace(u, options);
  const QueryTrace b = generate_trace(u, options);
  ASSERT_EQ(a.size(), 300u);
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.range_count() + a.knn_count(), a.size());
  EXPECT_GT(a.range_count(), 0u);
  EXPECT_GT(a.knn_count(), 0u);
  for (const TraceQuery& q : a.queries) {
    if (q.kind == TraceQuery::Kind::kRange) {
      const Box box = q.box();
      EXPECT_TRUE(u.contains(box.lo()));
      EXPECT_TRUE(u.contains(box.hi()));
      for (int i = 0; i < u.dim(); ++i) {
        EXPECT_EQ(box.hi()[i] - box.lo()[i] + 1, options.box_extent);
      }
    } else {
      EXPECT_TRUE(u.contains(q.point));
      EXPECT_EQ(q.k, options.knn_k);
    }
  }
  // A different seed produces a different trace.
  options.seed = 78;
  EXPECT_NE(generate_trace(u, options).queries, a.queries);
}

TEST(QueryTrace, ExtentClampsToTheUniverse) {
  const Universe u = Universe::pow2(2, 2);  // side 4
  TraceGenOptions options;
  options.count = 50;
  options.box_extent = 1000;
  options.knn_percent = 0;
  const QueryTrace trace = generate_trace(u, options);
  for (const TraceQuery& q : trace.queries) {
    EXPECT_EQ(q.box_lo, (Point{0, 0}));
    EXPECT_EQ(q.box_hi, (Point{3, 3}));
  }
}

TEST(QueryTrace, TextRoundTripIsExact) {
  const Universe u = Universe::pow2(3, 4);
  TraceGenOptions options;
  options.count = 120;
  options.box_extent = 5;
  options.knn_k = 3;
  const QueryTrace trace = generate_trace(u, options);
  const QueryTrace parsed = read_trace_text(write_trace_text(trace));
  EXPECT_EQ(parsed.queries, trace.queries);
}

TEST(QueryTrace, ParsesHandWrittenText) {
  const QueryTrace trace = read_trace_text(
      "# a comment\n"
      "\n"
      "range 1,2 5,6\n"
      "knn 3,4 8\n");
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.queries[0].kind, TraceQuery::Kind::kRange);
  EXPECT_EQ(trace.queries[0].box_lo, (Point{1, 2}));
  EXPECT_EQ(trace.queries[0].box_hi, (Point{5, 6}));
  EXPECT_EQ(trace.queries[1].kind, TraceQuery::Kind::kKnn);
  EXPECT_EQ(trace.queries[1].point, (Point{3, 4}));
  EXPECT_EQ(trace.queries[1].k, 8u);
}

TEST(QueryTrace, RejectsMalformedText) {
  EXPECT_THROW(read_trace_text("scan 1,2 5,6\n"), TraceError);      // bad op
  EXPECT_THROW(read_trace_text("range 1,2\n"), TraceError);         // 2 fields
  EXPECT_THROW(read_trace_text("range 1,2 5,6 7\n"), TraceError);   // 4 fields
  EXPECT_THROW(read_trace_text("range 1,x 5,6\n"), TraceError);     // bad coord
  EXPECT_THROW(read_trace_text("range 5,6 1,2\n"), TraceError);     // inverted
  EXPECT_THROW(read_trace_text("range 1,2 5,6,7\n"), TraceError);   // dim skew
  EXPECT_THROW(read_trace_text("knn 3,4 0\n"), TraceError);         // k = 0
  EXPECT_THROW(read_trace_text("knn 3,4 nope\n"), TraceError);      // bad k
  try {
    read_trace_text("range 1,2 5,6\nknn 3,4 oops\n");
    FAIL() << "expected TraceError";
  } catch (const TraceError& error) {
    EXPECT_NE(std::string(error.what()).find("line 2"), std::string::npos)
        << error.what();
  }
}

TEST(QueryTrace, FileRoundTrip) {
  const Universe u = Universe::pow2(2, 5);
  TraceGenOptions options;
  options.count = 64;
  const QueryTrace trace = generate_trace(u, options);
  const std::string path = ::testing::TempDir() + "/sfc_trace_test.trace";
  write_trace_file(path, trace);
  EXPECT_EQ(read_trace_file(path).queries, trace.queries);
  EXPECT_THROW(read_trace_file(path + ".does_not_exist"), TraceError);
}

}  // namespace
}  // namespace sfc
