// Admission control under stress: the bounded queue sheds load with typed
// errors, deadlines fail fast, stop() drains safely against concurrent
// clients, and every shed query is accounted for — shed load is measured,
// never silently dropped.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "sfc/curves/curve_factory.h"
#include "sfc/index/point_index.h"
#include "sfc/rng/sampling.h"
#include "sfc/serve/serve_error.h"
#include "sfc/serve/server.h"

namespace sfc {
namespace {

struct Fixture {
  CurvePtr curve;
  std::vector<Point> points;
  PointIndex index;
};

Fixture make_fixture(std::uint64_t seed) {
  CurveDescriptor descriptor;
  descriptor.family = "hilbert";
  descriptor.dim = 2;
  descriptor.side = 64;
  CurvePtr curve = make_curve(descriptor);
  Xoshiro256 rng(seed);
  std::vector<Point> points;
  for (int i = 0; i < 2000; ++i) {
    points.push_back(random_cell(curve->universe(), rng));
  }
  PointIndex index = PointIndex::build(*curve, points);
  return Fixture{std::move(curve), std::move(points), std::move(index)};
}

Box small_box(const Fixture&) { return Box(Point{0, 0}, Point{7, 7}); }

TEST(ServerRobustness, PostStopQueriesThrowTypedStoppedError) {
  const Fixture f = make_fixture(3);
  IndexServer server(f.index.view(), {});
  EXPECT_NO_THROW(server.range_query(small_box(f)));
  server.stop();
  EXPECT_THROW(server.range_query(small_box(f)), ServerStoppedError);
  EXPECT_THROW(server.knn_query(Point{1, 1}, 3), ServerStoppedError);
  const ServerHealth health = server.health();
  EXPECT_TRUE(health.stopped);
  EXPECT_EQ(health.rejected_stopped, 2u);
}

TEST(ServerRobustness, StopIsIdempotentAndConcurrencySafe) {
  const Fixture f = make_fixture(3);
  IndexServer server(f.index.view(), {});
  std::vector<std::thread> stoppers;
  for (int i = 0; i < 4; ++i) {
    stoppers.emplace_back([&server] { server.stop(); });
  }
  for (std::thread& t : stoppers) t.join();
  server.stop();  // and once more on this thread
  EXPECT_TRUE(server.health().stopped);
}

TEST(ServerRobustness, BoundedQueueShedsWithOverloadError) {
  const Fixture f = make_fixture(5);
  // A long window and max_batch so nothing dispatches while we fill the
  // queue from this thread: admissions 1..4 enqueue, the 5th must shed.
  ServerOptions options;
  options.max_batch = 1024;
  options.batch_window_us = 200000;
  options.max_queue = 4;
  IndexServer server(f.index.view(), options);

  std::vector<std::thread> clients;
  std::atomic<int> admitted{0};
  std::atomic<int> shed{0};
  std::atomic<std::uint64_t> seen_depth{0};
  for (int i = 0; i < 5; ++i) {
    clients.emplace_back([&] {
      try {
        server.range_query(small_box(f));
        ++admitted;
      } catch (const ServerOverloadError& error) {
        ++shed;
        seen_depth = error.queue_depth();
        EXPECT_EQ(error.max_queue(), 4u);
      }
    });
    // Serialize admissions so exactly the 5th arrival sees a full queue.
    while (i < 4 && server.health().queue_depth + server.health().executed <
                        static_cast<std::uint64_t>(i + 1)) {
      std::this_thread::yield();
    }
  }
  // Wait for the 5th arrival to shed before stopping, so the rejection is
  // an overload (full queue), never a post-stop rejection.
  while (shed.load() == 0) std::this_thread::yield();
  // Unblock the queue: stop() closes the window early and drains.
  server.stop();
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(admitted.load(), 4);
  EXPECT_EQ(shed.load(), 1);
  EXPECT_EQ(seen_depth.load(), 4u);
  const ServerHealth health = server.health();
  EXPECT_EQ(health.accepted, 4u);
  EXPECT_EQ(health.rejected_overload, 1u);
  EXPECT_EQ(health.executed, 4u);
  EXPECT_EQ(health.queue_depth, 0u);
}

TEST(ServerRobustness, ExpiredDeadlineFailsFastWithTimeoutError) {
  const Fixture f = make_fixture(7);
  // Window far beyond the deadline: the query expires while queued, and the
  // dispatcher (which closes the batch at the earliest deadline) must fail
  // it with the typed error rather than execute it late.
  ServerOptions options;
  options.batch_window_us = 500000;
  options.max_batch = 1024;
  IndexServer server(f.index.view(), options);
  try {
    server.range_query(small_box(f), 2000);  // 2ms deadline, 500ms window
    FAIL() << "expected ServerTimeoutError";
  } catch (const ServerTimeoutError& error) {
    EXPECT_EQ(error.deadline_us(), 2000u);
    EXPECT_GE(error.waited_us(), 2000u);
  }
  const ServerHealth health = server.health();
  EXPECT_EQ(health.timed_out, 1u);
  EXPECT_EQ(health.executed, 0u);
}

TEST(ServerRobustness, GenerousDeadlineStillAnswers) {
  const Fixture f = make_fixture(7);
  ServerOptions options;
  options.batch_window_us = 200;
  options.deadline_us = 5000000;  // 5s default deadline: never hit
  IndexServer server(f.index.view(), options);
  (void)server.range_query(small_box(f));
  const KnnQueryResult knn = server.knn_query(Point{3, 3}, 4);
  EXPECT_EQ(knn.neighbors.size(), 4u);
  // The dispatcher records executed/latency after fulfilling the futures, so
  // the counters may trail a just-answered query; the drain makes them final.
  server.stop();
  const ServerHealth health = server.health();
  EXPECT_EQ(health.executed, 2u);
  EXPECT_EQ(health.timed_out, 0u);
  EXPECT_EQ(health.queue_wait_latency.count, 2u);
  EXPECT_EQ(health.execute_latency.count, 2u);
  EXPECT_GT(health.queue_wait_latency.percentile_us(0.5), 0.0);
  EXPECT_GT(health.execute_latency.percentile_us(0.5), 0.0);
}

TEST(ServerRobustness, StopDrainsInFlightClientsRacingStop) {
  // Many clients submit while stop() lands: every query either answers or
  // fails with the typed stopped error, and accepted == executed afterward
  // (nothing is lost in the drain).
  const Fixture f = make_fixture(11);
  ServerOptions options;
  options.max_batch = 8;
  options.batch_window_us = 100;
  IndexServer server(f.index.view(), options);

  std::atomic<int> answered{0};
  std::atomic<int> stopped{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 8; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < 50; ++i) {
        try {
          server.range_query(small_box(f));
          ++answered;
        } catch (const ServerStoppedError&) {
          ++stopped;
        }
      }
    });
  }
  // Let some traffic through, then stop in the middle of the storm.
  while (server.health().executed < 20) std::this_thread::yield();
  server.stop();
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(answered.load() + stopped.load(), 8 * 50);
  EXPECT_GT(answered.load(), 0);
  const ServerHealth health = server.health();
  EXPECT_EQ(health.accepted, static_cast<std::uint64_t>(answered.load()));
  EXPECT_EQ(health.executed, health.accepted);
  EXPECT_EQ(health.rejected_stopped,
            static_cast<std::uint64_t>(stopped.load()));
}

TEST(ServerRobustness, ReplayRetriesRecoverSheddedQueries) {
  const Fixture f = make_fixture(13);
  const Universe u = f.curve->universe();
  TraceGenOptions trace_options;
  trace_options.count = 400;
  trace_options.box_extent = 6;
  trace_options.knn_k = 4;
  trace_options.seed = 13;
  const QueryTrace trace = generate_trace(u, trace_options);

  // A tiny queue plus many clients forces overload; generous retries let
  // every query eventually land.  The accounting identity must hold either
  // way: accepted + rejected + timed_out == queries.
  ServerOptions options;
  options.max_queue = 2;
  options.max_batch = 2;
  options.batch_window_us = 50;
  IndexServer server(f.index.view(), options);
  ReplayOptions replay;
  replay.clients = 16;
  replay.max_retries = 1000;
  replay.backoff_base_us = 50;
  replay.backoff_max_us = 2000;
  const ReplayReport report = replay_trace(server, trace, replay);

  EXPECT_EQ(report.queries, trace.size());
  EXPECT_EQ(report.accepted + report.rejected + report.timed_out,
            report.queries);
  EXPECT_EQ(report.accepted, trace.size());  // retries absorbed the shedding
  EXPECT_GT(report.qps, 0.0);
  // The tiny queue must actually have shed something for this test to mean
  // anything; retries is the evidence.
  EXPECT_GT(report.retries, 0u);
}

TEST(ServerRobustness, ReplayCountsUnrecoveredShedLoad) {
  const Fixture f = make_fixture(17);
  const Universe u = f.curve->universe();
  TraceGenOptions trace_options;
  trace_options.count = 300;
  trace_options.box_extent = 6;
  trace_options.knn_k = 4;
  trace_options.seed = 17;
  const QueryTrace trace = generate_trace(u, trace_options);

  // No retries and a tiny queue: shed queries stay shed, and the report
  // says exactly how many — p50/p99 cover only the accepted ones.
  ServerOptions options;
  options.max_queue = 1;
  options.max_batch = 1;
  options.batch_window_us = 2000;
  IndexServer server(f.index.view(), options);
  ReplayOptions replay;
  replay.clients = 32;
  replay.max_retries = 0;
  const ReplayReport report = replay_trace(server, trace, replay);

  EXPECT_EQ(report.queries, trace.size());
  EXPECT_EQ(report.accepted + report.rejected + report.timed_out,
            report.queries);
  EXPECT_GT(report.rejected, 0u);
  EXPECT_GT(report.accepted, 0u);
  EXPECT_EQ(report.retries, 0u);
}

TEST(ServerRobustness, ReplayCountsEachQueryExactlyOnceAcrossRetries) {
  // The accounting regression this pins: a query that sheds on several
  // attempts and then lands must count once (as accepted), and one that
  // sheds on every attempt must count once under its *final* outcome.  A
  // bounded retry budget against a deliberately shedding server produces
  // both histories; the identity then holds with nonzero terms on each side.
  const Fixture f = make_fixture(19);
  const Universe u = f.curve->universe();
  TraceGenOptions trace_options;
  trace_options.count = 300;
  trace_options.box_extent = 6;
  trace_options.knn_k = 4;
  trace_options.seed = 19;
  const QueryTrace trace = generate_trace(u, trace_options);

  ServerOptions options;
  options.max_queue = 1;
  options.max_batch = 1;
  options.batch_window_us = 1000;
  IndexServer server(f.index.view(), options);
  ReplayOptions replay;
  replay.clients = 24;
  replay.max_retries = 2;  // some queries recover, some exhaust the budget
  replay.backoff_base_us = 50;
  replay.backoff_max_us = 500;
  const ReplayReport report = replay_trace(server, trace, replay);

  EXPECT_EQ(report.queries, trace.size());
  EXPECT_EQ(report.accepted + report.rejected + report.timed_out,
            report.queries);
  EXPECT_GT(report.retries, 0u);
  EXPECT_GT(report.accepted, 0u);
  EXPECT_GT(report.rejected, 0u);
  // The split histograms reach the report: end-to-end latency decomposes
  // into queue wait + execute, both measured over the accepted queries.
  EXPECT_GT(report.queue_wait_p99_us, 0.0);
  EXPECT_GT(report.execute_p99_us, 0.0);
}

TEST(ServerRobustness, LatencyHistogramBucketsAndPercentiles) {
  LatencyHistogram h;
  EXPECT_EQ(h.percentile_us(0.5), 0.0);  // empty
  h.record_us(0.5);   // ceil -> 1, width 1 -> bucket 1, upper edge 2us
  h.record_us(3.0);   // width(3)=2 -> bucket 2, upper edge 4us
  h.record_us(100.0); // width(100)=7 -> bucket 7, upper edge 128us
  EXPECT_EQ(h.count, 3u);
  EXPECT_EQ(h.percentile_us(0.01), 2.0);
  EXPECT_EQ(h.percentile_us(0.5), 4.0);
  EXPECT_EQ(h.percentile_us(0.99), 128.0);
  // Saturation: absurd values land in the top bucket, not out of bounds.
  h.record_us(1e18);
  EXPECT_EQ(h.count, 4u);
  EXPECT_EQ(h.buckets[31], 1u);
}

}  // namespace
}  // namespace sfc