// The serving front end batches and shards, but answers must be exactly the
// engines' answers — under any client concurrency, batch size, or window.
#include "sfc/serve/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "sfc/curves/curve_factory.h"
#include "sfc/index/executor.h"
#include "sfc/index/point_index.h"
#include "sfc/ranges/range_cover.h"
#include "sfc/rng/sampling.h"

namespace sfc {
namespace {

struct Fixture {
  CurvePtr curve;
  std::vector<Point> points;
  PointIndex index;
  QueryTrace trace;
};

Fixture make_fixture(std::uint64_t seed) {
  CurveDescriptor descriptor;
  descriptor.family = "hilbert";
  descriptor.dim = 2;
  descriptor.side = 64;
  CurvePtr curve = make_curve(descriptor);
  const Universe u = curve->universe();
  Xoshiro256 rng(seed);
  std::vector<Point> points;
  for (int i = 0; i < 2500; ++i) points.push_back(random_cell(u, rng));
  PointIndex index = PointIndex::build(*curve, points);
  TraceGenOptions trace_options;
  trace_options.count = 160;
  trace_options.box_extent = 6;
  trace_options.knn_k = 5;
  trace_options.seed = seed;
  QueryTrace trace = generate_trace(u, trace_options);
  return Fixture{std::move(curve), std::move(points), std::move(index),
                 std::move(trace)};
}

/// Reference answers straight from the executors, no server involved.
void reference_answers(const Fixture& f,
                       std::vector<RangeQueryResult>* range_results,
                       std::vector<KnnQueryResult>* knn_results,
                       std::vector<std::size_t>* range_slots,
                       std::vector<std::size_t>* knn_slots) {
  std::vector<Box> boxes;
  std::vector<Point> queries;
  for (std::size_t i = 0; i < f.trace.size(); ++i) {
    const TraceQuery& q = f.trace.queries[i];
    if (q.kind == TraceQuery::Kind::kRange) {
      range_slots->push_back(i);
      boxes.push_back(q.box());
    } else {
      knn_slots->push_back(i);
      queries.push_back(q.point);
    }
  }
  *range_results = run_range_queries(f.index.view(), boxes);
  *knn_results = run_knn_queries(f.index.view(), queries, 5);
}

TEST(IndexServer, AnswersMatchDirectEnginesUnderConcurrentClients) {
  const Fixture f = make_fixture(51);
  std::vector<RangeQueryResult> range_reference;
  std::vector<KnnQueryResult> knn_reference;
  std::vector<std::size_t> range_slots, knn_slots;
  reference_answers(f, &range_reference, &knn_reference, &range_slots,
                    &knn_slots);

  for (const std::uint32_t clients : {1u, 4u, 8u}) {
    ServerOptions options;
    options.shard_bits = 3;
    options.max_batch = 16;
    options.batch_window_us = 100;
    IndexServer server(f.index.view(), options);

    std::vector<std::vector<std::uint32_t>> range_got(range_slots.size());
    std::vector<std::vector<KnnNeighbor>> knn_got(knn_slots.size());
    std::vector<std::thread> threads;
    for (std::uint32_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        for (std::size_t i = c; i < range_slots.size(); i += clients) {
          range_got[i] =
              server.range_query(f.trace.queries[range_slots[i]].box()).ids;
        }
        for (std::size_t i = c; i < knn_slots.size(); i += clients) {
          const TraceQuery& q = f.trace.queries[knn_slots[i]];
          knn_got[i] = server.knn_query(q.point, q.k).neighbors;
        }
      });
    }
    for (std::thread& t : threads) t.join();

    for (std::size_t i = 0; i < range_slots.size(); ++i) {
      EXPECT_EQ(range_got[i], range_reference[i].ids)
          << clients << " clients, range query " << i;
    }
    for (std::size_t i = 0; i < knn_slots.size(); ++i) {
      EXPECT_EQ(knn_got[i], knn_reference[i].neighbors)
          << clients << " clients, knn query " << i;
    }

    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.queries_admitted, f.trace.size());
    EXPECT_EQ(stats.range_queries, range_slots.size());
    EXPECT_EQ(stats.knn_queries, knn_slots.size());
    EXPECT_GE(stats.batches_dispatched, 1u);
    EXPECT_LE(stats.max_batch_rows, f.trace.size());
  }
}

TEST(IndexServer, BatchesFillUnderBackpressure) {
  const Fixture f = make_fixture(53);
  ServerOptions options;
  options.max_batch = 8;
  // A long window forces batches to close by filling, not by timeout.
  options.batch_window_us = 50000;
  IndexServer server(f.index.view(), options);
  std::vector<std::thread> threads;
  for (int c = 0; c < 8; ++c) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10; ++i) {
        server.knn_query(Point{7, 9}, 3);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.queries_admitted, 80u);
  // 80 queries in batches of <= 8 means at least 10 dispatches; batching must
  // have aggregated *something* (fewer batches than queries).
  EXPECT_GE(stats.batches_dispatched, 10u);
  EXPECT_LT(stats.batches_dispatched, 80u);
  EXPECT_GE(stats.max_batch_rows, 2u);
}

TEST(IndexServer, PropagatesEngineErrorsToTheCaller) {
  const Fixture f = make_fixture(57);
  IndexServer server(f.index.view());
  // Out-of-universe kNN query: the engine throws IndexArgumentError; the
  // server must deliver it to the calling thread, not die.
  EXPECT_THROW(server.knn_query(Point{1000, 1000}, 3), Error);
  // The server still answers afterwards.
  EXPECT_EQ(server.knn_query(Point{1, 1}, 3).neighbors.size(), 3u);
}

TEST(IndexServer, StopDrainsAndRejectsLateQueries) {
  const Fixture f = make_fixture(59);
  IndexServer server(f.index.view());
  EXPECT_EQ(server.range_query(Box(Point{0, 0}, Point{63, 63})).ids.size(),
            f.index.row_count());
  server.stop();
  EXPECT_THROW(server.knn_query(Point{1, 1}, 1), Error);
  server.stop();  // idempotent
}

TEST(IndexServer, ReplayReportsConsistentTotals) {
  const Fixture f = make_fixture(61);
  std::vector<RangeQueryResult> range_reference;
  std::vector<KnnQueryResult> knn_reference;
  std::vector<std::size_t> range_slots, knn_slots;
  reference_answers(f, &range_reference, &knn_reference, &range_slots,
                    &knn_slots);
  std::uint64_t expected_rows = 0, expected_neighbors = 0;
  for (const auto& r : range_reference) expected_rows += r.ids.size();
  for (const auto& r : knn_reference) expected_neighbors += r.neighbors.size();

  for (const std::uint32_t clients : {1u, 4u}) {
    ServerOptions options;
    options.shard_bits = 2;
    IndexServer server(f.index.view(), options);
    ReplayOptions replay_options;
    replay_options.clients = clients;
    const ReplayReport report = replay_trace(server, f.trace, replay_options);
    EXPECT_EQ(report.clients, clients);
    EXPECT_EQ(report.queries, f.trace.size());
    EXPECT_EQ(report.range_queries, range_slots.size());
    EXPECT_EQ(report.knn_queries, knn_slots.size());
    // Replay answers are the reference answers (volume checksums agree).
    EXPECT_EQ(report.rows_returned, expected_rows);
    EXPECT_EQ(report.neighbors_returned, expected_neighbors);
    EXPECT_GT(report.qps, 0.0);
    EXPECT_GT(report.wall_seconds, 0.0);
    EXPECT_LE(report.p50_us, report.p99_us);
    EXPECT_LE(report.p99_us, report.max_us);
  }
}

TEST(IndexServer, EmptyTraceReplay) {
  const Fixture f = make_fixture(63);
  IndexServer server(f.index.view());
  const ReplayReport report = replay_trace(server, QueryTrace{});
  EXPECT_EQ(report.queries, 0u);
  EXPECT_EQ(report.qps, 0.0);
}

}  // namespace
}  // namespace sfc
