// Sharding is a serving-layer layout decision — it must never change an
// answer.  These tests pin the bit-identity of sharded range and kNN
// execution against the unsharded executors for every shard count, plus the
// structural invariants of the shard slices themselves.
#include "sfc/serve/sharded_index.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "sfc/curves/curve_factory.h"
#include "sfc/index/executor.h"
#include "sfc/index/point_index.h"
#include "sfc/rng/sampling.h"

namespace sfc {
namespace {

struct Workload {
  CurvePtr curve;
  std::vector<Point> points;
  PointIndex index;
  std::vector<Box> boxes;
  std::vector<Point> queries;
};

Workload make_workload(const std::string& family, coord_t side,
                       std::uint64_t seed) {
  CurveDescriptor descriptor;
  descriptor.family = family;
  descriptor.dim = 2;
  descriptor.side = side;
  descriptor.seed = 3;
  CurvePtr curve = make_curve(descriptor);
  const Universe u = curve->universe();
  Xoshiro256 rng(seed);
  std::vector<Point> points;
  for (int i = 0; i < 3000; ++i) points.push_back(random_cell(u, rng));
  PointIndex index = PointIndex::build(*curve, points);
  std::vector<Box> boxes;
  std::vector<Point> queries;
  for (int i = 0; i < 60; ++i) boxes.push_back(random_box(u, 7, rng));
  for (int i = 0; i < 60; ++i) queries.push_back(random_cell(u, rng));
  return Workload{std::move(curve), std::move(points), std::move(index),
                  std::move(boxes), std::move(queries)};
}

TEST(ShardedIndex, ShardsPartitionTheRows) {
  const Workload w = make_workload("hilbert", 64, 17);
  for (const int bits : {0, 1, 3, 5}) {
    const ShardedIndex sharded(w.index.view(), bits);
    ASSERT_EQ(sharded.shard_count(), std::size_t{1} << bits);
    std::uint64_t total = 0;
    index_t previous_hi = 0;
    for (std::size_t s = 0; s < sharded.shard_count(); ++s) {
      const IndexColumnsView& shard = sharded.shard(s);
      const KeyInterval range = sharded.shard_key_range(s);
      if (s > 0) {
        EXPECT_EQ(range.lo, previous_hi + 1) << "shard " << s;
      }
      previous_hi = range.hi;
      EXPECT_EQ(sharded.shard_row_begin(s), total) << "shard " << s;
      for (std::uint64_t r = 0; r < shard.row_count(); ++r) {
        const index_t key = shard.key_of_row(r);
        EXPECT_GE(key, range.lo) << "shard " << s << " row " << r;
        EXPECT_LE(key, range.hi) << "shard " << s << " row " << r;
        // Shard rows are the base rows, in order.
        EXPECT_EQ(key, w.index.view().key_of_row(total + r));
        EXPECT_EQ(shard.id_of_row(r), w.index.view().id_of_row(total + r));
      }
      // The rebuilt directory answers interval queries like the base does.
      if (!shard.empty()) {
        EXPECT_EQ(shard.rows_in_interval(range.lo, range.hi).second,
                  shard.row_count());
      }
      total += shard.row_count();
    }
    EXPECT_EQ(total, w.index.row_count()) << "shard_bits " << bits;
  }
}

TEST(ShardedIndex, ShardBitsClampToKeyWidth) {
  const Workload w = make_workload("z", 8, 19);  // 64 cells -> 6 key bits
  const ShardedIndex sharded(w.index.view(), 60);
  EXPECT_EQ(sharded.shard_bits(), 6);
  EXPECT_EQ(sharded.shard_count(), 64u);
}

TEST(ShardedIndex, RangeQueriesBitIdenticalToUnsharded) {
  for (const std::string family : {"hilbert", "z", "simple", "random"}) {
    const Workload w = make_workload(family, 64, 29);
    const auto reference = run_range_queries(w.index.view(), w.boxes);
    for (const int bits : {0, 1, 2, 4, 6}) {
      const ShardedIndex sharded(w.index.view(), bits);
      const auto sharded_results = run_range_queries(sharded, w.boxes);
      ASSERT_EQ(sharded_results.size(), reference.size());
      for (std::size_t i = 0; i < reference.size(); ++i) {
        EXPECT_EQ(sharded_results[i].ids, reference[i].ids)
            << family << " shard_bits " << bits << " box " << i;
        EXPECT_EQ(sharded_results[i].stats.rows_returned,
                  reference[i].stats.rows_returned);
        // Exact covers never overscan, sharded or not.
        EXPECT_EQ(sharded_results[i].stats.rows_scanned,
                  sharded_results[i].stats.rows_returned);
      }
    }
  }
}

TEST(ShardedIndex, KnnQueriesBitIdenticalToUnsharded) {
  for (const std::string family : {"hilbert", "z", "snake", "random"}) {
    const Workload w = make_workload(family, 64, 31);
    for (const std::uint32_t k : {1u, 5u, 16u}) {
      const auto reference = run_knn_queries(w.index.view(), w.queries, k);
      for (const int bits : {1, 3, 6}) {
        const ShardedIndex sharded(w.index.view(), bits);
        const auto sharded_results = run_knn_queries(sharded, w.queries, k);
        ASSERT_EQ(sharded_results.size(), reference.size());
        for (std::size_t i = 0; i < reference.size(); ++i) {
          EXPECT_EQ(sharded_results[i].neighbors, reference[i].neighbors)
              << family << " shard_bits " << bits << " k " << k << " query "
              << i;
        }
      }
    }
  }
}

TEST(ShardedIndex, DeterministicAcrossPoolsAndGrains) {
  const Workload w = make_workload("hilbert", 64, 37);
  const ShardedIndex sharded(w.index.view(), 3);
  const auto reference = run_range_queries(sharded, w.boxes);
  for (const unsigned threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    for (const std::uint64_t grain : {1u, 7u, 1000u}) {
      MultiQueryOptions options;
      options.pool = &pool;
      options.grain = grain;
      const auto results = run_range_queries(sharded, w.boxes, options);
      ASSERT_EQ(results.size(), reference.size());
      for (std::size_t i = 0; i < reference.size(); ++i) {
        EXPECT_EQ(results[i].ids, reference[i].ids)
            << threads << " threads, grain " << grain;
      }
    }
  }
}

TEST(ShardedIndex, NonPowerOfTwoUniverseShards) {
  // Peano: 27x27 = 729 cells, keys need 10 bits; the top shards are simply
  // emptier.  Sharding must still partition and answer identically.
  const Workload w = make_workload("peano", 27, 41);
  const auto reference = run_knn_queries(w.index.view(), w.queries, 4);
  const ShardedIndex sharded(w.index.view(), 4);
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < sharded.shard_count(); ++s) {
    total += sharded.shard(s).row_count();
  }
  EXPECT_EQ(total, w.index.row_count());
  const auto results = run_knn_queries(sharded, w.queries, 4);
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(results[i].neighbors, reference[i].neighbors) << "query " << i;
  }
}

TEST(ShardedIndex, EmptyBaseView) {
  CurveDescriptor descriptor;
  descriptor.family = "z";
  descriptor.dim = 2;
  descriptor.side = 16;
  const CurvePtr curve = make_curve(descriptor);
  const PointIndex index = PointIndex::build(*curve, {});
  const ShardedIndex sharded(index.view(), 3);
  EXPECT_EQ(sharded.shard_count(), 8u);
  const std::vector<Box> boxes = {Box(Point{0, 0}, Point{15, 15})};
  const auto results = run_range_queries(sharded, boxes);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].ids.empty());
}

}  // namespace
}  // namespace sfc
