#include "sfc/apps/partition.h"

#include <gtest/gtest.h>

#include "sfc/curves/curve_factory.h"
#include "sfc/curves/simple_curve.h"

namespace sfc {
namespace {

TEST(Partition, SinglePartHasNoCut) {
  const Universe u = Universe::pow2(2, 3);
  const CurvePtr z = make_curve(CurveFamily::kZ, u);
  const PartitionQuality q = evaluate_partition(*z, 1);
  EXPECT_EQ(q.edge_cut, 0u);
  EXPECT_DOUBLE_EQ(q.imbalance, 1.0);
  EXPECT_EQ(q.fragmented_blocks, 0);
}

TEST(Partition, SimpleCurveTwoWayCutIsOneRowOfEdges) {
  // Splitting the 8x8 row-major order in half cuts exactly the vertical
  // edges between rows 3 and 4: 8 edges.
  const Universe u(2, 8);
  const SimpleCurve s(u);
  const PartitionQuality q = evaluate_partition(s, 2);
  EXPECT_EQ(q.edge_cut, 8u);
  EXPECT_DOUBLE_EQ(q.imbalance, 1.0);
  EXPECT_EQ(q.fragmented_blocks, 0);
}

TEST(Partition, SimpleCurveFourWay) {
  // Four contiguous row-major blocks of an 8x8 grid = 2 rows each; each
  // boundary cuts 8 vertical edges -> 24 total.
  const Universe u(2, 8);
  const SimpleCurve s(u);
  const PartitionQuality q = evaluate_partition(s, 4);
  EXPECT_EQ(q.edge_cut, 24u);
  EXPECT_EQ(q.fragmented_blocks, 0);
}

TEST(Partition, CutFractionNormalization) {
  const Universe u(2, 8);
  const SimpleCurve s(u);
  const PartitionQuality q = evaluate_partition(s, 2);
  EXPECT_DOUBLE_EQ(q.cut_fraction,
                   static_cast<double>(q.edge_cut) /
                       static_cast<double>(u.nn_pair_count()));
}

TEST(Partition, ImbalanceWithIndivisibleParts) {
  // n=16, P=3: blocks of size 6,5,5 -> imbalance 6*3/16 = 1.125.
  const Universe u(2, 4);
  const SimpleCurve s(u);
  const PartitionQuality q = evaluate_partition(s, 3);
  EXPECT_NEAR(q.imbalance, 6.0 * 3.0 / 16.0, 1e-12);
}

TEST(Partition, HilbertBlocksAreConnectedOnPowerOfTwoSplits) {
  // Hilbert quadrants are contiguous curve ranges, so power-of-two splits
  // produce connected blocks.
  const Universe u = Universe::pow2(2, 4);
  const CurvePtr h = make_curve(CurveFamily::kHilbert, u);
  for (int parts : {2, 4, 8, 16}) {
    const PartitionQuality q = evaluate_partition(*h, parts);
    EXPECT_EQ(q.fragmented_blocks, 0) << "parts=" << parts;
  }
}

TEST(Partition, RandomCurveFragmentsBadly) {
  const Universe u = Universe::pow2(2, 4);
  const CurvePtr random = make_curve(CurveFamily::kRandom, u, 3);
  const PartitionQuality q = evaluate_partition(*random, 8);
  EXPECT_GT(q.fragmented_blocks, 0);
  // Random assignment cuts almost every edge.
  EXPECT_GT(q.cut_fraction, 0.5);
}

TEST(Partition, ContinuousCurvesBeatRandomOnCut) {
  const Universe u = Universe::pow2(2, 4);
  const CurvePtr hilbert = make_curve(CurveFamily::kHilbert, u);
  const CurvePtr random = make_curve(CurveFamily::kRandom, u, 5);
  const index_t hilbert_cut = evaluate_partition(*hilbert, 8).edge_cut;
  const index_t random_cut = evaluate_partition(*random, 8).edge_cut;
  EXPECT_LT(hilbert_cut, random_cut / 4);
}

TEST(Partition, BlockLookupMatchesRanges) {
  const Universe u = Universe::pow2(2, 3);
  const CurvePtr z = make_curve(CurveFamily::kZ, u);
  const int parts = 4;
  for (index_t id = 0; id < u.cell_count(); ++id) {
    const Point cell = u.from_row_major(id);
    const int block = partition_block(*z, parts, cell);
    EXPECT_GE(block, 0);
    EXPECT_LT(block, parts);
    // Key must fall inside the block's contiguous range.
    const index_t key = z->index_of(cell);
    EXPECT_EQ(static_cast<int>(key * static_cast<index_t>(parts) / u.cell_count()), block);
  }
}

TEST(Partition, EdgeCutAgreesAcrossFragmentModes) {
  // The fragment and no-fragment configurations take different edge-cut
  // paths (global key table vs chunk-local batch encode); they must agree.
  const Universe u = Universe::pow2(2, 4);
  for (const CurveFamily family :
       {CurveFamily::kZ, CurveFamily::kHilbert, CurveFamily::kRandom}) {
    const CurvePtr curve = make_curve(family, u, 9);
    PartitionOptions with_fragments, without_fragments;
    with_fragments.count_fragments = true;
    without_fragments.count_fragments = false;
    for (const int parts : {1, 3, 7, 16}) {
      const PartitionQuality a = evaluate_partition(*curve, parts, with_fragments);
      const PartitionQuality b =
          evaluate_partition(*curve, parts, without_fragments);
      EXPECT_EQ(a.edge_cut, b.edge_cut)
          << curve->name() << " parts=" << parts;
      EXPECT_EQ(a.imbalance, b.imbalance);
    }
  }
}

TEST(Partition, InvalidPartsThrowsRecoverableError) {
  const Universe u = Universe::pow2(2, 3);
  const CurvePtr z = make_curve(CurveFamily::kZ, u);
  EXPECT_THROW(evaluate_partition(*z, 0), PartitionArgumentError);
  EXPECT_THROW(evaluate_partition(*z, -5), PartitionArgumentError);
  EXPECT_THROW(evaluate_partition(*z, 65), PartitionArgumentError);
  try {
    evaluate_partition(*z, 0);
    FAIL() << "expected PartitionArgumentError";
  } catch (const PartitionArgumentError& error) {
    EXPECT_EQ(error.parts(), 0);
    EXPECT_EQ(error.cell_count(), u.cell_count());
    EXPECT_NE(std::string(error.what()).find("parts = 0"), std::string::npos);
  }
  // n parts (one cell each) is the extreme *valid* configuration.
  EXPECT_NO_THROW(evaluate_partition(*z, 64));
}

TEST(Partition, EdgeCutMatchesBruteForce3D) {
  // Reference count straight from the definition: forward NN pairs whose
  // endpoints land in different contiguous key blocks.
  const Universe u = Universe::pow2(3, 2);
  for (const CurveFamily family : {CurveFamily::kZ, CurveFamily::kHilbert}) {
    const CurvePtr curve = make_curve(family, u);
    for (const int parts : {2, 3, 8}) {
      index_t expected = 0;
      for (index_t id = 0; id < u.cell_count(); ++id) {
        const Point cell = u.from_row_major(id);
        const int cell_block = partition_block(*curve, parts, cell);
        u.for_each_forward_neighbor(cell, [&](const Point& q, int /*dim*/) {
          if (partition_block(*curve, parts, q) != cell_block) ++expected;
        });
      }
      PartitionOptions slab_mode;
      slab_mode.count_fragments = false;
      EXPECT_EQ(evaluate_partition(*curve, parts).edge_cut, expected)
          << curve->name() << " parts=" << parts;
      EXPECT_EQ(evaluate_partition(*curve, parts, slab_mode).edge_cut, expected)
          << curve->name() << " parts=" << parts;
    }
  }
}

TEST(Partition, FragmentCountingCanBeDisabled) {
  const Universe u = Universe::pow2(2, 3);
  const CurvePtr random = make_curve(CurveFamily::kRandom, u, 4);
  PartitionOptions options;
  options.count_fragments = false;
  const PartitionQuality q = evaluate_partition(*random, 4, options);
  EXPECT_EQ(q.fragmented_blocks, 0);  // not computed
  EXPECT_GT(q.edge_cut, 0u);
}

}  // namespace
}  // namespace sfc
