#include "sfc/apps/nbody.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sfc {
namespace {

NBodyParams small_params(int dim) {
  NBodyParams params;
  params.dim = dim;
  params.theta = 0.4;
  params.softening = 5e-3;
  params.leaf_size = 4;
  return params;
}

TEST(NBody, ClusteredParticlesInsideUnitBox) {
  const auto particles = make_clustered_particles(500, 3, 4, 42);
  ASSERT_EQ(particles.size(), 500u);
  double total_mass = 0.0;
  for (const auto& particle : particles) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_GE(particle.pos[static_cast<std::size_t>(c)], 0.0);
      EXPECT_LT(particle.pos[static_cast<std::size_t>(c)], 1.0);
    }
    total_mass += particle.mass;
  }
  EXPECT_NEAR(total_mass, 1.0, 1e-9);
}

TEST(NBody, ClusteredParticlesDeterministic) {
  const auto a = make_clustered_particles(50, 2, 2, 7);
  const auto b = make_clustered_particles(50, 2, 2, 7);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].pos[0], b[i].pos[0]);
    EXPECT_EQ(a[i].vel[1], b[i].vel[1]);
  }
}

TEST(NBody, MortonSortOrdersKeys) {
  BarnesHut sim(make_clustered_particles(300, 3, 3, 1), small_params(3));
  sim.sort_by_morton();
  index_t previous = 0;
  for (std::size_t i = 0; i < sim.particles().size(); ++i) {
    const index_t key = sim.morton_key(sim.particles()[i]);
    if (i > 0) {
      EXPECT_GE(key, previous);
    }
    previous = key;
  }
  // Second sort is a no-op: zero inversions remain.
  EXPECT_EQ(sim.sort_by_morton(), 0u);
}

TEST(NBody, TreeAccelerationMatchesDirectSummation) {
  BarnesHut sim(make_clustered_particles(200, 3, 2, 5), small_params(3));
  sim.sort_by_morton();
  const auto tree = sim.compute_accelerations();
  const auto direct = sim.direct_accelerations();
  ASSERT_EQ(tree.size(), direct.size());
  double err_num = 0.0, err_den = 0.0;
  for (std::size_t i = 0; i < tree.size(); ++i) {
    for (int c = 0; c < 3; ++c) {
      const double diff = tree[i][static_cast<std::size_t>(c)] - direct[i][static_cast<std::size_t>(c)];
      err_num += diff * diff;
      err_den += direct[i][static_cast<std::size_t>(c)] * direct[i][static_cast<std::size_t>(c)];
    }
  }
  const double rel_error = std::sqrt(err_num / (err_den + 1e-30));
  EXPECT_LT(rel_error, 0.05);  // theta=0.4 keeps the multipole error small
}

TEST(NBody, ThetaZeroIsExact) {
  // theta = 0 forces full tree opening: identical to direct summation up to
  // floating-point association.
  NBodyParams params = small_params(2);
  params.theta = 0.0;
  BarnesHut sim(make_clustered_particles(100, 2, 2, 9), params);
  const auto tree = sim.compute_accelerations();
  const auto direct = sim.direct_accelerations();
  for (std::size_t i = 0; i < tree.size(); ++i) {
    for (int c = 0; c < 2; ++c) {
      EXPECT_NEAR(tree[i][static_cast<std::size_t>(c)], direct[i][static_cast<std::size_t>(c)],
                  1e-9 * (1.0 + std::abs(direct[i][static_cast<std::size_t>(c)])));
    }
  }
}

TEST(NBody, TwoBodySymmetricAttraction) {
  NBodyParams params = small_params(2);
  params.theta = 0.0;
  std::vector<Particle> pair(2);
  pair[0].pos = {0.4, 0.5, 0.0};
  pair[1].pos = {0.6, 0.5, 0.0};
  pair[0].mass = pair[1].mass = 0.5;
  BarnesHut sim(std::move(pair), params);
  const auto accel = sim.compute_accelerations();
  // Equal masses: equal and opposite accelerations along x.
  EXPECT_GT(accel[0][0], 0.0);
  EXPECT_LT(accel[1][0], 0.0);
  EXPECT_NEAR(accel[0][0], -accel[1][0], 1e-12);
  EXPECT_NEAR(accel[0][1], 0.0, 1e-12);
}

TEST(NBody, EnergyApproximatelyConservedOverShortRun) {
  NBodyParams params = small_params(2);
  params.theta = 0.3;
  BarnesHut sim(make_clustered_particles(150, 2, 1, 11), params);
  sim.sort_by_morton();
  const double e0 = sim.total_energy();
  for (int step = 0; step < 10; ++step) sim.step(5e-4);
  const double e1 = sim.total_energy();
  EXPECT_NEAR(e1, e0, 0.05 * std::abs(e0) + 1e-6);
}

TEST(NBody, TreeNodeCountIsReasonable) {
  BarnesHut sim(make_clustered_particles(256, 2, 2, 13), small_params(2));
  sim.compute_accelerations();
  EXPECT_GT(sim.last_tree_nodes(), 256u / 4u);   // at least n/leaf nodes
  EXPECT_LT(sim.last_tree_nodes(), 4u * 256u);   // not absurdly many
}

TEST(NBody, MortonKeysRespectSpatialLocality) {
  NBodyParams params = small_params(2);
  BarnesHut sim({}, params);
  Particle a, b, c;
  a.pos = {0.1, 0.1, 0.0};
  b.pos = {0.1001, 0.1001, 0.0};  // same quantized cell as a
  c.pos = {0.9, 0.9, 0.0};
  EXPECT_EQ(sim.morton_key(a), sim.morton_key(b));
  EXPECT_NE(sim.morton_key(a), sim.morton_key(c));
}

}  // namespace
}  // namespace sfc
