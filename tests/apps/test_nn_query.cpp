#include "sfc/apps/nn_query.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "sfc/core/nn_stretch.h"
#include "sfc/curves/curve_factory.h"
#include "sfc/curves/simple_curve.h"

namespace sfc {
namespace {

TEST(NNWindow, QuantileOrdering) {
  const Universe u = Universe::pow2(2, 4);
  const CurvePtr z = make_curve(CurveFamily::kZ, u);
  const NNWindowStats stats = measure_nn_window(*z, 500, 11);
  EXPECT_LE(stats.first_neighbor.p50, stats.first_neighbor.p95);
  EXPECT_LE(stats.first_neighbor.p95, stats.first_neighbor.p99);
  EXPECT_LE(stats.first_neighbor.p99, stats.first_neighbor.max);
  // Window to see all neighbors dominates window to see one.
  EXPECT_LE(stats.first_neighbor.mean, stats.all_neighbors.mean);
  EXPECT_LE(stats.first_neighbor.max, stats.all_neighbors.max);
}

TEST(NNWindow, MeansMatchStretchEngineOnFullSampling) {
  // Sampling every cell ties the window statistics to the NN-stretch engine:
  // mean(all_neighbors window) over all cells = Dmax, and the min-window
  // mean = the engine's average_minimum.
  const Universe u = Universe::pow2(2, 3);
  const CurvePtr z = make_curve(CurveFamily::kZ, u);
  const NNStretchResult stretch = compute_nn_stretch(*z);

  // Compute exhaustively rather than by sampling.
  long double min_sum = 0, max_sum = 0;
  for (index_t id = 0; id < u.cell_count(); ++id) {
    const Point cell = u.from_row_major(id);
    const index_t qk = z->index_of(cell);
    index_t dmin = ~index_t{0}, dmax = 0;
    u.for_each_neighbor(cell, [&](const Point& nb) {
      const index_t nk = z->index_of(nb);
      const index_t dist = qk > nk ? qk - nk : nk - qk;
      dmin = std::min(dmin, dist);
      dmax = std::max(dmax, dist);
    });
    min_sum += static_cast<long double>(dmin);
    max_sum += static_cast<long double>(dmax);
  }
  const auto n = static_cast<long double>(u.cell_count());
  EXPECT_NEAR(static_cast<double>(min_sum / n), stretch.average_minimum, 1e-12);
  EXPECT_NEAR(static_cast<double>(max_sum / n), stretch.average_maximum, 1e-12);
}

TEST(NNWindow, DeterministicInSeed) {
  const Universe u = Universe::pow2(2, 4);
  const CurvePtr h = make_curve(CurveFamily::kHilbert, u);
  const NNWindowStats a = measure_nn_window(*h, 200, 3);
  const NNWindowStats b = measure_nn_window(*h, 200, 3);
  EXPECT_EQ(a.first_neighbor.mean, b.first_neighbor.mean);
  EXPECT_EQ(a.all_neighbors.max, b.all_neighbors.max);
}

TEST(KnnViaWindow, FindsTrueNearestNeighborsWithLargeWindow) {
  const Universe u = Universe::pow2(2, 3);
  const CurvePtr h = make_curve(CurveFamily::kHilbert, u);
  const Point query{3, 4};
  std::vector<Point> neighbors;
  // Window = whole universe: always sound.
  ASSERT_TRUE(knn_via_window(*h, query, 4, u.cell_count(), &neighbors));
  ASSERT_EQ(neighbors.size(), 4u);
  // The four nearest cells of an interior point are its grid neighbors.
  for (const Point& nb : neighbors) {
    EXPECT_EQ(manhattan_distance(query, nb), 1u) << nb.to_string();
  }
}

TEST(KnnViaWindow, SmallWindowReportsUnsound) {
  // With window 0 only the query's own key is scanned -> not enough
  // candidates.
  const Universe u = Universe::pow2(2, 3);
  const CurvePtr z = make_curve(CurveFamily::kZ, u);
  EXPECT_FALSE(knn_via_window(*z, Point{4, 4}, 3, 0, nullptr));
}

TEST(KnnViaWindow, MatchesBruteForceOnHilbert) {
  const Universe u = Universe::pow2(2, 3);
  const CurvePtr h = make_curve(CurveFamily::kHilbert, u);
  const Point query{2, 5};
  const int k = 3;
  std::vector<Point> via_window;
  ASSERT_TRUE(knn_via_window(*h, query, k, u.cell_count(), &via_window));

  // Brute-force kNN.
  std::vector<std::pair<double, index_t>> all;
  for (index_t id = 0; id < u.cell_count(); ++id) {
    const Point cell = u.from_row_major(id);
    if (cell == query) continue;
    all.emplace_back(euclidean_distance(query, cell), h->index_of(cell));
  }
  std::sort(all.begin(), all.end());
  // The k-th smallest distance from the window method can be no worse.
  const double window_worst = euclidean_distance(query, via_window.back());
  EXPECT_LE(window_worst, all[static_cast<std::size_t>(k - 1)].first + 1e-12);
}

TEST(KnnViaWindow, ContinuousCurveNeedsSmallWindowForK1) {
  // On the Hilbert curve one of the two curve-adjacent cells is always a
  // spatial nearest neighbor, so window 1 suffices for k=1 at interior
  // points (soundness may still fail; we check the common case succeeds for
  // a reasonable window).
  const Universe u = Universe::pow2(2, 4);
  const CurvePtr h = make_curve(CurveFamily::kHilbert, u);
  std::vector<Point> neighbors;
  const bool ok = knn_via_window(*h, Point{7, 7}, 1, 16, &neighbors);
  if (ok) {
    ASSERT_EQ(neighbors.size(), 1u);
    EXPECT_EQ(manhattan_distance(Point{7, 7}, neighbors[0]), 1u);
  }
}

}  // namespace
}  // namespace sfc
