#include "sfc/apps/amr.h"

#include <gtest/gtest.h>

#include <set>

#include "sfc/curves/curve_factory.h"

namespace sfc {
namespace {

AmrMesh sample_mesh(int dim = 2, int bits = 5, std::uint64_t seed = 9) {
  const auto density = make_hotspot_density(dim, bits, 3, seed);
  // Threshold 4 yields a properly adaptive mesh (~50 leaves on 32x32) —
  // coarse meshes with a handful of leaves make partition comparisons noise.
  return build_amr_mesh(dim, bits, density, /*split_threshold=*/4.0);
}

TEST(AmrMesh, LeavesTileTheDomainExactly) {
  const AmrMesh mesh = sample_mesh();
  const Universe finest = mesh.finest_universe();
  EXPECT_EQ(mesh.covered_cells(), finest.cell_count());

  // No two leaves overlap: mark every covered finest cell once.
  std::set<index_t> covered;
  for (const AmrLeaf& leaf : mesh.leaves) {
    Point hi = leaf.anchor;
    for (int i = 0; i < finest.dim(); ++i) hi[i] = leaf.anchor[i] + leaf.size - 1;
    Box(leaf.anchor, hi).for_each_cell([&](const Point& cell) {
      const index_t id = finest.row_major_index(cell);
      EXPECT_EQ(covered.count(id), 0u) << "overlap at " << cell.to_string();
      covered.insert(id);
    });
  }
  EXPECT_EQ(covered.size(), finest.cell_count());
}

TEST(AmrMesh, RefinementRespondsToDensity) {
  // A flat zero density never splits; a huge density splits to single cells.
  const auto flat = [](const Point&) { return 0.0; };
  const AmrMesh coarse = build_amr_mesh(2, 4, flat, 1.0);
  EXPECT_EQ(coarse.leaves.size(), 1u);
  EXPECT_EQ(coarse.leaves[0].size, 16u);

  const auto hot = [](const Point&) { return 100.0; };
  const AmrMesh fine = build_amr_mesh(2, 3, hot, 1.0);
  EXPECT_EQ(fine.leaves.size(), 64u);  // fully refined 8x8
}

TEST(AmrMesh, HotspotsProduceMixedLeafSizes) {
  const AmrMesh mesh = sample_mesh();
  std::set<coord_t> sizes;
  for (const AmrLeaf& leaf : mesh.leaves) sizes.insert(leaf.size);
  EXPECT_GE(sizes.size(), 2u) << "expected an actually adaptive mesh";
}

TEST(AmrMesh, DeterministicInSeed) {
  const AmrMesh a = sample_mesh(2, 5, 21);
  const AmrMesh b = sample_mesh(2, 5, 21);
  ASSERT_EQ(a.leaves.size(), b.leaves.size());
  for (std::size_t i = 0; i < a.leaves.size(); ++i) {
    EXPECT_EQ(a.leaves[i].anchor, b.leaves[i].anchor);
    EXPECT_EQ(a.leaves[i].size, b.leaves[i].size);
  }
}

TEST(AmrPartition, CostBalancedAndComplete) {
  const AmrMesh mesh = sample_mesh();
  const Universe finest = mesh.finest_universe();
  const CurvePtr hilbert = make_curve(CurveFamily::kHilbert, finest);
  const AmrPartitionQuality q = evaluate_amr_partition(mesh, *hilbert, 8);
  EXPECT_EQ(q.parts, 8);
  EXPECT_EQ(q.leaves, mesh.leaves.size());
  EXPECT_GE(q.cost_imbalance, 1.0);
  EXPECT_LT(q.cost_imbalance, 2.0);  // greedy split keeps it moderate
  EXPECT_GT(q.edge_cut, 0u);
}

TEST(AmrPartition, SinglePartHasNoCut) {
  const AmrMesh mesh = sample_mesh();
  const CurvePtr z = make_curve(CurveFamily::kZ, mesh.finest_universe());
  const AmrPartitionQuality q = evaluate_amr_partition(mesh, *z, 1);
  EXPECT_EQ(q.edge_cut, 0u);
  EXPECT_DOUBLE_EQ(q.cost_imbalance, 1.0);
}

TEST(AmrPartition, LocalityCurvesBeatRandomOrder) {
  const AmrMesh mesh = sample_mesh();
  const Universe finest = mesh.finest_universe();
  const CurvePtr hilbert = make_curve(CurveFamily::kHilbert, finest);
  const CurvePtr random = make_curve(CurveFamily::kRandom, finest, 5);
  const index_t hilbert_cut = evaluate_amr_partition(mesh, *hilbert, 8).edge_cut;
  const index_t random_cut = evaluate_amr_partition(mesh, *random, 8).edge_cut;
  EXPECT_LT(hilbert_cut * 2, random_cut);
}

}  // namespace
}  // namespace sfc
