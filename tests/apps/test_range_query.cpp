#include "sfc/apps/range_query.h"

#include <gtest/gtest.h>

#include "sfc/curves/curve_factory.h"
#include "sfc/curves/simple_curve.h"

namespace sfc {
namespace {

TEST(RangeQuery, FullRowIsOneRun) {
  // A full row of the row-major order is one contiguous key run.
  const Universe u(2, 8);
  const SimpleCurve s(u);
  const Box row(Point{0, 3}, Point{7, 3});
  EXPECT_EQ(count_key_runs(s, row), 1u);
}

TEST(RangeQuery, ColumnIsOneRunPerCell) {
  // A column crosses every row: side runs.
  const Universe u(2, 8);
  const SimpleCurve s(u);
  const Box column(Point{3, 0}, Point{3, 7});
  EXPECT_EQ(count_key_runs(s, column), 8u);
}

TEST(RangeQuery, RectangleRunsEqualRowCountForSimpleCurve) {
  // A w x h rectangle under row-major order is h runs (one per row) unless
  // it spans full rows.
  const Universe u(2, 8);
  const SimpleCurve s(u);
  EXPECT_EQ(count_key_runs(s, Box(Point{1, 2}, Point{4, 6})), 5u);
  // Full-width rectangle collapses to a single run.
  EXPECT_EQ(count_key_runs(s, Box(Point{0, 2}, Point{7, 6})), 1u);
}

TEST(RangeQuery, SingleCellIsOneRun) {
  const Universe u = Universe::pow2(2, 3);
  for (CurveFamily family : analytic_curve_families()) {
    const CurvePtr curve = make_curve(family, u);
    EXPECT_EQ(count_key_runs(*curve, Box(Point{5, 2}, Point{5, 2})), 1u)
        << family_name(family);
  }
}

TEST(RangeQuery, WholeUniverseIsOneRun) {
  // Every bijection covers the full key range contiguously.
  const Universe u = Universe::pow2(2, 2);
  for (CurveFamily family : all_curve_families()) {
    const CurvePtr curve = make_curve(family, u, 2);
    EXPECT_EQ(count_key_runs(*curve, Box::full(u)), 1u) << family_name(family);
  }
}

TEST(RangeQuery, HilbertQuadrantIsOneRun) {
  // Hilbert's defining property: each power-of-two quadrant is a contiguous
  // curve segment.
  const Universe u = Universe::pow2(2, 3);
  const CurvePtr h = make_curve(CurveFamily::kHilbert, u);
  const coord_t half = u.side() / 2;
  for (coord_t qx : {coord_t{0}, half}) {
    for (coord_t qy : {coord_t{0}, half}) {
      const Box quadrant(Point{qx, qy},
                         Point{static_cast<coord_t>(qx + half - 1),
                               static_cast<coord_t>(qy + half - 1)});
      EXPECT_EQ(count_key_runs(*h, quadrant), 1u);
    }
  }
}

TEST(RangeQuery, ZQuadrantIsOneRun) {
  // Z-order quadrants are also contiguous (keys share their top bits).
  const Universe u = Universe::pow2(2, 3);
  const CurvePtr z = make_curve(CurveFamily::kZ, u);
  const coord_t half = u.side() / 2;
  const Box quadrant(Point{0, 0}, Point{static_cast<coord_t>(half - 1),
                                        static_cast<coord_t>(half - 1)});
  EXPECT_EQ(count_key_runs(*z, quadrant), 1u);
}

TEST(RangeQuery, EnginesAgreeOnEveryFamily) {
  // count_key_runs defaults to the hierarchical cover engine where the curve
  // supports it; the streaming enumeration reference must agree exactly.
  const Universe u = Universe::pow2(2, 4);
  const Box box(Point{1, 3}, Point{11, 9});
  for (CurveFamily family : all_curve_families()) {
    const CurvePtr curve = make_curve(family, u, 4);
    const index_t reference = count_key_runs_enumeration(*curve, box);
    EXPECT_EQ(count_key_runs(*curve, box), reference) << family_name(family);
    EXPECT_EQ(count_key_runs(*curve, box, RunCountEngine::kCover), reference)
        << family_name(family);
    EXPECT_EQ(count_key_runs(*curve, box, RunCountEngine::kEnumeration),
              reference)
        << family_name(family);
  }
}

TEST(RangeQuery, RandomBoxClusteringStats) {
  const Universe u = Universe::pow2(2, 4);
  const CurvePtr h = make_curve(CurveFamily::kHilbert, u);
  const ClusteringStats stats = random_box_clustering(*h, 4, 100, 77);
  EXPECT_EQ(stats.samples, 100u);
  EXPECT_EQ(stats.extent, 4u);
  EXPECT_EQ(stats.cells_per_box, 16u);
  EXPECT_GE(stats.mean_runs, 1.0);
  EXPECT_LE(stats.mean_runs, 16.0);
  EXPECT_LE(stats.max_runs, 16.0);
}

TEST(RangeQuery, ClusteringDeterministicInSeed) {
  const Universe u = Universe::pow2(2, 4);
  const CurvePtr z = make_curve(CurveFamily::kZ, u);
  const ClusteringStats a = random_box_clustering(*z, 3, 50, 5);
  const ClusteringStats b = random_box_clustering(*z, 3, 50, 5);
  EXPECT_EQ(a.mean_runs, b.mean_runs);
}

TEST(RangeQuery, HilbertClustersBetterThanRandom) {
  // The application-level consequence of locality: Hilbert needs far fewer
  // disk runs per query box than a random bijection.
  const Universe u = Universe::pow2(2, 4);
  const CurvePtr hilbert = make_curve(CurveFamily::kHilbert, u);
  const CurvePtr random = make_curve(CurveFamily::kRandom, u, 6);
  const double hilbert_runs = random_box_clustering(*hilbert, 4, 100, 9).mean_runs;
  const double random_runs = random_box_clustering(*random, 4, 100, 9).mean_runs;
  EXPECT_LT(hilbert_runs, random_runs / 2);
}

}  // namespace
}  // namespace sfc
