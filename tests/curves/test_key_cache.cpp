#include "sfc/curves/key_cache.h"

#include <gtest/gtest.h>

#include "sfc/curves/curve_factory.h"

namespace sfc {
namespace {

TEST(KeyCache, MatchesCurveForEveryCell) {
  const Universe u = Universe::pow2(2, 4);
  for (CurveFamily family : all_curve_families()) {
    const CurvePtr curve = make_curve(family, u, 17);
    ThreadPool pool(2);
    const KeyCache cache(*curve, pool);
    for (index_t id = 0; id < u.cell_count(); ++id) {
      const Point cell = u.from_row_major(id);
      EXPECT_EQ(cache.key_of_id(id), curve->index_of(cell)) << family_name(family);
      EXPECT_EQ(cache.key_of(cell), curve->index_of(cell)) << family_name(family);
    }
  }
}

TEST(KeyCache, CurveDistanceById) {
  const Universe u = Universe::pow2(2, 2);
  const CurvePtr z = make_curve(CurveFamily::kZ, u);
  ThreadPool pool(2);
  const KeyCache cache(*z, pool);
  for (index_t a = 0; a < u.cell_count(); ++a) {
    for (index_t b = 0; b < u.cell_count(); ++b) {
      EXPECT_EQ(cache.curve_distance_by_id(a, b),
                z->curve_distance(u.from_row_major(a), u.from_row_major(b)));
    }
  }
}

TEST(KeyCache, UniverseAccessor) {
  const Universe u = Universe::pow2(3, 2);
  const CurvePtr z = make_curve(CurveFamily::kZ, u);
  ThreadPool pool(1);
  const KeyCache cache(*z, pool);
  EXPECT_EQ(cache.universe(), u);
}

}  // namespace
}  // namespace sfc
