#include "sfc/curves/zcurve.h"

#include <gtest/gtest.h>

#include "sfc/core/bounds.h"

namespace sfc {
namespace {

TEST(ZCurve, PaperWorkedExample) {
  // §IV-B: d=3, k=3, Z(101, 010, 011) = 100011101₂ = 285.
  const Universe u = Universe::pow2(3, 3);
  const ZCurve z(u);
  EXPECT_EQ(z.index_of(Point{0b101, 0b010, 0b011}), 285u);
  EXPECT_EQ(z.point_at(285), (Point{0b101, 0b010, 0b011}));
}

TEST(ZCurve, TwoByTwoOrder) {
  // d=2, k=1: keys follow the bit-interleave (x1 most significant).
  const Universe u = Universe::pow2(2, 1);
  const ZCurve z(u);
  EXPECT_EQ(z.index_of(Point{0, 0}), 0u);
  EXPECT_EQ(z.index_of(Point{0, 1}), 1u);
  EXPECT_EQ(z.index_of(Point{1, 0}), 2u);
  EXPECT_EQ(z.index_of(Point{1, 1}), 3u);
}

TEST(ZCurve, Figure3SpotChecks) {
  // Figure 3 (8x8): cell (x1=0,x2=0) has key 000000, the cell at
  // (x1=7,x2=7) has key 111111 = 63.
  const Universe u = Universe::pow2(2, 3);
  const ZCurve z(u);
  EXPECT_EQ(z.index_of(Point{0, 0}), 0u);
  EXPECT_EQ(z.index_of(Point{7, 7}), 63u);
  // From the figure's bottom row: the cell at (x1=1, x2=0) shows bits
  // 000|010 = 2, and (x1=0, x2=1) shows 000|001 = 1.
  EXPECT_EQ(z.index_of(Point{1, 0}), 2u);
  EXPECT_EQ(z.index_of(Point{0, 1}), 1u);
  // Top-right quadrant corner (x1=4, x2=4) shows 110000 = 48.
  EXPECT_EQ(z.index_of(Point{4, 4}), 48u);
}

TEST(ZCurve, Bijectivity) {
  const Universe u = Universe::pow2(2, 3);
  const ZCurve z(u);
  std::vector<bool> seen(u.cell_count(), false);
  for (index_t id = 0; id < u.cell_count(); ++id) {
    const Point p = u.from_row_major(id);
    const index_t key = z.index_of(p);
    ASSERT_LT(key, u.cell_count());
    EXPECT_FALSE(seen[key]);
    seen[key] = true;
    EXPECT_EQ(z.point_at(key), p);
  }
}

TEST(ZCurve, GroupDistanceFormula) {
  // Proof of Lemma 5: a NN pair in G_{i,j} (κ ends in j-1 ones then a zero)
  // has ∆Z = 2^{jd-i} − Σ_{ℓ<j} 2^{ℓd-i}.
  const int d = 2, k = 4;
  const Universe u = Universe::pow2(d, k);
  const ZCurve z(u);
  for (int i = 1; i <= d; ++i) {
    for (int j = 1; j <= k; ++j) {
      // κ = 0b0..0 1{j-1} pattern: lowest such κ is 2^{j-1} - 1.
      const auto kappa = static_cast<coord_t>((1u << (j - 1)) - 1);
      // All other coordinates fixed to an arbitrary value (5).
      Point a{5, 5}, b{5, 5};
      a[i - 1] = kappa;
      b[i - 1] = kappa + 1;
      const index_t measured = z.curve_distance(a, b);
      const u128 expected = bounds::z_group_distance(d, i, j);
      EXPECT_TRUE(equals_u64(expected, measured))
          << "d=" << d << " i=" << i << " j=" << j;
    }
  }
}

TEST(ZCurve, LeastSignificantDimensionMovesLeast) {
  // Moving one step along dimension d (the least significant in each level)
  // from an even coordinate changes the key by exactly 1.
  const Universe u = Universe::pow2(3, 3);
  const ZCurve z(u);
  EXPECT_EQ(z.curve_distance(Point{2, 4, 0}, Point{2, 4, 1}), 1u);
  // Along dimension 1 (most significant): distance 2^{d-1} = 4.
  EXPECT_EQ(z.curve_distance(Point{0, 4, 2}, Point{1, 4, 2}), 4u);
}

TEST(ZCurve, OneDimensionalIsIdentity) {
  const Universe u = Universe::pow2(1, 4);
  const ZCurve z(u);
  for (coord_t x = 0; x < 16; ++x) {
    EXPECT_EQ(z.index_of(Point{x}), x);
  }
}

TEST(ZCurve, HighDimensional) {
  const Universe u = Universe::pow2(5, 2);
  const ZCurve z(u);
  std::vector<bool> seen(u.cell_count(), false);
  for (index_t id = 0; id < u.cell_count(); ++id) {
    const index_t key = z.index_of(u.from_row_major(id));
    ASSERT_LT(key, u.cell_count());
    EXPECT_FALSE(seen[key]);
    seen[key] = true;
  }
}

}  // namespace
}  // namespace sfc
